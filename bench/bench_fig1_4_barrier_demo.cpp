//===- bench/bench_fig1_4_barrier_demo.cpp - Figure 1.4 ------------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 1.4: the introduction's motivating timeline — executing the
/// two-loop stencil of Fig 1.3 with barriers vs letting iterations flow
/// across invocation boundaries. We quantify the timelines at 4 threads:
/// wall-clock, per-thread barrier idle time, and the speedup recovered by
/// removing barriers safely (SPECCROSS) rather than naively.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

using namespace cip;
using namespace cip::bench;
using namespace cip::workloads;

int main() {
  const unsigned Reps = benchReps();
  const unsigned Threads = 4;
  // The Fig 1.3 program is the JACOBI workload's shape: alternate sweeps
  // reading one array and writing the other.
  auto W = makeWorkload("jacobi", benchScale());
  if (!W)
    return 1;

  const double Seq = sequentialSeconds(*W, Reps);

  double BarrierSecs = 0.0;
  std::uint64_t IdleNanos = 0;
  for (unsigned R = 0; R < Reps; ++R) {
    W->reset();
    const harness::ExecResult E = harness::runBarrier(*W, Threads);
    if (R == 0 || E.Seconds < BarrierSecs) {
      BarrierSecs = E.Seconds;
      IdleNanos = E.BarrierIdleNanos;
    }
  }

  auto TrainW = makeWorkload("jacobi", Scale::Train);
  const std::uint64_t Dist = harness::profiledSpecDistance(*TrainW, Threads);
  const double SpecSecs = speccrossSeconds(*W, Threads, Reps, Dist);

  std::printf("=== Figure 1.4: execution with and without barriers "
              "(4 threads, Fig 1.3 program) ===\n\n");
  std::printf("sequential:                 %8.3fs\n", Seq);
  std::printf("parallel with barriers:     %8.3fs  (%.2fx; threads idled "
              "%.1f%% of the region at barriers)\n",
              BarrierSecs, Seq / BarrierSecs,
              100.0 * static_cast<double>(IdleNanos) /
                  (BarrierSecs * 1e9 * Threads));
  std::printf("barrier-free (SPECCROSS):   %8.3fs  (%.2fx)\n", SpecSecs,
              Seq / SpecSecs);
  printRule();
  std::printf("(the paper's point: iterations 2.x may start while 1.y "
              "still runs — naive removal is unsound,\n speculative "
              "barriers recover the overlap safely)\n");
  return 0;
}

//===- bench/bench_fig3_3_cg_domore.cpp - Figure 3.3 ---------------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 3.3: the motivating CG result — loop speedup with and without
/// DOMORE across thread counts. Barrier parallelization of nine-iteration
/// inner invocations collapses under synchronization cost; DOMORE's
/// cross-invocation scheduling keeps scaling. Also reports the measured
/// cross-invocation manifest rate against the paper's 72.4% and the
/// duplicated-scheduler variant of §3.4.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"
#include "workloads/CG.h"

using namespace cip;
using namespace cip::bench;
using namespace cip::workloads;

int main() {
  const auto Threads = benchThreads();
  const unsigned Reps = benchReps();
  const Scale S = benchScale();

  CGParams Params = CGParams::forScale(S);
  CGWorkload W(Params);
  std::printf("=== Figure 3.3: CG with and without DOMORE ===\n");
  std::printf("(measured cross-invocation manifest rate %.1f%%; paper "
              "reports 72.4%%)\n\n",
              100.0 * W.measuredManifestRate());

  const double Seq = sequentialSeconds(W, Reps);
  std::vector<double> BarrierSp, DomoreSp, DupSp;
  for (unsigned T : Threads) {
    BarrierSp.push_back(Seq / barrierSeconds(W, T, Reps));
    DomoreSp.push_back(Seq / domoreSeconds(W, T, Reps));
    DupSp.push_back(Seq / minSeconds(Reps, [&] {
                      W.reset();
                      return harness::runDomoreDuplicated(W, T).Seconds;
                    }));
  }
  printSeriesHeader("series", Threads);
  printSeriesRow("pthread barrier", BarrierSp);
  printSeriesRow("DOMORE", DomoreSp);
  printSeriesRow("DOMORE (dup §3.4)", DupSp);
  printRule();
  std::printf("(paper: barrier execution is below 1x and degrades; DOMORE "
              "scales to 24 threads)\n");
  return 0;
}

//===- bench/bench_fig4_3_barrier_overhead.cpp - Figure 4.3 --------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4.3: the fraction of parallel execution time spent idling at
/// barrier synchronizations for the eight SPECCROSS benchmarks, at 8 and 24
/// threads. Barrier overhead is the total time threads sit at barriers
/// waiting for the slowest thread, over total thread-time.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

using namespace cip;
using namespace cip::bench;
using namespace cip::workloads;

int main() {
  const unsigned Reps = benchReps();
  const Scale S = benchScale();
  const std::vector<std::string> Names = {
      "cg",     "equake",  "fdtd",    "fluidanimate2",
      "jacobi", "llubench", "loopdep", "symm"};
  const std::vector<unsigned> ThreadCounts = {8, 24};

  std::printf("=== Figure 4.3: barrier overhead as %% of parallel "
              "execution ===\n\n");
  std::printf("%-16s", "workload");
  for (unsigned T : ThreadCounts)
    std::printf("  %3uT barrier%%", T);
  std::printf("\n");
  printRule();

  for (const std::string &Name : Names) {
    auto W = makeWorkload(Name, S);
    if (!W)
      return 1;
    std::printf("%-16s", W->name());
    for (unsigned T : ThreadCounts) {
      double BestPct = 100.0;
      for (unsigned R = 0; R < Reps; ++R) {
        W->reset();
        const harness::ExecResult E = harness::runBarrier(*W, T);
        const double TotalThreadNanos = E.Seconds * 1e9 * T;
        const double Pct =
            100.0 * static_cast<double>(E.BarrierIdleNanos) /
            TotalThreadNanos;
        BestPct = std::min(BestPct, Pct);
      }
      std::printf("  %12.1f", BestPct);
    }
    std::printf("\n");
  }
  printRule();
  std::printf("(paper: >30%% for most programs, growing with thread "
              "count — a 3.33x Amdahl cap)\n");
  return 0;
}

//===- bench/bench_raw_speed.cpp - Hot-engine raw-speed gates ------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two workloads the raw-speed pass (DESIGN.md §14) is gated on, shaped
/// after what the conflict-attribution profiler flags as each engine's
/// saturation point:
///
///  * raw-shadow: a DOMORE region whose scheduler slice is the ceiling
///    (Table 5.2's bad end). Every iteration touches a handful of
///    pseudo-random addresses in a DRAM-resident dense address space, and
///    the task body is just those few read-modify-writes — so the serial
///    detect-and-record stage (one dependent shadow probe per address, each
///    a likely cache miss) dominates the region. This is the case the
///    sharded two-stage scheduler pipelines: partition + prefetch first,
///    then shard-local probes with the misses overlapped.
///
///  * raw-sigcheck: a SPECCROSS region that saturates the checker thread.
///    Epochs carry many small tasks whose bodies are near-free, so the
///    workers outrun the checker and the region's critical path is the
///    checker's pairwise signature scanning over the full speculative
///    window. Task address ranges are disjoint by construction: every
///    comparison is a miss, which is exactly the all-scan case the SoA
///    batch kernels accelerate (a hit would end the scan early).
///
/// CI runs this binary in env-pinned pairs and gates each pair with
/// `compare_bench.py --min-speedup 1.15`:
///
///  * raw-speed substrates: CIP_SHADOW_SHARDS=1 CIP_SIMD=0 against
///    CIP_SHADOW_SHARDS=8 CIP_SIMD=1 (DESIGN.md §14);
///  * scheduler team: CIP_SHADOW_SHARDS=8 CIP_SCHED_THREADS=1 against
///    CIP_SHADOW_SHARDS=8 CIP_SCHED_THREADS=4 on raw-shadow, where the
///    probe stage is the ceiling a team splits (DESIGN.md §15; needs
///    real cores — the gate runs on multi-core CI, not in the
///    single-core determinism jobs).
///
/// Checksums are compared against the sequential execution either way, so
/// no gate can pass on a run that broke semantics.
///
/// Bench rows carry the engines' accounting: DOMORE rows a
/// "shadow_shards" object (shard count, scheduler-team size, and the
/// per-shard conflict split, which sums to the region's sync conditions),
/// SPECCROSS rows a "batch_check" object (whether the batched kernels ran,
/// the checker-lane count, how many spans the kernels scanned, and the
/// batch-width histogram summary). tools/validate_bench_json.py checks
/// both shapes.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

#include <algorithm>
#include <cinttypes>

using namespace cip;
using namespace cip::bench;
using namespace cip::workloads;

namespace {

std::uint64_t splitmix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Scheduler-saturated DOMORE region. Each task read-modify-writes
/// AddrsPerTask cells of a dense array sized well past L3, at addresses
/// drawn from a per-epoch bijection of the address space: within an epoch
/// every task's addresses are distinct (the DOALL contract), while across
/// epochs the bijections differ, so iterations collide pseudo-randomly and
/// the scheduler earns real sync conditions. The updates commute (integer
/// adds), so every runtime-legal interleaving checksums identically.
class RawShadowWorkload : public Workload {
public:
  static constexpr unsigned AddrsPerTask = 4;

  explicit RawShadowWorkload(Scale S) {
    switch (S) {
    case Scale::Test:
      Epochs = 6;
      Tasks = 24000;
      SpaceBits = 20;
      break;
    case Scale::Train:
      Epochs = 10;
      Tasks = 120000;
      SpaceBits = 22;
      break;
    case Scale::Ref:
      Epochs = 16;
      Tasks = 320000;
      SpaceBits = 23;
      break;
    }
    Data.assign(std::size_t(1) << SpaceBits, 0);
    reset();
  }

  const char *name() const override { return "raw-shadow"; }
  void reset() override { std::fill(Data.begin(), Data.end(), 0); }
  std::uint32_t numEpochs() const override { return Epochs; }
  std::size_t numTasks(std::uint32_t) const override { return Tasks; }

  void runTask(std::uint32_t Epoch, std::size_t Task) override {
    for (unsigned I = 0; I < AddrsPerTask; ++I)
      Data[addrOf(Epoch, Task, I)] += (Task * AddrsPerTask + I) | 1;
  }

  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override {
    for (unsigned I = 0; I < AddrsPerTask; ++I)
      Addrs.push_back(addrOf(Epoch, Task, I));
  }

  std::uint64_t addressSpaceSize() const override { return Data.size(); }
  void registerState(speccross::CheckpointRegistry &Reg) override {
    Reg.registerBuffer(Data);
  }
  std::uint64_t checksum() const override {
    return hashBytes(Data.data(), Data.size() * sizeof(Data[0]));
  }
  bool speccrossApplicable() const override { return false; }

private:
  /// Bijection of [0, 2^SpaceBits): multiply by a per-epoch odd constant,
  /// xor a per-epoch mask. Keeps each epoch's Tasks * AddrsPerTask
  /// addresses distinct (they stay below the space size) while decorrelating
  /// the epochs from each other.
  std::uint64_t addrOf(std::uint32_t Epoch, std::size_t Task,
                       unsigned I) const {
    const std::uint64_t Odd = splitmix64(Epoch) | 1;
    const std::uint64_t Mask = splitmix64(Epoch + 0x51ed2701ULL);
    const std::uint64_t X = Task * AddrsPerTask + I;
    return ((X * Odd) ^ Mask) & (Data.size() - 1);
  }

  std::uint32_t Epochs = 0;
  std::size_t Tasks = 0;
  unsigned SpaceBits = 0;
  std::vector<std::uint64_t> Data;
};

/// Checker-saturated SPECCROSS region. Many epochs of many tiny tasks;
/// each task claims a small contiguous address range disjoint from every
/// other task's in every epoch, so no comparison ever hits and the checker
/// scans every compared epoch log end to end — the pure-throughput case for
/// the batch kernels. The bodies are single stores into task-private slots,
/// so the checker thread, not the workers, is the critical path.
class RawSigcheckWorkload : public Workload {
public:
  static constexpr unsigned Span = 8;

  explicit RawSigcheckWorkload(Scale S) {
    switch (S) {
    case Scale::Test:
      Epochs = 36;
      Tasks = 512;
      break;
    case Scale::Train:
      Epochs = 80;
      Tasks = 768;
      break;
    case Scale::Ref:
      Epochs = 200;
      Tasks = 768;
      break;
    }
    Out.assign(std::size_t(Epochs) * Tasks, 0);
    reset();
  }

  const char *name() const override { return "raw-sigcheck"; }
  void reset() override { std::fill(Out.begin(), Out.end(), 0); }
  std::uint32_t numEpochs() const override { return Epochs; }
  std::size_t numTasks(std::uint32_t) const override { return Tasks; }

  void runTask(std::uint32_t Epoch, std::size_t Task) override {
    Out[std::size_t(Epoch) * Tasks + Task] =
        splitmix64((std::uint64_t(Epoch) << 32) | Task);
  }

  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override {
    // (Task, Epoch)-major so the range is unique across the whole run.
    const std::uint64_t Base = (Task * Epochs + Epoch) * std::uint64_t(Span);
    for (unsigned I = 0; I < Span; ++I)
      Addrs.push_back(Base + I);
  }

  std::uint64_t addressSpaceSize() const override { return 0; } // sparse
  void registerState(speccross::CheckpointRegistry &Reg) override {
    Reg.registerBuffer(Out);
  }
  std::uint64_t checksum() const override {
    return hashBytes(Out.data(), Out.size() * sizeof(Out[0]));
  }
  bool domoreApplicable() const override { return false; }

private:
  std::uint32_t Epochs = 0;
  std::size_t Tasks = 0;
  std::vector<std::uint64_t> Out;
};

void writeHistSummary(telemetry::json::Writer &Wr, const char *Key,
                      const telemetry::HistogramData &H) {
  Wr.key(Key);
  Wr.beginObject();
  Wr.key("count");
  Wr.value(H.count());
  Wr.key("sum_ns");
  Wr.value(H.SumNs);
  Wr.key("max_ns");
  Wr.value(H.MaxNs);
  Wr.key("p50_ns");
  Wr.value(H.quantileNs(0.50));
  Wr.key("p90_ns");
  Wr.value(H.quantileNs(0.90));
  Wr.key("p99_ns");
  Wr.value(H.quantileNs(0.99));
  Wr.endObject();
}

/// Opens a bench row shaped exactly like BenchJson::record's, leaving the
/// object unterminated so the caller can append its engine payload (the
/// server traffic bench sets the precedent for custom row shapes).
void beginRawRow(telemetry::json::Writer &Wr, const Workload &W,
                 const char *Scheme, unsigned Threads, unsigned Reps,
                 const harness::ExecResult &Best) {
  const double Base = BenchJson::instance().sequentialBaseline(W.name());
  Wr.beginObject();
  Wr.key("workload");
  Wr.value(W.name());
  Wr.key("scheme");
  Wr.value(Scheme);
  Wr.key("threads");
  Wr.value(Threads);
  Wr.key("scale");
  Wr.value(benchScaleName());
  // Same stamp BenchJson::record puts on every row: the substrate CIP_CKPT
  // selects (default eager) — the schema requires it row-uniformly.
  Wr.key("ckpt_substrate");
  Wr.value(memory::substrateName(memory::activeSubstrateKind()));
  Wr.key("reps");
  Wr.value(Reps);
  Wr.key("seconds");
  Wr.value(Best.Seconds);
  Wr.key("speedup");
  Wr.value(Best.Seconds > 0.0 && Base > 0.0 ? Base / Best.Seconds : 0.0);
  Wr.key("counters");
  Wr.beginObject();
  for (unsigned C = 0; C < telemetry::NumCounters; ++C) {
    Wr.key(telemetry::counterName(static_cast<telemetry::Counter>(C)));
    Wr.value(Best.Telemetry.Values[C]);
  }
  Wr.endObject();
  writeHistSummary(Wr, "wait_hist", Best.WaitHist);
  writeHistSummary(Wr, "dispatch_batch", Best.DispatchBatch);
}

void recordDomoreRow(const Workload &W, unsigned Threads, unsigned Reps,
                     const harness::ExecResult &Best,
                     const domore::DomoreStats &Stats) {
  BenchJson &J = BenchJson::instance();
  if (!J.enabled())
    return;
  telemetry::json::Writer Wr;
  beginRawRow(Wr, W, "domore", Threads, Reps, Best);
  // The sharded-scheduler accounting (DESIGN.md §14): how many shards the
  // detect-and-record stage ran with and how the sync conditions split
  // across them. Populated regardless of CIP_TELEMETRY.
  Wr.key("shadow_shards");
  Wr.beginObject();
  Wr.key("shards");
  Wr.value(Stats.ShadowShards);
  Wr.key("sched_threads");
  Wr.value(Stats.SchedThreads);
  Wr.key("sync_conditions");
  Wr.value(Stats.SyncConditions);
  Wr.key("conflicts");
  Wr.beginArray();
  for (std::uint64_t C : Stats.ShardConflicts)
    Wr.value(C);
  Wr.endArray();
  Wr.endObject();
  Wr.endObject();
  J.writeLine(Wr.str());
}

void recordSpeccrossRow(const Workload &W, unsigned Threads, unsigned Reps,
                        const harness::ExecResult &Best,
                        const speccross::SpecStats &Stats) {
  BenchJson &J = BenchJson::instance();
  if (!J.enabled())
    return;
  telemetry::json::Writer Wr;
  beginRawRow(Wr, W, "speccross", Threads, Reps, Best);
  // The batched-checker accounting (DESIGN.md §14). The counts come from
  // the runtime itself; the width histogram is telemetry, so it is empty
  // (count 0) in CIP_TELEMETRY=0 builds.
  Wr.key("batch_check");
  Wr.beginObject();
  Wr.key("enabled");
  Wr.value(Stats.BatchCheckEnabled);
  Wr.key("check_lanes");
  Wr.value(Stats.CheckLanes);
  Wr.key("batch_checks");
  Wr.value(Stats.BatchChecks);
  Wr.key("signature_comparisons");
  Wr.value(Stats.SignatureComparisons);
  writeHistSummary(Wr, "batch_width", Stats.BatchWidth);
  Wr.endObject();
  Wr.endObject();
  J.writeLine(Wr.str());
}

[[noreturn]] void checksumMismatch(const Workload &W, const char *Scheme,
                                   std::uint64_t Got, std::uint64_t Want) {
  std::fprintf(stderr,
               "error: %s/%s checksum %016" PRIx64 " != sequential %016" PRIx64
               "\n",
               W.name(), Scheme, Got, Want);
  std::exit(1);
}

} // namespace

int main() {
  const auto Threads = benchThreads();
  const unsigned Reps = benchReps();
  const Scale S = benchScale();

  std::printf("=== Raw speed: the two hot engines (DESIGN.md sec. 14) ===\n");
  std::printf("(shadow shards: CIP_SHADOW_SHARDS or serial; batched "
              "checking: CIP_SIMD or on; %u reps min)\n\n",
              Reps);

  // --- raw-shadow: scheduler-saturated DOMORE --------------------------
  {
    RawShadowWorkload W(S);
    const double Seq = sequentialSeconds(W, Reps);
    W.reset();
    const std::uint64_t Want = harness::runSequential(W).Checksum;
    std::printf("%s  (seq %.3fs, %llu iterations x %u probes over a "
                "%.1fM-entry dense space)\n",
                W.name(), Seq,
                static_cast<unsigned long long>(W.totalTasks()),
                RawShadowWorkload::AddrsPerTask,
                double(W.addressSpaceSize()) / (1 << 20));
    printSeriesHeader("  series", Threads);
    std::vector<double> Sp;
    for (unsigned T : Threads) {
      harness::ExecResult Best;
      domore::DomoreStats BestStats;
      for (unsigned R = 0; R < Reps; ++R) {
        W.reset();
        domore::DomoreStats Stats;
        harness::ExecResult Cur = harness::runDomore(
            W, T, domore::PolicyKind::RoundRobin, &Stats);
        if (R == 0 || Cur.Seconds < Best.Seconds) {
          Best = Cur;
          BestStats = Stats;
        }
      }
      if (Best.Checksum != Want)
        checksumMismatch(W, "domore", Best.Checksum, Want);
      recordDomoreRow(W, T, Reps, Best, BestStats);
      Sp.push_back(Seq / Best.Seconds);
      if (T == Threads.back())
        std::printf("  t=%u: shards %u, sched threads %u, scheduler %.1f%%, "
                    "sync conds %llu\n",
                    T, BestStats.ShadowShards, BestStats.SchedThreads,
                    BestStats.schedulerRatioPercent(),
                    static_cast<unsigned long long>(BestStats.SyncConditions));
    }
    printSeriesRow("  DOMORE", Sp);
    printRule();
  }

  // --- raw-sigcheck: checker-saturated SPECCROSS -----------------------
  {
    RawSigcheckWorkload W(S);
    const double Seq = sequentialSeconds(W, Reps);
    W.reset();
    const std::uint64_t Want = harness::runSequential(W).Checksum;
    std::printf("%s  (seq %.3fs, %llu tasks, disjoint %u-address ranges: "
                "every comparison scans)\n",
                W.name(), Seq,
                static_cast<unsigned long long>(W.totalTasks()),
                RawSigcheckWorkload::Span);
    printSeriesHeader("  series", Threads);
    std::vector<double> Sp;
    for (unsigned T : Threads) {
      harness::ExecResult Best;
      speccross::SpecStats BestStats;
      for (unsigned R = 0; R < Reps; ++R) {
        W.reset();
        speccross::SpecConfig Cfg;
        Cfg.NumWorkers = T > 1 ? T - 1 : 1;
        Cfg.Scheme = W.preferredSignature();
        Cfg.MaxEpochLead = 8; // widen the window: more scanning per check
        speccross::SpecStats Stats;
        harness::ExecResult Cur = harness::runSpecCross(
            W, Cfg, speccross::SpecMode::Speculation, &Stats);
        if (R == 0 || Cur.Seconds < Best.Seconds) {
          Best = Cur;
          BestStats = Stats;
        }
      }
      if (Best.Checksum != Want)
        checksumMismatch(W, "speccross", Best.Checksum, Want);
      recordSpeccrossRow(W, T, Reps, Best, BestStats);
      Sp.push_back(Seq / Best.Seconds);
      if (T == Threads.back())
        std::printf("  t=%u: batched %s, %u lanes, %llu comparisons in %llu "
                    "batch spans, %llu misspecs\n",
                    T, BestStats.BatchCheckEnabled ? "yes" : "no",
                    BestStats.CheckLanes,
                    static_cast<unsigned long long>(
                        BestStats.SignatureComparisons),
                    static_cast<unsigned long long>(BestStats.BatchChecks),
                    static_cast<unsigned long long>(BestStats.Misspeculations));
    }
    printSeriesRow("  SPECCROSS", Sp);
    printRule();
  }

  std::printf("(gates: CIP_SHADOW_SHARDS=1 CIP_SIMD=0 vs CIP_SHADOW_SHARDS=8 "
              "CIP_SIMD=1, and CIP_SHADOW_SHARDS=8 CIP_SCHED_THREADS=1 vs "
              "=4 — each pair compared with compare_bench.py "
              "--min-speedup 1.15)\n");
  return 0;
}

//===- bench/bench_server_traffic.cpp - Region-server traffic bench ------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The region-server experiment (DESIGN.md §12): many clients submitting
/// parallel-region invocations against one machine-wide worker budget.
/// An open-loop arrival schedule — seeded exponential interarrivals, no
/// wall-clock randomness in the schedule itself — drives a mixed workload
/// stream (jacobi/loopdep/cg, rotating barrier/DOMORE/SPECCROSS/adaptive
/// techniques) at three offered loads (~0.3x, ~0.8x, ~1.5x the calibrated
/// sequential capacity) through three invocation disciplines:
///
///  * server-serialized — one region at a time at full budget width: the
///    repo's historical behavior (the global pool serializes top-level
///    regions). Under concurrent traffic, every request queues behind
///    every other request's full-width run.
///  * server-oversub   — every client invokes immediately at full width
///    with no arbitration (pool bypassed, spawn budget lifted): the
///    "parallelize everything" strawman that oversubscribes the machine.
///  * server-gated     — the RegionServer: bounded-queue admission, FIFO
///    worker arbitration, and the should_invoc gate degrading
///    below-minimum-width grants to narrow-barrier or sequential runs.
///
/// Reported per load level: achieved throughput and p50/p95/p99 request
/// latency (completion minus *scheduled* arrival, so backlog shows up as
/// latency). Percentiles come from the shared bucket-interpolation helper
/// (HistogramData::percentileNs), the same estimator tools/cip_report.py
/// prints. Every request's checksum is compared against the workload's
/// sequential reference — a mismatch is a correctness bug and exits 1.
/// The gate lines mirror ISSUE acceptance (at the saturating load, gated
/// >= 1.2x serialized throughput AND gated p99 < oversubscribed p99) but
/// timing misses exit 0: CI runs this as a non-fatal report, like
/// compare_bench.py.
///
/// Extra knobs beyond the BenchSupport set (strict, garbage exits 2):
///   CIP_BENCH_REQUESTS  requests per load level (default 48; CI smoke
///                       uses a small value so CIP_REPORT stays cheap)
///   CIP_SERVER_WORKERS  the worker budget (default here: 4, the paper's
///                       smallest evaluated machine share)
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"
#include "server/RegionServer.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace cip;
using namespace cip::bench;

namespace {

constexpr unsigned NumClients = 4;
constexpr std::uint64_t ScheduleSeed = 0x5eedc0ffee5eedULL;

const char *const MixNames[] = {"jacobi", "loopdep", "cg"};
constexpr unsigned MixSize = 3;

unsigned requestsPerLoad() {
  if (const char *S = std::getenv("CIP_BENCH_REQUESTS")) {
    unsigned V = 0;
    if (!parseEnvUnsigned(S, V))
      benchEnvError("CIP_BENCH_REQUESTS", S,
                    "a positive request count per load level");
    return V;
  }
  return 48;
}

/// One scheduled invocation: what to run, how, and when it is *supposed*
/// to arrive (seconds from the run start).
struct TrafficRequest {
  unsigned Mix = 0;           ///< index into MixNames
  policy::Technique Tech = policy::Technique::Barrier;
  bool Adaptive = false;      ///< route through the policy engine instead
  double ArrivalS = 0.0;
};

/// The same seeded schedule drives all three disciplines at one load
/// level, so they compete on identical traffic.
std::vector<TrafficRequest> makeSchedule(unsigned N, double Lambda) {
  std::vector<TrafficRequest> Out(N);
  Xoshiro256StarStar Rng(ScheduleSeed);
  double T = 0.0;
  for (unsigned I = 0; I < N; ++I) {
    const double U = Rng.nextDouble();
    T += -std::log(1.0 - U) / Lambda; // exponential interarrival
    Out[I].ArrivalS = T;
    Out[I].Mix = static_cast<unsigned>(Rng.nextBelow(MixSize));
    Out[I].Adaptive = I % 4 == 3;
    switch (Rng.nextBelow(3)) {
    case 0:
      Out[I].Tech = policy::Technique::Barrier;
      break;
    case 1:
      Out[I].Tech = policy::Technique::Domore;
      break;
    default:
      Out[I].Tech = policy::Technique::SpecCross;
      break;
    }
  }
  return Out;
}

/// Runs one request's region the way the server would run a full-width
/// grant (same vtable rows, same adaptive engine), for the two disciplines
/// that bypass the server.
void runUnmanaged(workloads::Workload &W, const TrafficRequest &Req,
                  unsigned Width, const policy::PolicyConfig &Policy) {
  if (Req.Adaptive) {
    (void)harness::runAdaptive(W, Width, Policy);
    return;
  }
  policy::Technique Tech = Req.Tech;
  if (!(harness::applicabilityMask(W) & policy::techniqueBit(Tech)))
    Tech = policy::Technique::Barrier;
  const harness::TechniqueVtable &V = harness::techniqueVtable(Tech);
  harness::AdaptiveContext Ctx;
  Ctx.NumThreads = Width;
  Ctx.Scheme = W.preferredSignature();
  if (Tech == policy::Technique::SpecCross)
    W.registerState(Ctx.Registry);
  (void)V.RunWindow(Ctx, W);
}

/// What one discipline produced at one load level.
struct TrafficResult {
  double MakespanS = 0.0;
  telemetry::HistogramData LatencyNs; ///< completion - scheduled arrival
  server::ServerStats Stats;          ///< synthesized for unmanaged modes
  bool ChecksumOk = true;
};

double percentileMs(const telemetry::HistogramData &H, double Q) {
  return static_cast<double>(H.percentileNs(Q)) / 1e6;
}

/// Drives one discipline over \p Schedule with NumClients open-loop client
/// threads (requests round-robin across clients, each client honoring its
/// scheduled arrival times). \p Run executes one request on the client's
/// private workload instance and returns the post-run checksum.
template <typename RunFn>
TrafficResult driveClients(const std::vector<TrafficRequest> &Schedule,
                           const std::vector<std::uint64_t> &Expected,
                           RunFn &&Run) {
  TrafficResult Res;
  std::mutex Mu; // guards LatencyNs merging and ChecksumOk
  std::atomic<bool> Ok{true};
  const std::uint64_t StartNs = nowNanos();
  std::vector<std::thread> Clients;
  for (unsigned C = 0; C < NumClients; ++C)
    Clients.emplace_back([&, C] {
      // Per-client private instances: concurrent disciplines mutate
      // workload state from many threads, so nothing is shared.
      std::unique_ptr<workloads::Workload> Mine[MixSize];
      for (unsigned M = 0; M < MixSize; ++M)
        Mine[M] = workloads::makeWorkload(MixNames[M], benchScale());
      telemetry::HistogramData Local;
      for (std::size_t I = C; I < Schedule.size(); I += NumClients) {
        const TrafficRequest &Req = Schedule[I];
        const std::uint64_t Due =
            StartNs + static_cast<std::uint64_t>(Req.ArrivalS * 1e9);
        const std::uint64_t Now = nowNanos();
        if (Now < Due)
          std::this_thread::sleep_for(std::chrono::nanoseconds(Due - Now));
        workloads::Workload &W = *Mine[Req.Mix];
        W.reset();
        const std::uint64_t Sum = Run(W, Req);
        if (Sum != Expected[Req.Mix])
          Ok.store(false, std::memory_order_relaxed);
        // Open-loop latency: completion against the *scheduled* arrival,
        // so time spent behind a backlog is charged to the discipline.
        const std::uint64_t Done = nowNanos();
        const std::uint64_t Lat = Done > Due ? Done - Due : 0;
        Local.Buckets[telemetry::histBucketOf(Lat)] += 1;
        Local.SumNs += Lat;
        if (Lat > Local.MaxNs)
          Local.MaxNs = Lat;
      }
      std::lock_guard<std::mutex> L(Mu);
      Res.LatencyNs += Local;
    });
  for (auto &T : Clients)
    T.join();
  Res.MakespanS = static_cast<double>(nowNanos() - StartNs) / 1e9;
  Res.ChecksumOk = Ok.load();
  return Res;
}

TrafficResult runSerialized(const std::vector<TrafficRequest> &Schedule,
                            const std::vector<std::uint64_t> &Expected,
                            unsigned Workers,
                            const policy::PolicyConfig &Policy) {
  std::mutex RegionMu; // one region at a time, full width
  TrafficResult Res = driveClients(
      Schedule, Expected,
      [&](workloads::Workload &W, const TrafficRequest &Req) {
        std::lock_guard<std::mutex> L(RegionMu);
        runUnmanaged(W, Req, Workers, Policy);
        return W.checksum();
      });
  Res.Stats.Submitted = Res.Stats.Completed = Schedule.size();
  Res.Stats.QueueWait = Res.LatencyNs;
  return Res;
}

TrafficResult runOversubscribed(const std::vector<TrafficRequest> &Schedule,
                                const std::vector<std::uint64_t> &Expected,
                                unsigned Workers,
                                const policy::PolicyConfig &Policy) {
  // No arbitration at all: every client forks a full-width region the
  // moment its request arrives. The global pool would serialize them, so
  // this discipline runs on the spawned-thread substrate with the budget
  // cap lifted — the unbounded behavior the server exists to prevent.
  const bool PrevBypass = ThreadPool::bypassed();
  const unsigned PrevCap = ThreadPool::spawnCap();
  ThreadPool::setBypass(true);
  ThreadPool::setSpawnCap(0xffffffffu);
  TrafficResult Res = driveClients(
      Schedule, Expected,
      [&](workloads::Workload &W, const TrafficRequest &Req) {
        runUnmanaged(W, Req, Workers, Policy);
        return W.checksum();
      });
  ThreadPool::setBypass(PrevBypass);
  ThreadPool::setSpawnCap(PrevCap);
  Res.Stats.Submitted = Res.Stats.Completed = Schedule.size();
  Res.Stats.QueueWait = Res.LatencyNs;
  return Res;
}

TrafficResult runGated(const std::vector<TrafficRequest> &Schedule,
                       const std::vector<std::uint64_t> &Expected,
                       unsigned Workers,
                       const policy::PolicyConfig &Policy) {
  server::ServerConfig Cfg;
  Cfg.Workers = Workers;
  const server::ServerConfig Resolved = server::configFromEnv(Cfg);
  server::RegionServer Server(Resolved);
  TrafficResult Res = driveClients(
      Schedule, Expected,
      [&](workloads::Workload &W, const TrafficRequest &Req) {
        server::RegionRequest R;
        R.W = &W;
        R.Tech = Req.Tech;
        if (Req.Adaptive)
          R.Policy = &Policy;
        R.Width = 0; // ask for the whole budget; the gate right-sizes
        const server::RequestResult Out = Server.submit(R);
        return Out.Status == server::RequestStatus::Completed ? Out.Checksum
                                                              : ~0ULL;
      });
  Server.shutdown();
  Res.Stats = Server.stats();
  return Res;
}

/// Emits the server-* JSON row for one (discipline, load) cell. The row's
/// wait_hist is the request-latency distribution; the server object carries
/// the throughput/latency payload tools/validate_bench_json.py checks.
void recordTraffic(const char *LoadName, const char *Scheme, unsigned Workers,
                   double OfferedRps, const TrafficResult &R) {
  BenchJson &J = BenchJson::instance();
  if (!J.enabled())
    return;
  const double Thr =
      R.MakespanS > 0.0
          ? static_cast<double>(R.Stats.Completed) / R.MakespanS
          : 0.0;
  telemetry::json::Writer Wr;
  Wr.beginObject();
  Wr.key("workload");
  Wr.value(LoadName);
  Wr.key("scheme");
  Wr.value(Scheme);
  Wr.key("threads");
  Wr.value(Workers);
  Wr.key("scale");
  Wr.value(benchScaleName());
  // Same stamp BenchSupport puts on every row: the substrate CIP_CKPT
  // selects (default eager) — the schema requires it row-uniformly even
  // though server traffic never checkpoints.
  Wr.key("ckpt_substrate");
  Wr.value(memory::substrateName(memory::activeSubstrateKind()));
  Wr.key("reps");
  Wr.value(1u);
  Wr.key("seconds");
  Wr.value(R.MakespanS);
  Wr.key("speedup");
  Wr.value(0.0);
  // Counters synthesized from the traffic stats, so the rows carry them in
  // CIP_TELEMETRY=0 builds too (every completed request passed admission;
  // the unmanaged disciplines get the equivalent synthetic accounting).
  telemetry::CounterTotals Counters;
  Counters.Values[static_cast<unsigned>(telemetry::Counter::ServerAdmitted)] =
      R.Stats.Completed;
  Counters.Values[static_cast<unsigned>(telemetry::Counter::ServerRejected)] =
      R.Stats.Rejected;
  Counters.Values[static_cast<unsigned>(telemetry::Counter::ServerDegraded)] =
      R.Stats.DegradedNarrow + R.Stats.DegradedSequential;
  Counters.Values[static_cast<unsigned>(
      telemetry::Counter::ServerQueueWaitNs)] = R.Stats.QueueWait.SumNs;
  Wr.key("counters");
  Wr.beginObject();
  for (unsigned C = 0; C < telemetry::NumCounters; ++C) {
    Wr.key(telemetry::counterName(static_cast<telemetry::Counter>(C)));
    Wr.value(Counters.Values[C]);
  }
  Wr.endObject();
  const auto HistSummary = [&Wr](const char *Key,
                                 const telemetry::HistogramData &H) {
    Wr.key(Key);
    Wr.beginObject();
    Wr.key("count");
    Wr.value(H.count());
    Wr.key("sum_ns");
    Wr.value(H.SumNs);
    Wr.key("max_ns");
    Wr.value(H.MaxNs);
    Wr.key("p50_ns");
    Wr.value(H.quantileNs(0.50));
    Wr.key("p90_ns");
    Wr.value(H.quantileNs(0.90));
    Wr.key("p99_ns");
    Wr.value(H.quantileNs(0.99));
    Wr.endObject();
  };
  HistSummary("wait_hist", R.LatencyNs);
  HistSummary("dispatch_batch", telemetry::HistogramData());
  Wr.key("server");
  Wr.beginObject();
  Wr.key("offered_rps");
  Wr.value(OfferedRps);
  Wr.key("throughput_rps");
  Wr.value(Thr);
  Wr.key("submitted");
  Wr.value(R.Stats.Submitted);
  Wr.key("completed");
  Wr.value(R.Stats.Completed);
  Wr.key("rejected");
  Wr.value(R.Stats.Rejected);
  Wr.key("degraded_sequential");
  Wr.value(R.Stats.DegradedSequential);
  Wr.key("degraded_narrow");
  Wr.value(R.Stats.DegradedNarrow);
  Wr.key("p50_ms");
  Wr.value(percentileMs(R.LatencyNs, 0.50));
  Wr.key("p95_ms");
  Wr.value(percentileMs(R.LatencyNs, 0.95));
  Wr.key("p99_ms");
  Wr.value(percentileMs(R.LatencyNs, 0.99));
  Wr.endObject();
  Wr.endObject();
  J.writeLine(Wr.str());
}

void printCell(const char *Scheme, double OfferedRps,
               const TrafficResult &R) {
  const double Thr =
      R.MakespanS > 0.0
          ? static_cast<double>(R.Stats.Completed) / R.MakespanS
          : 0.0;
  std::printf("  %-18s  offered %7.1f r/s  achieved %7.1f r/s  "
              "p50 %8.2f ms  p95 %8.2f ms  p99 %8.2f ms",
              Scheme, OfferedRps, Thr, percentileMs(R.LatencyNs, 0.50),
              percentileMs(R.LatencyNs, 0.95), percentileMs(R.LatencyNs, 0.99));
  if (R.Stats.DegradedSequential + R.Stats.DegradedNarrow +
      R.Stats.Rejected)
    std::printf("  [degraded seq %llu narrow %llu, rejected %llu]",
                static_cast<unsigned long long>(R.Stats.DegradedSequential),
                static_cast<unsigned long long>(R.Stats.DegradedNarrow),
                static_cast<unsigned long long>(R.Stats.Rejected));
  std::printf("\n");
}

} // namespace

int main() {
  const unsigned Requests = requestsPerLoad();
  server::ServerConfig BudgetProbe;
  BudgetProbe.Workers = 4; // default budget; CIP_SERVER_WORKERS overrides
  const unsigned Workers = server::configFromEnv(BudgetProbe).Workers;

  policy::PolicyConfig Policy;
  Policy.Kind = policy::PolicyKind::Threshold;
  policy::configFromEnv(Policy);

  std::printf("Region-server traffic: %u requests/load, %u clients, "
              "budget %u workers, scale %s\n",
              Requests, NumClients, Workers, benchScaleName());
  printRule();

  // Calibrate: mean sequential service time over the mix gives the
  // one-worker capacity the offered loads are expressed against.
  std::vector<std::uint64_t> Expected(MixSize);
  double MeanServiceS = 0.0;
  for (unsigned M = 0; M < MixSize; ++M) {
    auto W = workloads::makeWorkload(MixNames[M], benchScale());
    W->reset();
    const harness::ExecResult Seq = harness::runSequential(*W);
    Expected[M] = Seq.Checksum;
    MeanServiceS += Seq.Seconds;
  }
  MeanServiceS /= MixSize;
  const double CapacityRps = MeanServiceS > 0.0 ? 1.0 / MeanServiceS : 1000.0;
  std::printf("calibration: mean sequential service %.3f ms => capacity "
              "%.1f req/s\n",
              MeanServiceS * 1e3, CapacityRps);
  printRule();

  struct Level {
    const char *Name;
    double Factor;
  };
  const Level Levels[] = {
      {"traffic-low", 0.3}, {"traffic-mid", 0.8}, {"traffic-sat", 1.5}};

  bool ChecksumOk = true;
  double SatThrSerialized = 0.0, SatThrGated = 0.0;
  double SatP99Oversub = 0.0, SatP99Gated = 0.0;

  for (const Level &L : Levels) {
    const double Lambda = CapacityRps * L.Factor;
    const std::vector<TrafficRequest> Schedule =
        makeSchedule(Requests, Lambda);
    std::printf("%s (%.1fx capacity):\n", L.Name, L.Factor);

    const TrafficResult Ser =
        runSerialized(Schedule, Expected, Workers, Policy);
    printCell("server-serialized", Lambda, Ser);
    recordTraffic(L.Name, "server-serialized", Workers, Lambda, Ser);

    const TrafficResult Ovr =
        runOversubscribed(Schedule, Expected, Workers, Policy);
    printCell("server-oversub", Lambda, Ovr);
    recordTraffic(L.Name, "server-oversub", Workers, Lambda, Ovr);

    const TrafficResult Gat = runGated(Schedule, Expected, Workers, Policy);
    printCell("server-gated", Lambda, Gat);
    recordTraffic(L.Name, "server-gated", Workers, Lambda, Gat);

    ChecksumOk = ChecksumOk && Ser.ChecksumOk && Ovr.ChecksumOk &&
                 Gat.ChecksumOk;
    if (std::strcmp(L.Name, "traffic-sat") == 0) {
      SatThrSerialized =
          Ser.MakespanS > 0.0
              ? static_cast<double>(Ser.Stats.Completed) / Ser.MakespanS
              : 0.0;
      SatThrGated =
          Gat.MakespanS > 0.0
              ? static_cast<double>(Gat.Stats.Completed) / Gat.MakespanS
              : 0.0;
      SatP99Oversub = percentileMs(Ovr.LatencyNs, 0.99);
      SatP99Gated = percentileMs(Gat.LatencyNs, 0.99);
    }
    printRule();
  }

  if (!ChecksumOk) {
    std::fprintf(stderr, "error: request checksum diverged from sequential "
                         "execution — the server broke a region\n");
    return 1;
  }
  std::printf("checksums: every request identical to sequential "
              "(degraded requests included)\n");

  const double ThrRatio =
      SatThrSerialized > 0.0 ? SatThrGated / SatThrSerialized : 0.0;
  std::printf("gate: saturating throughput gated/serialized = %.2fx "
              "(need >= 1.20x) %s\n",
              ThrRatio, ThrRatio >= 1.20 ? "PASS" : "MISS");
  std::printf("gate: saturating p99 gated %.2f ms vs oversubscribed %.2f ms "
              "(need lower) %s\n",
              SatP99Gated, SatP99Oversub,
              SatP99Gated < SatP99Oversub ? "PASS" : "MISS");
  return 0;
}

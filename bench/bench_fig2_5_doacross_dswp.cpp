//===- bench/bench_fig2_5_doacross_dswp.cpp - Figure 2.5 -----------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 2.5 / Fig 2.4: DOACROSS vs DSWP on the linked-list loop
///
///   while (node) { ncost = doit(node); cost += ncost; node = node->next; }
///
/// The traversal (node = node->next) is the carried dependence cycle; the
/// work (doit) parallelizes once the node is known. DOACROSS puts the
/// cross-thread hand-off of the traversal on the critical path every
/// iteration; DSWP keeps the traversal on one thread and streams nodes
/// through queues. We sweep the work grain: at small grain DOACROSS's
/// synchronization dominates, at large grain both approach the ideal.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"
#include "harness/StagedLoop.h"
#include "support/Rng.h"

#include <numeric>

using namespace cip;
using namespace cip::bench;
using namespace cip::harness;

int main() {
  const unsigned Reps = benchReps();
  constexpr std::uint64_t NumNodes = 40000;

  // A shuffled singly-linked list in a node pool (pointer chasing the
  // compiler cannot reassociate) plus per-iteration result slots.
  std::vector<std::uint32_t> Next(NumNodes);
  {
    std::vector<std::uint32_t> Order(NumNodes);
    std::iota(Order.begin(), Order.end(), 0u);
    Xoshiro256StarStar Rng(0xd5c);
    for (std::size_t I = NumNodes; I > 1; --I)
      std::swap(Order[I - 1], Order[Rng.nextBelow(I)]);
    for (std::size_t I = 0; I + 1 < NumNodes; ++I)
      Next[Order[I]] = Order[I + 1];
    Next[Order.back()] = Order.front();
  }
  std::vector<double> Cost(NumNodes);

  std::printf("=== Figure 2.5: DOACROSS vs DSWP on the Fig 2.4 list loop "
              "===\n\n");
  std::printf("%-12s  %12s  %12s  %12s  %12s\n", "doit() grain",
              "sequential", "DOACROSS 2T", "DSWP 2T", "PS-DSWP 3T");
  printRule();

  for (unsigned Grain : {8u, 64u, 512u}) {
    std::uint32_t Node = 0;
    StagedLoop L;
    L.NumIterations = NumNodes;
    L.Traverse = [&](std::uint64_t) {
      const std::int64_t Current = Node;
      Node = Next[Node]; // the carried dependence cycle
      return Current;
    };
    L.Work = [&](std::uint64_t Iter, std::int64_t Token) {
      Cost[Iter] = workloads::burnFlops(static_cast<double>(Token), Grain);
    };

    auto Timed = [&](auto &&Fn) {
      return minSeconds(Reps, [&] {
        Node = 0;
        return Fn();
      });
    };
    const double Seq = Timed([&] { return runStagedSequential(L); });
    const double Doacross = Timed([&] { return runDoacross(L, 2); });
    const double Dswp = Timed([&] { return runDswp(L, 2); });
    const double PsDswp = Timed([&] { return runDswp(L, 3); });
    std::printf("%-12u  %11.3fs  %11.3fs  %11.3fs  %11.3fs\n", Grain, Seq,
                Doacross, Dswp, PsDswp);
  }
  printRule();
  std::printf("(Fig 2.5's point: DOACROSS serializes on the traversal "
              "hand-off each iteration; DSWP's\n one-way pipeline tolerates "
              "the communication latency)\n");
  return 0;
}

//===- bench/bench_table5_2_scheduler_ratio.cpp - Table 5.2 --------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 5.2: the scheduler/worker ratio for the DOMORE benchmarks — the
/// fraction of the parallel region's wall-clock during which the scheduler
/// thread is busy (sequential outer-loop code, computeAddr, conflict
/// detection, dispatch). A large ratio caps DOMORE's scalability (§5.1).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

using namespace cip;
using namespace cip::bench;
using namespace cip::workloads;

int main() {
  const unsigned Reps = benchReps();
  const Scale S = benchScale();
  const std::vector<std::string> Names = {"blackscholes",  "cg",
                                          "eclat",         "fluidanimate1",
                                          "llubench",      "symm"};

  std::printf("=== Table 5.2: DOMORE scheduler/worker ratio ===\n\n");
  std::printf("%-16s  %14s  %14s\n", "benchmark", "scheduler %",
              "sync conds");
  printRule();
  for (const std::string &Name : Names) {
    auto W = makeWorkload(Name, S);
    if (!W)
      return 1;
    double BestRatio = 100.0;
    std::uint64_t Syncs = 0;
    for (unsigned R = 0; R < Reps; ++R) {
      W->reset();
      domore::DomoreStats Stats;
      harness::runDomore(*W, /*NumThreads=*/3,
                         domore::PolicyKind::RoundRobin, &Stats);
      BestRatio = std::min(BestRatio, Stats.schedulerRatioPercent());
      Syncs = Stats.SyncConditions;
    }
    std::printf("%-16s  %13.1f%%  %14llu\n", W->name(), BestRatio,
                static_cast<unsigned long long>(Syncs));
  }
  printRule();
  std::printf("(paper: 1.5%% SYMM .. 21.5%% FLUIDANIMATE-1; small "
              "schedulers scale, heavy ones bottleneck)\n");
  return 0;
}

//===- bench/bench_fig5_2_speccross.cpp - Figure 5.2 reproduction --------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5.2(a)-(h): loop speedup of pthread-barrier parallelization vs
/// SPECCROSS, over the best sequential execution, across thread counts, for
/// the eight SPECCROSS benchmarks of Table 5.1. SPECCROSS runs the paper's
/// full flow: a profiling pass on the train input picks the speculative
/// range, then speculative execution uses it (§4.4). Also prints the §1.2
/// headline geomeans.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

using namespace cip;
using namespace cip::bench;
using namespace cip::workloads;

int main() {
  const auto Threads = benchThreads();
  const unsigned Reps = benchReps();
  const Scale S = benchScale();
  const std::vector<std::string> Names = {
      "cg",     "equake",  "fdtd",    "fluidanimate2",
      "jacobi", "llubench", "loopdep", "symm"};

  std::printf("=== Figure 5.2: pthread-barrier vs SPECCROSS loop speedup ===\n");
  std::printf("(speedup over best sequential execution; %u reps min)\n\n",
              Reps);

  std::vector<double> SpecOverSeq, BarrierOverSeq;

  for (const std::string &Name : Names) {
    auto W = makeWorkload(Name, S);
    if (!W) {
      std::printf("unknown workload '%s'\n", Name.c_str());
      return 1;
    }
    const double Seq = sequentialSeconds(*W, Reps);

    // Profile on the train input (always), as the paper does.
    auto TrainW = makeWorkload(Name, Scale::Train);
    speccross::ProfileResult Profile;
    harness::profiledSpecDistance(*TrainW, 24, &Profile);

    std::vector<double> BarrierSp, SpecSp;
    for (unsigned T : Threads) {
      const std::uint64_t Dist = Profile.recommendedSpecDistance(T);
      BarrierSp.push_back(Seq / barrierSeconds(*W, T, Reps));
      SpecSp.push_back(Seq / speccrossSeconds(*W, T, Reps, Dist));
    }
    printRule();
    if (Profile.conflictFree())
      std::printf("%s  (seq %.3fs, profiled conflict-free: unthrottled)\n",
                  W->name(), Seq);
    else
      std::printf("%s  (seq %.3fs, profiled min dep distance %llu)\n",
                  W->name(), Seq,
                  static_cast<unsigned long long>(
                      Profile.MinDependenceDistance));
    printSeriesHeader("  series", Threads);
    printSeriesRow("  pthread barrier", BarrierSp);
    printSeriesRow("  SPECCROSS", SpecSp);

    BarrierOverSeq.push_back(
        *std::max_element(BarrierSp.begin(), BarrierSp.end()));
    SpecOverSeq.push_back(*std::max_element(SpecSp.begin(), SpecSp.end()));
  }

  printRule();
  std::printf("geomean best SPECCROSS speedup over sequential: %.2fx\n",
              geomean(SpecOverSeq));
  std::printf("geomean best barrier speedup over sequential:   %.2fx\n",
              geomean(BarrierOverSeq));
  std::printf("(paper, 24 real cores: 4.6x vs 1.3x)\n");
  return 0;
}

//===- bench/bench_fig5_1_domore.cpp - Figure 5.1 reproduction -----------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5.1(a)-(f): loop speedup of code parallelized with pthread
/// barriers versus DOMORE, over the best sequential execution, across
/// thread counts, for the six DOMORE benchmarks of Table 5.1. Also prints
/// the headline geomean comparisons of §1.2 (DOMORE over barrier code and
/// over sequential).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

using namespace cip;
using namespace cip::bench;
using namespace cip::workloads;

int main() {
  const auto Threads = benchThreads();
  const unsigned Reps = benchReps();
  const Scale S = benchScale();
  const std::vector<std::string> Names = {"blackscholes",  "cg",
                                          "eclat",         "fluidanimate1",
                                          "llubench",      "symm"};

  std::printf("=== Figure 5.1: pthread-barrier vs DOMORE loop speedup ===\n");
  std::printf("(speedup over best sequential execution; %u reps min)\n\n",
              Reps);

  std::vector<double> DomoreOverBarrier;
  std::vector<double> DomoreOverSeq;

  for (const std::string &Name : Names) {
    auto W = makeWorkload(Name, S);
    if (!W) {
      std::printf("unknown workload '%s'\n", Name.c_str());
      return 1;
    }
    const double Seq = sequentialSeconds(*W, Reps);

    std::vector<double> BarrierSp, DomoreSp;
    for (unsigned T : Threads) {
      BarrierSp.push_back(Seq / barrierSeconds(*W, T, Reps));
      DomoreSp.push_back(Seq / domoreSeconds(*W, T, Reps));
    }
    printRule();
    std::printf("%s  (seq %.3fs, plan %s)\n", W->name(), Seq,
                W->innerLoopPlan());
    printSeriesHeader("  series", Threads);
    printSeriesRow("  pthread barrier", BarrierSp);
    printSeriesRow("  DOMORE", DomoreSp);

    const double BestBarrier =
        *std::max_element(BarrierSp.begin(), BarrierSp.end());
    const double BestDomore =
        *std::max_element(DomoreSp.begin(), DomoreSp.end());
    DomoreOverBarrier.push_back(BestDomore / BestBarrier);
    DomoreOverSeq.push_back(BestDomore);
  }

  printRule();
  std::printf("geomean best DOMORE speedup over sequential: %.2fx\n",
              geomean(DomoreOverSeq));
  std::printf("geomean best DOMORE over best barrier code:  %.2fx\n",
              geomean(DomoreOverBarrier));
  std::printf("(paper, 24 real cores: 3.2x and 2.1x)\n");
  return 0;
}

//===- bench/bench_ckpt_substrate.cpp - Checkpoint substrate comparison --===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Head-to-head of the checkpoint substrates (DESIGN.md §16) on the
/// bigstate workload: a large registered footprint of which every epoch
/// dirties only a few scattered pages — the regime where eager checkpointing
/// (copy everything, every round) loses to page-granular dirty tracking by
/// the footprint/write-set ratio.
///
/// Two schemes per substrate, both taking the same number of snapshots:
///
///  * ckpt-direct — sequential epochs with a snapshot after each one, the
///    snapshot calls timed directly. The row's `seconds` IS the substrate's
///    checkpoint time, so CI gates the win with
///      compare_bench.py eager.json pagedirty.json --min-speedup 2.0
///    on these rows alone (grep '"scheme":"ckpt-direct"').
///
///  * speccross-ckpt — the full speculative engine at 4 threads with a
///    checkpoint every epoch; `seconds` is end-to-end wall time and the
///    row's counters carry checkpoint_ns / dirty_pages / ckpt_bytes_copied.
///
/// The bench also cross-checks the bit-identical-restore contract: the
/// final checksum must match across every substrate (exit 1 otherwise).
/// CIP_CKPT, when set, pins a single substrate; default sweeps all three
/// (softdirty degrades to full copies on kernels without
/// CONFIG_MEM_SOFT_DIRTY — the printed dirty-page column shows which).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"
#include "support/Timer.h"
#include "workloads/BigState.h"

using namespace cip;
using namespace cip::bench;
using namespace cip::workloads;

namespace {

struct DirectResult {
  double CkptSeconds = 0.0;
  std::uint64_t Snapshots = 0;
  std::uint64_t DirtyPages = 0;
  std::uint64_t BytesCopied = 0;
  std::uint64_t Checksum = 0;
};

/// Sequential epochs, one timed snapshot after each: pure substrate cost at
/// a fixed snapshot count, no engine noise.
DirectResult runDirect(BigStateWorkload &W) {
  DirectResult R;
  W.reset();
  speccross::CheckpointRegistry Reg; // substrate from CIP_CKPT
  W.registerState(Reg);
  for (std::uint32_t E = 0; E < W.numEpochs(); ++E) {
    const std::uint64_t T0 = nowNanos();
    Reg.takeSnapshot();
    R.CkptSeconds += static_cast<double>(nowNanos() - T0) * 1e-9;
    R.DirtyPages += Reg.lastDirtyPages();
    R.BytesCopied += Reg.lastBytesCopied();
    for (std::size_t T = 0, N = W.numTasks(E); T < N; ++T)
      W.runTask(E, T);
  }
  // One restore + replay of the last epoch: the restore path is part of
  // what a substrate must get right, so exercise it every run.
  Reg.restoreSnapshot();
  for (std::size_t T = 0, N = W.numTasks(W.numEpochs() - 1); T < N; ++T)
    W.runTask(W.numEpochs() - 1, T);
  R.Snapshots = Reg.snapshotsTaken();
  R.Checksum = W.checksum();
  return R;
}

} // namespace

int main() {
  const unsigned Reps = benchReps();
  const Scale S = benchScale();
  // The acceptance comparison runs at 4 threads (3 workers + checker).
  const unsigned Threads = 4;

  std::vector<const char *> Substrates;
  if (std::getenv("CIP_CKPT"))
    Substrates.push_back(
        memory::substrateName(memory::activeSubstrateKind()));
  else
    Substrates = {"eager", "pagedirty", "softdirty"};

  BigStateWorkload Probe(BigStateParams::forScale(S));
  std::printf("=== Checkpoint substrates on bigstate (%.1f MiB footprint, "
              "%u epochs, %u threads) ===\n\n",
              static_cast<double>(Probe.stateBytes()) / (1024.0 * 1024.0),
              Probe.numEpochs(), Threads);
  std::printf("%-10s  %9s  %11s  %11s  %11s  %9s\n", "substrate", "snaps",
              "ckpt-ms", "ms/snap", "dirty-pages", "copied-MB");
  printRule();

  std::uint64_t WantSum = 0;
  bool SumsAgree = true;
  for (const char *Substrate : Substrates) {
    setenv("CIP_CKPT", Substrate, 1);

    // Scheme 1: direct substrate cost. seconds == checkpoint time.
    BigStateWorkload W(BigStateParams::forScale(S));
    DirectResult Best;
    for (unsigned R = 0; R < Reps; ++R) {
      const DirectResult Cur = runDirect(W);
      if (R == 0 || Cur.CkptSeconds < Best.CkptSeconds)
        Best = Cur;
    }
    std::printf("%-10s  %9llu  %11.3f  %11.4f  %11llu  %9.2f\n", Substrate,
                static_cast<unsigned long long>(Best.Snapshots),
                Best.CkptSeconds * 1e3,
                Best.CkptSeconds * 1e3 /
                    static_cast<double>(Best.Snapshots ? Best.Snapshots : 1),
                static_cast<unsigned long long>(Best.DirtyPages),
                static_cast<double>(Best.BytesCopied) / (1024.0 * 1024.0));
    if (WantSum == 0)
      WantSum = Best.Checksum;
    else if (Best.Checksum != WantSum)
      SumsAgree = false;

    harness::ExecResult DirectRow;
    DirectRow.Seconds = Best.CkptSeconds;
    DirectRow.Checksum = Best.Checksum;
    recordRun(W, "ckpt-direct", 1, Reps, DirectRow);

    // Scheme 2: the full engine, checkpoint every epoch.
    const harness::ExecResult Engine = bestRun(Reps, [&] {
      W.reset();
      speccross::SpecConfig Cfg;
      Cfg.NumWorkers = Threads > 1 ? Threads - 1 : 1;
      Cfg.Scheme = W.preferredSignature();
      Cfg.CheckpointIntervalEpochs = 1;
      return harness::runSpecCross(W, Cfg);
    });
    if (Engine.Checksum != WantSum)
      SumsAgree = false;
    recordRun(W, "speccross-ckpt", Threads, Reps, Engine);
  }
  printRule();

  if (!SumsAgree) {
    std::fprintf(stderr, "error: checksum diverged across substrates — a "
                         "restore lost or corrupted committed state\n");
    return 1;
  }
  std::printf("(checksum identical across %zu substrate(s); ckpt-direct "
              "rows carry pure checkpoint time for compare_bench gating)\n",
              Substrates.size());
  return 0;
}

//===- bench/bench_fig5_3_checkpointing.cpp - Figure 5.3 -----------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5.3: geomean loop speedup as the number of checkpoints varies,
/// with and without one randomly-placed (here: deterministically injected)
/// misspeculation. More checkpoints cost more snapshot time but shrink the
/// re-execution window after a rollback.
///
/// The sweep additionally runs once per checkpoint substrate (DESIGN.md
/// §16): eager pays the full footprint copy at every checkpoint, so its
/// curve bends down fastest as the count grows; page-dirty flattens the
/// left side of the figure. CIP_CKPT, when set, pins the whole sweep to
/// that substrate instead (EXPERIMENTS.md has the methodology).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

using namespace cip;
using namespace cip::bench;
using namespace cip::workloads;

namespace {

double specRun(Workload &W, unsigned Threads, std::uint64_t Dist,
               unsigned NumCheckpoints, bool InjectMisspec, unsigned Reps) {
  const std::uint32_t Interval =
      std::max(1u, W.numEpochs() / std::max(1u, NumCheckpoints));
  return minSeconds(Reps, [&] {
    W.reset();
    speccross::SpecConfig Cfg;
    Cfg.NumWorkers = Threads;
    Cfg.Scheme = W.preferredSignature();
    Cfg.SpecDistance = Dist;
    Cfg.CheckpointIntervalEpochs = Interval;
    if (InjectMisspec)
      Cfg.InjectMisspecAtEpoch = W.numEpochs() / 2;
    return harness::runSpecCross(W, Cfg).Seconds;
  });
}

} // namespace

int main() {
  const unsigned Reps = benchReps();
  const Scale S = benchScale();
  // Each checkpoint is a full rendezvous (and, in this implementation, a
  // worker respawn), so on the 2-core reproduction machine the sweep runs
  // at 4 threads to keep the checkpoint cost representative rather than
  // dominated by 25-way oversubscribed spawns.
  const unsigned Threads = std::min<unsigned>(4, benchThreads().back());
  const std::vector<std::string> Names = {
      "cg",     "equake",  "fdtd",    "fluidanimate2",
      "jacobi", "llubench", "loopdep", "symm"};
  const std::vector<unsigned> Checkpoints = {2, 5, 10, 20, 50, 100};

  // One sweep per substrate; CIP_CKPT (when set) pins a single one — the
  // registries re-read the knob at construction, so setenv between sweeps
  // is enough to switch every checkpoint the runs take.
  std::vector<const char *> Substrates;
  if (std::getenv("CIP_CKPT"))
    Substrates.push_back(
        memory::substrateName(memory::activeSubstrateKind()));
  else
    Substrates = {"eager", "pagedirty"};

  std::printf("=== Figure 5.3: speedup vs number of checkpoints "
              "(%u threads) ===\n", Threads);

  for (const char *Substrate : Substrates) {
    setenv("CIP_CKPT", Substrate, 1);
    std::printf("\n--- substrate: %s ---\n", Substrate);
    std::printf("%-12s  %-12s  %-12s\n", "checkpoints", "no misspec.",
                "with misspec.");
    printRule();

    for (unsigned NumCk : Checkpoints) {
      std::vector<double> Clean, Faulted;
      for (const std::string &Name : Names) {
        auto W = makeWorkload(Name, S);
        if (!W)
          return 1;
        const double Seq = sequentialSeconds(*W, Reps);
        auto TrainW = makeWorkload(Name, Scale::Train);
        const std::uint64_t Dist =
            harness::profiledSpecDistance(*TrainW, Threads);
        Clean.push_back(Seq /
                        specRun(*W, Threads, Dist, NumCk, false, Reps));
        Faulted.push_back(Seq /
                          specRun(*W, Threads, Dist, NumCk, true, Reps));
      }
      std::printf("%-12u  %9.2fx  %9.2fx\n", NumCk, geomean(Clean),
                  geomean(Faulted));
    }
    printRule();
  }
  std::printf("(paper: checkpoint overhead grows with count; "
              "re-execution cost after a rollback shrinks; page-granular "
              "substrates flatten the high-count end)\n");
  return 0;
}

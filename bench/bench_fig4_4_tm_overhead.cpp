//===- bench/bench_fig4_4_tm_overhead.cpp - Figure 4.4 -------------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4.4 / §4.1.2: why SPECCROSS beats TM-style speculation for this
/// program pattern. A transactional scheme (Grace/TCC commit ordering) must
/// validate every transaction against every overlapping transaction — even
/// ones from the same loop invocation, which are guaranteed independent at
/// compile time. SPECCROSS skips same-epoch pairs entirely. We run the same
/// engine in both validation modes and report the checker's signature
/// comparison counts and wall clock.
///
/// Restricted to workloads whose same-epoch signatures are disjoint, so the
/// TM mode's extra comparisons measure pure overhead rather than
/// signature-approximation false conflicts.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

using namespace cip;
using namespace cip::bench;
using namespace cip::workloads;

int main() {
  const unsigned Reps = benchReps();
  const Scale S = benchScale();
  const unsigned Threads = 4;
  const std::vector<std::string> Names = {"equake", "llubench", "symm"};

  std::printf("=== Figure 4.4: TM-style vs SPECCROSS validation "
              "(%u threads) ===\n\n", Threads);
  std::printf("%-12s  %14s  %14s  %10s  %10s\n", "workload", "SPECCROSS cmp",
              "TM-style cmp", "SPECX time", "TM time");
  printRule();

  for (const std::string &Name : Names) {
    auto W = makeWorkload(Name, S);
    if (!W)
      return 1;
    auto TrainW = makeWorkload(Name, Scale::Train);
    const std::uint64_t Dist = harness::profiledSpecDistance(*TrainW, Threads);

    auto RunMode = [&](bool TmStyle, speccross::SpecStats &Stats) {
      return minSeconds(Reps, [&] {
        W->reset();
        speccross::SpecConfig Cfg;
        Cfg.NumWorkers = Threads;
        Cfg.Scheme = W->preferredSignature();
        Cfg.SpecDistance = Dist;
        Cfg.TmStyleValidation = TmStyle;
        return harness::runSpecCross(*W, Cfg,
                                     speccross::SpecMode::Speculation,
                                     &Stats)
            .Seconds;
      });
    };

    speccross::SpecStats SpecStats, TmStats;
    const double SpecSecs = RunMode(false, SpecStats);
    const double TmSecs = RunMode(true, TmStats);
    std::printf("%-12s  %14llu  %14llu  %9.3fs  %9.3fs\n", W->name(),
                static_cast<unsigned long long>(
                    SpecStats.SignatureComparisons),
                static_cast<unsigned long long>(TmStats.SignatureComparisons),
                SpecSecs, TmSecs);
  }
  printRule();
  std::printf("(the paper's Fig 4.4 argument: TM compares iteration 2.1 "
              "against 2.2..2.8 although the whole\n invocation is "
              "independent by construction; SPECCROSS never pays for "
              "same-epoch pairs)\n");
  return 0;
}

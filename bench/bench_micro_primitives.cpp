//===- bench/bench_micro_primitives.cpp - Runtime primitive costs --------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark microbenchmarks for the runtime primitives both systems
/// are built from: the lock-free SPSC queue (DOMORE's scheduler/worker
/// channel), the shadow-memory lookup/update (conflict detection), access
/// signatures (SPECCROSS's misspeculation detection), the barriers being
/// replaced, and checkpoint snapshots (rollback cost). These are the
/// constants behind every figure.
///
//===----------------------------------------------------------------------===//

#include "domore/ShadowMemory.h"
#include "speccross/Checkpoint.h"
#include "speccross/Signature.h"
#include "support/Barrier.h"
#include "support/SPSCQueue.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace cip;

static void BM_SPSCQueuePingPong(benchmark::State &State) {
  SPSCQueue<std::uint64_t> Q(1024);
  std::atomic<bool> Stop{false};
  std::thread Consumer([&] {
    std::uint64_t V;
    while (!Stop.load(std::memory_order_acquire))
      while (Q.tryConsume(V))
        benchmark::DoNotOptimize(V);
  });
  std::uint64_t I = 0;
  for (auto _ : State)
    Q.produce(I++);
  Stop.store(true, std::memory_order_release);
  Consumer.join();
  State.SetItemsProcessed(static_cast<std::int64_t>(I));
}
BENCHMARK(BM_SPSCQueuePingPong);

static void BM_ShadowDenseUpdateLookup(benchmark::State &State) {
  domore::DenseShadowMemory S(1 << 16);
  std::uint64_t A = 0;
  for (auto _ : State) {
    S.update(A & 0xffff, 1, static_cast<std::int64_t>(A));
    benchmark::DoNotOptimize(S.lookup((A * 7) & 0xffff));
    ++A;
  }
}
BENCHMARK(BM_ShadowDenseUpdateLookup);

static void BM_ShadowHashUpdateLookup(benchmark::State &State) {
  domore::HashShadowMemory S(1 << 12);
  std::uint64_t A = 0;
  for (auto _ : State) {
    S.update(A & 0xfff, 1, static_cast<std::int64_t>(A));
    benchmark::DoNotOptimize(S.lookup((A * 7) & 0xfff));
    ++A;
  }
}
BENCHMARK(BM_ShadowHashUpdateLookup);

static void BM_RangeSignature(benchmark::State &State) {
  speccross::RangeSignature A, B;
  for (std::uint64_t I = 0; I < 16; ++I)
    B.add(1000 + I);
  std::uint64_t X = 0;
  for (auto _ : State) {
    A.clear();
    A.add(X);
    A.add(X + 8);
    benchmark::DoNotOptimize(A.overlaps(B));
    ++X;
  }
}
BENCHMARK(BM_RangeSignature);

static void BM_BloomSignature(benchmark::State &State) {
  speccross::BloomSignature A, B;
  for (std::uint64_t I = 0; I < 16; ++I)
    B.add(1000 + I * 37);
  std::uint64_t X = 0;
  for (auto _ : State) {
    A.clear();
    A.add(X);
    A.add(X + 8);
    benchmark::DoNotOptimize(A.overlaps(B));
    ++X;
  }
}
BENCHMARK(BM_BloomSignature);

template <typename BarrierT> static void barrierBench(benchmark::State &State) {
  constexpr unsigned Threads = 2;
  BarrierT Bar(Threads);
  std::atomic<bool> Stop{false};
  // The peer checks the stop flag only *after* each wait, so its wait count
  // always pairs one-to-one with the main thread's (timing waits plus the
  // single post-Stop wait) — no thread can be left stranded at the barrier.
  std::thread Peer([&] {
    while (true) {
      Bar.wait();
      if (Stop.load(std::memory_order_acquire))
        break;
    }
  });
  for (auto _ : State)
    Bar.wait();
  Stop.store(true, std::memory_order_release);
  Bar.wait(); // pairs with the peer's final wait, which then sees Stop
  Peer.join();
}

static void BM_PthreadBarrier(benchmark::State &State) {
  barrierBench<PthreadBarrier>(State);
}
BENCHMARK(BM_PthreadBarrier);

static void BM_SpinBarrier(benchmark::State &State) {
  barrierBench<SpinBarrier>(State);
}
BENCHMARK(BM_SpinBarrier);

static void BM_CheckpointSnapshot(benchmark::State &State) {
  std::vector<double> Data(static_cast<std::size_t>(State.range(0)));
  speccross::CheckpointRegistry Reg;
  Reg.registerBuffer(Data);
  for (auto _ : State)
    Reg.takeSnapshot();
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(Data.size()) * 8);
}
BENCHMARK(BM_CheckpointSnapshot)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

BENCHMARK_MAIN();

//===- bench/bench_fig2_2_analysis_sensitivity.cpp - Figure 2.2 ----------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 2.2 / §2.1: the fragility of analysis-based parallelization. We
/// present the compiler pipeline with three variants of the same loop and
/// report the plan the static planner reaches:
///
///   affine     — a[j] updated with constant-offset indices: DOALL
///   indirect   — a[idx[j]] through an index array: only speculation left
///   reduction  — a[0] accumulated: provably sequential (None)
///
/// This is the gap runtime information closes: the profiler measures what
/// the may-dependences actually do, and DOMORE/SPECCROSS act on that.
///
//===----------------------------------------------------------------------===//

#include "analysis/DepProfiler.h"
#include "analysis/PDG.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "transform/Parallelizer.h"

#include <cstdio>

using namespace cip;
using namespace cip::ir;
using namespace cip::transform;

namespace {

enum class BodyKind { Affine, Indirect, Reduction };

Function *buildLoop(Module &M, BodyKind Kind, const char *Name) {
  GlobalArray *A = M.getArray("a") ? M.getArray("a")
                                   : M.createArray("a", 64);
  GlobalArray *Idx = M.getArray("idx") ? M.getArray("idx")
                                       : M.createArray("idx", 64);
  Function *F = M.createFunction(Name, 0);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *H = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.br(H);
  B.setInsertPoint(H);
  Instruction *J = B.phi("j");
  Instruction *C = B.cmp(Opcode::CmpLT, J, B.constant(64), "c");
  B.condBr(C, Body, Exit);
  B.setInsertPoint(Body);
  switch (Kind) {
  case BodyKind::Affine: {
    Instruction *V = B.load(A, J, "v");
    B.store(A, J, B.add(V, B.constant(1), "v2"));
    break;
  }
  case BodyKind::Indirect: {
    Instruction *Target = B.load(Idx, J, "target");
    Instruction *V = B.load(A, Target, "v");
    B.store(A, Target, B.add(V, B.constant(1), "v2"));
    break;
  }
  case BodyKind::Reduction: {
    Instruction *V = B.load(A, B.constant(0), "v");
    B.store(A, B.constant(0), B.add(V, J, "v2"));
    break;
  }
  }
  Instruction *JN = B.add(J, B.constant(1), "jn");
  B.br(H);
  B.setInsertPoint(Exit);
  B.ret(B.constant(0));
  J->addIncoming(B.constant(0), Entry);
  J->addIncoming(JN, Body);
  assert(verifyFunction(*F) && "fixture must verify");
  return F;
}

const char *planName(LoopPlan P) {
  switch (P) {
  case LoopPlan::Doall:
    return "DOALL";
  case LoopPlan::SpecDoall:
    return "Spec-DOALL";
  case LoopPlan::None:
    return "None (sequential)";
  }
  return "?";
}

} // namespace

int main() {
  std::printf("=== Figure 2.2 / §2.1: sensitivity of analysis-based "
              "parallelization ===\n\n");
  std::printf("%-12s  %-20s  %s\n", "variant", "static plan", "reason");
  std::printf("---------------------------------------------------------"
              "---------------\n");
  const struct {
    BodyKind Kind;
    const char *Label;
    const char *FnName;
  } Variants[] = {
      {BodyKind::Affine, "affine", "affine_loop"},
      {BodyKind::Indirect, "indirect", "indirect_loop"},
      {BodyKind::Reduction, "reduction", "reduction_loop"},
  };

  Module M;
  for (const auto &V : Variants) {
    Function *F = buildLoop(M, V.Kind, V.FnName);
    CFG G(*F);
    DominatorTree DT(G, false), PDT(G, true);
    LoopInfo LI(G, DT);
    analysis::PDG Pdg(*F, G, PDT, LI, *LI.topLevelLoops().front());
    const PlanResult P = planLoop(Pdg, G);
    std::printf("%-12s  %-20s  %s\n", V.Label, planName(P.Plan),
                P.Reason.c_str());
  }
  std::printf("---------------------------------------------------------"
              "---------------\n");
  std::printf("(the paper's Fig 2.2: moving from static to dynamic arrays "
              "flips DOALL to sequential;\n the indirect variant is where "
              "runtime information — DOMORE/SPECCROSS — recovers the "
              "parallelism)\n");
  return 0;
}

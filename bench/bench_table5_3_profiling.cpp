//===- bench/bench_table5_3_profiling.cpp - Table 5.3 --------------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 5.3: per SPECCROSS benchmark — number of tasks, epochs, checking
/// requests processed by the checker at 24 workers, and the minimum
/// dependence distance profiled on the train and ref inputs ("*" when the
/// profile is conflict-free, exactly as the paper prints it).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

using namespace cip;
using namespace cip::bench;
using namespace cip::workloads;

namespace {

std::string distanceString(const speccross::ProfileResult &P) {
  if (P.conflictFree())
    return "*";
  return std::to_string(P.MinDependenceDistance);
}

} // namespace

int main() {
  const std::vector<std::string> Names = {
      "cg",     "equake",  "fdtd",    "fluidanimate2",
      "jacobi", "llubench", "loopdep", "symm"};
  const unsigned Workers = 24;

  std::printf("=== Table 5.3: SPECCROSS workload details and profiled "
              "min dependence distance ===\n\n");
  std::printf("%-16s  %10s  %8s  %10s  %8s  %8s\n", "benchmark", "tasks",
              "epochs", "check req", "train", "ref");
  printRule();

  for (const std::string &Name : Names) {
    auto RefW = makeWorkload(Name, Scale::Ref);
    auto TrainW = makeWorkload(Name, Scale::Train);
    if (!RefW || !TrainW)
      return 1;

    speccross::ProfileResult TrainP, RefP;
    harness::profiledSpecDistance(*TrainW, Workers, &TrainP);
    harness::profiledSpecDistance(*RefW, Workers, &RefP);

    // Checking requests: one per task executed speculatively. Count them
    // on a real speculative run at the train scale (ref takes minutes on
    // this machine when oversubscribed 12x).
    TrainW->reset();
    speccross::SpecConfig Cfg;
    Cfg.NumWorkers = Workers;
    Cfg.Scheme = TrainW->preferredSignature();
    Cfg.SpecDistance = TrainP.recommendedSpecDistance(Workers);
    speccross::SpecStats Stats;
    harness::runSpecCross(*TrainW, Cfg, speccross::SpecMode::Speculation,
                          &Stats);

    std::printf("%-16s  %10llu  %8u  %10llu  %8s  %8s\n", RefW->name(),
                static_cast<unsigned long long>(RefW->totalTasks()),
                RefW->numEpochs(),
                static_cast<unsigned long long>(Stats.CheckRequests),
                distanceString(TrainP).c_str(),
                distanceString(RefP).c_str());
  }
  printRule();
  std::printf("(paper ref column: CG *, EQUAKE *, FDTD 599/799, "
              "FLUIDANIMATE 54/*, JACOBI 497/997,\n LLUBENCH *, LOOPDEP "
              "500/800, SYMM * — same shape reproduced; CG differs because\n"
              " the evaluated CG loop here is the Fig 3.1 nest with its "
              "72.4%% manifest rate)\n");
  return 0;
}

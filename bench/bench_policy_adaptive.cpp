//===- bench/bench_policy_adaptive.cpp - Adaptive policy engine bench ----===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive-policy experiment (DESIGN.md §11): the phase-shifting
/// workload alternates between a conflict-free regime and a conflict-heavy
/// regime, so no fixed technique is right for the whole run. This bench
/// runs every fixed technique *windowed through the same adaptive harness*
/// (so windowing overhead cancels out of the comparison), then the
/// threshold and bandit policies, and reports:
///
///  * per-phase steady-state quality: for each phase regime, the fixed
///    oracle is the least mean window cost over every technique and every
///    rep; the adaptive policy's cost is the least-over-reps mean of its
///    *settled* windows (past the first free+heavy discovery cycle, with
///    no switch in this window or the one before). Min-over-reps on both
///    sides keeps the estimator symmetric — a single-rep numerator against
///    a min-over-everything denominator charges the policy for scheduler
///    noise the oracle got to discard. The discovery cycle and switch lag
///    are real cost — excluded here but fully charged in the total-run
///    numbers below;
///  * total-run quality: worst-fixed total over adaptive total — what
///    adaptation buys over committing to the wrong technique offline, with
///    every discovery and switch penalty included.
///
/// The gate lines at the bottom mirror ISSUE acceptance (steady-state
/// within 10% of best fixed per phase; >= 1.3x over worst fixed) but the
/// bench always exits 0 on timing grounds — CI runs it as a non-fatal
/// report, like compare_bench.py. Checksum mismatches, by contrast, are
/// correctness bugs and exit 1.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"
#include "harness/Adaptive.h"
#include "workloads/PhaseShift.h"

#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

using namespace cip;
using namespace cip::bench;

namespace {

/// The fastest rep's result and decision/switch logs, plus every rep's
/// logs: per-phase steady-state numbers use the min over reps on *both*
/// sides of the ratio (the same estimator min-of-reps totals use), so one
/// scheduler hiccup in one rep can't swing the comparison either way.
struct AdaptiveRun {
  harness::ExecResult Best;
  harness::AdaptiveStats Stats;
  std::vector<harness::AdaptiveStats> AllStats;
};

AdaptiveRun runPolicy(workloads::Workload &W, unsigned Threads, unsigned Reps,
                      const policy::PolicyConfig &Cfg) {
  AdaptiveRun Out;
  for (unsigned R = 0; R < Reps; ++R) {
    W.reset();
    harness::AdaptiveStats St;
    harness::ExecResult Res = harness::runAdaptive(W, Threads, Cfg, &St);
    if (R == 0 || Res.Seconds < Out.Best.Seconds) {
      Out.Best = Res;
      Out.Stats = St;
    }
    Out.AllStats.push_back(std::move(St));
  }
  return Out;
}

void checkChecksum(const char *What, const harness::ExecResult &Res,
                   std::uint64_t Want) {
  if (Res.Checksum == Want)
    return;
  std::fprintf(stderr,
               "error: %s checksum %016llx != sequential %016llx — "
               "the executor broke cross-epoch ordering\n",
               What, static_cast<unsigned long long>(Res.Checksum),
               static_cast<unsigned long long>(Want));
  std::exit(1);
}

/// Window w of \p St belongs to the heavy regime?
bool heavyWindow(const workloads::PhaseShiftWorkload &W,
                 const telemetry::PolicyDecisionRecord &D) {
  return W.heavyPhase(D.FirstEpoch);
}

/// Settled window: past the discovery cycle, and the policy held its
/// technique here and in the previous window (so this measures steady
/// state, not switch lag).
bool settled(const harness::AdaptiveStats &St, std::size_t I,
             std::size_t WarmupWindows) {
  return I >= WarmupWindows && !St.Decisions[I].Switched &&
         !St.Decisions[I - 1].Switched;
}

/// Mean settled-window cost per phase regime for one rep's decision log,
/// or -1 for a phase with no settled windows in this rep.
void settledMeans(const harness::AdaptiveStats &St,
                  const workloads::PhaseShiftWorkload &W,
                  std::size_t WarmupWindows, double Mean[2]) {
  double Sum[2] = {0.0, 0.0};
  std::size_t N[2] = {0, 0};
  for (std::size_t I = 0; I < St.Decisions.size(); ++I) {
    if (!settled(St, I, WarmupWindows))
      continue;
    const unsigned P = heavyWindow(W, St.Decisions[I]) ? 1 : 0;
    Sum[P] += St.Decisions[I].WindowSeconds;
    ++N[P];
  }
  for (unsigned P = 0; P < 2; ++P)
    Mean[P] = N[P] ? Sum[P] / static_cast<double>(N[P]) : -1.0;
}

/// Per-phase steady-state ratios for an adaptive run. Both sides use the
/// min-over-reps estimator: the adaptive cost is the min over reps of the
/// mean settled-window time in that regime; the fixed cost is the min over
/// techniques and reps of the mean window time in the same regime. A
/// single-rep numerator against a min-over-everything denominator would
/// charge the adaptive run for scheduler noise the fixed side got to
/// discard (winner's curse).
struct SteadyState {
  double Ratio[2] = {0.0, 0.0}; // [free, heavy]
  double worst() const {
    return Ratio[0] > Ratio[1] ? Ratio[0] : Ratio[1];
  }
};

SteadyState steadyState(const AdaptiveRun &Run, const double BestFixedMean[2],
                        const workloads::PhaseShiftWorkload &W,
                        std::size_t WarmupWindows) {
  SteadyState Out;
  double Mine[2] = {-1.0, -1.0};
  for (const harness::AdaptiveStats &St : Run.AllStats) {
    double Mean[2];
    settledMeans(St, W, WarmupWindows, Mean);
    for (unsigned P = 0; P < 2; ++P)
      if (Mean[P] >= 0.0 && (Mine[P] < 0.0 || Mean[P] < Mine[P]))
        Mine[P] = Mean[P];
  }
  for (unsigned P = 0; P < 2; ++P)
    if (Mine[P] >= 0.0 && BestFixedMean[P] > 0.0)
      Out.Ratio[P] = Mine[P] / BestFixedMean[P];
  return Out;
}

} // namespace

int main() {
  const workloads::Scale S = benchScale();
  workloads::PhaseShiftParams Params = workloads::PhaseShiftParams::forScale(S);
  workloads::PhaseShiftWorkload W(Params);

  // Phases span four decision windows, so the policy has settled windows to
  // be judged on and the window never straddles a phase edge.
  const std::uint32_t WindowEpochs =
      Params.PhaseLen >= 4 ? Params.PhaseLen / 4 : 1;
  const std::size_t WindowsPerPhase = Params.PhaseLen / WindowEpochs;
  // One full free+heavy cycle is the policy's discovery period.
  const std::size_t WarmupWindows = 2 * WindowsPerPhase;
  const unsigned Reps = benchReps();

  // The acceptance experiment runs at four threads; CIP_BENCH_THREADS
  // overrides for exploration. The techniques need a worker besides the
  // control/checker thread, so single-thread points are skipped.
  std::vector<unsigned> Threads{4};
  if (std::getenv("CIP_BENCH_THREADS"))
    Threads = benchThreads();

  std::printf("Adaptive policy engine on phaseshift (Huang Table 5.3 run "
              "online; DESIGN.md §11)\n");
  std::printf("scale %s: %u epochs, phase length %u, %u tasks/epoch, "
              "window %u epochs, reps %u\n",
              benchScaleName(), Params.Epochs, Params.PhaseLen, Params.Rows,
              WindowEpochs, Reps);
  printRule();

  const double SeqSeconds = sequentialSeconds(W, Reps);
  const std::uint64_t SeqSum = W.checksum();
  std::printf("%-20s %9.3f ms\n", "sequential", SeqSeconds * 1e3);

  const std::uint32_t Mask = harness::applicabilityMask(W);

  for (unsigned T : Threads) {
    if (T < 2) {
      std::printf("\n-- %u thread: skipped (windowed techniques need a "
                  "worker besides the control thread)\n", T);
      continue;
    }
    std::printf("\n-- %u threads --\n", T);

    // Every applicable fixed technique, windowed through the same harness.
    std::vector<std::pair<policy::Technique, AdaptiveRun>> Fixed;
    for (unsigned TechI = 0; TechI < policy::NumTechniques; ++TechI) {
      const policy::Technique Tech = static_cast<policy::Technique>(TechI);
      if (!(Mask & policy::techniqueBit(Tech)))
        continue;
      policy::PolicyConfig Cfg;
      Cfg.Kind = policy::PolicyKind::Fixed;
      Cfg.FixedTech = Tech;
      Cfg.WindowEpochs = WindowEpochs;
      AdaptiveRun Run = runPolicy(W, T, Reps, Cfg);
      checkChecksum(policy::techniqueName(Tech), Run.Best, SeqSum);
      Fixed.emplace_back(Tech, std::move(Run));
    }

    // Per-phase and total oracle bounds across the fixed runs. The
    // per-phase oracle is the min over techniques *and reps* of the mean
    // window cost in that regime — the same estimator steadyState applies
    // to the adaptive side.
    const char *BestFixedName[2] = {"", ""};
    double BestFixedMean[2] = {-1.0, -1.0};
    double BestTotal = 0.0, WorstTotal = 0.0;
    const char *BestName = "", *WorstName = "";
    for (const auto &[Tech, Run] : Fixed) {
      double PhaseSum[2] = {0.0, 0.0};
      for (const telemetry::PolicyDecisionRecord &D : Run.Stats.Decisions)
        PhaseSum[heavyWindow(W, D) ? 1 : 0] += D.WindowSeconds;
      for (const harness::AdaptiveStats &St : Run.AllStats) {
        double RepSum[2] = {0.0, 0.0};
        std::size_t RepN[2] = {0, 0};
        for (const telemetry::PolicyDecisionRecord &D : St.Decisions) {
          const unsigned P = heavyWindow(W, D) ? 1 : 0;
          RepSum[P] += D.WindowSeconds;
          ++RepN[P];
        }
        for (unsigned P = 0; P < 2; ++P) {
          if (!RepN[P])
            continue;
          const double Mean = RepSum[P] / static_cast<double>(RepN[P]);
          if (BestFixedMean[P] < 0.0 || Mean < BestFixedMean[P]) {
            BestFixedMean[P] = Mean;
            BestFixedName[P] = policy::techniqueName(Tech);
          }
        }
      }
      std::printf("%-20s %9.3f ms  %5.2fx seq  (free %.3f ms, heavy %.3f "
                  "ms)\n",
                  policy::techniqueName(Tech), Run.Best.Seconds * 1e3,
                  SeqSeconds / Run.Best.Seconds, PhaseSum[0] * 1e3,
                  PhaseSum[1] * 1e3);
      if (BestTotal == 0.0 || Run.Best.Seconds < BestTotal) {
        BestTotal = Run.Best.Seconds;
        BestName = policy::techniqueName(Tech);
      }
      if (Run.Best.Seconds > WorstTotal) {
        WorstTotal = Run.Best.Seconds;
        WorstName = policy::techniqueName(Tech);
      }
    }
    std::printf("%-20s best total %s, worst total %s (%.2fx apart); best "
                "per phase: free=%s heavy=%s\n",
                "(fixed oracle)", BestName, WorstName,
                BestTotal > 0.0 ? WorstTotal / BestTotal : 0.0,
                BestFixedName[0], BestFixedName[1]);

    struct PolicyPoint {
      const char *Label;
      policy::PolicyKind Kind;
      bool Trace;
    };
    const PolicyPoint Points[] = {
        {"adaptive-threshold", policy::PolicyKind::Threshold, true},
        {"adaptive-bandit", policy::PolicyKind::Bandit, false},
    };
    SteadyState ThrSteady;
    double ThrVsWorst = 0.0;
    for (const PolicyPoint &P : Points) {
      policy::PolicyConfig Cfg;
      Cfg.Kind = P.Kind;
      Cfg.WindowEpochs = WindowEpochs;
      Cfg.Seed = 1;
      AdaptiveRun Run = runPolicy(W, T, Reps, Cfg);
      checkChecksum(P.Label, Run.Best, SeqSum);
      recordAdaptiveRun(W, P.Label, T, Reps, Run.Best, Run.Stats);

      const SteadyState Steady =
          steadyState(Run, BestFixedMean, W, WarmupWindows);
      const double VsWorst =
          Run.Best.Seconds > 0.0 ? WorstTotal / Run.Best.Seconds : 0.0;
      std::printf("%-20s %9.3f ms  %5.2fx seq  switches=%-2zu "
                  "steady free %.3fx heavy %.3fx  vs-worst %.2fx\n",
                  P.Label, Run.Best.Seconds * 1e3,
                  SeqSeconds / Run.Best.Seconds, Run.Stats.Switches.size(),
                  Steady.Ratio[0], Steady.Ratio[1], VsWorst);
      std::printf("%-20s overhead: decisions %llu ns, teardown %llu ns "
                  "(%.4f%% of run)\n",
                  "",
                  static_cast<unsigned long long>(Run.Stats.DecisionNanos),
                  static_cast<unsigned long long>(Run.Stats.TeardownNanos),
                  100.0 *
                      static_cast<double>(Run.Stats.DecisionNanos +
                                          Run.Stats.TeardownNanos) *
                      1e-9 / Run.Best.Seconds);
      if (P.Trace) {
        for (const telemetry::PolicyDecisionRecord &D : Run.Stats.Decisions)
          std::printf("  win %2u [%s] %-10s %-22s %8.3f ms%s%s\n", D.Window,
                      heavyWindow(W, D) ? "heavy" : "free ", D.Technique,
                      D.Reason, D.WindowSeconds * 1e3,
                      D.Switched ? "  <-switch" : "",
                      D.Explore ? " (explore)" : "");
        ThrSteady = Steady;
        ThrVsWorst = VsWorst;
      }
    }

    // The acceptance gates (ISSUE): informative here, enforced only at the
    // designated 4-thread point by the driver reading these lines.
    if (T == 4) {
      printRule();
      std::printf("gate: threshold steady-state within 10%% of best fixed "
                  "per phase: free %.3fx heavy %.3fx %s\n",
                  ThrSteady.Ratio[0], ThrSteady.Ratio[1],
                  ThrSteady.worst() > 0.0 && ThrSteady.worst() <= 1.10
                      ? "PASS"
                      : "MISS");
      std::printf("gate: threshold >= 1.3x over worst fixed: %.2fx %s\n",
                  ThrVsWorst, ThrVsWorst >= 1.3 ? "PASS" : "MISS");
    }
  }
  return 0;
}

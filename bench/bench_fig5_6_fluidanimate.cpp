//===- bench/bench_fig5_6_fluidanimate.cpp - Figure 5.6 case study -------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5.6 / §5.4: the FLUIDANIMATE case study. The paper compares five
/// parallelizations of the whole-frame loop; this reproduction maps them to:
///
///   LOCALWRITE + Barrier   -> pthread-barrier executor (owner-partitioned
///                             tasks are what LOCALWRITE leaves behind)
///   LOCALWRITE + SpecCross -> SPECCROSS with profiled throttle
///   DOMORE + Barrier       -> DOMORE engine with owner-compute policy and
///                             dedicated scheduler (no cross-invocation
///                             speculation; conflicts synchronized)
///   DOMORE + SpecCross     -> the §3.4 duplicated-scheduler DOMORE, which
///                             is the form that composes with SPECCROSS
///   MANUAL (DOANY+Barrier) -> barrier executor at the paper-reported
///                             power-of-two thread counts only
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

using namespace cip;
using namespace cip::bench;
using namespace cip::workloads;

int main() {
  const auto Threads = benchThreads();
  const unsigned Reps = benchReps();
  const Scale S = benchScale();

  auto W = makeWorkload("fluidanimate2", S);
  if (!W)
    return 1;
  const double Seq = sequentialSeconds(*W, Reps);
  auto TrainW = makeWorkload("fluidanimate2", Scale::Train);
  speccross::ProfileResult Profile;
  harness::profiledSpecDistance(*TrainW, 24, &Profile);

  std::printf("=== Figure 5.6: FLUIDANIMATE whole-frame loop, five "
              "parallelizations ===\n");
  std::printf("(seq %.3fs; profiled min dep distance %llu ~ Table 5.3's "
              "54)\n\n", Seq,
              static_cast<unsigned long long>(
                  Profile.MinDependenceDistance));

  std::vector<double> LwBarrier, LwSpec, DomBarrier, DomSpec, Manual;
  for (unsigned T : Threads) {
    LwBarrier.push_back(Seq / barrierSeconds(*W, T, Reps));
    const std::uint64_t Dist = Profile.recommendedSpecDistance(T);
    LwSpec.push_back(Seq / speccrossSeconds(*W, T, Reps, Dist));
    DomBarrier.push_back(
        Seq / domoreSeconds(*W, T, Reps, domore::PolicyKind::OwnerCompute));
    DomSpec.push_back(Seq / minSeconds(Reps, [&] {
                        W->reset();
                        return harness::runDomoreDuplicated(
                                   *W, T, domore::PolicyKind::OwnerCompute)
                            .Seconds;
                      }));
    // The manual DOANY parallelization only supports power-of-two threads.
    const bool Pow2 = (T & (T - 1)) == 0;
    Manual.push_back(Pow2 ? Seq / minSeconds(Reps, [&] {
                       W->reset();
                       return harness::runBarrierDoany(*W, T).Seconds;
                     })
                          : 0.0);
  }

  printSeriesHeader("series", Threads);
  printSeriesRow("LOCALWRITE+Barrier", LwBarrier);
  printSeriesRow("LOCALWRITE+SpecX", LwSpec);
  printSeriesRow("DOMORE+Barrier", DomBarrier);
  printSeriesRow("DOMORE+SpecCross", DomSpec);
  printSeriesRow("MANUAL(DOANY+Bar)", Manual);
  printRule();
  std::printf("(paper: DOMORE+SpecCross composition performs best; "
              "0.00x marks unsupported thread counts)\n");
  return 0;
}

//===- bench/BenchSupport.h - Shared benchmark harness ---------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the per-figure/per-table benchmark binaries. Each
/// binary regenerates one table or figure of the dissertation's evaluation
/// (see DESIGN.md's experiment index) and prints the same rows/series the
/// paper reports: loop speedup over the best sequential execution, per
/// thread count, per workload.
///
/// Environment knobs:
///   CIP_BENCH_SCALE   = test | train | ref   (default train)
///   CIP_BENCH_THREADS = comma list            (default 1,2,4,8,16,24)
///   CIP_BENCH_REPS    = repetitions, min-of   (default 2)
///   CIP_BENCH_JSON    = path                  (append machine-readable rows)
///
/// Malformed knob values are a hard error (exit 2) rather than a silent
/// fallback: a typo in CI must not quietly benchmark the wrong config.
///
/// With CIP_BENCH_JSON set, every timed series point additionally emits one
/// JSON object per line (JSON Lines) to the given path:
///   {"workload":..., "scheme":..., "threads":..., "scale":..., "reps":...,
///    "seconds":..., "speedup":..., "counters":{...}, "wait_hist":{...},
///    "dispatch_batch":{...}}
/// where counters holds the telemetry counter totals of the best rep (all
/// zero when built with CIP_TELEMETRY=0), wait_hist summarizes the
/// scheme's dominant wait distribution (count/sum_ns/max_ns/p50/p90/p99),
/// and dispatch_batch summarizes DOMORE's dispatched batch sizes in the
/// same shape (values are iterations per WorkRange message, not
/// nanoseconds; all-zero for the other schemes).
///
/// The reproduction machine has far fewer cores than the paper's 24-core
/// testbed; thread counts beyond the hardware oversubscribe, so the *shape*
/// of each series (who wins, where barrier overhead bites) is the signal,
/// as EXPERIMENTS.md discusses.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_BENCH_BENCHSUPPORT_H
#define CIP_BENCH_BENCHSUPPORT_H

#include "harness/Adaptive.h"
#include "harness/Executor.h"
#include "memory/CheckpointSubstrate.h"
#include "support/Stats.h"
#include "telemetry/Json.h"
#include "workloads/Workload.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace cip {
namespace bench {

/// A bench knob with an unusable value is a configuration bug, not a
/// preference; fail loudly so CI never times the wrong thing.
[[noreturn]] inline void benchEnvError(const char *Var, const char *Value,
                                       const char *Expected) {
  std::fprintf(stderr, "error: %s='%s' is invalid: expected %s\n", Var, Value,
               Expected);
  std::exit(2);
}

/// Strict unsigned parse for env knobs: the whole token must be a positive
/// decimal number.
inline bool parseEnvUnsigned(const char *Token, unsigned &Out) {
  if (!*Token)
    return false;
  char *End = nullptr;
  errno = 0;
  const unsigned long V = std::strtoul(Token, &End, 10);
  if (errno != 0 || *End != '\0' || V == 0 || V > 0xffffffffUL)
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

inline workloads::Scale benchScale() {
  const char *S = std::getenv("CIP_BENCH_SCALE");
  if (!S)
    return workloads::Scale::Train;
  if (std::strcmp(S, "test") == 0)
    return workloads::Scale::Test;
  if (std::strcmp(S, "train") == 0)
    return workloads::Scale::Train;
  if (std::strcmp(S, "ref") == 0)
    return workloads::Scale::Ref;
  benchEnvError("CIP_BENCH_SCALE", S, "test, train, or ref");
}

/// The scale's name, for report rows.
inline const char *benchScaleName() {
  switch (benchScale()) {
  case workloads::Scale::Test:
    return "test";
  case workloads::Scale::Ref:
    return "ref";
  case workloads::Scale::Train:
    break;
  }
  return "train";
}

inline std::vector<unsigned> benchThreads() {
  if (const char *S = std::getenv("CIP_BENCH_THREADS")) {
    std::vector<unsigned> Out;
    std::string Tok;
    for (const char *P = S;; ++P) {
      if (*P == ',' || *P == '\0') {
        unsigned V = 0;
        if (!parseEnvUnsigned(Tok.c_str(), V))
          benchEnvError("CIP_BENCH_THREADS", S,
                        "a comma-separated list of positive thread counts");
        Out.push_back(V);
        Tok.clear();
        if (*P == '\0')
          break;
      } else {
        Tok.push_back(*P);
      }
    }
    return Out;
  }
  return {1, 2, 4, 8, 16, 24};
}

inline unsigned benchReps() {
  if (const char *S = std::getenv("CIP_BENCH_REPS")) {
    unsigned V = 0;
    if (!parseEnvUnsigned(S, V))
      benchEnvError("CIP_BENCH_REPS", S, "a positive repetition count");
    return V;
  }
  return 2;
}

/// Runs \p Body (which must reset the workload itself) \p Reps times and
/// returns the fastest run, matching the paper's best-execution reporting.
template <typename Callable> double minSeconds(unsigned Reps, Callable &&Body) {
  double Best = 0.0;
  for (unsigned R = 0; R < Reps; ++R) {
    const double S = Body();
    if (R == 0 || S < Best)
      Best = S;
  }
  return Best;
}

/// Like \c minSeconds but for bodies returning an \c ExecResult: keeps the
/// whole fastest run, so its telemetry counters can be exported alongside
/// the timing.
template <typename Callable>
harness::ExecResult bestRun(unsigned Reps, Callable &&Body) {
  harness::ExecResult Best;
  for (unsigned R = 0; R < Reps; ++R) {
    harness::ExecResult Cur = Body();
    if (R == 0 || Cur.Seconds < Best.Seconds)
      Best = Cur;
  }
  return Best;
}

/// The CIP_BENCH_JSON sink: one JSON object per recorded series point, one
/// line each (JSON Lines), flushed eagerly so partial CI runs still leave
/// parseable output. Also remembers each workload's sequential baseline so
/// scheme rows can carry their speedup.
class BenchJson {
public:
  static BenchJson &instance() {
    static BenchJson J;
    return J;
  }

  bool enabled() const { return File != nullptr; }

  void noteSequential(const std::string &Workload, double Seconds) {
    Baselines[Workload] = Seconds;
  }

  double sequentialBaseline(const std::string &Workload) const {
    const auto It = Baselines.find(Workload);
    return It == Baselines.end() ? 0.0 : It->second;
  }

  /// Appends one pre-rendered JSON Lines row. The region-server traffic
  /// bench builds its own row shape (the server-* schemes carry a "server"
  /// throughput/latency object) and lands it through the same sink.
  void writeLine(const std::string &Line) {
    if (!File)
      return;
    std::fprintf(File, "%s\n", Line.c_str());
    std::fflush(File);
  }

  void record(const workloads::Workload &W, const char *Scheme,
              unsigned Threads, unsigned Reps, double Seconds, double Speedup,
              const telemetry::CounterTotals &Counters,
              const telemetry::HistogramData &WaitHist,
              const telemetry::HistogramData &DispatchBatch,
              const harness::AdaptiveStats *Policy = nullptr) {
    if (!File)
      return;
    telemetry::json::Writer Wr;
    Wr.beginObject();
    Wr.key("workload");
    Wr.value(W.name());
    Wr.key("scheme");
    Wr.value(Scheme);
    Wr.key("threads");
    Wr.value(Threads);
    Wr.key("scale");
    Wr.value(benchScaleName());
    // The checkpoint substrate in effect (CIP_CKPT, default eager) — only
    // speccross rows exercise it, but stamping every row keeps the schema
    // uniform and lets compare_bench filter substrate sweeps by key.
    Wr.key("ckpt_substrate");
    Wr.value(memory::substrateName(memory::activeSubstrateKind()));
    Wr.key("reps");
    Wr.value(Reps);
    Wr.key("seconds");
    Wr.value(Seconds);
    Wr.key("speedup");
    Wr.value(Speedup);
    Wr.key("counters");
    Wr.beginObject();
    for (unsigned C = 0; C < telemetry::NumCounters; ++C) {
      Wr.key(telemetry::counterName(static_cast<telemetry::Counter>(C)));
      Wr.value(Counters.Values[C]);
    }
    Wr.endObject();
    Wr.key("wait_hist");
    Wr.beginObject();
    Wr.key("count");
    Wr.value(WaitHist.count());
    Wr.key("sum_ns");
    Wr.value(WaitHist.SumNs);
    Wr.key("max_ns");
    Wr.value(WaitHist.MaxNs);
    Wr.key("p50_ns");
    Wr.value(WaitHist.quantileNs(0.50));
    Wr.key("p90_ns");
    Wr.value(WaitHist.quantileNs(0.90));
    Wr.key("p99_ns");
    Wr.value(WaitHist.quantileNs(0.99));
    Wr.endObject();
    // Same summary shape as wait_hist, but the values are batch sizes
    // (iterations per DOMORE WorkRange message), not nanoseconds; all-zero
    // for non-DOMORE schemes and CIP_TELEMETRY=0 builds.
    Wr.key("dispatch_batch");
    Wr.beginObject();
    Wr.key("count");
    Wr.value(DispatchBatch.count());
    Wr.key("sum_ns");
    Wr.value(DispatchBatch.SumNs);
    Wr.key("max_ns");
    Wr.value(DispatchBatch.MaxNs);
    Wr.key("p50_ns");
    Wr.value(DispatchBatch.quantileNs(0.50));
    Wr.key("p90_ns");
    Wr.value(DispatchBatch.quantileNs(0.90));
    Wr.key("p99_ns");
    Wr.value(DispatchBatch.quantileNs(0.99));
    Wr.endObject();
    // Adaptive rows additionally carry the policy engine's decision and
    // switch logs (same shape as the run-report arrays, DESIGN.md §11) so
    // the bench JSON alone reconstructs what the policy did and when.
    if (Policy) {
      Wr.key("policy_decisions");
      Wr.beginArray();
      for (const telemetry::PolicyDecisionRecord &D : Policy->Decisions) {
        Wr.beginObject();
        Wr.key("window");
        Wr.value(D.Window);
        Wr.key("first_epoch");
        Wr.value(D.FirstEpoch);
        Wr.key("num_epochs");
        Wr.value(D.NumEpochs);
        Wr.key("technique");
        Wr.value(D.Technique);
        Wr.key("reason");
        Wr.value(D.Reason);
        Wr.key("explore");
        Wr.value(D.Explore);
        Wr.key("switched");
        Wr.value(D.Switched);
        Wr.key("window_seconds");
        Wr.value(D.WindowSeconds);
        Wr.key("abort_rate");
        Wr.value(D.AbortRate);
        Wr.key("conflict_density");
        Wr.value(D.ConflictDensity);
        Wr.key("decision_ns");
        Wr.value(D.DecisionNs);
        Wr.endObject();
      }
      Wr.endArray();
      Wr.key("switch_events");
      Wr.beginArray();
      for (const telemetry::SwitchEventRecord &S : Policy->Switches) {
        Wr.beginObject();
        Wr.key("window");
        Wr.value(S.Window);
        Wr.key("from");
        Wr.value(S.From);
        Wr.key("to");
        Wr.value(S.To);
        Wr.key("reason");
        Wr.value(S.Reason);
        Wr.key("warm_carry");
        Wr.value(S.WarmCarry);
        Wr.key("teardown_ns");
        Wr.value(S.TeardownNs);
        Wr.endObject();
      }
      Wr.endArray();
      // Plan provenance (DESIGN.md §13): cold runs carry the defaults
      // (loaded=false, source "none"), profiled/planned runs the plan's
      // predictions — so a bench JSON row alone says whether the policy
      // started warm and from what.
      Wr.key("plan");
      Wr.beginObject();
      Wr.key("loaded");
      Wr.value(Policy->Plan.Loaded);
      Wr.key("profiled");
      Wr.value(Policy->Plan.Profiled);
      Wr.key("source");
      Wr.value(Policy->Plan.Source);
      Wr.key("path");
      Wr.value(Policy->Plan.Path);
      Wr.key("initial");
      Wr.value(Policy->Plan.InitialTechnique);
      Wr.key("predicted_sec_per_epoch");
      Wr.value(Policy->Plan.PredictedSecondsPerEpoch);
      Wr.key("sequential_sec_per_epoch");
      Wr.value(Policy->Plan.SequentialSecondsPerEpoch);
      Wr.key("spec_distance");
      Wr.value(Policy->Plan.SpecDistance);
      Wr.key("max_batch_hint");
      Wr.value(Policy->Plan.MaxBatchHint);
      Wr.key("shadow_shards");
      Wr.value(Policy->Plan.ShadowShards);
      Wr.key("sched_threads");
      Wr.value(Policy->Plan.SchedThreads);
      Wr.key("ckpt_substrate");
      Wr.value(Policy->Plan.CkptSubstrate);
      Wr.key("min_dependence_distance");
      Wr.value(Policy->Plan.MinDependenceDistance);
      Wr.endObject();
    }
    Wr.endObject();
    std::fprintf(File, "%s\n", Wr.str().c_str());
    std::fflush(File);
  }

private:
  BenchJson() {
    if (const char *Path = std::getenv("CIP_BENCH_JSON")) {
      File = std::fopen(Path, "w");
      if (!File)
        benchEnvError("CIP_BENCH_JSON", Path, "a writable file path");
    }
  }
  ~BenchJson() {
    if (File)
      std::fclose(File);
  }

  std::FILE *File = nullptr;
  std::map<std::string, double> Baselines;
};

/// Records one series point for \p W: looks up the sequential baseline (0
/// speedup when the bench never timed one) and appends a JSON row when
/// CIP_BENCH_JSON is set.
inline void recordRun(const workloads::Workload &W, const char *Scheme,
                      unsigned Threads, unsigned Reps,
                      const harness::ExecResult &Best) {
  BenchJson &J = BenchJson::instance();
  const double Base = J.sequentialBaseline(W.name());
  const double Speedup = Best.Seconds > 0.0 && Base > 0.0
                             ? Base / Best.Seconds
                             : 0.0;
  J.record(W, Scheme, Threads, Reps, Best.Seconds, Speedup, Best.Telemetry,
           Best.WaitHist, Best.DispatchBatch);
}

/// Records one adaptive series point: like \c recordRun but the JSON row
/// additionally carries the fastest rep's policy decision and switch logs
/// under \c policy_decisions / \c switch_events.
inline void recordAdaptiveRun(const workloads::Workload &W, const char *Scheme,
                              unsigned Threads, unsigned Reps,
                              const harness::ExecResult &Best,
                              const harness::AdaptiveStats &Policy) {
  BenchJson &J = BenchJson::instance();
  const double Base = J.sequentialBaseline(W.name());
  const double Speedup =
      Best.Seconds > 0.0 && Base > 0.0 ? Base / Best.Seconds : 0.0;
  J.record(W, Scheme, Threads, Reps, Best.Seconds, Speedup, Best.Telemetry,
           Best.WaitHist, Best.DispatchBatch, &Policy);
}

/// Best sequential time for \p W (resets the workload first).
inline double sequentialSeconds(workloads::Workload &W, unsigned Reps) {
  const harness::ExecResult Best = bestRun(Reps, [&W] {
    W.reset();
    return harness::runSequential(W);
  });
  BenchJson::instance().noteSequential(W.name(), Best.Seconds);
  recordRun(W, "sequential", 1, Reps, Best);
  return Best.Seconds;
}

inline double barrierSeconds(workloads::Workload &W, unsigned Threads,
                             unsigned Reps) {
  const harness::ExecResult Best = bestRun(Reps, [&] {
    W.reset();
    return harness::runBarrier(W, Threads);
  });
  recordRun(W, "barrier", Threads, Reps, Best);
  return Best.Seconds;
}

inline double domoreSeconds(workloads::Workload &W, unsigned Threads,
                            unsigned Reps,
                            domore::PolicyKind Policy =
                                domore::PolicyKind::RoundRobin) {
  const harness::ExecResult Best = bestRun(Reps, [&] {
    W.reset();
    return harness::runDomore(W, Threads, Policy);
  });
  recordRun(W, "domore", Threads, Reps, Best);
  return Best.Seconds;
}

/// SPECCROSS with the paper's full flow: profile once, then speculate with
/// the recommended throttle and the workload's preferred signature scheme.
/// The checker thread counts against the thread budget, exactly as in the
/// paper's evaluation ("one fewer thread is available to do actual work"):
/// Threads = workers + checker.
inline double speccrossSeconds(workloads::Workload &W, unsigned Threads,
                               unsigned Reps, std::uint64_t SpecDistance,
                               unsigned CheckpointEpochs = 1000) {
  const harness::ExecResult Best = bestRun(Reps, [&] {
    W.reset();
    speccross::SpecConfig Cfg;
    Cfg.NumWorkers = Threads > 1 ? Threads - 1 : 1;
    Cfg.Scheme = W.preferredSignature();
    Cfg.SpecDistance = SpecDistance;
    Cfg.CheckpointIntervalEpochs = CheckpointEpochs;
    return harness::runSpecCross(W, Cfg);
  });
  recordRun(W, "speccross", Threads, Reps, Best);
  return Best.Seconds;
}

/// Prints a speedup-series table header: workload column plus one column
/// per thread count.
inline void printSeriesHeader(const char *Label,
                              const std::vector<unsigned> &Threads) {
  std::printf("%-18s", Label);
  for (unsigned T : Threads)
    std::printf("  %5uT", T);
  std::printf("\n");
}

inline void printSeriesRow(const std::string &Label,
                           const std::vector<double> &Speedups) {
  std::printf("%-18s", Label.c_str());
  for (double S : Speedups)
    std::printf("  %5.2fx", S);
  std::printf("\n");
}

inline void printRule() {
  std::printf("--------------------------------------------------------------"
              "----------\n");
}

} // namespace bench
} // namespace cip

#endif // CIP_BENCH_BENCHSUPPORT_H

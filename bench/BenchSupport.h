//===- bench/BenchSupport.h - Shared benchmark harness ---------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the per-figure/per-table benchmark binaries. Each
/// binary regenerates one table or figure of the dissertation's evaluation
/// (see DESIGN.md's experiment index) and prints the same rows/series the
/// paper reports: loop speedup over the best sequential execution, per
/// thread count, per workload.
///
/// Environment knobs:
///   CIP_BENCH_SCALE   = test | train | ref   (default train)
///   CIP_BENCH_THREADS = comma list            (default 1,2,4,8,16,24)
///   CIP_BENCH_REPS    = repetitions, min-of   (default 2)
///
/// The reproduction machine has far fewer cores than the paper's 24-core
/// testbed; thread counts beyond the hardware oversubscribe, so the *shape*
/// of each series (who wins, where barrier overhead bites) is the signal,
/// as EXPERIMENTS.md discusses.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_BENCH_BENCHSUPPORT_H
#define CIP_BENCH_BENCHSUPPORT_H

#include "harness/Executor.h"
#include "support/Stats.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace cip {
namespace bench {

inline workloads::Scale benchScale() {
  const char *S = std::getenv("CIP_BENCH_SCALE");
  if (!S)
    return workloads::Scale::Train;
  if (std::strcmp(S, "test") == 0)
    return workloads::Scale::Test;
  if (std::strcmp(S, "ref") == 0)
    return workloads::Scale::Ref;
  return workloads::Scale::Train;
}

inline std::vector<unsigned> benchThreads() {
  if (const char *S = std::getenv("CIP_BENCH_THREADS")) {
    std::vector<unsigned> Out;
    std::string Tok;
    for (const char *P = S;; ++P) {
      if (*P == ',' || *P == '\0') {
        if (!Tok.empty())
          Out.push_back(static_cast<unsigned>(std::stoul(Tok)));
        Tok.clear();
        if (*P == '\0')
          break;
      } else {
        Tok.push_back(*P);
      }
    }
    if (!Out.empty())
      return Out;
  }
  return {1, 2, 4, 8, 16, 24};
}

inline unsigned benchReps() {
  if (const char *S = std::getenv("CIP_BENCH_REPS"))
    return std::max(1u, static_cast<unsigned>(std::stoul(S)));
  return 2;
}

/// Runs \p Body (which must reset the workload itself) \p Reps times and
/// returns the fastest run, matching the paper's best-execution reporting.
template <typename Callable> double minSeconds(unsigned Reps, Callable &&Body) {
  double Best = 0.0;
  for (unsigned R = 0; R < Reps; ++R) {
    const double S = Body();
    if (R == 0 || S < Best)
      Best = S;
  }
  return Best;
}

/// Best sequential time for \p W (resets the workload first).
inline double sequentialSeconds(workloads::Workload &W, unsigned Reps) {
  return minSeconds(Reps, [&W] {
    W.reset();
    return harness::runSequential(W).Seconds;
  });
}

inline double barrierSeconds(workloads::Workload &W, unsigned Threads,
                             unsigned Reps) {
  return minSeconds(Reps, [&] {
    W.reset();
    return harness::runBarrier(W, Threads).Seconds;
  });
}

inline double domoreSeconds(workloads::Workload &W, unsigned Threads,
                            unsigned Reps,
                            domore::PolicyKind Policy =
                                domore::PolicyKind::RoundRobin) {
  return minSeconds(Reps, [&] {
    W.reset();
    return harness::runDomore(W, Threads, Policy).Seconds;
  });
}

/// SPECCROSS with the paper's full flow: profile once, then speculate with
/// the recommended throttle and the workload's preferred signature scheme.
/// The checker thread counts against the thread budget, exactly as in the
/// paper's evaluation ("one fewer thread is available to do actual work"):
/// Threads = workers + checker.
inline double speccrossSeconds(workloads::Workload &W, unsigned Threads,
                               unsigned Reps, std::uint64_t SpecDistance,
                               unsigned CheckpointEpochs = 1000) {
  return minSeconds(Reps, [&] {
    W.reset();
    speccross::SpecConfig Cfg;
    Cfg.NumWorkers = Threads > 1 ? Threads - 1 : 1;
    Cfg.Scheme = W.preferredSignature();
    Cfg.SpecDistance = SpecDistance;
    Cfg.CheckpointIntervalEpochs = CheckpointEpochs;
    return harness::runSpecCross(W, Cfg).Seconds;
  });
}

/// Prints a speedup-series table header: workload column plus one column
/// per thread count.
inline void printSeriesHeader(const char *Label,
                              const std::vector<unsigned> &Threads) {
  std::printf("%-18s", Label);
  for (unsigned T : Threads)
    std::printf("  %5uT", T);
  std::printf("\n");
}

inline void printSeriesRow(const std::string &Label,
                           const std::vector<double> &Speedups) {
  std::printf("%-18s", Label.c_str());
  for (double S : Speedups)
    std::printf("  %5.2fx", S);
  std::printf("\n");
}

inline void printRule() {
  std::printf("--------------------------------------------------------------"
              "----------\n");
}

} // namespace bench
} // namespace cip

#endif // CIP_BENCH_BENCHSUPPORT_H

//===- bench/bench_table5_1_applicability.cpp - Table 5.1 ----------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 5.1: the benchmark inventory — inner-loop parallelization plan and
/// DOMORE/SPECCROSS applicability — plus measured workload shape (epochs,
/// tasks) at the ref scale.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

using namespace cip;
using namespace cip::bench;
using namespace cip::workloads;

int main() {
  std::printf("=== Table 5.1: evaluated benchmark programs ===\n\n");
  std::printf("%-16s  %-11s  %-7s  %-10s  %10s  %10s\n", "benchmark",
              "inner plan", "DOMORE", "SPECCROSS", "epochs", "tasks");
  printRule();
  for (const std::string &Name : allWorkloadNames()) {
    auto W = makeWorkload(Name, Scale::Ref);
    if (!W)
      return 1;
    std::printf("%-16s  %-11s  %-7s  %-10s  %10u  %10llu\n", W->name(),
                W->innerLoopPlan(), W->domoreApplicable() ? "yes" : "no",
                W->speccrossApplicable() ? "yes" : "no", W->numEpochs(),
                static_cast<unsigned long long>(W->totalTasks()));
  }
  printRule();
  std::printf("(matches the paper's applicability columns; epoch/task "
              "counts align with Table 5.3 where given)\n");
  return 0;
}

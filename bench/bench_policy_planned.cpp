//===- bench/bench_policy_planned.cpp - Profile-guided warm start bench --===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile-guided planning experiment (DESIGN.md §13): what a plan file
/// buys is *time to steady state*. A cold-started policy burns its opening
/// windows discovering the right technique (round-robin bandit pulls,
/// threshold confirmation windows); a warm-started one begins on the plan's
/// technique with seeded arm estimates. This bench measures the difference
/// on two regimes:
///
///  * phaseshift — the adaptive showcase: regimes alternate, so a wrong
///    opening technique costs a whole discovery cycle;
///  * cg — the paper's irregular workload (Table 5.3's 72.4% manifest
///    rate): uniform regime, so the entire benefit is the opening windows.
///
/// Three schemes per workload, all on the seeded bandit so cold vs planned
/// differ only in the warm start:
///
///  * adaptive-profile — the calibration run itself (sequential probe plus
///    one window per applicable technique, then warm-started execution);
///    its plan feeds the planned scheme in-memory;
///  * adaptive-cold    — cold start, round-robin discovery;
///  * adaptive-planned — warm-started from the profile run's plan.
///
/// Time-to-steady-state TTS(rep) is the cumulative window time through the
/// first policy window (in the run's opening regime) whose sec/epoch is
/// within 10% of that rep's own steady state (the mean over the tail
/// quarter of same-regime windows). Min-over-reps on both sides of every
/// ratio, as everywhere in this bench suite. The gate lines mirror ISSUE
/// acceptance but the bench always exits 0 on timing grounds — checksum
/// mismatches exit 1.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"
#include "harness/Adaptive.h"
#include "workloads/CG.h"
#include "workloads/PhaseShift.h"

#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

using namespace cip;
using namespace cip::bench;

namespace {

struct AdaptiveRun {
  harness::ExecResult Best;
  harness::AdaptiveStats Stats;
  std::vector<harness::AdaptiveStats> AllStats;
  plan::RegionPlan Plan; ///< best rep's emitted plan (profile scheme only)
};

AdaptiveRun runScheme(workloads::Workload &W, unsigned Threads, unsigned Reps,
                      const policy::PolicyConfig &Cfg,
                      const plan::RegionPlan *Plan, bool Profile) {
  AdaptiveRun Out;
  for (unsigned R = 0; R < Reps; ++R) {
    W.reset();
    harness::AdaptiveRunOptions Opts;
    plan::RegionPlan Emitted;
    if (Profile)
      Opts.PlanOut = &Emitted; // in-memory: the bench never touches disk
    if (Plan) {
      Opts.Plan = Plan;
      Opts.PlanSource = "file";
      Opts.PlanPath = "(in-memory)";
    }
    harness::AdaptiveStats St;
    harness::ExecResult Res = harness::runAdaptive(W, Threads, Cfg, &St, Opts);
    if (R == 0 || Res.Seconds < Out.Best.Seconds) {
      Out.Best = Res;
      Out.Stats = St;
      if (Profile)
        Out.Plan = Emitted;
    }
    Out.AllStats.push_back(std::move(St));
  }
  return Out;
}

void checkChecksum(const char *What, const harness::ExecResult &Res,
                   std::uint64_t Want) {
  if (Res.Checksum == Want)
    return;
  std::fprintf(stderr,
               "error: %s checksum %016llx != sequential %016llx — "
               "the executor broke cross-epoch ordering\n",
               What, static_cast<unsigned long long>(Res.Checksum),
               static_cast<unsigned long long>(Want));
  std::exit(1);
}

bool isCalibration(const telemetry::PolicyDecisionRecord &D) {
  return std::strcmp(D.Reason, "calibrate") == 0;
}

/// The opening regime of one rep: the phase (heavy or free) of its first
/// policy window. Null \p PS (cg) means one uniform regime.
bool inOpeningRegime(const workloads::PhaseShiftWorkload *PS,
                     const telemetry::PolicyDecisionRecord &First,
                     const telemetry::PolicyDecisionRecord &D) {
  return !PS || PS->heavyPhase(D.FirstEpoch) == PS->heavyPhase(First.FirstEpoch);
}

/// One rep's time-to-steady-state analysis. The TTS threshold is a *common*
/// floor (best steady-state sec/epoch across every scheme at this thread
/// count): judging each run against its own tail would hand a uniformly
/// slow run a trivial TTS. The first-window ratio stays against the rep's
/// own steady state (the ISSUE gate: does the warm start open at its own
/// settled speed).
struct TtsResult {
  double SteadySecPerEpoch = 0.0; ///< tail-quarter mean, opening regime
  double Tts = 0.0;               ///< cumulative seconds to within-10%-of-floor
  double FirstWindowRatio = 0.0;  ///< first policy window sec/epoch / steady
};

bool analyzeRep(const harness::AdaptiveStats &St,
                const workloads::PhaseShiftWorkload *PS, double Floor,
                TtsResult &Out) {
  // Policy windows (calibration excluded) in the rep's opening regime.
  std::vector<const telemetry::PolicyDecisionRecord *> Regime;
  const telemetry::PolicyDecisionRecord *First = nullptr;
  for (const telemetry::PolicyDecisionRecord &D : St.Decisions) {
    if (isCalibration(D))
      continue;
    if (!First)
      First = &D;
    if (inOpeningRegime(PS, *First, D))
      Regime.push_back(&D);
  }
  if (!First || Regime.empty())
    return false;

  // Steady state: mean sec/epoch over the tail quarter (at least one
  // window) of the opening regime's windows — this rep's own floor.
  const std::size_t Tail = Regime.size() >= 4 ? Regime.size() / 4 : 1;
  double Sum = 0.0;
  for (std::size_t I = Regime.size() - Tail; I < Regime.size(); ++I)
    Sum += Regime[I]->WindowSeconds /
           static_cast<double>(Regime[I]->NumEpochs);
  Out.SteadySecPerEpoch = Sum / static_cast<double>(Tail);
  if (Out.SteadySecPerEpoch <= 0.0)
    return false;

  const double FirstPerEpoch =
      First->WindowSeconds / static_cast<double>(First->NumEpochs);
  Out.FirstWindowRatio = FirstPerEpoch / Out.SteadySecPerEpoch;

  // TTS: cumulative time (calibration windows fully charged) through the
  // first opening-regime policy window within 10% of the common floor.
  double Cum = 0.0;
  Out.Tts = 0.0;
  bool Found = false;
  for (const telemetry::PolicyDecisionRecord &D : St.Decisions) {
    Cum += D.WindowSeconds;
    if (Found || isCalibration(D) || !inOpeningRegime(PS, *First, D))
      continue;
    const double PerEpoch =
        D.WindowSeconds / static_cast<double>(D.NumEpochs);
    if (PerEpoch <= 1.10 * Floor) {
      Out.Tts = Cum;
      Found = true;
    }
  }
  if (!Found)
    Out.Tts = Cum; // never reached the floor: charge the whole run
  return true;
}

/// Min over reps of one scheme's own tail steady state (the common-floor
/// ingredient).
double schemeSteady(const AdaptiveRun &Run,
                    const workloads::PhaseShiftWorkload *PS) {
  double Best = -1.0;
  for (const harness::AdaptiveStats &St : Run.AllStats) {
    TtsResult R;
    if (!analyzeRep(St, PS, /*Floor=*/1.0, R))
      continue;
    if (Best < 0.0 || R.SteadySecPerEpoch < Best)
      Best = R.SteadySecPerEpoch;
  }
  return Best;
}

/// Min-over-reps TTS and first-window ratio for one scheme's runs.
struct SchemeTts {
  double Tts = -1.0;
  double FirstWindowRatio = -1.0;
};

SchemeTts schemeTts(const AdaptiveRun &Run,
                    const workloads::PhaseShiftWorkload *PS, double Floor) {
  SchemeTts Out;
  for (const harness::AdaptiveStats &St : Run.AllStats) {
    TtsResult R;
    if (!analyzeRep(St, PS, Floor, R))
      continue;
    if (Out.Tts < 0.0 || R.Tts < Out.Tts)
      Out.Tts = R.Tts;
    if (Out.FirstWindowRatio < 0.0 ||
        R.FirstWindowRatio < Out.FirstWindowRatio)
      Out.FirstWindowRatio = R.FirstWindowRatio;
  }
  return Out;
}

void benchWorkload(workloads::Workload &W,
                   const workloads::PhaseShiftWorkload *PS,
                   std::uint32_t WindowEpochs,
                   const std::vector<unsigned> &Threads, unsigned Reps) {
  std::printf("\n== %s: %u epochs, window %u epochs ==\n", W.name(),
              W.numEpochs(), WindowEpochs);

  const double SeqSeconds = sequentialSeconds(W, Reps);
  const std::uint64_t SeqSum = W.checksum();
  std::printf("%-20s %9.3f ms\n", "sequential", SeqSeconds * 1e3);

  for (unsigned T : Threads) {
    if (T < 2) {
      std::printf("\n-- %u thread: skipped (windowed techniques need a "
                  "worker besides the control thread)\n", T);
      continue;
    }
    std::printf("\n-- %u threads --\n", T);

    // All three schemes on the seeded bandit: cold vs planned then differ
    // only in the warm start (the cold bandit's opening windows are
    // deterministic round-robin pulls — the cost the plan removes).
    policy::PolicyConfig Cfg;
    Cfg.Kind = policy::PolicyKind::Bandit;
    Cfg.WindowEpochs = WindowEpochs;
    Cfg.Seed = 1;

    AdaptiveRun Profile =
        runScheme(W, T, Reps, Cfg, /*Plan=*/nullptr, /*Profile=*/true);
    checkChecksum("adaptive-profile", Profile.Best, SeqSum);
    recordAdaptiveRun(W, "adaptive-profile", T, Reps, Profile.Best,
                      Profile.Stats);

    AdaptiveRun Cold =
        runScheme(W, T, Reps, Cfg, /*Plan=*/nullptr, /*Profile=*/false);
    checkChecksum("adaptive-cold", Cold.Best, SeqSum);
    recordAdaptiveRun(W, "adaptive-cold", T, Reps, Cold.Best, Cold.Stats);

    AdaptiveRun Planned =
        runScheme(W, T, Reps, Cfg, &Profile.Plan, /*Profile=*/false);
    checkChecksum("adaptive-planned", Planned.Best, SeqSum);
    recordAdaptiveRun(W, "adaptive-planned", T, Reps, Planned.Best,
                      Planned.Stats);

    // Common floor: the best steady-state sec/epoch any scheme reached.
    double Floor = -1.0;
    for (const AdaptiveRun *Run : {&Profile, &Cold, &Planned}) {
      const double S = schemeSteady(*Run, PS);
      if (S > 0.0 && (Floor < 0.0 || S < Floor))
        Floor = S;
    }
    const SchemeTts ProfileT = schemeTts(Profile, PS, Floor);
    const SchemeTts ColdT = schemeTts(Cold, PS, Floor);
    const SchemeTts PlannedT = schemeTts(Planned, PS, Floor);

    const struct {
      const char *Label;
      const AdaptiveRun *Run;
      const SchemeTts *T;
    } Rows[] = {
        {"adaptive-profile", &Profile, &ProfileT},
        {"adaptive-cold", &Cold, &ColdT},
        {"adaptive-planned", &Planned, &PlannedT},
    };
    for (const auto &Row : Rows)
      std::printf("%-20s %9.3f ms  %5.2fx seq  switches=%-2zu  TTS %8.3f "
                  "ms  first-window %.3fx steady  (initial %s)\n",
                  Row.Label, Row.Run->Best.Seconds * 1e3,
                  SeqSeconds / Row.Run->Best.Seconds,
                  Row.Run->Stats.Switches.size(), Row.T->Tts * 1e3,
                  Row.T->FirstWindowRatio,
                  Row.Run->Stats.Plan.InitialTechnique.empty()
                      ? "(cold)"
                      : Row.Run->Stats.Plan.InitialTechnique.c_str());

    // The acceptance gates (ISSUE): informative here, read at the
    // designated 4-thread point — always exit 0 on timing grounds.
    if (T == 4) {
      printRule();
      const bool FirstOk =
          PlannedT.FirstWindowRatio > 0.0 && PlannedT.FirstWindowRatio <= 1.10;
      std::printf("gate: %s planned first policy window within 10%% of "
                  "steady state: %.3fx %s\n",
                  W.name(), PlannedT.FirstWindowRatio,
                  FirstOk ? "PASS" : "MISS");
      const double TtsSpeedup =
          ColdT.Tts > 0.0 && PlannedT.Tts > 0.0 ? ColdT.Tts / PlannedT.Tts
                                                : 0.0;
      std::printf("gate: %s planned time-to-steady-state speedup over cold: "
                  "%.2fx %s\n",
                  W.name(), TtsSpeedup, TtsSpeedup >= 1.2 ? "PASS" : "MISS");
    }
  }
}

} // namespace

int main() {
  const workloads::Scale S = benchScale();
  const unsigned Reps = benchReps();

  // The acceptance experiment runs at four threads; CIP_BENCH_THREADS
  // overrides for exploration.
  std::vector<unsigned> Threads{4};
  if (std::getenv("CIP_BENCH_THREADS"))
    Threads = benchThreads();

  std::printf("Profile-guided planning: time to steady state, cold vs "
              "warm-started (DESIGN.md §13)\n");
  std::printf("scale %s, reps %u\n", benchScaleName(), Reps);
  printRule();

  {
    workloads::PhaseShiftParams P = workloads::PhaseShiftParams::forScale(S);
    workloads::PhaseShiftWorkload W(P);
    const std::uint32_t WindowEpochs = P.PhaseLen >= 4 ? P.PhaseLen / 4 : 1;
    benchWorkload(W, &W, WindowEpochs, Threads, Reps);
  }
  {
    workloads::CGParams P = workloads::CGParams::forScale(S);
    workloads::CGWorkload W(P);
    // Uniform regime: size windows for ~16 decisions over the run.
    const std::uint32_t NE = W.numEpochs();
    const std::uint32_t WindowEpochs = NE >= 16 ? NE / 16 : 1;
    benchWorkload(W, nullptr, WindowEpochs, Threads, Reps);
  }
  return 0;
}

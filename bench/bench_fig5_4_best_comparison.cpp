//===- bench/bench_fig5_4_best_comparison.cpp - Figure 5.4 ---------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5.4: best speedup achieved by this work (DOMORE or SPECCROSS,
/// whichever applies per Table 5.1) against the best previously-available
/// parallelization — here, the intra-invocation pthread-barrier
/// parallelization, which is what the prior-work bars reduce to on our
/// workload set.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

using namespace cip;
using namespace cip::bench;
using namespace cip::workloads;

int main() {
  const auto Threads = benchThreads();
  const unsigned Reps = benchReps();
  const Scale S = benchScale();

  std::printf("=== Figure 5.4: best speedup, this work vs prior "
              "(barrier) parallelization ===\n\n");
  std::printf("%-16s  %-10s  %-10s  %-12s\n", "workload", "this work",
              "prior", "technique");
  printRule();

  for (const std::string &Name : allWorkloadNames()) {
    auto W = makeWorkload(Name, S);
    if (!W)
      return 1;
    const double Seq = sequentialSeconds(*W, Reps);

    double BestPrior = 0.0;
    for (unsigned T : Threads)
      BestPrior = std::max(BestPrior, Seq / barrierSeconds(*W, T, Reps));

    double BestOurs = 0.0;
    const char *Technique = "barrier";
    if (W->domoreApplicable()) {
      for (unsigned T : Threads) {
        const double Sp = Seq / domoreSeconds(*W, T, Reps);
        if (Sp > BestOurs) {
          BestOurs = Sp;
          Technique = "DOMORE";
        }
      }
    }
    if (W->speccrossApplicable()) {
      auto TrainW = makeWorkload(Name, Scale::Train);
      for (unsigned T : Threads) {
        const std::uint64_t Dist =
            harness::profiledSpecDistance(*TrainW, T);
        const double Sp = Seq / speccrossSeconds(*W, T, Reps, Dist);
        if (Sp > BestOurs) {
          BestOurs = Sp;
          Technique = "SPECCROSS";
        }
      }
    }
    if (BestOurs == 0.0) {
      BestOurs = BestPrior;
      Technique = "barrier";
    }
    std::printf("%-16s  %8.2fx  %8.2fx  %-12s\n", W->name(), BestOurs,
                BestPrior, Technique);
  }
  printRule();
  std::printf("(paper Fig 5.4: this work matches or beats prior "
              "parallelizations on every benchmark)\n");
  return 0;
}

//===- tests/WorkloadTests.cpp - Unit tests for the workload suite -------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "harness/Executor.h"
#include "workloads/BlackScholes.h"
#include "workloads/CG.h"
#include "workloads/Eclat.h"
#include "workloads/FluidAnimate.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace cip;
using namespace cip::workloads;

namespace {

class AllWorkloads : public ::testing::TestWithParam<std::string> {};

} // namespace

INSTANTIATE_TEST_SUITE_P(Suite, AllWorkloads,
                         ::testing::ValuesIn(allWorkloadNames()),
                         [](const auto &Info) { return Info.param; });

TEST_P(AllWorkloads, FactoryConstructs) {
  auto W = makeWorkload(GetParam(), Scale::Test);
  ASSERT_NE(W, nullptr);
  EXPECT_STREQ(W->name(), GetParam().c_str());
  EXPECT_GT(W->numEpochs(), 0u);
  EXPECT_GT(W->totalTasks(), 0u);
}

TEST_P(AllWorkloads, SequentialRunIsDeterministicAfterReset) {
  auto W = makeWorkload(GetParam(), Scale::Test);
  ASSERT_NE(W, nullptr);
  harness::runSequential(*W);
  const std::uint64_t First = W->checksum();
  W->reset();
  harness::runSequential(*W);
  EXPECT_EQ(W->checksum(), First);
}

TEST_P(AllWorkloads, RunChangesState) {
  auto W = makeWorkload(GetParam(), Scale::Test);
  ASSERT_NE(W, nullptr);
  const std::uint64_t Initial = W->checksum();
  harness::runSequential(*W);
  EXPECT_NE(W->checksum(), Initial);
}

TEST_P(AllWorkloads, IntraEpochTasksCommute) {
  // Tasks of one epoch must be independent (the inner loop was parallelized
  // DOALL/LOCALWRITE): executing each epoch's tasks in reverse order must
  // produce the same final state as forward order.
  auto W = makeWorkload(GetParam(), Scale::Test);
  ASSERT_NE(W, nullptr);
  harness::runSequential(*W);
  const std::uint64_t Forward = W->checksum();

  W->reset();
  for (std::uint32_t E = 0, NE = W->numEpochs(); E < NE; ++E) {
    if (W->hasPrologue())
      W->epochPrologue(E, 0);
    const std::size_t NT = W->numTasks(E);
    for (std::size_t T = NT; T > 0; --T)
      W->runTask(E, T - 1);
  }
  EXPECT_EQ(W->checksum(), Forward);
}

TEST_P(AllWorkloads, TaskAddressesAreStable) {
  auto W = makeWorkload(GetParam(), Scale::Test);
  ASSERT_NE(W, nullptr);
  std::vector<std::uint64_t> A1, A2;
  W->taskAddresses(0, 0, A1);
  W->taskAddresses(0, 0, A2);
  EXPECT_EQ(A1, A2);
  EXPECT_FALSE(A1.empty());
}

TEST_P(AllWorkloads, AddressesWithinDeclaredSpace) {
  auto W = makeWorkload(GetParam(), Scale::Test);
  ASSERT_NE(W, nullptr);
  const std::uint64_t Space = W->addressSpaceSize();
  if (Space == 0)
    GTEST_SKIP() << "sparse address space";
  std::vector<std::uint64_t> Addrs;
  for (std::uint32_t E = 0, NE = W->numEpochs(); E < NE; ++E)
    for (std::size_t T = 0, NT = W->numTasks(E); T < NT; ++T) {
      Addrs.clear();
      W->taskAddresses(E, T, Addrs);
      for (std::uint64_t A : Addrs)
        ASSERT_LT(A, Space) << W->name() << " epoch " << E << " task " << T;
    }
}

TEST_P(AllWorkloads, CheckpointRegistryCoversMutatedState) {
  // Snapshot the initial state, run, restore: the checksum must return to
  // its initial value — i.e., all mutable state is registered.
  auto W = makeWorkload(GetParam(), Scale::Test);
  ASSERT_NE(W, nullptr);
  const std::uint64_t Initial = W->checksum();
  speccross::CheckpointRegistry Reg;
  W->registerState(Reg);
  Reg.takeSnapshot();
  harness::runSequential(*W);
  ASSERT_NE(W->checksum(), Initial);
  Reg.restoreSnapshot();
  EXPECT_EQ(W->checksum(), Initial);
}

//===----------------------------------------------------------------------===//
// Workload-specific generator properties
//===----------------------------------------------------------------------===//

TEST(CGWorkloadProps, ManifestRateNearPaperValue) {
  CGParams P = CGParams::forScale(Scale::Train);
  CGWorkload W(P);
  // The paper reports the update dependence manifests across 72.4% of
  // outer-loop iterations; the generator should land near that.
  EXPECT_NEAR(W.measuredManifestRate(), 0.724, 0.05);
}

TEST(CGWorkloadProps, TasksWithinEpochTouchDistinctElements) {
  CGWorkload W(CGParams::forScale(Scale::Test));
  std::vector<std::uint64_t> Addrs;
  for (std::uint32_t E = 0; E < W.numEpochs(); ++E) {
    std::set<std::uint64_t> Seen;
    for (std::size_t T = 0; T < W.numTasks(E); ++T) {
      Addrs.clear();
      W.taskAddresses(E, T, Addrs);
      for (std::uint64_t A : Addrs)
        EXPECT_TRUE(Seen.insert(A).second)
            << "epoch " << E << " reuses element " << A;
    }
  }
}

TEST(EclatWorkloadProps, TransactionsDistinctWithinNode) {
  EclatWorkload W(EclatParams::forScale(Scale::Test));
  for (std::uint32_t E = 0; E < W.numEpochs(); ++E) {
    std::set<std::uint32_t> Seen;
    for (std::size_t T = 0; T < W.numTasks(E); ++T)
      EXPECT_TRUE(Seen.insert(W.txnOf(E, T)).second);
  }
}

TEST(EclatWorkloadProps, TransactionsSharedAcrossNodes) {
  EclatWorkload W(EclatParams::forScale(Scale::Test));
  // Consecutive nodes must reuse transactions: that is the ~99% manifest
  // rate dependence DOMORE synchronizes.
  std::size_t SharedPairs = 0;
  for (std::uint32_t E = 1; E < W.numEpochs(); ++E) {
    std::set<std::uint32_t> Prev;
    for (std::size_t T = 0; T < W.numTasks(E - 1); ++T)
      Prev.insert(W.txnOf(E - 1, T));
    bool Shares = false;
    for (std::size_t T = 0; T < W.numTasks(E); ++T)
      Shares |= Prev.count(W.txnOf(E, T)) > 0;
    SharedPairs += Shares;
  }
  EXPECT_GT(SharedPairs, (W.numEpochs() - 1) * 9 / 10);
}

TEST(FluidAnimate1Props, NeighborsDistinctWithinGroup) {
  FluidAnimate1Workload W(FluidAnimate1Params::forScale(Scale::Test));
  for (std::uint32_t E = 0; E < W.numEpochs(); ++E) {
    std::set<std::uint64_t> Seen;
    for (std::size_t T = 0; T < W.numTasks(E); ++T)
      EXPECT_TRUE(Seen.insert(W.neighborOf(E, T)).second);
  }
}

TEST(BlackScholesProps, PriceFormulaSanity) {
  // At-the-money call with known parameters: S=K=100, r=5%, vol=20%, T=1y
  // prices at ~10.45 (standard textbook value).
  const double P = BlackScholesWorkload::priceCall(100, 100, 0.05, 0.2, 1.0);
  EXPECT_NEAR(P, 10.4506, 0.001);
  // A deep out-of-the-money call is nearly worthless.
  EXPECT_LT(BlackScholesWorkload::priceCall(50, 200, 0.05, 0.2, 1.0), 0.01);
  // Monotone in spot.
  EXPECT_LT(BlackScholesWorkload::priceCall(90, 100, 0.05, 0.2, 1.0),
            BlackScholesWorkload::priceCall(110, 100, 0.05, 0.2, 1.0));
}

TEST(WorkloadHashing, HashBytesDiscriminates) {
  const char A[] = "hello";
  const char B[] = "hellp";
  EXPECT_NE(hashBytes(A, 5), hashBytes(B, 5));
  EXPECT_EQ(hashBytes(A, 5), hashBytes(A, 5));
}

TEST(WorkloadHashing, BurnFlopsBoundedAndDeterministic) {
  const double X = burnFlops(0.7, 100);
  EXPECT_EQ(X, burnFlops(0.7, 100));
  EXPECT_TRUE(std::isfinite(X));
  EXPECT_LT(std::abs(X), 10.0);
}

//===- tests/HarnessTests.cpp - Cross-executor equivalence tests ---------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The project's end-to-end soundness check: every execution strategy —
/// pthread barriers, DOMORE (both variants, all policies), and SPECCROSS
/// (all modes) — must produce bit-identical final state to sequential
/// execution, for every workload, across thread counts.
///
//===----------------------------------------------------------------------===//

#include "harness/Executor.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace cip;
using namespace cip::harness;
using namespace cip::workloads;

namespace {

std::uint64_t sequentialChecksum(const std::string &Name) {
  auto W = makeWorkload(Name, Scale::Test);
  return runSequential(*W).Checksum;
}

struct Case {
  std::string Workload;
  unsigned Threads;
};

std::string caseName(const ::testing::TestParamInfo<Case> &Info) {
  return Info.param.Workload + "_t" + std::to_string(Info.param.Threads);
}

std::vector<Case> allCases() {
  std::vector<Case> Cases;
  for (const std::string &Name : allWorkloadNames())
    for (unsigned Threads : {1u, 2u, 3u, 4u})
      Cases.push_back(Case{Name, Threads});
  return Cases;
}

class ExecutorEquivalence : public ::testing::TestWithParam<Case> {};

} // namespace

INSTANTIATE_TEST_SUITE_P(Sweep, ExecutorEquivalence,
                         ::testing::ValuesIn(allCases()), caseName);

TEST_P(ExecutorEquivalence, BarrierMatchesSequential) {
  const auto [Name, Threads] = GetParam();
  const std::uint64_t Expected = sequentialChecksum(Name);
  auto W = makeWorkload(Name, Scale::Test);
  const ExecResult R = runBarrier(*W, Threads);
  EXPECT_EQ(R.Checksum, Expected);
}

TEST_P(ExecutorEquivalence, DomoreMatchesSequential) {
  const auto [Name, Threads] = GetParam();
  const std::uint64_t Expected = sequentialChecksum(Name);
  auto W = makeWorkload(Name, Scale::Test);
  const ExecResult R = runDomore(*W, Threads);
  EXPECT_EQ(R.Checksum, Expected);
}

TEST_P(ExecutorEquivalence, DomoreDuplicatedMatchesSequential) {
  const auto [Name, Threads] = GetParam();
  auto W = makeWorkload(Name, Scale::Test);
  if (!W->prologueDuplicable())
    GTEST_SKIP() << "prologue not duplicable";
  const std::uint64_t Expected = sequentialChecksum(Name);
  const ExecResult R = runDomoreDuplicated(*W, Threads);
  EXPECT_EQ(R.Checksum, Expected);
}

TEST_P(ExecutorEquivalence, SpecCrossMatchesSequential) {
  const auto [Name, Threads] = GetParam();
  auto W = makeWorkload(Name, Scale::Test);
  if (!W->speccrossApplicable())
    GTEST_SKIP() << "SPECCROSS not applicable (Table 5.1)";
  const std::uint64_t Expected = sequentialChecksum(Name);
  speccross::SpecConfig Cfg;
  Cfg.NumWorkers = Threads;
  Cfg.Scheme = W->preferredSignature();
  Cfg.CheckpointIntervalEpochs = 16;
  const ExecResult R = runSpecCross(*W, Cfg);
  EXPECT_EQ(R.Checksum, Expected);
}

TEST_P(ExecutorEquivalence, SpecCrossNonSpeculativeMatchesSequential) {
  const auto [Name, Threads] = GetParam();
  auto W = makeWorkload(Name, Scale::Test);
  if (!W->speccrossApplicable())
    GTEST_SKIP() << "SPECCROSS not applicable (Table 5.1)";
  const std::uint64_t Expected = sequentialChecksum(Name);
  speccross::SpecConfig Cfg;
  Cfg.NumWorkers = Threads;
  const ExecResult R =
      runSpecCross(*W, Cfg, speccross::SpecMode::NonSpeculative);
  EXPECT_EQ(R.Checksum, Expected);
}

TEST_P(ExecutorEquivalence, SpecCrossWithProfiledThrottleMatchesSequential) {
  // The paper's full flow: profile (train), configure the speculative
  // range, then speculate (§4.4).
  const auto [Name, Threads] = GetParam();
  auto W = makeWorkload(Name, Scale::Test);
  if (!W->speccrossApplicable())
    GTEST_SKIP() << "SPECCROSS not applicable (Table 5.1)";
  const std::uint64_t Expected = sequentialChecksum(Name);
  speccross::SpecConfig Cfg;
  Cfg.NumWorkers = Threads;
  Cfg.Scheme = W->preferredSignature();
  Cfg.SpecDistance = profiledSpecDistance(*W, Threads);
  Cfg.CheckpointIntervalEpochs = 32;
  const ExecResult R = runSpecCross(*W, Cfg);
  EXPECT_EQ(R.Checksum, Expected);
}

TEST_P(ExecutorEquivalence, DomoreOwnerComputeMatchesSequential) {
  const auto [Name, Threads] = GetParam();
  auto W = makeWorkload(Name, Scale::Test);
  if (W->addressSpaceSize() == 0)
    GTEST_SKIP() << "owner-compute needs a dense address space";
  const std::uint64_t Expected = sequentialChecksum(Name);
  const ExecResult R =
      runDomore(*W, Threads, domore::PolicyKind::OwnerCompute);
  EXPECT_EQ(R.Checksum, Expected);
}

//===----------------------------------------------------------------------===//
// Misspeculation under fire: repeated injected rollbacks stay sound.
//===----------------------------------------------------------------------===//

TEST(HarnessRecovery, InjectedMisspeculationOnRealWorkload) {
  const std::uint64_t Expected = sequentialChecksum("equake");
  auto W = makeWorkload("equake", Scale::Test);
  speccross::SpecConfig Cfg;
  Cfg.NumWorkers = 3;
  Cfg.CheckpointIntervalEpochs = 20;
  Cfg.InjectMisspecAtEpoch = 30;
  speccross::SpecStats Stats;
  const ExecResult R =
      runSpecCross(*W, Cfg, speccross::SpecMode::Speculation, &Stats);
  EXPECT_EQ(R.Checksum, Expected);
  EXPECT_EQ(Stats.Misspeculations, 1u);
  EXPECT_GT(Stats.ReexecutedEpochs, 0u);
}

TEST(HarnessStats, BarrierExecutorAccountsIdleTime) {
  auto W = makeWorkload("symm", Scale::Test);
  const ExecResult R = runBarrier(*W, 4);
  // SYMM's triangular epochs guarantee idle threads at barriers.
  EXPECT_GT(R.BarrierIdleNanos, 0u);
}

TEST(HarnessStats, DomoreReportsSyncConditionsOnCg) {
  auto W = makeWorkload("cg", Scale::Test);
  domore::DomoreStats Stats;
  runDomore(*W, 3, domore::PolicyKind::RoundRobin, &Stats);
  // ~72% of invocations overlap the previous one: conflicts must appear.
  EXPECT_GT(Stats.SyncConditions, 0u);
  EXPECT_EQ(Stats.Invocations, W->numEpochs());
}

TEST(HarnessProfile, MatchesTable53Shape) {
  // Thread-aware profiles: conflict-free where the paper reports "*".
  for (const char *Star : {"llubench", "symm", "equake"}) {
    auto W = makeWorkload(Star, Scale::Test);
    speccross::ProfileResult P;
    profiledSpecDistance(*W, 8, &P);
    EXPECT_TRUE(P.conflictFree()) << Star;
  }
  // Finite distances where the paper reports numbers.
  for (const char *Finite : {"fdtd", "jacobi", "loopdep", "fluidanimate2"}) {
    auto W = makeWorkload(Finite, Scale::Test);
    speccross::ProfileResult P;
    profiledSpecDistance(*W, 8, &P);
    EXPECT_FALSE(P.conflictFree()) << Finite;
  }
}

//===----------------------------------------------------------------------===//
// DOANY baseline and the Chapter 2 staged-loop executors.
//===----------------------------------------------------------------------===//

TEST_P(ExecutorEquivalence, DoanyMatchesSequential) {
  const auto [Name, Threads] = GetParam();
  const std::uint64_t Expected = sequentialChecksum(Name);
  auto W = makeWorkload(Name, Scale::Test);
  const ExecResult R = runBarrierDoany(*W, Threads, /*NumLocks=*/8);
  EXPECT_EQ(R.Checksum, Expected);
}

#include "harness/StagedLoop.h"

namespace {

/// Fig 2.4 list loop over a tiny pool; results land in per-iteration slots.
struct ListLoopFixture {
  explicit ListLoopFixture(std::uint64_t N) : Next(N), Cost(N) {
    for (std::uint64_t I = 0; I < N; ++I)
      Next[I] = static_cast<std::uint32_t>((I * 7 + 3) % N);
  }

  StagedLoop loop() {
    Node = 0;
    std::fill(Cost.begin(), Cost.end(), 0.0);
    StagedLoop L;
    L.NumIterations = Cost.size();
    L.Traverse = [this](std::uint64_t) {
      const std::int64_t Current = Node;
      Node = Next[Node];
      return Current;
    };
    L.Work = [this](std::uint64_t Iter, std::int64_t Token) {
      Cost[Iter] = static_cast<double>(Token) * 1.5 +
                   static_cast<double>(Iter);
    };
    return L;
  }

  std::uint32_t Node = 0;
  std::vector<std::uint32_t> Next;
  std::vector<double> Cost;
};

} // namespace

TEST(StagedLoop, DoacrossMatchesSequential) {
  ListLoopFixture Ref(512), Par(512);
  StagedLoop RL = Ref.loop();
  runStagedSequential(RL);
  for (unsigned Threads : {1u, 2u, 4u}) {
    StagedLoop PL = Par.loop();
    runDoacross(PL, Threads);
    EXPECT_EQ(Par.Cost, Ref.Cost) << Threads << " threads";
    EXPECT_EQ(Par.Node, Ref.Node);
  }
}

TEST(StagedLoop, DswpMatchesSequential) {
  ListLoopFixture Ref(512), Par(512);
  StagedLoop RL = Ref.loop();
  runStagedSequential(RL);
  for (unsigned Threads : {2u, 3u, 4u}) {
    StagedLoop PL = Par.loop();
    runDswp(PL, Threads);
    EXPECT_EQ(Par.Cost, Ref.Cost) << Threads << " threads";
    EXPECT_EQ(Par.Node, Ref.Node);
  }
}

TEST(SpecCrossTmMode, TmStyleValidationStillSound) {
  // Same-epoch comparisons are extra work, never extra wrongness: the
  // TM-style mode must still produce sequential results and strictly more
  // signature comparisons on a multi-task region.
  const std::uint64_t Expected = sequentialChecksum("equake");
  auto W = makeWorkload("equake", Scale::Test);
  speccross::SpecConfig Cfg;
  Cfg.NumWorkers = 3;
  Cfg.TmStyleValidation = true;
  speccross::SpecStats TmStats;
  const ExecResult R =
      runSpecCross(*W, Cfg, speccross::SpecMode::Speculation, &TmStats);
  EXPECT_EQ(R.Checksum, Expected);

  auto W2 = makeWorkload("equake", Scale::Test);
  Cfg.TmStyleValidation = false;
  speccross::SpecStats SpecStats;
  runSpecCross(*W2, Cfg, speccross::SpecMode::Speculation, &SpecStats);
  EXPECT_GT(TmStats.SignatureComparisons, SpecStats.SignatureComparisons);
}

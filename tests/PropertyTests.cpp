//===- tests/PropertyTests.cpp - Randomized invariant sweeps -------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized property tests sweeping randomized dependence patterns,
/// worker counts, and runtime configurations over the two runtime systems.
/// The invariants under test:
///
///  * DOMORE executes conflicting iterations in program order and every
///    iteration exactly once, for any dependence pattern and policy.
///  * SPECCROSS (any signature scheme, any throttle, any checkpoint
///    interval, with or without injected rollbacks) produces bit-identical
///    final state to sequential execution.
///  * Profiling is exact: a speculative run throttled to the profiled
///    distance never misspeculates on the profiled input.
///
//===----------------------------------------------------------------------===//

#include "domore/DomoreRuntime.h"
#include "speccross/SpecCrossRuntime.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace cip;

namespace {

/// A randomized region: epochs x tasks over Cells; each task does a
/// read-modify-write of its own cell plus, with probability ConflictProb,
/// of one extra cell drawn from a per-epoch disjoint pool (so tasks within
/// an epoch never collide, per the DOALL contract).
struct RandomRegion {
  RandomRegion(std::uint32_t Epochs, std::uint32_t Tasks, double ConflictProb,
               std::uint64_t Seed)
      : Epochs(Epochs), Tasks(Tasks), Cells(2 * Tasks) {
    reset();
    // Extra cell per (epoch, task): a per-epoch permutation of the upper
    // half of the cell array, engaged or not by a coin flip.
    Xoshiro256StarStar Rng(Seed);
    Extra.resize(static_cast<std::size_t>(Epochs) * Tasks, -1);
    std::vector<std::uint32_t> Perm(Tasks);
    for (std::uint32_t E = 0; E < Epochs; ++E) {
      std::iota(Perm.begin(), Perm.end(), Tasks);
      for (std::size_t I = Perm.size(); I > 1; --I)
        std::swap(Perm[I - 1], Perm[Rng.nextBelow(I)]);
      for (std::uint32_t T = 0; T < Tasks; ++T)
        if (Rng.nextBool(ConflictProb))
          Extra[static_cast<std::size_t>(E) * Tasks + T] =
              static_cast<std::int32_t>(Perm[T]);
    }
  }

  std::int32_t extraOf(std::uint32_t E, std::size_t T) const {
    return Extra[static_cast<std::size_t>(E) * Tasks + T];
  }

  void runTask(std::uint32_t E, std::size_t T) {
    // Non-commutative updates so ordering violations corrupt the state;
    // unsigned cells so the long multiply chains wrap (defined, and odd
    // multipliers remain injective mod 2^64) instead of overflowing.
    // Relaxed atomics keep the cells' races defined: SPECCROSS runs
    // conflicting tasks speculatively and unwinds them on misspeculation,
    // and the throttle bounds task-number lead, not completion — so under
    // TSan the intentional speculation race must not be UB. A lost update
    // still corrupts the state and fails the sequential comparison.
    Cells[T].store(Cells[T].load(std::memory_order_relaxed) * 3 +
                       static_cast<std::uint64_t>(E),
                   std::memory_order_relaxed);
    const std::int32_t X = extraOf(E, T);
    if (X >= 0) {
      auto &Cell = Cells[static_cast<std::size_t>(X)];
      Cell.store(Cell.load(std::memory_order_relaxed) * 5 +
                     static_cast<std::uint64_t>(T),
                 std::memory_order_relaxed);
    }
  }

  void addresses(std::uint32_t E, std::size_t T,
                 std::vector<std::uint64_t> &Addrs) const {
    Addrs.push_back(T);
    const std::int32_t X = extraOf(E, T);
    if (X >= 0)
      Addrs.push_back(static_cast<std::uint64_t>(X));
  }

  void reset() {
    for (auto &C : Cells)
      C.store(1, std::memory_order_relaxed);
  }

  std::vector<std::uint64_t> state() const {
    std::vector<std::uint64_t> Out;
    Out.reserve(Cells.size());
    for (const auto &C : Cells)
      Out.push_back(C.load(std::memory_order_relaxed));
    return Out;
  }

  std::vector<std::uint64_t> sequentialResult() {
    reset();
    for (std::uint32_t E = 0; E < Epochs; ++E)
      for (std::uint32_t T = 0; T < Tasks; ++T)
        runTask(E, T);
    std::vector<std::uint64_t> Out = state();
    reset();
    return Out;
  }

  speccross::SpecRegion region(speccross::CheckpointRegistry &Reg) {
    Reg.registerBuffer(Cells);
    speccross::SpecRegion R;
    R.NumEpochs = Epochs;
    R.NumTasks = [this](std::uint32_t) {
      return static_cast<std::size_t>(Tasks);
    };
    R.RunTask = [this](std::uint32_t E, std::size_t T) { runTask(E, T); };
    R.TaskAddresses = [this](std::uint32_t E, std::size_t T,
                             std::vector<std::uint64_t> &A) {
      addresses(E, T, A);
    };
    R.Checkpoints = &Reg;
    return R;
  }

  domore::LoopNest nest() {
    domore::LoopNest N;
    N.NumInvocations = Epochs;
    N.AddressSpaceSize = Cells.size();
    N.BeginInvocation = [this](std::uint32_t) {
      return static_cast<std::size_t>(Tasks);
    };
    N.ComputeAddr = [this](std::uint32_t E, std::size_t T,
                           std::vector<std::uint64_t> &A) {
      addresses(E, T, A);
    };
    N.Work = [this](std::uint32_t E, std::size_t T) { runTask(E, T); };
    return N;
  }

  std::uint32_t Epochs, Tasks;
  std::vector<std::atomic<std::uint64_t>> Cells;
  std::vector<std::int32_t> Extra;
};

struct SweepParam {
  std::uint64_t Seed;
  unsigned Workers;
  double ConflictProb;
};

std::string sweepName(const ::testing::TestParamInfo<SweepParam> &Info) {
  return "seed" + std::to_string(Info.param.Seed) + "_w" +
         std::to_string(Info.param.Workers) + "_p" +
         std::to_string(static_cast<int>(Info.param.ConflictProb * 100));
}

std::vector<SweepParam> sweepParams() {
  std::vector<SweepParam> Out;
  for (std::uint64_t Seed : {1u, 2u, 3u})
    for (unsigned Workers : {2u, 4u})
      for (double P : {0.0, 0.2, 0.9})
        Out.push_back(SweepParam{Seed, Workers, P});
  return Out;
}

class RandomizedSweep : public ::testing::TestWithParam<SweepParam> {};

} // namespace

INSTANTIATE_TEST_SUITE_P(Patterns, RandomizedSweep,
                         ::testing::ValuesIn(sweepParams()), sweepName);

TEST_P(RandomizedSweep, DomoreMatchesSequential) {
  const auto [Seed, Workers, Prob] = GetParam();
  RandomRegion R(60, 10, Prob, Seed);
  const auto Expected = R.sequentialResult();
  domore::DomoreConfig Cfg;
  Cfg.NumWorkers = Workers;
  domore::runDomore(R.nest(), Cfg);
  EXPECT_EQ(R.state(), Expected);
}

TEST_P(RandomizedSweep, DomoreDuplicatedMatchesSequential) {
  const auto [Seed, Workers, Prob] = GetParam();
  RandomRegion R(60, 10, Prob, Seed);
  const auto Expected = R.sequentialResult();
  domore::DomoreConfig Cfg;
  Cfg.NumWorkers = Workers;
  domore::runDomoreDuplicated(R.nest(), Cfg);
  EXPECT_EQ(R.state(), Expected);
}

TEST_P(RandomizedSweep, DomoreOwnerComputeMatchesSequential) {
  const auto [Seed, Workers, Prob] = GetParam();
  RandomRegion R(60, 10, Prob, Seed);
  const auto Expected = R.sequentialResult();
  domore::DomoreConfig Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.Policy = domore::PolicyKind::OwnerCompute;
  domore::runDomore(R.nest(), Cfg);
  EXPECT_EQ(R.state(), Expected);
}

TEST_P(RandomizedSweep, SpecCrossRangeSigMatchesSequential) {
  const auto [Seed, Workers, Prob] = GetParam();
  RandomRegion R(60, 10, Prob, Seed);
  const auto Expected = R.sequentialResult();
  speccross::CheckpointRegistry Reg;
  speccross::SpecRegion Region = R.region(Reg);
  speccross::SpecConfig Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.CheckpointIntervalEpochs = 13; // odd interval exercises partial rounds
  speccross::runSpecCross(Region, Cfg);
  EXPECT_EQ(R.state(), Expected);
}

TEST_P(RandomizedSweep, SpecCrossBloomSigMatchesSequential) {
  const auto [Seed, Workers, Prob] = GetParam();
  RandomRegion R(60, 10, Prob, Seed);
  const auto Expected = R.sequentialResult();
  speccross::CheckpointRegistry Reg;
  speccross::SpecRegion Region = R.region(Reg);
  speccross::SpecConfig Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.Scheme = speccross::SignatureScheme::Bloom;
  speccross::runSpecCross(Region, Cfg);
  EXPECT_EQ(R.state(), Expected);
}

TEST_P(RandomizedSweep, ProfiledThrottleNeverMisspeculates) {
  const auto [Seed, Workers, Prob] = GetParam();
  RandomRegion R(60, 10, Prob, Seed);
  const auto Expected = R.sequentialResult();

  speccross::CheckpointRegistry ProfReg;
  speccross::SpecRegion ProfRegion = R.region(ProfReg);
  const speccross::ProfileResult P =
      speccross::profileRegion(ProfRegion, Workers);
  R.reset();

  // The exact small-set scheme matches the profiler's address-level
  // precision, so the profiled distance is also the signature-level
  // distance and the throttle guarantee holds with no false positives.
  speccross::CheckpointRegistry Reg;
  speccross::SpecRegion Region = R.region(Reg);
  speccross::SpecConfig Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.Scheme = speccross::SignatureScheme::SmallSet;
  Cfg.SpecDistance = P.recommendedSpecDistance(Workers);
  const speccross::SpecStats S = speccross::runSpecCross(Region, Cfg);
  EXPECT_EQ(R.state(), Expected);
  // The no-misspeculation guarantee requires the profiled slack to be the
  // binding throttle (not the per-worker progress floor).
  if (!P.conflictFree() &&
      Cfg.SpecDistance == P.MinDependenceDistance - 2) {
    EXPECT_EQ(S.Misspeculations, 0u);
  }
}

TEST_P(RandomizedSweep, TmStyleValidationMatchesSequential) {
  const auto [Seed, Workers, Prob] = GetParam();
  RandomRegion R(40, 8, Prob, Seed);
  const auto Expected = R.sequentialResult();
  speccross::CheckpointRegistry Reg;
  speccross::SpecRegion Region = R.region(Reg);
  speccross::SpecConfig Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.Scheme = speccross::SignatureScheme::SmallSet;
  Cfg.TmStyleValidation = true;
  speccross::runSpecCross(Region, Cfg);
  EXPECT_EQ(R.state(), Expected);
}

//===- tests/TransformTests.cpp - Unit tests for src/transform -----------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "tests/TestNests.h"
#include "transform/DomoreDriver.h"
#include "transform/DomorePartitioner.h"
#include "transform/MTCG.h"
#include "transform/Parallelizer.h"
#include "transform/Slicer.h"
#include "transform/SpecCrossPlanner.h"

#include <gtest/gtest.h>

using namespace cip;
using namespace cip::ir;
using namespace cip::tests;
using namespace cip::transform;

namespace {

struct Analyses {
  explicit Analyses(const Function &F)
      : G(F), DT(G, false), PDT(G, true), LI(G, DT) {}
  CFG G;
  DominatorTree DT;
  DominatorTree PDT;
  LoopInfo LI;
};

/// Runs the whole DOMORE compiler pipeline on the CG nest.
struct CgPipeline {
  CgPipeline(Module &M, unsigned Rows = 30, unsigned Data = 48)
      : Nest(buildCgNest(M, Rows, Data)), A(*Nest.F),
        Outer(A.LI.topLevelLoops().front()),
        Inner(Outer->subLoops().front()),
        Pdg(*Nest.F, A.G, A.PDT, A.LI, *Outer), Dag(Pdg),
        Part(partitionDomore(Pdg, Dag, *Outer, *Inner, A.G)),
        Slice(sliceComputeAddr(Pdg, Part)) {}

  CgNest Nest;
  Analyses A;
  Loop *Outer;
  Loop *Inner;
  analysis::PDG Pdg;
  analysis::DagScc Dag;
  Partition Part;
  SliceResult Slice;
};

} // namespace

//===----------------------------------------------------------------------===//
// Parallelization planning
//===----------------------------------------------------------------------===//

TEST(Planner, CgInnerLoopIsDoall) {
  Module M;
  CgNest Nest = buildCgNest(M);
  Analyses A(*Nest.F);
  Loop *Inner = A.LI.topLevelLoops().front()->subLoops().front();
  analysis::PDG G(*Nest.F, A.G, A.PDT, A.LI, *Inner);
  const PlanResult P = planLoop(G, A.G);
  EXPECT_EQ(P.Plan, LoopPlan::Doall) << P.Reason;
}

TEST(Planner, CgOuterLoopIsNotDoall) {
  Module M;
  CgNest Nest = buildCgNest(M);
  Analyses A(*Nest.F);
  Loop *Outer = A.LI.topLevelLoops().front();
  analysis::PDG G(*Nest.F, A.G, A.PDT, A.LI, *Outer);
  const PlanResult P = planLoop(G, A.G);
  EXPECT_NE(P.Plan, LoopPlan::Doall);
}

TEST(Planner, ProvablyCarriedStoreBlocksDoall) {
  // for (i..) { acc[0] = acc[0] + i } — a provable carried dependence.
  Module M;
  GlobalArray *Acc = M.createArray("acc", 1);
  Function *F = M.createFunction("reduce", 0);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *H = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.br(H);
  B.setInsertPoint(H);
  Instruction *I = B.phi("i");
  Instruction *Cmp = B.cmp(Opcode::CmpLT, I, B.constant(10), "c");
  B.condBr(Cmp, Body, Exit);
  B.setInsertPoint(Body);
  Instruction *V = B.load(Acc, B.constant(0), "v");
  B.store(Acc, B.constant(0), B.add(V, I, "v2"));
  Instruction *IN = B.add(I, B.constant(1), "i.next");
  B.br(H);
  B.setInsertPoint(Exit);
  B.ret(B.constant(0));
  I->addIncoming(B.constant(0), Entry);
  I->addIncoming(IN, Body);
  ASSERT_TRUE(verifyFunction(*F));

  Analyses A(*F);
  Loop *L = A.LI.topLevelLoops().front();
  analysis::PDG G(*F, A.G, A.PDT, A.LI, *L);
  const PlanResult P = planLoop(G, A.G);
  EXPECT_EQ(P.Plan, LoopPlan::None);
}

//===----------------------------------------------------------------------===//
// DOMORE partitioning + slicing
//===----------------------------------------------------------------------===//

TEST(Partitioner, SplitsTraversalFromBody) {
  Module M;
  CgPipeline P(M);
  // The update chain (load C, mul, add, store C) is worker code.
  unsigned WorkerMemOps = 0;
  for (const Instruction *I : P.Part.Worker) {
    EXPECT_TRUE(P.Inner->contains(I->parent()));
    WorkerMemOps += I->accessesMemory();
  }
  EXPECT_EQ(WorkerMemOps, 2u);
  // Traversal and outer-loop code is scheduler: the inner phi, bounds
  // loads, branches.
  bool SchedulerHasInnerPhi = false, SchedulerHasBoundLoads = false;
  for (const Instruction *I : P.Part.Scheduler) {
    if (I->opcode() == Opcode::Phi && I->name() == "j")
      SchedulerHasInnerPhi = true;
    if (I->opcode() == Opcode::Load && I->operand(0) != P.Nest.C)
      SchedulerHasBoundLoads = true;
  }
  EXPECT_TRUE(SchedulerHasInnerPhi);
  EXPECT_TRUE(SchedulerHasBoundLoads);
}

TEST(Partitioner, NoWorkerToSchedulerEdges) {
  Module M;
  CgPipeline P(M);
  // Pipeline property: every cross-partition dependence flows
  // scheduler -> worker.
  for (const analysis::DepEdge &E : P.Pdg.edges()) {
    const bool SrcWorker = P.Part.inWorker(E.Src);
    const bool DstScheduler = P.Part.inScheduler(E.Dst);
    EXPECT_FALSE(SrcWorker && DstScheduler)
        << E.Src->name() << " -> " << E.Dst->name();
  }
}

TEST(Partitioner, PartitionCoversAllNodes) {
  Module M;
  CgPipeline P(M);
  EXPECT_EQ(P.Part.Scheduler.size() + P.Part.Worker.size(),
            P.Pdg.nodes().size());
  for (const Instruction *I : P.Pdg.nodes())
    EXPECT_NE(P.Part.inScheduler(I), P.Part.inWorker(I));
}

TEST(Slicer, CgSliceIsFeasibleAndPure) {
  Module M;
  CgPipeline P(M);
  ASSERT_TRUE(P.Slice.Feasible) << P.Slice.Reason;
  EXPECT_EQ(P.Slice.TrackedAccesses.size(), 2u); // C load + C store
  for (const Instruction *I : P.Slice.Slice) {
    EXPECT_FALSE(I->mayWriteMemory());
    EXPECT_NE(I->opcode(), Opcode::Call);
  }
  EXPECT_LE(P.Slice.WeightRatio, 0.5);
}

TEST(Slicer, RejectsSideEffectingSlice) {
  // Index computed through a store-feeding chain: C[D[j]] where D is also
  // *written* in the loop body (the Fig 4.1 pattern) — the slice must
  // refuse to duplicate the store.
  Module M;
  GlobalArray *D = M.createArray("D", 16);
  GlobalArray *C = M.createArray("C", 16);
  Function *F = M.createFunction("fig41", 0);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *OH = F->createBlock("outer.header");
  BasicBlock *IPre = F->createBlock("inner.pre");
  BasicBlock *IH = F->createBlock("inner.header");
  BasicBlock *IB = F->createBlock("inner.body");
  BasicBlock *OL = F->createBlock("outer.latch");
  BasicBlock *Exit = F->createBlock("exit");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.br(OH);
  B.setInsertPoint(OH);
  Instruction *I = B.phi("i");
  Instruction *OC = B.cmp(Opcode::CmpLT, I, B.constant(8), "oc");
  B.condBr(OC, IPre, Exit);
  B.setInsertPoint(IPre);
  B.br(IH);
  B.setInsertPoint(IH);
  Instruction *J = B.phi("j");
  Instruction *IC = B.cmp(Opcode::CmpLT, J, B.constant(16), "ic");
  B.condBr(IC, IB, OL);
  B.setInsertPoint(IB);
  Instruction *Idx = B.load(D, J, "idx");
  Instruction *Masked = B.rem(Idx, B.constant(16), "masked");
  Instruction *V = B.load(C, Masked, "v");
  Instruction *V2 = B.add(V, I, "v2");
  B.store(C, Masked, V2);
  B.store(D, J, V2); // the index array itself is updated
  Instruction *JN = B.add(J, B.constant(1), "jn");
  B.br(IH);
  B.setInsertPoint(OL);
  Instruction *IN = B.add(I, B.constant(1), "in");
  B.br(OH);
  B.setInsertPoint(Exit);
  B.ret(B.constant(0));
  I->addIncoming(B.constant(0), Entry);
  I->addIncoming(IN, OL);
  J->addIncoming(B.constant(0), IPre);
  J->addIncoming(JN, IB);
  ASSERT_TRUE(verifyFunction(*F));

  Analyses A(*F);
  Loop *Outer = A.LI.topLevelLoops().front();
  Loop *Inner = Outer->subLoops().front();
  analysis::PDG G(*F, A.G, A.PDT, A.LI, *Outer);
  analysis::DagScc Dag(G);
  const Partition Part = partitionDomore(G, Dag, *Outer, *Inner, A.G);
  const SliceResult S = sliceComputeAddr(G, Part);
  // Either the slice is infeasible (store in the address chain) or the
  // whole body collapsed into the scheduler (no worker left) — both are
  // valid "DOMORE inapplicable" outcomes for the Fig 4.1 nest.
  EXPECT_TRUE(!S.Feasible || Part.Worker.empty()) << S.Reason;
}

//===----------------------------------------------------------------------===//
// MTCG + parallel execution of the generated pair
//===----------------------------------------------------------------------===//

TEST(MTCGGen, GeneratesVerifiableFunctions) {
  Module M;
  CgPipeline P(M);
  ASSERT_TRUE(P.Slice.Feasible);
  const MTCGResult R = generateDomorePair(M, *P.Nest.F, *P.Outer, *P.Inner,
                                          P.Part, P.Slice);
  ASSERT_TRUE(R.Feasible) << R.Reason;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyFunction(*R.SchedulerFn, &Errors))
      << (Errors.empty() ? "" : Errors.front());
  EXPECT_TRUE(verifyFunction(*R.WorkerFn, &Errors))
      << (Errors.empty() ? "" : Errors.front());
  // Live-ins: the element index j and the outer induction i.
  EXPECT_EQ(R.LiveIns.size(), 2u);
  EXPECT_EQ(R.WorkerFn->numArgs(), P.Nest.F->numArgs() + 1);

  // The scheduler must not touch C's data anymore (the worker does), but
  // still contains the runtime calls.
  const std::string SchedText = printFunction(*R.SchedulerFn);
  EXPECT_EQ(SchedText.find("store @C"), std::string::npos);
  EXPECT_NE(SchedText.find("cip.domore.pick"), std::string::npos);
  EXPECT_NE(SchedText.find("cip.domore.emit_work"), std::string::npos);
  EXPECT_NE(SchedText.find("cip.domore.emit_end"), std::string::npos);
  const std::string WorkText = printFunction(*R.WorkerFn);
  EXPECT_NE(WorkText.find("store @C"), std::string::npos);
  EXPECT_NE(WorkText.find("cip.domore.fetch"), std::string::npos);
  EXPECT_NE(WorkText.find("cip.domore.finished"), std::string::npos);
}

TEST(MTCGGen, ParallelPairMatchesSequentialExecution) {
  for (unsigned Workers : {1u, 2u, 3u}) {
    Module M;
    CgPipeline P(M, /*Rows=*/40, /*Data=*/48);
    ASSERT_TRUE(P.Slice.Feasible);
    const MTCGResult R = generateDomorePair(M, *P.Nest.F, *P.Outer, *P.Inner,
                                            P.Part, P.Slice);
    ASSERT_TRUE(R.Feasible) << R.Reason;

    MemoryState SeqMem(M), ParMem(M);
    seedCgMemory(P.Nest, SeqMem, /*RowLen=*/6, /*Stride=*/1);
    seedCgMemory(P.Nest, ParMem, /*RowLen=*/6, /*Stride=*/1);
    ASSERT_TRUE(interpret(*P.Nest.F, {}, SeqMem).Completed);

    const DomorePairResult D =
        runDomorePair(*R.SchedulerFn, *R.WorkerFn, {}, ParMem, Workers);
    ASSERT_TRUE(D.Completed) << D.Error;
    EXPECT_EQ(D.Iterations, 40u * 6u);
    EXPECT_EQ(ParMem.digest(), SeqMem.digest()) << "workers=" << Workers;
    if (Workers > 1) {
      EXPECT_GT(D.SyncConditions, 0u); // stride 1: dense conflicts
    }
  }
}

TEST(MTCGGen, ConflictFreeNestNeedsNoSync) {
  Module M;
  CgPipeline P(M, /*Rows=*/12, /*Data=*/200);
  const MTCGResult R = generateDomorePair(M, *P.Nest.F, *P.Outer, *P.Inner,
                                          P.Part, P.Slice);
  ASSERT_TRUE(R.Feasible);
  MemoryState SeqMem(M), ParMem(M);
  seedCgMemory(P.Nest, SeqMem, /*RowLen=*/6, /*Stride=*/9);
  seedCgMemory(P.Nest, ParMem, /*RowLen=*/6, /*Stride=*/9);
  ASSERT_TRUE(interpret(*P.Nest.F, {}, SeqMem).Completed);
  const DomorePairResult D =
      runDomorePair(*R.SchedulerFn, *R.WorkerFn, {}, ParMem, 3);
  ASSERT_TRUE(D.Completed) << D.Error;
  EXPECT_EQ(ParMem.digest(), SeqMem.digest());
  EXPECT_EQ(D.SyncConditions, 0u);
}

//===----------------------------------------------------------------------===//
// SPECCROSS region planning + Algorithm 5 instrumentation
//===----------------------------------------------------------------------===//

TEST(SpecPlanner, DetectsPhaseRegion) {
  Module M;
  PhaseNest Nest = buildPhaseNest(M);
  Analyses A(*Nest.F);
  const SpecCrossCandidates C =
      findSpecCrossRegions(*Nest.F, A.G, A.PDT, A.LI);
  ASSERT_EQ(C.Regions.size(), 1u);
  const SpecRegionPlan &Plan = C.Regions.front();
  EXPECT_EQ(Plan.InnerLoops.size(), 2u);
  EXPECT_EQ(Plan.InnerLoops[0]->header()->name(), "l1.header");
  EXPECT_EQ(Plan.InnerLoops[1]->header()->name(), "l2.header");
  EXPECT_EQ(Plan.InnerPlans[0], LoopPlan::Doall);
  EXPECT_EQ(Plan.InnerPlans[1], LoopPlan::Doall);
  // X and Y flow between the phases: both ends of both deps instrumented.
  EXPECT_GE(Plan.SpeculatedAccesses.size(), 4u);
}

TEST(SpecPlanner, RejectsUnparallelizableInnerLoop) {
  // An outer loop whose inner loop is a provable reduction cannot be a
  // SPECCROSS region.
  Module M;
  GlobalArray *Acc = M.createArray("acc", 1);
  Function *F = M.createFunction("sum2", 0);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *OH = F->createBlock("outer.header");
  BasicBlock *IPre = F->createBlock("inner.pre");
  BasicBlock *IH = F->createBlock("inner.header");
  BasicBlock *IB = F->createBlock("inner.body");
  BasicBlock *OL = F->createBlock("outer.latch");
  BasicBlock *Exit = F->createBlock("exit");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.br(OH);
  B.setInsertPoint(OH);
  Instruction *T = B.phi("t");
  Instruction *TC = B.cmp(Opcode::CmpLT, T, B.constant(4), "tc");
  B.condBr(TC, IPre, Exit);
  B.setInsertPoint(IPre);
  B.br(IH);
  B.setInsertPoint(IH);
  Instruction *J = B.phi("j");
  Instruction *JC = B.cmp(Opcode::CmpLT, J, B.constant(8), "jc");
  B.condBr(JC, IB, OL);
  B.setInsertPoint(IB);
  Instruction *V = B.load(Acc, B.constant(0), "v");
  B.store(Acc, B.constant(0), B.add(V, J, "v2"));
  Instruction *JN = B.add(J, B.constant(1), "jn");
  B.br(IH);
  B.setInsertPoint(OL);
  Instruction *TN = B.add(T, B.constant(1), "tn");
  B.br(OH);
  B.setInsertPoint(Exit);
  B.ret(B.constant(0));
  T->addIncoming(B.constant(0), Entry);
  T->addIncoming(TN, OL);
  J->addIncoming(B.constant(0), IPre);
  J->addIncoming(JN, IB);
  ASSERT_TRUE(verifyFunction(*F));

  Analyses A(*F);
  const SpecCrossCandidates C = findSpecCrossRegions(*F, A.G, A.PDT, A.LI);
  EXPECT_TRUE(C.Regions.empty());
  ASSERT_FALSE(C.Rejections.empty());
  EXPECT_NE(C.Rejections.front().second.find("not parallelizable"),
            std::string::npos);
}

TEST(SpecPlanner, InsertsCallsPerAlgorithm5) {
  Module M;
  PhaseNest Nest = buildPhaseNest(M, /*Steps=*/6, /*Width=*/10);
  Analyses A(*Nest.F);
  const SpecCrossCandidates C =
      findSpecCrossRegions(*Nest.F, A.G, A.PDT, A.LI);
  ASSERT_EQ(C.Regions.size(), 1u);

  const InsertionStats S = insertSpecCrossCalls(M, C.Regions.front(), A.G);
  EXPECT_EQ(S.EnterBarrier, 2u); // one per inner loop preheader
  EXPECT_EQ(S.EnterTask, 2u);    // one per inner loop header
  EXPECT_GE(S.ExitTask, 2u);     // at least one per loop
  EXPECT_EQ(S.SpecAccess, C.Regions.front().SpeculatedAccesses.size());
  ASSERT_TRUE(verifyFunction(*Nest.F));

  // Instrumented code must still compute the same result.
  Module M2;
  PhaseNest Ref = buildPhaseNest(M2, 6, 10);
  MemoryState RefMem(M2), InstMem(M);
  for (std::size_t I = 0; I < 10; ++I) {
    RefMem.arrayData(Ref.X)[I] = static_cast<std::int64_t>(I);
    InstMem.arrayData(Nest.X)[I] = static_cast<std::int64_t>(I);
  }
  ASSERT_TRUE(interpret(*Ref.F, {}, RefMem).Completed);
  InterpOptions Opt;
  registerNoopSpecNatives(Opt);
  const InterpResult R = interpret(*Nest.F, {}, InstMem, Opt);
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(InstMem.arrayData(Nest.X), RefMem.arrayData(Ref.X));
  EXPECT_EQ(InstMem.arrayData(Nest.Y), RefMem.arrayData(Ref.Y));
}

TEST(SpecPlanner, CountsTasksViaInstrumentation) {
  // Replace the no-op natives with counters to check dynamic placement:
  // every task body runs exactly one enter_task and one exit_task.
  Module M;
  PhaseNest Nest = buildPhaseNest(M, /*Steps=*/5, /*Width=*/7);
  Analyses A(*Nest.F);
  const SpecCrossCandidates C =
      findSpecCrossRegions(*Nest.F, A.G, A.PDT, A.LI);
  ASSERT_EQ(C.Regions.size(), 1u);
  insertSpecCrossCalls(M, C.Regions.front(), A.G);

  std::uint64_t Barriers = 0, Enters = 0, Exits = 0;
  InterpOptions Opt;
  registerNoopSpecNatives(Opt);
  Opt.Natives["cip.spec.enter_barrier"] =
      [&](const std::vector<std::int64_t> &) { return ++Barriers, 0; };
  Opt.Natives["cip.spec.enter_task"] =
      [&](const std::vector<std::int64_t> &) { return ++Enters, 0; };
  Opt.Natives["cip.spec.exit_task"] =
      [&](const std::vector<std::int64_t> &) { return ++Exits, 0; };
  MemoryState Mem(M);
  ASSERT_TRUE(interpret(*Nest.F, {}, Mem, Opt).Completed);
  EXPECT_EQ(Barriers, 2u * 5u);        // two epochs per timestep
  // One exit_task per back edge plus one on the split exit edge (Alg. 5
  // line 26: "invoke exit_task when exit taken").
  EXPECT_EQ(Exits, 2u * 5u * (7u + 1u));
  // enter_task fires once per header visit, including the exit check.
  EXPECT_EQ(Enters, 2u * 5u * (7u + 1u));
}

//===----------------------------------------------------------------------===//
// Pipeline fuzzing: the full compile-and-run path over randomized nests.
//===----------------------------------------------------------------------===//

namespace {

struct FuzzParam {
  unsigned Rows;
  unsigned Data;
  unsigned RowLen;
  unsigned Stride;
  unsigned Workers;
};

std::string fuzzName(const ::testing::TestParamInfo<FuzzParam> &Info) {
  const FuzzParam &P = Info.param;
  return "r" + std::to_string(P.Rows) + "_d" + std::to_string(P.Data) +
         "_l" + std::to_string(P.RowLen) + "_s" + std::to_string(P.Stride) +
         "_w" + std::to_string(P.Workers);
}

std::vector<FuzzParam> fuzzParams() {
  std::vector<FuzzParam> Out;
  for (unsigned Rows : {7u, 33u})
    for (unsigned RowLen : {1u, 5u})
      for (unsigned Stride : {1u, 4u, 11u})
        for (unsigned Workers : {1u, 3u})
          Out.push_back(FuzzParam{Rows, 64, RowLen, Stride, Workers});
  return Out;
}

class PipelineFuzz : public ::testing::TestWithParam<FuzzParam> {};

} // namespace

INSTANTIATE_TEST_SUITE_P(Nests, PipelineFuzz,
                         ::testing::ValuesIn(fuzzParams()), fuzzName);

TEST_P(PipelineFuzz, CompiledPairMatchesSequentialInterpretation) {
  const FuzzParam Param = GetParam();
  Module M;
  CgPipeline P(M, Param.Rows, Param.Data);
  ASSERT_TRUE(P.Slice.Feasible) << P.Slice.Reason;
  const MTCGResult R = generateDomorePair(M, *P.Nest.F, *P.Outer, *P.Inner,
                                          P.Part, P.Slice);
  ASSERT_TRUE(R.Feasible) << R.Reason;
  ASSERT_TRUE(verifyFunction(*R.SchedulerFn));
  ASSERT_TRUE(verifyFunction(*R.WorkerFn));

  MemoryState SeqMem(M), ParMem(M);
  seedCgMemory(P.Nest, SeqMem, Param.RowLen, Param.Stride);
  seedCgMemory(P.Nest, ParMem, Param.RowLen, Param.Stride);
  ASSERT_TRUE(interpret(*P.Nest.F, {}, SeqMem).Completed);
  const DomorePairResult D =
      runDomorePair(*R.SchedulerFn, *R.WorkerFn, {}, ParMem, Param.Workers);
  ASSERT_TRUE(D.Completed) << D.Error;
  EXPECT_EQ(ParMem.digest(), SeqMem.digest());
  EXPECT_EQ(D.Iterations,
            static_cast<std::uint64_t>(Param.Rows) * Param.RowLen);
}

//===----------------------------------------------------------------------===//
// DomoreIROracle unit behavior.
//===----------------------------------------------------------------------===//

TEST(DomoreOracle, RoundRobinPickAndIterationNumbers) {
  DomoreIROracle Oracle(3);
  ir::InterpOptions Opt;
  Oracle.registerNatives(Opt);
  auto &Pick = Opt.Natives.at("cip.domore.pick");
  auto &NextIter = Opt.Natives.at("cip.domore.next_iter");
  EXPECT_EQ(NextIter({}), 0);
  EXPECT_EQ(NextIter({}), 1);
  EXPECT_EQ(Pick({0}), 0);
  EXPECT_EQ(Pick({1}), 1);
  EXPECT_EQ(Pick({2}), 2);
  EXPECT_EQ(Pick({3}), 0);
  EXPECT_EQ(Oracle.iterationsScheduled(), 2u);
}

TEST(DomoreOracle, ConflictDetectionAcrossWorkers) {
  DomoreIROracle Oracle(2);
  ir::InterpOptions Opt;
  Oracle.registerNatives(Opt);
  auto &Access = Opt.Natives.at("cip.domore.access");
  // Same array element touched by worker 0 (iter 0) then worker 1 (iter 1):
  // one sync condition. Same worker again: none.
  Access({0, 0, /*ArrayId=*/2, /*Index=*/7});
  EXPECT_EQ(Oracle.syncConditions(), 0u);
  Access({1, 1, 2, 7});
  EXPECT_EQ(Oracle.syncConditions(), 1u);
  Access({1, 2, 2, 7});
  EXPECT_EQ(Oracle.syncConditions(), 1u);
  // Same index in a different array is a different address.
  Access({0, 3, /*ArrayId=*/5, 7});
  EXPECT_EQ(Oracle.syncConditions(), 1u);
}

//===- tests/TelemetryTests.cpp - Unit tests for the telemetry subsystem -===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "domore/DomoreRuntime.h"
#include "speccross/SpecCrossRuntime.h"
#include "support/ThreadGroup.h"
#include "telemetry/ChromeTrace.h"
#include "telemetry/Json.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace cip;
using namespace cip::telemetry;

//===----------------------------------------------------------------------===//
// JSON writer and parser (always compiled, in both telemetry configs)
//===----------------------------------------------------------------------===//

TEST(Json, WriterRoundTripsThroughParser) {
  json::Writer W;
  W.beginObject();
  W.key("name");
  W.value("hello \"world\"\n");
  W.key("count");
  W.value(std::uint64_t{18446744073709551615ULL});
  W.key("neg");
  W.value(std::int64_t{-42});
  W.key("pi");
  W.value(3.25);
  W.key("flag");
  W.value(true);
  W.key("items");
  W.beginArray();
  W.value(1u);
  W.value(2u);
  W.value(3u);
  W.endArray();
  W.key("empty");
  W.beginObject();
  W.endObject();
  W.endObject();

  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(W.str(), V, &Err)) << Err << "\n" << W.str();
  ASSERT_TRUE(V.isObject());
  EXPECT_EQ(V.find("name")->String, "hello \"world\"\n");
  EXPECT_DOUBLE_EQ(V.find("pi")->Number, 3.25);
  EXPECT_TRUE(V.find("flag")->Bool);
  ASSERT_TRUE(V.find("items")->isArray());
  ASSERT_EQ(V.find("items")->Array.size(), 3u);
  EXPECT_DOUBLE_EQ(V.find("items")->Array[2].Number, 3.0);
  EXPECT_TRUE(V.find("empty")->isObject());
  EXPECT_EQ(V.find("missing"), nullptr);
}

TEST(Json, ParserRejectsMalformedInput) {
  json::Value V;
  EXPECT_FALSE(json::parse("", V));
  EXPECT_FALSE(json::parse("{", V));
  EXPECT_FALSE(json::parse("{\"a\":}", V));
  EXPECT_FALSE(json::parse("[1,2,]", V));
  EXPECT_FALSE(json::parse("{} trailing", V));
  EXPECT_FALSE(json::parse("\"unterminated", V));
}

TEST(Json, EscapeCoversControlAndQuote) {
  EXPECT_EQ(json::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json::escape(std::string(1, '\x01')), "\\u0001");
}

namespace {

std::string parsedString(const std::string &Doc) {
  json::Value V;
  std::string Err;
  EXPECT_TRUE(json::parse(Doc, V, &Err)) << Doc << ": " << Err;
  return V.String;
}

} // namespace

TEST(Json, UnicodeEscapeDecodesToUtf8) {
  EXPECT_EQ(parsedString("\"\\u0041\""), "A");
  EXPECT_EQ(parsedString("\"\\u00e9\""), "\xc3\xa9");      // é, 2-byte
  EXPECT_EQ(parsedString("\"\\u20AC\""), "\xe2\x82\xac");  // €, 3-byte
  // Surrogate pair: U+1F600 (😀), 4-byte UTF-8.
  EXPECT_EQ(parsedString("\"\\uD83D\\uDE00\""), "\xf0\x9f\x98\x80");
  EXPECT_EQ(parsedString("\"a\\u0042c\""), "aBc");
  // An escaped escape must not start a \u sequence.
  EXPECT_EQ(parsedString("\"\\\\u0041\""), "\\u0041");
}

TEST(Json, UnicodeEscapeRejectsInvalid) {
  json::Value V;
  EXPECT_FALSE(json::parse("\"\\u12g4\"", V));  // non-hex digit
  EXPECT_FALSE(json::parse("\"\\u+123\"", V));  // strtoul-style sign
  EXPECT_FALSE(json::parse("\"\\u 123\"", V));  // strtoul-style space
  EXPECT_FALSE(json::parse("\"\\u12\"", V));    // truncated
  EXPECT_FALSE(json::parse("\"\\uDC00\"", V));  // lone low surrogate
  EXPECT_FALSE(json::parse("\"\\uD800\"", V));  // unpaired high surrogate
  EXPECT_FALSE(json::parse("\"\\uD800\\u0041\"", V)); // high + non-low
  EXPECT_FALSE(json::parse("\"\\uD800\\uD800\"", V)); // high + high
}

//===----------------------------------------------------------------------===//
// Latency histograms (always compiled)
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(histBucketOf(0), 0u);
  EXPECT_EQ(histBucketOf(1), 1u);
  EXPECT_EQ(histBucketOf(2), 2u);
  EXPECT_EQ(histBucketOf(3), 2u);
  EXPECT_EQ(histBucketOf(4), 3u);
  // Every bucket k >= 1 holds exactly [2^(k-1), 2^k - 1].
  for (unsigned K = 1; K < HistogramBuckets - 1; ++K) {
    const std::uint64_t Lo = std::uint64_t{1} << (K - 1);
    const std::uint64_t Hi = (std::uint64_t{1} << K) - 1;
    EXPECT_EQ(histBucketOf(Lo), K);
    EXPECT_EQ(histBucketOf(Hi), K);
    EXPECT_EQ(histBucketLoNs(K), Lo);
    EXPECT_EQ(histBucketHiNs(K), Hi);
    EXPECT_EQ(histBucketOf(Hi + 1), K + 1);
  }
  // Huge durations saturate into the open-ended last bucket.
  EXPECT_EQ(histBucketOf(~std::uint64_t{0}), HistogramBuckets - 1);
  EXPECT_EQ(histBucketHiNs(HistogramBuckets - 1), ~std::uint64_t{0});
}

TEST(Histogram, MergeAndQuantiles) {
  LatencyHistogram H(2);
  // Lane 0: 90 fast waits; lane 1: 10 slow ones.
  for (unsigned I = 0; I < 90; ++I)
    H.record(0, Hist::WorkerWaitNs, 100);
  for (unsigned I = 0; I < 10; ++I)
    H.record(1, Hist::WorkerWaitNs, 1000000);
  EXPECT_EQ(H.laneData(0, Hist::WorkerWaitNs).count(), 90u);
  EXPECT_EQ(H.laneData(1, Hist::WorkerWaitNs).count(), 10u);
  EXPECT_TRUE(H.data(Hist::SchedStallNs).empty());

  const HistogramData D = H.data(Hist::WorkerWaitNs);
  EXPECT_EQ(D.count(), 100u);
  EXPECT_EQ(D.SumNs, 90u * 100 + 10u * 1000000);
  EXPECT_EQ(D.MaxNs, 1000000u);
  // p50 lands in the fast bucket (conservative upper edge), p99 in the
  // slow one, and every quantile is capped at the observed max.
  EXPECT_LT(D.quantileNs(0.50), 1000u);
  EXPECT_GE(D.quantileNs(0.50), 100u);
  EXPECT_EQ(D.quantileNs(0.99), 1000000u);
  EXPECT_EQ(D.quantileNs(1.0), 1000000u);

  // operator+= matches the merged view.
  HistogramData M = H.laneData(0, Hist::WorkerWaitNs);
  M += H.laneData(1, Hist::WorkerWaitNs);
  EXPECT_EQ(M.count(), D.count());
  EXPECT_EQ(M.SumNs, D.SumNs);
  EXPECT_EQ(M.MaxNs, D.MaxNs);

  EXPECT_EQ(HistogramData().quantileNs(0.5), 0u);
}

TEST(Histogram, InterpolatedPercentiles) {
  // Empty histogram: every percentile is 0.
  EXPECT_EQ(HistogramData().percentileNs(0.5), 0u);
  EXPECT_EQ(HistogramData().percentileNs(0.99), 0u);

  // A single observation lands exactly on itself regardless of Q: with one
  // count in the bucket the interpolation spans [lo, min(hi, MaxNs)] and
  // the max cap pins hi to the true value.
  HistogramData One;
  One.Buckets[histBucketOf(700)] = 1;
  One.SumNs = 700;
  One.MaxNs = 700;
  EXPECT_EQ(One.percentileNs(0.01), 700u);
  EXPECT_EQ(One.percentileNs(1.0), 700u);

  // Bucket-0 boundary: zeros interpolate to zero.
  HistogramData Zeros;
  Zeros.Buckets[0] = 10;
  EXPECT_EQ(Zeros.percentileNs(0.5), 0u);
  EXPECT_EQ(Zeros.percentileNs(1.0), 0u);

  // 90 observations in bucket [64, 127], 10 in [512, 1023] with max 600:
  // p50 interpolates inside the fast bucket (between its edges, unlike
  // quantileNs which pins to the upper edge), p99 inside the slow bucket
  // capped by the true max.
  HistogramData D;
  D.Buckets[histBucketOf(100)] = 90;
  D.Buckets[histBucketOf(600)] = 10;
  D.MaxNs = 600;
  const std::uint64_t P50 = D.percentileNs(0.50);
  EXPECT_GE(P50, histBucketLoNs(histBucketOf(100)));
  EXPECT_LE(P50, histBucketHiNs(histBucketOf(100)));
  const std::uint64_t P99 = D.percentileNs(0.99);
  EXPECT_GE(P99, histBucketLoNs(histBucketOf(600)));
  EXPECT_LE(P99, 600u);
  EXPECT_EQ(D.percentileNs(1.0), 600u);
  // Percentiles are monotone in Q.
  EXPECT_LE(D.percentileNs(0.25), P50);
  EXPECT_LE(P50, D.percentileNs(0.95));

  // The open-ended top bucket is capped at the recorded max, not 2^63.
  HistogramData Top;
  Top.Buckets[HistogramBuckets - 1] = 4;
  Top.MaxNs = ~std::uint64_t{0} - 3;
  EXPECT_LE(Top.percentileNs(0.5), Top.MaxNs);
  EXPECT_GE(Top.percentileNs(0.5), histBucketLoNs(HistogramBuckets - 1));
}

TEST(Histogram, ConcurrentRecordMergesExactly) {
  constexpr unsigned Lanes = 4;
  constexpr unsigned PerLane = 20000;
  LatencyHistogram H(Lanes);
  runThreads(Lanes, [&H](unsigned Lane) {
    for (unsigned I = 0; I < PerLane; ++I)
      H.record(Lane, Hist::EpochNs, (Lane + 1) * 1000 + I % 7);
  });
  const HistogramData D = H.data(Hist::EpochNs);
  EXPECT_EQ(D.count(), std::uint64_t{Lanes} * PerLane);
  std::uint64_t Sum = 0;
  for (unsigned Lane = 0; Lane < Lanes; ++Lane)
    for (unsigned I = 0; I < PerLane; ++I)
      Sum += (Lane + 1) * 1000 + I % 7;
  EXPECT_EQ(D.SumNs, Sum);
  EXPECT_EQ(D.MaxNs, Lanes * 1000 + 6u);
}

//===----------------------------------------------------------------------===//
// Counter vocabulary (always compiled)
//===----------------------------------------------------------------------===//

TEST(Counters, TotalsArithmetic) {
  CounterTotals A;
  EXPECT_TRUE(A.allZero());
  A.add(Counter::TasksExecuted, 5);
  A.set(Counter::Misspeculations, 2);
  EXPECT_FALSE(A.allZero());
  CounterTotals B;
  B.add(Counter::TasksExecuted, 7);
  B += A;
  EXPECT_EQ(B.get(Counter::TasksExecuted), 12u);
  EXPECT_EQ(B.get(Counter::Misspeculations), 2u);
}

TEST(Counters, NamesAreUniqueSnakeCase) {
  std::vector<std::string> Seen;
  for (unsigned I = 0; I < NumCounters; ++I) {
    const std::string N = counterName(static_cast<Counter>(I));
    EXPECT_FALSE(N.empty());
    for (char C : N)
      EXPECT_TRUE((C >= 'a' && C <= 'z') || C == '_' || (C >= '0' && C <= '9'))
          << N;
    EXPECT_EQ(std::count(Seen.begin(), Seen.end(), N), 0) << N;
    Seen.push_back(N);
  }
}

TEST(Telemetry, CompiledInMatchesMacro) {
  EXPECT_EQ(compiledIn(), CIP_TELEMETRY != 0);
}

#if CIP_TELEMETRY

//===----------------------------------------------------------------------===//
// Trace ring
//===----------------------------------------------------------------------===//

namespace {

TraceEvent stamped(std::uint64_t T) {
  TraceEvent E;
  E.TimeNs = T;
  E.Kind = EventKind::Task;
  E.Phase = EventPhase::Instant;
  E.Arg0 = T;
  return E;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

} // namespace

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(1).capacity(), 1u);
}

TEST(TraceRing, WrapKeepsNewestAndCountsDropped) {
  TraceRing R(8);
  for (std::uint64_t I = 0; I < 20; ++I)
    R.emit(stamped(I));
  EXPECT_EQ(R.written(), 20u);
  EXPECT_EQ(R.dropped(), 12u);
  const std::vector<TraceEvent> S = R.snapshot();
  ASSERT_EQ(S.size(), 8u);
  // Oldest-first, holding exactly the most recent window 12..19.
  for (std::uint64_t I = 0; I < 8; ++I)
    EXPECT_EQ(S[I].TimeNs, 12 + I);
}

TEST(TraceRing, NoDropsBelowCapacity) {
  TraceRing R(16);
  for (std::uint64_t I = 0; I < 10; ++I)
    R.emit(stamped(I));
  EXPECT_EQ(R.dropped(), 0u);
  EXPECT_EQ(R.snapshot().size(), 10u);
}

//===----------------------------------------------------------------------===//
// Counter table and region telemetry
//===----------------------------------------------------------------------===//

TEST(CounterTable, LanesAggregateIndependently) {
  CounterTable T(3);
  T.add(0, Counter::TasksExecuted, 2);
  T.add(1, Counter::TasksExecuted, 3);
  T.add(2, Counter::ShadowConflicts);
  EXPECT_EQ(T.laneTotals(0).get(Counter::TasksExecuted), 2u);
  EXPECT_EQ(T.laneTotals(1).get(Counter::TasksExecuted), 3u);
  EXPECT_EQ(T.totals().get(Counter::TasksExecuted), 5u);
  EXPECT_EQ(T.totals().get(Counter::ShadowConflicts), 1u);
}

TEST(RegionTelemetry, MultiThreadEventsStayOrderedPerLane) {
  const unsigned Lanes = 4;
  const unsigned PerLane = 100;
  const std::string Prefix = ::testing::TempDir() + "cip_tel_order";
  RegionTelemetry Tel("unit", Lanes, Prefix.c_str());
  ASSERT_TRUE(Tel.tracing());
  runThreads(Lanes, [&](unsigned Lane) {
    for (unsigned I = 0; I < PerLane; ++I) {
      Tel.begin(Lane, EventKind::Task, I, Lane);
      Tel.end(Lane, EventKind::Task, I, Lane);
    }
  });
  const std::vector<LaneSnapshot> Snap = Tel.snapshotLanes();
  ASSERT_EQ(Snap.size(), Lanes);
  for (unsigned Lane = 0; Lane < Lanes; ++Lane) {
    ASSERT_EQ(Snap[Lane].Events.size(), 2u * PerLane) << "lane " << Lane;
    EXPECT_EQ(Snap[Lane].Dropped, 0u);
    // Timestamps are non-decreasing and events carry the lane's own tag —
    // lanes are single-writer, so no cross-thread interleaving can occur.
    for (std::size_t I = 0; I < Snap[Lane].Events.size(); ++I) {
      if (I) {
        EXPECT_GE(Snap[Lane].Events[I].TimeNs, Snap[Lane].Events[I - 1].TimeNs);
      }
      EXPECT_EQ(Snap[Lane].Events[I].Arg1, Lane);
      EXPECT_EQ(Snap[Lane].Events[I].Arg0, (I / 2) % PerLane);
    }
  }
}

//===----------------------------------------------------------------------===//
// Chrome trace export golden checks
//===----------------------------------------------------------------------===//

TEST(ChromeTrace, ExportParsesWithOneLanePerThread) {
  const std::string Prefix = ::testing::TempDir() + "cip_tel_golden";
  std::string Path;
  {
    RegionTelemetry Tel("golden", 3, Prefix.c_str());
    Tel.nameLane(0, "worker 0");
    Tel.nameLane(1, "worker 1");
    Tel.nameLane(2, "scheduler");
    Tel.begin(2, EventKind::Invocation, 7);
    Tel.instant(2, EventKind::Dispatch, 7, 3);
    Tel.flowBegin(2, 99);
    Tel.begin(0, EventKind::Task, 7, 3);
    Tel.flowEnd(0, 99);
    Tel.end(0, EventKind::Task);
    Tel.end(2, EventKind::Invocation, 7);
    Path = Tel.finish();
  }
  ASSERT_FALSE(Path.empty());

  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(slurp(Path), V, &Err)) << Err;
  ASSERT_TRUE(V.isObject());
  EXPECT_EQ(V.find("displayTimeUnit")->String, "ms");
  const json::Value *Events = V.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());

  std::vector<std::string> LaneNames;
  unsigned Begins = 0, Ends = 0, Instants = 0, FlowS = 0, FlowF = 0;
  for (const json::Value &E : Events->Array) {
    const std::string Ph = E.find("ph")->String;
    if (Ph == "M") {
      if (E.find("name")->String == "thread_name")
        LaneNames.push_back(E.find("args")->find("name")->String);
      continue;
    }
    // Every payload event carries the per-lane tid that metadata named.
    ASSERT_NE(E.find("tid"), nullptr);
    ASSERT_NE(E.find("ts"), nullptr);
    if (Ph == "B")
      ++Begins;
    else if (Ph == "E")
      ++Ends;
    else if (Ph == "i")
      ++Instants;
    else if (Ph == "s")
      ++FlowS;
    else if (Ph == "f")
      ++FlowF;
  }
  EXPECT_EQ(LaneNames,
            (std::vector<std::string>{"worker 0", "worker 1", "scheduler"}));
  EXPECT_EQ(Begins, 2u);
  EXPECT_EQ(Ends, 2u);
  EXPECT_EQ(Instants, 1u);
  EXPECT_EQ(FlowS, 1u);
  EXPECT_EQ(FlowF, 1u);
}

TEST(ChromeTrace, ReportsDroppedEvents) {
  const std::string Prefix = ::testing::TempDir() + "cip_tel_drop";
  LaneSnapshot Lane;
  Lane.Name = "worker 0";
  Lane.Dropped = 5;
  const std::string Trace = renderChromeTrace("unit", {Lane}, 0);
  json::Value V;
  ASSERT_TRUE(json::parse(Trace, V));
  bool SawDropNote = false;
  for (const json::Value &E : V.find("traceEvents")->Array)
    if (E.find("name") && E.find("name")->String == "events_dropped")
      SawDropNote = true;
  EXPECT_TRUE(SawDropNote);
  (void)Prefix;
}

//===----------------------------------------------------------------------===//
// Conflict heatmap and run reports
//===----------------------------------------------------------------------===//

TEST(ConflictHeatmap, CountsPairsAndAddressBuckets) {
  ConflictHeatmap Heat(3);
  Heat.record(0, 1, 0x40);
  Heat.record(0, 1, 0x40);
  Heat.record(2, 1, 0x41);
  EXPECT_EQ(Heat.total(), 3u);

  const std::vector<HeatmapPair> Pairs = Heat.pairs();
  ASSERT_EQ(Pairs.size(), 2u);
  EXPECT_EQ(Pairs[0].DepTid, 0u); // hottest first
  EXPECT_EQ(Pairs[0].Tid, 1u);
  EXPECT_EQ(Pairs[0].Count, 2u);
  EXPECT_EQ(Pairs[1].DepTid, 2u);
  EXPECT_EQ(Pairs[1].Count, 1u);

  const auto Buckets = Heat.hottestAddrBuckets(8);
  ASSERT_EQ(Buckets.size(), 2u);
  EXPECT_EQ(Buckets[0].Count, 2u);
  EXPECT_EQ(Buckets[0].ExampleAddr, 0x40u);
  EXPECT_EQ(Buckets[1].ExampleAddr, 0x41u);
  EXPECT_EQ(Heat.hottestAddrBuckets(1).size(), 1u);
}

TEST(RunReport, RendersAndParsesFullSchema) {
  RegionTelemetry Tel("unit", 2);
  Tel.add(0, Counter::TasksExecuted, 5);
  Tel.recordHist(0, Hist::WorkerWaitNs, 100);
  Tel.recordHist(1, Hist::WorkerWaitNs, 5000);
  Tel.recordConflict(0, 1, 0x99);
  Tel.recordConflict(0, 1, 0x99);
  AbortRecord A;
  A.Cause = AbortCause::SignatureOverlap;
  A.EarlierEpoch = 3;
  A.LaterEpoch = 5;
  A.LaterTid = 1;
  A.ExactConfirmed = true;
  A.Scheme = "range";
  A.TasksUnwound = 17;
  Tel.recordAbort(A);

  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(renderRunReport(Tel, 42), V, &Err)) << Err;
  ASSERT_TRUE(V.isObject());
  EXPECT_DOUBLE_EQ(V.find("schema_version")->Number, 1.0);
  EXPECT_EQ(V.find("region")->String, "unit");
  EXPECT_DOUBLE_EQ(V.find("seq")->Number, 42.0);
  EXPECT_DOUBLE_EQ(V.find("lanes")->Number, 2.0);
  EXPECT_EQ(V.find("lane_names")->Array.size(), 2u);

  const json::Value *Counters = V.find("counters");
  ASSERT_TRUE(Counters && Counters->isObject());
  EXPECT_DOUBLE_EQ(Counters->find("tasks_executed")->Number, 5.0);

  // Every histogram kind is present; the recorded one has monotonically
  // increasing bucket edges whose counts sum to the total.
  const json::Value *Hists = V.find("histograms");
  ASSERT_TRUE(Hists && Hists->isObject());
  for (unsigned I = 0; I < NumHistograms; ++I)
    EXPECT_NE(Hists->find(histName(static_cast<Hist>(I))), nullptr);
  const json::Value *Wait = Hists->find("worker_wait_ns");
  ASSERT_NE(Wait, nullptr);
  EXPECT_DOUBLE_EQ(Wait->find("count")->Number, 2.0);
  EXPECT_DOUBLE_EQ(Wait->find("sum_ns")->Number, 5100.0);
  EXPECT_DOUBLE_EQ(Wait->find("max_ns")->Number, 5000.0);
  double PrevEdge = -1.0, BucketSum = 0.0;
  for (const json::Value &B : Wait->find("buckets")->Array) {
    EXPECT_GT(B.find("le_ns")->Number, PrevEdge);
    PrevEdge = B.find("le_ns")->Number;
    BucketSum += B.find("count")->Number;
  }
  EXPECT_DOUBLE_EQ(BucketSum, 2.0);

  const json::Value *Heat = V.find("heatmap");
  ASSERT_TRUE(Heat && Heat->isObject());
  EXPECT_DOUBLE_EQ(Heat->find("total_conflicts")->Number, 2.0);
  ASSERT_EQ(Heat->find("pairs")->Array.size(), 1u);
  EXPECT_DOUBLE_EQ(Heat->find("pairs")->Array[0].find("count")->Number, 2.0);
  EXPECT_EQ(Heat->find("top_addr_buckets")->Array.size(), 1u);

  ASSERT_EQ(V.find("aborts")->Array.size(), 1u);
  const json::Value &Abort = V.find("aborts")->Array[0];
  EXPECT_EQ(Abort.find("cause")->String, "signature_overlap");
  EXPECT_DOUBLE_EQ(Abort.find("earlier_epoch")->Number, 3.0);
  EXPECT_DOUBLE_EQ(Abort.find("later_epoch")->Number, 5.0);
  EXPECT_TRUE(Abort.find("exact_confirmed")->Bool);
  EXPECT_EQ(Abort.find("scheme")->String, "range");
  EXPECT_DOUBLE_EQ(Abort.find("tasks_unwound")->Number, 17.0);
}

TEST(RunReport, FinishWritesReportFile) {
  const std::string Prefix = ::testing::TempDir() + "cip_tel_report";
  std::string Path;
  {
    RegionTelemetry Tel("reportunit", 1, /*ForceTracePrefix=*/nullptr,
                        Prefix.c_str());
    EXPECT_TRUE(Tel.reporting());
    Tel.add(0, Counter::EpochsEntered, 3);
    Tel.finish();
    Path = Tel.reportPath();
  }
  ASSERT_FALSE(Path.empty());
  EXPECT_NE(Path.find("reportunit"), std::string::npos);
  EXPECT_NE(Path.find(".report.json"), std::string::npos);
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(slurp(Path), V, &Err)) << Err;
  EXPECT_EQ(V.find("region")->String, "reportunit");
  EXPECT_DOUBLE_EQ(V.find("counters")->find("epochs_entered")->Number, 3.0);
}

//===----------------------------------------------------------------------===//
// Counter aggregation agrees with the legacy engine statistics
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic DOMORE nest with genuine cross-invocation conflicts: each
/// iteration touches address (Inv + It) % Space, so consecutive invocations
/// collide on most addresses.
domore::LoopNest conflictNest(std::uint32_t NumInv, std::uint32_t IterPerInv,
                              std::uint64_t Space,
                              std::vector<std::uint64_t> &Sink) {
  domore::LoopNest N;
  N.NumInvocations = NumInv;
  N.AddressSpaceSize = Space;
  N.BeginInvocation = [IterPerInv](std::uint32_t) {
    return static_cast<std::size_t>(IterPerInv);
  };
  N.ComputeAddr = [Space](std::uint32_t Inv, std::size_t It,
                          std::vector<std::uint64_t> &Addrs) {
    Addrs.push_back((Inv + It) % Space);
  };
  N.Work = [&Sink, Space](std::uint32_t Inv, std::size_t It) {
    Sink[(Inv + It) % Space] += Inv + It;
  };
  return N;
}

} // namespace

TEST(CounterAggregation, DomoreCountersMatchLegacyStats) {
  std::vector<std::uint64_t> Sink(8, 0);
  const domore::LoopNest Nest = conflictNest(10, 16, 8, Sink);
  domore::DomoreConfig Cfg;
  Cfg.NumWorkers = 3;
  const domore::DomoreStats Stats = domore::runDomore(Nest, Cfg);

  EXPECT_EQ(Stats.Telemetry.get(Counter::IterationsDispatched),
            Stats.Iterations);
  EXPECT_EQ(Stats.Telemetry.get(Counter::TasksExecuted), Stats.Iterations);
  EXPECT_EQ(Stats.Telemetry.get(Counter::ShadowConflicts),
            Stats.SyncConditions);
  EXPECT_EQ(Stats.Telemetry.get(Counter::PrologueWaits), Stats.PrologueWaits);
  EXPECT_GT(Stats.Telemetry.get(Counter::SchedulerBusyNs), 0u);
  EXPECT_GT(Stats.SyncConditions, 0u);
}

TEST(CounterAggregation, DomoreDuplicatedCountersMatchLegacyStats) {
  std::vector<std::uint64_t> Sink(8, 0);
  const domore::LoopNest Nest = conflictNest(10, 16, 8, Sink);
  domore::DomoreConfig Cfg;
  Cfg.NumWorkers = 3;
  const domore::DomoreStats Stats = domore::runDomoreDuplicated(Nest, Cfg);

  EXPECT_EQ(Stats.Telemetry.get(Counter::TasksExecuted), Stats.Iterations);
  EXPECT_EQ(Stats.Telemetry.get(Counter::ShadowConflicts),
            Stats.SyncConditions);
}

TEST(CounterAggregation, SpecCrossCountersMatchLegacyStats) {
  std::vector<std::uint64_t> Cells(64, 0);
  speccross::CheckpointRegistry Reg;
  Reg.registerBuffer(Cells);
  speccross::SpecRegion Region;
  Region.NumEpochs = 20;
  Region.NumTasks = [](std::uint32_t) { return std::size_t{8}; };
  Region.RunTask = [&Cells](std::uint32_t E, std::size_t T) {
    Cells[(E * 8 + T) % Cells.size()] += E + T;
  };
  Region.TaskAddresses = [&Cells](std::uint32_t E, std::size_t T,
                                  std::vector<std::uint64_t> &Addrs) {
    Addrs.push_back((E * 8 + T) % Cells.size());
  };
  Region.Checkpoints = &Reg;

  speccross::SpecConfig Cfg;
  Cfg.NumWorkers = 2;
  Cfg.CheckpointIntervalEpochs = 5;
  const speccross::SpecStats Stats = speccross::runSpecCross(Region, Cfg);

  EXPECT_EQ(Stats.Telemetry.get(Counter::CheckRequests), Stats.CheckRequests);
  EXPECT_EQ(Stats.Telemetry.get(Counter::SignatureComparisons),
            Stats.SignatureComparisons);
  EXPECT_EQ(Stats.Telemetry.get(Counter::Misspeculations),
            Stats.Misspeculations);
  EXPECT_EQ(Stats.Telemetry.get(Counter::CheckpointsTaken),
            Stats.CheckpointsTaken);
  EXPECT_EQ(Stats.Telemetry.get(Counter::EpochsReexecuted),
            Stats.ReexecutedEpochs);
  EXPECT_EQ(Stats.Misspeculations, 0u);
  EXPECT_EQ(Stats.Telemetry.get(Counter::TasksExecuted), Stats.Tasks);
  EXPECT_GT(Stats.Telemetry.get(Counter::CheckpointBytes), 0u);
}

TEST(CounterAggregation, SpecCrossMisspeculationPathIsCounted) {
  std::vector<std::uint64_t> Cells(64, 0);
  speccross::CheckpointRegistry Reg;
  Reg.registerBuffer(Cells);
  speccross::SpecRegion Region;
  Region.NumEpochs = 12;
  Region.NumTasks = [](std::uint32_t) { return std::size_t{6}; };
  Region.RunTask = [&Cells](std::uint32_t E, std::size_t T) {
    Cells[(E * 6 + T) % Cells.size()] += 1;
  };
  Region.TaskAddresses = [&Cells](std::uint32_t E, std::size_t T,
                                  std::vector<std::uint64_t> &Addrs) {
    Addrs.push_back((E * 6 + T) % Cells.size());
  };
  Region.Checkpoints = &Reg;

  speccross::SpecConfig Cfg;
  Cfg.NumWorkers = 2;
  Cfg.CheckpointIntervalEpochs = 4;
  Cfg.InjectMisspecAtEpoch = 5;
  const speccross::SpecStats Stats = speccross::runSpecCross(Region, Cfg);

  EXPECT_EQ(Stats.Misspeculations, 1u);
  EXPECT_EQ(Stats.Telemetry.get(Counter::Misspeculations), 1u);
  EXPECT_EQ(Stats.Telemetry.get(Counter::EpochsReexecuted),
            Stats.ReexecutedEpochs);
  EXPECT_GT(Stats.Telemetry.get(Counter::RecoveryNs), 0u);
  EXPECT_GT(Stats.Telemetry.get(Counter::BarrierWaitNs), 0u);
}

#else // !CIP_TELEMETRY

TEST(TelemetryDisabled, ProbesCompileToNothing) {
  EXPECT_FALSE(compiledIn());
  RegionTelemetry Tel("unit", 4);
  Tel.add(0, Counter::TasksExecuted, 100);
  Tel.begin(0, EventKind::Task);
  Tel.end(0, EventKind::Task);
  Tel.recordHist(0, Hist::WorkerWaitNs, 100);
  Tel.recordConflict(0, 1, 0x40);
  Tel.recordAbort(AbortRecord{});
  EXPECT_FALSE(Tel.tracing());
  EXPECT_FALSE(Tel.reporting());
  EXPECT_TRUE(Tel.totals().allZero());
  EXPECT_TRUE(Tel.histTotals(Hist::WorkerWaitNs).empty());
  EXPECT_TRUE(Tel.heatmapPairs().empty());
  EXPECT_TRUE(Tel.aborts().empty());
  EXPECT_TRUE(Tel.finish().empty());
  EXPECT_TRUE(Tel.reportPath().empty());
}

TEST(TelemetryDisabled, EngineStatsCarryZeroCounters) {
  std::vector<std::uint64_t> Sink(8, 0);
  domore::LoopNest N;
  N.NumInvocations = 4;
  N.AddressSpaceSize = 8;
  N.BeginInvocation = [](std::uint32_t) { return std::size_t{8}; };
  N.ComputeAddr = [](std::uint32_t Inv, std::size_t It,
                     std::vector<std::uint64_t> &Addrs) {
    Addrs.push_back((Inv + It) % 8);
  };
  N.Work = [&Sink](std::uint32_t Inv, std::size_t It) {
    Sink[(Inv + It) % 8] += 1;
  };
  domore::DomoreConfig Cfg;
  Cfg.NumWorkers = 2;
  const domore::DomoreStats Stats = domore::runDomore(N, Cfg);
  EXPECT_GT(Stats.Iterations, 0u);
  EXPECT_TRUE(Stats.Telemetry.allZero());
}

#endif // CIP_TELEMETRY

//===- tests/PlanTests.cpp - Profile-guided planning tests ---------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
//
// The plan subsystem (DESIGN.md §13): render/parse round-trips, strict
// parsing (every field required, exact version), file and environment
// resolution including the exit-2 death contract, the dependence-distance
// estimator, and the end-to-end profile → plan → warm-start loop — a
// planned run must stay bit-identical to sequential execution while
// starting on the plan's technique.
//
//===----------------------------------------------------------------------===//

#include "harness/Adaptive.h"
#include "harness/Executor.h"
#include "memory/CheckpointSubstrate.h"
#include "policy/Plan.h"
#include "policy/Policy.h"
#include "telemetry/DependenceDistance.h"
#include "workloads/PhaseShift.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

using namespace cip;
using plan::RegionPlan;
using policy::Technique;

namespace {

/// Saves one environment variable on construction and restores it on
/// destruction (same idiom as PolicyTests/ServerTests), so tests can
/// mutate CIP_PROFILE/CIP_PLAN/CIP_POLICY* freely.
class EnvGuard {
public:
  explicit EnvGuard(const char *Name) : Name(Name) {
    if (const char *V = std::getenv(Name)) {
      Saved = V;
      Had = true;
    }
  }
  ~EnvGuard() {
    if (Had)
      setenv(Name, Saved.c_str(), 1);
    else
      unsetenv(Name);
  }

private:
  const char *Name;
  std::string Saved;
  bool Had = false;
};

/// A fresh temporary directory, removed (with its plan files) on teardown.
class TempDir {
public:
  TempDir() {
    char Tmpl[] = "/tmp/cip-plan-test-XXXXXX";
    char *Got = mkdtemp(Tmpl);
    EXPECT_NE(Got, nullptr);
    if (Got)
      Dir = Got;
  }
  ~TempDir() {
    if (Dir.empty())
      return;
    std::string Cmd = "rm -rf '" + Dir + "'";
    [[maybe_unused]] int Rc = std::system(Cmd.c_str());
  }
  const std::string &path() const { return Dir; }

private:
  std::string Dir;
};

/// A plan with a distinctive value in every field, for round-trip checks.
RegionPlan samplePlan() {
  RegionPlan P;
  P.Region = "sample";
  P.Threads = 3;
  P.CalibrationEpochs = 10;
  P.Initial = Technique::DomoreDup;
  P.HoldWindows = 4;
  for (unsigned T = 0; T < policy::NumTechniques; ++T) {
    plan::TechniqueCalibration &C = P.Techniques[T];
    C.Measured = T != 0;
    C.SecondsPerEpoch = 0.001 * (T + 1);
    C.AbortRate = 0.125 * T;
    C.ConflictDensity = 0.25 * T;
    C.SchedulerRatioPercent = 10.0 * T;
  }
  P.SequentialSecondsPerEpoch = 0.005;
  P.PredictedSecondsPerEpoch = 0.003;
  P.MinDependenceDistance = 62;
  P.MinEpochDistance = 1;
  P.ConflictingAddresses = 128;
  P.SpecDistance = 60;
  P.MaxBatchHint = 8;
  P.ShadowShards = 4;
  P.SchedThreads = 2;
  P.CkptSubstrate = "pagedirty";
  return P;
}

std::uint64_t sequentialChecksum(workloads::Workload &W) {
  W.reset();
  const std::uint64_t Sum = harness::runSequential(W).Checksum;
  W.reset();
  return Sum;
}

void writeFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(std::fwrite(Text.data(), 1, Text.size(), F), Text.size());
  ASSERT_EQ(std::fclose(F), 0);
}

} // namespace

//===----------------------------------------------------------------------===//
// Render / parse round-trip and strictness
//===----------------------------------------------------------------------===//

TEST(PlanFormat, RoundTripPreservesEveryField) {
  const RegionPlan P = samplePlan();
  const std::string Doc = plan::renderPlan(P);
  EXPECT_EQ(Doc.back(), '\n');

  RegionPlan Q;
  ASSERT_EQ(plan::parsePlan(Doc, Q), nullptr) << Doc;
  EXPECT_EQ(Q.Version, P.Version);
  EXPECT_EQ(Q.Region, P.Region);
  EXPECT_EQ(Q.Threads, P.Threads);
  EXPECT_EQ(Q.CalibrationEpochs, P.CalibrationEpochs);
  EXPECT_EQ(Q.Initial, P.Initial);
  EXPECT_EQ(Q.HoldWindows, P.HoldWindows);
  for (unsigned T = 0; T < policy::NumTechniques; ++T) {
    EXPECT_EQ(Q.Techniques[T].Measured, P.Techniques[T].Measured) << T;
    EXPECT_DOUBLE_EQ(Q.Techniques[T].SecondsPerEpoch,
                     P.Techniques[T].SecondsPerEpoch) << T;
    EXPECT_DOUBLE_EQ(Q.Techniques[T].AbortRate, P.Techniques[T].AbortRate);
    EXPECT_DOUBLE_EQ(Q.Techniques[T].ConflictDensity,
                     P.Techniques[T].ConflictDensity) << T;
    EXPECT_DOUBLE_EQ(Q.Techniques[T].SchedulerRatioPercent,
                     P.Techniques[T].SchedulerRatioPercent) << T;
  }
  EXPECT_DOUBLE_EQ(Q.SequentialSecondsPerEpoch, P.SequentialSecondsPerEpoch);
  EXPECT_DOUBLE_EQ(Q.PredictedSecondsPerEpoch, P.PredictedSecondsPerEpoch);
  EXPECT_EQ(Q.MinDependenceDistance, P.MinDependenceDistance);
  EXPECT_EQ(Q.MinEpochDistance, P.MinEpochDistance);
  EXPECT_EQ(Q.ConflictingAddresses, P.ConflictingAddresses);
  EXPECT_EQ(Q.SpecDistance, P.SpecDistance);
  EXPECT_EQ(Q.MaxBatchHint, P.MaxBatchHint);
  EXPECT_EQ(Q.ShadowShards, P.ShadowShards);
  EXPECT_EQ(Q.SchedThreads, P.SchedThreads);
  EXPECT_EQ(Q.CkptSubstrate, P.CkptSubstrate);
}

TEST(PlanFormat, RejectsGarbageWithGrammar) {
  RegionPlan Out;
  for (const char *Bad : {"", "not json", "[]", "{}", "42",
                          "{\"plan_version\":\"3\"}"}) {
    const char *Err = plan::parsePlan(Bad, Out);
    ASSERT_NE(Err, nullptr) << "'" << Bad << "' parsed";
    EXPECT_NE(std::string(Err).find("plan_version 4"), std::string::npos);
  }
}

TEST(PlanFormat, RejectsUnknownCkptSubstrate) {
  // "" is the none-sentinel and must round-trip; any other value must name
  // a real substrate — a typo silently ignored would defeat the warm start.
  RegionPlan P = samplePlan();
  P.CkptSubstrate = "";
  RegionPlan Out;
  EXPECT_EQ(plan::parsePlan(plan::renderPlan(P), Out), nullptr);
  EXPECT_TRUE(Out.CkptSubstrate.empty());

  std::string Doc = plan::renderPlan(samplePlan());
  const std::size_t At = Doc.find("\"pagedirty\"");
  ASSERT_NE(At, std::string::npos);
  Doc.replace(At, std::strlen("\"pagedirty\""), "\"page-dirty\"");
  EXPECT_NE(plan::parsePlan(Doc, Out), nullptr);
}

TEST(PlanFormat, RejectsWrongVersionWithReprofileHint) {
  RegionPlan P = samplePlan();
  P.Version = plan::PlanVersion + 1;
  RegionPlan Out;
  const char *Err = plan::parsePlan(plan::renderPlan(P), Out);
  ASSERT_NE(Err, nullptr);
  EXPECT_NE(std::string(Err).find("re-profile"), std::string::npos);
}

TEST(PlanFormat, EveryFieldRequired) {
  const std::string Valid = plan::renderPlan(samplePlan());
  RegionPlan Out;
  ASSERT_EQ(plan::parsePlan(Valid, Out), nullptr);
  // Renaming any one key (top-level, technique row, or row member) must
  // fail the whole parse — loaders never guess at defaults.
  for (const char *Key :
       {"\"region\"", "\"threads\"", "\"calibration_epochs\"", "\"initial\"",
        "\"hold_windows\"", "\"techniques\"", "\"domore-dup\"",
        "\"measured\"", "\"sec_per_epoch\"", "\"sequential_sec_per_epoch\"",
        "\"predicted_sec_per_epoch\"", "\"min_dependence_distance\"",
        "\"min_epoch_distance\"", "\"conflicting_addresses\"",
        "\"spec_distance\"", "\"max_batch_hint\"", "\"shadow_shards\"",
        "\"sched_threads\"", "\"ckpt_substrate\""}) {
    std::string Doc = Valid;
    const std::size_t At = Doc.find(Key);
    ASSERT_NE(At, std::string::npos) << Key;
    Doc.replace(At, 2, "\"X");
    EXPECT_NE(plan::parsePlan(Doc, Out), nullptr) << Key;
  }
}

TEST(PlanFormat, RejectsUnknownInitialTechnique) {
  std::string Doc = plan::renderPlan(samplePlan());
  const std::size_t At = Doc.find("\"domore-dup\"");
  ASSERT_NE(At, std::string::npos);
  Doc.replace(At, std::strlen("\"domore-dup\""), "\"doall\"");
  RegionPlan Out;
  EXPECT_NE(plan::parsePlan(Doc, Out), nullptr);
}

//===----------------------------------------------------------------------===//
// Files
//===----------------------------------------------------------------------===//

TEST(PlanFiles, PathJoinsDirAndRegion) {
  EXPECT_EQ(plan::planPath("/tmp/x", "cg"), "/tmp/x/cg.plan.json");
  EXPECT_EQ(plan::planPath("/tmp/x/", "cg"), "/tmp/x/cg.plan.json");
}

TEST(PlanFiles, SaveThenLoadRoundTrips) {
  TempDir Dir;
  const RegionPlan P = samplePlan();
  std::string Path, Err;
  ASSERT_TRUE(plan::savePlan(P, Dir.path(), Path, Err)) << Err;
  EXPECT_EQ(Path, plan::planPath(Dir.path(), "sample"));

  RegionPlan Q;
  ASSERT_TRUE(plan::loadPlanFile(Path, Q, Err)) << Err;
  EXPECT_EQ(Q.Initial, P.Initial);
  EXPECT_EQ(Q.SpecDistance, P.SpecDistance);
}

TEST(PlanFiles, SaveIntoMissingDirectoryFails) {
  std::string Path, Err;
  EXPECT_FALSE(plan::savePlan(samplePlan(), "/nonexistent-cip-dir", Path,
                              Err));
  EXPECT_FALSE(Err.empty());
}

TEST(PlanFiles, LoadReportsParseErrorWithPath) {
  TempDir Dir;
  const std::string Path = plan::planPath(Dir.path(), "bad");
  writeFile(Path, "{\"plan_version\":3}\n");
  RegionPlan Out;
  std::string Err;
  EXPECT_FALSE(plan::loadPlanFile(Path, Out, Err));
  EXPECT_NE(Err.find(Path), std::string::npos);
  EXPECT_NE(Err.find("plan_version 4"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Environment knobs: cold paths and the exit-2 death contract
//===----------------------------------------------------------------------===//

TEST(PlanEnv, UnsetMeansNoProfilingAndColdStart) {
  EnvGuard G1("CIP_PROFILE"), G2("CIP_PLAN");
  unsetenv("CIP_PROFILE");
  unsetenv("CIP_PLAN");
  std::string Dir;
  EXPECT_FALSE(plan::profileDirFromEnv(Dir));
  RegionPlan Out;
  EXPECT_FALSE(plan::planFromEnv("relax", Out));
}

TEST(PlanEnv, DirectoryMissIsAColdStartNotAnError) {
  EnvGuard G("CIP_PLAN");
  TempDir Dir;
  setenv("CIP_PLAN", Dir.path().c_str(), 1);
  RegionPlan Out;
  EXPECT_FALSE(plan::planFromEnv("never-profiled", Out));
}

TEST(PlanEnv, DirectoryHitResolvesPerRegion) {
  EnvGuard G("CIP_PLAN");
  TempDir Dir;
  std::string Path, Err;
  ASSERT_TRUE(plan::savePlan(samplePlan(), Dir.path(), Path, Err)) << Err;
  setenv("CIP_PLAN", Dir.path().c_str(), 1);

  RegionPlan Out;
  std::string Resolved;
  const char *Source = nullptr;
  ASSERT_TRUE(plan::planFromEnv("sample", Out, &Resolved, &Source));
  EXPECT_EQ(Resolved, Path);
  EXPECT_STREQ(Source, "dir");
  EXPECT_EQ(Out.Initial, Technique::DomoreDup);
}

using PlanEnvDeathTest = ::testing::Test;

TEST(PlanEnvDeathTest, ProfileDirMustExist) {
  EnvGuard G("CIP_PROFILE");
  setenv("CIP_PROFILE", "/nonexistent-cip-profile-dir", 1);
  std::string Dir;
  EXPECT_EXIT(plan::profileDirFromEnv(Dir), testing::ExitedWithCode(2),
              "CIP_PROFILE");
}

TEST(PlanEnvDeathTest, ProfileDirMustBeADirectory) {
  EnvGuard G("CIP_PROFILE");
  TempDir Dir;
  const std::string File = Dir.path() + "/not-a-dir";
  writeFile(File, "x");
  setenv("CIP_PROFILE", File.c_str(), 1);
  std::string Out;
  EXPECT_EXIT(plan::profileDirFromEnv(Out), testing::ExitedWithCode(2),
              "existing directory");
}

TEST(PlanEnvDeathTest, NamedPlanFileMustExist) {
  EnvGuard G("CIP_PLAN");
  setenv("CIP_PLAN", "/nonexistent-cip.plan.json", 1);
  RegionPlan Out;
  EXPECT_EXIT(plan::planFromEnv("relax", Out), testing::ExitedWithCode(2),
              "CIP_PLAN");
}

TEST(PlanEnvDeathTest, GarbagePlanFileExitsWithGrammar) {
  EnvGuard G("CIP_PLAN");
  TempDir Dir;
  const std::string Path = plan::planPath(Dir.path(), "relax");
  writeFile(Path, "{\"not\": \"a plan\"}\n");
  setenv("CIP_PLAN", Path.c_str(), 1);
  RegionPlan Out;
  EXPECT_EXIT(plan::planFromEnv("relax", Out), testing::ExitedWithCode(2),
              "plan_version 4");
}

TEST(PlanEnvDeathTest, VersionMismatchExitsWithReprofileHint) {
  EnvGuard G("CIP_PLAN");
  TempDir Dir;
  RegionPlan P = samplePlan();
  P.Region = "relax";
  P.Version = plan::PlanVersion + 1;
  writeFile(plan::planPath(Dir.path(), "relax"), plan::renderPlan(P));
  setenv("CIP_PLAN", plan::planPath(Dir.path(), "relax").c_str(), 1);
  RegionPlan Out;
  EXPECT_EXIT(plan::planFromEnv("relax", Out), testing::ExitedWithCode(2),
              "re-profile");
}

//===----------------------------------------------------------------------===//
// Dependence-distance estimator
//===----------------------------------------------------------------------===//

TEST(DependenceDistance, ConflictFreeStaysUnthrottled) {
  telemetry::DependenceDistanceEstimator Est;
  // Distinct addresses per epoch: no cross-epoch pair shares state.
  Est.observe(0, 0, 100);
  Est.observe(0, 1, 101);
  Est.observe(1, 2, 200);
  Est.observe(1, 3, 201);
  EXPECT_TRUE(Est.conflictFree());
  EXPECT_EQ(Est.crossEpochConflicts(), 0u);
  EXPECT_EQ(Est.recommendedSpecDistance(4),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(DependenceDistance, MeasuresMinimumCrossEpochDistance) {
  telemetry::DependenceDistanceEstimator Est;
  Est.observe(0, 0, 7);  // epoch 0 writes addr 7 at task 0
  Est.observe(0, 1, 7);  // same-epoch re-touch: ignored (DOALL contract)
  Est.observe(1, 5, 7);  // epoch 1 task 5: distance 5 - 1 = 4 tasks
  Est.observe(3, 9, 7);  // epoch 3 task 9: distance 4 tasks, 2 epochs
  EXPECT_FALSE(Est.conflictFree());
  EXPECT_EQ(Est.minTaskDistance(), 4u);
  EXPECT_EQ(Est.minEpochDistance(), 1u);
  EXPECT_EQ(Est.crossEpochConflicts(), 2u);
  EXPECT_EQ(Est.conflictingAddresses(), 1u);
  // Two tasks of slack below the minimum: 4 - 2 = 2.
  EXPECT_EQ(Est.recommendedSpecDistance(2), 2u);
}

TEST(DependenceDistance, ThrottleFlooredAtOneTaskPerWorker) {
  telemetry::DependenceDistanceEstimator Est;
  Est.observe(0, 0, 1);
  Est.observe(1, 1, 1); // distance 1: tighter than the 2-task slack
  EXPECT_EQ(Est.minTaskDistance(), 1u);
  EXPECT_EQ(Est.recommendedSpecDistance(4), 4u);
}

//===----------------------------------------------------------------------===//
// Profiling end-to-end: calibrate, emit, stay bit-identical
//===----------------------------------------------------------------------===//

TEST(Profiling, EmitsPlanAndMatchesSequential) {
  workloads::PhaseShiftWorkload W(
      workloads::PhaseShiftParams::forScale(workloads::Scale::Test));
  const std::uint64_t Want = sequentialChecksum(W);

  policy::PolicyConfig Cfg;
  Cfg.Kind = policy::PolicyKind::Threshold;
  Cfg.WindowEpochs = 2;
  harness::AdaptiveRunOptions Opts;
  RegionPlan P;
  Opts.PlanOut = &P;
  harness::AdaptiveStats St;
  const harness::ExecResult R = harness::runAdaptive(W, 3, Cfg, &St, Opts);

  // Calibration windows execute real work — the run stays bit-identical.
  EXPECT_EQ(R.Checksum, Want);
  EXPECT_TRUE(St.Plan.Profiled);
  EXPECT_EQ(St.Plan.Source, "profile");
  EXPECT_EQ(P.Region, W.name());
  EXPECT_EQ(P.Threads, 3u);
  EXPECT_GT(P.CalibrationEpochs, 0u);
  EXPECT_GT(P.PredictedSecondsPerEpoch, 0.0);
  EXPECT_GT(P.SequentialSecondsPerEpoch, 0.0);
  // The initial pick is the cheapest measured technique.
  const plan::TechniqueCalibration &Best =
      P.Techniques[static_cast<unsigned>(P.Initial)];
  EXPECT_TRUE(Best.Measured);
  for (unsigned T = 0; T < policy::NumTechniques; ++T) {
    if (P.Techniques[T].Measured) {
      EXPECT_LE(Best.SecondsPerEpoch, P.Techniques[T].SecondsPerEpoch) << T;
    }
  }
  // Dependence profile consistency: conflicts and throttle go together.
  EXPECT_EQ(P.MinDependenceDistance == 0, P.ConflictingAddresses == 0);
  if (P.MinDependenceDistance > 0) {
    EXPECT_GT(P.SpecDistance, 0u);
  }
  // Substrate hint: present exactly when a speculative window checkpointed,
  // and always a parseable substrate name (never the auto placeholder).
  const bool SpecMeasured =
      P.Techniques[static_cast<unsigned>(Technique::SpecCross)].Measured;
  EXPECT_EQ(P.CkptSubstrate.empty(), !SpecMeasured);
  if (!P.CkptSubstrate.empty()) {
    memory::SubstrateKind K = memory::SubstrateKind::Auto;
    EXPECT_TRUE(memory::parseSubstrateName(P.CkptSubstrate.c_str(), K));
    EXPECT_NE(K, memory::SubstrateKind::Auto);
  }

  // Calibration windows are logged with their own reason, and the decision
  // log invariants hold across the calibration -> policy transition.
  ASSERT_FALSE(St.Decisions.empty());
  EXPECT_STREQ(St.Decisions.front().Reason, "calibrate");
  std::uint32_t Epochs = 0, Flagged = 0;
  for (const telemetry::PolicyDecisionRecord &D : St.Decisions) {
    Epochs += D.NumEpochs;
    Flagged += D.Switched ? 1 : 0;
  }
  EXPECT_EQ(Epochs, W.numEpochs());
  EXPECT_EQ(Flagged, St.Switches.size());
}

TEST(Profiling, EnvRoundTripWritesAndLoadsPlanFile) {
  EnvGuard G1("CIP_PROFILE"), G2("CIP_PLAN"), G3("CIP_POLICY");
  TempDir Dir;
  workloads::PhaseShiftWorkload W(
      workloads::PhaseShiftParams::forScale(workloads::Scale::Test));
  const std::uint64_t Want = sequentialChecksum(W);

  // CIP_PROFILE alone is enough to route through the adaptive harness.
  unsetenv("CIP_POLICY");
  unsetenv("CIP_PLAN");
  setenv("CIP_PROFILE", Dir.path().c_str(), 1);
  harness::ExecResult R;
  harness::AdaptiveStats St;
  ASSERT_TRUE(harness::runAdaptiveFromEnv(W, 3, R, &St));
  EXPECT_EQ(R.Checksum, Want);
  EXPECT_TRUE(St.Plan.Profiled);
  const std::string Path = plan::planPath(Dir.path(), W.name());
  EXPECT_EQ(St.Plan.Path, Path);

  RegionPlan P;
  std::string Err;
  ASSERT_TRUE(plan::loadPlanFile(Path, P, Err)) << Err;
  EXPECT_EQ(P.Region, W.name());

  // Warm-start from the named file, then from the directory.
  unsetenv("CIP_PROFILE");
  for (const char *Value : {Path.c_str(), Dir.path().c_str()}) {
    setenv("CIP_PLAN", Value, 1);
    W.reset();
    harness::AdaptiveStats Warm;
    harness::ExecResult RW;
    ASSERT_TRUE(harness::runAdaptiveFromEnv(W, 3, RW, &Warm)) << Value;
    EXPECT_EQ(RW.Checksum, Want) << Value;
    EXPECT_TRUE(Warm.Plan.Loaded) << Value;
    EXPECT_EQ(Warm.Plan.Path, Path) << Value;
  }
}

//===----------------------------------------------------------------------===//
// Warm-start semantics
//===----------------------------------------------------------------------===//

namespace {

/// Profiles \p W in memory and returns the emitted plan.
RegionPlan profileInMemory(workloads::Workload &W, policy::PolicyKind Kind) {
  policy::PolicyConfig Cfg;
  Cfg.Kind = Kind;
  Cfg.WindowEpochs = 2;
  Cfg.Seed = 7;
  harness::AdaptiveRunOptions Opts;
  RegionPlan P;
  Opts.PlanOut = &P;
  W.reset();
  harness::runAdaptive(W, 3, Cfg, nullptr, Opts);
  W.reset();
  return P;
}

harness::AdaptiveStats runWarm(workloads::Workload &W,
                               policy::PolicyKind Kind, const RegionPlan &P,
                               std::uint64_t &Checksum) {
  policy::PolicyConfig Cfg;
  Cfg.Kind = Kind;
  Cfg.WindowEpochs = 2;
  Cfg.Seed = 7;
  harness::AdaptiveRunOptions Opts;
  Opts.Plan = &P;
  Opts.PlanSource = "file";
  Opts.PlanPath = "(in-memory)";
  W.reset();
  harness::AdaptiveStats St;
  Checksum = harness::runAdaptive(W, 3, Cfg, &St, Opts).Checksum;
  W.reset();
  return St;
}

} // namespace

TEST(WarmStart, ThresholdStartsOnPlanInitialAndStaysCorrect) {
  workloads::PhaseShiftWorkload W(
      workloads::PhaseShiftParams::forScale(workloads::Scale::Test));
  const std::uint64_t Want = sequentialChecksum(W);
  const RegionPlan P = profileInMemory(W, policy::PolicyKind::Threshold);

  std::uint64_t Sum = 0;
  const harness::AdaptiveStats St =
      runWarm(W, policy::PolicyKind::Threshold, P, Sum);
  EXPECT_EQ(Sum, Want);
  EXPECT_TRUE(St.Plan.Loaded);
  ASSERT_FALSE(St.Decisions.empty());
  EXPECT_STREQ(St.Decisions.front().Technique,
               policy::techniqueName(P.Initial));
  EXPECT_STREQ(St.Decisions.front().Reason, "plan-warm");
}

TEST(WarmStart, BanditFirstWindowIsDeterministicallyPlanned) {
  workloads::PhaseShiftWorkload W(
      workloads::PhaseShiftParams::forScale(workloads::Scale::Test));
  const std::uint64_t Want = sequentialChecksum(W);
  const RegionPlan P = profileInMemory(W, policy::PolicyKind::Bandit);

  // Cold bandit: the first window is a round-robin exploration pull, not
  // the plan's pick.
  policy::PolicyConfig Cold;
  Cold.Kind = policy::PolicyKind::Bandit;
  Cold.WindowEpochs = 2;
  Cold.Seed = 7;
  W.reset();
  harness::AdaptiveStats ColdSt;
  const std::uint64_t ColdSum = harness::runAdaptive(W, 3, Cold, &ColdSt).Checksum;
  EXPECT_EQ(ColdSum, Want);
  ASSERT_FALSE(ColdSt.Decisions.empty());
  EXPECT_STRNE(ColdSt.Decisions.front().Reason, "plan-warm");

  // Warm bandit: the measured costs seed every arm, so the first window
  // deterministically exploits the plan's technique — run twice to pin it.
  for (int Rep = 0; Rep < 2; ++Rep) {
    std::uint64_t Sum = 0;
    const harness::AdaptiveStats St =
        runWarm(W, policy::PolicyKind::Bandit, P, Sum);
    EXPECT_EQ(Sum, Want);
    ASSERT_FALSE(St.Decisions.empty());
    EXPECT_STREQ(St.Decisions.front().Technique,
                 policy::techniqueName(P.Initial)) << Rep;
    EXPECT_STREQ(St.Decisions.front().Reason, "plan-warm") << Rep;
  }
}

TEST(WarmStart, PlannedChecksumEqualsUnplannedOnFactoryWorkloads) {
  for (const char *Name : {"phaseshift", "cg"}) {
    const auto W = workloads::makeWorkload(Name, workloads::Scale::Test);
    ASSERT_NE(W, nullptr) << Name;
    const std::uint64_t Want = sequentialChecksum(*W);
    const RegionPlan P = profileInMemory(*W, policy::PolicyKind::Threshold);
    for (policy::PolicyKind Kind :
         {policy::PolicyKind::Threshold, policy::PolicyKind::Bandit}) {
      std::uint64_t Sum = 0;
      runWarm(*W, Kind, P, Sum);
      EXPECT_EQ(Sum, Want)
          << Name << "/" << policy::policyKindName(Kind);
    }
  }
}

TEST(WarmStart, ForeignInitialStaysSound) {
  // A stale or foreign plan may name a technique the profile never measured
  // (or the region does not support — the engine drops an inapplicable
  // prior). Either way the warm-started run must stay bit-identical.
  const auto W = workloads::makeWorkload("phaseshift", workloads::Scale::Test);
  ASSERT_NE(W, nullptr);
  const std::uint64_t Want = sequentialChecksum(*W);
  RegionPlan P = profileInMemory(*W, policy::PolicyKind::Threshold);
  P.Initial = Technique::SpecCross;
  P.Techniques[static_cast<unsigned>(Technique::SpecCross)] = {};
  std::uint64_t Sum = 0;
  runWarm(*W, policy::PolicyKind::Threshold, P, Sum);
  EXPECT_EQ(Sum, Want);
}

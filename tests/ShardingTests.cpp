//===- tests/ShardingTests.cpp - Sharded shadow & batched checking -------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Equivalence tests for the two DESIGN.md §14 fast paths:
///
///  * the sharded shadow-memory scheduler must reproduce the serial
///    scheduler's sync conditions, ordering, and final memory exactly, for
///    every shard count, on both the dense and the hash substrate;
///  * SignatureLog::batchFirstOverlap must agree bit-for-bit with the
///    scalar firstOverlap on randomized signature sets for all three
///    schemes, and the engine's comparison accounting must be identical
///    with batching on and off.
///
/// Plus unit coverage for the generation-stamped O(1) DenseShadowMemory
/// clear, including its 32-bit wrap path.
///
//===----------------------------------------------------------------------===//

#include "domore/DomoreRuntime.h"
#include "domore/ShadowMemory.h"
#include "speccross/Checkpoint.h"
#include "speccross/Signature.h"
#include "speccross/SignatureLog.h"
#include "speccross/SpecCrossRuntime.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

using namespace cip;
using namespace cip::domore;

//===----------------------------------------------------------------------===//
// Generation-stamped lazy clear
//===----------------------------------------------------------------------===//

TEST(ShadowMemory, DenseLazyClearInvalidatesStaleGenerations) {
  DenseShadowMemory S(32);
  for (std::uint64_t A = 0; A < 32; ++A)
    S.update(A, static_cast<std::uint32_t>(A % 3),
             static_cast<std::int64_t>(A));
  // clear() does not touch the slots — it bumps the generation — yet every
  // stale-generation entry must read as invalid.
  S.clear();
  for (std::uint64_t A = 0; A < 32; ++A)
    EXPECT_FALSE(S.lookup(A).valid()) << "stale entry survived clear: " << A;
  // Fresh updates in the new generation are visible again, and untouched
  // neighbors stay invalid.
  S.update(5, 2, 40);
  ASSERT_TRUE(S.lookup(5).valid());
  EXPECT_EQ(S.lookup(5).Tid, 2u);
  EXPECT_EQ(S.lookup(5).Iter, 40);
  EXPECT_FALSE(S.lookup(4).valid());
  EXPECT_FALSE(S.lookup(6).valid());
}

TEST(ShadowMemory, DenseRepeatedClearsStayExact) {
  DenseShadowMemory S(4);
  for (int Round = 0; Round < 100; ++Round) {
    EXPECT_FALSE(S.lookup(1).valid());
    S.update(1, 0, Round);
    EXPECT_TRUE(S.lookup(1).valid());
    S.clear();
  }
}

TEST(ShadowMemory, DenseGenerationWrapFallsBackToHardReset) {
  DenseShadowMemory S(8);
  // Jump to the last representable generation; the entry written here would
  // alias a future lazily-bumped generation if the wrap were not handled.
  S.setGenerationForTesting(0xffffffffu);
  S.update(3, 7, 123);
  ASSERT_TRUE(S.lookup(3).valid());
  S.clear(); // wraps: must pay the O(Size) reset, not alias generation 0/1
  for (std::uint64_t A = 0; A < 8; ++A)
    EXPECT_FALSE(S.lookup(A).valid()) << "entry aliased across wrap: " << A;
  S.update(3, 1, 456);
  ASSERT_TRUE(S.lookup(3).valid());
  EXPECT_EQ(S.lookup(3).Tid, 1u);
  EXPECT_EQ(S.lookup(3).Iter, 456);
  // Lazy clears keep working after the wrap.
  S.clear();
  EXPECT_FALSE(S.lookup(3).valid());
}

//===----------------------------------------------------------------------===//
// Sharded substrates agree with the serial ones on every probe
//===----------------------------------------------------------------------===//

namespace {

/// Drives the same pseudo-random update/lookup stream through a serial
/// shadow and a sharded one; every lookup must agree, and the sharded
/// accessors must be consistent with their own shardOf routing.
template <typename Serial, typename ShardedT>
void compareSubstrates(Serial &Ref, ShardedT &Sharded, std::uint64_t MaxAddr,
                       std::uint64_t Seed) {
  Xoshiro256StarStar Rng(Seed);
  for (int Op = 0; Op < 4000; ++Op) {
    const std::uint64_t Addr = Rng.nextBelow(MaxAddr);
    if (Rng.nextBool(0.6)) {
      const std::uint32_t Tid = static_cast<std::uint32_t>(Rng.nextBelow(8));
      const std::int64_t Iter = Op;
      Ref.update(Addr, Tid, Iter);
      Sharded.shardUpdate(Sharded.shardOf(Addr), Addr, Tid, Iter);
    }
    const ShadowEntry E = Ref.lookup(Addr);
    const ShadowEntry G = Sharded.shardLookup(Sharded.shardOf(Addr), Addr);
    const ShadowEntry U = Sharded.lookup(Addr); // unsharded convenience probe
    EXPECT_EQ(E.valid(), G.valid());
    EXPECT_EQ(G.valid(), U.valid());
    if (E.valid() && G.valid()) {
      EXPECT_EQ(E.Tid, G.Tid);
      EXPECT_EQ(E.Iter, G.Iter);
      EXPECT_EQ(G.Tid, U.Tid);
      EXPECT_EQ(G.Iter, U.Iter);
    }
    if (Op == 2000) {
      Ref.clear();
      Sharded.clear();
    }
  }
}

} // namespace

TEST(ShadowMemory, ShardedDenseMatchesSerialSubstrate) {
  for (std::uint32_t Shards : {1u, 2u, 8u}) {
    constexpr std::uint64_t Space = 100; // not a multiple of any shard count
    DenseShadowMemory Ref(Space);
    ShardedDenseShadowMemory Sharded(Space, Shards);
    EXPECT_EQ(Sharded.numShards(), Shards);
    EXPECT_EQ(Sharded.size(), Space);
    compareSubstrates(Ref, Sharded, Space, 1000 + Shards);
  }
}

TEST(ShadowMemory, ShardedHashMatchesSerialSubstrate) {
  for (std::uint32_t Shards : {1u, 2u, 8u}) {
    HashShadowMemory Ref(/*ExpectedEntries=*/16);
    ShardedHashShadowMemory Sharded(Shards, /*ExpectedEntriesPerShard=*/16);
    EXPECT_EQ(Sharded.numShards(), Shards);
    // Pointer-shaped sparse addresses: inject ids through a big odd stride.
    Xoshiro256StarStar Rng(2000 + Shards);
    for (int Op = 0; Op < 2000; ++Op) {
      const std::uint64_t Addr =
          Rng.nextBelow(500) * 0x9e3779b97f4a7c15ULL + 3;
      const std::uint32_t Tid = static_cast<std::uint32_t>(Rng.nextBelow(8));
      Ref.update(Addr, Tid, Op);
      Sharded.shardUpdate(Sharded.shardOf(Addr), Addr, Tid, Op);
      const ShadowEntry E = Ref.lookup(Addr);
      const ShadowEntry G = Sharded.lookup(Addr);
      ASSERT_TRUE(E.valid() && G.valid());
      EXPECT_EQ(E.Tid, G.Tid);
      EXPECT_EQ(E.Iter, G.Iter);
    }
    EXPECT_EQ(Sharded.size(), Ref.size());
  }
}

//===----------------------------------------------------------------------===//
// Sharded scheduler == serial scheduler, end to end
//===----------------------------------------------------------------------===//

namespace {

/// Same shape as DomoreTests' ConflictHarness: per-element append logs make
/// any ordering violation visible, and the full log contents double as a
/// deterministic memory image to compare across scheduler variants.
struct ShardHarness {
  ShardHarness(std::uint32_t NumInv, std::uint32_t IterPerInv,
               std::uint64_t Space, std::uint64_t Seed, bool SparseAddrs)
      : NumInv(NumInv), IterPerInv(IterPerInv), Space(Space),
        SparseAddrs(SparseAddrs) {
    Xoshiro256StarStar Rng(Seed);
    Elements.resize(static_cast<std::size_t>(NumInv) * IterPerInv);
    std::vector<std::uint64_t> Pool(Space);
    std::iota(Pool.begin(), Pool.end(), 0u);
    // Distinct elements within one invocation (the DOALL inner loop).
    for (std::uint32_t Inv = 0; Inv < NumInv; ++Inv)
      for (std::uint32_t It = 0; It < IterPerInv; ++It) {
        const std::size_t Pick = It + Rng.nextBelow(Space - It);
        std::swap(Pool[It], Pool[Pick]);
        Elements[static_cast<std::size_t>(Inv) * IterPerInv + It] = Pool[It];
      }
    Log.resize(Space);
  }

  std::uint64_t addrOf(std::uint64_t Element) const {
    // Sparse mode forces the hash substrate's pointer-shaped space.
    return SparseAddrs ? Element * 0x9e3779b97f4a7c15ULL + 1 : Element;
  }

  LoopNest nest() {
    LoopNest N;
    N.NumInvocations = NumInv;
    N.AddressSpaceSize = SparseAddrs ? 0 : Space;
    N.BeginInvocation = [this](std::uint32_t) {
      return static_cast<std::size_t>(IterPerInv);
    };
    N.ComputeAddr = [this](std::uint32_t Inv, std::size_t It,
                           std::vector<std::uint64_t> &Addrs) {
      Addrs.push_back(addrOf(elementOf(Inv, It)));
    };
    N.Work = [this](std::uint32_t Inv, std::size_t It) {
      const std::int64_t Combined =
          static_cast<std::int64_t>(Inv) * IterPerInv +
          static_cast<std::int64_t>(It);
      Log[elementOf(Inv, It)].push_back(Combined);
    };
    return N;
  }

  std::uint64_t elementOf(std::uint32_t Inv, std::size_t It) const {
    return Elements[static_cast<std::size_t>(Inv) * IterPerInv + It];
  }

  bool ordered() const {
    for (const auto &L : Log)
      for (std::size_t I = 1; I < L.size(); ++I)
        if (L[I - 1] >= L[I])
          return false;
    return true;
  }

  std::uint32_t NumInv, IterPerInv;
  std::uint64_t Space;
  bool SparseAddrs;
  std::vector<std::uint64_t> Elements;
  std::vector<std::vector<std::int64_t>> Log;
};

std::uint64_t sumOf(const std::vector<std::uint64_t> &V) {
  std::uint64_t Total = 0;
  for (std::uint64_t X : V)
    Total += X;
  return Total;
}

/// Runs the same workload serially (ShadowShards = 0) and under every
/// sharded count, asserting identical sync conditions, identical final
/// memory (the append logs), and coherent per-shard accounting. Every sweep
/// point builds its own DomoreConfig from scratch so the assertions hold in
/// isolation — a carried-over field from a previous point (the bug this
/// guards against) cannot silently change what a later point tests.
void checkShardedEquivalence(bool SparseAddrs, PolicyKind Policy) {
  const auto makeConfig = [Policy](std::uint32_t Shards) {
    DomoreConfig C;
    C.NumWorkers = 3;
    C.Policy = Policy;
    C.ShadowShards = Shards;
    return C;
  };

  ShardHarness Serial(40, 8, 64, 99, SparseAddrs);
  const DomoreStats Base = runDomore(Serial.nest(), makeConfig(0));
  EXPECT_TRUE(Serial.ordered());
  EXPECT_EQ(Base.ShadowShards, 1u);
  ASSERT_EQ(Base.ShardConflicts.size(), 1u);
  EXPECT_EQ(sumOf(Base.ShardConflicts), Base.SyncConditions);

  for (std::uint32_t Shards : {1u, 2u, 8u}) {
    ShardHarness H(40, 8, 64, 99, SparseAddrs);
    const DomoreStats S = runDomore(H.nest(), makeConfig(Shards));
    EXPECT_TRUE(H.ordered()) << "shards=" << Shards;
    EXPECT_EQ(S.SyncConditions, Base.SyncConditions) << "shards=" << Shards;
    EXPECT_EQ(S.Iterations, Base.Iterations);
    EXPECT_EQ(H.Log, Serial.Log) << "final memory diverged, shards=" << Shards;
    EXPECT_EQ(S.ShadowShards, Shards == 0 ? 1u : Shards);
    ASSERT_EQ(S.ShardConflicts.size(), S.ShadowShards);
    EXPECT_EQ(sumOf(S.ShardConflicts), S.SyncConditions)
        << "per-shard attribution must cover every sync condition";
  }
}

} // namespace

TEST(ShardedRuntime, DenseSubstrateMatchesSerialAcrossShardCounts) {
  checkShardedEquivalence(/*SparseAddrs=*/false, PolicyKind::RoundRobin);
}

TEST(ShardedRuntime, HashSubstrateMatchesSerialAcrossShardCounts) {
  checkShardedEquivalence(/*SparseAddrs=*/true, PolicyKind::HashOwner);
}

TEST(ShardedRuntime, OwnerComputePolicyAlsoMatches) {
  checkShardedEquivalence(/*SparseAddrs=*/false, PolicyKind::OwnerCompute);
}

//===----------------------------------------------------------------------===//
// batchFirstOverlap == firstOverlap, property-tested per scheme
//===----------------------------------------------------------------------===//

namespace {

using speccross::BloomSignature;
using speccross::RangeSignature;
using speccross::SignatureLog;
using speccross::SmallSetSignature;

template <typename Sig> Sig randomSignature(Xoshiro256StarStar &Rng) {
  Sig S;
  if (Rng.nextBool(0.15))
    return S; // empty
  // Clustered addresses so overlaps are common but not universal; 12
  // occasionally overflows SmallSetSignature's capacity of 8.
  const std::uint64_t Base = Rng.nextBelow(96);
  const std::uint64_t Count = 1 + Rng.nextBelow(12);
  for (std::uint64_t I = 0; I < Count; ++I)
    S.add(Base + Rng.nextBelow(24));
  return S;
}

/// Exhaustively compares the batched and scalar scans over every [Begin,
/// End) window of randomized logs whose sizes straddle the SIMD width and
/// the fallback chunk size.
template <typename Sig> void checkBatchAgreesWithScalar(std::uint64_t Seed) {
  Xoshiro256StarStar Rng(Seed);
  for (const std::size_t N : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{4}, std::size_t{5}, std::size_t{15},
                              std::size_t{16}, std::size_t{17},
                              std::size_t{33}, std::size_t{70}}) {
    SignatureLog<Sig> Log;
    Log.resize(N);
    ASSERT_EQ(Log.size(), N);
    for (std::size_t K = 0; K < N; ++K)
      Log.set(K, randomSignature<Sig>(Rng));
    for (int Trial = 0; Trial < 8; ++Trial) {
      const Sig Mine = randomSignature<Sig>(Rng);
      for (std::size_t Begin = 0; Begin <= N; ++Begin)
        for (std::size_t End = Begin; End <= N; ++End) {
          const std::size_t Scalar = Log.firstOverlap(Mine, Begin, End);
          const std::size_t Batch = Log.batchFirstOverlap(Mine, Begin, End);
          ASSERT_EQ(Batch, Scalar)
              << "size=" << N << " window=[" << Begin << "," << End << ")";
          // The contract: smallest hit in-window, and really a hit.
          if (Scalar != SignatureLog<Sig>::npos) {
            ASSERT_GE(Scalar, Begin);
            ASSERT_LT(Scalar, End);
            ASSERT_TRUE(Mine.overlaps(Log.get(Scalar)));
          }
        }
    }
  }
}

} // namespace

TEST(SignatureLogProperty, RangeBatchAgreesWithScalar) {
  checkBatchAgreesWithScalar<RangeSignature>(0xa11ce);
}

TEST(SignatureLogProperty, BloomBatchAgreesWithScalar) {
  checkBatchAgreesWithScalar<BloomSignature>(0xb0b);
}

TEST(SignatureLogProperty, SmallSetBatchAgreesWithScalar) {
  checkBatchAgreesWithScalar<SmallSetSignature>(0xcafe);
}

TEST(SignatureLogProperty, RoundTripsSignaturesExactly) {
  // SoA storage must reproduce the signature it was handed: get(set(x)) is
  // identity as far as overlaps() can observe, including overflowed
  // small-sets and empty slots.
  Xoshiro256StarStar Rng(77);
  SignatureLog<SmallSetSignature> Log;
  Log.resize(32);
  std::vector<SmallSetSignature> Originals(32);
  for (std::size_t K = 0; K < 32; ++K) {
    Originals[K] = randomSignature<SmallSetSignature>(Rng);
    Log.set(K, Originals[K]);
  }
  for (std::size_t K = 0; K < 32; ++K)
    for (int Probe = 0; Probe < 16; ++Probe) {
      const SmallSetSignature Q = randomSignature<SmallSetSignature>(Rng);
      EXPECT_EQ(Q.overlaps(Log.get(K)), Q.overlaps(Originals[K]));
    }
}

//===----------------------------------------------------------------------===//
// Engine-level equivalence: batching must not change any observable
//===----------------------------------------------------------------------===//

namespace {

using speccross::CheckpointRegistry;
using speccross::SpecConfig;
using speccross::SpecMode;
using speccross::SpecRegion;
using speccross::SpecStats;

/// Region with a dialable conflict: per-task private cells, plus — when
/// \p WithConflicts — one shared slot the designated task of each epoch
/// read-modify-writes, so the checker has real overlaps to find (same shape
/// as SpecCrossTests' ChainRegion).
struct ConflictRegion {
  ConflictRegion(std::uint32_t Epochs, std::uint32_t Tasks,
                 bool WithConflicts)
      : Epochs(Epochs), Tasks(Tasks), WithConflicts(WithConflicts),
        Cells(Tasks, 0), Shared(1) {
    Shared[0].store(1, std::memory_order_relaxed);
  }

  SpecRegion region(CheckpointRegistry &Reg) {
    Reg.registerBuffer(Cells);
    Reg.registerBuffer(Shared);
    SpecRegion R;
    R.NumEpochs = Epochs;
    R.NumTasks = [this](std::uint32_t) {
      return static_cast<std::size_t>(Tasks);
    };
    R.RunTask = [this](std::uint32_t E, std::size_t T) {
      Cells[T] += 1;
      if (WithConflicts && T == E % 2)
        Shared[0].store(Shared[0].load(std::memory_order_relaxed) + 1 +
                            Cells[T] % 3,
                        std::memory_order_relaxed);
    };
    R.TaskAddresses = [this](std::uint32_t E, std::size_t T,
                             std::vector<std::uint64_t> &Addrs) {
      Addrs.push_back(T);
      if (WithConflicts && T == E % 2)
        Addrs.push_back(Tasks + 1); // the shared slot
    };
    R.Checkpoints = &Reg;
    return R;
  }

  std::vector<std::uint32_t> state() const {
    std::vector<std::uint32_t> S = Cells;
    S.push_back(Shared[0].load(std::memory_order_relaxed));
    return S;
  }

  std::uint32_t Epochs, Tasks;
  bool WithConflicts;
  std::vector<std::uint32_t> Cells;
  std::vector<std::atomic<std::uint32_t>> Shared;
};

std::vector<std::uint32_t> sequentialSpecResult(std::uint32_t Epochs,
                                                std::uint32_t Tasks,
                                                bool WithConflicts) {
  ConflictRegion C(Epochs, Tasks, WithConflicts);
  CheckpointRegistry Reg;
  SpecRegion R = C.region(Reg);
  for (std::uint32_t E = 0; E < R.NumEpochs; ++E)
    for (std::size_t T = 0; T < R.NumTasks(E); ++T)
      R.RunTask(E, T);
  return C.state();
}

SpecStats runConflictRegion(speccross::SignatureScheme Scheme, bool Batched,
                            bool WithConflicts,
                            std::vector<std::uint32_t> &StateOut) {
  ConflictRegion C(12, 6, WithConflicts);
  CheckpointRegistry Reg;
  SpecRegion R = C.region(Reg);
  SpecConfig Config;
  Config.NumWorkers = 3;
  Config.Scheme = Scheme;
  Config.BatchCheck = Batched;
  Config.CheckpointIntervalEpochs = 3;
  const SpecStats S = runSpecCross(R, Config, SpecMode::Speculation);
  StateOut = C.state();
  return S;
}

} // namespace

TEST(SimdEquivalence, BatchedAndScalarCheckingAgreeOnEveryScheme) {
  // The env override would defeat the per-config comparison below.
  unsetenv("CIP_SIMD");
  for (const speccross::SignatureScheme Scheme :
       {speccross::SignatureScheme::Range, speccross::SignatureScheme::Bloom,
        speccross::SignatureScheme::SmallSet}) {
    // Conflict-free region: no aborts, so the round structure — and with it
    // the exact set of (request, epoch) spans the checker compares — is
    // deterministic. Comparison accounting is defined to be
    // mode-independent (the batched scan counts the span up to and
    // including the first hit, exactly what the scalar loop visits), so the
    // totals must match.
    const std::vector<std::uint32_t> CleanRef =
        sequentialSpecResult(12, 6, /*WithConflicts=*/false);
    std::vector<std::uint32_t> States[2];
    SpecStats Stats[2];
    for (const bool Batched : {false, true}) {
      Stats[Batched] =
          runConflictRegion(Scheme, Batched, /*WithConflicts=*/false,
                            States[Batched]);
      EXPECT_EQ(Stats[Batched].BatchCheckEnabled, Batched);
      EXPECT_EQ(States[Batched], CleanRef);
      EXPECT_EQ(Stats[Batched].Misspeculations, 0u);
    }
    EXPECT_EQ(Stats[0].SignatureComparisons, Stats[1].SignatureComparisons);
    EXPECT_EQ(Stats[0].Epochs, Stats[1].Epochs);
    EXPECT_EQ(Stats[0].Tasks, Stats[1].Tasks);
    EXPECT_EQ(Stats[0].BatchChecks, 0u) << "scalar mode must not batch";
    if (Stats[1].SignatureComparisons > 0) {
      EXPECT_GT(Stats[1].BatchChecks, 0u);
    }
    EXPECT_LE(Stats[1].BatchChecks, Stats[1].SignatureComparisons);

    // Conflict-heavy region: *when* a round aborts is inherently racy, so
    // per-run counter totals vary — what must hold in both modes is the
    // semantic contract: rollback plus re-execution always lands on the
    // sequential result.
    const std::vector<std::uint32_t> ConflictRef =
        sequentialSpecResult(12, 6, /*WithConflicts=*/true);
    for (const bool Batched : {false, true}) {
      std::vector<std::uint32_t> State;
      const SpecStats S =
          runConflictRegion(Scheme, Batched, /*WithConflicts=*/true, State);
      EXPECT_EQ(State, ConflictRef)
          << "batched=" << Batched << ": recovery diverged from sequential";
      EXPECT_EQ(S.BatchCheckEnabled, Batched);
      if (!Batched) {
        EXPECT_EQ(S.BatchChecks, 0u);
      }
    }
  }
}

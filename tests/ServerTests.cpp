//===- tests/ServerTests.cpp - Region-server subsystem tests -------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The region server's contracts: strict CIP_SERVER_* knob parsing,
/// bounded-queue admission under both full-queue policies, FIFO worker
/// arbitration, the should_invoc degrade paths (narrow barrier and
/// sequential — both checksum-identical to the requested technique),
/// shutdown with in-flight and queued requests, and a multi-client soak
/// that funnels mixed workloads and techniques through one budget.
///
/// Deterministic budget pressure comes from GateWorkload: a region whose
/// single task blocks on a latch, so a test can pin any number of workers
/// in the granted state for exactly as long as it needs.
///
//===----------------------------------------------------------------------===//

#include "server/RegionServer.h"

#include "harness/Executor.h"
#include "support/ThreadPool.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace cip;
using namespace cip::server;

namespace {

/// Saves one environment variable on construction and restores it on
/// destruction (same idiom as PolicyTests.cpp), so tests can mutate
/// CIP_SERVER_* without clobbering a re-registered ctest config's
/// environment.
class EnvGuard {
public:
  explicit EnvGuard(const char *Name) : Name(Name) {
    if (const char *V = std::getenv(Name)) {
      Saved = V;
      Had = true;
    }
  }
  ~EnvGuard() {
    if (Had)
      setenv(Name, Saved.c_str(), 1);
    else
      unsetenv(Name);
  }

private:
  const char *Name;
  std::string Saved;
  bool Had = false;
};

/// Restores the ThreadPool spawn cap (configFromEnv installs the parsed
/// budget there) so tests leave the process-wide default untouched.
class SpawnCapGuard {
public:
  SpawnCapGuard() : Saved(ThreadPool::spawnCap()) {}
  ~SpawnCapGuard() { ThreadPool::setSpawnCap(Saved); }

private:
  unsigned Saved;
};

/// A one-task region that blocks on a latch: granting it pins its workers
/// until release(). waitEntered() rendezvouses with the task actually
/// running, so tests observe "budget held", not "submission started".
class GateWorkload final : public workloads::Workload {
public:
  const char *name() const override { return "gate"; }
  void reset() override { Value = 0; }
  std::uint32_t numEpochs() const override { return 1; }
  std::size_t numTasks(std::uint32_t) const override { return 1; }
  void runTask(std::uint32_t, std::size_t) override {
    Entered.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> L(Mu);
    Cv.wait(L, [this] { return Released; });
    Value = 1;
  }
  void taskAddresses(std::uint32_t, std::size_t,
                     std::vector<std::uint64_t> &) const override {}
  std::uint64_t addressSpaceSize() const override { return 1; }
  void registerState(speccross::CheckpointRegistry &) override {}
  std::uint64_t checksum() const override { return Value; }

  void waitEntered() const {
    while (!Entered.load(std::memory_order_acquire))
      std::this_thread::yield();
  }
  void release() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Released = true;
    }
    Cv.notify_all();
  }

private:
  std::atomic<bool> Entered{false};
  mutable std::mutex Mu;
  std::condition_variable Cv;
  bool Released = false;
  std::uint64_t Value = 0;
};

RegionRequest gateRequest(GateWorkload &G, unsigned Width) {
  RegionRequest R;
  R.W = &G;
  R.Tech = policy::Technique::Barrier;
  R.Width = Width;
  R.MinWorkers = 1; // a gate takes exactly Width workers when free
  return R;
}

std::uint64_t sequentialChecksum(const std::string &Name) {
  auto W = workloads::makeWorkload(Name, workloads::Scale::Test);
  return harness::runSequential(*W).Checksum;
}

} // namespace

//===----------------------------------------------------------------------===//
// Environment knobs
//===----------------------------------------------------------------------===//

TEST(ServerEnvDeathTest, MalformedWorkersExits2) {
  EnvGuard G("CIP_SERVER_WORKERS");
  for (const char *Bad : {"0", "-2", "4x", "", "many"}) {
    setenv("CIP_SERVER_WORKERS", Bad, 1);
    EXPECT_EXIT(configFromEnv(), testing::ExitedWithCode(2),
                "CIP_SERVER_WORKERS")
        << Bad;
  }
}

TEST(ServerEnvDeathTest, MalformedQueueExits2) {
  EnvGuard G("CIP_SERVER_QUEUE");
  setenv("CIP_SERVER_QUEUE", "0", 1);
  EXPECT_EXIT(configFromEnv(), testing::ExitedWithCode(2),
              "CIP_SERVER_QUEUE");
}

TEST(ServerEnvDeathTest, MalformedMinWorkersExits2) {
  EnvGuard G("CIP_SERVER_MIN_WORKERS");
  setenv("CIP_SERVER_MIN_WORKERS", "two", 1);
  EXPECT_EXIT(configFromEnv(), testing::ExitedWithCode(2),
              "CIP_SERVER_MIN_WORKERS");
}

TEST(ServerEnvDeathTest, MalformedAdmissionExits2) {
  EnvGuard G("CIP_SERVER_ADMISSION");
  setenv("CIP_SERVER_ADMISSION", "drop", 1);
  EXPECT_EXIT(configFromEnv(), testing::ExitedWithCode(2),
              "CIP_SERVER_ADMISSION");
}

TEST(ServerEnv, KnobsOverrideAndInstallSpawnCap) {
  EnvGuard G1("CIP_SERVER_WORKERS"), G2("CIP_SERVER_QUEUE"),
      G3("CIP_SERVER_MIN_WORKERS"), G4("CIP_SERVER_ADMISSION");
  SpawnCapGuard CapGuard;
  setenv("CIP_SERVER_WORKERS", "5", 1);
  setenv("CIP_SERVER_QUEUE", "9", 1);
  setenv("CIP_SERVER_MIN_WORKERS", "3", 1);
  setenv("CIP_SERVER_ADMISSION", "reject", 1);
  const ServerConfig Cfg = configFromEnv();
  EXPECT_EQ(Cfg.Workers, 5u);
  EXPECT_EQ(Cfg.QueueCapacity, 9u);
  EXPECT_EQ(Cfg.MinWorkers, 3u);
  EXPECT_EQ(Cfg.Admission, AdmissionPolicy::Reject);
  // The budget doubles as the nested-region spawn-fallback cap.
  EXPECT_EQ(ThreadPool::spawnCap(), 5u);

  unsetenv("CIP_SERVER_WORKERS");
  unsetenv("CIP_SERVER_QUEUE");
  unsetenv("CIP_SERVER_MIN_WORKERS");
  unsetenv("CIP_SERVER_ADMISSION");
  ServerConfig Base;
  Base.Workers = 2;
  Base.QueueCapacity = 7;
  const ServerConfig Kept = configFromEnv(Base);
  EXPECT_EQ(Kept.Workers, 2u);
  EXPECT_EQ(Kept.QueueCapacity, 7u);
  EXPECT_EQ(Kept.Admission, AdmissionPolicy::Block);
}

//===----------------------------------------------------------------------===//
// Grants and the should_invoc gate
//===----------------------------------------------------------------------===//

TEST(RegionServer, GrantsRequestedWidthAndReleasesIt) {
  ServerConfig Cfg;
  Cfg.Workers = 3;
  RegionServer Server(Cfg);
  EXPECT_EQ(Server.availableWorkers(), 3u);
  EXPECT_EQ(Server.workersInUse(), 0u);

  auto W = workloads::makeWorkload("jacobi", workloads::Scale::Test);
  RegionRequest Req;
  Req.W = W.get();
  Req.Tech = policy::Technique::Barrier;
  Req.Width = 2;
  const RequestResult R = Server.submit(Req);
  EXPECT_EQ(R.Status, RequestStatus::Completed);
  EXPECT_FALSE(R.Degraded);
  EXPECT_STREQ(R.Technique, "barrier");
  EXPECT_EQ(R.Granted, 2u);
  EXPECT_EQ(R.Checksum, sequentialChecksum("jacobi"));
  // The grant is back in the budget once submit returns.
  EXPECT_EQ(Server.availableWorkers(), 3u);
  EXPECT_EQ(Server.workersInUse(), 0u);
}

TEST(RegionServer, HeldBudgetIsVisibleToClients) {
  ServerConfig Cfg;
  Cfg.Workers = 3;
  RegionServer Server(Cfg);

  GateWorkload Gate;
  std::thread Holder(
      [&] { (void)Server.submit(gateRequest(Gate, 2)); });
  Gate.waitEntered();
  // The cpf getNumAvailableWorkers() mirror: 2 of 3 workers are granted.
  EXPECT_EQ(Server.availableWorkers(), 1u);
  EXPECT_EQ(Server.workersInUse(), 2u);
  Gate.release();
  Holder.join();
  EXPECT_EQ(Server.availableWorkers(), 3u);
}

TEST(RegionServer, DegradesToSequentialWhenBudgetExhausted) {
  ServerConfig Cfg;
  Cfg.Workers = 3;
  Cfg.MinWorkers = 2;
  RegionServer Server(Cfg);

  GateWorkload Gate;
  std::thread Holder(
      [&] { (void)Server.submit(gateRequest(Gate, 3)); });
  Gate.waitEntered();
  ASSERT_EQ(Server.availableWorkers(), 0u);

  // Zero free workers, minimum width 2: the should_invoc gate must run the
  // region sequentially in this thread, with a bit-identical checksum.
  auto W = workloads::makeWorkload("loopdep", workloads::Scale::Test);
  RegionRequest Req;
  Req.W = W.get();
  Req.Tech = policy::Technique::Domore;
  Req.Width = 3;
  const RequestResult R = Server.submit(Req);
  EXPECT_EQ(R.Status, RequestStatus::Completed);
  EXPECT_TRUE(R.Degraded);
  EXPECT_STREQ(R.Technique, "sequential");
  EXPECT_EQ(R.Granted, 0u);
  EXPECT_EQ(R.Checksum, sequentialChecksum("loopdep"));

  Gate.release();
  Holder.join();
  const ServerStats S = Server.stats();
  EXPECT_EQ(S.DegradedSequential, 1u);
  EXPECT_EQ(S.Completed, 2u);
}

TEST(RegionServer, DegradesToNarrowBarrierWhenBelowMinWidth) {
  ServerConfig Cfg;
  Cfg.Workers = 4;
  RegionServer Server(Cfg);

  GateWorkload Gate;
  std::thread Holder(
      [&] { (void)Server.submit(gateRequest(Gate, 2)); });
  Gate.waitEntered();
  ASSERT_EQ(Server.availableWorkers(), 2u);

  // Two free, minimum width 3: degrade to a 2-wide plain barrier.
  auto W = workloads::makeWorkload("jacobi", workloads::Scale::Test);
  RegionRequest Req;
  Req.W = W.get();
  Req.Tech = policy::Technique::Domore;
  Req.Width = 4;
  Req.MinWorkers = 3;
  const RequestResult R = Server.submit(Req);
  EXPECT_EQ(R.Status, RequestStatus::Completed);
  EXPECT_TRUE(R.Degraded);
  EXPECT_STREQ(R.Technique, "barrier");
  EXPECT_EQ(R.Granted, 2u);
  EXPECT_EQ(R.Checksum, sequentialChecksum("jacobi"));

  Gate.release();
  Holder.join();
  EXPECT_EQ(Server.stats().DegradedNarrow, 1u);
}

TEST(RegionServer, PlanHoldWaitsForBudgetInsteadOfDegrading) {
  // The duration gate (DESIGN.md §13): a plan predicting a large parallel
  // benefit makes should_invoc hold the request at the head of the queue
  // rather than degrade it, up to the predicted benefit.
  ServerConfig Cfg;
  Cfg.Workers = 3;
  Cfg.MinWorkers = 2;
  RegionServer Server(Cfg);

  GateWorkload Gate;
  std::thread Holder(
      [&] { (void)Server.submit(gateRequest(Gate, 3)); });
  Gate.waitEntered();
  ASSERT_EQ(Server.availableWorkers(), 0u);

  auto W = workloads::makeWorkload("loopdep", workloads::Scale::Test);
  plan::RegionPlan Plan;
  Plan.Region = W->name();
  Plan.SequentialSecondsPerEpoch = 10.0; // waiting is predicted far cheaper
  Plan.PredictedSecondsPerEpoch = 0.001;
  RegionRequest Req;
  Req.W = W.get();
  Req.Tech = policy::Technique::Domore;
  Req.Width = 3;
  Req.Plan = &Plan;
  RequestResult R;
  std::thread Submitter([&] { R = Server.submit(Req); });

  // Rendezvous with the hold actually engaging before releasing budget.
  while (Server.stats().PlanHeld == 0)
    std::this_thread::yield();
  Gate.release();
  Holder.join();
  Submitter.join();

  EXPECT_EQ(R.Status, RequestStatus::Completed);
  EXPECT_FALSE(R.Degraded);
  EXPECT_TRUE(R.PlanHeld);
  EXPECT_STRNE(R.Technique, "sequential");
  EXPECT_EQ(R.Checksum, sequentialChecksum("loopdep"));
  const ServerStats S = Server.stats();
  EXPECT_EQ(S.PlanHeld, 1u);
  EXPECT_EQ(S.PlanHoldExpired, 0u);
  EXPECT_EQ(S.DegradedSequential, 0u);
}

TEST(RegionServer, PlanHoldExpiresThenDegrades) {
  // A plan predicting only a sliver of benefit bounds the hold to that
  // sliver: the deadline passes, the gate falls back to instantaneous
  // should_invoc, and the request degrades as it would have cold.
  ServerConfig Cfg;
  Cfg.Workers = 3;
  Cfg.MinWorkers = 2;
  RegionServer Server(Cfg);

  GateWorkload Gate;
  std::thread Holder(
      [&] { (void)Server.submit(gateRequest(Gate, 3)); });
  Gate.waitEntered();
  ASSERT_EQ(Server.availableWorkers(), 0u);

  auto W = workloads::makeWorkload("loopdep", workloads::Scale::Test);
  plan::RegionPlan Plan;
  Plan.Region = W->name();
  Plan.SequentialSecondsPerEpoch = 2e-6; // microseconds of predicted benefit
  Plan.PredictedSecondsPerEpoch = 1e-6;
  RegionRequest Req;
  Req.W = W.get();
  Req.Tech = policy::Technique::Domore;
  Req.Width = 3;
  Req.Plan = &Plan;
  const RequestResult R = Server.submit(Req);

  EXPECT_EQ(R.Status, RequestStatus::Completed);
  EXPECT_TRUE(R.Degraded);
  EXPECT_TRUE(R.PlanHeld);
  EXPECT_STREQ(R.Technique, "sequential");
  EXPECT_EQ(R.Checksum, sequentialChecksum("loopdep"));

  Gate.release();
  Holder.join();
  const ServerStats S = Server.stats();
  EXPECT_EQ(S.PlanHeld, 1u);
  EXPECT_EQ(S.PlanHoldExpired, 1u);
  EXPECT_EQ(S.DegradedSequential, 1u);
}

TEST(RegionServer, AdaptivePolicyRequestsRunPerRegion) {
  ServerConfig Cfg;
  Cfg.Workers = 3;
  RegionServer Server(Cfg);

  policy::PolicyConfig Policy;
  Policy.Kind = policy::PolicyKind::Threshold;
  Policy.WindowEpochs = 2;

  auto W = workloads::makeWorkload("cg", workloads::Scale::Test);
  RegionRequest Req;
  Req.W = W.get();
  Req.Policy = &Policy;
  Req.Width = 3;
  const RequestResult R = Server.submit(Req);
  EXPECT_EQ(R.Status, RequestStatus::Completed);
  EXPECT_STREQ(R.Technique, "adaptive");
  EXPECT_EQ(R.Checksum, sequentialChecksum("cg"));
}

TEST(RegionServer, SpecCrossRequestsRegisterStateOnce) {
  ServerConfig Cfg;
  Cfg.Workers = 3;
  RegionServer Server(Cfg);

  auto W = workloads::makeWorkload("jacobi", workloads::Scale::Test);
  RegionRequest Req;
  Req.W = W.get();
  Req.Tech = policy::Technique::SpecCross;
  Req.Width = 3;
  const RequestResult R = Server.submit(Req);
  EXPECT_EQ(R.Status, RequestStatus::Completed);
  EXPECT_EQ(R.Checksum, sequentialChecksum("jacobi"));
}

//===----------------------------------------------------------------------===//
// Admission: bounded queue, Block vs Reject
//===----------------------------------------------------------------------===//

TEST(RegionServer, QueueFullRejectsUnderRejectPolicy) {
  ServerConfig Cfg;
  Cfg.Workers = 2;
  Cfg.QueueCapacity = 1;
  Cfg.Admission = AdmissionPolicy::Reject;
  Cfg.AllowDegrade = false; // force the queue to back up behind the gate
  RegionServer Server(Cfg);

  GateWorkload Gate;
  std::thread Holder(
      [&] { (void)Server.submit(gateRequest(Gate, 2)); });
  Gate.waitEntered();

  // Queued head: waits for the budget (degradation off). Fills the queue.
  auto W1 = workloads::makeWorkload("loopdep", workloads::Scale::Test);
  RegionRequest Q1;
  Q1.W = W1.get();
  Q1.Width = 2;
  Q1.MinWorkers = 2;
  std::thread Queued([&] {
    const RequestResult R = Server.submit(Q1);
    EXPECT_EQ(R.Status, RequestStatus::Completed);
    EXPECT_EQ(R.Checksum, sequentialChecksum("loopdep"));
  });
  while (Server.queueDepth() < 1)
    std::this_thread::yield();

  // The queue is at capacity: the next submission is shed immediately.
  auto W2 = workloads::makeWorkload("jacobi", workloads::Scale::Test);
  RegionRequest Q2;
  Q2.W = W2.get();
  Q2.Width = 2;
  const RequestResult Shed = Server.submit(Q2);
  EXPECT_EQ(Shed.Status, RequestStatus::Rejected);

  Gate.release();
  Holder.join();
  Queued.join();
  const ServerStats S = Server.stats();
  EXPECT_EQ(S.Rejected, 1u);
  EXPECT_EQ(S.Completed, 2u);
  EXPECT_EQ(S.Submitted, 3u);
}

TEST(RegionServer, QueueFullBlocksUnderBlockPolicy) {
  ServerConfig Cfg;
  Cfg.Workers = 2;
  Cfg.QueueCapacity = 1;
  Cfg.Admission = AdmissionPolicy::Block;
  Cfg.AllowDegrade = false;
  RegionServer Server(Cfg);

  GateWorkload Gate;
  std::thread Holder(
      [&] { (void)Server.submit(gateRequest(Gate, 2)); });
  Gate.waitEntered();

  auto W1 = workloads::makeWorkload("loopdep", workloads::Scale::Test);
  RegionRequest Q1;
  Q1.W = W1.get();
  Q1.Width = 2;
  Q1.MinWorkers = 2;
  std::thread Queued([&] { (void)Server.submit(Q1); });
  while (Server.queueDepth() < 1)
    std::this_thread::yield();

  // Queue full under Block: this submission waits for a slot instead of
  // being shed, and completes once the gate drains.
  auto W2 = workloads::makeWorkload("jacobi", workloads::Scale::Test);
  RegionRequest Q2;
  Q2.W = W2.get();
  Q2.Width = 2;
  Q2.MinWorkers = 1;
  std::thread Blocked([&] {
    const RequestResult R = Server.submit(Q2);
    EXPECT_EQ(R.Status, RequestStatus::Completed);
    EXPECT_EQ(R.Checksum, sequentialChecksum("jacobi"));
  });
  // Let the blocked submitter reach the space wait, then drain.
  std::this_thread::yield();
  Gate.release();
  Holder.join();
  Queued.join();
  Blocked.join();
  const ServerStats S = Server.stats();
  EXPECT_EQ(S.Rejected, 0u);
  EXPECT_EQ(S.Completed, 3u);
}

//===----------------------------------------------------------------------===//
// Shutdown
//===----------------------------------------------------------------------===//

TEST(RegionServer, ShutdownDrainsInFlightAndRejectsQueued) {
  ServerConfig Cfg;
  Cfg.Workers = 2;
  Cfg.AllowDegrade = false;
  RegionServer Server(Cfg);

  GateWorkload Gate;
  std::thread Holder([&] {
    const RequestResult R = Server.submit(gateRequest(Gate, 2));
    EXPECT_EQ(R.Status, RequestStatus::Completed);
  });
  Gate.waitEntered();

  auto W = workloads::makeWorkload("jacobi", workloads::Scale::Test);
  RegionRequest Q;
  Q.W = W.get();
  Q.Width = 2;
  Q.MinWorkers = 2;
  std::thread Queued([&] {
    const RequestResult R = Server.submit(Q);
    EXPECT_EQ(R.Status, RequestStatus::Rejected);
  });
  while (Server.queueDepth() < 1)
    std::this_thread::yield();

  // Shutdown must reject the queued request, wait for the in-flight gate
  // region, and leave the budget fully returned.
  std::thread Stopper([&] { Server.shutdown(); });
  std::this_thread::yield();
  Gate.release();
  Holder.join();
  Queued.join();
  Stopper.join();
  EXPECT_EQ(Server.workersInUse(), 0u);
  EXPECT_EQ(Server.queueDepth(), 0u);

  // Post-shutdown submissions fail fast.
  auto W2 = workloads::makeWorkload("loopdep", workloads::Scale::Test);
  RegionRequest After;
  After.W = W2.get();
  EXPECT_EQ(Server.submit(After).Status, RequestStatus::Rejected);
}

//===----------------------------------------------------------------------===//
// Multi-client soak
//===----------------------------------------------------------------------===//

namespace {

/// Shared body for the tier-1 soak and the bigger stress-labeled variant:
/// \p NumClients threads each fire \p PerClient mixed-technique requests at
/// one server, every result checksum-checked against sequential execution.
void runMultiClientSoak(unsigned NumClients, unsigned PerClient) {
  // Built via configFromEnv so re-registered ctest configs (server/) can
  // squeeze the same soak through a different budget/queue shape.
  ServerConfig Base;
  Base.Workers = 3;
  Base.QueueCapacity = 8;
  const ServerConfig Cfg = configFromEnv(Base);
  SpawnCapGuard CapGuard;
  RegionServer Server(Cfg);

  const std::vector<std::string> Names = {"jacobi", "loopdep", "cg"};
  std::vector<std::uint64_t> Expected;
  for (const std::string &Name : Names)
    Expected.push_back(sequentialChecksum(Name));

  const policy::Technique Techs[] = {
      policy::Technique::Barrier, policy::Technique::Domore,
      policy::Technique::SpecCross, policy::Technique::DomoreDup};

  std::atomic<unsigned> Mismatches{0};
  std::vector<std::thread> Clients;
  for (unsigned C = 0; C < NumClients; ++C)
    Clients.emplace_back([&, C] {
      for (unsigned I = 0; I < PerClient; ++I) {
        const unsigned Pick = (C + I) % Names.size();
        auto W = workloads::makeWorkload(Names[Pick], workloads::Scale::Test);
        RegionRequest Req;
        Req.W = W.get();
        Req.Tech = Techs[(C * 7 + I) % 4];
        Req.Width = 1 + (C + I) % Cfg.Workers;
        Req.MinWorkers = 1 + I % 2;
        const RequestResult R = Server.submit(Req);
        if (R.Status != RequestStatus::Completed ||
            R.Checksum != Expected[Pick])
          Mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto &T : Clients)
    T.join();

  EXPECT_EQ(Mismatches.load(), 0u);
  const ServerStats S = Server.stats();
  EXPECT_EQ(S.Submitted, std::uint64_t{NumClients} * PerClient);
  EXPECT_EQ(S.Completed, S.Submitted);
  EXPECT_EQ(S.Rejected, 0u);
  EXPECT_LE(S.DegradedNarrow + S.DegradedSequential, S.Completed);
  EXPECT_EQ(S.QueueWait.count(), S.Completed);
  EXPECT_EQ(Server.workersInUse(), 0u);
  EXPECT_EQ(Server.availableWorkers(), Cfg.Workers);
}

} // namespace

TEST(RegionServer, MultiClientMixedTrafficKeepsChecksums) {
  runMultiClientSoak(/*NumClients=*/3, /*PerClient=*/6);
}

TEST(ServerStress, ManyClientsManyRequests) {
  // Stress-labeled: the CMake stress entry opts in via CIP_SERVER_STRESS;
  // the plain tier-1 discovery of this test skips immediately.
  if (!std::getenv("CIP_SERVER_STRESS"))
    GTEST_SKIP() << "set CIP_SERVER_STRESS=1 (stress ctest label) to run";
  runMultiClientSoak(/*NumClients=*/4, /*PerClient=*/24);
}

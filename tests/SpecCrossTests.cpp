//===- tests/SpecCrossTests.cpp - Unit tests for the SPECCROSS runtime ---===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "speccross/Checkpoint.h"
#include "speccross/Signature.h"
#include "speccross/SpecCrossRuntime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace cip;
using namespace cip::speccross;

//===----------------------------------------------------------------------===//
// Signatures
//===----------------------------------------------------------------------===//

TEST(RangeSignature, EmptyNeverOverlaps) {
  RangeSignature A, B;
  EXPECT_TRUE(A.empty());
  EXPECT_FALSE(A.overlaps(B));
  B.add(5);
  EXPECT_FALSE(A.overlaps(B));
  EXPECT_FALSE(B.overlaps(A));
}

TEST(RangeSignature, DetectsSharedAddress) {
  RangeSignature A, B;
  A.add(10);
  A.add(20);
  B.add(20);
  B.add(30);
  EXPECT_TRUE(A.overlaps(B));
  EXPECT_TRUE(B.overlaps(A));
}

TEST(RangeSignature, DisjointRangesDoNotOverlap) {
  RangeSignature A, B;
  A.add(10);
  A.add(19);
  B.add(20);
  B.add(30);
  EXPECT_FALSE(A.overlaps(B));
}

TEST(RangeSignature, ClearResets) {
  RangeSignature A;
  A.add(1);
  A.clear();
  EXPECT_TRUE(A.empty());
}

TEST(BloomSignature, NeverMissesRealConflicts) {
  // Soundness: a shared address must always be reported, whatever else is
  // in the filters.
  for (std::uint64_t Shared = 0; Shared < 200; ++Shared) {
    BloomSignature A, B;
    A.add(Shared);
    A.add(Shared + 1000);
    B.add(Shared);
    B.add(Shared + 2000);
    EXPECT_TRUE(A.overlaps(B)) << Shared;
  }
}

TEST(BloomSignature, MostlyDistinguishesSparseSets) {
  // False positives are allowed but must be rare for small sets.
  int False = 0;
  const int Trials = 500;
  for (int I = 0; I < Trials; ++I) {
    BloomSignature A, B;
    A.add(static_cast<std::uint64_t>(I) * 2 + 1000000);
    B.add(static_cast<std::uint64_t>(I) * 2 + 5000001);
    False += A.overlaps(B);
  }
  EXPECT_LT(False, Trials / 4);
}

//===----------------------------------------------------------------------===//
// Checkpointing
//===----------------------------------------------------------------------===//

TEST(Checkpoint, SnapshotAndRestoreRoundTrips) {
  std::vector<double> A = {1.0, 2.0, 3.0};
  std::vector<std::uint32_t> B = {7, 8};
  CheckpointRegistry Reg;
  Reg.registerBuffer(A);
  Reg.registerBuffer(B);
  EXPECT_EQ(Reg.numRegions(), 2u);
  EXPECT_EQ(Reg.totalBytes(), 3 * sizeof(double) + 2 * sizeof(std::uint32_t));

  Reg.takeSnapshot();
  A[1] = -99.0;
  B[0] = 0;
  Reg.restoreSnapshot();
  EXPECT_DOUBLE_EQ(A[1], 2.0);
  EXPECT_EQ(B[0], 7u);
  EXPECT_EQ(Reg.snapshotsTaken(), 1u);
}

TEST(Checkpoint, LatestSnapshotWins) {
  std::vector<int> A = {1};
  CheckpointRegistry Reg;
  Reg.registerBuffer(A);
  Reg.takeSnapshot();
  A[0] = 2;
  Reg.takeSnapshot();
  A[0] = 3;
  Reg.restoreSnapshot();
  EXPECT_EQ(A[0], 2);
  EXPECT_EQ(Reg.snapshotsTaken(), 2u);
}

//===----------------------------------------------------------------------===//
// Runtime engine on a synthetic region
//===----------------------------------------------------------------------===//

namespace {

/// Chain region: epoch e, task t increments Cells[t]. With conflicts on,
/// one *designated* task per epoch (task 0 in even epochs, task 1 in odd
/// ones) additionally read-modify-writes a single shared slot (abstract
/// address 2) — a genuine cross-epoch, cross-worker dependence whose
/// closest pair is Tasks-2 global task numbers apart, with tasks inside
/// each epoch still mutually independent.
struct ChainRegion {
  explicit ChainRegion(std::uint32_t Epochs, std::uint32_t Tasks,
                       bool WithConflicts)
      : Epochs(Epochs), Tasks(Tasks), WithConflicts(WithConflicts),
        Cells(Tasks, 0), Shared(1) {
    Shared[0].store(1, std::memory_order_relaxed);
  }

  SpecRegion region(CheckpointRegistry &Reg) {
    Reg.registerBuffer(Cells);
    Reg.registerBuffer(Shared);
    SpecRegion R;
    R.NumEpochs = Epochs;
    R.NumTasks = [this](std::uint32_t) {
      return static_cast<std::size_t>(Tasks);
    };
    R.RunTask = [this](std::uint32_t E, std::size_t T) {
      Cells[T] += 1;
      // Relaxed atomic RMW on the shared slot: the designated tasks of
      // consecutive epochs run on different workers and may overlap
      // speculatively before the checker aborts the round — keep that
      // intentional race defined under TSan (Cells[T] stays plain: task T
      // always lands on worker T % W, so it is single-threaded).
      if (WithConflicts && T == E % 2)
        Shared[0].store(Shared[0].load(std::memory_order_relaxed) + 1 +
                            Cells[T] % 3,
                        std::memory_order_relaxed);
    };
    R.TaskAddresses = [this](std::uint32_t E, std::size_t T,
                             std::vector<std::uint64_t> &Addrs) {
      Addrs.push_back(T);
      if (WithConflicts && T == E % 2)
        Addrs.push_back(2); // the shared slot, conflated with Cells[2]
    };
    R.Checkpoints = &Reg;
    return R;
  }

  std::vector<std::uint32_t> state() const {
    std::vector<std::uint32_t> S = Cells;
    S.push_back(Shared[0].load(std::memory_order_relaxed));
    return S;
  }

  std::uint32_t Epochs, Tasks;
  bool WithConflicts;
  std::vector<std::uint32_t> Cells;
  std::vector<std::atomic<std::uint32_t>> Shared;
};

std::vector<std::uint32_t> sequentialResult(ChainRegion Proto) {
  CheckpointRegistry Reg;
  SpecRegion R = Proto.region(Reg);
  for (std::uint32_t E = 0; E < R.NumEpochs; ++E)
    for (std::size_t T = 0; T < R.NumTasks(E); ++T)
      R.RunTask(E, T);
  return Proto.state();
}

} // namespace

TEST(SpecCrossRuntime, ConflictFreeRegionMatchesSequential) {
  const auto Expected = sequentialResult(ChainRegion(60, 8, false));
  ChainRegion C(60, 8, false);
  CheckpointRegistry Reg;
  SpecRegion R = C.region(Reg);
  SpecConfig Cfg;
  Cfg.NumWorkers = 4;
  Cfg.CheckpointIntervalEpochs = 16;
  const SpecStats S = runSpecCross(R, Cfg);
  EXPECT_EQ(C.state(), Expected);
  EXPECT_EQ(S.Epochs, 60u);
  EXPECT_EQ(S.Tasks, 480u);
  EXPECT_EQ(S.Misspeculations, 0u);
  EXPECT_GT(S.CheckRequests, 0u);
  EXPECT_GT(S.CheckpointsTaken, 0u);
}

TEST(SpecCrossRuntime, ConflictingRegionRecoversToSequentialResult) {
  const auto Expected = sequentialResult(ChainRegion(50, 6, true));
  for (int Trial = 0; Trial < 5; ++Trial) {
    ChainRegion C(50, 6, true);
    CheckpointRegistry Reg;
    SpecRegion R = C.region(Reg);
    SpecConfig Cfg;
    Cfg.NumWorkers = 3;
    Cfg.CheckpointIntervalEpochs = 10;
    runSpecCross(R, Cfg);
    EXPECT_EQ(C.state(), Expected) << "trial " << Trial;
  }
}

TEST(SpecCrossRuntime, ThrottledSpeculationAvoidsMisspeculation) {
  // With the speculative range capped below the conflict distance, the
  // conflicting accesses can never reorder, so no rollback may occur.
  const auto Expected = sequentialResult(ChainRegion(50, 8, true));
  ChainRegion C(50, 8, true);
  CheckpointRegistry Reg;
  SpecRegion R = C.region(Reg);
  SpecConfig Cfg;
  Cfg.NumWorkers = 4;
  Cfg.SpecDistance = 4; // closest conflicting pair is 6 tasks apart
  const SpecStats S = runSpecCross(R, Cfg);
  EXPECT_EQ(C.state(), Expected);
  EXPECT_EQ(S.Misspeculations, 0u);
}

TEST(SpecCrossRuntime, NarrowEpochsUnderSmallSpecDistanceDoNotDeadlock) {
  // Regression: most epochs here are narrower than the worker count, so
  // workers 1..3 own no task for seven-epoch stretches. The throttle used
  // to compare leaders against those workers' stale started-task
  // watermarks; with a SpecDistance at the NumWorkers floor (what a
  // profiled plan emits for close conflicts) every worker ended up
  // spinning on every other and the round never finished. Workers now
  // publish a Prefix[E] floor on epoch entry, so this must terminate.
  const std::uint32_t Epochs = 64;
  const std::uint32_t Width = 4;
  std::vector<std::uint32_t> Cells(Epochs * Width, 0);
  CheckpointRegistry Reg;
  Reg.registerBuffer(Cells);
  SpecRegion R;
  R.NumEpochs = Epochs;
  R.NumTasks = [](std::uint32_t E) {
    return static_cast<std::size_t>(E % 8 == 0 ? 4 : 1);
  };
  R.RunTask = [&](std::uint32_t E, std::size_t T) {
    Cells[E * Width + T] += 1;
  };
  R.TaskAddresses = [&](std::uint32_t E, std::size_t T,
                        std::vector<std::uint64_t> &Addrs) {
    Addrs.push_back(E * Width + T); // unique per task: conflict-free
  };
  R.Checkpoints = &Reg;
  SpecConfig Cfg;
  Cfg.NumWorkers = 4;
  Cfg.SpecDistance = 4; // the NumWorkers floor a plan applies
  Cfg.CheckpointIntervalEpochs = 16;
  const SpecStats S = runSpecCross(R, Cfg);
  EXPECT_EQ(S.Misspeculations, 0u);
  for (std::uint32_t E = 0; E < Epochs; ++E)
    for (std::uint32_t T = 0; T < Width; ++T)
      EXPECT_EQ(Cells[E * Width + T], T < (E % 8 == 0 ? 4u : 1u) ? 1u : 0u)
          << "epoch " << E << " task " << T;
}

TEST(SpecCrossRuntime, NonSpeculativeModeMatchesSequential) {
  const auto Expected = sequentialResult(ChainRegion(40, 8, true));
  ChainRegion C(40, 8, true);
  CheckpointRegistry Reg;
  SpecRegion R = C.region(Reg);
  SpecConfig Cfg;
  Cfg.NumWorkers = 4;
  const SpecStats S = runSpecCross(R, Cfg, SpecMode::NonSpeculative);
  EXPECT_EQ(C.state(), Expected);
  EXPECT_EQ(S.Misspeculations, 0u);
  EXPECT_EQ(S.CheckRequests, 0u);
}

TEST(SpecCrossRuntime, InjectedMisspeculationRollsBackAndReexecutes) {
  const auto Expected = sequentialResult(ChainRegion(60, 8, false));
  ChainRegion C(60, 8, false);
  CheckpointRegistry Reg;
  SpecRegion R = C.region(Reg);
  SpecConfig Cfg;
  Cfg.NumWorkers = 4;
  Cfg.CheckpointIntervalEpochs = 20;
  Cfg.InjectMisspecAtEpoch = 25; // inside the second round
  const SpecStats S = runSpecCross(R, Cfg);
  EXPECT_EQ(C.state(), Expected);
  EXPECT_EQ(S.Misspeculations, 1u);
  EXPECT_EQ(S.ReexecutedEpochs, 20u);
  EXPECT_GT(S.RecoverySeconds, 0.0);
}

TEST(Checkpoint, RestoreDiscardsPartialMidEpochWrites) {
  // An abort can land mid-epoch, leaving some tasks' writes applied and
  // others not; restore must wipe the partial image wholesale.
  std::vector<std::uint32_t> Cells(8, 5);
  std::vector<std::uint32_t> Shared(1, 100);
  CheckpointRegistry Reg;
  Reg.registerBuffer(Cells);
  Reg.registerBuffer(Shared);
  Reg.takeSnapshot();
  for (std::size_t T = 0; T < Cells.size() / 2; ++T) // half an epoch lands
    Cells[T] += 7;
  Shared[0] = 1;
  Reg.restoreSnapshot();
  EXPECT_EQ(Cells, std::vector<std::uint32_t>(8, 5));
  EXPECT_EQ(Shared[0], 100u);
  // The same snapshot supports repeated restores (one round can only abort
  // once, but the registry must not consume the snapshot).
  Cells[3] = 999;
  Reg.restoreSnapshot();
  EXPECT_EQ(Cells[3], 5u);
}

TEST(SpecCrossRuntime, MidRoundAbortAtEveryEpochRestoresCheckpoint) {
  // Sweep the forced abort over every epoch so the rollback path is
  // exercised at every offset within a round: first epoch, mid-round, and
  // final short round. Rounds are [0,4), [4,8), [8,10).
  const std::uint32_t Epochs = 10;
  const auto Expected = sequentialResult(ChainRegion(Epochs, 4, false));
  const std::uint32_t RoundBegin[] = {0, 0, 0, 0, 4, 4, 4, 4, 8, 8};
  const std::uint32_t RoundSize[] = {4, 4, 4, 4, 4, 4, 4, 4, 2, 2};
  for (std::uint32_t Inject = 0; Inject < Epochs; ++Inject) {
    ChainRegion C(Epochs, 4, false);
    CheckpointRegistry Reg;
    SpecRegion R = C.region(Reg);
    SpecConfig Cfg;
    Cfg.NumWorkers = 3;
    Cfg.CheckpointIntervalEpochs = 4;
    Cfg.InjectMisspecAtEpoch = Inject;
    const SpecStats S = runSpecCross(R, Cfg);
    EXPECT_EQ(C.state(), Expected) << "inject at epoch " << Inject;
    EXPECT_EQ(S.Misspeculations, 1u) << "inject at epoch " << Inject;
    // Only the round containing the faulted epoch re-executes.
    EXPECT_EQ(S.ReexecutedEpochs, RoundSize[Inject])
        << "inject at epoch " << Inject;
    EXPECT_EQ(S.CheckpointsTaken, 3u) << "inject at epoch " << Inject;
    (void)RoundBegin;
  }
}

TEST(SpecCrossRuntime, BloomSchemeAlsoCorrect) {
  const auto Expected = sequentialResult(ChainRegion(50, 6, true));
  ChainRegion C(50, 6, true);
  CheckpointRegistry Reg;
  SpecRegion R = C.region(Reg);
  SpecConfig Cfg;
  Cfg.NumWorkers = 3;
  Cfg.Scheme = SignatureScheme::Bloom;
  runSpecCross(R, Cfg);
  EXPECT_EQ(C.state(), Expected);
}

TEST(SpecCrossRuntime, SingleWorkerNeverMisspeculates) {
  const auto Expected = sequentialResult(ChainRegion(40, 5, true));
  ChainRegion C(40, 5, true);
  CheckpointRegistry Reg;
  SpecRegion R = C.region(Reg);
  SpecConfig Cfg;
  Cfg.NumWorkers = 1;
  const SpecStats S = runSpecCross(R, Cfg);
  EXPECT_EQ(C.state(), Expected);
  EXPECT_EQ(S.Misspeculations, 0u);
}

#if CIP_TELEMETRY

TEST(SpecCrossRuntime, InjectedAbortForensicsNameTheFaultedTask) {
  // One worker makes the abort fully deterministic: tasks stream to the
  // checker in order, so the first request at or past the injected epoch is
  // exactly (epoch 7, tid 0, task 0) — and the forensics must say so.
  const auto Expected = sequentialResult(ChainRegion(10, 4, false));
  ChainRegion C(10, 4, false);
  CheckpointRegistry Reg;
  SpecRegion R = C.region(Reg);
  SpecConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.CheckpointIntervalEpochs = 5; // rounds [0,5) and [5,10)
  Cfg.InjectMisspecAtEpoch = 7;
  const SpecStats S = runSpecCross(R, Cfg);
  EXPECT_EQ(C.state(), Expected);
  ASSERT_EQ(S.Misspeculations, 1u);
  ASSERT_EQ(S.Aborts.size(), 1u);

  const telemetry::AbortRecord &A = S.Aborts[0];
  EXPECT_EQ(A.Cause, telemetry::AbortCause::Injected);
  EXPECT_STREQ(telemetry::abortCauseName(A.Cause), "injected");
  EXPECT_EQ(A.LaterEpoch, 7u);
  EXPECT_EQ(A.LaterTid, 0u);
  EXPECT_EQ(A.LaterTask, 0u);
  EXPECT_STREQ(A.Scheme, "range");
  EXPECT_EQ(A.RoundFirstEpoch, 5u);
  EXPECT_EQ(A.RoundEndEpoch, 10u);
  // The rollback discarded at least the faulted task itself.
  EXPECT_GE(A.TasksUnwound, 1u);
  EXPECT_GT(A.NsSinceCheckpoint, 0u);
}

namespace {

/// Every task of every epoch read-modify-writes one shared slot: with
/// TM-style (same-epoch) validation, any two concurrent tasks of different
/// workers overlap, so the very first checked request misspeculates.
struct AlwaysConflictRegion {
  explicit AlwaysConflictRegion(std::uint32_t Epochs, std::uint32_t Tasks)
      : Epochs(Epochs), Tasks(Tasks), Shared(1) {}

  SpecRegion region(CheckpointRegistry &Reg) {
    Reg.registerBuffer(Shared);
    SpecRegion R;
    R.NumEpochs = Epochs;
    R.NumTasks = [this](std::uint32_t) {
      return static_cast<std::size_t>(Tasks);
    };
    // Relaxed atomic RMW: the concurrent speculative attempts race on this
    // slot by design (that is the conflict under test), and the runtime
    // rolls them back — keep the race defined so TSan sees the engine's
    // recovery, not the workload's intentional collision.
    R.RunTask = [this](std::uint32_t, std::size_t) {
      Shared[0].fetch_add(1, std::memory_order_relaxed);
    };
    R.TaskAddresses = [](std::uint32_t, std::size_t,
                         std::vector<std::uint64_t> &Addrs) {
      Addrs.push_back(0);
    };
    R.Checkpoints = &Reg;
    return R;
  }

  std::uint32_t Epochs, Tasks;
  std::vector<std::atomic<std::uint32_t>> Shared;
};

} // namespace

TEST(SpecCrossRuntime, OverlapAbortForensicsCarryAConfirmedConflict) {
  AlwaysConflictRegion C(12, 4);
  CheckpointRegistry Reg;
  SpecRegion R = C.region(Reg);
  SpecConfig Cfg;
  Cfg.NumWorkers = 2;
  Cfg.CheckpointIntervalEpochs = 6;
  Cfg.TmStyleValidation = true; // same-epoch pairs conflict too
  const SpecStats S = runSpecCross(R, Cfg);
  // Every speculative attempt hits a real conflict; recovery re-executes
  // the round non-speculatively, so the result still matches sequential.
  EXPECT_EQ(C.Shared[0].load(), 12u * 4u);
  ASSERT_GE(S.Misspeculations, 1u);
  ASSERT_EQ(S.Aborts.size(), S.Misspeculations);

  for (const telemetry::AbortRecord &A : S.Aborts) {
    EXPECT_EQ(A.Cause, telemetry::AbortCause::SignatureOverlap);
    EXPECT_STREQ(A.Scheme, "range");
    // Both tasks genuinely touch address 0, and range signatures never
    // false-positive, so the exact recheck must confirm every abort.
    EXPECT_TRUE(A.ExactConfirmed);
    EXPECT_NE(A.EarlierTid, A.LaterTid);
    EXPECT_LE(A.EarlierEpoch, A.LaterEpoch);
    EXPECT_LE(A.RoundFirstEpoch, A.EarlierEpoch);
    EXPECT_LT(A.LaterEpoch, A.RoundEndEpoch);
    EXPECT_GE(A.TasksUnwound, 1u);
  }
}

#endif // CIP_TELEMETRY

//===----------------------------------------------------------------------===//
// Profiler
//===----------------------------------------------------------------------===//

TEST(Profiler, FindsExactMinimumDistance) {
  // Abstract address 2 is touched by task 2 (global e*8+2) every epoch and
  // by the designated task of the next epoch (global e*8+8 when that epoch
  // is even): the closest pair is 8-2 = 6 apart. All other addresses are
  // column-aligned at distance exactly 8.
  ChainRegion C(30, 8, true);
  CheckpointRegistry Reg;
  SpecRegion R = C.region(Reg);
  const ProfileResult P = profileRegion(R, /*NumWorkers=*/0);
  EXPECT_FALSE(P.conflictFree());
  EXPECT_EQ(P.Epochs, 30u);
  EXPECT_EQ(P.Tasks, 240u);
  EXPECT_GT(P.CrossEpochConflicts, 0u);
  EXPECT_EQ(P.MinDependenceDistance, 6u);
}

TEST(Profiler, ThreadAwareProfileIgnoresSameWorkerConflicts) {
  // Without the conflicting column, every dependence is column-aligned
  // (task t -> task t next epoch); with a static assignment those live on
  // one worker and must not count (the paper's "*" rows).
  ChainRegion C(30, 8, false);
  CheckpointRegistry Reg;
  SpecRegion R = C.region(Reg);
  const ProfileResult Oblivious = profileRegion(R, 0);
  EXPECT_FALSE(Oblivious.conflictFree());

  ChainRegion C2(30, 8, false);
  CheckpointRegistry Reg2;
  SpecRegion R2 = C2.region(Reg2);
  const ProfileResult Aware = profileRegion(R2, /*NumWorkers=*/4);
  EXPECT_TRUE(Aware.conflictFree());
  EXPECT_EQ(Aware.recommendedSpecDistance(4),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Profiler, RecommendationClampsToWorkerCount) {
  ProfileResult P;
  P.MinDependenceDistance = 3;
  EXPECT_EQ(P.recommendedSpecDistance(8), 8u);
  P.MinDependenceDistance = 100;
  EXPECT_EQ(P.recommendedSpecDistance(8), 98u);
}

TEST(SmallSetSignature, ExactUnderCapacity) {
  SmallSetSignature A, B;
  A.add(10);
  A.add(500);
  B.add(11);
  B.add(499);
  EXPECT_FALSE(A.overlaps(B)); // ranges overlap but sets are disjoint
  B.add(500);
  EXPECT_TRUE(A.overlaps(B));
}

TEST(SmallSetSignature, DegradesToRangeOnOverflow) {
  SmallSetSignature A, B;
  for (std::uint64_t I = 0; I < 20; ++I)
    A.add(I * 10); // overflows the 8-slot capacity
  EXPECT_TRUE(A.Overflowed);
  B.add(5); // inside A's [0, 190] range but not in A's set
  EXPECT_TRUE(A.overlaps(B)); // conservative once overflowed
  B.clear();
  B.add(1000);
  EXPECT_FALSE(A.overlaps(B)); // still exact outside the range
}

TEST(SmallSetSignature, DuplicatesDoNotConsumeCapacity) {
  SmallSetSignature A;
  for (int I = 0; I < 100; ++I)
    A.add(7);
  EXPECT_FALSE(A.Overflowed);
  EXPECT_EQ(A.Count, 1u);
}

TEST(SpecCrossRuntime, SmallSetSchemeAlsoCorrect) {
  const auto Expected = sequentialResult(ChainRegion(50, 6, true));
  ChainRegion C(50, 6, true);
  CheckpointRegistry Reg;
  SpecRegion R = C.region(Reg);
  SpecConfig Cfg;
  Cfg.NumWorkers = 3;
  Cfg.Scheme = SignatureScheme::SmallSet;
  runSpecCross(R, Cfg);
  EXPECT_EQ(C.state(), Expected);
}

//===- tests/DomoreTests.cpp - Unit tests for the DOMORE runtime ---------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "domore/DomoreRuntime.h"
#include "domore/Schedule.h"
#include "domore/ShadowMemory.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>

using namespace cip;
using namespace cip::domore;

TEST(ShadowMemory, DenseLookupAndUpdate) {
  DenseShadowMemory S(16);
  EXPECT_FALSE(S.lookup(3).valid());
  S.update(3, /*Tid=*/2, /*Iter=*/7);
  const ShadowEntry E = S.lookup(3);
  ASSERT_TRUE(E.valid());
  EXPECT_EQ(E.Tid, 2u);
  EXPECT_EQ(E.Iter, 7);
  S.clear();
  EXPECT_FALSE(S.lookup(3).valid());
}

TEST(ShadowMemory, HashExactKeysSurviveGrowth) {
  HashShadowMemory S(/*ExpectedEntries=*/4);
  // Far more entries than the initial capacity forces several growths.
  for (std::uint64_t A = 0; A < 1000; ++A)
    S.update(A * 0x9e3779b97f4a7c15ULL, static_cast<std::uint32_t>(A % 7),
             static_cast<std::int64_t>(A));
  EXPECT_EQ(S.size(), 1000u);
  for (std::uint64_t A = 0; A < 1000; ++A) {
    const ShadowEntry E = S.lookup(A * 0x9e3779b97f4a7c15ULL);
    ASSERT_TRUE(E.valid());
    EXPECT_EQ(E.Tid, A % 7);
    EXPECT_EQ(E.Iter, static_cast<std::int64_t>(A));
  }
  EXPECT_FALSE(S.lookup(12345).valid());
}

TEST(ShadowMemory, HashUpdateOverwrites) {
  HashShadowMemory S;
  S.update(42, 1, 10);
  S.update(42, 3, 20);
  const ShadowEntry E = S.lookup(42);
  EXPECT_EQ(E.Tid, 3u);
  EXPECT_EQ(E.Iter, 20);
  EXPECT_EQ(S.size(), 1u);
}

TEST(SchedulePolicy, RoundRobinCycles) {
  RoundRobinPolicy P(3);
  std::vector<std::uint64_t> NoAddrs;
  EXPECT_EQ(P.pick(0, NoAddrs), 0u);
  EXPECT_EQ(P.pick(1, NoAddrs), 1u);
  EXPECT_EQ(P.pick(2, NoAddrs), 2u);
  EXPECT_EQ(P.pick(3, NoAddrs), 0u);
}

TEST(SchedulePolicy, OwnerComputePartitionsSpace) {
  OwnerComputePolicy P(/*NumWorkers=*/4, /*SpaceSize=*/100);
  const std::uint64_t A0[] = {0}, A99[] = {99}, A25[] = {25};
  EXPECT_EQ(P.pick(0, A0), 0u);
  EXPECT_EQ(P.pick(0, A25), 1u);
  EXPECT_EQ(P.pick(0, A99), 3u);
}

TEST(SchedulePolicy, HashOwnerIsStable) {
  HashOwnerPolicy P(8);
  const std::uint64_t A[] = {777};
  const std::uint32_t First = P.pick(0, A);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(P.pick(I, A), First);
  EXPECT_LT(First, 8u);
}

namespace {

/// A synthetic loop nest: NumInv invocations of IterPerInv iterations; each
/// iteration appends its combined iteration number to the per-element log of
/// the element it touches. Element choice is pseudo-random, so the same
/// element is frequently touched by different invocations — the appends must
/// come out in combined-iteration order iff DOMORE enforces dependences.
struct ConflictHarness {
  explicit ConflictHarness(std::uint32_t NumInv, std::uint32_t IterPerInv,
                           std::uint64_t Space, std::uint64_t Seed)
      : NumInv(NumInv), IterPerInv(IterPerInv), Space(Space) {
    Xoshiro256StarStar Rng(Seed);
    Elements.resize(static_cast<std::size_t>(NumInv) * IterPerInv);
    // Distinct elements within one invocation (DOALL inner loop): sample
    // without replacement per invocation.
    std::vector<std::uint64_t> Pool(Space);
    std::iota(Pool.begin(), Pool.end(), 0u);
    for (std::uint32_t Inv = 0; Inv < NumInv; ++Inv) {
      for (std::uint32_t It = 0; It < IterPerInv; ++It) {
        const std::size_t Pick = It + Rng.nextBelow(Space - It);
        std::swap(Pool[It], Pool[Pick]);
        Elements[static_cast<std::size_t>(Inv) * IterPerInv + It] = Pool[It];
      }
    }
    Log.resize(Space);
  }

  LoopNest nest() {
    LoopNest N;
    N.NumInvocations = NumInv;
    N.AddressSpaceSize = Space;
    N.BeginInvocation = [this](std::uint32_t) {
      return static_cast<std::size_t>(IterPerInv);
    };
    N.ComputeAddr = [this](std::uint32_t Inv, std::size_t It,
                           std::vector<std::uint64_t> &Addrs) {
      Addrs.push_back(elementOf(Inv, It));
    };
    N.Work = [this](std::uint32_t Inv, std::size_t It) {
      const std::int64_t Combined =
          static_cast<std::int64_t>(Inv) * IterPerInv +
          static_cast<std::int64_t>(It);
      Log[elementOf(Inv, It)].push_back(Combined);
    };
    return N;
  }

  std::uint64_t elementOf(std::uint32_t Inv, std::size_t It) const {
    return Elements[static_cast<std::size_t>(Inv) * IterPerInv + It];
  }

  /// True if every element's log is strictly increasing — i.e., conflicting
  /// iterations executed in combined-iteration (program) order.
  bool ordered() const {
    for (const auto &L : Log)
      for (std::size_t I = 1; I < L.size(); ++I)
        if (L[I - 1] >= L[I])
          return false;
    return true;
  }

  std::uint64_t totalAppends() const {
    std::uint64_t N = 0;
    for (const auto &L : Log)
      N += L.size();
    return N;
  }

  std::uint32_t NumInv, IterPerInv;
  std::uint64_t Space;
  std::vector<std::uint64_t> Elements;
  std::vector<std::vector<std::int64_t>> Log;
};

} // namespace

TEST(DomoreRuntime, ExecutesEveryIterationExactlyOnce) {
  ConflictHarness H(50, 8, 64, 123);
  DomoreConfig C;
  C.NumWorkers = 3;
  const DomoreStats S = runDomore(H.nest(), C);
  EXPECT_EQ(S.Invocations, 50u);
  EXPECT_EQ(S.Iterations, 400u);
  EXPECT_EQ(H.totalAppends(), 400u);
}

TEST(DomoreRuntime, EnforcesCrossInvocationOrder) {
  // A small element space makes cross-invocation conflicts dense.
  for (std::uint64_t Seed : {1u, 2u, 3u, 4u, 5u}) {
    ConflictHarness H(120, 6, 12, Seed);
    DomoreConfig C;
    C.NumWorkers = 4;
    const DomoreStats S = runDomore(H.nest(), C);
    EXPECT_TRUE(H.ordered()) << "seed " << Seed;
    EXPECT_GT(S.SyncConditions, 0u) << "seed " << Seed;
  }
}

TEST(DomoreRuntime, SingleWorkerDegeneratesToSequential) {
  ConflictHarness H(30, 5, 8, 9);
  DomoreConfig C;
  C.NumWorkers = 1;
  runDomore(H.nest(), C);
  EXPECT_TRUE(H.ordered());
}

TEST(DomoreRuntime, OwnerComputePolicyStillCorrect) {
  ConflictHarness H(80, 6, 24, 77);
  DomoreConfig C;
  C.NumWorkers = 3;
  C.Policy = PolicyKind::OwnerCompute;
  runDomore(H.nest(), C);
  EXPECT_TRUE(H.ordered());
  EXPECT_EQ(H.totalAppends(), 480u);
}

TEST(DomoreRuntime, HashOwnerPolicyStillCorrect) {
  ConflictHarness H(80, 6, 24, 78);
  DomoreConfig C;
  C.NumWorkers = 3;
  C.Policy = PolicyKind::HashOwner;
  runDomore(H.nest(), C);
  EXPECT_TRUE(H.ordered());
}

TEST(DomoreRuntime, TinyQueuesExerciseBackpressure) {
  ConflictHarness H(60, 8, 16, 5);
  DomoreConfig C;
  C.NumWorkers = 2;
  C.QueueCapacity = 4; // scheduler must stall on full queues, no deadlock
  runDomore(H.nest(), C);
  EXPECT_TRUE(H.ordered());
  EXPECT_EQ(H.totalAppends(), 480u);
}

TEST(DomoreRuntime, MaxBatchDoesNotChangeSemantics) {
  // Batched dispatch is a pure transport optimization: the conflicts the
  // shadow memory detects, the per-element append orders, and the iteration
  // counts must be identical whether the scheduler sends one iteration per
  // message or coalesces runs of 64. (Under CIP_MAX_BATCH the env value
  // overrides every config below, which degenerates this into comparing a
  // run against itself — still a valid, if weaker, check.)
  const bool EnvPinned = std::getenv("CIP_MAX_BATCH") != nullptr;
  std::uint64_t RefSyncs = 0;
  std::vector<std::vector<std::int64_t>> RefLog;
  for (const std::size_t MaxBatch : {std::size_t{1}, std::size_t{4},
                                     std::size_t{64}}) {
    ConflictHarness H(120, 6, 12, /*Seed=*/99);
    DomoreConfig C;
    C.NumWorkers = 4;
    C.MaxBatch = MaxBatch;
    const DomoreStats S = runDomore(H.nest(), C);
    EXPECT_TRUE(H.ordered()) << "MaxBatch " << MaxBatch;
    EXPECT_EQ(S.Iterations, 720u) << "MaxBatch " << MaxBatch;
    EXPECT_EQ(H.totalAppends(), 720u) << "MaxBatch " << MaxBatch;
    if (MaxBatch == 1) {
      RefSyncs = S.SyncConditions;
      RefLog = H.Log;
      EXPECT_GT(RefSyncs, 0u);
    } else {
      EXPECT_EQ(S.SyncConditions, RefSyncs) << "MaxBatch " << MaxBatch;
      EXPECT_EQ(H.Log, RefLog) << "MaxBatch " << MaxBatch;
    }
#if CIP_TELEMETRY
    // Every iteration is dispatched in exactly one WorkRange: the batch
    // sizes sum to the iteration count and never exceed the cap.
    EXPECT_EQ(S.DispatchBatch.SumNs, S.Iterations) << "MaxBatch " << MaxBatch;
    if (!EnvPinned) {
      EXPECT_LE(S.DispatchBatch.MaxNs, MaxBatch) << "MaxBatch " << MaxBatch;
      if (MaxBatch == 1)
        EXPECT_EQ(S.DispatchBatch.count(), S.Iterations);
    }
#else
    (void)EnvPinned;
#endif
  }
}

TEST(DomoreRuntime, TinyQueuesWithBatchingStillOrdered) {
  // Batches larger than the queue capacity force partial batch produces and
  // scheduler backpressure in the same run.
  ConflictHarness H(60, 8, 16, 6);
  DomoreConfig C;
  C.NumWorkers = 2;
  C.QueueCapacity = 4;
  C.MaxBatch = 64;
  runDomore(H.nest(), C);
  EXPECT_TRUE(H.ordered());
  EXPECT_EQ(H.totalAppends(), 480u);
}

TEST(DomoreRuntime, DuplicatedSchedulerVariantOrdersConflicts) {
  for (std::uint64_t Seed : {11u, 12u, 13u}) {
    ConflictHarness H(100, 6, 12, Seed);
    DomoreConfig C;
    C.NumWorkers = 4;
    const DomoreStats S = runDomoreDuplicated(H.nest(), C);
    EXPECT_TRUE(H.ordered()) << "seed " << Seed;
    EXPECT_EQ(S.Iterations, 600u);
  }
}

#if CIP_TELEMETRY

TEST(DomoreRuntime, HeatmapPairsReconcileWithSyncConditions) {
  // Conflict attribution must not invent or lose conflicts: the heatmap's
  // (depTid -> tid) totals are the same events as the sync_conditions
  // counter, bucketed by worker pair.
  for (std::uint64_t Seed : {21u, 22u, 23u}) {
    ConflictHarness H(120, 6, 12, Seed);
    DomoreConfig C;
    C.NumWorkers = 4;
    const DomoreStats S = runDomore(H.nest(), C);
    EXPECT_GT(S.SyncConditions, 0u) << "seed " << Seed;
    std::uint64_t PairSum = 0;
    for (const telemetry::HeatmapPair &P : S.ConflictPairs) {
      // The scheduler never syncs a worker on itself.
      EXPECT_NE(P.DepTid, P.Tid) << "seed " << Seed;
      EXPECT_LT(P.Tid, C.NumWorkers) << "seed " << Seed;
      EXPECT_GT(P.Count, 0u) << "seed " << Seed;
      PairSum += P.Count;
    }
    EXPECT_EQ(PairSum, S.SyncConditions) << "seed " << Seed;
  }
}

TEST(DomoreRuntime, DuplicatedVariantHeatmapAlsoReconciles) {
  // The duplicated-scheduler variant computes the schedule W times but must
  // still attribute each conflict exactly once (owner-only recording).
  ConflictHarness H(100, 6, 12, 31);
  DomoreConfig C;
  C.NumWorkers = 4;
  const DomoreStats S = runDomoreDuplicated(H.nest(), C);
  EXPECT_GT(S.SyncConditions, 0u);
  std::uint64_t PairSum = 0;
  for (const telemetry::HeatmapPair &P : S.ConflictPairs) {
    EXPECT_NE(P.DepTid, P.Tid);
    PairSum += P.Count;
  }
  EXPECT_EQ(PairSum, S.SyncConditions);
}

TEST(DomoreRuntime, WorkerWaitHistogramAgreesWithCounter) {
  ConflictHarness H(120, 6, 12, 41);
  DomoreConfig C;
  C.NumWorkers = 4;
  const DomoreStats S = runDomore(H.nest(), C);
  // Every histogram entry is one genuine wait on `latestFinished`: waits
  // already satisfied at message arrival record nothing, so the entry count
  // never exceeds the sync conditions, and the distribution's total time is
  // exactly the flat worker_wait_ns counter (same probe, same clock reads).
  EXPECT_LE(S.WorkerWait.count(), S.SyncConditions);
  EXPECT_EQ(S.WorkerWait.SumNs,
            S.Telemetry.get(telemetry::Counter::WorkerWaitNs));
}

#endif // CIP_TELEMETRY

TEST(DomoreRuntime, SchedulerWaitsForPrologueDependences) {
  // The "prologue" reads element 0; iterations also touch element 0. The
  // scheduler must wait for in-flight iterations before each invocation.
  constexpr std::uint32_t NumInv = 40;
  std::vector<std::int64_t> Element0Log;
  bool PrologueSawPartialState = false;

  LoopNest N;
  N.NumInvocations = NumInv;
  N.AddressSpaceSize = 4;
  N.BeginInvocation = [&](std::uint32_t Inv) -> std::size_t {
    // All previously dispatched iterations touched element 0; by the time
    // the sequential code runs they must all have completed and be visible.
    if (Inv > 0 && Element0Log.size() != static_cast<std::size_t>(Inv) * 2)
      PrologueSawPartialState = true;
    return 2;
  };
  N.ComputeAddr = [](std::uint32_t, std::size_t,
                     std::vector<std::uint64_t> &Addrs) {
    Addrs.push_back(0);
  };
  N.Work = [&](std::uint32_t Inv, std::size_t It) {
    Element0Log.push_back(static_cast<std::int64_t>(Inv) * 2 +
                          static_cast<std::int64_t>(It));
  };
  N.PrologueAddresses = [](std::uint32_t, std::vector<std::uint64_t> &Addrs) {
    Addrs.push_back(0);
  };
  DomoreConfig C;
  C.NumWorkers = 3;
  const DomoreStats S = runDomore(N, C);
  EXPECT_FALSE(PrologueSawPartialState);
  EXPECT_EQ(Element0Log.size(), NumInv * 2u);
  EXPECT_GT(S.PrologueWaits, 0u);
}

TEST(DomoreRuntime, StatsReportSchedulerRatio) {
  ConflictHarness H(50, 8, 64, 21);
  DomoreConfig C;
  C.NumWorkers = 2;
  const DomoreStats S = runDomore(H.nest(), C);
  EXPECT_GT(S.TotalSeconds, 0.0);
  EXPECT_GE(S.schedulerRatioPercent(), 0.0);
  EXPECT_LE(S.schedulerRatioPercent(), 100.0);
}

//===- tests/SupportTests.cpp - Unit tests for src/support ---------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "support/Barrier.h"
#include "support/Rng.h"
#include "support/SPSCQueue.h"
#include "support/Stats.h"
#include "support/ThreadGroup.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>

using namespace cip;

TEST(Rng, Deterministic) {
  Xoshiro256StarStar A(42), B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, SeedsDiffer) {
  Xoshiro256StarStar A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I < 16; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(Rng, BoundedValuesInRange) {
  Xoshiro256StarStar R(7);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(R.nextBelow(13), 13u);
}

TEST(Rng, DoublesInUnitInterval) {
  Xoshiro256StarStar R(7);
  for (int I = 0; I < 10000; ++I) {
    const double X = R.nextDouble();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Xoshiro256StarStar R(11);
  int Hits = 0;
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    Hits += R.nextBool(0.724);
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.724, 0.01);
}

TEST(Stats, MeanGeomeanMedian) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(minOf({4.0, 1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, EmptySamplesReturnZero) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(minOf({}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, GeomeanSkipsNonPositiveSamples) {
  // Non-positive "speedups" are upstream measurement errors; they must not
  // poison the aggregate (and must not abort in debug builds).
  EXPECT_NEAR(geomean({1.0, 0.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({-3.0, 1.0, 4.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean({0.0, -1.0}), 0.0);
}

TEST(Timer, MeasuresElapsedTime) {
  const double S = timeSeconds([] {
    volatile double X = 1.0;
    for (int I = 0; I < 100000; ++I)
      X = X * 1.0000001;
  });
  EXPECT_GT(S, 0.0);
  EXPECT_LT(S, 5.0);
}

TEST(SPSCQueue, CapacityRoundsUpToPowerOfTwo) {
  SPSCQueue<int> Q(100);
  EXPECT_EQ(Q.capacity(), 128u);
}

TEST(SPSCQueue, FifoOrderSingleThread) {
  SPSCQueue<int> Q(16);
  for (int I = 0; I < 10; ++I)
    EXPECT_TRUE(Q.tryProduce(I));
  for (int I = 0; I < 10; ++I) {
    int V = -1;
    EXPECT_TRUE(Q.tryConsume(V));
    EXPECT_EQ(V, I);
  }
  int V;
  EXPECT_FALSE(Q.tryConsume(V));
}

TEST(SPSCQueue, RejectsWhenFull) {
  SPSCQueue<int> Q(4);
  for (int I = 0; I < 4; ++I)
    EXPECT_TRUE(Q.tryProduce(I));
  EXPECT_FALSE(Q.tryProduce(99));
  int V;
  EXPECT_TRUE(Q.tryConsume(V));
  EXPECT_TRUE(Q.tryProduce(99));
}

TEST(SPSCQueue, RoundUpPow2EdgeCases) {
  constexpr std::size_t MaxPow2 =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
  EXPECT_EQ(SPSCQueue<int>::roundUpPow2(0), 1u);
  EXPECT_EQ(SPSCQueue<int>::roundUpPow2(1), 1u);
  EXPECT_EQ(SPSCQueue<int>::roundUpPow2(2), 2u);
  EXPECT_EQ(SPSCQueue<int>::roundUpPow2(3), 4u);
  EXPECT_EQ(SPSCQueue<int>::roundUpPow2(1000), 1024u);
  EXPECT_EQ(SPSCQueue<int>::roundUpPow2(MaxPow2), MaxPow2);
  // Beyond the largest power of two the old shift loop spun forever; the
  // result now saturates instead.
  EXPECT_EQ(SPSCQueue<int>::roundUpPow2(MaxPow2 + 1), MaxPow2);
  EXPECT_EQ(SPSCQueue<int>::roundUpPow2(
                std::numeric_limits<std::size_t>::max()),
            MaxPow2);
}

TEST(SPSCQueue, DegenerateCapacitiesStillWork) {
  // MinCapacity 0 and 1 both round to a single-slot queue.
  for (std::size_t MinCap : {std::size_t{0}, std::size_t{1}}) {
    SPSCQueue<int> Q(MinCap);
    EXPECT_EQ(Q.capacity(), 1u);
    EXPECT_TRUE(Q.tryProduce(7));
    EXPECT_FALSE(Q.tryProduce(8));
    int V = 0;
    EXPECT_TRUE(Q.tryConsume(V));
    EXPECT_EQ(V, 7);
    EXPECT_TRUE(Q.empty());
  }
}

TEST(SPSCQueue, BatchProduceAcceptsPartialRuns) {
  SPSCQueue<int> Q(4);
  const int Items[6] = {0, 1, 2, 3, 4, 5};
  // Only 4 slots: a 6-element batch is accepted partially, not rejected.
  EXPECT_EQ(Q.tryProduceBatch(Items, 6), 4u);
  EXPECT_EQ(Q.tryProduceBatch(Items + 4, 2), 0u);
  int Out[8] = {};
  EXPECT_EQ(Q.consumeAvailable(Out, 8), 4u);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Out[I], I);
  // Drained queue: batch consume reports empty rather than blocking.
  EXPECT_EQ(Q.consumeAvailable(Out, 8), 0u);
  // A zero-length batch is a no-op on both sides.
  EXPECT_EQ(Q.tryProduceBatch(Items, 0), 0u);
  EXPECT_TRUE(Q.empty());
}

TEST(SPSCQueue, BatchAndSingleOpsInterleave) {
  SPSCQueue<int> Q(8);
  const int Items[3] = {10, 11, 12};
  EXPECT_TRUE(Q.tryProduce(9));
  EXPECT_EQ(Q.tryProduceBatch(Items, 3), 3u);
  int V = 0;
  EXPECT_TRUE(Q.tryConsume(V));
  EXPECT_EQ(V, 9);
  int Out[4] = {};
  EXPECT_EQ(Q.consumeAvailable(Out, 2), 2u);
  EXPECT_EQ(Out[0], 10);
  EXPECT_EQ(Out[1], 11);
  EXPECT_TRUE(Q.tryConsume(V));
  EXPECT_EQ(V, 12);
  EXPECT_TRUE(Q.empty());
}

TEST(SPSCQueue, BatchProduceSingleConsumeStress) {
  SPSCQueue<std::uint64_t> Q(64);
  constexpr std::uint64_t N = 200000;
  std::thread Producer([&] {
    std::uint64_t Buf[13];
    std::uint64_t Next = 0;
    while (Next < N) {
      std::uint64_t K = 0;
      while (K < 13 && Next + K < N)
        Buf[K] = Next + K, ++K;
      std::uint64_t Sent = 0;
      while (Sent < K)
        Sent += Q.tryProduceBatch(Buf + Sent, K - Sent);
      Next += K;
    }
  });
  bool Ordered = true;
  for (std::uint64_t I = 0; I < N; ++I)
    Ordered &= Q.consume() == I;
  Producer.join();
  EXPECT_TRUE(Ordered);
  EXPECT_TRUE(Q.empty());
}

TEST(SPSCQueue, SingleProduceBatchDrainStress) {
  SPSCQueue<std::uint64_t> Q(64);
  constexpr std::uint64_t N = 200000;
  std::thread Producer([&] {
    for (std::uint64_t I = 0; I < N; ++I)
      Q.produce(I);
  });
  std::uint64_t Buf[17];
  std::uint64_t Expected = 0;
  bool Ordered = true;
  while (Expected < N) {
    const std::size_t Got = Q.consumeAvailable(Buf, 17);
    for (std::size_t I = 0; I < Got; ++I)
      Ordered &= Buf[I] == Expected++;
  }
  Producer.join();
  EXPECT_TRUE(Ordered);
  EXPECT_TRUE(Q.empty());
}

TEST(SPSCQueue, TwoThreadStressPreservesSequence) {
  SPSCQueue<std::uint64_t> Q(256);
  constexpr std::uint64_t N = 200000;
  std::thread Producer([&] {
    for (std::uint64_t I = 0; I < N; ++I)
      Q.produce(I);
  });
  std::uint64_t Expected = 0;
  bool Ordered = true;
  for (std::uint64_t I = 0; I < N; ++I)
    Ordered &= Q.consume() == Expected++;
  Producer.join();
  EXPECT_TRUE(Ordered);
  EXPECT_TRUE(Q.empty());
}

template <typename BarrierT> static void checkBarrierPhases() {
  constexpr unsigned Threads = 4;
  constexpr int Phases = 50;
  BarrierT Bar(Threads);
  std::atomic<int> Counter{0};
  std::atomic<bool> Violation{false};
  runThreads(Threads, [&](unsigned) {
    for (int P = 0; P < Phases; ++P) {
      Counter.fetch_add(1);
      Bar.wait();
      // Between two waits every thread must observe the full increment.
      if (Counter.load() < (P + 1) * static_cast<int>(Threads))
        Violation.store(true);
      Bar.wait();
    }
  });
  EXPECT_FALSE(Violation.load());
  EXPECT_EQ(Counter.load(), Phases * static_cast<int>(Threads));
}

TEST(Barrier, PthreadBarrierSynchronizesPhases) {
  checkBarrierPhases<PthreadBarrier>();
}

TEST(Barrier, SpinBarrierSynchronizesPhases) {
  checkBarrierPhases<SpinBarrier>();
}

TEST(Barrier, InstrumentedBarrierAccountsIdleTime) {
  InstrumentedBarrier<PthreadBarrier> Bar(2);
  runThreads(2, [&](unsigned Tid) {
    if (Tid == 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Bar.wait(Tid);
  });
  // Thread 0 idled at the barrier for roughly the sleep duration.
  EXPECT_GT(Bar.idleNanos(0), 5'000'000u);
  EXPECT_GT(Bar.totalIdleNanos(), Bar.idleNanos(1));
  Bar.resetIdle();
  EXPECT_EQ(Bar.totalIdleNanos(), 0u);
}

template <typename BarrierT> static void checkBarrierGenerationReuse(int Rounds) {
  // Regression coverage for generation reuse: a fast thread re-arriving at
  // the barrier while a slow thread is still leaving the previous
  // generation (the sense-reversal window). Each thread publishes its round
  // before waiting; after the wait, every thread must observe every other
  // thread's publication for that round — across many generations of the
  // *same* barrier object.
  constexpr unsigned Threads = 4;
  BarrierT Bar(Threads);
  std::atomic<int> Slot[Threads] = {};
  std::atomic<bool> Violation{false};
  runThreads(Threads, [&](unsigned Tid) {
    for (int R = 1; R <= Rounds; ++R) {
      Slot[Tid].store(R, std::memory_order_relaxed);
      Bar.wait();
      for (unsigned T = 0; T < Threads; ++T)
        if (Slot[T].load(std::memory_order_relaxed) < R)
          Violation.store(true);
      // Second wait keeps round R+1 publications out of the check window.
      Bar.wait();
    }
  });
  EXPECT_FALSE(Violation.load());
  for (unsigned T = 0; T < Threads; ++T)
    EXPECT_EQ(Slot[T].load(), Rounds);
}

TEST(Barrier, SpinBarrierReusableAcrossManyGenerations) {
  checkBarrierGenerationReuse<SpinBarrier>(2000);
}

TEST(Barrier, PthreadBarrierReusableAcrossManyGenerations) {
  checkBarrierGenerationReuse<PthreadBarrier>(500);
}

TEST(ThreadGroup, SpawnAndJoinIndexedThreads) {
  std::atomic<unsigned> Mask{0};
  ThreadGroup G;
  for (int I = 0; I < 4; ++I)
    G.spawn([&](unsigned Tid) { Mask.fetch_or(1u << Tid); });
  G.joinAll();
  EXPECT_EQ(Mask.load(), 0b1111u);
  EXPECT_EQ(G.size(), 0u);
}

TEST(ThreadPool, RunsEveryLaneIndexExactlyOnce) {
  std::atomic<unsigned> Mask{0};
  std::atomic<unsigned> Calls{0};
  runThreads(6, [&](unsigned Tid) {
    Mask.fetch_or(1u << Tid);
    Calls.fetch_add(1);
  });
  EXPECT_EQ(Mask.load(), 0b111111u);
  EXPECT_EQ(Calls.load(), 6u);
}

TEST(ThreadPool, ReusesLanesAcrossRegionsOfVaryingWidth) {
  // The pool keeps lanes parked between regions; shrinking and regrowing
  // the region width must still run exactly the requested indices.
  for (unsigned Width : {4u, 1u, 7u, 2u, 7u}) {
    std::atomic<unsigned> Mask{0};
    runThreads(Width, [&](unsigned Tid) { Mask.fetch_or(1u << Tid); });
    EXPECT_EQ(Mask.load(), (1u << Width) - 1);
  }
}

TEST(ThreadPool, NestedRegionsFallBackWithoutDeadlock) {
  // A pool lane that itself calls runThreads must not wait on the pool it
  // occupies; the inner region runs on freshly spawned threads.
  std::atomic<unsigned> Inner{0};
  runThreads(2, [&](unsigned) {
    runThreads(3, [&](unsigned) { Inner.fetch_add(1); });
  });
  EXPECT_EQ(Inner.load(), 6u);
}

TEST(ThreadPool, BypassSubstrateRunsEveryIndex) {
  // The fuzz driver flips the bypass between runs so one process covers
  // both thread substrates; the spawned fallback must honor the same
  // contract as the pooled path.
  const bool Prev = ThreadPool::bypassed();
  ThreadPool::setBypass(true);
  EXPECT_TRUE(ThreadPool::bypassed());
  std::atomic<unsigned> Mask{0};
  runThreads(5, [&](unsigned Tid) { Mask.fetch_or(1u << Tid); });
  EXPECT_EQ(Mask.load(), 0b11111u);
  ThreadPool::setBypass(Prev);
  EXPECT_EQ(ThreadPool::bypassed(), Prev);
}

TEST(ThreadPool, ConcurrentTopLevelRegionsSerialize) {
  // Two non-pool threads racing into runThreads: regions serialize on the
  // pool, both complete, and every index of each region runs.
  std::atomic<unsigned> Total{0};
  std::thread A([&] {
    for (int R = 0; R < 20; ++R)
      runThreads(3, [&](unsigned) { Total.fetch_add(1); });
  });
  std::thread B([&] {
    for (int R = 0; R < 20; ++R)
      runThreads(2, [&](unsigned) { Total.fetch_add(1); });
  });
  A.join();
  B.join();
  EXPECT_EQ(Total.load(), 20u * 3 + 20u * 2);
}

TEST(ThreadPool, LeasedLanesRunRegionsOfAnyNarrowerWidth) {
  // A lane lease owns its lanes exclusively; runThreads from the leasing
  // thread dispatches onto them for any width up to the lease size.
  ThreadPool::Lease Lanes = ThreadPool::global().acquireLanes(3);
  ThreadPool::LeaseScope Scope(Lanes);
  for (unsigned Width : {3u, 1u, 2u, 3u}) {
    std::atomic<unsigned> Mask{0};
    runThreads(Width, [&](unsigned Tid) { Mask.fetch_or(1u << Tid); });
    EXPECT_EQ(Mask.load(), (1u << Width) - 1);
  }
}

TEST(ThreadPool, DisjointLeasesOverlapInsteadOfSerializing) {
  // Two leases from two threads must run truly concurrently: each region
  // waits for the other region to start before finishing. If leased
  // regions serialized on the global pool, neither could complete.
  std::atomic<bool> AStarted{false}, BStarted{false};
  std::atomic<bool> Failed{false};
  const auto AwaitOrFail = [&](std::atomic<bool> &Flag) {
    const auto Deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!Flag.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() > Deadline) {
        Failed.store(true);
        return;
      }
      std::this_thread::yield();
    }
  };
  std::thread A([&] {
    ThreadPool::Lease Lanes = ThreadPool::global().acquireLanes(2);
    ThreadPool::LeaseScope Scope(Lanes);
    runThreads(2, [&](unsigned Tid) {
      if (Tid == 0) {
        AStarted.store(true, std::memory_order_release);
        AwaitOrFail(BStarted);
      }
    });
  });
  std::thread B([&] {
    ThreadPool::Lease Lanes = ThreadPool::global().acquireLanes(2);
    ThreadPool::LeaseScope Scope(Lanes);
    runThreads(2, [&](unsigned Tid) {
      if (Tid == 0) {
        BStarted.store(true, std::memory_order_release);
        AwaitOrFail(AStarted);
      }
    });
  });
  A.join();
  B.join();
  EXPECT_FALSE(Failed.load()) << "leased regions never overlapped";
}

TEST(ThreadPool, ReleasedLeaseLanesAreReused) {
  {
    ThreadPool::Lease Lanes = ThreadPool::global().acquireLanes(3);
    (void)Lanes;
  }
  const unsigned After = ThreadPool::global().leaseLaneCount();
  // Re-acquiring fewer lanes than were just released must not spawn more.
  ThreadPool::Lease Again = ThreadPool::global().acquireLanes(2);
  EXPECT_EQ(Again.size(), 2u);
  EXPECT_EQ(ThreadPool::global().leaseLaneCount(), After);
}

TEST(ThreadPool, NestedRegionsRespectSpawnBudgetCap) {
  // Regression for the server worker budget: nested regions falling back
  // to spawned threads are throttled by the cap, so concurrent nested
  // fan-outs never exceed CIP_SERVER_WORKERS live spawned workers.
  const unsigned PrevCap = ThreadPool::spawnCap();
  ThreadPool::setSpawnCap(3);
  ThreadPool::resetSpawnHighWater();
  std::atomic<unsigned> Inner{0};
  std::thread A([&] {
    ThreadPool::Lease Lanes = ThreadPool::global().acquireLanes(2);
    ThreadPool::LeaseScope Scope(Lanes);
    runThreads(2, [&](unsigned) {
      runThreads(3, [&](unsigned) { Inner.fetch_add(1); });
    });
  });
  std::thread B([&] {
    ThreadPool::Lease Lanes = ThreadPool::global().acquireLanes(2);
    ThreadPool::LeaseScope Scope(Lanes);
    runThreads(2, [&](unsigned) {
      runThreads(2, [&](unsigned) { Inner.fetch_add(1); });
    });
  });
  A.join();
  B.join();
  EXPECT_EQ(Inner.load(), 2u * 3 + 2u * 2);
  EXPECT_LE(ThreadPool::spawnHighWater(), 3u);
  ThreadPool::setSpawnCap(PrevCap);
}

TEST(ThreadPool, SpawnCapClampsToAtLeastOne) {
  const unsigned PrevCap = ThreadPool::spawnCap();
  EXPECT_GE(PrevCap, 1u);
  ThreadPool::setSpawnCap(0); // clamped: a zero budget would deadlock
  EXPECT_EQ(ThreadPool::spawnCap(), 1u);
  ThreadPool::setSpawnCap(PrevCap);
}

#include "support/Backoff.h"
#include "support/VectorFifo.h"

TEST(VectorFifo, FifoOrder) {
  VectorFifo<int> F;
  EXPECT_TRUE(F.empty());
  for (int I = 0; I < 100; ++I)
    F.push(I);
  EXPECT_EQ(F.size(), 100u);
  for (int I = 0; I < 100; ++I) {
    EXPECT_EQ(F.front(), I);
    F.pop();
  }
  EXPECT_TRUE(F.empty());
}

TEST(VectorFifo, InterleavedPushPopStaysOrdered) {
  VectorFifo<int> F;
  int Next = 0, Expect = 0;
  // Mixed producer/consumer pattern crossing the compaction threshold.
  for (int Round = 0; Round < 5000; ++Round) {
    F.push(Next++);
    F.push(Next++);
    ASSERT_EQ(F.front(), Expect);
    F.pop();
    ++Expect;
  }
  while (!F.empty()) {
    ASSERT_EQ(F.front(), Expect++);
    F.pop();
  }
  EXPECT_EQ(Expect, Next);
}

TEST(VectorFifo, DrainAndReuse) {
  VectorFifo<std::vector<int>> F;
  for (int Round = 0; Round < 3; ++Round) {
    for (int I = 0; I < 10; ++I)
      F.push(std::vector<int>{I});
    int Seen = 0;
    while (!F.empty()) {
      EXPECT_EQ(F.front().front(), Seen++);
      F.pop();
    }
    EXPECT_EQ(Seen, 10);
  }
}

TEST(Backoff, PauseTerminatesAndResets) {
  Backoff B;
  for (int I = 0; I < 1000; ++I)
    B.pause(); // must not hang or crash through the yield path
  B.reset();
  B.pause();
  SUCCEED();
}

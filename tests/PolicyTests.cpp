//===- tests/PolicyTests.cpp - Adaptive policy engine tests --------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
//
// The policy subsystem (DESIGN.md §11): spec/env parsing, the threshold
// policy's hysteresis and measured-cost guards, bandit determinism, and the
// adaptive executor's end-to-end soundness — every policy, on every
// technique, must leave the workload bit-identical to sequential execution,
// including across mid-run technique switches.
//
//===----------------------------------------------------------------------===//

#include "harness/Adaptive.h"
#include "harness/Executor.h"
#include "harness/StagedLoop.h"
#include "policy/Policy.h"
#include "workloads/PhaseShift.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

using namespace cip;
using policy::Decision;
using policy::PolicyConfig;
using policy::PolicyEngine;
using policy::PolicyKind;
using policy::RegionStats;
using policy::Technique;

namespace {

constexpr std::uint32_t AllTechniques =
    policy::techniqueBit(Technique::Barrier) |
    policy::techniqueBit(Technique::Domore) |
    policy::techniqueBit(Technique::DomoreDup) |
    policy::techniqueBit(Technique::SpecCross);

/// Saves one environment variable on construction and restores it on
/// destruction, so tests can mutate CIP_POLICY* without clobbering the
/// configuration a re-registered ctest config (policy/) runs under.
class EnvGuard {
public:
  explicit EnvGuard(const char *Name) : Name(Name) {
    if (const char *V = std::getenv(Name)) {
      Saved = V;
      Had = true;
    }
  }
  ~EnvGuard() {
    if (Had)
      setenv(Name, Saved.c_str(), 1);
    else
      unsetenv(Name);
  }

private:
  const char *Name;
  std::string Saved;
  bool Had = false;
};

/// A synthetic stats snapshot for engine-level tests: equal cost per epoch
/// everywhere (so the measured-cost guard stays neutral) unless a test
/// overrides Seconds.
RegionStats statsFor(Technique T, std::uint32_t Window) {
  RegionStats S;
  S.Tech = T;
  S.Window = Window;
  S.NumEpochs = 4;
  S.Seconds = 0.004;
  S.Iterations = 400;
  S.Tasks = 400;
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Spec and environment parsing
//===----------------------------------------------------------------------===//

TEST(PolicySpec, ParsesValidSpecs) {
  PolicyConfig Cfg;
  EXPECT_EQ(policy::parsePolicySpec("threshold", Cfg), nullptr);
  EXPECT_EQ(Cfg.Kind, PolicyKind::Threshold);
  EXPECT_EQ(policy::parsePolicySpec("bandit", Cfg), nullptr);
  EXPECT_EQ(Cfg.Kind, PolicyKind::Bandit);
  const struct {
    const char *Spec;
    Technique Want;
  } FixedCases[] = {
      {"fixed:barrier", Technique::Barrier},
      {"fixed:domore", Technique::Domore},
      {"fixed:domore-dup", Technique::DomoreDup},
      {"fixed:dup", Technique::DomoreDup},
      {"fixed:speccross", Technique::SpecCross},
  };
  for (const auto &C : FixedCases) {
    EXPECT_EQ(policy::parsePolicySpec(C.Spec, Cfg), nullptr) << C.Spec;
    EXPECT_EQ(Cfg.Kind, PolicyKind::Fixed) << C.Spec;
    EXPECT_EQ(Cfg.FixedTech, C.Want) << C.Spec;
  }
}

TEST(PolicySpec, RejectsGarbageWithGrammar) {
  PolicyConfig Cfg;
  for (const char *Bad :
       {"", "Threshold", "bandits", "fixed", "fixed:", "fixed:doall",
        "threshold ", "fixed:barrier,domore"}) {
    const char *Err = policy::parsePolicySpec(Bad, Cfg);
    ASSERT_NE(Err, nullptr) << "'" << Bad << "' parsed";
    EXPECT_NE(std::string(Err).find("threshold"), std::string::npos);
  }
}

TEST(PolicyEnvDeathTest, MalformedPolicyExits2) {
  EnvGuard G1("CIP_POLICY");
  setenv("CIP_POLICY", "fastest-please", 1);
  PolicyConfig Cfg;
  EXPECT_EXIT(policy::configFromEnv(Cfg), testing::ExitedWithCode(2),
              "CIP_POLICY='fastest-please' is invalid");
}

TEST(PolicyEnvDeathTest, MalformedWindowExits2) {
  EnvGuard G1("CIP_POLICY"), G2("CIP_POLICY_WINDOW");
  setenv("CIP_POLICY", "threshold", 1);
  PolicyConfig Cfg;
  for (const char *Bad : {"0", "-4", "8x", ""}) {
    setenv("CIP_POLICY_WINDOW", Bad, 1);
    EXPECT_EXIT(policy::configFromEnv(Cfg), testing::ExitedWithCode(2),
                "CIP_POLICY_WINDOW")
        << Bad;
  }
}

TEST(PolicyEnvDeathTest, MalformedSeedExits2) {
  EnvGuard G1("CIP_POLICY"), G2("CIP_POLICY_SEED");
  setenv("CIP_POLICY", "bandit", 1);
  setenv("CIP_POLICY_SEED", "0xbeef", 1);
  PolicyConfig Cfg;
  EXPECT_EXIT(policy::configFromEnv(Cfg), testing::ExitedWithCode(2),
              "CIP_POLICY_SEED");
}

TEST(PolicyEnv, ReadsFullConfig) {
  EnvGuard G1("CIP_POLICY"), G2("CIP_POLICY_WINDOW"), G3("CIP_POLICY_SEED");
  setenv("CIP_POLICY", "bandit", 1);
  setenv("CIP_POLICY_WINDOW", "16", 1);
  setenv("CIP_POLICY_SEED", "7", 1);
  PolicyConfig Cfg;
  ASSERT_TRUE(policy::configFromEnv(Cfg));
  EXPECT_EQ(Cfg.Kind, PolicyKind::Bandit);
  EXPECT_EQ(Cfg.WindowEpochs, 16u);
  EXPECT_EQ(Cfg.Seed, 7u);
}

TEST(PolicyEnv, UnsetPolicyLeavesConfigUntouched) {
  EnvGuard G1("CIP_POLICY"), G2("CIP_POLICY_WINDOW");
  unsetenv("CIP_POLICY");
  // Refinement knobs without CIP_POLICY are ignored, not an error: the
  // compiled-in default stays in force.
  setenv("CIP_POLICY_WINDOW", "definitely-not-a-number", 1);
  PolicyConfig Cfg;
  Cfg.WindowEpochs = 123;
  EXPECT_FALSE(policy::configFromEnv(Cfg));
  EXPECT_EQ(Cfg.WindowEpochs, 123u);
}

//===----------------------------------------------------------------------===//
// Threshold policy
//===----------------------------------------------------------------------===//

TEST(ThresholdPolicy, NeverFlipFlopsWithinDwell) {
  PolicyConfig Cfg;
  Cfg.Kind = PolicyKind::Threshold;
  Cfg.ConfirmWindows = 1;
  Cfg.MinDwellWindows = 3;
  PolicyEngine E(Cfg, AllTechniques);
  Decision D = E.initial();
  EXPECT_EQ(D.Tech, Technique::SpecCross); // optimistic start

  // Adversarial signal stream: whatever runs, the cutoffs indicate leaving
  // it (high abort rate on SPECCROSS, zero conflict density elsewhere), at
  // identical measured cost so only hysteresis restrains switching.
  std::vector<std::uint32_t> SwitchWindows;
  for (std::uint32_t W = 0; W < 40; ++W) {
    RegionStats S = statsFor(D.Tech, W);
    if (D.Tech == Technique::SpecCross)
      S.Misspeculations = 2; // abort rate 0.5 > AbortRateHigh
    else
      S.SyncConditions = 0; // density 0 < ConflictLow
    D = E.observe(S);
    if (D.Switched)
      SwitchWindows.push_back(W);
  }
  ASSERT_GE(SwitchWindows.size(), 2u) << "stream should provoke switches";
  for (std::size_t I = 1; I < SwitchWindows.size(); ++I)
    EXPECT_GE(SwitchWindows[I] - SwitchWindows[I - 1], Cfg.MinDwellWindows)
        << "switch at window " << SwitchWindows[I] << " violates dwell";
}

TEST(ThresholdPolicy, ConfirmWindowsFiltersOneWindowBlips) {
  PolicyConfig Cfg;
  Cfg.Kind = PolicyKind::Threshold;
  Cfg.ConfirmWindows = 2;
  Cfg.MinDwellWindows = 0;
  PolicyEngine E(Cfg, AllTechniques);
  Decision D = E.initial();
  ASSERT_EQ(D.Tech, Technique::SpecCross);

  // One bad window, then clean again: must not switch.
  RegionStats Bad = statsFor(Technique::SpecCross, 0);
  Bad.Misspeculations = 4;
  D = E.observe(Bad);
  EXPECT_FALSE(D.Switched);
  EXPECT_STREQ(D.Reason, "confirming");
  RegionStats Clean = statsFor(Technique::SpecCross, 1);
  D = E.observe(Clean);
  EXPECT_FALSE(D.Switched);
  EXPECT_EQ(D.Tech, Technique::SpecCross);

  // Two consecutive bad windows: now it goes.
  Bad.Window = 2;
  D = E.observe(Bad);
  EXPECT_FALSE(D.Switched);
  Bad.Window = 3;
  D = E.observe(Bad);
  EXPECT_TRUE(D.Switched);
  EXPECT_STREQ(D.Reason, "abort-rate-high");
}

TEST(ThresholdPolicy, MeasuredSlowerGuardBlocksKnownBadSwitch) {
  PolicyConfig Cfg;
  Cfg.Kind = PolicyKind::Threshold;
  Cfg.ConfirmWindows = 1;
  Cfg.MinDwellWindows = 1;
  PolicyEngine E(Cfg, AllTechniques);
  Decision D = E.initial();
  ASSERT_EQ(D.Tech, Technique::SpecCross);

  // SPECCROSS measures 10x slower than what follows, and aborts.
  RegionStats Spec = statsFor(Technique::SpecCross, 0);
  Spec.Seconds = 0.040;
  Spec.Misspeculations = 4;
  D = E.observe(Spec);
  ASSERT_TRUE(D.Switched);
  ASSERT_EQ(D.Tech, Technique::Domore);

  // DOMORE runs conflict-free — the cutoff wants SPECCROSS back, but the
  // measurement says no.
  bool SawGuard = false;
  for (std::uint32_t W = 1; W < 8; ++W) {
    RegionStats Dom = statsFor(Technique::Domore, W);
    Dom.SyncConditions = 0;
    D = E.observe(Dom);
    EXPECT_FALSE(D.Switched) << "window " << W;
    EXPECT_EQ(D.Tech, Technique::Domore);
    if (std::string(D.Reason) == "measured-slower")
      SawGuard = true;
  }
  EXPECT_TRUE(SawGuard);
}

TEST(ThresholdPolicy, SchedulerSaturationDuplicatesScheduler) {
  PolicyConfig Cfg;
  Cfg.Kind = PolicyKind::Threshold;
  Cfg.ConfirmWindows = 1;
  Cfg.MinDwellWindows = 0;
  PolicyEngine E(Cfg, AllTechniques &
                          ~policy::techniqueBit(Technique::SpecCross));
  Decision D = E.initial();
  ASSERT_EQ(D.Tech, Technique::Domore); // fallback: speccross inapplicable

  RegionStats S = statsFor(Technique::Domore, 0);
  S.SyncConditions = 200; // conflicts manifest
  S.SchedulerRatioPercent = 80.0;
  D = E.observe(S);
  EXPECT_TRUE(D.Switched);
  EXPECT_EQ(D.Tech, Technique::DomoreDup);
  EXPECT_STREQ(D.Reason, "scheduler-saturated");
}

//===----------------------------------------------------------------------===//
// Bandit policy
//===----------------------------------------------------------------------===//

TEST(BanditPolicy, RoundRobinInitCoversEveryApplicableArm) {
  PolicyConfig Cfg;
  Cfg.Kind = PolicyKind::Bandit;
  PolicyEngine E(Cfg, AllTechniques);
  Decision D = E.initial();
  std::vector<Technique> Order{D.Tech};
  for (std::uint32_t W = 0; W < 3; ++W) {
    D = E.observe(statsFor(D.Tech, W));
    Order.push_back(D.Tech);
  }
  EXPECT_EQ(Order, (std::vector<Technique>{
                       Technique::Barrier, Technique::Domore,
                       Technique::DomoreDup, Technique::SpecCross}));
}

TEST(BanditPolicy, DeterministicUnderSeed) {
  auto run = [](std::uint64_t Seed) {
    PolicyConfig Cfg;
    Cfg.Kind = PolicyKind::Bandit;
    Cfg.Seed = Seed;
    PolicyEngine E(Cfg, AllTechniques);
    std::vector<std::string> Log;
    Decision D = E.initial();
    for (std::uint32_t W = 0; W < 32; ++W) {
      RegionStats S = statsFor(D.Tech, W);
      // Deterministic per-technique cost so the stream is a pure function
      // of the decision sequence.
      S.Seconds = 0.001 * (1.0 + static_cast<double>(D.Tech));
      D = E.observe(S);
      Log.push_back(std::string(policy::techniqueName(D.Tech)) + "/" +
                    D.Reason + (D.Explore ? "/explore" : ""));
    }
    return Log;
  };
  EXPECT_EQ(run(42), run(42));
  // And the exploit choice converges on the cheapest arm (barrier here).
  const std::vector<std::string> Log = run(7);
  EXPECT_NE(std::find(Log.begin(), Log.end(), "barrier/exploit"), Log.end());
}

//===----------------------------------------------------------------------===//
// Adaptive executor
//===----------------------------------------------------------------------===//

namespace {

std::uint64_t sequentialChecksum(workloads::Workload &W) {
  W.reset();
  return harness::runSequential(W).Checksum;
}

} // namespace

TEST(Adaptive, EveryPolicyMatchesSequentialOnPhaseShift) {
  workloads::PhaseShiftWorkload W(
      workloads::PhaseShiftParams::forScale(workloads::Scale::Test));
  const std::uint64_t Want = sequentialChecksum(W);

  std::vector<PolicyConfig> Configs;
  for (unsigned T = 0; T < policy::NumTechniques; ++T) {
    PolicyConfig Cfg;
    Cfg.Kind = PolicyKind::Fixed;
    Cfg.FixedTech = static_cast<Technique>(T);
    Configs.push_back(Cfg);
  }
  PolicyConfig Thr;
  Thr.Kind = PolicyKind::Threshold;
  Configs.push_back(Thr);
  PolicyConfig Ban;
  Ban.Kind = PolicyKind::Bandit;
  Configs.push_back(Ban);

  for (const PolicyConfig &Cfg : Configs) {
    W.reset();
    harness::AdaptiveStats St;
    const harness::ExecResult R = harness::runAdaptive(W, 3, Cfg, &St);
    EXPECT_EQ(R.Checksum, Want)
        << policy::policyKindName(Cfg.Kind) << " windows=" << St.Windows;
    EXPECT_EQ(St.Decisions.size(), St.Windows);
  }
}

TEST(Adaptive, ChecksumHoldsOnFactoryWorkload) {
  const auto W = workloads::makeWorkload("jacobi", workloads::Scale::Test);
  ASSERT_NE(W, nullptr);
  const std::uint64_t Want = sequentialChecksum(*W);
  for (PolicyKind K : {PolicyKind::Threshold, PolicyKind::Bandit}) {
    PolicyConfig Cfg;
    Cfg.Kind = K;
    Cfg.WindowEpochs = 3; // deliberately not a divisor of the epoch count
    W->reset();
    const harness::ExecResult R = harness::runAdaptive(*W, 3, Cfg);
    EXPECT_EQ(R.Checksum, Want) << policy::policyKindName(K);
  }
}

TEST(Adaptive, ThresholdSwitchesOnPhaseShift) {
  workloads::PhaseShiftWorkload W(
      workloads::PhaseShiftParams::forScale(workloads::Scale::Test));
  const std::uint64_t Want = sequentialChecksum(W);

  PolicyConfig Cfg;
  Cfg.Kind = PolicyKind::Threshold;
  Cfg.WindowEpochs = W.numEpochs() / 16; // phases span several windows
  W.reset();
  harness::AdaptiveStats St;
  const harness::ExecResult R = harness::runAdaptive(W, 3, Cfg, &St);
  EXPECT_EQ(R.Checksum, Want);

  // The conflict-heavy phase must chase the optimistic SPECCROSS start out.
  EXPECT_GE(St.Switches.size(), 1u);
  // Log invariants: every window accounted for, switch flags consistent.
  std::uint32_t Epochs = 0, Flagged = 0;
  for (const telemetry::PolicyDecisionRecord &D : St.Decisions) {
    Epochs += D.NumEpochs;
    Flagged += D.Switched ? 1 : 0;
  }
  EXPECT_EQ(Epochs, W.numEpochs());
  EXPECT_EQ(Flagged, St.Switches.size());
}

TEST(Adaptive, WindowNotDividingEpochsCoversRemainder) {
  workloads::PhaseShiftWorkload W(
      workloads::PhaseShiftParams::forScale(workloads::Scale::Test));
  const std::uint64_t Want = sequentialChecksum(W);
  PolicyConfig Cfg;
  Cfg.Kind = PolicyKind::Fixed;
  Cfg.FixedTech = Technique::Domore;
  Cfg.WindowEpochs = 5; // 32 = 6*5 + 2
  W.reset();
  harness::AdaptiveStats St;
  const harness::ExecResult R = harness::runAdaptive(W, 3, Cfg, &St);
  EXPECT_EQ(R.Checksum, Want);
  std::uint32_t Epochs = 0;
  for (const telemetry::PolicyDecisionRecord &D : St.Decisions)
    Epochs += D.NumEpochs;
  EXPECT_EQ(Epochs, W.numEpochs());
  EXPECT_EQ(St.Decisions.back().NumEpochs, 2u);
}

TEST(Adaptive, EnvHookRoutesThroughPolicyEngine) {
  EnvGuard G1("CIP_POLICY"), G2("CIP_POLICY_WINDOW"), G3("CIP_POLICY_SEED");
  workloads::PhaseShiftWorkload W(
      workloads::PhaseShiftParams::forScale(workloads::Scale::Test));
  const std::uint64_t Want = sequentialChecksum(W);

  unsetenv("CIP_POLICY");
  harness::ExecResult R;
  EXPECT_FALSE(harness::runAdaptiveFromEnv(W, 3, R));

  setenv("CIP_POLICY", "fixed:barrier", 1);
  setenv("CIP_POLICY_WINDOW", "4", 1);
  W.reset();
  harness::AdaptiveStats St;
  ASSERT_TRUE(harness::runAdaptiveFromEnv(W, 3, R, &St));
  EXPECT_EQ(R.Checksum, Want);
  EXPECT_EQ(St.Windows, W.numEpochs() / 4);
  for (const telemetry::PolicyDecisionRecord &D : St.Decisions)
    EXPECT_STREQ(D.Technique, "barrier");
}

//===----------------------------------------------------------------------===//
// Vtables and warm-carry plumbing
//===----------------------------------------------------------------------===//

TEST(TechniqueVtable, RowsEnumerateConsistently) {
  for (unsigned T = 0; T < policy::NumTechniques; ++T) {
    const Technique Tech = static_cast<Technique>(T);
    const harness::TechniqueVtable &Row = harness::techniqueVtable(Tech);
    EXPECT_EQ(Row.Tech, Tech);
    EXPECT_STREQ(Row.Name, policy::techniqueName(Tech));
    EXPECT_NE(Row.RunWindow, nullptr);
    EXPECT_NE(Row.CarryNote, nullptr);
    EXPECT_GT(std::string(Row.CarryNote).size(), 0u);
  }
  // The warm-carry legality table (Adaptive.h): shadow allocation and
  // checkpoint registry carry; barrier and the duplicated scheduler don't.
  EXPECT_FALSE(harness::techniqueVtable(Technique::Barrier).WarmCarry);
  EXPECT_TRUE(harness::techniqueVtable(Technique::Domore).WarmCarry);
  EXPECT_FALSE(harness::techniqueVtable(Technique::DomoreDup).WarmCarry);
  EXPECT_TRUE(harness::techniqueVtable(Technique::SpecCross).WarmCarry);
}

TEST(TechniqueVtable, ApplicabilityMaskAlwaysIncludesBarrier) {
  workloads::PhaseShiftWorkload W(
      workloads::PhaseShiftParams::forScale(workloads::Scale::Test));
  const std::uint32_t Mask = harness::applicabilityMask(W);
  EXPECT_TRUE(Mask & policy::techniqueBit(Technique::Barrier));
  EXPECT_TRUE(Mask & policy::techniqueBit(Technique::Domore));
  EXPECT_TRUE(Mask & policy::techniqueBit(Technique::SpecCross));
}

TEST(TechniqueVtable, ShadowCarryReusesAllocation) {
  domore::ShadowCarry Carry;
  domore::DenseShadowMemory &D1 = Carry.dense(128);
  domore::DenseShadowMemory &D2 = Carry.dense(128);
  EXPECT_EQ(&D1, &D2) << "same size must reuse the allocation";
  domore::DenseShadowMemory &D3 = Carry.dense(256);
  EXPECT_EQ(D3.size(), 256u) << "size change must reallocate";
  domore::HashShadowMemory &H1 = Carry.hash();
  domore::HashShadowMemory &H2 = Carry.hash();
  EXPECT_EQ(&H1, &H2);
}

TEST(StagedTechniques, TableMatchesEntryPoints) {
  std::size_t Count = 0;
  const harness::StagedTechnique *Rows = harness::stagedTechniques(Count);
  ASSERT_EQ(Count, 3u);
  EXPECT_STREQ(Rows[0].Name, "sequential");
  EXPECT_STREQ(Rows[1].Name, "doacross");
  EXPECT_STREQ(Rows[2].Name, "dswp");

  // Each row actually runs the loop: same tokens, same side effects.
  for (std::size_t R = 0; R < Count; ++R) {
    ASSERT_NE(Rows[R].Run, nullptr);
    std::vector<std::int64_t> Sums(8, 0);
    harness::StagedLoop L;
    L.NumIterations = 64;
    L.Traverse = [](std::uint64_t I) {
      return static_cast<std::int64_t>(I * 3 + 1);
    };
    L.Work = [&Sums](std::uint64_t I, std::int64_t Token) {
      Sums[I % Sums.size()] += Token;
    };
    const double Secs = Rows[R].Run(L, 2);
    EXPECT_GE(Secs, 0.0);
    std::int64_t Total = 0;
    for (std::int64_t S : Sums)
      Total += S;
    EXPECT_EQ(Total, 64 * 63 / 2 * 3 + 64) << Rows[R].Name;
  }
}

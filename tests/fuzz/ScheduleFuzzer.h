//===- tests/fuzz/ScheduleFuzzer.h - Differential schedule fuzzing -*- C++ -*-//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential-oracle fuzzing of the runtime engines. One fuzz case is a
/// seeded synthetic loop nest with a controllable conflict density and
/// order-sensitive per-address updates (`Data[a] = Data[a]*M + C` with odd
/// M), so any violation of the engines' ordering guarantees — a sync
/// condition released early, a work range published before its writes, a
/// speculative commit that escaped the checker — changes the final memory
/// image. The case runs through the engine under test and is compared
/// against a sequential oracle, plus engine-specific runtime invariants:
///
///  * DOMORE / duplicated DOMORE: final memory equality, iteration and
///    invocation counts, and the exact sync-condition count from a
///    sequential shadow-memory replay of the schedule (the schedule is a
///    pure function of the policy and the address streams, so the count is
///    deterministic no matter how the threads interleave).
///  * SPECCROSS: final memory equality (tasks within an epoch touch
///    disjoint addresses by construction; cross-epoch conflicts are dialed
///    in through an ownership rotation), plus rollback accounting bounds
///    and "forced misspeculation really aborted" when injection is on.
///  * Adaptive: the same SPECCROSS-shaped workload through the policy
///    engine (harness/Adaptive.h) with a seed-derived policy and window
///    size, so mid-run technique switches land at arbitrary epoch
///    boundaries — final memory equality plus decision-log invariants
///    (every epoch governed by exactly one decision, switch flags
///    consistent with the switch log).
///
/// The same seed can be replayed across engine configurations — MaxBatch,
/// thread-pool substrate, signature scheme, checkpoint substrate, chaos
/// seed — which is what the
/// `tools/cip_fuzz` driver and the CI sanitizer matrix do. Every failure
/// carries a one-line repro command.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TESTS_FUZZ_SCHEDULEFUZZER_H
#define CIP_TESTS_FUZZ_SCHEDULEFUZZER_H

#include "memory/CheckpointSubstrate.h"
#include "speccross/Signature.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace cip {
namespace fuzz {

/// Engine under differential test. Adaptive is the policy-driven harness
/// executor switching among the other three plus the barrier baseline.
/// Server funnels concurrent multi-client submissions of the same workload
/// shape through the region server (admission, arbitration, should_invoc
/// degradation) with a seed-derived budget/queue/technique mix.
enum class Engine { Domore, DomoreDup, SpecCross, Adaptive, Server };

const char *engineName(Engine E);

/// Parses "domore", "domore-dup", "speccross", "adaptive", or "server".
/// Returns false on other input.
bool parseEngine(std::string_view Name, Engine &Out);

const char *schemeName(speccross::SignatureScheme S);
bool parseScheme(std::string_view Name, speccross::SignatureScheme &Out);

/// One concrete engine configuration for a fuzz case. Everything the
/// workload itself needs is derived from the case seed; these knobs select
/// the engine substrate the same workload runs on.
struct FuzzOptions {
  Engine Eng = Engine::Domore;
  std::uint32_t Workers = 3;
  /// DOMORE dispatch batching bound (1 = legacy one-message-per-iteration).
  std::size_t MaxBatch = 16;
  /// DOMORE shadow-memory shard count (0 = the serial scheduler). Nonzero
  /// runs the sharded two-stage scheduler, whose sync conditions must still
  /// match the sequential shadow replay exactly.
  std::uint32_t Shards = 0;
  /// DOMORE scheduler-team size (0/1 = one scheduler thread). Only takes
  /// effect with Shards > 1; the team's sync conditions must still match
  /// the sequential shadow replay bit for bit at every team width.
  std::uint32_t SchedThreads = 0;
  /// SPECCROSS checker-lane count (0/1 = the serial in-thread scan). Lane
  /// fan-out must leave abort decisions and round accounting unchanged.
  std::uint32_t CheckLanes = 0;
  /// SPECCROSS batched signature checking (false = scalar first-overlap
  /// scan). Both modes must produce identical results and comparison counts.
  bool Simd = true;
  /// false forces the spawn-and-join thread substrate (ThreadPool bypass).
  bool UsePool = true;
  /// Schedule-chaos seed; 0 = no injection. Only perturbs anything in a
  /// chaos-enabled build (-DCIP_CHAOS_HOOKS=ON) — harmless elsewhere.
  std::uint64_t ChaosSeed = 0;
  /// SPECCROSS signature scheme (ignored by the DOMORE engines).
  speccross::SignatureScheme Scheme = speccross::SignatureScheme::Range;
  /// Checkpoint substrate (DESIGN.md §16) the speculative engines run on;
  /// delivered via CIP_CKPT, which every CheckpointRegistry re-reads at
  /// construction. Ignored by the DOMORE engines. Injected-abort SPECCROSS
  /// cases additionally replay on the complementary page-granular/eager
  /// substrate and demand a bit-identical final image (restore oracle).
  memory::SubstrateKind Ckpt = memory::SubstrateKind::Eager;
};

struct FuzzResult {
  bool Ok = true;
  /// Human-readable mismatch report (empty when Ok).
  std::string Failure;
  /// One-line repro command for this exact (seed, options) run.
  std::string Repro;
};

/// The repro command `runFuzzCase` attaches to failures, exposed so drivers
/// can log it up front.
std::string reproCommand(std::uint64_t Seed, const FuzzOptions &Opt);

/// Generates the workload for \p Seed, runs it on the engine selected by
/// \p Opt, and differentially checks it against the sequential oracle and
/// the runtime invariants. Deterministic given (Seed, Opt) up to genuine
/// engine bugs: a failing pair keeps failing on replay.
FuzzResult runFuzzCase(std::uint64_t Seed, const FuzzOptions &Opt);

} // namespace fuzz
} // namespace cip

#endif // CIP_TESTS_FUZZ_SCHEDULEFUZZER_H

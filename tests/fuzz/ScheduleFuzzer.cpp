//===- tests/fuzz/ScheduleFuzzer.cpp - Differential schedule fuzzing ------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "tests/fuzz/ScheduleFuzzer.h"

#include "domore/DomoreRuntime.h"
#include "domore/Schedule.h"
#include "harness/Adaptive.h"
#include "server/RegionServer.h"
#include "speccross/Checkpoint.h"
#include "speccross/SpecCrossRuntime.h"
#include "support/Chaos.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "workloads/Workload.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace cip;
using namespace cip::fuzz;

const char *fuzz::engineName(Engine E) {
  switch (E) {
  case Engine::Domore:
    return "domore";
  case Engine::DomoreDup:
    return "domore-dup";
  case Engine::SpecCross:
    return "speccross";
  case Engine::Adaptive:
    return "adaptive";
  case Engine::Server:
    return "server";
  }
  return "unknown";
}

bool fuzz::parseEngine(std::string_view Name, Engine &Out) {
  if (Name == "domore")
    Out = Engine::Domore;
  else if (Name == "domore-dup" || Name == "dup")
    Out = Engine::DomoreDup;
  else if (Name == "speccross")
    Out = Engine::SpecCross;
  else if (Name == "adaptive")
    Out = Engine::Adaptive;
  else if (Name == "server")
    Out = Engine::Server;
  else
    return false;
  return true;
}

const char *fuzz::schemeName(speccross::SignatureScheme S) {
  switch (S) {
  case speccross::SignatureScheme::Range:
    return "range";
  case speccross::SignatureScheme::Bloom:
    return "bloom";
  case speccross::SignatureScheme::SmallSet:
    return "smallset";
  }
  return "unknown";
}

bool fuzz::parseScheme(std::string_view Name,
                       speccross::SignatureScheme &Out) {
  if (Name == "range")
    Out = speccross::SignatureScheme::Range;
  else if (Name == "bloom")
    Out = speccross::SignatureScheme::Bloom;
  else if (Name == "smallset" || Name == "small-set")
    Out = speccross::SignatureScheme::SmallSet;
  else
    return false;
  return true;
}

std::string fuzz::reproCommand(std::uint64_t Seed, const FuzzOptions &Opt) {
  char Buf[320];
  std::snprintf(Buf, sizeof(Buf),
                "tools/cip_fuzz --seed=%" PRIu64
                " --engines=%s --workers=%u --maxbatch=%zu --shards=%u"
                " --sched-threads=%u --check-lanes=%u"
                " --pool=%d --chaos=%" PRIu64 " --scheme=%s --simd=%d"
                " --ckpt=%s",
                Seed, engineName(Opt.Eng), Opt.Workers, Opt.MaxBatch,
                Opt.Shards, Opt.SchedThreads, Opt.CheckLanes,
                Opt.UsePool ? 1 : 0, Opt.ChaosSeed, schemeName(Opt.Scheme),
                Opt.Simd ? 1 : 0, memory::substrateName(Opt.Ckpt));
  return Buf;
}

namespace {

/// Scoped CIP_CKPT pin. Every CheckpointRegistry re-reads the knob at
/// construction, so setting the environment here is the delivery mechanism
/// for the fuzzer's checkpoint-substrate axis (and for the cross-substrate
/// restore oracle, which re-pins mid-case). Restores the previous value —
/// including "unset" — on scope exit.
class CkptEnvPin {
public:
  explicit CkptEnvPin(memory::SubstrateKind K) {
    if (const char *Env = std::getenv("CIP_CKPT")) {
      HadPrev = true;
      Prev = Env;
    }
    setenv("CIP_CKPT", memory::substrateName(K), 1);
  }
  ~CkptEnvPin() {
    if (HadPrev)
      setenv("CIP_CKPT", Prev.c_str(), 1);
    else
      unsetenv("CIP_CKPT");
  }

private:
  bool HadPrev = false;
  std::string Prev;
};

/// Applies the per-run substrate knobs (thread pool bypass, chaos seed,
/// checkpoint substrate) and restores the previous settings on scope exit,
/// so matrix runs in one process never leak configuration into each other.
class SubstrateGuard {
public:
  explicit SubstrateGuard(const FuzzOptions &Opt)
      : PrevBypass(ThreadPool::bypassed()),
        PrevChaosSeed(chaos::currentSeed()), Ckpt(Opt.Ckpt) {
    ThreadPool::setBypass(!Opt.UsePool);
    chaos::configure(Opt.ChaosSeed);
  }
  ~SubstrateGuard() {
    ThreadPool::setBypass(PrevBypass);
    chaos::configure(PrevChaosSeed);
  }

private:
  const bool PrevBypass;
  const std::uint64_t PrevChaosSeed;
  const CkptEnvPin Ckpt;
};

/// One memory access of a generated workload: `Data[Addr] = Data[Addr]*Mul
/// + Add`. Mul is odd, so the map is injective and updates to one address
/// commute for *no* pair of distinct accesses — any per-address reordering
/// or lost update changes the final image.
struct Access {
  std::uint64_t Addr;
  std::uint64_t Mul;
  std::uint64_t Add;
};

void applyAccess(std::vector<std::atomic<std::uint64_t>> &Data,
                 const Access &A) {
  // Plain load/modify/store on relaxed atomics: racy interleavings (which
  // correct engines must prevent, and which SPECCROSS may create and roll
  // back) stay well-defined so the differential verdict is trustworthy
  // under every sanitizer.
  const std::uint64_t Old = Data[A.Addr].load(std::memory_order_relaxed);
  Data[A.Addr].store(Old * A.Mul + A.Add, std::memory_order_relaxed);
}

void applyAccess(std::vector<std::uint64_t> &Data, const Access &A) {
  Data[A.Addr] = Data[A.Addr] * A.Mul + A.Add;
}

std::uint64_t oddMul(Xoshiro256StarStar &Rng) {
  return 3 + 2 * Rng.nextBelow(8);
}

/// Formats the first few mismatching addresses of a memory comparison.
bool compareMemory(const std::vector<std::uint64_t> &Expected,
                   const std::vector<std::atomic<std::uint64_t>> &Got,
                   std::string &Report) {
  bool Ok = true;
  unsigned Shown = 0;
  for (std::size_t A = 0; A < Expected.size(); ++A) {
    const std::uint64_t G = Got[A].load(std::memory_order_relaxed);
    if (G == Expected[A])
      continue;
    Ok = false;
    if (Shown++ < 3) {
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf),
                    "  addr %zu: expected %" PRIu64 ", got %" PRIu64 "\n", A,
                    Expected[A], G);
      Report += Buf;
    }
  }
  if (!Ok)
    Report = "final memory diverges from the sequential oracle:\n" + Report;
  return Ok;
}

void appendCheck(std::string &Report, bool Cond, const char *What,
                 std::uint64_t Expected, std::uint64_t Got) {
  if (Cond)
    return;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "%s: expected %" PRIu64 ", got %" PRIu64 "\n",
                What, Expected, Got);
  Report += Buf;
}

//===----------------------------------------------------------------------===//
// DOMORE cases
//===----------------------------------------------------------------------===//

struct DomoreCase {
  std::uint64_t N = 0;
  std::vector<std::uint64_t> Init;
  /// Accesses of iteration (Inv, It): Accesses[Inv][It].
  std::vector<std::vector<std::vector<Access>>> Accesses;
  domore::PolicyKind Policy = domore::PolicyKind::RoundRobin;
  std::uint64_t AddressSpaceSize = 0; // 0 = hash shadow
  std::size_t QueueCapacity = 4096;
  std::uint64_t TotalIterations = 0;
};

DomoreCase generateDomoreCase(std::uint64_t Seed) {
  Xoshiro256StarStar Rng(Seed ^ 0xd0d0caf3d0d0caf3ULL);
  DomoreCase C;
  C.N = 16 + Rng.nextBelow(81);
  C.Init.resize(C.N);
  for (auto &V : C.Init)
    V = Rng.nextBelow(std::uint64_t{1} << 30);

  const std::uint32_t Invocations = 2 + static_cast<std::uint32_t>(
                                            Rng.nextBelow(7));
  // Conflict density: probability an access lands in the small hot set
  // every iteration shares, from conflict-free to heavily serialized.
  static constexpr double Densities[] = {0.0, 0.05, 0.2, 0.6};
  const double Density = Densities[Rng.nextBelow(4)];
  const std::uint64_t HotSet = 1 + Rng.nextBelow(C.N / 8 ? C.N / 8 : 1);

  C.Accesses.resize(Invocations);
  for (auto &Inv : C.Accesses) {
    Inv.resize(Rng.nextBelow(25)); // invocations may be empty
    for (auto &Iter : Inv) {
      Iter.resize(1 + Rng.nextBelow(4));
      for (Access &A : Iter) {
        A.Addr = Rng.nextBool(Density) ? Rng.nextBelow(HotSet)
                                       : Rng.nextBelow(C.N);
        A.Mul = oddMul(Rng);
        A.Add = Rng.nextBelow(std::uint64_t{1} << 20);
      }
      ++C.TotalIterations;
    }
  }
  // Degenerate all-empty nests exercise nothing; keep one iteration alive.
  if (C.TotalIterations == 0) {
    C.Accesses[0].push_back({{Rng.nextBelow(C.N), oddMul(Rng), 1}});
    C.TotalIterations = 1;
  }

  switch (Rng.nextBelow(3)) {
  case 0:
    C.Policy = domore::PolicyKind::RoundRobin;
    C.AddressSpaceSize = Rng.nextBool(0.5) ? C.N : 0;
    break;
  case 1:
    C.Policy = domore::PolicyKind::OwnerCompute;
    C.AddressSpaceSize = C.N; // owner-compute needs the dense space
    break;
  default:
    C.Policy = domore::PolicyKind::HashOwner;
    C.AddressSpaceSize = Rng.nextBool(0.5) ? C.N : 0;
    break;
  }
  C.QueueCapacity = Rng.nextBool(0.25) ? 64 : 4096;
  return C;
}

std::unique_ptr<domore::SchedulePolicy>
makeReplayPolicy(const DomoreCase &C, std::uint32_t Workers) {
  switch (C.Policy) {
  case domore::PolicyKind::RoundRobin:
    return std::make_unique<domore::RoundRobinPolicy>(Workers);
  case domore::PolicyKind::OwnerCompute:
    return std::make_unique<domore::OwnerComputePolicy>(Workers,
                                                        C.AddressSpaceSize);
  case domore::PolicyKind::HashOwner:
    return std::make_unique<domore::HashOwnerPolicy>(Workers);
  }
  return nullptr;
}

/// Sequential shadow-memory replay of the schedule, using the *real* policy
/// classes: the exact number of sync conditions the scheduler must emit,
/// independent of batching, queue capacity, and thread interleaving.
std::uint64_t replaySyncConditions(const DomoreCase &C,
                                   std::uint32_t Workers) {
  auto Policy = makeReplayPolicy(C, Workers);
  struct Last {
    std::uint32_t Tid;
  };
  std::unordered_map<std::uint64_t, Last> Shadow;
  std::vector<std::uint64_t> Addrs;
  std::uint64_t Syncs = 0;
  std::int64_t Combined = 0;
  for (const auto &Inv : C.Accesses)
    for (const auto &Iter : Inv) {
      Addrs.clear();
      for (const Access &A : Iter)
        Addrs.push_back(A.Addr);
      const std::uint32_t Tid = Policy->pick(Combined, Addrs);
      for (std::uint64_t Addr : Addrs) {
        auto It = Shadow.find(Addr);
        if (It != Shadow.end() && It->second.Tid != Tid)
          ++Syncs;
        Shadow[Addr] = {Tid};
      }
      ++Combined;
    }
  return Syncs;
}

FuzzResult runDomoreCase(std::uint64_t Seed, const FuzzOptions &Opt) {
  const DomoreCase C = generateDomoreCase(Seed);

  // Sequential oracle: combined order is the reference order.
  std::vector<std::uint64_t> Expected = C.Init;
  for (const auto &Inv : C.Accesses)
    for (const auto &Iter : Inv)
      for (const Access &A : Iter)
        applyAccess(Expected, A);
  const std::uint64_t ExpectedSyncs = replaySyncConditions(C, Opt.Workers);

  std::vector<std::atomic<std::uint64_t>> Data(C.N);
  for (std::size_t A = 0; A < C.N; ++A)
    Data[A].store(C.Init[A], std::memory_order_relaxed);

  domore::LoopNest Nest;
  Nest.NumInvocations = static_cast<std::uint32_t>(C.Accesses.size());
  Nest.BeginInvocation = [&C](std::uint32_t Inv) {
    return C.Accesses[Inv].size();
  };
  Nest.ComputeAddr = [&C](std::uint32_t Inv, std::size_t It,
                          std::vector<std::uint64_t> &Addrs) {
    for (const Access &A : C.Accesses[Inv][It])
      Addrs.push_back(A.Addr);
  };
  Nest.Work = [&C, &Data](std::uint32_t Inv, std::size_t It) {
    for (const Access &A : C.Accesses[Inv][It])
      applyAccess(Data, A);
  };
  Nest.AddressSpaceSize = C.AddressSpaceSize;

  domore::DomoreConfig Config;
  Config.NumWorkers = Opt.Workers;
  Config.Policy = C.Policy;
  Config.QueueCapacity = C.QueueCapacity;
  Config.MaxBatch = Opt.MaxBatch;
  Config.ShadowShards = Opt.Shards;
  Config.SchedThreads = Opt.SchedThreads;

  const domore::DomoreStats Stats = Opt.Eng == Engine::DomoreDup
                                        ? runDomoreDuplicated(Nest, Config)
                                        : runDomore(Nest, Config);

  FuzzResult R;
  std::string Report;
  compareMemory(Expected, Data, Report);
  appendCheck(Report, Stats.Iterations == C.TotalIterations,
              "iteration count", C.TotalIterations, Stats.Iterations);
  appendCheck(Report, Stats.Invocations == C.Accesses.size(),
              "invocation count", C.Accesses.size(), Stats.Invocations);
  appendCheck(Report, Stats.SyncConditions == ExpectedSyncs,
              "sync conditions vs shadow replay", ExpectedSyncs,
              Stats.SyncConditions);
  if (!Report.empty()) {
    R.Ok = false;
    R.Failure = Report;
    R.Repro = reproCommand(Seed, Opt);
  }
  return R;
}

//===----------------------------------------------------------------------===//
// SPECCROSS cases
//===----------------------------------------------------------------------===//

struct SpecCase {
  std::uint64_t N = 0;
  std::vector<std::uint64_t> Init;
  std::uint32_t Epochs = 0;
  std::vector<std::size_t> Tasks; // per epoch
  /// Accesses of task (E, K): Accesses[E][K]. Tasks within one epoch touch
  /// disjoint addresses by construction (each address has one owner task
  /// per epoch); the owner *rotates* across epochs, which is what creates
  /// cross-epoch, cross-worker conflicts for the checker to catch.
  std::vector<std::vector<std::vector<Access>>> Accesses;
  std::uint32_t CheckpointInterval = 1000;
  std::uint32_t InjectAt = ~std::uint32_t{0};
  std::uint64_t TotalTasks = 0;
};

SpecCase generateSpecCase(std::uint64_t Seed) {
  Xoshiro256StarStar Rng(Seed ^ 0x5bec20555bec2055ULL);
  SpecCase C;
  C.N = 24 + Rng.nextBelow(73);
  C.Init.resize(C.N);
  for (auto &V : C.Init)
    V = Rng.nextBelow(std::uint64_t{1} << 30);

  C.Epochs = 3 + static_cast<std::uint32_t>(Rng.nextBelow(10));
  // Ownership rotation per epoch: 0 pins every address to one task index
  // forever (conflicts stay within a worker — pure speculation path);
  // nonzero values slide ownership across task indices and thus workers,
  // dialing in cross-epoch conflict density.
  static constexpr std::uint64_t Rotations[] = {0, 0, 0, 1, 2, 3};
  const std::uint64_t Rot = Rotations[Rng.nextBelow(6)];
  static constexpr double Densities[] = {0.25, 0.5, 0.9};
  const double Density = Densities[Rng.nextBelow(3)];

  C.Tasks.resize(C.Epochs);
  C.Accesses.resize(C.Epochs);
  for (std::uint32_t E = 0; E < C.Epochs; ++E) {
    C.Tasks[E] = 2 + Rng.nextBelow(10);
    C.Accesses[E].resize(C.Tasks[E]);
    C.TotalTasks += C.Tasks[E];
    for (std::uint64_t A = 0; A < C.N; ++A) {
      if (!Rng.nextBool(Density))
        continue;
      const std::size_t Owner = (A + E * Rot) % C.Tasks[E];
      C.Accesses[E][Owner].push_back(
          {A, oddMul(Rng), Rng.nextBelow(std::uint64_t{1} << 20)});
    }
  }

  static constexpr std::uint32_t Intervals[] = {2, 3, 1000};
  C.CheckpointInterval = Intervals[Rng.nextBelow(3)];
  if (Rng.nextBool(0.25))
    C.InjectAt = static_cast<std::uint32_t>(Rng.nextBelow(C.Epochs));
  return C;
}

FuzzResult runSpecCrossCase(std::uint64_t Seed, const FuzzOptions &Opt) {
  const SpecCase C = generateSpecCase(Seed);

  // Sequential oracle: epochs in order; within an epoch task order is
  // irrelevant because the access sets are disjoint.
  std::vector<std::uint64_t> Expected = C.Init;
  for (std::uint32_t E = 0; E < C.Epochs; ++E)
    for (const auto &Task : C.Accesses[E])
      for (const Access &A : Task)
        applyAccess(Expected, A);

  speccross::SpecConfig Config;
  Config.NumWorkers = Opt.Workers;
  Config.Scheme = Opt.Scheme;
  Config.BatchCheck = Opt.Simd;
  Config.CheckLanes = Opt.CheckLanes;
  Config.CheckpointIntervalEpochs = C.CheckpointInterval;
  Config.InjectMisspecAtEpoch = C.InjectAt;

  // One engine run over a private memory image. The registry re-reads
  // CIP_CKPT at construction, so whichever substrate is pinned in the
  // environment at call time backs every checkpoint of the run.
  const auto RunEngine = [&](std::vector<std::atomic<std::uint64_t>> &Mem) {
    speccross::CheckpointRegistry Checkpoints;
    Checkpoints.registerRegion(Mem.data(), Mem.size() * sizeof(Mem.front()));

    speccross::SpecRegion Region;
    Region.NumEpochs = C.Epochs;
    Region.NumTasks = [&C](std::uint32_t E) { return C.Tasks[E]; };
    Region.RunTask = [&C, &Mem](std::uint32_t E, std::size_t K) {
      for (const Access &A : C.Accesses[E][K])
        applyAccess(Mem, A);
    };
    Region.TaskAddresses = [&C](std::uint32_t E, std::size_t K,
                                std::vector<std::uint64_t> &Addrs) {
      for (const Access &A : C.Accesses[E][K])
        Addrs.push_back(A.Addr);
    };
    Region.Checkpoints = &Checkpoints;
    return runSpecCross(Region, Config, speccross::SpecMode::Speculation);
  };

  std::vector<std::atomic<std::uint64_t>> Data(C.N);
  for (std::size_t A = 0; A < C.N; ++A)
    Data[A].store(C.Init[A], std::memory_order_relaxed);
  const speccross::SpecStats Stats = RunEngine(Data);

  const std::uint64_t Rounds =
      (C.Epochs + C.CheckpointInterval - 1) / C.CheckpointInterval;

  FuzzResult R;
  std::string Report;
  compareMemory(Expected, Data, Report);
  appendCheck(Report, Stats.Epochs == C.Epochs, "epoch count", C.Epochs,
              Stats.Epochs);
  appendCheck(Report, Stats.Tasks == C.TotalTasks, "task count", C.TotalTasks,
              Stats.Tasks);
  appendCheck(Report, Stats.CheckpointsTaken == Rounds, "checkpoints taken",
              Rounds, Stats.CheckpointsTaken);
  // Each round aborts at most once (then re-executes non-speculatively),
  // so rollback accounting is bounded by the round structure.
  appendCheck(Report, Stats.Misspeculations <= Rounds,
              "misspeculations bounded by rounds", Rounds,
              Stats.Misspeculations);
  appendCheck(Report, Stats.ReexecutedEpochs <= C.Epochs,
              "re-executed epochs bounded by epochs", C.Epochs,
              Stats.ReexecutedEpochs);
  if (C.InjectAt < C.Epochs) {
    appendCheck(Report, Stats.Misspeculations >= 1,
                "forced misspeculation must abort at least one round", 1,
                Stats.Misspeculations);

    // Restore oracle (DESIGN.md §16): the injected abort forces a rollback,
    // so replay the same case on the complementary eager/page-granular
    // substrate. A page-granular restore that drops or over-restores bytes
    // leaves a different final image than the eager full copy; both must be
    // bit-identical to the sequential oracle at the same snapshot count.
    const memory::SubstrateKind Other =
        Opt.Ckpt == memory::SubstrateKind::Eager
            ? memory::SubstrateKind::PageDirty
            : memory::SubstrateKind::Eager;
    const CkptEnvPin Pin(Other);
    std::vector<std::atomic<std::uint64_t>> Cross(C.N);
    for (std::size_t A = 0; A < C.N; ++A)
      Cross[A].store(C.Init[A], std::memory_order_relaxed);
    const speccross::SpecStats CrossStats = RunEngine(Cross);
    std::string CrossReport;
    if (!compareMemory(Expected, Cross, CrossReport)) {
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf),
                    "restore oracle: %s replay of the injected abort "
                    "diverges —\n",
                    memory::substrateName(Other));
      Report += Buf;
      Report += CrossReport;
    }
    appendCheck(Report, CrossStats.CheckpointsTaken == Stats.CheckpointsTaken,
                "snapshots taken match across substrates",
                Stats.CheckpointsTaken, CrossStats.CheckpointsTaken);
  }
  if (!Report.empty()) {
    R.Ok = false;
    R.Failure = Report;
    R.Repro = reproCommand(Seed, Opt);
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Adaptive cases
//===----------------------------------------------------------------------===//

/// The SpecCase workload behind the workloads::Workload interface, so the
/// adaptive harness can run it: within-epoch tasks touch disjoint addresses
/// (every technique's contract) while cross-epoch ownership rotation makes
/// the order of epochs semantically load-bearing for every window boundary.
class AdaptiveCaseWorkload final : public workloads::Workload {
public:
  explicit AdaptiveCaseWorkload(const SpecCase &C) : C(C), Data(C.N) {
    reset();
  }

  const char *name() const override { return "fuzz-adaptive"; }

  void reset() override {
    for (std::size_t A = 0; A < C.N; ++A)
      Data[A].store(C.Init[A], std::memory_order_relaxed);
  }

  std::uint32_t numEpochs() const override { return C.Epochs; }
  std::size_t numTasks(std::uint32_t E) const override { return C.Tasks[E]; }

  void runTask(std::uint32_t E, std::size_t K) override {
    for (const Access &A : C.Accesses[E][K])
      applyAccess(Data, A);
  }

  void taskAddresses(std::uint32_t E, std::size_t K,
                     std::vector<std::uint64_t> &Addrs) const override {
    for (const Access &A : C.Accesses[E][K])
      Addrs.push_back(A.Addr);
  }

  std::uint64_t addressSpaceSize() const override { return C.N; }

  void registerState(speccross::CheckpointRegistry &Reg) override {
    Reg.registerRegion(Data.data(), Data.size() * sizeof(Data.front()));
  }

  std::uint64_t checksum() const override {
    std::uint64_t H = 0xcbf29ce484222325ULL;
    for (const auto &V : Data) {
      const std::uint64_t X = V.load(std::memory_order_relaxed);
      H = workloads::hashBytes(&X, sizeof(X), H);
    }
    return H;
  }

  const std::vector<std::atomic<std::uint64_t>> &data() const { return Data; }

private:
  const SpecCase &C;
  std::vector<std::atomic<std::uint64_t>> Data;
};

FuzzResult runAdaptiveCase(std::uint64_t Seed, const FuzzOptions &Opt) {
  const SpecCase C = generateSpecCase(Seed);

  std::vector<std::uint64_t> Expected = C.Init;
  for (std::uint32_t E = 0; E < C.Epochs; ++E)
    for (const auto &Task : C.Accesses[E])
      for (const Access &A : Task)
        applyAccess(Expected, A);

  AdaptiveCaseWorkload W(C);

  // Seed-derived policy: the bandit's round-robin start plus exploration
  // visits every technique, and 1..3-epoch windows put switch boundaries at
  // arbitrary epochs; every fourth seed runs the threshold policy so its
  // cutoff/hysteresis path sees fuzz traffic too.
  policy::PolicyConfig Cfg;
  if (Seed % 4 == 3) {
    Cfg.Kind = policy::PolicyKind::Threshold;
  } else {
    Cfg.Kind = policy::PolicyKind::Bandit;
    Cfg.Seed = Seed;
  }
  Cfg.WindowEpochs = 1 + static_cast<std::uint32_t>(Seed % 3);

  harness::AdaptiveStats St;
  const harness::ExecResult R =
      harness::runAdaptive(W, Opt.Workers + 1, Cfg, &St);

  FuzzResult Result;
  std::string Report;
  compareMemory(Expected, W.data(), Report);
  appendCheck(Report, R.Checksum == W.checksum(),
              "result checksum vs workload digest", W.checksum(), R.Checksum);

  // Decision-log invariants: every epoch governed by exactly one decision,
  // in order, and the switch log consistent with the decisions' flags.
  std::uint64_t Covered = 0;
  std::uint64_t Flagged = 0;
  bool Ordered = true;
  for (const telemetry::PolicyDecisionRecord &D : St.Decisions) {
    Ordered = Ordered && D.FirstEpoch == Covered;
    Covered += D.NumEpochs;
    Flagged += D.Switched ? 1 : 0;
  }
  appendCheck(Report, Ordered && Covered == C.Epochs,
              "decisions cover every epoch once", C.Epochs, Covered);
  appendCheck(Report, St.Windows == St.Decisions.size(), "window count",
              St.Decisions.size(), St.Windows);
  appendCheck(Report, Flagged == St.Switches.size(),
              "switched decisions vs switch events", St.Switches.size(),
              Flagged);

  // Plan axis (DESIGN.md §13): profile the same case in memory, then
  // warm-start from the just-emitted plan. Calibration windows execute
  // real work and warm-starts only reorder technique choices, so both
  // runs must leave memory and checksum identical to the cold run.
  {
    plan::RegionPlan Plan;
    harness::AdaptiveRunOptions Profile;
    Profile.PlanOut = &Plan;
    AdaptiveCaseWorkload WP(C);
    const harness::ExecResult RP =
        harness::runAdaptive(WP, Opt.Workers + 1, Cfg, nullptr, Profile);
    compareMemory(Expected, WP.data(), Report);
    appendCheck(Report, RP.Checksum == WP.checksum(),
                "profiled checksum vs workload digest", WP.checksum(),
                RP.Checksum);

    harness::AdaptiveRunOptions Warm;
    Warm.Plan = &Plan;
    Warm.PlanSource = "file";
    Warm.PlanPath = "(in-memory)";
    AdaptiveCaseWorkload WW(C);
    const harness::ExecResult RW =
        harness::runAdaptive(WW, Opt.Workers + 1, Cfg, nullptr, Warm);
    compareMemory(Expected, WW.data(), Report);
    appendCheck(Report, RW.Checksum == R.Checksum,
                "planned vs cold checksum", R.Checksum, RW.Checksum);
  }

  if (!Report.empty()) {
    Result.Ok = false;
    Result.Failure = Report;
    Result.Repro = reproCommand(Seed, Opt);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Server cases
//===----------------------------------------------------------------------===//

/// Concurrent multi-client traffic through the region server: several
/// client threads submit the same seed-generated workload shape (private
/// instances) with seed-derived techniques, widths, and minimum widths,
/// against a seed-derived budget and a deliberately small queue. The
/// differential oracle is per request — every result checksum must equal
/// the sequential reference, degraded grants included — plus conservation
/// invariants on the server's books (every submission accounted for, the
/// budget fully returned, post-shutdown submissions rejected).
FuzzResult runServerCase(std::uint64_t Seed, const FuzzOptions &Opt) {
  const SpecCase C = generateSpecCase(Seed);
  Xoshiro256StarStar Rng(Seed ^ 0x5e12e12345e12e12ULL);

  // Sequential reference checksum for this workload shape.
  AdaptiveCaseWorkload Ref(C);
  for (std::uint32_t E = 0; E < C.Epochs; ++E)
    for (std::size_t K = 0; K < C.Tasks[E]; ++K)
      Ref.runTask(E, K);
  const std::uint64_t ExpectedSum = Ref.checksum();

  server::ServerConfig Cfg;
  Cfg.Workers = 2 + static_cast<unsigned>(Rng.nextBelow(3)); // 2..4
  Cfg.QueueCapacity = 1 + static_cast<unsigned>(Rng.nextBelow(6));
  Cfg.MinWorkers = 1 + static_cast<unsigned>(Rng.nextBelow(3)); // 1..3
  Cfg.Admission = server::AdmissionPolicy::Block; // no load shedding:
  Cfg.AllowDegrade = true; // every submission must therefore complete

  policy::PolicyConfig Policy;
  Policy.Kind = policy::PolicyKind::Threshold;
  Policy.WindowEpochs = 1 + static_cast<std::uint32_t>(Seed % 3);

  const unsigned NumClients = 2 + static_cast<unsigned>(Rng.nextBelow(2));
  const unsigned PerClient = 2 + static_cast<unsigned>(Rng.nextBelow(3));

  // Per-request plans drawn up front so the RNG stream is independent of
  // thread interleaving (replay determinism).
  struct Plan {
    policy::Technique Tech;
    bool Adaptive;
    unsigned Width;
    unsigned MinWorkers;
  };
  std::vector<std::vector<Plan>> Plans(NumClients);
  for (auto &ClientPlans : Plans)
    for (unsigned I = 0; I < PerClient; ++I) {
      Plan P;
      static constexpr policy::Technique Techs[] = {
          policy::Technique::Barrier, policy::Technique::Domore,
          policy::Technique::DomoreDup, policy::Technique::SpecCross};
      P.Tech = Techs[Rng.nextBelow(4)];
      P.Adaptive = Rng.nextBool(0.25);
      P.Width = static_cast<unsigned>(Rng.nextBelow(Cfg.Workers + 1)); // 0=all
      P.MinWorkers = static_cast<unsigned>(Rng.nextBelow(Cfg.MinWorkers + 1));
      ClientPlans.push_back(P);
    }

  std::string Report;
  std::uint64_t BadResults = 0;
  {
    server::RegionServer Server(Cfg);
    std::atomic<std::uint64_t> Bad{0};
    std::vector<std::thread> Clients;
    for (unsigned Cl = 0; Cl < NumClients; ++Cl)
      Clients.emplace_back([&, Cl] {
        AdaptiveCaseWorkload W(C);
        for (const Plan &P : Plans[Cl]) {
          W.reset();
          server::RegionRequest Req;
          Req.W = &W;
          Req.Tech = P.Tech;
          if (P.Adaptive)
            Req.Policy = &Policy;
          Req.Width = P.Width;
          Req.MinWorkers = P.MinWorkers;
          const server::RequestResult R = Server.submit(Req);
          if (R.Status != server::RequestStatus::Completed ||
              R.Checksum != ExpectedSum)
            Bad.fetch_add(1, std::memory_order_relaxed);
        }
      });
    for (auto &T : Clients)
      T.join();
    BadResults = Bad.load();

    const std::uint64_t Total = std::uint64_t{NumClients} * PerClient;
    const server::ServerStats S = Server.stats();
    appendCheck(Report, BadResults == 0,
                "requests completed with the sequential checksum", Total,
                Total - BadResults);
    appendCheck(Report, S.Submitted == Total, "submissions accounted", Total,
                S.Submitted);
    appendCheck(Report, S.Completed == Total,
                "blocking admission completes every submission", Total,
                S.Completed);
    appendCheck(Report, S.Rejected == 0, "no rejections under Block", 0,
                S.Rejected);
    appendCheck(Report,
                S.DegradedNarrow + S.DegradedSequential <= S.Completed,
                "degraded bounded by completed", S.Completed,
                S.DegradedNarrow + S.DegradedSequential);
    appendCheck(Report, S.QueueWait.count() == S.Completed,
                "queue-wait histogram entries", S.Completed,
                S.QueueWait.count());
    appendCheck(Report, Server.workersInUse() == 0,
                "budget fully returned after drain", 0,
                Server.workersInUse());
    appendCheck(Report, Server.availableWorkers() == Cfg.Workers,
                "free workers equal the budget after drain", Cfg.Workers,
                Server.availableWorkers());

    Server.shutdown();
    AdaptiveCaseWorkload After(C);
    server::RegionRequest Late;
    Late.W = &After;
    const bool LateRejected =
        Server.submit(Late).Status == server::RequestStatus::Rejected;
    appendCheck(Report, LateRejected, "post-shutdown submissions rejected", 1,
                LateRejected ? 1 : 0);
  }

  FuzzResult R;
  if (!Report.empty()) {
    R.Ok = false;
    R.Failure = Report;
    R.Repro = reproCommand(Seed, Opt);
  }
  return R;
}

} // namespace

FuzzResult fuzz::runFuzzCase(std::uint64_t Seed, const FuzzOptions &Opt) {
  SubstrateGuard Guard(Opt);
  switch (Opt.Eng) {
  case Engine::Domore:
  case Engine::DomoreDup:
    return runDomoreCase(Seed, Opt);
  case Engine::SpecCross:
    return runSpecCrossCase(Seed, Opt);
  case Engine::Adaptive:
    return runAdaptiveCase(Seed, Opt);
  case Engine::Server:
    return runServerCase(Seed, Opt);
  }
  return {};
}

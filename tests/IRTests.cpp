//===- tests/IRTests.cpp - Unit tests for the mini-IR --------------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"
#include "ir/Casting.h"
#include "ir/Cloning.h"
#include "ir/Dominators.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Interp.h"
#include "ir/LoopInfo.h"
#include "ir/Verifier.h"
#include "tests/TestNests.h"

#include <gtest/gtest.h>

using namespace cip;
using namespace cip::ir;
using namespace cip::tests;

TEST(IRCore, RttiClassification) {
  Module M;
  Constant *C = M.getConstant(7);
  GlobalArray *A = M.createArray("a", 4);
  EXPECT_TRUE(isa<Constant>(static_cast<Value *>(C)));
  EXPECT_FALSE(isa<GlobalArray>(static_cast<Value *>(C)));
  EXPECT_TRUE(isa<GlobalArray>(static_cast<Value *>(A)));
  EXPECT_EQ(cast<Constant>(static_cast<Value *>(C))->value(), 7);
  EXPECT_EQ(dyn_cast<Constant>(static_cast<Value *>(A)), nullptr);
}

TEST(IRCore, ConstantsAreUniqued) {
  Module M;
  EXPECT_EQ(M.getConstant(42), M.getConstant(42));
  EXPECT_NE(M.getConstant(42), M.getConstant(43));
}

TEST(IRCore, ModuleLookups) {
  Module M;
  Function *F = M.createFunction("f", 2);
  GlobalArray *A = M.createArray("arr", 10);
  EXPECT_EQ(M.getFunction("f"), F);
  EXPECT_EQ(M.getFunction("g"), nullptr);
  EXPECT_EQ(M.getArray("arr"), A);
  EXPECT_EQ(A->size(), 10u);
  EXPECT_EQ(F->numArgs(), 2u);
}

TEST(Verifier, AcceptsWellFormedNest) {
  Module M;
  CgNest Nest = buildCgNest(M);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyFunction(*Nest.F, &Errors)) << (Errors.empty()
                                                        ? ""
                                                        : Errors.front());
}

TEST(Verifier, RejectsMissingTerminator) {
  Module M;
  Function *F = M.createFunction("broken", 0);
  F->createBlock("entry"); // no terminator
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  ASSERT_FALSE(Errors.empty());
}

TEST(Verifier, RejectsUseBeforeDef) {
  Module M;
  Function *F = M.createFunction("ubd", 0);
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  Instruction *Y = B.add(B.constant(1), B.constant(2), "y");
  B.ret(B.constant(0));
  // Insert a user of %y *before* %y's definition.
  Entry->insert(0, std::make_unique<Instruction>(
                       Opcode::Add, "early",
                       std::vector<Value *>{Y, M.getConstant(0)}));
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(Verifier, RejectsMultipleRets) {
  Module M;
  Function *F = M.createFunction("rets", 0);
  BasicBlock *A = F->createBlock("a");
  BasicBlock *Bb = F->createBlock("b");
  IRBuilder B(M);
  B.setInsertPoint(A);
  B.condBr(B.constant(1), Bb, Bb);
  B.setInsertPoint(Bb);
  B.ret(B.constant(0));
  // Second ret in a new block unreachable but owned.
  BasicBlock *C = F->createBlock("c");
  B.setInsertPoint(C);
  B.ret(B.constant(1));
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(CFGAnalysis, ReversePostOrderStartsAtEntry) {
  Module M;
  CgNest Nest = buildCgNest(M);
  CFG G(*Nest.F);
  ASSERT_FALSE(G.reversePostOrder().empty());
  EXPECT_EQ(G.reversePostOrder().front(), Nest.F->entry());
  EXPECT_EQ(G.rpoIndex(Nest.F->entry()), 0u);
  // Every reachable block appears exactly once.
  EXPECT_EQ(G.reversePostOrder().size(), Nest.F->blocks().size());
}

TEST(CFGAnalysis, PredecessorsInvertSuccessors) {
  Module M;
  CgNest Nest = buildCgNest(M);
  CFG G(*Nest.F);
  for (const auto &BB : Nest.F->blocks())
    for (BasicBlock *S : G.successors(BB.get())) {
      const auto &P = G.predecessors(S);
      EXPECT_NE(std::find(P.begin(), P.end(), BB.get()), P.end());
    }
}

TEST(DominatorAnalysis, EntryDominatesEverything) {
  Module M;
  CgNest Nest = buildCgNest(M);
  CFG G(*Nest.F);
  DominatorTree DT(G, /*Post=*/false);
  for (BasicBlock *BB : G.reversePostOrder())
    EXPECT_TRUE(DT.dominates(Nest.F->entry(), BB));
  EXPECT_EQ(DT.root(), Nest.F->entry());
}

TEST(DominatorAnalysis, HeaderDominatesBody) {
  Module M;
  CgNest Nest = buildCgNest(M);
  CFG G(*Nest.F);
  DominatorTree DT(G, false);
  BasicBlock *InnerHeader = nullptr, *InnerBody = nullptr, *OuterHeader =
                                                               nullptr;
  for (const auto &BB : Nest.F->blocks()) {
    if (BB->name() == "inner.header")
      InnerHeader = BB.get();
    if (BB->name() == "inner.body")
      InnerBody = BB.get();
    if (BB->name() == "outer.header")
      OuterHeader = BB.get();
  }
  ASSERT_TRUE(InnerHeader && InnerBody && OuterHeader);
  EXPECT_TRUE(DT.dominates(InnerHeader, InnerBody));
  EXPECT_TRUE(DT.dominates(OuterHeader, InnerHeader));
  EXPECT_FALSE(DT.dominates(InnerBody, InnerHeader));
}

TEST(DominatorAnalysis, PostDominatorsRootAtExit) {
  Module M;
  CgNest Nest = buildCgNest(M);
  CFG G(*Nest.F);
  DominatorTree PDT(G, /*Post=*/true);
  ASSERT_NE(PDT.root(), nullptr);
  EXPECT_EQ(PDT.root()->name(), "exit");
  // The exit post-dominates the entry.
  EXPECT_TRUE(PDT.dominates(PDT.root(), Nest.F->entry()));
}

TEST(LoopAnalysis, FindsTwoNestedLoops) {
  Module M;
  CgNest Nest = buildCgNest(M);
  CFG G(*Nest.F);
  DominatorTree DT(G, false);
  LoopInfo LI(G, DT);
  ASSERT_EQ(LI.topLevelLoops().size(), 1u);
  Loop *Outer = LI.topLevelLoops().front();
  EXPECT_EQ(Outer->header()->name(), "outer.header");
  ASSERT_EQ(Outer->subLoops().size(), 1u);
  Loop *Inner = Outer->subLoops().front();
  EXPECT_EQ(Inner->header()->name(), "inner.header");
  EXPECT_EQ(Inner->depth(), 2u);
  EXPECT_TRUE(Outer->contains(Inner));
  ASSERT_NE(Inner->preheader(G), nullptr);
  EXPECT_EQ(Inner->preheader(G)->name(), "inner.pre");
}

TEST(LoopAnalysis, PhaseNestHasTwoSiblingsInOrder) {
  Module M;
  PhaseNest Nest = buildPhaseNest(M);
  CFG G(*Nest.F);
  DominatorTree DT(G, false);
  LoopInfo LI(G, DT);
  ASSERT_EQ(LI.topLevelLoops().size(), 1u);
  EXPECT_EQ(LI.topLevelLoops().front()->subLoops().size(), 2u);
  EXPECT_EQ(LI.allLoops().size(), 3u);
}

TEST(Interp, ExecutesCgNestCorrectly) {
  Module M;
  CgNest Nest = buildCgNest(M, /*NumRows=*/5, /*DataSize=*/16);
  MemoryState Mem(M);
  seedCgMemory(Nest, Mem, /*RowLen=*/4, /*Stride=*/2);

  // Reference model in plain C++.
  std::vector<std::int64_t> C = Mem.arrayData(Nest.C);
  const auto &A = Mem.arrayData(Nest.A);
  const auto &B = Mem.arrayData(Nest.B);
  for (unsigned I = 0; I < 5; ++I)
    for (std::int64_t J = A[I]; J < B[I]; ++J)
      C[static_cast<std::size_t>(J)] =
          C[static_cast<std::size_t>(J)] * 3 + I;

  const InterpResult R = interpret(*Nest.F, {}, Mem);
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(Mem.arrayData(Nest.C), C);
}

TEST(Interp, TrapsOnOutOfBounds) {
  Module M;
  GlobalArray *A = M.createArray("a", 4);
  Function *F = M.createFunction("oob", 0);
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.store(A, B.constant(9), B.constant(1));
  B.ret(B.constant(0));
  MemoryState Mem(M);
  const InterpResult R = interpret(*F, {}, Mem);
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("out of bounds"), std::string::npos);
}

TEST(Interp, RunsOutOfFuelOnInfiniteLoop) {
  Module M;
  Function *F = M.createFunction("spin", 0);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *LoopBB = F->createBlock("loop");
  BasicBlock *ExitBB = F->createBlock("exit");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.br(LoopBB);
  B.setInsertPoint(LoopBB);
  B.br(LoopBB);
  B.setInsertPoint(ExitBB);
  B.ret(B.constant(0));
  MemoryState Mem(M);
  InterpOptions Opt;
  Opt.Fuel = 1000;
  const InterpResult R = interpret(*F, {}, Mem, Opt);
  EXPECT_FALSE(R.Completed);
  EXPECT_EQ(R.Error, "out of fuel");
}

TEST(Interp, CallsNativeFunctions) {
  Module M;
  Function *F = M.createFunction("caller", 1);
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  Instruction *R = B.call("twice", {F->arg(0)}, "r");
  B.ret(R);
  MemoryState Mem(M);
  InterpOptions Opt;
  Opt.Natives["twice"] = [](const std::vector<std::int64_t> &A) {
    return A.at(0) * 2;
  };
  const InterpResult Res = interpret(*F, {21}, Mem, Opt);
  ASSERT_TRUE(Res.Completed) << Res.Error;
  EXPECT_EQ(Res.ReturnValue, 42);
}

TEST(Interp, ProduceConsumeThroughQueueBus) {
  Module M;
  Function *Producer = M.createFunction("producer", 0);
  Function *Consumer = M.createFunction("consumer", 0);
  IRBuilder B(M);
  B.setInsertPoint(Producer->createBlock("entry"));
  B.produce(0, B.constant(11));
  B.produce(0, B.constant(31));
  B.ret(B.constant(0));
  B.setInsertPoint(Consumer->createBlock("entry"));
  Instruction *V1 = B.consume(0, "v1");
  Instruction *V2 = B.consume(0, "v2");
  B.ret(B.add(V1, V2, "sum"));

  MemoryState Mem(M);
  QueueBus Bus(1);
  InterpOptions Opt;
  Opt.Bus = &Bus;
  ASSERT_TRUE(interpret(*Producer, {}, Mem, Opt).Completed);
  const InterpResult R = interpret(*Consumer, {}, Mem, Opt);
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.ReturnValue, 42);
}

TEST(Interp, AccessTraceSeesEveryMemoryOp) {
  Module M;
  CgNest Nest = buildCgNest(M, 4, 16);
  MemoryState Mem(M);
  seedCgMemory(Nest, Mem, 3, 2);
  std::uint64_t Loads = 0, Stores = 0;
  InterpOptions Opt;
  Opt.AccessTrace = [&](const GlobalArray *, std::int64_t, bool IsStore) {
    (IsStore ? Stores : Loads) += 1;
  };
  ASSERT_TRUE(interpret(*Nest.F, {}, Mem, Opt).Completed);
  // 4 rows of 3 iterations: 12 C-loads + 12 C-stores + 8 bound loads.
  EXPECT_EQ(Stores, 12u);
  EXPECT_EQ(Loads, 12u + 8u);
}

TEST(Cloning, CloneBehavesIdentically) {
  Module M;
  CgNest Nest = buildCgNest(M, 6, 24);
  CloneMap Map;
  Function *Clone = cloneFunction(M, *Nest.F, "cg.clone", Map);
  ASSERT_TRUE(verifyFunction(*Clone));

  MemoryState M1(M), M2(M);
  seedCgMemory(Nest, M1);
  seedCgMemory(Nest, M2);
  ASSERT_TRUE(interpret(*Nest.F, {}, M1).Completed);
  ASSERT_TRUE(interpret(*Clone, {}, M2).Completed);
  EXPECT_EQ(M1.digest(), M2.digest());
}

TEST(Printer, RendersRecognizableText) {
  Module M;
  CgNest Nest = buildCgNest(M);
  const std::string Text = printFunction(*Nest.F);
  EXPECT_NE(Text.find("func @cg"), std::string::npos);
  EXPECT_NE(Text.find("%j = phi"), std::string::npos);
  EXPECT_NE(Text.find("store @C"), std::string::npos);
  EXPECT_NE(Text.find("condbr"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Textual parser
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

TEST(Parser, RoundTripsTheCgNest) {
  Module M;
  CgNest Nest = buildCgNest(M, 6, 24);
  const std::string Text = printModule(M);

  ParseResult R = parseModule(Text);
  ASSERT_TRUE(R.ok()) << R.Error << " at line " << R.ErrorLine;
  ASSERT_NE(R.M, nullptr);

  // Textual round trip is exact.
  EXPECT_EQ(printModule(*R.M), Text);

  // And the reparsed module verifies and computes the same result.
  Function *F2 = R.M->getFunction("cg");
  ASSERT_NE(F2, nullptr);
  EXPECT_TRUE(verifyFunction(*F2));

  MemoryState M1(M), M2(*R.M);
  seedCgMemory(Nest, M1, 4, 2);
  // Mirror the seeding into the reparsed module's arrays by name.
  for (const auto &A : M.arrays()) {
    const GlobalArray *A2 = R.M->getArray(A->name());
    ASSERT_NE(A2, nullptr);
    M2.arrayData(A2) = M1.arrayData(A.get());
  }
  ASSERT_TRUE(interpret(*Nest.F, {}, M1).Completed);
  ASSERT_TRUE(interpret(*F2, {}, M2).Completed);
  EXPECT_EQ(M1.digest(), M2.digest());
}

TEST(Parser, RoundTripsThePhaseNest) {
  Module M;
  buildPhaseNest(M, 4, 6);
  const std::string Text = printModule(M);
  ParseResult R = parseModule(Text);
  ASSERT_TRUE(R.ok()) << R.Error << " at line " << R.ErrorLine;
  EXPECT_EQ(printModule(*R.M), Text);
  EXPECT_TRUE(verifyFunction(*R.M->getFunction("phases")));
}

TEST(Parser, ParsesArgumentsAndCalls) {
  const char *Text = "func @f(%x, %y) {\n"
                     "entry:\n"
                     "  %s = add %x, %y\n"
                     "  %r = call @twice %s\n"
                     "  ret %r\n"
                     "}\n";
  ParseResult R = parseModule(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  Function *F = R.M->getFunction("f");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->numArgs(), 2u);
  MemoryState Mem(*R.M);
  InterpOptions Opt;
  Opt.Natives["twice"] = [](const std::vector<std::int64_t> &A) {
    return A.at(0) * 2;
  };
  const InterpResult Res = interpret(*F, {20, 1}, Mem, Opt);
  ASSERT_TRUE(Res.Completed) << Res.Error;
  EXPECT_EQ(Res.ReturnValue, 42);
}

TEST(Parser, ParsesProduceConsumeQueueIds) {
  const char *Text = "func @p() {\n"
                     "entry:\n"
                     "  produce q3 7\n"
                     "  %v = consume q3\n"
                     "  ret %v\n"
                     "}\n";
  ParseResult R = parseModule(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  MemoryState Mem(*R.M);
  QueueBus Bus(4);
  InterpOptions Opt;
  Opt.Bus = &Bus;
  const InterpResult Res =
      interpret(*R.M->getFunction("p"), {}, Mem, Opt);
  ASSERT_TRUE(Res.Completed) << Res.Error;
  EXPECT_EQ(Res.ReturnValue, 7);
}

TEST(Parser, ReportsUsefulErrors) {
  EXPECT_FALSE(parseModule("func @f() {\nentry:\n  %x = bogus 1\n}\n").ok());
  EXPECT_FALSE(parseModule("  %x = add 1, 2\n").ok()); // outside a function
  EXPECT_FALSE(parseModule("func @f() {\n  ret 0\n}\n").ok()); // no label
  EXPECT_FALSE(
      parseModule("func @f() {\nentry:\n  %x = add %nope, 1\n  ret 0\n}\n")
          .ok()); // undefined value
  const ParseResult R = parseModule("func @f() {\nentry:\n  %x = zzz 1\n}\n");
  EXPECT_EQ(R.ErrorLine, 3u);
  EXPECT_NE(R.Error.find("zzz"), std::string::npos);
}

TEST(Parser, RejectsBranchToUnknownBlock) {
  EXPECT_FALSE(
      parseModule("func @f() {\nentry:\n  br label nowhere\n}\n").ok());
}

//===- tests/CheckpointTests.cpp - Checkpoint substrate battery ----------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checkpoint-substrate battery (DESIGN.md §16): every substrate ×
/// {clean run, injected mid-epoch abort, abort-then-recovery} must produce
/// bit-identical restores and the same snapshotsTaken(), including regions
/// that straddle page boundaries and sub-page (<4KiB, unaligned) regions.
/// Plus the registry's registration hardening (zero-byte, null, and
/// overlapping registrations exit 2), the strict CIP_CKPT knob, the env-pin
/// precedence, and the auto dirty-ratio resolution.
///
//===----------------------------------------------------------------------===//

#include "memory/CheckpointSubstrate.h"
#include "speccross/Checkpoint.h"
#include "speccross/SpecCrossRuntime.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace cip;
using namespace cip::speccross;

namespace {

/// Saves/restores one environment variable around a test.
class EnvGuard {
public:
  explicit EnvGuard(const char *Name) : Name(Name) {
    if (const char *V = std::getenv(Name)) {
      Saved = V;
      Had = true;
    }
  }
  ~EnvGuard() {
    if (Had)
      setenv(Name, Saved.c_str(), 1);
    else
      unsetenv(Name);
  }

private:
  const char *Name;
  std::string Saved;
  bool Had = false;
};

const std::vector<memory::SubstrateKind> &allSubstrates() {
  static const std::vector<memory::SubstrateKind> Kinds = {
      memory::SubstrateKind::Eager, memory::SubstrateKind::PageDirty,
      memory::SubstrateKind::SoftDirty};
  return Kinds;
}

/// Three deliberately awkward regions inside one arena: a page-aligned
/// multi-page block, a sub-page unaligned block, and a block straddling a
/// page boundary. The bytes between them are canaries a clamped restore
/// must never touch.
struct AwkwardRegions {
  explicit AwkwardRegions()
      : Page(memory::pageSize()), Arena(8 * Page + 64, 0) {
    // Region 0: two whole pages, page-aligned within the arena.
    unsigned char *Base = Arena.data();
    unsigned char *Aligned = Base + (Page - reinterpret_cast<std::uintptr_t>(
                                                Base) % Page) % Page;
    R[0] = {Aligned, 2 * Page};
    // Region 1: sub-page (<4KiB) and unaligned — starts 7 bytes into a page.
    R[1] = {Aligned + 3 * Page + 7, 1000};
    // Region 2: 128 bytes straddling a page boundary.
    R[2] = {Aligned + 5 * Page - 64, 128};
    std::uint64_t X = 0x243f6a8885a308d3ULL;
    for (auto &B : Arena) {
      X = X * 6364136223846793005ULL + 1442695040888963407ULL;
      B = static_cast<unsigned char>(X >> 56);
    }
  }

  void registerAll(CheckpointRegistry &Reg) {
    for (const auto &Desc : R)
      Reg.registerRegion(Desc.Ptr, Desc.Bytes);
  }

  std::vector<std::vector<unsigned char>> image() const {
    std::vector<std::vector<unsigned char>> Out;
    for (const auto &Desc : R)
      Out.emplace_back(Desc.Ptr, Desc.Ptr + Desc.Bytes);
    return Out;
  }

  void scribble(unsigned Salt) {
    for (const auto &Desc : R)
      for (std::size_t I = 0; I < Desc.Bytes; I += 1 + I % 3)
        Desc.Ptr[I] = static_cast<unsigned char>(Desc.Ptr[I] + Salt + I);
  }

  const std::size_t Page;
  std::vector<unsigned char> Arena;
  memory::RegionDesc R[3];
};

} // namespace

//===----------------------------------------------------------------------===//
// Bit-identical restores over awkward region shapes
//===----------------------------------------------------------------------===//

TEST(CheckpointSubstrates, AwkwardRegionsRestoreBitIdentically) {
  // Mid-epoch abort at the registry level: snapshot, partially overwrite
  // the regions (the abandoned speculative work), restore — every
  // registered byte must come back, and every unregistered neighbor byte
  // (canaries sharing pages with the regions) must keep its current value.
  for (memory::SubstrateKind K : allSubstrates()) {
    SCOPED_TRACE(memory::substrateName(K));
    AwkwardRegions A;
    CheckpointRegistry Reg;
    Reg.setSubstrate(K);
    A.registerAll(Reg);
    Reg.takeSnapshot();
    const auto Want = A.image();

    A.scribble(13);
    // Canary: a byte on the same page as the unaligned region but outside
    // it; restore must clamp to the registered range.
    unsigned char *Canary = A.R[1].Ptr + A.R[1].Bytes + 5;
    *Canary = 0xEE;

    Reg.restoreSnapshot();
    const auto Got = A.image();
    for (int I = 0; I < 3; ++I)
      EXPECT_EQ(Got[I], Want[I]) << "region " << I;
    EXPECT_EQ(*Canary, 0xEE) << "restore touched an unregistered byte";
  }
}

TEST(CheckpointSubstrates, AbortThenRecoveryAcrossIntervals) {
  // Abort-then-recovery: after a restore, the region keeps executing and
  // checkpointing; the next interval's snapshot/restore must still be
  // bit-identical (write tracking has to survive a rollback intact).
  std::vector<std::uint64_t> Snaps;
  for (memory::SubstrateKind K : allSubstrates()) {
    SCOPED_TRACE(memory::substrateName(K));
    AwkwardRegions A;
    CheckpointRegistry Reg;
    Reg.setSubstrate(K);
    A.registerAll(Reg);

    Reg.takeSnapshot();
    A.scribble(1); // speculative work that will be aborted
    Reg.restoreSnapshot();

    A.scribble(2); // recovery: committed re-execution
    Reg.takeSnapshot();
    const auto Want = A.image();
    A.scribble(3); // next interval aborts too
    Reg.restoreSnapshot();

    const auto Got = A.image();
    for (int I = 0; I < 3; ++I)
      EXPECT_EQ(Got[I], Want[I]) << "region " << I;
    Snaps.push_back(Reg.snapshotsTaken());
  }
  for (std::size_t I = 1; I < Snaps.size(); ++I)
    EXPECT_EQ(Snaps[I], Snaps[0]) << "substrate " << I;
}

//===----------------------------------------------------------------------===//
// Engine battery: every substrate under the speculative runtime
//===----------------------------------------------------------------------===//

namespace {

/// Conflict-free engine run (task T always owns address T) on every
/// substrate; with \p Inject, one epoch mid-run is forced to misspeculate,
/// so the run aborts, restores, and recovers non-speculatively.
void runEngineBattery(bool Inject) {
  const std::uint32_t Epochs = 24;
  const std::uint32_t Tasks = 6;

  std::vector<std::uint32_t> Expected(Tasks, 0);
  for (std::uint32_t E = 0; E < Epochs; ++E)
    for (std::uint32_t T = 0; T < Tasks; ++T)
      Expected[T] += E + T + 1;

  std::vector<std::uint64_t> Snaps;
  for (memory::SubstrateKind K : allSubstrates()) {
    SCOPED_TRACE(memory::substrateName(K));
    std::vector<std::uint32_t> Cells(Tasks, 0);
    CheckpointRegistry Reg;
    Reg.setSubstrate(K);
    Reg.registerBuffer(Cells);

    SpecRegion R;
    R.NumEpochs = Epochs;
    R.NumTasks = [Tasks](std::uint32_t) {
      return static_cast<std::size_t>(Tasks);
    };
    R.RunTask = [&Cells](std::uint32_t E, std::size_t T) {
      Cells[T] += E + static_cast<std::uint32_t>(T) + 1;
    };
    R.TaskAddresses = [](std::uint32_t, std::size_t T,
                         std::vector<std::uint64_t> &Addrs) {
      Addrs.push_back(T);
    };
    R.Checkpoints = &Reg;

    SpecConfig Cfg;
    Cfg.NumWorkers = 3;
    Cfg.CheckpointIntervalEpochs = 8;
    if (Inject)
      Cfg.InjectMisspecAtEpoch = 12; // inside the second round
    const SpecStats S = runSpecCross(R, Cfg);

    EXPECT_EQ(Cells, Expected);
    EXPECT_EQ(S.Epochs, Epochs);
    if (Inject)
      EXPECT_GE(S.Misspeculations, 1u);
    else
      EXPECT_EQ(S.Misspeculations, 0u);
    Snaps.push_back(Reg.snapshotsTaken());
  }
  // The snapshot protocol is substrate-independent: same region, same
  // interval, same injected abort => same count everywhere.
  for (std::size_t I = 1; I < Snaps.size(); ++I)
    EXPECT_EQ(Snaps[I], Snaps[0]) << "substrate " << I;
}

} // namespace

TEST(CheckpointSubstrates, CleanEngineRunMatchesSequential) {
  runEngineBattery(false);
}

TEST(CheckpointSubstrates, InjectedAbortRecoversOnEverySubstrate) {
  runEngineBattery(true);
}

//===----------------------------------------------------------------------===//
// Accounting: page-granular snapshots copy only the written set
//===----------------------------------------------------------------------===//

TEST(CheckpointSubstrates, PageDirtyCopiesOnlyWrittenPages) {
  CheckpointRegistry Reg;
  Reg.setSubstrate(memory::SubstrateKind::PageDirty);
  if (Reg.substrateKind() != memory::SubstrateKind::PageDirty)
    GTEST_SKIP() << "fault-driven substrate remapped in this build";

  const std::size_t Page = memory::pageSize();
  std::vector<unsigned char> Big(64 * Page, 1);
  Reg.registerBuffer(Big);

  Reg.takeSnapshot(); // first snapshot: full copy
  EXPECT_EQ(Reg.lastDirtyPages(), Reg.trackedPages());

  Big[0] = 2;            // page 0
  Big[10 * Page] = 3;    // page 10
  Reg.takeSnapshot();    // second: only the two written pages
  EXPECT_LE(Reg.lastDirtyPages(), 3u);
  EXPECT_GE(Reg.lastDirtyPages(), 2u);
  EXPECT_LE(Reg.lastBytesCopied(), 3 * Page);
  EXPECT_GT(Reg.faultCount() + 1, 1u); // faults drained or counted, not UB

  Big[20 * Page] = 4;
  Reg.restoreSnapshot();
  EXPECT_EQ(Big[20 * Page], 1);
  EXPECT_EQ(Big[0], 2);
}

TEST(CheckpointSubstrates, EagerAlwaysCopiesEverything) {
  CheckpointRegistry Reg;
  Reg.setSubstrate(memory::SubstrateKind::Eager);
  const std::size_t Page = memory::pageSize();
  std::vector<unsigned char> Big(16 * Page, 1);
  Reg.registerBuffer(Big);
  Reg.takeSnapshot();
  Big[0] = 2;
  Reg.takeSnapshot();
  EXPECT_EQ(Reg.lastDirtyPages(), Reg.trackedPages());
  EXPECT_EQ(Reg.lastBytesCopied(), Big.size());
}

//===----------------------------------------------------------------------===//
// Selection: setSubstrate, CIP_CKPT pin, auto resolution
//===----------------------------------------------------------------------===//

TEST(CheckpointSubstrates, EnvPinWinsOverProgrammaticSelection) {
  EnvGuard G("CIP_CKPT");
  setenv("CIP_CKPT", "eager", 1);
  CheckpointRegistry Reg;
  EXPECT_STREQ(Reg.substrateName(), "eager");
  Reg.setSubstrate(memory::SubstrateKind::PageDirty);
  EXPECT_STREQ(Reg.substrateName(), "eager") << "env pin must win";
}

TEST(CheckpointSubstrates, AutoResolvesDenseWritersToEager) {
  EnvGuard G("CIP_CKPT");
  unsetenv("CIP_CKPT");
  CheckpointRegistry Reg;
  Reg.setSubstrate(memory::SubstrateKind::Auto);
  EXPECT_TRUE(Reg.autoPending());

  const std::size_t Page = memory::pageSize();
  std::vector<unsigned char> Big(16 * Page, 1);
  Reg.registerBuffer(Big);
  Reg.takeSnapshot();
  // Dense interval: rewrite the whole footprint, so the measured dirty
  // ratio is ~1.0 > AutoDenseRatio and page tracking is pure overhead.
  for (auto &B : Big)
    ++B;
  Reg.takeSnapshot();
  EXPECT_FALSE(Reg.autoPending());
  EXPECT_EQ(Reg.substrateKind(), memory::SubstrateKind::Eager);
  EXPECT_EQ(Reg.snapshotsTaken(), 2u);
  // The resolved substrate's snapshot must still be restorable.
  Big[Page] = 0;
  Reg.restoreSnapshot();
  EXPECT_EQ(Big[Page], 2);
}

TEST(CheckpointSubstrates, AutoKeepsPageTrackingForSparseWriters) {
  EnvGuard G("CIP_CKPT");
  unsetenv("CIP_CKPT");
  // Only meaningful where the fault-driven substrate is real: under the
  // sanitizer remap (or a kernel without soft-dirty) the page tracker
  // reports full copies and auto legitimately resolves to eager.
  {
    CheckpointRegistry Probe;
    Probe.setSubstrate(memory::SubstrateKind::PageDirty);
    if (Probe.substrateKind() != memory::SubstrateKind::PageDirty)
      GTEST_SKIP() << "fault-driven substrate remapped in this build";
  }
  CheckpointRegistry Reg;
  Reg.setSubstrate(memory::SubstrateKind::Auto);
  const std::size_t Page = memory::pageSize();
  std::vector<unsigned char> Big(64 * Page, 1);
  Reg.registerBuffer(Big);
  Reg.takeSnapshot();
  Big[0] = 2; // sparse: one page out of 64
  Reg.takeSnapshot();
  EXPECT_FALSE(Reg.autoPending());
  EXPECT_EQ(Reg.substrateKind(), memory::SubstrateKind::PageDirty);
}

//===----------------------------------------------------------------------===//
// Registration hardening and the strict CIP_CKPT knob
//===----------------------------------------------------------------------===//

TEST(CheckpointDeathTest, ZeroByteRegistrationExits2) {
  std::vector<int> A = {1};
  EXPECT_EXIT(
      {
        CheckpointRegistry Reg;
        Reg.registerRegion(A.data(), 0);
      },
      testing::ExitedWithCode(2), "at least one byte");
}

TEST(CheckpointDeathTest, NullRegistrationExits2) {
  EXPECT_EXIT(
      {
        CheckpointRegistry Reg;
        Reg.registerRegion(nullptr, 64);
      },
      testing::ExitedWithCode(2), "invalid");
}

TEST(CheckpointDeathTest, OverlappingRegistrationExits2) {
  std::vector<unsigned char> Buf(256, 0);
  EXPECT_EXIT(
      {
        CheckpointRegistry Reg;
        Reg.registerRegion(Buf.data(), 128);
        Reg.registerRegion(Buf.data() + 64, 128);
      },
      testing::ExitedWithCode(2), "overlaps region #0");
}

TEST(CheckpointDeathTest, GarbageCkptKnobExits2) {
  EXPECT_EXIT(
      {
        setenv("CIP_CKPT", "copy-on-write", 1);
        CheckpointRegistry Reg;
      },
      testing::ExitedWithCode(2), "CIP_CKPT='copy-on-write' is invalid");
}

TEST(Checkpoint, RegistrationAfterSnapshotInvalidatesIt) {
  for (memory::SubstrateKind K : allSubstrates()) {
    SCOPED_TRACE(memory::substrateName(K));
    std::vector<std::uint32_t> A(2048, 7);
    std::vector<std::uint32_t> B(512, 9);
    CheckpointRegistry Reg;
    Reg.setSubstrate(K);
    Reg.registerBuffer(A);
    Reg.takeSnapshot();
    EXPECT_TRUE(Reg.hasSnapshot());

    Reg.registerBuffer(B);
    EXPECT_FALSE(Reg.hasSnapshot()) << "a grown region set cannot be "
                                       "restored from the old snapshot";
    EXPECT_EQ(Reg.numRegions(), 2u);

    Reg.takeSnapshot();
    A[0] = 1;
    B[0] = 2;
    Reg.restoreSnapshot();
    EXPECT_EQ(A[0], 7u);
    EXPECT_EQ(B[0], 9u);
  }
}

//===- tests/AnalysisTests.cpp - Unit tests for src/analysis -------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "analysis/DepProfiler.h"
#include "analysis/IndexExpr.h"
#include "analysis/PDG.h"
#include "analysis/SCC.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "tests/TestNests.h"

#include <gtest/gtest.h>

using namespace cip;
using namespace cip::analysis;
using namespace cip::ir;
using namespace cip::tests;

namespace {

/// Analysis bundle over one function.
struct Analyses {
  explicit Analyses(const Function &F)
      : G(F), DT(G, false), PDT(G, true), LI(G, DT) {}
  CFG G;
  DominatorTree DT;
  DominatorTree PDT;
  LoopInfo LI;
};

} // namespace

TEST(IndexExprAnalysis, RecognizesInductionVariable) {
  Module M;
  CgNest Nest = buildCgNest(M);
  Analyses A(*Nest.F);
  Loop *Outer = A.LI.topLevelLoops().front();
  Loop *Inner = Outer->subLoops().front();

  const auto OuterIV = findInductionVar(*Outer, A.G);
  ASSERT_TRUE(OuterIV.has_value());
  EXPECT_EQ(OuterIV->Phi->name(), "i");
  EXPECT_EQ(OuterIV->Step, 1);

  const auto InnerIV = findInductionVar(*Inner, A.G);
  ASSERT_TRUE(InnerIV.has_value());
  EXPECT_EQ(InnerIV->Phi->name(), "j");
  EXPECT_EQ(InnerIV->Phi->name(), "j");
}

TEST(IndexExprAnalysis, AffineFormsAndDependenceTests) {
  Module M;
  CgNest Nest = buildCgNest(M);
  Analyses A(*Nest.F);
  Loop *Inner = A.LI.topLevelLoops().front()->subLoops().front();
  const auto IV = findInductionVar(*Inner, A.G);
  ASSERT_TRUE(IV.has_value());

  // j itself: 1*j + 0.
  const IndexExpr J = analyzeIndex(IV->Phi, *Inner, *IV);
  ASSERT_TRUE(J.Valid);
  EXPECT_EQ(J.Scale, 1);
  EXPECT_EQ(J.Offset, 0);

  // j + 2. (Stack-built expressions get an in-loop parent so the analysis
  // does not misread them as loop invariants.)
  BasicBlock *Body = IV->Phi->parent();
  Instruction JPlus2(Opcode::Add, "tmp", {const_cast<Instruction *>(IV->Phi),
                                          M.getConstant(2)});
  JPlus2.setParent(Body);
  const IndexExpr J2 = analyzeIndex(&JPlus2, *Inner, *IV);
  ASSERT_TRUE(J2.Valid);
  EXPECT_EQ(J2.Offset, 2);

  // Strong SIV: j vs j+2 -> carried; j vs j -> intra only.
  EXPECT_EQ(testDependence(J, J2), DepTest::Carried);
  EXPECT_EQ(testDependence(J, J), DepTest::IntraOnly);

  // ZIV: 3 vs 4 -> no dep; 3 vs 3 -> dep.
  EXPECT_EQ(testDependence(IndexExpr::constant(3), IndexExpr::constant(4)),
            DepTest::NoDep);
  EXPECT_EQ(testDependence(IndexExpr::constant(3), IndexExpr::constant(3)),
            DepTest::Carried);

  // 2*j vs 2*j+1: different residues -> no dep.
  Instruction TwoJ(Opcode::Mul, "twoj",
                   {const_cast<Instruction *>(IV->Phi), M.getConstant(2)});
  TwoJ.setParent(Body);
  Instruction TwoJ1(Opcode::Add, "twoj1", {&TwoJ, M.getConstant(1)});
  TwoJ1.setParent(Body);
  const IndexExpr E2J = analyzeIndex(&TwoJ, *Inner, *IV);
  const IndexExpr E2J1 = analyzeIndex(&TwoJ1, *Inner, *IV);
  ASSERT_TRUE(E2J.Valid && E2J1.Valid);
  EXPECT_EQ(testDependence(E2J, E2J1), DepTest::NoDep);

  // Unanalyzable: a load-derived index.
  const IndexExpr Bad;
  EXPECT_EQ(testDependence(Bad, J), DepTest::May);
}

TEST(PDGAnalysis, InnerLoopOfCgIsIndependent) {
  Module M;
  CgNest Nest = buildCgNest(M);
  Analyses A(*Nest.F);
  Loop *Inner = A.LI.topLevelLoops().front()->subLoops().front();
  PDG G(*Nest.F, A.G, A.PDT, A.LI, *Inner);
  // C[j] load/store pairs are intra-iteration only: no carried memory dep
  // (the Fig 3.1(b) result that makes the inner loop DOALL).
  EXPECT_FALSE(G.hasLoopCarriedMemoryDep());
}

TEST(PDGAnalysis, OuterLoopOfCgCarriesUpdateDependence) {
  Module M;
  CgNest Nest = buildCgNest(M);
  Analyses A(*Nest.F);
  Loop *Outer = A.LI.topLevelLoops().front();
  PDG G(*Nest.F, A.G, A.PDT, A.LI, *Outer);
  // The update(&C[j]) dependence from E to itself (Fig 3.1(c)).
  EXPECT_TRUE(G.hasLoopCarriedMemoryDep());
  EXPECT_TRUE(G.hasCrossInvocationMemoryDep());
}

TEST(PDGAnalysis, ControlDependencesFollowBranches) {
  Module M;
  CgNest Nest = buildCgNest(M);
  Analyses A(*Nest.F);
  Loop *Outer = A.LI.topLevelLoops().front();
  PDG G(*Nest.F, A.G, A.PDT, A.LI, *Outer);
  // The inner-loop exit test controls the inner body's store.
  const Instruction *InnerBranch = nullptr;
  const Instruction *Store = nullptr;
  for (const Instruction *I : G.nodes()) {
    if (I->opcode() == Opcode::CondBr && I->parent()->name() == "inner.header")
      InnerBranch = I;
    if (I->opcode() == Opcode::Store)
      Store = I;
  }
  ASSERT_TRUE(InnerBranch && Store);
  bool Found = false;
  for (const DepEdge &E : G.edges())
    Found |= E.Kind == DepKind::Control && E.Src == InnerBranch &&
             E.Dst == Store;
  EXPECT_TRUE(Found);
}

TEST(PDGAnalysis, PhaseNestFlagsCrossInvocationDeps) {
  Module M;
  PhaseNest Nest = buildPhaseNest(M);
  Analyses A(*Nest.F);
  Loop *Outer = A.LI.topLevelLoops().front();
  PDG G(*Nest.F, A.G, A.PDT, A.LI, *Outer);
  // Y written in L1, read in L2 (and X vice versa): dependences between
  // different inner loops must be flagged cross-invocation.
  EXPECT_TRUE(G.hasCrossInvocationMemoryDep());
  unsigned CrossPhase = 0;
  for (const DepEdge &E : G.edges())
    if (E.Kind == DepKind::Memory && E.CrossInvocation)
      ++CrossPhase;
  EXPECT_GE(CrossPhase, 2u); // at least Y (L1->L2) and X (L2->L1)
}

TEST(SccAnalysis, CgOuterPdgHasCyclicUpdateComponent) {
  Module M;
  CgNest Nest = buildCgNest(M);
  Analyses A(*Nest.F);
  Loop *Outer = A.LI.topLevelLoops().front();
  PDG G(*Nest.F, A.G, A.PDT, A.LI, *Outer);
  DagScc Dag(G);
  EXPECT_GT(Dag.numComponents(), 1u);

  // The C[j] load and store sit in one cyclic component.
  const Instruction *LoadC = nullptr, *StoreC = nullptr;
  for (const Instruction *I : G.nodes()) {
    if (I->opcode() == Opcode::Load && I->operand(0) == Nest.C)
      LoadC = I;
    if (I->opcode() == Opcode::Store)
      StoreC = I;
  }
  ASSERT_TRUE(LoadC && StoreC);
  EXPECT_EQ(Dag.componentOf(LoadC), Dag.componentOf(StoreC));
  EXPECT_TRUE(Dag.isCyclic(Dag.componentOf(LoadC)));

  // The topological order covers every component exactly once.
  const auto Topo = Dag.topoOrder();
  EXPECT_EQ(Topo.size(), Dag.numComponents());
}

TEST(SccAnalysis, TopoOrderRespectsEdges) {
  Module M;
  CgNest Nest = buildCgNest(M);
  Analyses A(*Nest.F);
  Loop *Outer = A.LI.topLevelLoops().front();
  PDG G(*Nest.F, A.G, A.PDT, A.LI, *Outer);
  DagScc Dag(G);
  const auto Topo = Dag.topoOrder();
  std::vector<unsigned> PosOf(Dag.numComponents());
  for (unsigned I = 0; I < Topo.size(); ++I)
    PosOf[Topo[I]] = I;
  for (const auto &[Src, Dst] : Dag.edges())
    EXPECT_LT(PosOf[Src], PosOf[Dst]);
}

TEST(DepProfilerAnalysis, MeasuresManifestRateAndDistance) {
  // Instrument the CG nest with the marker calls and profile it with a
  // stride that overlaps every consecutive pair of rows.
  Module M;
  CgNest Nest = buildCgNest(M, /*NumRows=*/20, /*DataSize=*/64);
  // Insert markers: invocation at inner preheader, iteration at inner body.
  for (const auto &BB : Nest.F->blocks()) {
    auto Mark = [&](const char *Name) {
      auto C = std::make_unique<Instruction>(Opcode::Call, "",
                                             std::vector<Value *>{});
      C->setCalleeName(Name);
      BB->insert(0, std::move(C));
    };
    if (BB->name() == "inner.pre")
      Mark("cip.invocation");
    if (BB->name() == "inner.body")
      Mark("cip.iteration");
  }
  ASSERT_TRUE(verifyFunction(*Nest.F));

  MemoryState Mem(M);
  seedCgMemory(Nest, Mem, /*RowLen=*/6, /*Stride=*/3);
  const LoopNestProfile P = profileLoopNest(*Nest.F, {}, Mem);
  ASSERT_TRUE(P.Exec.Completed) << P.Exec.Error;
  EXPECT_EQ(P.Invocations, 20u);
  EXPECT_EQ(P.Iterations, 120u);
  // Stride 3 < RowLen 6: every consecutive pair overlaps -> 100% manifest.
  EXPECT_DOUBLE_EQ(P.manifestRate(), 1.0);
  // Overlap of 3 elements, 6 iterations per row: nearest dependence is the
  // first overlapping element, 3 iterations after the previous access.
  EXPECT_EQ(P.MinIterationDistance, 3u);
}

TEST(DepProfilerAnalysis, DisjointRowsShowNoDependences) {
  Module M;
  CgNest Nest = buildCgNest(M, /*NumRows=*/8, /*DataSize=*/64);
  for (const auto &BB : Nest.F->blocks()) {
    if (BB->name() != "inner.pre" && BB->name() != "inner.body")
      continue;
    auto C = std::make_unique<Instruction>(Opcode::Call, "",
                                           std::vector<Value *>{});
    C->setCalleeName(BB->name() == "inner.pre" ? "cip.invocation"
                                               : "cip.iteration");
    BB->insert(0, std::move(C));
  }
  MemoryState Mem(M);
  seedCgMemory(Nest, Mem, /*RowLen=*/4, /*Stride=*/7); // stride > len
  const LoopNestProfile P = profileLoopNest(*Nest.F, {}, Mem);
  ASSERT_TRUE(P.Exec.Completed);
  EXPECT_TRUE(P.conflictFree());
  EXPECT_DOUBLE_EQ(P.manifestRate(), 0.0);
}

//===- tests/SchedTeamTests.cpp - Scheduler-team & checker-lane battery ---===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Determinism battery for the two DESIGN.md §15 parallel detection
/// engines. The contract under test is *bit-identical observables*:
///
///  * DOMORE scheduler team: for every {sched_threads} x {shadow_shards}
///    point, the sync-condition count, the per-shard conflict attribution
///    vector, and the final memory image must equal the serial scheduler's
///    exactly — the team only changes who probes which shard, never what
///    any probe sees or the order conditions are merged in.
///  * SPECCROSS checker lanes: for every lane count, abort decisions,
///    round accounting, and the comparison/batch counters must equal the
///    serial in-thread scan's — lanes only overlap the span scans, the
///    epoch-ordered commit discards anything a serial scan would not have
///    reached.
///
/// Adversarial shapes ride along: every conflict confined to one shard
/// group (the lead's and a member's), shard counts leaving most shards
/// empty, and teams wider than the shard count (members owning empty
/// groups must neither deadlock nor invent conflicts).
///
/// The assertions read CIP_SCHED_THREADS / CIP_CHECK_LANES so the same
/// binary stays correct when CMake re-registers it with the knobs pinned
/// (ctest -R "^schedteam/") — the env override must beat the config at
/// every sweep point, and determinism must hold either way.
///
//===----------------------------------------------------------------------===//

#include "domore/DomoreRuntime.h"
#include "speccross/Checkpoint.h"
#include "speccross/SpecCrossRuntime.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

using namespace cip;
using namespace cip::domore;

namespace {

//===----------------------------------------------------------------------===//
// Env-aware expectations
//===----------------------------------------------------------------------===//

/// Numeric value of a CIP_* knob, 0 when unset (the suite is also
/// re-registered with the knobs pinned; expectations must track that).
std::uint32_t envKnob(const char *Name) {
  const char *S = std::getenv(Name);
  return S && *S ? static_cast<std::uint32_t>(std::strtoul(S, nullptr, 10))
                 : 0;
}

/// Team size a run at \p Shards shards reports for \p Configured (env
/// beats config, 0 means one scheduler thread). A team needs a sharded
/// shadow: at <= 1 shard the runtime runs the unsharded substrate and one
/// scheduler thread regardless of the knob.
std::uint32_t expectedTeam(std::uint32_t Configured, std::uint32_t Shards) {
  if (Shards <= 1)
    return 1;
  const std::uint32_t Env = envKnob("CIP_SCHED_THREADS");
  const std::uint32_t Knob = Env ? Env : Configured;
  return Knob > 0 ? Knob : 1;
}

/// Checker-lane count a run reports for \p Configured.
std::uint32_t expectedLanes(std::uint32_t Configured) {
  const std::uint32_t Env = envKnob("CIP_CHECK_LANES");
  const std::uint32_t Knob = Env ? Env : Configured;
  return Knob > 0 ? Knob : 1;
}

//===----------------------------------------------------------------------===//
// DOMORE battery
//===----------------------------------------------------------------------===//

/// Workload with a steerable address map: element E accesses address
/// E * Stride + Offset (dense) or a pointer-shaped hash of it (sparse).
/// Stride = shard count + Offset pins *every* address — and therefore every
/// conflict — to dense shard `Offset`, the adversarial all-in-one-group
/// shape. Per-element append logs make any ordering violation visible and
/// double as the memory image compared across scheduler variants.
struct TeamHarness {
  TeamHarness(std::uint32_t NumInv, std::uint32_t IterPerInv,
              std::uint64_t Space, std::uint64_t Seed, std::uint64_t Stride,
              std::uint64_t Offset, bool SparseAddrs)
      : NumInv(NumInv), IterPerInv(IterPerInv), Space(Space), Stride(Stride),
        Offset(Offset), SparseAddrs(SparseAddrs) {
    Xoshiro256StarStar Rng(Seed);
    Elements.resize(static_cast<std::size_t>(NumInv) * IterPerInv);
    std::vector<std::uint64_t> Pool(Space);
    std::iota(Pool.begin(), Pool.end(), 0u);
    // Distinct elements within one invocation (the DOALL inner loop).
    for (std::uint32_t Inv = 0; Inv < NumInv; ++Inv)
      for (std::uint32_t It = 0; It < IterPerInv; ++It) {
        const std::size_t Pick = It + Rng.nextBelow(Space - It);
        std::swap(Pool[It], Pool[Pick]);
        Elements[static_cast<std::size_t>(Inv) * IterPerInv + It] = Pool[It];
      }
    Log.resize(Space);
  }

  std::uint64_t addrOf(std::uint64_t Element) const {
    const std::uint64_t Strided = Element * Stride + Offset;
    return SparseAddrs ? Strided * 0x9e3779b97f4a7c15ULL + 1 : Strided;
  }

  LoopNest nest() {
    LoopNest N;
    N.NumInvocations = NumInv;
    N.AddressSpaceSize = SparseAddrs ? 0 : (Space - 1) * Stride + Offset + 1;
    N.BeginInvocation = [this](std::uint32_t) {
      return static_cast<std::size_t>(IterPerInv);
    };
    N.ComputeAddr = [this](std::uint32_t Inv, std::size_t It,
                           std::vector<std::uint64_t> &Addrs) {
      Addrs.push_back(addrOf(elementOf(Inv, It)));
    };
    N.Work = [this](std::uint32_t Inv, std::size_t It) {
      const std::int64_t Combined =
          static_cast<std::int64_t>(Inv) * IterPerInv +
          static_cast<std::int64_t>(It);
      Log[elementOf(Inv, It)].push_back(Combined);
    };
    return N;
  }

  std::uint64_t elementOf(std::uint32_t Inv, std::size_t It) const {
    return Elements[static_cast<std::size_t>(Inv) * IterPerInv + It];
  }

  bool ordered() const {
    for (const auto &L : Log)
      for (std::size_t I = 1; I < L.size(); ++I)
        if (L[I - 1] >= L[I])
          return false;
    return true;
  }

  /// FNV-1a over the append logs: the memory-image checksum the battery
  /// compares across sweep points (equality of Log is also asserted; the
  /// checksum is what the fuzzer-style sweeps log on divergence).
  std::uint64_t checksum() const {
    std::uint64_t H = 0xcbf29ce484222325ULL;
    const auto Mix = [&H](std::uint64_t X) {
      for (int B = 0; B < 8; ++B) {
        H ^= (X >> (8 * B)) & 0xff;
        H *= 0x100000001b3ULL;
      }
    };
    for (const auto &L : Log) {
      Mix(L.size());
      for (std::int64_t V : L)
        Mix(static_cast<std::uint64_t>(V));
    }
    return H;
  }

  std::uint32_t NumInv, IterPerInv;
  std::uint64_t Space, Stride, Offset;
  bool SparseAddrs;
  std::vector<std::uint64_t> Elements;
  std::vector<std::vector<std::int64_t>> Log;
};

struct TeamShape {
  std::uint32_t NumInv = 40;
  std::uint32_t IterPerInv = 8;
  std::uint64_t Space = 64;
  std::uint64_t Seed = 7;
  std::uint64_t Stride = 1;
  std::uint64_t Offset = 0;
  bool SparseAddrs = false;
  PolicyKind Policy = PolicyKind::RoundRobin;
};

struct TeamPoint {
  DomoreStats Stats;
  std::vector<std::vector<std::int64_t>> Log;
  std::uint64_t Checksum = 0;
};

TeamPoint runPoint(const TeamShape &Shape, std::uint32_t Shards,
                   std::uint32_t Team) {
  TeamHarness H(Shape.NumInv, Shape.IterPerInv, Shape.Space, Shape.Seed,
                Shape.Stride, Shape.Offset, Shape.SparseAddrs);
  DomoreConfig C;
  C.NumWorkers = 3;
  C.Policy = Shape.Policy;
  C.ShadowShards = Shards;
  C.SchedThreads = Team;
  TeamPoint P;
  P.Stats = runDomore(H.nest(), C);
  EXPECT_TRUE(H.ordered()) << "shards=" << Shards << " team=" << Team;
  P.Checksum = H.checksum();
  P.Log = std::move(H.Log);
  return P;
}

std::uint64_t sumOf(const std::vector<std::uint64_t> &V) {
  std::uint64_t Total = 0;
  for (std::uint64_t X : V)
    Total += X;
  return Total;
}

/// The battery core: a serial (ShadowShards = 0) reference, then — per
/// shard count — a one-scheduler sharded reference whose per-shard conflict
/// vector every team width must reproduce bit for bit, on top of the
/// global invariants (sync conditions, memory image, checksum, coverage).
void sweepTeams(const TeamShape &Shape,
                const std::vector<std::uint32_t> &ShardAxis,
                const std::vector<std::uint32_t> &TeamAxis) {
  const TeamPoint Serial = runPoint(Shape, 0, 0);
  EXPECT_EQ(Serial.Stats.ShadowShards, 1u);
  EXPECT_EQ(Serial.Stats.SchedThreads, 1u);
  ASSERT_EQ(Serial.Stats.ShardConflicts.size(), 1u);

  for (const std::uint32_t Shards : ShardAxis) {
    const TeamPoint Ref = runPoint(Shape, Shards, 0);
    EXPECT_EQ(Ref.Stats.SyncConditions, Serial.Stats.SyncConditions)
        << "shards=" << Shards;
    EXPECT_EQ(Ref.Log, Serial.Log) << "shards=" << Shards;
    for (const std::uint32_t Team : TeamAxis) {
      const TeamPoint P = runPoint(Shape, Shards, Team);
      const std::string Where =
          "shards=" + std::to_string(Shards) + " team=" + std::to_string(Team);
      EXPECT_EQ(P.Stats.SchedThreads, expectedTeam(Team, Shards)) << Where;
      EXPECT_EQ(P.Stats.ShadowShards, Shards) << Where;
      EXPECT_EQ(P.Stats.SyncConditions, Serial.Stats.SyncConditions) << Where;
      EXPECT_EQ(P.Stats.Iterations, Serial.Stats.Iterations) << Where;
      EXPECT_EQ(P.Checksum, Serial.Checksum) << Where;
      EXPECT_EQ(P.Log, Serial.Log)
          << Where << ": final memory diverged from serial";
      // The per-shard attribution is the sync-condition *set* keyed by
      // shard: it must match the one-scheduler sharded run exactly, not
      // just in total.
      EXPECT_EQ(P.Stats.ShardConflicts, Ref.Stats.ShardConflicts) << Where;
      EXPECT_EQ(sumOf(P.Stats.ShardConflicts), P.Stats.SyncConditions)
          << Where << ": attribution must cover every sync condition";
    }
  }
}

} // namespace

TEST(SchedTeamBattery, DenseSweepBitIdenticalToSerial) {
  TeamShape Shape;
  sweepTeams(Shape, {1u, 2u, 4u, 8u}, {1u, 2u, 3u, 5u});
}

TEST(SchedTeamBattery, HashSubstrateSweepBitIdenticalToSerial) {
  TeamShape Shape;
  Shape.SparseAddrs = true;
  Shape.Policy = PolicyKind::HashOwner;
  Shape.Seed = 21;
  sweepTeams(Shape, {2u, 8u}, {2u, 3u, 5u});
}

TEST(SchedTeamBattery, OwnerComputeSweepBitIdenticalToSerial) {
  TeamShape Shape;
  Shape.Policy = PolicyKind::OwnerCompute;
  Shape.Seed = 33;
  sweepTeams(Shape, {2u, 8u}, {2u, 4u});
}

TEST(SchedTeamBattery, AllConflictsInLeadsShardGroup) {
  // Stride 8 at 8 shards puts every dense address in shard `Offset`.
  // Offset 0 is the lead's own group: members probe only empty shards.
  TeamShape Shape;
  Shape.Stride = 8;
  Shape.Offset = 0;
  sweepTeams(Shape, {8u}, {2u, 3u, 8u});
  if (!envKnob("CIP_SCHED_THREADS")) {
    const TeamPoint P = runPoint(Shape, 8, 8);
    ASSERT_EQ(P.Stats.ShardConflicts.size(), 8u);
    EXPECT_EQ(P.Stats.ShardConflicts[0], P.Stats.SyncConditions);
    for (std::size_t S = 1; S < 8; ++S)
      EXPECT_EQ(P.Stats.ShardConflicts[S], 0u) << "shard " << S;
  }
}

TEST(SchedTeamBattery, AllConflictsInLastMembersShardGroup) {
  // Offset 7 pins every conflict to shard 7 — the last member's group at
  // team 8; the lead merges findings it never produced itself.
  TeamShape Shape;
  Shape.Stride = 8;
  Shape.Offset = 7;
  sweepTeams(Shape, {8u}, {2u, 3u, 8u});
  if (!envKnob("CIP_SCHED_THREADS")) {
    const TeamPoint P = runPoint(Shape, 8, 8);
    ASSERT_EQ(P.Stats.ShardConflicts.size(), 8u);
    EXPECT_EQ(P.Stats.ShardConflicts[7], P.Stats.SyncConditions);
    for (std::size_t S = 0; S < 7; ++S)
      EXPECT_EQ(P.Stats.ShardConflicts[S], 0u) << "shard " << S;
  }
}

TEST(SchedTeamBattery, TeamWiderThanShardCount) {
  // groupBegin's proportional split hands members beyond the shard count
  // empty [begin, end) ranges: they must join every block hand-off without
  // deadlock and contribute nothing.
  TeamShape Shape;
  sweepTeams(Shape, {1u, 2u}, {3u, 5u, 8u});
}

//===----------------------------------------------------------------------===//
// SPECCROSS checker-lane battery
//===----------------------------------------------------------------------===//

namespace {

using speccross::CheckpointRegistry;
using speccross::SpecConfig;
using speccross::SpecMode;
using speccross::SpecRegion;
using speccross::SpecStats;

/// Same shape as ShardingTests' ConflictRegion: per-task private cells plus
/// — when \p WithConflicts — one shared slot the designated task of each
/// epoch read-modify-writes, so the checker has real overlaps to find.
struct LaneRegion {
  LaneRegion(std::uint32_t Epochs, std::uint32_t Tasks, bool WithConflicts)
      : Epochs(Epochs), Tasks(Tasks), WithConflicts(WithConflicts),
        Cells(Tasks, 0), Shared(1) {
    Shared[0].store(1, std::memory_order_relaxed);
  }

  SpecRegion region(CheckpointRegistry &Reg) {
    Reg.registerBuffer(Cells);
    Reg.registerBuffer(Shared);
    SpecRegion R;
    R.NumEpochs = Epochs;
    R.NumTasks = [this](std::uint32_t) {
      return static_cast<std::size_t>(Tasks);
    };
    R.RunTask = [this](std::uint32_t E, std::size_t T) {
      Cells[T] += 1;
      if (WithConflicts && T == E % 2)
        Shared[0].store(Shared[0].load(std::memory_order_relaxed) + 1 +
                            Cells[T] % 3,
                        std::memory_order_relaxed);
    };
    R.TaskAddresses = [this](std::uint32_t E, std::size_t T,
                             std::vector<std::uint64_t> &Addrs) {
      Addrs.push_back(T);
      if (WithConflicts && T == E % 2)
        Addrs.push_back(Tasks + 1); // the shared slot
    };
    R.Checkpoints = &Reg;
    return R;
  }

  std::vector<std::uint32_t> state() const {
    std::vector<std::uint32_t> S = Cells;
    S.push_back(Shared[0].load(std::memory_order_relaxed));
    return S;
  }

  std::uint32_t Epochs, Tasks;
  bool WithConflicts;
  std::vector<std::uint32_t> Cells;
  std::vector<std::atomic<std::uint32_t>> Shared;
};

std::vector<std::uint32_t> sequentialLaneResult(std::uint32_t Epochs,
                                                std::uint32_t Tasks,
                                                bool WithConflicts) {
  LaneRegion C(Epochs, Tasks, WithConflicts);
  CheckpointRegistry Reg;
  SpecRegion R = C.region(Reg);
  for (std::uint32_t E = 0; E < R.NumEpochs; ++E)
    for (std::size_t T = 0; T < R.NumTasks(E); ++T)
      R.RunTask(E, T);
  return C.state();
}

SpecStats runLaneRegion(std::uint32_t Lanes, speccross::SignatureScheme Scheme,
                        bool WithConflicts, std::uint32_t InjectAt,
                        std::vector<std::uint32_t> &StateOut) {
  LaneRegion C(12, 6, WithConflicts);
  CheckpointRegistry Reg;
  SpecRegion R = C.region(Reg);
  SpecConfig Config;
  Config.NumWorkers = 3;
  Config.Scheme = Scheme;
  Config.CheckLanes = Lanes;
  Config.CheckpointIntervalEpochs = 3;
  Config.InjectMisspecAtEpoch = InjectAt;
  const SpecStats S = runSpecCross(R, Config, SpecMode::Speculation);
  StateOut = C.state();
  return S;
}

constexpr std::uint32_t NoInject = ~std::uint32_t{0};

} // namespace

TEST(CheckerLaneBattery, CleanRegionAccountingIdenticalAcrossLaneCounts) {
  for (const speccross::SignatureScheme Scheme :
       {speccross::SignatureScheme::Range, speccross::SignatureScheme::Bloom,
        speccross::SignatureScheme::SmallSet}) {
    // Conflict-free: no aborts, so the round structure — and with it the
    // exact comparison spans — is deterministic. Every lane count must
    // reproduce the serial scan's accounting exactly.
    const std::vector<std::uint32_t> Ref =
        sequentialLaneResult(12, 6, /*WithConflicts=*/false);
    std::vector<std::uint32_t> SerialState;
    const SpecStats Serial = runLaneRegion(0, Scheme, /*WithConflicts=*/false,
                                           NoInject, SerialState);
    EXPECT_EQ(SerialState, Ref);
    EXPECT_EQ(Serial.CheckLanes, expectedLanes(0));
    EXPECT_EQ(Serial.Misspeculations, 0u);
    for (const std::uint32_t Lanes : {1u, 2u, 3u, 8u}) {
      std::vector<std::uint32_t> State;
      const SpecStats S = runLaneRegion(Lanes, Scheme,
                                        /*WithConflicts=*/false, NoInject,
                                        State);
      EXPECT_EQ(S.CheckLanes, expectedLanes(Lanes)) << "lanes=" << Lanes;
      EXPECT_EQ(State, Ref) << "lanes=" << Lanes;
      EXPECT_EQ(S.Misspeculations, 0u) << "lanes=" << Lanes;
      EXPECT_EQ(S.Epochs, Serial.Epochs) << "lanes=" << Lanes;
      EXPECT_EQ(S.Tasks, Serial.Tasks) << "lanes=" << Lanes;
      EXPECT_EQ(S.CheckpointsTaken, Serial.CheckpointsTaken)
          << "lanes=" << Lanes;
      EXPECT_EQ(S.SignatureComparisons, Serial.SignatureComparisons)
          << "lanes=" << Lanes << ": fan-out changed the comparison count";
      EXPECT_EQ(S.BatchChecks, Serial.BatchChecks) << "lanes=" << Lanes;
    }
  }
}

TEST(CheckerLaneBattery, InjectedAbortDecisionIdenticalAcrossLaneCounts) {
  // Deterministic forced misspeculation on a conflict-free region: exactly
  // one round aborts no matter how many lanes scan, and the re-executed
  // epoch accounting must match the serial scan's.
  const std::vector<std::uint32_t> Ref =
      sequentialLaneResult(12, 6, /*WithConflicts=*/false);
  std::vector<std::uint32_t> SerialState;
  const SpecStats Serial = runLaneRegion(0, speccross::SignatureScheme::Range,
                                         /*WithConflicts=*/false,
                                         /*InjectAt=*/4, SerialState);
  EXPECT_EQ(SerialState, Ref);
  EXPECT_EQ(Serial.Misspeculations, 1u);
  for (const std::uint32_t Lanes : {2u, 3u, 8u}) {
    std::vector<std::uint32_t> State;
    const SpecStats S = runLaneRegion(Lanes, speccross::SignatureScheme::Range,
                                      /*WithConflicts=*/false, /*InjectAt=*/4,
                                      State);
    EXPECT_EQ(State, Ref) << "lanes=" << Lanes;
    EXPECT_EQ(S.Misspeculations, Serial.Misspeculations) << "lanes=" << Lanes;
    EXPECT_EQ(S.ReexecutedEpochs, Serial.ReexecutedEpochs)
        << "lanes=" << Lanes;
    EXPECT_EQ(S.CheckpointsTaken, Serial.CheckpointsTaken)
        << "lanes=" << Lanes;
  }
}

TEST(CheckerLaneBattery, ConflictRecoveryLandsOnSequentialEveryLaneCount) {
  // Conflict-heavy region: *when* a round aborts is inherently racy, so
  // counters vary per run — the contract every lane count must honor is
  // semantic: rollback plus re-execution lands on the sequential result.
  for (const speccross::SignatureScheme Scheme :
       {speccross::SignatureScheme::Range,
        speccross::SignatureScheme::SmallSet}) {
    const std::vector<std::uint32_t> Ref =
        sequentialLaneResult(12, 6, /*WithConflicts=*/true);
    for (const std::uint32_t Lanes : {0u, 2u, 3u}) {
      std::vector<std::uint32_t> State;
      const SpecStats S = runLaneRegion(Lanes, Scheme, /*WithConflicts=*/true,
                                        NoInject, State);
      EXPECT_EQ(State, Ref)
          << "lanes=" << Lanes << ": recovery diverged from sequential";
      EXPECT_EQ(S.CheckLanes, expectedLanes(Lanes));
    }
  }
}

//===- tests/TestNests.h - Shared IR loop-nest fixtures --------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IR builders for the loop nests the compiler tests exercise:
///
///  * buildCgNest — the dissertation's running example (Fig 3.1/3.6): an
///    outer loop reading per-row bounds from index arrays A and B, an inner
///    loop updating C[j] with a non-commutative function of the outer
///    induction variable (so any dependence-order violation corrupts the
///    final memory digest).
///
///  * buildPhaseNest — a SPECCROSS-shaped region: an outer timestep loop
///    containing two consecutive DOALL inner loops exchanging arrays X and
///    Y (Fig 1.3's structure).
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TESTS_TESTNESTS_H
#define CIP_TESTS_TESTNESTS_H

#include "ir/IRBuilder.h"
#include "ir/Interp.h"

namespace cip {
namespace tests {

/// Handles to the interesting pieces of a built nest.
struct CgNest {
  ir::Function *F = nullptr;
  ir::GlobalArray *A = nullptr; // row start bounds
  ir::GlobalArray *B = nullptr; // row end bounds
  ir::GlobalArray *C = nullptr; // updated data
  unsigned NumRows = 0;
};

/// Builds the CG-like nest into \p M:
///
///   for (i = 0; i < NumRows; i++) {
///     start = A[i]; end = B[i];
///     for (j = start; j < end; j++)
///       C[j] = C[j] * 3 + i;
///   }
inline CgNest buildCgNest(ir::Module &M, unsigned NumRows = 40,
                          unsigned DataSize = 64) {
  using namespace ir;
  CgNest Nest;
  Nest.NumRows = NumRows;
  Nest.A = M.createArray("A", NumRows);
  Nest.B = M.createArray("B", NumRows);
  Nest.C = M.createArray("C", DataSize);
  Function *F = M.createFunction("cg", 0);
  Nest.F = F;

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *OuterHeader = F->createBlock("outer.header");
  BasicBlock *OuterBody = F->createBlock("outer.body");
  BasicBlock *InnerPre = F->createBlock("inner.pre");
  BasicBlock *InnerHeader = F->createBlock("inner.header");
  BasicBlock *InnerBody = F->createBlock("inner.body");
  BasicBlock *OuterLatch = F->createBlock("outer.latch");
  BasicBlock *Exit = F->createBlock("exit");

  IRBuilder Bld(M);
  Bld.setInsertPoint(Entry);
  Bld.br(OuterHeader);

  Bld.setInsertPoint(OuterHeader);
  Instruction *I = Bld.phi("i");
  Instruction *OuterCmp =
      Bld.cmp(Opcode::CmpLT, I, Bld.constant(NumRows), "outer.cond");
  Bld.condBr(OuterCmp, OuterBody, Exit);

  Bld.setInsertPoint(OuterBody);
  Instruction *Start = Bld.load(Nest.A, I, "start");
  Instruction *End = Bld.load(Nest.B, I, "end");
  Bld.br(InnerPre);

  Bld.setInsertPoint(InnerPre);
  Bld.br(InnerHeader);

  Bld.setInsertPoint(InnerHeader);
  Instruction *J = Bld.phi("j");
  Instruction *InnerCmp = Bld.cmp(Opcode::CmpLT, J, End, "inner.cond");
  Bld.condBr(InnerCmp, InnerBody, OuterLatch);

  Bld.setInsertPoint(InnerBody);
  Instruction *V = Bld.load(Nest.C, J, "v");
  Instruction *V3 = Bld.mul(V, Bld.constant(3), "v3");
  Instruction *V4 = Bld.add(V3, I, "v4");
  Bld.store(Nest.C, J, V4);
  Instruction *JNext = Bld.add(J, Bld.constant(1), "j.next");
  Bld.br(InnerHeader);

  Bld.setInsertPoint(OuterLatch);
  Instruction *INext = Bld.add(I, Bld.constant(1), "i.next");
  Bld.br(OuterHeader);

  Bld.setInsertPoint(Exit);
  Bld.ret(Bld.constant(0));

  I->addIncoming(Bld.constant(0), Entry);
  I->addIncoming(INext, OuterLatch);
  J->addIncoming(Start, InnerPre);
  J->addIncoming(JNext, InnerBody);
  return Nest;
}

/// Fills the CG nest's bound arrays: row i covers
/// [i*Stride % (DataSize-RowLen), +RowLen), overlapping the previous row
/// whenever Stride < RowLen.
inline void seedCgMemory(const CgNest &Nest, ir::MemoryState &Mem,
                         unsigned RowLen = 6, unsigned Stride = 3) {
  auto &A = Mem.arrayData(Nest.A);
  auto &B = Mem.arrayData(Nest.B);
  auto &C = Mem.arrayData(Nest.C);
  const std::size_t DataSize = C.size();
  for (unsigned I = 0; I < Nest.NumRows; ++I) {
    const std::int64_t Base =
        static_cast<std::int64_t>((I * Stride) % (DataSize - RowLen));
    A[I] = Base;
    B[I] = Base + RowLen;
  }
  for (std::size_t I = 0; I < C.size(); ++I)
    C[I] = static_cast<std::int64_t>(I % 7);
}

/// Handles for the two-phase region.
struct PhaseNest {
  ir::Function *F = nullptr;
  ir::GlobalArray *X = nullptr;
  ir::GlobalArray *Y = nullptr;
  unsigned Steps = 0;
  unsigned Width = 0;
};

/// Builds:
///   for (t = 0; t < Steps; t++) {
///     for (j = 0; j < Width; j++) Y[j] = X[j] * 3 + 1;   // phase L1
///     for (k = 0; k < Width; k++) X[k] = Y[k] + t;       // phase L2
///   }
inline PhaseNest buildPhaseNest(ir::Module &M, unsigned Steps = 10,
                                unsigned Width = 16) {
  using namespace ir;
  PhaseNest Nest;
  Nest.Steps = Steps;
  Nest.Width = Width;
  Nest.X = M.createArray("X", Width);
  Nest.Y = M.createArray("Y", Width);
  Function *F = M.createFunction("phases", 0);
  Nest.F = F;

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *TH = F->createBlock("t.header");
  BasicBlock *L1Pre = F->createBlock("l1.pre");
  BasicBlock *L1H = F->createBlock("l1.header");
  BasicBlock *L1B = F->createBlock("l1.body");
  BasicBlock *L2Pre = F->createBlock("l2.pre");
  BasicBlock *L2H = F->createBlock("l2.header");
  BasicBlock *L2B = F->createBlock("l2.body");
  BasicBlock *TLatch = F->createBlock("t.latch");
  BasicBlock *Exit = F->createBlock("exit");

  IRBuilder Bld(M);
  Bld.setInsertPoint(Entry);
  Bld.br(TH);

  Bld.setInsertPoint(TH);
  Instruction *T = Bld.phi("t");
  Instruction *TCmp = Bld.cmp(Opcode::CmpLT, T, Bld.constant(Steps), "t.c");
  Bld.condBr(TCmp, L1Pre, Exit);

  Bld.setInsertPoint(L1Pre);
  Bld.br(L1H);
  Bld.setInsertPoint(L1H);
  Instruction *J = Bld.phi("j");
  Instruction *JCmp = Bld.cmp(Opcode::CmpLT, J, Bld.constant(Width), "j.c");
  Bld.condBr(JCmp, L1B, L2Pre);
  Bld.setInsertPoint(L1B);
  Instruction *XV = Bld.load(Nest.X, J, "xv");
  Instruction *XV3 = Bld.mul(XV, Bld.constant(3), "xv3");
  Instruction *YV = Bld.add(XV3, Bld.constant(1), "yv");
  Bld.store(Nest.Y, J, YV);
  Instruction *JN = Bld.add(J, Bld.constant(1), "j.next");
  Bld.br(L1H);

  Bld.setInsertPoint(L2Pre);
  Bld.br(L2H);
  Bld.setInsertPoint(L2H);
  Instruction *K = Bld.phi("k");
  Instruction *KCmp = Bld.cmp(Opcode::CmpLT, K, Bld.constant(Width), "k.c");
  Bld.condBr(KCmp, L2B, TLatch);
  Bld.setInsertPoint(L2B);
  Instruction *YV2 = Bld.load(Nest.Y, K, "yv2");
  Instruction *XN = Bld.add(YV2, T, "xn");
  Bld.store(Nest.X, K, XN);
  Instruction *KN = Bld.add(K, Bld.constant(1), "k.next");
  Bld.br(L2H);

  Bld.setInsertPoint(TLatch);
  Instruction *TN = Bld.add(T, Bld.constant(1), "t.next");
  Bld.br(TH);

  Bld.setInsertPoint(Exit);
  Bld.ret(Bld.constant(0));

  T->addIncoming(Bld.constant(0), Entry);
  T->addIncoming(TN, TLatch);
  J->addIncoming(Bld.constant(0), L1Pre);
  J->addIncoming(JN, L1B);
  K->addIncoming(Bld.constant(0), L2Pre);
  K->addIncoming(KN, L2B);
  return Nest;
}

} // namespace tests
} // namespace cip

#endif // CIP_TESTS_TESTNESTS_H

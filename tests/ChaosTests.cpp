//===- tests/ChaosTests.cpp - Chaos hooks and differential fuzz smoke -----===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tier-1 coverage for the schedule-chaos subsystem: the deterministic
/// decision stream (compiled into every build), the enabled/disabled hook
/// API surface, and a small differential fuzz smoke over all three engines.
/// The zero-cost-when-disabled guarantee itself is checked in CI with `nm`
/// on the instrumented object files, mirroring the CIP_TELEMETRY=0 check.
///
//===----------------------------------------------------------------------===//

#include "support/Chaos.h"
#include "tests/fuzz/ScheduleFuzzer.h"

#include <gtest/gtest.h>

#include <vector>

using namespace cip;

namespace {

std::vector<chaos::Action> drawSequence(std::uint64_t Seed,
                                        std::uint64_t Ordinal, unsigned N) {
  chaos::ChaosStream Stream(Seed, Ordinal);
  std::vector<chaos::Action> Out;
  Out.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    // Cycle through sites the way a real thread would hit mixed probes.
    const auto S = static_cast<chaos::Site>(
        I % static_cast<unsigned>(chaos::Site::NumSites));
    Out.push_back(Stream.next(S));
  }
  return Out;
}

bool sameSequence(const std::vector<chaos::Action> &A,
                  const std::vector<chaos::Action> &B) {
  if (A.size() != B.size())
    return false;
  for (std::size_t I = 0; I < A.size(); ++I)
    if (A[I].Kind != B[I].Kind || A[I].Amount != B[I].Amount)
      return false;
  return true;
}

TEST(ChaosStream, SameSeedSameOrdinalIsDeterministic) {
  EXPECT_TRUE(sameSequence(drawSequence(42, 0, 512), drawSequence(42, 0, 512)));
  EXPECT_TRUE(sameSequence(drawSequence(7, 3, 512), drawSequence(7, 3, 512)));
}

TEST(ChaosStream, DifferentSeedsDiverge) {
  EXPECT_FALSE(sameSequence(drawSequence(1, 0, 512), drawSequence(2, 0, 512)));
}

TEST(ChaosStream, DifferentOrdinalsDiverge) {
  EXPECT_FALSE(sameSequence(drawSequence(1, 0, 512), drawSequence(1, 1, 512)));
}

TEST(ChaosStream, SiteSaltDecouplesSites) {
  // The same draw index must not produce identical decisions at every
  // site, or adding a probe at one edge would shift all the others.
  chaos::ChaosStream A(99, 0);
  chaos::ChaosStream B(99, 0);
  unsigned Diverged = 0;
  for (unsigned I = 0; I < 256; ++I) {
    const auto X = A.next(chaos::Site::QueueProduce);
    const auto Y = B.next(chaos::Site::ClockPublish);
    if (X.Kind != Y.Kind || X.Amount != Y.Amount)
      ++Diverged;
  }
  EXPECT_GT(Diverged, 0u);
}

TEST(ChaosStream, DistributionIsMostlyQuietAndAmountsBounded) {
  chaos::ChaosStream Stream(2026, 1);
  unsigned None = 0;
  for (unsigned I = 0; I < 10000; ++I) {
    const chaos::Action A = Stream.next(chaos::Site::BarrierArrive);
    switch (A.Kind) {
    case chaos::ActionKind::None:
      ++None;
      break;
    case chaos::ActionKind::Relax:
      EXPECT_GE(A.Amount, 1u);
      EXPECT_LE(A.Amount, 64u);
      break;
    case chaos::ActionKind::Yield:
      break;
    case chaos::ActionKind::Sleep:
      EXPECT_GE(A.Amount, 1u);
      EXPECT_LE(A.Amount, 32u);
      break;
    }
  }
  // ~70% None by construction; wide bounds keep this robust.
  EXPECT_GT(None, 6000u);
  EXPECT_LT(None, 8000u);
}

TEST(ChaosApi, SiteNamesAreStable) {
  EXPECT_STREQ(chaos::siteName(chaos::Site::QueueProduce), "queue-produce");
  EXPECT_STREQ(chaos::siteName(chaos::Site::Restore), "restore");
}

#if CIP_CHAOS

TEST(ChaosApi, ConfigureControlsEnabledState) {
  ASSERT_TRUE(chaos::compiledIn());
  const std::uint64_t Prev = chaos::currentSeed();
  chaos::configure(12345);
  EXPECT_TRUE(chaos::enabled());
  EXPECT_EQ(chaos::currentSeed(), 12345u);
  chaos::configure(0);
  EXPECT_FALSE(chaos::enabled());
  chaos::configure(Prev);
}

TEST(ChaosApi, ProbesInjectUnderASeedAndCountThem) {
  const std::uint64_t Prev = chaos::currentSeed();
  chaos::configure(777);
  // Enough visits that at least one draws a non-None action (p < 1e-40 of
  // all-None under the 70% distribution).
  for (unsigned I = 0; I < 512; ++I)
    chaos::point(chaos::Site::QueueProduce);
  EXPECT_GT(chaos::injectionCount(), 0u);
  chaos::configure(0);
  const std::uint64_t Baseline = chaos::injectionCount();
  for (unsigned I = 0; I < 512; ++I)
    chaos::point(chaos::Site::QueueProduce);
  EXPECT_EQ(chaos::injectionCount(), Baseline);
  chaos::configure(Prev);
}

#else // !CIP_CHAOS

TEST(ChaosApi, StubsReportDisabled) {
  EXPECT_FALSE(chaos::compiledIn());
  chaos::configure(12345); // no-op by contract
  EXPECT_FALSE(chaos::enabled());
  EXPECT_EQ(chaos::currentSeed(), 0u);
  EXPECT_EQ(chaos::injectionCount(), 0u);
}

#endif // CIP_CHAOS

//===----------------------------------------------------------------------===//
// Differential fuzz smoke (tier 1): a handful of seeds through every
// engine. The deep sweeps live behind the `stress` label and in CI.
//===----------------------------------------------------------------------===//

class FuzzSmoke : public ::testing::TestWithParam<fuzz::Engine> {};

TEST_P(FuzzSmoke, SeedsMatchSequentialOracle) {
  for (std::uint64_t Seed = 1; Seed <= 4; ++Seed) {
    fuzz::FuzzOptions Opt;
    Opt.Eng = GetParam();
    Opt.Workers = 2 + Seed % 2;
    Opt.MaxBatch = Seed % 2 ? 16 : 1;
    const fuzz::FuzzResult R = fuzz::runFuzzCase(Seed, Opt);
    EXPECT_TRUE(R.Ok) << R.Failure << "repro: " << R.Repro;
  }
}

TEST_P(FuzzSmoke, PoolBypassSubstrateMatchesOracle) {
  fuzz::FuzzOptions Opt;
  Opt.Eng = GetParam();
  Opt.Workers = 2;
  Opt.UsePool = false;
  const fuzz::FuzzResult R = fuzz::runFuzzCase(5, Opt);
  EXPECT_TRUE(R.Ok) << R.Failure << "repro: " << R.Repro;
}

TEST_P(FuzzSmoke, ChaosSeedPerturbedRunMatchesOracle) {
  // In default builds the chaos seed is inert and this duplicates the plain
  // smoke; in -DCIP_CHAOS_HOOKS=ON builds it is the perturbed path.
  fuzz::FuzzOptions Opt;
  Opt.Eng = GetParam();
  Opt.Workers = 3;
  Opt.ChaosSeed = 0xc4a05;
  const fuzz::FuzzResult R = fuzz::runFuzzCase(6, Opt);
  EXPECT_TRUE(R.Ok) << R.Failure << "repro: " << R.Repro;
}

TEST_P(FuzzSmoke, VerdictIsDeterministicPerSeed) {
  fuzz::FuzzOptions Opt;
  Opt.Eng = GetParam();
  Opt.Workers = 2;
  const fuzz::FuzzResult A = fuzz::runFuzzCase(9, Opt);
  const fuzz::FuzzResult B = fuzz::runFuzzCase(9, Opt);
  EXPECT_EQ(A.Ok, B.Ok);
  EXPECT_EQ(A.Failure, B.Failure);
  EXPECT_EQ(fuzz::reproCommand(9, Opt), fuzz::reproCommand(9, Opt));
}

INSTANTIATE_TEST_SUITE_P(AllEngines, FuzzSmoke,
                         ::testing::Values(fuzz::Engine::Domore,
                                           fuzz::Engine::DomoreDup,
                                           fuzz::Engine::SpecCross,
                                           fuzz::Engine::Adaptive),
                         [](const auto &Info) {
                           switch (Info.param) {
                           case fuzz::Engine::Domore:
                             return "domore";
                           case fuzz::Engine::DomoreDup:
                             return "domore_dup";
                           case fuzz::Engine::SpecCross:
                             return "speccross";
                           default:
                             return "adaptive";
                           }
                         });

} // namespace

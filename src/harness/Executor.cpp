//===- harness/Executor.cpp - Parallel execution strategies --------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "harness/Executor.h"

#include "support/Barrier.h"
#include "support/ThreadGroup.h"
#include "support/Timer.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <mutex>
#include <string>

using namespace cip;
using namespace cip::harness;
using namespace cip::workloads;
using telemetry::Counter;
using telemetry::EventKind;
using telemetry::Hist;

namespace {

/// One worker lane per thread for the barrier-based strategies. Lane names
/// only matter for trace export, so skip the string building otherwise —
/// in CIP_TELEMETRY=0 builds tracing() is constant false and this whole
/// helper folds away.
void nameWorkerLanes(telemetry::RegionTelemetry &Tel, unsigned NumThreads) {
  if (!Tel.tracing())
    return;
  for (unsigned T = 0; T < NumThreads; ++T)
    Tel.nameLane(T, "worker " + std::to_string(T));
}

} // namespace

ExecResult harness::runSequential(Workload &W) {
  ExecResult R;
  const std::uint64_t Begin = nowNanos();
  for (std::uint32_t E = 0, NE = W.numEpochs(); E < NE; ++E) {
    if (W.hasPrologue())
      W.epochPrologue(E, /*Tid=*/0);
    for (std::size_t T = 0, NT = W.numTasks(E); T < NT; ++T)
      W.runTask(E, T);
  }
  R.Seconds = static_cast<double>(nowNanos() - Begin) * 1e-9;
  R.Checksum = W.checksum();
  return R;
}

ExecResult harness::runBarrier(Workload &W, unsigned NumThreads) {
  assert(NumThreads > 0 && "need at least one thread");
  ExecResult R;
  InstrumentedBarrier<PthreadBarrier> Bar(NumThreads);
  telemetry::RegionTelemetry Tel("barrier", NumThreads);
  nameWorkerLanes(Tel, NumThreads);
  const bool DupPrologue = W.prologueDuplicable();
  const std::uint64_t Begin = nowNanos();
  runThreads(NumThreads, [&](unsigned Tid) {
    for (std::uint32_t E = 0, NE = W.numEpochs(); E < NE; ++E) {
      // The global synchronization between inner-loop invocations that
      // DOMORE and SPECCROSS exist to remove.
      {
        telemetry::TimedScope Wait(Tel, Tid, Counter::BarrierWaitNs,
                                   Hist::BarrierWaitNs,
                                   EventKind::BarrierWait, E);
        Bar.wait(Tid);
      }
      Tel.begin(Tid, EventKind::Epoch, E);
      telemetry::HistScope EpochScope(Tel, Tid, Hist::EpochNs);
      Tel.add(Tid, Counter::EpochsEntered);
      if (W.hasPrologue()) {
        if (DupPrologue) {
          W.epochPrologue(E, Tid);
        } else {
          if (Tid == 0)
            W.epochPrologue(E, 0);
          telemetry::TimedScope Wait(Tel, Tid, Counter::BarrierWaitNs,
                                     Hist::BarrierWaitNs,
                                     EventKind::BarrierWait, E);
          Bar.wait(Tid);
        }
      }
      for (std::size_t T = Tid, NT = W.numTasks(E); T < NT; T += NumThreads) {
        W.runTask(E, T);
        Tel.add(Tid, Counter::TasksExecuted);
      }
      Tel.end(Tid, EventKind::Epoch, E);
    }
  });
  R.Seconds = static_cast<double>(nowNanos() - Begin) * 1e-9;
  R.BarrierIdleNanos = Bar.totalIdleNanos();
  R.Checksum = W.checksum();
  R.Telemetry = Tel.totals();
  R.WaitHist = Tel.histTotals(Hist::BarrierWaitNs);
  Tel.finish();
  return R;
}

domore::LoopNest harness::buildLoopNest(Workload &W) {
  domore::LoopNest Nest;
  Nest.NumInvocations = W.numEpochs();
  Nest.AddressSpaceSize = W.addressSpaceSize();
  Nest.BeginInvocation = [&W](std::uint32_t Inv) {
    if (W.hasPrologue())
      W.epochPrologue(Inv, /*Tid=*/0);
    return W.numTasks(Inv);
  };
  Nest.ComputeAddr = [&W](std::uint32_t Inv, std::size_t It,
                          std::vector<std::uint64_t> &Addrs) {
    W.taskAddresses(Inv, It, Addrs);
  };
  Nest.Work = [&W](std::uint32_t Inv, std::size_t It) { W.runTask(Inv, It); };
  if (W.hasPrologue())
    Nest.PrologueAddresses = [&W](std::uint32_t Inv,
                                  std::vector<std::uint64_t> &Addrs) {
      W.prologueAddresses(Inv, Addrs);
    };
  return Nest;
}

ExecResult harness::runDomore(Workload &W, unsigned NumThreads,
                              domore::PolicyKind Policy,
                              domore::DomoreStats *StatsOut) {
  assert(NumThreads > 0 && "need at least one thread");
  domore::LoopNest Nest = buildLoopNest(W);
  domore::DomoreConfig Config;
  Config.NumWorkers = NumThreads > 1 ? NumThreads - 1 : 1;
  Config.Policy = Policy;

  ExecResult R;
  const std::uint64_t Begin = nowNanos();
  domore::DomoreStats Stats = domore::runDomore(Nest, Config);
  R.Seconds = static_cast<double>(nowNanos() - Begin) * 1e-9;
  R.Checksum = W.checksum();
  R.Telemetry = Stats.Telemetry;
  R.WaitHist = Stats.WorkerWait;
  R.DispatchBatch = Stats.DispatchBatch;
  if (StatsOut)
    *StatsOut = std::move(Stats);
  return R;
}

ExecResult harness::runDomoreDuplicated(Workload &W, unsigned NumThreads,
                                        domore::PolicyKind Policy,
                                        domore::DomoreStats *StatsOut) {
  assert(NumThreads > 0 && "need at least one thread");
  assert(W.prologueDuplicable() &&
         "the duplicated-scheduler variant requires a duplicable prologue");
  domore::LoopNest Nest = buildLoopNest(W);
  // Every worker runs the scheduler partition itself; BeginInvocation must
  // therefore run the prologue per worker, not once.
  domore::DomoreConfig Config;
  Config.NumWorkers = NumThreads;
  Config.Policy = Policy;

  ExecResult R;
  const std::uint64_t Begin = nowNanos();
  domore::DomoreStats Stats = domore::runDomoreDuplicated(Nest, Config);
  R.Seconds = static_cast<double>(nowNanos() - Begin) * 1e-9;
  R.Checksum = W.checksum();
  R.Telemetry = Stats.Telemetry;
  R.WaitHist = Stats.WorkerWait;
  R.DispatchBatch = Stats.DispatchBatch;
  if (StatsOut)
    *StatsOut = std::move(Stats);
  return R;
}

speccross::SpecRegion
harness::buildRegion(Workload &W, speccross::CheckpointRegistry &Registry) {
  W.registerState(Registry);
  return buildRegionShared(W, Registry);
}

speccross::SpecRegion
harness::buildRegionShared(Workload &W,
                           speccross::CheckpointRegistry &Registry) {
  speccross::SpecRegion Region;
  Region.NumEpochs = W.numEpochs();
  Region.NumTasks = [&W](std::uint32_t E) { return W.numTasks(E); };
  Region.RunTask = [&W](std::uint32_t E, std::size_t T) { W.runTask(E, T); };
  Region.TaskAddresses = [&W](std::uint32_t E, std::size_t T,
                              std::vector<std::uint64_t> &Addrs) {
    W.taskAddresses(E, T, Addrs);
  };
  if (W.hasPrologue()) {
    assert(W.prologueDuplicable() &&
           "SPECCROSS duplicates prologues onto every worker (§4.3)");
    Region.EpochPrologue = [&W](std::uint32_t E, std::uint32_t Tid) {
      W.epochPrologue(E, Tid);
    };
  }
  Region.Checkpoints = &Registry;
  return Region;
}

ExecResult harness::runSpecCross(Workload &W,
                                 const speccross::SpecConfig &Config,
                                 speccross::SpecMode Mode,
                                 speccross::SpecStats *StatsOut) {
  speccross::CheckpointRegistry Registry;
  speccross::SpecRegion Region = buildRegion(W, Registry);

  ExecResult R;
  const std::uint64_t Begin = nowNanos();
  speccross::SpecStats Stats = speccross::runSpecCross(Region, Config, Mode);
  R.Seconds = static_cast<double>(nowNanos() - Begin) * 1e-9;
  R.Checksum = W.checksum();
  R.Telemetry = Stats.Telemetry;
  R.WaitHist = Stats.WorkerWait;
  if (StatsOut)
    *StatsOut = std::move(Stats);
  return R;
}

std::uint64_t
harness::profiledSpecDistance(Workload &W, unsigned NumWorkers,
                              speccross::ProfileResult *ProfileOut) {
  W.reset();
  speccross::CheckpointRegistry Registry;
  speccross::SpecRegion Region = buildRegion(W, Registry);
  const speccross::ProfileResult P =
      speccross::profileRegion(Region, NumWorkers);
  if (ProfileOut)
    *ProfileOut = P;
  W.reset();
  return P.recommendedSpecDistance(NumWorkers);
}

ExecResult harness::runBarrierDoany(Workload &W, unsigned NumThreads,
                                    unsigned NumLocks) {
  assert(NumThreads > 0 && "need at least one thread");
  assert(NumLocks > 0 && "need at least one lock");
  ExecResult R;
  InstrumentedBarrier<PthreadBarrier> Bar(NumThreads);
  telemetry::RegionTelemetry Tel("doany", NumThreads);
  nameWorkerLanes(Tel, NumThreads);
  std::vector<std::unique_ptr<std::mutex>> Locks;
  for (unsigned L = 0; L < NumLocks; ++L)
    Locks.push_back(std::make_unique<std::mutex>());
  const bool DupPrologue = W.prologueDuplicable();

  const std::uint64_t Begin = nowNanos();
  runThreads(NumThreads, [&](unsigned Tid) {
    std::vector<std::uint64_t> Addrs;
    std::vector<unsigned> Held;
    for (std::uint32_t E = 0, NE = W.numEpochs(); E < NE; ++E) {
      {
        telemetry::TimedScope Wait(Tel, Tid, Counter::BarrierWaitNs,
                                   Hist::BarrierWaitNs,
                                   EventKind::BarrierWait, E);
        Bar.wait(Tid);
      }
      Tel.begin(Tid, EventKind::Epoch, E);
      telemetry::HistScope EpochScope(Tel, Tid, Hist::EpochNs);
      Tel.add(Tid, Counter::EpochsEntered);
      if (W.hasPrologue()) {
        if (DupPrologue) {
          W.epochPrologue(E, Tid);
        } else {
          if (Tid == 0)
            W.epochPrologue(E, 0);
          telemetry::TimedScope Wait(Tel, Tid, Counter::BarrierWaitNs,
                                     Hist::BarrierWaitNs,
                                     EventKind::BarrierWait, E);
          Bar.wait(Tid);
        }
      }
      for (std::size_t T = Tid, NT = W.numTasks(E); T < NT;
           T += NumThreads) {
        // DOANY: guard the task with locks over its address set, acquired
        // in ascending order so lock acquisition cannot deadlock.
        Addrs.clear();
        W.taskAddresses(E, T, Addrs);
        Held.clear();
        for (std::uint64_t A : Addrs)
          Held.push_back(static_cast<unsigned>(A % NumLocks));
        std::sort(Held.begin(), Held.end());
        Held.erase(std::unique(Held.begin(), Held.end()), Held.end());
        for (unsigned L : Held)
          Locks[L]->lock();
        W.runTask(E, T);
        for (auto It = Held.rbegin(); It != Held.rend(); ++It)
          Locks[*It]->unlock();
        Tel.add(Tid, Counter::TasksExecuted);
      }
      Tel.end(Tid, EventKind::Epoch, E);
    }
  });
  R.Seconds = static_cast<double>(nowNanos() - Begin) * 1e-9;
  R.BarrierIdleNanos = Bar.totalIdleNanos();
  R.Checksum = W.checksum();
  R.Telemetry = Tel.totals();
  R.WaitHist = Tel.histTotals(Hist::BarrierWaitNs);
  Tel.finish();
  return R;
}

//===- harness/Executor.h - Parallel execution strategies ------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four execution strategies the dissertation compares over one common
/// workload description:
///
///  * sequential        — best single-threaded execution (the speedup base)
///  * pthread barrier   — inner-loop parallelization with a global barrier
///                        between invocations (the baseline of Figs 5.1/5.2)
///  * DOMORE            — scheduler/worker runtime engine (Ch. 3)
///  * SPECCROSS         — speculative barriers with a checker thread (Ch. 4)
///
/// Every strategy produces bit-identical workload checksums; the tests
/// enforce that, which is the project's end-to-end soundness check for the
/// two runtime systems.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_HARNESS_EXECUTOR_H
#define CIP_HARNESS_EXECUTOR_H

#include "domore/DomoreRuntime.h"
#include "speccross/SpecCrossRuntime.h"
#include "telemetry/Counters.h"
#include "telemetry/Histogram.h"
#include "workloads/Workload.h"

#include <cstdint>

namespace cip {
namespace harness {

/// Result of one timed execution.
struct ExecResult {
  double Seconds = 0.0;
  /// Total nanoseconds all threads idled at barriers (barrier strategies
  /// only) — the quantity of Fig 4.3.
  std::uint64_t BarrierIdleNanos = 0;
  /// Post-execution workload checksum.
  std::uint64_t Checksum = 0;
  /// Aggregated telemetry counters of the strategy's parallel region
  /// (all-zero when built with CIP_TELEMETRY=0, and for runSequential,
  /// which has no parallel region).
  telemetry::CounterTotals Telemetry;
  /// Distribution of the strategy's dominant wait: barrier waits for the
  /// barrier strategies, worker sync/throttle waits for DOMORE and
  /// SPECCROSS. Empty with CIP_TELEMETRY=0 and for runSequential.
  telemetry::HistogramData WaitHist;
  /// DOMORE only: distribution of dispatched batch sizes (iterations per
  /// WorkRange message; values are counts, not nanoseconds). Empty for
  /// every other strategy and with CIP_TELEMETRY=0.
  telemetry::HistogramData DispatchBatch;
};

/// Runs the workload sequentially (epoch by epoch, task by task).
ExecResult runSequential(workloads::Workload &W);

/// Baseline parallelization: \p NumThreads workers, tasks split round-robin
/// inside each epoch, a pthread barrier between epochs (and around
/// non-duplicable prologues). Matches the paper's "Pthread Barrier" series.
ExecResult runBarrier(workloads::Workload &W, unsigned NumThreads);

/// DOANY-style baseline (§2.2, and the "manual" FLUIDANIMATE
/// parallelization of Fig 5.6): like runBarrier, but every task acquires a
/// lock on each abstract address it touches (sorted, from a fixed-size
/// lock table) before executing. On inputs whose epochs are already
/// conflict-free the locks are pure overhead — which is exactly the
/// paper's point when comparing the manual DOANY version against
/// LOCALWRITE and DOMORE.
ExecResult runBarrierDoany(workloads::Workload &W, unsigned NumThreads,
                           unsigned NumLocks = 64);

/// DOMORE execution with \p NumThreads total threads: one scheduler plus
/// NumThreads-1 workers (a single thread degenerates to one worker fed by
/// an in-line scheduler). Returns the runtime engine's statistics in
/// \p StatsOut when non-null.
ExecResult runDomore(workloads::Workload &W, unsigned NumThreads,
                     domore::PolicyKind Policy = domore::PolicyKind::RoundRobin,
                     domore::DomoreStats *StatsOut = nullptr);

/// DOMORE §3.4 variant: scheduler duplicated onto all \p NumThreads workers.
ExecResult
runDomoreDuplicated(workloads::Workload &W, unsigned NumThreads,
                    domore::PolicyKind Policy = domore::PolicyKind::RoundRobin,
                    domore::DomoreStats *StatsOut = nullptr);

/// SPECCROSS execution with \p Config.NumWorkers workers plus one checker
/// thread. Builds the region from the workload, registers its state for
/// checkpointing, and runs it per \p Mode. Returns the runtime's statistics
/// in \p StatsOut when non-null.
ExecResult runSpecCross(workloads::Workload &W,
                        const speccross::SpecConfig &Config,
                        speccross::SpecMode Mode =
                            speccross::SpecMode::Speculation,
                        speccross::SpecStats *StatsOut = nullptr);

/// Builds the DOMORE loop-nest description for \p W (without running it).
domore::LoopNest buildLoopNest(workloads::Workload &W);

/// Builds the SPECCROSS region description for \p W (without running it).
/// \p Registry receives the workload's mutable state.
speccross::SpecRegion buildRegion(workloads::Workload &W,
                                  speccross::CheckpointRegistry &Registry);

/// Like \c buildRegion but does NOT register \p W's state with \p Registry.
/// For callers that reuse one registry across several runs over the same
/// workload (the adaptive harness registers once up front): registering per
/// run would re-append every buffer and double the snapshot bytes.
speccross::SpecRegion
buildRegionShared(workloads::Workload &W,
                  speccross::CheckpointRegistry &Registry);

/// Profiles \p W (sequentially, from a reset state) and returns the
/// recommended speculative distance for \p NumWorkers, mirroring the
/// paper's profile-then-speculate flow (§4.4). Leaves the workload reset.
std::uint64_t profiledSpecDistance(workloads::Workload &W,
                                   unsigned NumWorkers,
                                   speccross::ProfileResult *ProfileOut =
                                       nullptr);

} // namespace harness
} // namespace cip

#endif // CIP_HARNESS_EXECUTOR_H

//===- harness/StagedLoop.h - DOACROSS and DSWP executors ------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Chapter 2 background techniques on the paper's running example
/// (Fig 2.4): a sequential loop whose body splits into a *traversal* stage
/// that forms a cross-iteration dependence cycle (node = node->next) and a
/// *work* stage that is independent once the traversal's token is known.
///
///  * DOACROSS (Fig 2.5a): whole iterations round-robin across threads;
///    each thread synchronizes on the previous iteration's traversal
///    before running its own, putting the communication latency on the
///    critical path.
///  * DSWP / PS-DSWP (Fig 2.5b): the traversal stage runs on one thread
///    for *all* iterations, streaming tokens through lock-free queues to
///    one (DSWP) or several (parallel-stage DSWP) work threads — a
///    pipeline whose cross-thread dependences flow one way only.
///
/// These executors ground the dissertation's taxonomy (Fig 1.5) and feed
/// the Fig 2.5 benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_HARNESS_STAGEDLOOP_H
#define CIP_HARNESS_STAGEDLOOP_H

#include "support/Compiler.h"

#include <cstddef>
#include <cstdint>
#include <functional>

namespace cip {
namespace harness {

/// A sequential loop split into a dependence-cycle stage and a parallel
/// stage (see file comment).
struct StagedLoop {
  std::uint64_t NumIterations = 0;

  /// The sequential stage: must execute in iteration order (it carries the
  /// loop's dependence cycle). Returns the token the work stage consumes.
  std::function<std::int64_t(std::uint64_t Iter)> Traverse;

  /// The parallel stage: independent across iterations given its token.
  std::function<void(std::uint64_t Iter, std::int64_t Token)> Work;
};

/// Reference execution: Traverse(i); Work(i) in order.
double runStagedSequential(const StagedLoop &L);

/// DOACROSS over \p NumThreads threads. Returns elapsed seconds.
double runDoacross(const StagedLoop &L, unsigned NumThreads);

/// (PS-)DSWP: one traversal thread plus NumThreads-1 work threads
/// (NumThreads == 2 is classic two-stage DSWP). Returns elapsed seconds.
double runDswp(const StagedLoop &L, unsigned NumThreads);

/// Uniform dispatch row for the staged-loop executors, mirroring the
/// adaptive harness's TechniqueVtable (harness/Adaptive.h) so tests and
/// tools enumerate and run the Chapter 2 techniques generically instead of
/// hard-coding the three entry points.
struct StagedTechnique {
  const char *Name = "";
  /// Runs \p L under this technique; "sequential" ignores \p NumThreads,
  /// "dswp" requires at least 2. Returns elapsed seconds.
  double (*Run)(const StagedLoop &L, unsigned NumThreads) = nullptr;
};

/// The technique table: "sequential", "doacross", "dswp", in that order.
/// \p Count receives the row count.
const StagedTechnique *stagedTechniques(std::size_t &Count);

} // namespace harness
} // namespace cip

#endif // CIP_HARNESS_STAGEDLOOP_H

//===- harness/Adaptive.cpp - Policy-driven adaptive execution -----------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "harness/Adaptive.h"

#include "memory/CheckpointSubstrate.h"
#include "support/Chaos.h"
#include "support/Timer.h"
#include "telemetry/DependenceDistance.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

using namespace cip;
using namespace cip::harness;
using namespace cip::workloads;
using telemetry::EventKind;

namespace {

/// A window of \p Count consecutive epochs of a base workload, presented as
/// a workload in its own right so every fixed-strategy runner executes it
/// unchanged. Epochs renumber to [0, Count); everything else delegates.
/// checksum() is 0 — the adaptive harness computes the region digest once,
/// on the base workload, after the last window — and reset() is a no-op
/// (resetting mid-region would destroy the previous windows' work).
class WindowView final : public Workload {
public:
  WindowView(Workload &Base, std::uint32_t First, std::uint32_t Count)
      : Base(Base), First(First), Count(Count) {}

  const char *name() const override { return Base.name(); }
  void reset() override {}
  std::uint32_t numEpochs() const override { return Count; }
  std::size_t numTasks(std::uint32_t E) const override {
    return Base.numTasks(First + E);
  }
  void runTask(std::uint32_t E, std::size_t T) override {
    Base.runTask(First + E, T);
  }
  void taskAddresses(std::uint32_t E, std::size_t T,
                     std::vector<std::uint64_t> &Addrs) const override {
    Base.taskAddresses(First + E, T, Addrs);
  }
  void epochPrologue(std::uint32_t E, std::uint32_t Tid) override {
    Base.epochPrologue(First + E, Tid);
  }
  bool hasPrologue() const override { return Base.hasPrologue(); }
  bool prologueDuplicable() const override {
    return Base.prologueDuplicable();
  }
  void prologueAddresses(std::uint32_t E,
                         std::vector<std::uint64_t> &Addrs) const override {
    Base.prologueAddresses(First + E, Addrs);
  }
  std::uint64_t addressSpaceSize() const override {
    return Base.addressSpaceSize();
  }
  void registerState(speccross::CheckpointRegistry &Reg) override {
    Base.registerState(Reg);
  }
  std::uint64_t checksum() const override { return 0; }
  bool domoreApplicable() const override { return Base.domoreApplicable(); }
  bool speccrossApplicable() const override {
    return Base.speccrossApplicable();
  }
  const char *innerLoopPlan() const override { return Base.innerLoopPlan(); }
  speccross::SignatureScheme preferredSignature() const override {
    return Base.preferredSignature();
  }

private:
  Workload &Base;
  std::uint32_t First;
  std::uint32_t Count;
};

unsigned windowWorkers(const AdaptiveContext &Ctx) {
  return Ctx.NumThreads > 1 ? Ctx.NumThreads - 1 : 1;
}

ExecResult runBarrierWindow(AdaptiveContext &Ctx, Workload &View) {
  return harness::runBarrier(View, Ctx.NumThreads);
}

ExecResult runDomoreWindow(AdaptiveContext &Ctx, Workload &View) {
  domore::LoopNest Nest = buildLoopNest(View);
  domore::DomoreConfig Config;
  Config.NumWorkers = windowWorkers(Ctx);
  Config.Carry = &Ctx.Carry; // warm-carry: reuse the shadow allocation
  if (Ctx.PlanMaxBatch) // plan hint; CIP_MAX_BATCH still wins in the runtime
    Config.MaxBatch = Ctx.PlanMaxBatch;
  if (Ctx.PlanShadowShards) // plan hint; CIP_SHADOW_SHARDS still wins
    Config.ShadowShards = Ctx.PlanShadowShards;
  if (Ctx.PlanSchedThreads) // plan hint; CIP_SCHED_THREADS still wins
    Config.SchedThreads = Ctx.PlanSchedThreads;

  ExecResult R;
  const std::uint64_t Begin = nowNanos();
  domore::DomoreStats Stats = domore::runDomore(Nest, Config);
  R.Seconds = static_cast<double>(nowNanos() - Begin) * 1e-9;
  R.Telemetry = Stats.Telemetry;
  R.WaitHist = Stats.WorkerWait;
  R.DispatchBatch = Stats.DispatchBatch;
  Ctx.LastDomore = std::move(Stats);
  return R;
}

ExecResult runDomoreDupWindow(AdaptiveContext &Ctx, Workload &View) {
  return harness::runDomoreDuplicated(View, Ctx.NumThreads,
                                      domore::PolicyKind::RoundRobin,
                                      &Ctx.LastDomore);
}

ExecResult runSpecCrossWindow(AdaptiveContext &Ctx, Workload &View) {
  // buildRegionShared, not buildRegion: the workload's state is already in
  // Ctx.Registry (registered once by runAdaptive); re-registering would
  // double the snapshot bytes. The registry legally carries across windows
  // because a window boundary is a full join — a checkpoint taken at window
  // start covers every prior window's committed state.
  speccross::SpecRegion Region = buildRegionShared(View, Ctx.Registry);
  speccross::SpecConfig Config;
  Config.NumWorkers = windowWorkers(Ctx);
  Config.Scheme = Ctx.Scheme;
  if (Ctx.PlanSpecDistance) // plan throttle (0 keeps the unthrottled default)
    Config.SpecDistance = Ctx.PlanSpecDistance;

  ExecResult R;
  const std::uint64_t Begin = nowNanos();
  speccross::SpecStats Stats =
      speccross::runSpecCross(Region, Config, speccross::SpecMode::Speculation);
  R.Seconds = static_cast<double>(nowNanos() - Begin) * 1e-9;
  R.Telemetry = Stats.Telemetry;
  R.WaitHist = Stats.WorkerWait;
  Ctx.LastSpec = std::move(Stats);
  return R;
}

const TechniqueVtable VtableRows[policy::NumTechniques] = {
    {policy::Technique::Barrier, "barrier", /*WarmCarry=*/false,
     "stateless; nothing to carry", &runBarrierWindow},
    {policy::Technique::Domore, "domore", /*WarmCarry=*/true,
     "shadow allocation carried; contents cleared every window (combined "
     "iteration numbers restart)",
     &runDomoreWindow},
    {policy::Technique::DomoreDup, "domore-dup", /*WarmCarry=*/false,
     "per-worker private shadows are rebuilt every window",
     &runDomoreDupWindow},
    {policy::Technique::SpecCross, "speccross", /*WarmCarry=*/true,
     "checkpoint registry carried; signatures and epoch clocks restart",
     &runSpecCrossWindow},
};

/// Distills one finished window into the policy engine's signal snapshot.
policy::RegionStats makeStats(policy::Technique Tech, std::uint32_t Window,
                              std::uint32_t First, std::uint32_t Count,
                              const ExecResult &R, WindowView &View,
                              const AdaptiveContext &Ctx) {
  policy::RegionStats S;
  S.Tech = Tech;
  S.Window = Window;
  S.FirstEpoch = First;
  S.NumEpochs = Count;
  S.Seconds = R.Seconds;
  S.Tasks = View.totalTasks();
  switch (Tech) {
  case policy::Technique::SpecCross:
    S.Misspeculations = Ctx.LastSpec.Misspeculations;
    S.CheckRequests = Ctx.LastSpec.CheckRequests;
    S.CheckLatencyP90Ns = Ctx.LastSpec.CheckLatency.quantileNs(0.90);
    break;
  case policy::Technique::Domore:
  case policy::Technique::DomoreDup:
    S.SyncConditions = Ctx.LastDomore.SyncConditions;
    S.Iterations = Ctx.LastDomore.Iterations;
    S.SchedulerRatioPercent = Ctx.LastDomore.schedulerRatioPercent();
    break;
  case policy::Technique::Barrier:
    break;
  }
  S.WaitP90Ns = R.WaitHist.quantileNs(0.90);
  if (R.DispatchBatch.count())
    S.MeanDispatchBatch = static_cast<double>(R.DispatchBatch.SumNs) /
                          static_cast<double>(R.DispatchBatch.count());
  return S;
}

} // namespace

const TechniqueVtable &harness::techniqueVtable(policy::Technique T) {
  const unsigned I = static_cast<unsigned>(T);
  assert(I < policy::NumTechniques && "technique out of range");
  assert(VtableRows[I].Tech == T && "vtable table out of order");
  return VtableRows[I];
}

std::uint32_t harness::applicabilityMask(const Workload &W) {
  std::uint32_t Mask = policy::techniqueBit(policy::Technique::Barrier);
  if (W.domoreApplicable()) {
    Mask |= policy::techniqueBit(policy::Technique::Domore);
    // §3.4: the duplicated scheduler re-runs the scheduler partition on
    // every worker, so the prologue must be duplicable.
    if (W.prologueDuplicable())
      Mask |= policy::techniqueBit(policy::Technique::DomoreDup);
  }
  // §4.3: SPECCROSS duplicates prologues onto every worker too.
  if (W.speccrossApplicable() &&
      (!W.hasPrologue() || W.prologueDuplicable()))
    Mask |= policy::techniqueBit(policy::Technique::SpecCross);
  return Mask;
}

ExecResult harness::runAdaptive(Workload &W, unsigned NumThreads,
                                const policy::PolicyConfig &Cfg,
                                AdaptiveStats *StatsOut,
                                const AdaptiveRunOptions &Opts) {
  assert(NumThreads > 0 && "need at least one thread");
  assert(Cfg.WindowEpochs > 0 && "window must contain at least one epoch");

  const std::uint32_t NE = W.numEpochs();
  const std::uint32_t Mask = applicabilityMask(W);
  policy::PolicyEngine Engine(Cfg, Mask);

  AdaptiveContext Ctx;
  Ctx.NumThreads = NumThreads;
  Ctx.Scheme = W.preferredSignature();
  // Register the region's state exactly once; every speculative window
  // shares this registry (see runSpecCrossWindow).
  W.registerState(Ctx.Registry);

  // The control lane: decisions and switch events land here, alongside the
  // per-window engine regions' own telemetry.
  telemetry::RegionTelemetry Tel("adaptive", 1);
  if (Tel.tracing())
    Tel.nameLane(0, "policy");

  ExecResult Out;
  AdaptiveStats St;

  const bool Profiling = !Opts.ProfileDir.empty() || Opts.PlanOut;
  std::uint32_t First = 0;
  std::uint32_t Window = 0;
  // Last executed window's technique name; seeds the switch bookkeeping
  // across the calibration → policy transition.
  const char *PrevName = nullptr;
  plan::RegionPlan Emitted;
  policy::Technique PlanInitial = policy::Technique::Barrier;

  if (Profiling) {
    // Calibrate the checkpoint substrate alongside the techniques: auto
    // starts page-tracking and resolves from the first measured checkpoint
    // interval of the SPECCROSS calibration window (no-op when CIP_CKPT
    // pins a substrate — the emitted hint then records the pin).
    Ctx.Registry.setSubstrate(memory::SubstrateKind::Auto);

    // Walk the declared address stream through the dependence-distance
    // estimator before running anything: taskAddresses is read-only, so
    // this observes exactly the cross-epoch reuse the run will execute.
    // Task numbering is global and monotone (prologues excluded — they are
    // serialized by construction and carry no cross-epoch distance).
    telemetry::DependenceDistanceEstimator Est;
    {
      std::vector<std::uint64_t> Addrs;
      std::uint64_t Task = 0;
      for (std::uint32_t E = 0; E < NE; ++E) {
        const std::size_t NT = W.numTasks(E);
        for (std::size_t T = 0; T < NT; ++T, ++Task) {
          Addrs.clear();
          W.taskAddresses(E, T, Addrs);
          for (std::uint64_t A : Addrs)
            Est.observe(E, Task, A);
        }
      }
    }

    plan::RegionPlan P;
    P.Region = W.name();
    P.Threads = NumThreads;

    // Calibration schedule: one sequential probe, then one window per
    // applicable technique in enum order. A region shorter than the sweep
    // truncates it (unmeasured rows stay Measured=false in the plan).
    // Calibration windows execute real region work — the run's checksum
    // stays bit-identical to every other executor.
    std::vector<int> Steps; // -1 = sequential probe, else Technique index
    Steps.push_back(-1);
    for (unsigned T = 0; T < policy::NumTechniques; ++T)
      if (Mask & policy::techniqueBit(static_cast<policy::Technique>(T)))
        Steps.push_back(static_cast<int>(T));

    for (int Step : Steps) {
      if (First >= NE)
        break;
      const std::uint32_t Count = std::min(Cfg.WindowEpochs, NE - First);
      WindowView View(W, First, Count);
      ExecResult R;
      policy::RegionStats S;
      const char *Name = "sequential";
      if (Step < 0) {
        R = harness::runSequential(View);
        P.SequentialSecondsPerEpoch = R.Seconds / Count;
      } else {
        const policy::Technique T = static_cast<policy::Technique>(Step);
        const TechniqueVtable &V = techniqueVtable(T);
        Name = V.Name;
        Ctx.LastDomore = domore::DomoreStats{};
        Ctx.LastSpec = speccross::SpecStats{};
        R = V.RunWindow(Ctx, View);
        S = makeStats(T, Window, First, Count, R, View, Ctx);
        plan::TechniqueCalibration &C = P.Techniques[Step];
        C.Measured = true;
        C.SecondsPerEpoch = R.Seconds / Count;
        C.AbortRate = S.abortRate();
        C.ConflictDensity = S.conflictDensity();
        C.SchedulerRatioPercent = S.SchedulerRatioPercent;
        if (T == policy::Technique::Domore && S.MeanDispatchBatch > 0.0)
          P.MaxBatchHint = static_cast<std::uint32_t>(
              std::clamp(S.MeanDispatchBatch + 0.5, 1.0, 64.0));
        // Scheduler-bound regions (the Table 5.2 failure mode) are the ones
        // the sharded detect-and-record stage unthrottles; recommend it when
        // the calibration window measured the scheduler busy for a third or
        // more of the region, and a two-thread scheduler team (DESIGN.md
        // §15) to split the probe stage across the recommended shards.
        if (T == policy::Technique::Domore &&
            S.SchedulerRatioPercent >= 33.0) {
          P.ShadowShards = 8;
          P.SchedThreads = 2;
        }
      }
      St.ExecSeconds += R.Seconds;
      Out.BarrierIdleNanos += R.BarrierIdleNanos;
      Out.Telemetry += R.Telemetry;
      Out.WaitHist += R.WaitHist;
      Out.DispatchBatch += R.DispatchBatch;

      telemetry::PolicyDecisionRecord Rec;
      Rec.Window = Window;
      Rec.FirstEpoch = First;
      Rec.NumEpochs = Count;
      Rec.Technique = Name;
      Rec.Reason = "calibrate";
      Rec.Switched = PrevName && std::strcmp(PrevName, Name) != 0;
      Rec.WindowSeconds = R.Seconds;
      Rec.AbortRate = S.abortRate();
      Rec.ConflictDensity = S.conflictDensity();
      Rec.DecisionNs = 0;
      Tel.recordDecision(Rec);
      Tel.instant(0, EventKind::PolicyDecision, Window,
                  Step < 0 ? policy::NumTechniques
                           : static_cast<std::uint64_t>(Step));
      St.Decisions.push_back(Rec);
      ++St.Windows;

      if (Rec.Switched) {
        telemetry::SwitchEventRecord SE;
        SE.Window = Window;
        SE.From = PrevName;
        SE.To = Name;
        SE.Reason = "calibrate";
        SE.WarmCarry =
            Step >= 0 &&
            techniqueVtable(static_cast<policy::Technique>(Step)).WarmCarry;
        SE.TeardownNs = 0;
        Tel.recordSwitch(SE);
        St.Switches.push_back(SE);
      }
      PrevName = Name;
      First += Count;
      ++Window;
    }

    // Distill the sweep into the plan: the cheapest measured technique is
    // the initial pick and its cost the prediction; the estimator sets the
    // SPECCROSS throttle (0-sentinel = unthrottled — JSON never carries
    // uint64 max).
    P.CalibrationEpochs = First;
    double BestSec = std::numeric_limits<double>::infinity();
    for (unsigned T = 0; T < policy::NumTechniques; ++T) {
      const plan::TechniqueCalibration &C = P.Techniques[T];
      if (C.Measured && C.SecondsPerEpoch < BestSec) {
        BestSec = C.SecondsPerEpoch;
        P.Initial = static_cast<policy::Technique>(T);
        P.PredictedSecondsPerEpoch = C.SecondsPerEpoch;
      }
    }
    if (!Est.conflictFree()) {
      P.MinDependenceDistance = Est.minTaskDistance();
      P.MinEpochDistance = Est.minEpochDistance();
      P.ConflictingAddresses = Est.conflictingAddresses();
    }
    const std::uint64_t Dist = Est.recommendedSpecDistance(windowWorkers(Ctx));
    P.SpecDistance =
        Dist == std::numeric_limits<std::uint64_t>::max() ? 0 : Dist;
    // Substrate hint: only meaningful when a speculative window actually
    // checkpointed ("" = none-sentinel). An unresolved auto (too few
    // checkpoints to measure) still names the substrate it is running on.
    if (P.Techniques[static_cast<unsigned>(policy::Technique::SpecCross)]
            .Measured)
      P.CkptSubstrate = Ctx.Registry.substrateName();

    Emitted = P;
    PlanInitial = P.Initial;
    Engine.warmStart(plan::warmStartFrom(P));
    Ctx.PlanSpecDistance = P.SpecDistance;
    Ctx.PlanMaxBatch = P.MaxBatchHint;
    Ctx.PlanShadowShards = P.ShadowShards;
    Ctx.PlanSchedThreads = P.SchedThreads;
    Ctx.PlanCkptSubstrate = P.CkptSubstrate; // registry already runs on it

    St.Plan.Profiled = true;
    St.Plan.Source = "profile";
    St.Plan.InitialTechnique = policy::techniqueName(P.Initial);
    St.Plan.PredictedSecondsPerEpoch = P.PredictedSecondsPerEpoch;
    St.Plan.SequentialSecondsPerEpoch = P.SequentialSecondsPerEpoch;
    St.Plan.SpecDistance = P.SpecDistance;
    St.Plan.MaxBatchHint = P.MaxBatchHint;
    St.Plan.ShadowShards = P.ShadowShards;
    St.Plan.SchedThreads = P.SchedThreads;
    St.Plan.CkptSubstrate = P.CkptSubstrate;
    St.Plan.MinDependenceDistance = P.MinDependenceDistance;
  } else if (Opts.Plan) {
    PlanInitial = Opts.Plan->Initial;
    Engine.warmStart(plan::warmStartFrom(*Opts.Plan));
    Ctx.PlanSpecDistance = Opts.Plan->SpecDistance;
    Ctx.PlanMaxBatch = Opts.Plan->MaxBatchHint;
    Ctx.PlanShadowShards = Opts.Plan->ShadowShards;
    Ctx.PlanSchedThreads = Opts.Plan->SchedThreads;
    Ctx.PlanCkptSubstrate = Opts.Plan->CkptSubstrate;
    if (!Ctx.PlanCkptSubstrate.empty()) {
      // parsePlan already validated the name; CIP_CKPT still wins (the
      // registry ignores setSubstrate when the env pinned one).
      memory::SubstrateKind K = memory::SubstrateKind::Eager;
      if (memory::parseSubstrateName(Ctx.PlanCkptSubstrate.c_str(), K))
        Ctx.Registry.setSubstrate(K);
    }

    St.Plan.Loaded = true;
    St.Plan.Source = Opts.PlanSource;
    St.Plan.Path = Opts.PlanPath;
    St.Plan.InitialTechnique = policy::techniqueName(Opts.Plan->Initial);
    St.Plan.PredictedSecondsPerEpoch = Opts.Plan->PredictedSecondsPerEpoch;
    St.Plan.SequentialSecondsPerEpoch = Opts.Plan->SequentialSecondsPerEpoch;
    St.Plan.SpecDistance = Opts.Plan->SpecDistance;
    St.Plan.MaxBatchHint = Opts.Plan->MaxBatchHint;
    St.Plan.ShadowShards = Opts.Plan->ShadowShards;
    St.Plan.SchedThreads = Opts.Plan->SchedThreads;
    St.Plan.CkptSubstrate = Opts.Plan->CkptSubstrate;
    St.Plan.MinDependenceDistance = Opts.Plan->MinDependenceDistance;
  }

  policy::Decision D;
  std::uint64_t LastDecisionNs = 0;
  bool PendingSwitch = false;
  if (First < NE) {
    CIP_CHAOS_POINT(PolicyDecide);
    const std::uint64_t T0 = nowNanos();
    D = Engine.initial();
    LastDecisionNs = nowNanos() - T0;
    St.DecisionNanos += LastDecisionNs;

    // Calibration → policy transition: initial() never reports Switched,
    // so the boundary is recorded manually when the technique changes.
    if (PrevName) {
      const TechniqueVtable &V0 = techniqueVtable(D.Tech);
      if (std::strcmp(PrevName, V0.Name) != 0) {
        PendingSwitch = true;
        telemetry::SwitchEventRecord SE;
        SE.Window = Window;
        SE.From = PrevName;
        SE.To = V0.Name;
        SE.Reason = D.Reason;
        SE.WarmCarry = V0.WarmCarry;
        SE.TeardownNs = 0;
        Tel.recordSwitch(SE);
        St.Switches.push_back(SE);
      }
    }
  }

  while (First < NE) {
    const std::uint32_t Count = std::min(Cfg.WindowEpochs, NE - First);
    WindowView View(W, First, Count);
    const TechniqueVtable &V = techniqueVtable(D.Tech);
    Ctx.LastDomore = domore::DomoreStats{};
    Ctx.LastSpec = speccross::SpecStats{};

    const ExecResult R = V.RunWindow(Ctx, View);
    St.ExecSeconds += R.Seconds;
    Out.BarrierIdleNanos += R.BarrierIdleNanos;
    Out.Telemetry += R.Telemetry;
    Out.WaitHist += R.WaitHist;
    Out.DispatchBatch += R.DispatchBatch;

    const policy::RegionStats S =
        makeStats(D.Tech, Window, First, Count, R, View, Ctx);

    telemetry::PolicyDecisionRecord Rec;
    Rec.Window = Window;
    Rec.FirstEpoch = First;
    Rec.NumEpochs = Count;
    Rec.Technique = V.Name;
    Rec.Reason = D.Reason;
    Rec.Explore = D.Explore;
    Rec.Switched = D.Switched || PendingSwitch;
    PendingSwitch = false;
    Rec.WindowSeconds = R.Seconds;
    Rec.AbortRate = S.abortRate();
    Rec.ConflictDensity = S.conflictDensity();
    Rec.DecisionNs = LastDecisionNs;
    Tel.recordDecision(Rec);
    Tel.instant(0, EventKind::PolicyDecision, Window,
                static_cast<std::uint64_t>(D.Tech));
    St.Decisions.push_back(Rec);
    ++St.Windows;

    First += Count;
    ++Window;
    if (First >= NE)
      break;

    CIP_CHAOS_POINT(PolicyDecide);
    const std::uint64_t T0 = nowNanos();
    const policy::Decision Next = Engine.observe(S);
    LastDecisionNs = nowNanos() - T0;
    St.DecisionNanos += LastDecisionNs;

    if (Next.Switched) {
      CIP_CHAOS_POINT(PolicySwitch);
      const std::uint64_t S0 = nowNanos();
      // Boundary bookkeeping. The carried state itself needs no action
      // here: each technique re-acquires (and clears) what it owns on its
      // next window — see the vtable's CarryNote per row.
      Ctx.LastDomore = domore::DomoreStats{};
      Ctx.LastSpec = speccross::SpecStats{};
      const std::uint64_t TearNs = nowNanos() - S0;
      St.TeardownNanos += TearNs;

      telemetry::SwitchEventRecord SE;
      SE.Window = Window;
      SE.From = techniqueVtable(D.Tech).Name;
      SE.To = techniqueVtable(Next.Tech).Name;
      SE.Reason = Next.Reason;
      SE.WarmCarry = techniqueVtable(Next.Tech).WarmCarry;
      SE.TeardownNs = TearNs;
      Tel.recordSwitch(SE);
      Tel.instant(0, EventKind::PolicySwitch,
                  static_cast<std::uint64_t>(D.Tech),
                  static_cast<std::uint64_t>(Next.Tech));
      St.Switches.push_back(SE);
    }
    D = Next;
  }

  // The adaptive region's time includes the policy layer's measured
  // overhead; AdaptiveStats itemizes it so benchmarks can separate decision
  // cost from execution time (EXPERIMENTS.md).
  Out.Seconds = St.ExecSeconds +
                static_cast<double>(St.DecisionNanos + St.TeardownNanos) * 1e-9;
  Out.Checksum = W.checksum();

  if (Profiling) {
    if (Opts.PlanOut)
      *Opts.PlanOut = Emitted;
    if (!Opts.ProfileDir.empty()) {
      std::string PathOut, Err;
      if (!plan::savePlan(Emitted, Opts.ProfileDir, PathOut, Err)) {
        std::fprintf(
            stderr,
            "error: CIP_PROFILE='%s' is invalid: expected a writable plan "
            "directory (%s)\n",
            Opts.ProfileDir.c_str(), Err.c_str());
        std::_Exit(2);
      }
      St.Plan.Path = PathOut;
    }
  }
  if (St.Plan.Loaded || St.Plan.Profiled)
    Tel.instant(0, EventKind::PlanLoad, St.Plan.Loaded ? 1 : 0,
                static_cast<std::uint64_t>(PlanInitial));
  Tel.recordPlan(St.Plan);
  Tel.finish();
  if (StatsOut)
    *StatsOut = std::move(St);
  return Out;
}

bool harness::runAdaptiveFromEnv(workloads::Workload &W, unsigned NumThreads,
                                 ExecResult &Out, AdaptiveStats *StatsOut) {
  policy::PolicyConfig Cfg;
  const bool HavePolicy = policy::configFromEnv(Cfg);

  // CIP_PROFILE beats CIP_PLAN: a calibration run measures from scratch and
  // must not be steered by a stale plan.
  AdaptiveRunOptions Opts;
  plan::RegionPlan Loaded;
  if (!plan::profileDirFromEnv(Opts.ProfileDir) &&
      plan::planFromEnv(W.name(), Loaded, &Opts.PlanPath, &Opts.PlanSource))
    Opts.Plan = &Loaded;

  if (!HavePolicy && Opts.ProfileDir.empty() && !Opts.Plan)
    return false;
  // CIP_PROFILE / CIP_PLAN without CIP_POLICY still route through the
  // adaptive executor, under the default threshold policy — profiling and
  // warm-starting should not require picking a policy by hand.
  if (!HavePolicy)
    Cfg.Kind = policy::PolicyKind::Threshold;
  Out = runAdaptive(W, NumThreads, Cfg, StatsOut, Opts);
  return true;
}

//===- harness/StagedLoop.cpp - DOACROSS and DSWP executors --------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "harness/StagedLoop.h"

#include "support/Backoff.h"
#include "support/SPSCQueue.h"
#include "support/ThreadGroup.h"
#include "support/Timer.h"

#include <atomic>
#include <memory>
#include <vector>

using namespace cip;
using namespace cip::harness;

double harness::runStagedSequential(const StagedLoop &L) {
  assert(L.Traverse && L.Work && "incomplete staged loop");
  const std::uint64_t Begin = nowNanos();
  for (std::uint64_t I = 0; I < L.NumIterations; ++I)
    L.Work(I, L.Traverse(I));
  return static_cast<double>(nowNanos() - Begin) * 1e-9;
}

double harness::runDoacross(const StagedLoop &L, unsigned NumThreads) {
  assert(L.Traverse && L.Work && "incomplete staged loop");
  assert(NumThreads > 0 && "need at least one thread");

  // The carried dependence is enforced with a turn counter: iteration i's
  // traversal may run only after iteration i-1's completed. Everything
  // after the traversal overlaps with other threads (Fig 2.5a).
  alignas(CacheLineBytes) std::atomic<std::uint64_t> Turn{0};

  const std::uint64_t Begin = nowNanos();
  runThreads(NumThreads, [&](unsigned Tid) {
    Backoff B;
    for (std::uint64_t I = Tid; I < L.NumIterations; I += NumThreads) {
      while (Turn.load(std::memory_order_acquire) != I)
        B.pause();
      const std::int64_t Token = L.Traverse(I);
      Turn.store(I + 1, std::memory_order_release);
      B.reset();
      L.Work(I, Token);
    }
  });
  return static_cast<double>(nowNanos() - Begin) * 1e-9;
}

double harness::runDswp(const StagedLoop &L, unsigned NumThreads) {
  assert(L.Traverse && L.Work && "incomplete staged loop");
  assert(NumThreads >= 2 && "DSWP needs a producer and at least one worker");
  const unsigned NumWorkers = NumThreads - 1;

  // One queue per work thread; tokens dealt round-robin. All cross-thread
  // dependences flow producer -> workers (Fig 2.5b).
  std::vector<std::unique_ptr<SPSCQueue<std::int64_t>>> Queues;
  for (unsigned W = 0; W < NumWorkers; ++W)
    Queues.push_back(std::make_unique<SPSCQueue<std::int64_t>>(4096));

  const std::uint64_t Begin = nowNanos();
  runThreads(NumThreads, [&](unsigned Tid) {
    if (Tid == NumWorkers) {
      // The sequential-stage thread.
      for (std::uint64_t I = 0; I < L.NumIterations; ++I)
        Queues[I % NumWorkers]->produce(L.Traverse(I));
      return;
    }
    for (std::uint64_t I = Tid; I < L.NumIterations; I += NumWorkers)
      L.Work(I, Queues[Tid]->consume());
  });
  return static_cast<double>(nowNanos() - Begin) * 1e-9;
}

namespace {

double runStagedSequentialRow(const StagedLoop &L, unsigned) {
  return harness::runStagedSequential(L);
}

const StagedTechnique StagedRows[] = {
    {"sequential", &runStagedSequentialRow},
    {"doacross", &harness::runDoacross},
    {"dswp", &harness::runDswp},
};

} // namespace

const StagedTechnique *harness::stagedTechniques(std::size_t &Count) {
  Count = sizeof(StagedRows) / sizeof(StagedRows[0]);
  return StagedRows;
}

//===- harness/Adaptive.h - Policy-driven adaptive execution ---*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive executor: runs one workload region in *windows* of
/// consecutive epochs, letting a \c policy::PolicyEngine pick the execution
/// technique per window from the signals the previous window produced
/// (DESIGN.md §11). Technique switches happen only at window boundaries —
/// every window ends with a full join, so a boundary is a global
/// synchronization point and any technique may legally follow any other.
///
/// What carries across a switch (the warm-carry legality table, §11):
///
///   technique  | carried state                  | torn down per window
///   -----------|--------------------------------|----------------------------
///   barrier    | nothing (stateless)            | —
///   domore     | shadow-memory allocation       | shadow *contents* (combined
///              | (domore::ShadowCarry)          | iteration numbers restart)
///   domore-dup | nothing (per-worker private    | each worker's private
///              | shadows cannot be shared)      | shadow
///   speccross  | CheckpointRegistry (state is   | signatures & epoch clocks
///              | registered once per region)    | (epochs renumber from 0)
///
/// The per-technique dispatch is a uniform \c TechniqueVtable so the
/// executors stay enumerable (tests iterate it; StagedLoop mirrors the shape
/// for the Chapter 2 techniques).
///
/// Timing: the adaptive result's Seconds is the sum of the window execution
/// times plus the measured decision and switch-teardown overhead, so the
/// policy layer's cost is visible — AdaptiveStats itemizes it, and
/// EXPERIMENTS.md explains how to separate the two when comparing against
/// fixed techniques.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_HARNESS_ADAPTIVE_H
#define CIP_HARNESS_ADAPTIVE_H

#include "harness/Executor.h"
#include "policy/Plan.h"
#include "policy/Policy.h"
#include "telemetry/RunReport.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cip {
namespace harness {

/// Warm state threaded through the window runners. Owned by runAdaptive;
/// lives exactly as long as one adaptive region execution.
struct AdaptiveContext {
  unsigned NumThreads = 2;

  /// DOMORE warm-carry: the shadow allocation persists across windows (its
  /// contents are cleared on every reacquire — see domore::ShadowCarry).
  domore::ShadowCarry Carry;

  /// SPECCROSS warm-carry: the workload's state is registered exactly once
  /// per region; speculative windows share this registry for checkpoints.
  speccross::CheckpointRegistry Registry;

  /// Signature scheme speculative windows use (the workload's preference).
  speccross::SignatureScheme Scheme = speccross::SignatureScheme::Range;

  /// Engine statistics of the window that just ran; the vtable runner for
  /// the technique fills its own and leaves the other default.
  domore::DomoreStats LastDomore;
  speccross::SpecStats LastSpec;

  /// Plan-applied knobs (0 = leave the engine default). SpecDistance
  /// throttles speculative windows; MaxBatch hints DOMORE dispatch
  /// coalescing (CIP_MAX_BATCH, when set, still overrides the hint — the
  /// env knob is resolved inside the DOMORE runtime).
  std::uint64_t PlanSpecDistance = 0;
  std::uint32_t PlanMaxBatch = 0;
  /// Shadow-shard count for DOMORE windows (0 = serial scheduler;
  /// CIP_SHADOW_SHARDS, when set, still overrides the hint).
  std::uint32_t PlanShadowShards = 0;
  /// Scheduler-team size for DOMORE windows (0 = one scheduler thread;
  /// CIP_SCHED_THREADS, when set, still overrides the hint).
  std::uint32_t PlanSchedThreads = 0;
  /// Checkpoint substrate the plan selected for speculative windows
  /// ("" = registry default; CIP_CKPT, when set, still overrides — the env
  /// pin is resolved inside CheckpointRegistry). Applied to Registry when
  /// the plan is consumed, before the first speculative window.
  std::string PlanCkptSubstrate;
};

/// One uniform dispatch row per technique: how the adaptive harness runs a
/// window of consecutive epochs and what may legally stay warm across a
/// switch (see the file-comment table).
struct TechniqueVtable {
  policy::Technique Tech = policy::Technique::Barrier;
  const char *Name = "";
  /// True when some per-region state legally persists across windows of
  /// this technique (exported on switch events as `warm_carry`).
  bool WarmCarry = false;
  /// Static one-liner: what carries, or why full teardown is required.
  const char *CarryNote = "";
  /// Runs epochs [0, View.numEpochs()) of \p View (a window-sliced
  /// workload) under this technique.
  ExecResult (*RunWindow)(AdaptiveContext &Ctx, workloads::Workload &View);
};

/// The dispatch row for \p T.
const TechniqueVtable &techniqueVtable(policy::Technique T);

/// ORs policy::techniqueBit for every technique \p W supports: barrier
/// always; DOMORE per Table 5.1's applicability column; the duplicated
/// scheduler additionally needs a duplicable prologue (§3.4); SPECCROSS
/// needs its applicability column and — when a prologue exists — §4.3's
/// duplicability requirement.
std::uint32_t applicabilityMask(const workloads::Workload &W);

/// Everything the adaptive run measured beyond the ExecResult: the decision
/// log, the switch log, and the itemized policy-layer overhead.
struct AdaptiveStats {
  std::vector<telemetry::PolicyDecisionRecord> Decisions;
  std::vector<telemetry::SwitchEventRecord> Switches;
  std::uint32_t Windows = 0;
  /// Sum of the windows' engine execution time (excludes the policy layer).
  double ExecSeconds = 0.0;
  /// Time spent inside PolicyEngine::initial()/observe().
  std::uint64_t DecisionNanos = 0;
  /// Time spent on switch-boundary teardown/setup bookkeeping.
  std::uint64_t TeardownNanos = 0;
  /// Plan provenance of this run: loaded / profiled / cold (DESIGN.md §13).
  telemetry::PlanRecord Plan;
};

/// Optional plan wiring for one adaptive run. Default-constructed options
/// reproduce the historical behavior exactly (cold start, no profiling).
struct AdaptiveRunOptions {
  /// Warm-start from this plan: the policy engine is seeded before its
  /// first decision, and the plan's SpecDistance / MaxBatchHint apply to
  /// the window runners. The plan must outlive the run.
  const plan::RegionPlan *Plan = nullptr;
  /// Provenance of \c Plan for reports/JSON: "file" | "dir" | "none".
  const char *PlanSource = "none";
  /// Resolved path \c Plan was loaded from ("" when none).
  std::string PlanPath;
  /// Non-empty: this is a profiling run — prepend the calibration sweep and
  /// write <ProfileDir>/<region>.plan.json (an unwritable directory exits 2,
  /// like every CIP_* misconfiguration).
  std::string ProfileDir;
  /// Non-null: also (or instead) return the emitted plan in-memory — the
  /// fuzzer profiles without touching the filesystem.
  plan::RegionPlan *PlanOut = nullptr;
};

/// Runs \p W end to end under the adaptive executor with \p NumThreads
/// total threads per window (same thread budget every fixed strategy gets).
/// The policy engine decides per \c Cfg.WindowEpochs-sized window; the
/// result's Seconds includes the measured decision/teardown overhead and
/// the Checksum is the workload's final digest (bit-identical to every
/// other executor — the tests enforce it).
ExecResult runAdaptive(workloads::Workload &W, unsigned NumThreads,
                       const policy::PolicyConfig &Cfg,
                       AdaptiveStats *StatsOut = nullptr,
                       const AdaptiveRunOptions &Opts = {});

/// The CIP_POLICY / CIP_PROFILE / CIP_PLAN hook: when the environment
/// selects a policy (CIP_POLICY=fixed:<tech>|threshold|bandit, with
/// CIP_POLICY_WINDOW and CIP_POLICY_SEED refining it), requests a profiling
/// run (CIP_PROFILE=<dir>), or supplies a plan (CIP_PLAN=<path|dir>), runs
/// \p W under the adaptive executor and returns true; otherwise returns
/// false without touching \p Out. CIP_PROFILE takes precedence over
/// CIP_PLAN (a calibration run must not be steered by a stale plan);
/// CIP_PROFILE / CIP_PLAN without CIP_POLICY run under the default
/// threshold policy. Callers with a fixed-strategy default (examples,
/// drivers, re-registered test configs) consult this first, so setting any
/// of the three reroutes them through the policy engine without a rebuild.
/// Malformed values exit 2.
bool runAdaptiveFromEnv(workloads::Workload &W, unsigned NumThreads,
                        ExecResult &Out, AdaptiveStats *StatsOut = nullptr);

} // namespace harness
} // namespace cip

#endif // CIP_HARNESS_ADAPTIVE_H

//===- speccross/SpecCrossRuntime.h - Speculative barrier engine -*- C++ -*-=//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SPECCROSS runtime system (dissertation Ch. 4): software-only
/// speculative barriers. A region of consecutive parallel loop invocations
/// (*epochs*) executes with no barrier between invocations; every worker
/// carries a packed (epoch, task) clock, every task logs an access
/// signature, and a dedicated checker thread compares each task's signature
/// only against overlapping tasks from strictly *earlier* epochs — tasks in
/// the same epoch are independent by construction, which is SPECCROSS's key
/// overhead advantage over TM-style speculation (§4.1.2). Misspeculation
/// rolls the region back to the last checkpoint and re-executes the damaged
/// epochs with non-speculative barriers.
///
/// The runtime interface mirrors Table 4.1: one region description plays the
/// role of the inserted init/enter_barrier/enter_task/spec_access/exit_task/
/// send_end_token calls, and \c SpecMode selects among profiling,
/// speculation, and non-speculative execution exactly as the paper's MODE
/// environment variable does.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SPECCROSS_SPECCROSSRUNTIME_H
#define CIP_SPECCROSS_SPECCROSSRUNTIME_H

#include "speccross/Checkpoint.h"
#include "speccross/Signature.h"
#include "support/Compiler.h"
#include "telemetry/Counters.h"
#include "telemetry/Histogram.h"
#include "telemetry/RunReport.h"

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace cip {
namespace speccross {

/// Maximum worker thread count the packed snapshot in a checking request can
/// describe. 24 workers (the paper's machine) fit comfortably.
inline constexpr std::uint32_t MaxWorkers = 32;

/// Description of a speculative region: the artifacts the SPECCROSS compiler
/// (src/transform, Alg. 5) inserts into a parallelized loop nest.
struct SpecRegion {
  /// Number of epochs (inner-loop invocations separated by barriers in the
  /// baseline parallelization).
  std::uint32_t NumEpochs = 0;

  /// Number of tasks in epoch \p Epoch. Must be pure: the runtime calls it
  /// from several threads.
  std::function<std::size_t(std::uint32_t Epoch)> NumTasks;

  /// Executes task \p Task of epoch \p Epoch. Tasks within one epoch must be
  /// mutually independent (the inner loop was DOALL/LOCALWRITE
  /// parallelizable); dependences *across* epochs are what SPECCROSS
  /// speculates on.
  std::function<void(std::uint32_t Epoch, std::size_t Task)> RunTask;

  /// Appends the abstract addresses task (\p Epoch, \p Task) accessed; this
  /// stands in for the spec_access instrumentation the compiler inserts on
  /// every cross-invocation-dependent load/store.
  std::function<void(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs)>
      TaskAddresses;

  /// Optional sequential code between invocations, duplicated onto every
  /// worker (§4.3 requires it to be privatizable/duplicable). Called once
  /// per worker per epoch, before that epoch's tasks.
  std::function<void(std::uint32_t Epoch, std::uint32_t Tid)> EpochPrologue;

  /// Mutable state of the region, for checkpoint/restore. Must cover every
  /// buffer tasks can write.
  CheckpointRegistry *Checkpoints = nullptr;
};

/// Execution mode, mirroring the paper's MODE environment variable.
enum class SpecMode { Speculation, NonSpeculative, Profiling };

/// Configuration of one SPECCROSS execution.
struct SpecConfig {
  std::uint32_t NumWorkers = 2;
  SignatureScheme Scheme = SignatureScheme::Range;

  /// Checkpoint every this many epochs (the paper defaults to every 1000th
  /// speculative barrier; Fig 5.3 sweeps it).
  std::uint32_t CheckpointIntervalEpochs = 1000;

  /// Maximum lead, in *global task numbers*, a worker may hold over the
  /// slowest worker — the "speculative range" fed by profiling (§4.4). The
  /// default is unthrottled.
  std::uint64_t SpecDistance = std::numeric_limits<std::uint64_t>::max();

  /// Maximum lead in *epochs* over the slowest unfinished worker, applied
  /// even when SpecDistance is unthrottled. On the paper's 24 real cores
  /// workers run near lockstep, so pure speculation is cheap; on an
  /// oversubscribed machine a descheduled worker lets the leader run
  /// arbitrarily far ahead, inflating the checker's comparison ranges
  /// quadratically. This cap bounds them; it never reorders anything a
  /// conflict-free profile allows.
  std::uint32_t MaxEpochLead = 4;

  /// Deterministic fault injection: force a misspeculation the first time
  /// the checker sees a request from this epoch (Fig 5.3's "with
  /// misspeculation" runs). Disabled when >= NumEpochs.
  std::uint32_t InjectMisspecAtEpoch =
      std::numeric_limits<std::uint32_t>::max();

  /// Abort speculation if a single speculative round runs longer than this
  /// (the paper's third misspeculation trigger — a user-defined timeout
  /// guarding against speculatively corrupted loop bounds). 0 disables.
  double TimeoutSeconds = 0.0;

  /// Request-queue capacity per worker.
  std::size_t QueueCapacity = 4096;

  /// TM-style validation (Fig 4.4): compare each task's signature against
  /// overlapping tasks of the *same* epoch too, as transactional-memory
  /// schemes must (Grace/TCC commit ordering). SPECCROSS's default skips
  /// same-epoch pairs because DOALL-planned epochs are independent by
  /// construction — this flag exists to measure exactly that advantage.
  bool TmStyleValidation = false;

  /// Batched signature checking (DESIGN.md §14): the checker scans each
  /// compared epoch log with the SoA batch-overlap kernels instead of the
  /// scalar one-signature-at-a-time loop. Semantics are identical — same
  /// first overlapping pair, same comparison count — only throughput
  /// differs. The CIP_SIMD environment variable (0 = scalar, 1 = batched),
  /// when set, overrides this for every run; a malformed value exits 2.
  bool BatchCheck = true;

  /// Checker lanes (DESIGN.md §15): 0 or 1 keeps the checker scanning each
  /// request's comparison spans serially in its own thread; N > 1 leases N
  /// dedicated thread-pool lanes per round and fans a request's spans
  /// across them, committing the per-span results back in epoch order —
  /// same abort decision, same comparison and batch accounting, same
  /// forensics record as serial for every lane count. The CIP_CHECK_LANES
  /// environment variable (a positive integer <= 64), when set, overrides
  /// this for every run; a malformed value exits 2.
  std::uint32_t CheckLanes = 0;
};

/// Execution statistics (Table 5.3 columns plus recovery accounting).
struct SpecStats {
  std::uint64_t Epochs = 0;
  std::uint64_t Tasks = 0;
  /// Checking requests processed by the checker thread.
  std::uint64_t CheckRequests = 0;
  /// Pairwise signature comparisons the checker performed. Identical in
  /// batched and scalar modes (the batch kernels count the signatures a
  /// first-hit scan would have visited) — the property tests enforce it.
  std::uint64_t SignatureComparisons = 0;
  /// Batch-kernel invocations: one per (request, compared epoch) span the
  /// checker scanned with batchFirstOverlap. 0 when batching is off.
  std::uint64_t BatchChecks = 0;
  /// Whether this run checked with the batched kernels (config + CIP_SIMD
  /// override, resolved once at engine construction).
  bool BatchCheckEnabled = false;
  /// Checker lanes this run scanned with (config + CIP_CHECK_LANES
  /// override, resolved once at engine construction; 1 = the serial
  /// in-thread scan).
  std::uint32_t CheckLanes = 1;
  std::uint64_t Misspeculations = 0;
  std::uint64_t CheckpointsTaken = 0;
  /// Epochs re-executed non-speculatively after rollbacks.
  std::uint64_t ReexecutedEpochs = 0;
  double TotalSeconds = 0.0;
  double CheckpointSeconds = 0.0;
  double RecoverySeconds = 0.0;

  /// Checkpoint substrate that executed this run ("eager", "pagedirty",
  /// "softdirty" — a static string from memory::substrateName); empty when
  /// the region ran without a registry. An \c auto selection reports what
  /// it resolved to by the end of the run.
  const char *CkptSubstrate = "";

  /// Aggregated telemetry counters for the region (throttle/barrier wait
  /// attribution, checker activity, checkpoint volume). All-zero when the
  /// library was built with CIP_TELEMETRY=0; otherwise the checker and
  /// checkpoint counters agree with the legacy aggregate fields above (the
  /// tests enforce it).
  telemetry::CounterTotals Telemetry;

  /// Forensics for every misspeculation: the conflicting (epoch, tid, task)
  /// pair, the overlapping signature bucket, whether an exact range recheck
  /// confirms the conflict (false = signature false positive), and the
  /// speculative work the rollback discarded. One record per entry of
  /// \c Misspeculations. Empty with CIP_TELEMETRY=0.
  std::vector<telemetry::AbortRecord> Aborts;

  /// Distribution of individual worker waits (throttle + queue
  /// backpressure) — the per-wait view behind the WorkerWaitNs counter
  /// total. Empty with CIP_TELEMETRY=0.
  telemetry::HistogramData WorkerWait;

  /// Distribution of per-request checking latency on the checker thread —
  /// the signal the adaptive policy layer reads as checking-request
  /// pressure. Empty with CIP_TELEMETRY=0.
  telemetry::HistogramData CheckLatency;

  /// Distribution of batch-kernel span widths: pairwise comparisons one
  /// batchFirstOverlap call covered (values are pair counts, not
  /// nanoseconds; they sum to SignatureComparisons when batching is on).
  /// Empty with CIP_TELEMETRY=0 or when batching is off.
  telemetry::HistogramData BatchWidth;
};

/// Result of a profiling run (§4.4): the minimum cross-epoch dependence
/// distance, measured in global task numbers.
struct ProfileResult {
  /// Distance between the closest pair of conflicting tasks from different
  /// epochs; max() when no cross-epoch conflict manifested (the paper's
  /// "*" entries in Table 5.3).
  std::uint64_t MinDependenceDistance =
      std::numeric_limits<std::uint64_t>::max();
  std::uint64_t CrossEpochConflicts = 0;
  std::uint64_t Epochs = 0;
  std::uint64_t Tasks = 0;

  bool conflictFree() const {
    return MinDependenceDistance == std::numeric_limits<std::uint64_t>::max();
  }

  /// The speculative range to configure from this profile. The runtime's
  /// throttle compares against each worker's last *started* task, which may
  /// still be executing, so guaranteeing that a conflicting pair at the
  /// profiled distance never overlaps requires two tasks of slack:
  /// D = MinDependenceDistance - 2. Unthrottled if conflict-free.
  std::uint64_t recommendedSpecDistance(std::uint32_t NumWorkers) const {
    if (conflictFree())
      return std::numeric_limits<std::uint64_t>::max();
    const std::uint64_t D =
        MinDependenceDistance >= 2 ? MinDependenceDistance - 2 : 0;
    // Permit at least one task of lead per worker or the region
    // serializes; when that floor exceeds the safe range, occasional
    // rollbacks are accepted (the paper's design point for inputs with
    // very close conflicts).
    return D < NumWorkers ? NumWorkers : D;
  }
};

/// Executes \p Region speculatively (or per \p Mode) with \p Config.
/// Blocking; returns execution statistics. Requires
/// \c Region.Checkpoints when speculating.
SpecStats runSpecCross(const SpecRegion &Region, const SpecConfig &Config,
                       SpecMode Mode = SpecMode::Speculation);

/// Profiles \p Region sequentially, recording the exact minimum cross-epoch
/// dependence distance at address granularity. Deterministic; corresponds
/// to the paper's profiling run on the train input. \p NumWorkers models
/// the static task-to-thread assignment: the paper's profiler compares a
/// task's signature only against tasks *other threads* executed (§4.4), so
/// a dependence whose endpoints land on the same worker (e.g., stencil
/// dependences aligned on the task index) is respected by program order and
/// is not a conflict — this is what produces the "*" rows of Table 5.3.
/// Pass 0 for a thread-oblivious (strictly conservative) profile.
ProfileResult profileRegion(const SpecRegion &Region,
                            std::uint32_t NumWorkers = 0);

} // namespace speccross
} // namespace cip

#endif // CIP_SPECCROSS_SPECCROSSRUNTIME_H

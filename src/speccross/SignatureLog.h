//===- speccross/SignatureLog.h - SoA epoch signature logs -----*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structure-of-arrays storage for one (worker, epoch) signature log, plus
/// the batched overlap kernels behind the SPECCROSS checker's fast path
/// (DESIGN.md §14). The serial checker walks an epoch log one signature at
/// a time through \c Sig::overlaps — a pointer-chasing loop whose body is a
/// handful of compares. \c SignatureLog keeps each scheme's comparison keys
/// in contiguous per-field planes so \c batchFirstOverlap can test a whole
/// chunk of candidates per trip with straight-line vector code:
///
///  * Range: Min and Max planes; overlap is two unsigned compares plus an
///    empty-slot exclusion, reduced over 4 slots per AVX2 step.
///  * Bloom: plane-major filter words (plane w holds word w of every slot);
///    overlap is a wide AND-then-OR reduction across the planes.
///  * SmallSet: signatures stay AoS for the exact pairwise confirm, but a
///    Min/Max plane pair prefilters chunks so the expensive exact test only
///    runs on range-intersecting candidates.
///
/// Every kernel is a *first-hit scan*: it returns the smallest index in
/// [Begin, End) whose signature overlaps, or \c npos — exactly what the
/// scalar loop computes, so checker semantics (which pair aborts, the
/// forensics record, the comparison count) are bit-identical in both modes.
/// The scalar \c firstOverlap stays as the forensics-friendly fallback and
/// the differential oracle for the property tests.
///
/// Dispatch: the compile baseline is plain x86-64, so the AVX2 kernels are
/// compiled per-function with a target attribute and selected at runtime
/// via a cached cpuid probe (\c detail::avx2Available). The generic chunked
/// kernels are plain autovectorizable C++ and serve every other machine.
/// \c CIP_SIMD=0 disables batching entirely (the checker then runs the
/// scalar scan); see \c detail::batchCheckFromEnv.
///
/// Concurrency contract (unchanged from the AoS logs): logs are pre-sized
/// before workers start and never reallocate; worker w writes slot K via
/// \c set and publishes it with its subsequent clock/Done release store;
/// the checker only scans epochs the publishing clocks already cover.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SPECCROSS_SIGNATURELOG_H
#define CIP_SPECCROSS_SIGNATURELOG_H

#include "speccross/Signature.h"
#include "support/Compiler.h"

#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace cip {
namespace speccross {

namespace detail {

/// True when the running CPU supports AVX2 (cached cpuid probe). The wide
/// kernels carry a per-function target("avx2") attribute, so they exist in
/// every build but may only be entered behind this check.
bool avx2Available();

/// Effective batch-check setting: the CIP_SIMD environment variable
/// ("0" = scalar checker, "1" = batched checker), when set, overrides
/// \p Default (SpecConfig::BatchCheck); any other value exits 2.
bool batchCheckFromEnv(bool Default);

} // namespace detail

/// One (worker, epoch) signature log. The primary template is the generic
/// array-of-structures fallback for user-provided signature schemes: its
/// batch kernel is just the scalar scan, so correctness never depends on a
/// scheme-specific specialization existing. The three built-in schemes
/// specialize below with real SoA layouts.
template <typename Sig> class SignatureLog {
public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  void resize(std::size_t N) { Sigs.assign(N, Sig()); }
  std::size_t size() const { return Sigs.size(); }

  void set(std::size_t K, const Sig &S) { Sigs[K] = S; }
  Sig get(std::size_t K) const { return Sigs[K]; }

  bool overlapsAt(const Sig &Mine, std::size_t K) const {
    return Mine.overlaps(Sigs[K]);
  }

  /// Smallest K in [Begin, End) with overlapsAt(Mine, K), else npos.
  std::size_t firstOverlap(const Sig &Mine, std::size_t Begin,
                           std::size_t End) const {
    for (std::size_t K = Begin; K < End; ++K)
      if (Mine.overlaps(Sigs[K]))
        return K;
    return npos;
  }

  std::size_t batchFirstOverlap(const Sig &Mine, std::size_t Begin,
                                std::size_t End) const {
    return firstOverlap(Mine, Begin, End);
  }

private:
  std::vector<Sig> Sigs;
};

/// Range signatures: Min/Max planes. An empty slot keeps the default
/// Min > Max encoding (Min = ~0, Max = 0), so the batch predicate's
/// Mn[K] <= Mx[K] term excludes exactly the slots the scalar
/// RangeSignature::overlaps rejects as empty.
template <> class SignatureLog<RangeSignature> {
public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  void resize(std::size_t N) {
    Mins.assign(N, ~std::uint64_t{0});
    Maxs.assign(N, 0);
  }
  std::size_t size() const { return Mins.size(); }

  void set(std::size_t K, const RangeSignature &S) {
    Mins[K] = S.Min;
    Maxs[K] = S.Max;
  }
  RangeSignature get(std::size_t K) const {
    RangeSignature S;
    S.Min = Mins[K];
    S.Max = Maxs[K];
    return S;
  }

  bool overlapsAt(const RangeSignature &Mine, std::size_t K) const {
    return Mine.overlaps(get(K));
  }

  std::size_t firstOverlap(const RangeSignature &Mine, std::size_t Begin,
                           std::size_t End) const {
    if (Mine.empty())
      return npos;
    const std::uint64_t *Mn = Mins.data();
    const std::uint64_t *Mx = Maxs.data();
    for (std::size_t K = Begin; K < End; ++K)
      if (Mine.Min <= Mx[K] && Mn[K] <= Mine.Max && Mn[K] <= Mx[K])
        return K;
    return npos;
  }

  std::size_t batchFirstOverlap(const RangeSignature &Mine, std::size_t Begin,
                                std::size_t End) const {
    if (Mine.empty())
      return npos;
#if defined(__x86_64__)
    if (detail::avx2Available())
      return firstOverlapAvx2(Mine, Begin, End);
#endif
    const std::uint64_t *Mn = Mins.data();
    const std::uint64_t *Mx = Maxs.data();
    constexpr std::size_t Chunk = 16;
    std::size_t K = Begin;
    // Branchless any-hit accumulation per chunk (autovectorizable); a hit
    // chunk falls through to the scalar scan that pins the first index.
    for (; K + Chunk <= End; K += Chunk) {
      std::uint64_t Any = 0;
      for (std::size_t I = 0; I < Chunk; ++I) {
        const std::size_t J = K + I;
        Any |= static_cast<std::uint64_t>(
            (Mine.Min <= Mx[J]) & (Mn[J] <= Mine.Max) & (Mn[J] <= Mx[J]));
      }
      if (Any)
        break;
    }
    for (; K < End; ++K)
      if (Mine.Min <= Mx[K] && Mn[K] <= Mine.Max && Mn[K] <= Mx[K])
        return K;
    return npos;
  }

private:
#if defined(__x86_64__)
  /// 4 slots per step. _mm256_cmpgt_epi64 is a signed compare, so both
  /// sides are sign-flipped (x ^ 2^63 preserves unsigned order in signed
  /// space). A lane *misses* when the range test fails or the slot is
  /// empty; a not-all-miss group drops to the scalar scan for the first.
  __attribute__((target("avx2"))) std::size_t
  firstOverlapAvx2(const RangeSignature &Mine, std::size_t Begin,
                   std::size_t End) const {
    const std::uint64_t *Mn = Mins.data();
    const std::uint64_t *Mx = Maxs.data();
    const __m256i Flip = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    const __m256i MineMin = _mm256_xor_si256(
        _mm256_set1_epi64x(static_cast<long long>(Mine.Min)), Flip);
    const __m256i MineMax = _mm256_xor_si256(
        _mm256_set1_epi64x(static_cast<long long>(Mine.Max)), Flip);
    std::size_t K = Begin;
    for (; K + 4 <= End; K += 4) {
      const __m256i Lo = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Mn + K)), Flip);
      const __m256i Hi = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Mx + K)), Flip);
      const __m256i A = _mm256_cmpgt_epi64(MineMin, Hi); // Mine.Min > Mx[K]
      const __m256i B = _mm256_cmpgt_epi64(Lo, MineMax); // Mn[K] > Mine.Max
      const __m256i C = _mm256_cmpgt_epi64(Lo, Hi);      // empty slot
      const __m256i Miss = _mm256_or_si256(A, _mm256_or_si256(B, C));
      if (_mm256_movemask_epi8(Miss) != -1)
        break;
    }
    for (; K < End; ++K)
      if (Mine.Min <= Mx[K] && Mn[K] <= Mine.Max && Mn[K] <= Mx[K])
        return K;
    return npos;
  }
#endif

  std::vector<std::uint64_t> Mins;
  std::vector<std::uint64_t> Maxs;
};

/// Bloom signatures: plane-major word storage — plane w is the contiguous
/// run Planes[w*N .. w*N + N), holding filter word w of every slot. Overlap
/// at K is "any plane's word ANDs nonzero against Mine's", which the batch
/// kernel evaluates as an OR-of-ANDs reduction over the planes (OR of ANDs
/// is nonzero iff some individual AND is — the exact scalar predicate).
template <unsigned Words> class SignatureLog<BloomSignatureT<Words>> {
public:
  using Sig = BloomSignatureT<Words>;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  void resize(std::size_t N) {
    Count = N;
    Planes.assign(static_cast<std::size_t>(Words) * N, 0);
  }
  std::size_t size() const { return Count; }

  void set(std::size_t K, const Sig &S) {
    for (unsigned W = 0; W < Words; ++W)
      Planes[W * Count + K] = S.Bits[W];
  }
  Sig get(std::size_t K) const {
    Sig S;
    for (unsigned W = 0; W < Words; ++W)
      S.Bits[W] = Planes[W * Count + K];
    return S;
  }

  bool overlapsAt(const Sig &Mine, std::size_t K) const {
    for (unsigned W = 0; W < Words; ++W)
      if ((Mine.Bits[W] & Planes[W * Count + K]) != 0)
        return true;
    return false;
  }

  std::size_t firstOverlap(const Sig &Mine, std::size_t Begin,
                           std::size_t End) const {
    for (std::size_t K = Begin; K < End; ++K)
      if (overlapsAt(Mine, K))
        return K;
    return npos;
  }

  std::size_t batchFirstOverlap(const Sig &Mine, std::size_t Begin,
                                std::size_t End) const {
#if defined(__x86_64__)
    if (detail::avx2Available())
      return firstOverlapAvx2(Mine, Begin, End);
#endif
    const std::uint64_t *P = Planes.data();
    constexpr std::size_t Chunk = 16;
    std::size_t K = Begin;
    for (; K + Chunk <= End; K += Chunk) {
      std::uint64_t Any = 0;
      for (std::size_t I = 0; I < Chunk; ++I) {
        std::uint64_t Acc = 0;
        for (unsigned W = 0; W < Words; ++W)
          Acc |= Mine.Bits[W] & P[W * Count + K + I];
        Any |= Acc;
      }
      if (Any)
        break;
    }
    for (; K < End; ++K)
      if (overlapsAt(Mine, K))
        return K;
    return npos;
  }

private:
#if defined(__x86_64__)
  __attribute__((target("avx2"))) std::size_t
  firstOverlapAvx2(const Sig &Mine, std::size_t Begin, std::size_t End) const {
    const std::uint64_t *P = Planes.data();
    __m256i MineW[Words];
    for (unsigned W = 0; W < Words; ++W)
      MineW[W] = _mm256_set1_epi64x(static_cast<long long>(Mine.Bits[W]));
    std::size_t K = Begin;
    for (; K + 4 <= End; K += 4) {
      __m256i Acc = _mm256_setzero_si256();
      for (unsigned W = 0; W < Words; ++W) {
        const __m256i Pk = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(P + W * Count + K));
        Acc = _mm256_or_si256(Acc, _mm256_and_si256(MineW[W], Pk));
      }
      const __m256i Zero = _mm256_cmpeq_epi64(Acc, _mm256_setzero_si256());
      if (_mm256_movemask_epi8(Zero) != -1)
        break; // some lane's reduction is nonzero: scalar scan pins it
    }
    for (; K < End; ++K)
      if (overlapsAt(Mine, K))
        return K;
    return npos;
  }
#endif

  std::size_t Count = 0;
  std::vector<std::uint64_t> Planes;
};

/// Small-set signatures: the exact pairwise confirm needs the full address
/// array, so signatures stay AoS — but a Min/Max plane pair mirrors each
/// slot's range so chunks can be *prefiltered* with the vector range test.
/// Slots failing the prefilter are exactly those the scalar overlaps
/// rejects through its empty / ranges-disjoint early-outs; surviving
/// candidates are decided by the real scalar overlaps (which handles the
/// Overflowed degradation and the exact pairwise compare). A chunk whose
/// candidates all fail the confirm continues to the next chunk — it must
/// not fall back to a scalar scan of the remainder, or the work saved by
/// the prefilter would vanish on false-candidate-heavy logs.
template <unsigned Cap> class SignatureLog<SmallSetSignatureT<Cap>> {
public:
  using Sig = SmallSetSignatureT<Cap>;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  void resize(std::size_t N) {
    Sigs.assign(N, Sig());
    Mins.assign(N, ~std::uint64_t{0});
    Maxs.assign(N, 0);
  }
  std::size_t size() const { return Sigs.size(); }

  void set(std::size_t K, const Sig &S) {
    Sigs[K] = S;
    Mins[K] = S.Min;
    Maxs[K] = S.Max;
  }
  Sig get(std::size_t K) const { return Sigs[K]; }

  bool overlapsAt(const Sig &Mine, std::size_t K) const {
    return Mine.overlaps(Sigs[K]);
  }

  std::size_t firstOverlap(const Sig &Mine, std::size_t Begin,
                           std::size_t End) const {
    for (std::size_t K = Begin; K < End; ++K)
      if (Mine.overlaps(Sigs[K]))
        return K;
    return npos;
  }

  std::size_t batchFirstOverlap(const Sig &Mine, std::size_t Begin,
                                std::size_t End) const {
    if (Mine.empty())
      return npos;
#if defined(__x86_64__)
    if (detail::avx2Available())
      return firstOverlapAvx2(Mine, Begin, End);
#endif
    const std::uint64_t *Mn = Mins.data();
    const std::uint64_t *Mx = Maxs.data();
    constexpr std::size_t Chunk = 16;
    std::size_t K = Begin;
    for (; K + Chunk <= End; K += Chunk) {
      std::uint64_t Any = 0;
      for (std::size_t I = 0; I < Chunk; ++I) {
        const std::size_t J = K + I;
        Any |= static_cast<std::uint64_t>(
            (Mine.Min <= Mx[J]) & (Mn[J] <= Mine.Max) & (Mn[J] <= Mx[J]));
      }
      if (!Any)
        continue;
      for (std::size_t I = 0; I < Chunk; ++I)
        if (Mine.overlaps(Sigs[K + I]))
          return K + I;
    }
    for (; K < End; ++K)
      if (Mine.overlaps(Sigs[K]))
        return K;
    return npos;
  }

private:
#if defined(__x86_64__)
  __attribute__((target("avx2"))) std::size_t
  firstOverlapAvx2(const Sig &Mine, std::size_t Begin, std::size_t End) const {
    const std::uint64_t *Mn = Mins.data();
    const std::uint64_t *Mx = Maxs.data();
    const __m256i Flip = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    const __m256i MineMin = _mm256_xor_si256(
        _mm256_set1_epi64x(static_cast<long long>(Mine.Min)), Flip);
    const __m256i MineMax = _mm256_xor_si256(
        _mm256_set1_epi64x(static_cast<long long>(Mine.Max)), Flip);
    std::size_t K = Begin;
    for (; K + 4 <= End; K += 4) {
      const __m256i Lo = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Mn + K)), Flip);
      const __m256i Hi = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Mx + K)), Flip);
      const __m256i A = _mm256_cmpgt_epi64(MineMin, Hi);
      const __m256i B = _mm256_cmpgt_epi64(Lo, MineMax);
      const __m256i C = _mm256_cmpgt_epi64(Lo, Hi);
      const __m256i Miss = _mm256_or_si256(A, _mm256_or_si256(B, C));
      if (_mm256_movemask_epi8(Miss) == -1)
        continue;
      for (std::size_t I = 0; I < 4; ++I)
        if (Mine.overlaps(Sigs[K + I]))
          return K + I;
    }
    for (; K < End; ++K)
      if (Mine.overlaps(Sigs[K]))
        return K;
    return npos;
  }
#endif

  std::vector<Sig> Sigs;
  std::vector<std::uint64_t> Mins;
  std::vector<std::uint64_t> Maxs;
};

} // namespace speccross
} // namespace cip

#endif // CIP_SPECCROSS_SIGNATURELOG_H

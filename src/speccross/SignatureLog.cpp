//===- speccross/SignatureLog.cpp - SIMD dispatch & knob parsing ---------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "speccross/SignatureLog.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace cip;
using namespace cip::speccross;

bool detail::avx2Available() {
#if defined(__x86_64__)
  static const bool Avail = __builtin_cpu_supports("avx2");
  return Avail;
#else
  return false;
#endif
}

bool detail::batchCheckFromEnv(bool Default) {
  const char *S = std::getenv("CIP_SIMD");
  if (!S || !*S)
    return Default;
  if (std::strcmp(S, "0") == 0)
    return false;
  if (std::strcmp(S, "1") == 0)
    return true;
  std::fprintf(stderr,
               "error: CIP_SIMD='%s' is invalid: expected 0 (scalar "
               "signature checking) or 1 (batched)\n",
               S);
  // _Exit, not exit: engines may construct while other threads are live,
  // and running atexit/destructors from here trips std::terminate. A
  // config error wants immediate, clean-status death.
  std::_Exit(2);
}

//===- speccross/Checkpoint.cpp - Cooperative memory checkpointing -------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "speccross/Checkpoint.h"

#include "support/Chaos.h"

#include <cstring>

using namespace cip;
using namespace cip::speccross;

void CheckpointRegistry::registerRegion(void *Ptr, std::size_t Bytes) {
  assert(Ptr != nullptr && "cannot register a null region");
  assert(Bytes > 0 && "cannot register an empty region");
  Regions.push_back(
      Region{static_cast<unsigned char *>(Ptr), Bytes, TotalBytes});
  TotalBytes += Bytes;
  SnapshotValid = false;
}

void CheckpointRegistry::clear() {
  Regions.clear();
  SnapshotStorage.clear();
  TotalBytes = 0;
  SnapshotValid = false;
}

void CheckpointRegistry::takeSnapshot() {
  CIP_CHAOS_POINT(Snapshot);
  SnapshotStorage.resize(TotalBytes);
  for (const Region &R : Regions)
    std::memcpy(SnapshotStorage.data() + R.SnapshotOffset, R.Ptr, R.Bytes);
  SnapshotValid = true;
  ++Snapshots;
}

void CheckpointRegistry::restoreSnapshot() {
  CIP_CHECK(SnapshotValid, "restore without a snapshot");
  CIP_CHAOS_POINT(Restore);
  for (const Region &R : Regions)
    std::memcpy(R.Ptr, SnapshotStorage.data() + R.SnapshotOffset, R.Bytes);
}

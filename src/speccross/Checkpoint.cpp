//===- speccross/Checkpoint.cpp - Cooperative memory checkpointing -------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "speccross/Checkpoint.h"

#include "support/Chaos.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace cip;
using namespace cip::speccross;

CheckpointRegistry::CheckpointRegistry(memory::SubstrateKind Default) {
  memory::SubstrateKind Kind = Default;
  EnvPinned = memory::substrateFromEnv(Kind);
  if (Kind == memory::SubstrateKind::Auto) {
    // Auto starts on the page-tracking substrate (remapped under
    // sanitizers) and resolves after the first measured interval.
    AutoPending = true;
    Kind = memory::SubstrateKind::PageDirty;
  }
  Substrate = memory::createSubstrate(Kind);
}

void CheckpointRegistry::registerRegion(void *Ptr, std::size_t Bytes) {
  if (Ptr == nullptr || Bytes == 0) {
    std::fprintf(stderr,
                 "error: CheckpointRegistry::registerRegion(%p, %zu) is "
                 "invalid: a region must cover at least one byte\n",
                 Ptr, Bytes);
    // _Exit, not exit: registration can run on a pool lane while other
    // threads are live; atexit/destructors from here trip std::terminate.
    std::_Exit(2);
  }
  auto *Begin = static_cast<unsigned char *>(Ptr);
  const unsigned char *End = Begin + Bytes;
  for (std::size_t I = 0; I < Regions.size(); ++I) {
    const memory::RegionDesc &R = Regions[I];
    if (Begin < R.Ptr + R.Bytes && R.Ptr < End) {
      std::fprintf(stderr,
                   "error: CheckpointRegistry::registerRegion(%p, %zu) "
                   "overlaps region #%zu (%p, %zu): each mutable byte must "
                   "be registered exactly once or snapshots would copy it "
                   "twice\n",
                   Ptr, Bytes, I, static_cast<void *>(R.Ptr), R.Bytes);
      std::_Exit(2);
    }
  }
  Regions.push_back(memory::RegionDesc{Begin, Bytes});
  TotalBytes += Bytes;
  SnapshotValid = false;
  Substrate->setRegions(Regions);
}

void CheckpointRegistry::clear() {
  Regions.clear();
  TotalBytes = 0;
  SnapshotValid = false;
  Substrate->setRegions(Regions);
}

void CheckpointRegistry::setSubstrate(memory::SubstrateKind K) {
  if (EnvPinned)
    return; // env wins over programmatic selection, like every CIP_* knob
  if (!AutoPending && K != memory::SubstrateKind::Auto &&
      memory::remapForBuild(K) == Substrate->kind())
    return;
  AutoPending = false;
  if (K == memory::SubstrateKind::Auto) {
    AutoPending = true;
    AutoSnapshots = 0;
    K = memory::SubstrateKind::PageDirty;
  }
  Substrate = memory::createSubstrate(K);
  Substrate->setRegions(Regions);
  SnapshotValid = false;
}

void CheckpointRegistry::resolveAuto() {
  // Called right after the second snapshot: lastDirtyPages() is the first
  // interval's measured write set. A dense writer pays page-tracking
  // overhead for no copy savings — switch it to eager; sparse writers stay.
  AutoPending = false;
  const std::uint64_t Tracked = Substrate->trackedPages();
  if (Tracked == 0)
    return;
  const double Ratio =
      static_cast<double>(Substrate->lastDirtyPages()) /
      static_cast<double>(Tracked);
  if (Ratio <= AutoDenseRatio)
    return;
  Substrate = memory::createSubstrate(memory::SubstrateKind::Eager);
  Substrate->setRegions(Regions);
  // Re-capture with the new substrate so the snapshot stays restorable;
  // workers are quiescent at checkpoint rounds, so the image matches the
  // snapshot just taken. Not counted: the protocol took one checkpoint.
  Substrate->takeSnapshot();
}

void CheckpointRegistry::takeSnapshot() {
  CIP_CHAOS_POINT(Snapshot);
  Substrate->takeSnapshot();
  CIP_CHAOS_POINT(SnapshotCommit);
  SnapshotValid = true;
  ++Snapshots;
  // The second auto snapshot is the first with interval-dirty accounting.
  if (AutoPending && ++AutoSnapshots >= 2)
    resolveAuto();
}

void CheckpointRegistry::restoreSnapshot() {
  CIP_CHECK(SnapshotValid, "restore without a snapshot");
  CIP_CHAOS_POINT(Restore);
  Substrate->restoreSnapshot();
}

//===- speccross/Signature.h - Memory access signatures --------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Access signatures for SPECCROSS misspeculation detection (dissertation
/// §4.2.1). A signature is an approximate, conservative summary of the
/// addresses a task accessed: signature overlap may report a false conflict
/// (costing a rollback) but never misses a real one (soundness). SPECCROSS
/// exposes signatures as a pluggable policy; two of the paper's schemes are
/// provided:
///  * \c RangeSignature — the paper's default: min/max accessed address.
///    Excellent for clustered accesses (all Table 5.1 benchmarks).
///  * \c BloomSignature — a small Bloom filter; lower false-positive rate
///    for scattered access patterns.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SPECCROSS_SIGNATURE_H
#define CIP_SPECCROSS_SIGNATURE_H

#include "support/Compiler.h"

#include <array>
#include <cstdint>

namespace cip {
namespace speccross {

/// Range-based signature: tracks [Min, Max] of accessed abstract addresses.
struct RangeSignature {
  std::uint64_t Min = ~std::uint64_t{0};
  std::uint64_t Max = 0;

  /// Records an access to \p Addr.
  void add(std::uint64_t Addr) {
    if (Addr < Min)
      Min = Addr;
    if (Addr > Max)
      Max = Addr;
  }

  bool empty() const { return Min > Max; }

  /// Conservative conflict test: true if the two access summaries may share
  /// an address.
  bool overlaps(const RangeSignature &Other) const {
    if (empty() || Other.empty())
      return false;
    return Min <= Other.Max && Other.Min <= Max;
  }

  void clear() { *this = RangeSignature(); }

  static const char *schemeName() { return "range"; }
};

/// Bloom-filter signature with \p Words 64-bit words and two hash probes
/// per address.
template <unsigned Words = 4> struct BloomSignatureT {
  std::array<std::uint64_t, Words> Bits{};

  void add(std::uint64_t Addr) {
    Bits[wordOf(hash1(Addr))] |= bitOf(hash1(Addr));
    Bits[wordOf(hash2(Addr))] |= bitOf(hash2(Addr));
  }

  bool empty() const {
    for (std::uint64_t W : Bits)
      if (W != 0)
        return false;
    return true;
  }

  bool overlaps(const BloomSignatureT &Other) const {
    for (unsigned I = 0; I < Words; ++I)
      if ((Bits[I] & Other.Bits[I]) != 0)
        return true;
    return false;
  }

  void clear() { Bits.fill(0); }

  static const char *schemeName() { return "bloom"; }

private:
  static std::uint64_t hash1(std::uint64_t A) {
    A ^= A >> 33;
    A *= 0xff51afd7ed558ccdULL;
    A ^= A >> 33;
    return A;
  }

  static std::uint64_t hash2(std::uint64_t A) {
    A *= 0x9e3779b97f4a7c15ULL;
    A ^= A >> 29;
    return A;
  }

  static unsigned wordOf(std::uint64_t H) {
    return static_cast<unsigned>(H % Words);
  }

  static std::uint64_t bitOf(std::uint64_t H) {
    return std::uint64_t{1} << ((H >> 8) % 64);
  }
};

using BloomSignature = BloomSignatureT<4>;

/// Exact signature for tasks touching at most \p Cap addresses, degrading
/// to a min/max range on overflow. Zero false positives in the common
/// case, which makes it the right scheme for scattered accesses where the
/// range signature over-approximates and a small Bloom filter's
/// any-shared-bit intersection test false-positives too often. This is an
/// instance of the paper's "users provide their own signature generators"
/// extension point.
template <unsigned Cap = 8> struct SmallSetSignatureT {
  std::array<std::uint64_t, Cap> Addrs{};
  std::uint32_t Count = 0;
  bool Overflowed = false;
  std::uint64_t Min = ~std::uint64_t{0};
  std::uint64_t Max = 0;

  void add(std::uint64_t Addr) {
    if (Addr < Min)
      Min = Addr;
    if (Addr > Max)
      Max = Addr;
    if (Overflowed)
      return;
    for (std::uint32_t I = 0; I < Count; ++I)
      if (Addrs[I] == Addr)
        return;
    if (Count == Cap) {
      Overflowed = true;
      return;
    }
    Addrs[Count++] = Addr;
  }

  bool empty() const { return Min > Max; }

  bool overlaps(const SmallSetSignatureT &Other) const {
    if (empty() || Other.empty())
      return false;
    if (Min > Other.Max || Other.Min > Max)
      return false; // ranges disjoint: exact "no" either way
    if (Overflowed || Other.Overflowed)
      return true; // conservative range answer
    for (std::uint32_t I = 0; I < Count; ++I)
      for (std::uint32_t J = 0; J < Other.Count; ++J)
        if (Addrs[I] == Other.Addrs[J])
          return true;
    return false;
  }

  void clear() { *this = SmallSetSignatureT(); }

  static const char *schemeName() { return "small-set"; }
};

using SmallSetSignature = SmallSetSignatureT<8>;

/// Signature scheme selector. Range is the paper's default and suits
/// clustered access patterns; Bloom and the exact small-set scheme suit
/// scattered ones (§4.2.1).
enum class SignatureScheme { Range, Bloom, SmallSet };

/// \name overlapHint
/// Where, within two overlapping signatures, the conflict sits — the
/// "signature bucket" of a misspeculation's forensics record. Best-effort
/// and scheme-specific: the first potentially-shared address for range and
/// small-set signatures, the first overlapping filter-word index for Bloom
/// filters. Only meaningful when overlaps(A, B) is true.
/// @{
inline std::uint64_t overlapHint(const RangeSignature &A,
                                 const RangeSignature &B) {
  return A.Min > B.Min ? A.Min : B.Min; // start of the range intersection
}

template <unsigned Words>
std::uint64_t overlapHint(const BloomSignatureT<Words> &A,
                          const BloomSignatureT<Words> &B) {
  for (unsigned I = 0; I < Words; ++I)
    if ((A.Bits[I] & B.Bits[I]) != 0)
      return I;
  return 0;
}

template <unsigned Cap>
std::uint64_t overlapHint(const SmallSetSignatureT<Cap> &A,
                          const SmallSetSignatureT<Cap> &B) {
  if (!A.Overflowed && !B.Overflowed) {
    for (std::uint32_t I = 0; I < A.Count; ++I)
      for (std::uint32_t J = 0; J < B.Count; ++J)
        if (A.Addrs[I] == B.Addrs[J])
          return A.Addrs[I]; // exact shared address
  }
  return A.Min > B.Min ? A.Min : B.Min;
}
/// @}

} // namespace speccross
} // namespace cip

#endif // CIP_SPECCROSS_SIGNATURE_H

//===- speccross/Checkpoint.h - Cooperative memory checkpointing -*- C++ -*-=//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpoint/restore of the speculative region's mutable state
/// (dissertation §4.2.2). The paper checkpoints by forking the whole process
/// and recovering with kill/longjmp; forking from a multithreaded C++
/// process is a portability minefield, so this reproduction substitutes
/// in-process substrates with the same observable protocol (DESIGN.md §2):
/// workloads *register* every mutable buffer the speculative region can
/// write, and a pluggable substrate (src/memory, DESIGN.md §16) captures and
/// restores it. The page-granular substrates (pagedirty, softdirty) recover
/// the paper's COW cost model — checkpoint cost proportional to the pages
/// actually *written* per interval, not to the registered footprint — while
/// eager keeps the original copy-everything behavior.
///
/// CheckpointRegistry is a thin façade: it owns the region list, the
/// snapshot-validity protocol, and the checkpoint count; the substrate owns
/// the copy mechanics. Selection: the strict \c CIP_CKPT environment knob
/// (eager|pagedirty|softdirty|auto — garbage exits 2, env wins over
/// setSubstrate) or setSubstrate(); \c auto starts page-tracking and
/// switches to eager after the first interval if the measured dirty ratio
/// says the region rewrites most of its footprint anyway.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SPECCROSS_CHECKPOINT_H
#define CIP_SPECCROSS_CHECKPOINT_H

#include "memory/CheckpointSubstrate.h"
#include "support/Compiler.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace cip {
namespace speccross {

/// Registry of mutable memory regions plus a one-deep snapshot held by a
/// pluggable checkpoint substrate.
class CheckpointRegistry {
public:
  /// Resolves the substrate from CIP_CKPT when set, else \p Default.
  explicit CheckpointRegistry(
      memory::SubstrateKind Default = memory::SubstrateKind::Eager);

  /// Registers \p Bytes bytes starting at \p Ptr as mutable speculative
  /// state. Call before the region starts executing. Zero-byte, null, and
  /// overlapping registrations are configuration errors: diagnostic on
  /// stderr, exit 2. Registering after takeSnapshot() invalidates the
  /// snapshot; the next takeSnapshot() covers the new region set.
  void registerRegion(void *Ptr, std::size_t Bytes);

  /// Convenience: registers the contents of a vector-like buffer.
  template <typename T> void registerBuffer(std::vector<T> &Buf) {
    if (!Buf.empty())
      registerRegion(Buf.data(), Buf.size() * sizeof(T));
  }

  /// Drops all registered regions and the snapshot.
  void clear();

  /// Captures the registered regions into the substrate's snapshot,
  /// replacing any previous snapshot. Page-tracking substrates copy only
  /// pages written since the previous snapshot.
  void takeSnapshot();

  /// Restores the registered regions to the snapshot. A snapshot must have
  /// been taken.
  void restoreSnapshot();

  bool hasSnapshot() const { return SnapshotValid; }
  std::size_t totalBytes() const { return TotalBytes; }
  std::size_t numRegions() const { return Regions.size(); }

  /// Number of snapshots taken so far (checkpoint count for Fig 5.3).
  std::uint64_t snapshotsTaken() const { return Snapshots; }

  /// Re-selects the substrate. Ignored when CIP_CKPT pinned one (env wins,
  /// matching every other CIP_* knob); drops any existing snapshot
  /// otherwise. This is what plan warm-starts call (plan v4
  /// \c ckpt_substrate hint).
  void setSubstrate(memory::SubstrateKind K);

  /// The substrate executing right now ("eager", "pagedirty", "softdirty" —
  /// auto reports what it resolved to so far).
  const char *substrateName() const { return Substrate->name(); }
  memory::SubstrateKind substrateKind() const { return Substrate->kind(); }

  /// True while an \c auto selection is still measuring its first interval.
  bool autoPending() const { return AutoPending; }

  /// Accounting for the last takeSnapshot(): pages/bytes actually copied,
  /// the page span of all regions, and the PageDirty fault path. Feeds the
  /// dirty_pages / ckpt_bytes_copied counters and the ckpt_fault_ns
  /// histogram in the engine.
  std::uint64_t lastDirtyPages() const { return Substrate->lastDirtyPages(); }
  std::uint64_t lastBytesCopied() const {
    return Substrate->lastBytesCopied();
  }
  std::uint64_t trackedPages() const { return Substrate->trackedPages(); }
  std::uint64_t faultCount() const { return Substrate->faultCount(); }
  void drainFaultNs(std::vector<std::uint64_t> &Out) {
    Substrate->drainFaultNs(Out);
  }

  /// Dirty ratio an \c auto selection switches to eager above: rewriting
  /// most of the footprint every interval makes page tracking pure
  /// overhead.
  static constexpr double AutoDenseRatio = 0.5;

private:
  void resolveAuto();

  std::vector<memory::RegionDesc> Regions;
  std::unique_ptr<memory::CheckpointSubstrate> Substrate;
  std::size_t TotalBytes = 0;
  bool SnapshotValid = false;
  bool AutoPending = false;
  bool EnvPinned = false;
  std::uint64_t Snapshots = 0;
  std::uint64_t AutoSnapshots = 0; ///< snapshots since auto was armed
};

} // namespace speccross
} // namespace cip

#endif // CIP_SPECCROSS_CHECKPOINT_H

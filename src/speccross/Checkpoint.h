//===- speccross/Checkpoint.h - Cooperative memory checkpointing -*- C++ -*-=//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpoint/restore of the speculative region's mutable state
/// (dissertation §4.2.2). The paper checkpoints by forking the whole process
/// and recovering with kill/longjmp; forking from a multithreaded C++
/// process is a portability minefield, so this reproduction substitutes a
/// cooperative scheme with the same observable protocol and cost model:
/// workloads *register* every mutable buffer the speculative region can
/// write; taking a checkpoint copies the registered bytes aside (cost
/// proportional to state size, like fork's eager page-table work plus COW
/// traffic); restoring copies them back (recovery cost proportional to state
/// size plus thread respawn, as measured in Fig 5.3). The substitution is
/// recorded in DESIGN.md §2.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SPECCROSS_CHECKPOINT_H
#define CIP_SPECCROSS_CHECKPOINT_H

#include "support/Compiler.h"

#include <cstdint>
#include <vector>

namespace cip {
namespace speccross {

/// Registry of mutable memory regions plus a one-deep snapshot buffer.
class CheckpointRegistry {
public:
  /// Registers \p Bytes bytes starting at \p Ptr as mutable speculative
  /// state. Call before the region starts executing.
  void registerRegion(void *Ptr, std::size_t Bytes);

  /// Convenience: registers the contents of a vector-like buffer.
  template <typename T> void registerBuffer(std::vector<T> &Buf) {
    if (!Buf.empty())
      registerRegion(Buf.data(), Buf.size() * sizeof(T));
  }

  /// Drops all registered regions and the snapshot.
  void clear();

  /// Copies every registered region into the snapshot buffer, replacing any
  /// previous snapshot.
  void takeSnapshot();

  /// Copies the snapshot back into the registered regions. A snapshot must
  /// have been taken.
  void restoreSnapshot();

  bool hasSnapshot() const { return SnapshotValid; }
  std::size_t totalBytes() const { return TotalBytes; }
  std::size_t numRegions() const { return Regions.size(); }

  /// Number of snapshots taken so far (checkpoint count for Fig 5.3).
  std::uint64_t snapshotsTaken() const { return Snapshots; }

private:
  struct Region {
    unsigned char *Ptr;
    std::size_t Bytes;
    std::size_t SnapshotOffset;
  };

  std::vector<Region> Regions;
  std::vector<unsigned char> SnapshotStorage;
  std::size_t TotalBytes = 0;
  bool SnapshotValid = false;
  std::uint64_t Snapshots = 0;
};

} // namespace speccross
} // namespace cip

#endif // CIP_SPECCROSS_CHECKPOINT_H

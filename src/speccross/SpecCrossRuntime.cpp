//===- speccross/SpecCrossRuntime.cpp - Speculative barrier engine -------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Engine implementation. Execution is organized into *rounds* delimited by
/// checkpoints (the paper's checkpoints "act as non-speculative barriers",
/// §4.2.2). Within a round, workers stream through epochs with no barriers;
/// a checker thread validates signatures asynchronously. On misspeculation
/// the round's memory is restored and the damaged epochs re-execute with
/// real barriers.
///
/// Deadlock-freedom argument: workers never wait on the checker (requests
/// are retried with an abort check; the checker drains queues eagerly into
/// unbounded pending lists), and the checker never blocks — a request whose
/// prerequisite signatures are not yet logged is simply deferred until the
/// lagging worker's published clock passes the request's epoch, which must
/// happen because workers only wait on the speculative-range throttle, and
/// the throttle only ever waits on the *slowest* worker.
///
//===----------------------------------------------------------------------===//

#include "speccross/SpecCrossRuntime.h"

#include "speccross/SignatureLog.h"
#include "support/Backoff.h"
#include "support/Barrier.h"
#include "support/Chaos.h"
#include "support/SPSCQueue.h"
#include "support/ThreadGroup.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/VectorFifo.h"
#include "telemetry/Telemetry.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>

using namespace cip;
using namespace cip::speccross;
using telemetry::Counter;
using telemetry::EventKind;
using telemetry::Hist;

namespace {

/// Packed (epoch, startedLocalTask) clock value.
std::uint64_t packClock(std::uint32_t Epoch, std::uint32_t Task) {
  return (static_cast<std::uint64_t>(Epoch) << 32) | Task;
}
std::uint32_t clockEpoch(std::uint64_t C) {
  return static_cast<std::uint32_t>(C >> 32);
}
std::uint32_t clockTask(std::uint64_t C) {
  return static_cast<std::uint32_t>(C & 0xffffffffu);
}

/// Snapshot slot value meaning "that worker had already finished the whole
/// round when this task began" — nothing of it can run after us.
constexpr std::uint64_t SnapshotDone = ~std::uint64_t{0};

struct alignas(CacheLineBytes) PaddedClock {
  std::atomic<std::uint64_t> Value{0};
};

struct alignas(CacheLineBytes) PaddedFlag {
  std::atomic<bool> Value{false};
};

struct alignas(CacheLineBytes) PaddedCounter {
  std::atomic<std::uint64_t> Value{0};
};

/// Effective checker-lane count: the CIP_CHECK_LANES environment knob
/// (strict: a positive integer <= 64, anything else exits 2) overrides the
/// config; 0/1 means the serial in-thread scan.
std::uint32_t effectiveCheckLanes(const SpecConfig &Config) {
  static const std::uint32_t EnvOverride = [] {
    const char *S = std::getenv("CIP_CHECK_LANES");
    if (!S || !*S)
      return std::uint32_t{0};
    char *End = nullptr;
    const unsigned long long N = std::strtoull(S, &End, 10);
    if (!End || *End != '\0' || N == 0 || N > 64) {
      std::fprintf(stderr,
                   "error: CIP_CHECK_LANES='%s' is invalid: expected a "
                   "positive checker-lane count <= 64 (1 selects the serial "
                   "in-thread scan)\n",
                   S);
      std::_Exit(2);
    }
    return static_cast<std::uint32_t>(N);
  }();
  if (EnvOverride > 0)
    return EnvOverride;
  return Config.CheckLanes > 0 ? Config.CheckLanes : 1;
}

/// A checking request: one per executed task (Fig 4.7).
struct Request {
  std::uint32_t Tid = 0;
  std::uint32_t Epoch = 0;
  std::uint32_t Task = 0; // local ordinal within (Tid, Epoch)
  std::array<std::uint64_t, MaxWorkers> Snapshot{};
};

/// The engine, templated over the signature scheme.
template <typename Sig> class Engine {
public:
  Engine(const SpecRegion &Region, const SpecConfig &Config)
      : Region(Region), Config(Config), W(Config.NumWorkers),
        Batched(detail::batchCheckFromEnv(Config.BatchCheck)),
        Lanes(effectiveCheckLanes(Config)),
        Tel("speccross", Config.NumWorkers + 2) {
    assert(W > 0 && W <= MaxWorkers && "worker count out of range");
    assert(Region.NumTasks && Region.RunTask && Region.TaskAddresses &&
           "incomplete region description");
    if (Tel.tracing()) {
      for (std::uint32_t T = 0; T < W; ++T)
        Tel.nameLane(T, "worker " + std::to_string(T));
      Tel.nameLane(W, "checker");
      Tel.nameLane(W + 1, "control");
    }
    TasksPerEpoch.resize(Region.NumEpochs);
    Prefix.resize(Region.NumEpochs + 1, 0);
    for (std::uint32_t E = 0; E < Region.NumEpochs; ++E) {
      TasksPerEpoch[E] = Region.NumTasks(E);
      Prefix[E + 1] = Prefix[E] + TasksPerEpoch[E];
    }
  }

  SpecStats run(SpecMode Mode) {
    SpecStats Stats;
    Stats.Epochs = Region.NumEpochs;
    Stats.Tasks = Prefix.back();
    Stats.BatchCheckEnabled = Batched;
    Stats.CheckLanes = Lanes;
    const double Begin = static_cast<double>(nowNanos());

    const unsigned Control = W + 1;
    if (Mode == SpecMode::NonSpeculative) {
      runNonSpeculative(0, Region.NumEpochs);
      Stats.TotalSeconds = (static_cast<double>(nowNanos()) - Begin) * 1e-9;
      Stats.Telemetry = Tel.totals();
      Stats.WorkerWait = Tel.histTotals(Hist::WorkerWaitNs);
      Stats.CheckLatency = Tel.histTotals(Hist::CheckNs);
      Tel.finish();
      return Stats;
    }

    assert(Mode == SpecMode::Speculation && "profiling handled by caller");
    assert(Region.Checkpoints && "speculation requires a checkpoint registry");

    std::uint32_t First = 0;
    while (First < Region.NumEpochs) {
      const std::uint32_t End =
          std::min<std::uint64_t>(First + Config.CheckpointIntervalEpochs,
                                  Region.NumEpochs);
      {
        telemetry::TimedScope Scope(Tel, Control, Counter::CheckpointNs,
                                    EventKind::Checkpoint, First);
        Stopwatch Ckpt;
        Ckpt.start();
        Region.Checkpoints->takeSnapshot();
        Ckpt.stop();
        Stats.CheckpointSeconds += Ckpt.elapsedSeconds();
        ++Stats.CheckpointsTaken;
        Tel.add(Control, Counter::CheckpointsTaken);
        // CheckpointBytes keeps the eager cost model (registered footprint
        // per checkpoint); DirtyPages/CkptBytesCopied report what the
        // substrate actually moved, so their gap is the page-granular win.
        Tel.add(Control, Counter::CheckpointBytes,
                Region.Checkpoints->totalBytes());
        Tel.add(Control, Counter::DirtyPages,
                Region.Checkpoints->lastDirtyPages());
        Tel.add(Control, Counter::CkptBytesCopied,
                Region.Checkpoints->lastBytesCopied());
#if CIP_TELEMETRY
        FaultNsScratch.clear();
        Region.Checkpoints->drainFaultNs(FaultNsScratch);
        for (const std::uint64_t Ns : FaultNsScratch)
          Tel.recordHist(Control, Hist::CkptFaultNs, Ns);
#endif
      }
      if (!speculativeRound(First, End, Stats)) {
        Tel.instant(Control, EventKind::Misspec, First, End);
        {
          telemetry::TimedScope Scope(Tel, Control, Counter::RecoveryNs,
                                      EventKind::Rollback, First);
          Stopwatch Rec;
          Rec.start();
          CIP_CHECK(Region.Checkpoints->hasSnapshot(),
                    "rollback requires the round's checkpoint");
          Region.Checkpoints->restoreSnapshot();
          Rec.stop();
          Stats.RecoverySeconds += Rec.elapsedSeconds();
        }
        Tel.begin(Control, EventKind::Reexec, First, End);
        runNonSpeculative(First, End);
        Tel.end(Control, EventKind::Reexec);
        Stats.ReexecutedEpochs += End - First;
        ++Stats.Misspeculations;
        Tel.add(Control, Counter::Misspeculations);
        Tel.add(Control, Counter::EpochsReexecuted, End - First);
      }
      First = End;
    }
    Stats.TotalSeconds = (static_cast<double>(nowNanos()) - Begin) * 1e-9;
    Stats.CkptSubstrate = Region.Checkpoints->substrateName();
    Stats.Telemetry = Tel.totals();
    Stats.Aborts = Tel.aborts();
    Stats.WorkerWait = Tel.histTotals(Hist::WorkerWaitNs);
    Stats.CheckLatency = Tel.histTotals(Hist::CheckNs);
    Stats.BatchWidth = Tel.histTotals(Hist::BatchWidth);
    Tel.finish();
    return Stats;
  }

private:
  std::size_t localTaskCount(std::uint32_t Tid, std::uint32_t Epoch) const {
    const std::size_t N = TasksPerEpoch[Epoch];
    return Tid < N ? (N - Tid - 1) / W + 1 : 0;
  }

  /// Re-execution / baseline path: real barrier between epochs.
  void runNonSpeculative(std::uint32_t First, std::uint32_t End) {
    PthreadBarrier Bar(W);
    runThreads(W, [&](unsigned Tid) {
      for (std::uint32_t E = First; E < End; ++E) {
        {
          telemetry::TimedScope Wait(Tel, Tid, Counter::BarrierWaitNs,
                                     Hist::BarrierWaitNs,
                                     EventKind::BarrierWait, E);
          Bar.wait();
        }
        Tel.begin(Tid, EventKind::Epoch, E);
        telemetry::HistScope EpochScope(Tel, Tid, Hist::EpochNs);
        Tel.add(Tid, Counter::EpochsEntered);
        if (Region.EpochPrologue)
          Region.EpochPrologue(E, Tid);
        const std::size_t N = TasksPerEpoch[E];
        for (std::size_t T = Tid; T < N; T += W) {
          Region.RunTask(E, T);
          Tel.add(Tid, Counter::TasksExecuted);
        }
        Tel.end(Tid, EventKind::Epoch, E);
      }
    });
  }

  /// One speculative round over epochs [First, End). Returns false on
  /// misspeculation (memory is then dirty and must be restored by caller).
  bool speculativeRound(std::uint32_t First, std::uint32_t End,
                        SpecStats &Stats);

  const SpecRegion &Region;
  const SpecConfig &Config;
  const std::uint32_t W;
  /// Effective batch-check setting (Config.BatchCheck + CIP_SIMD override),
  /// resolved once so every round of a run checks the same way.
  const bool Batched;
  /// Effective checker-lane count (Config.CheckLanes + CIP_CHECK_LANES
  /// override), resolved once for the same reason. 1 = serial scan.
  const std::uint32_t Lanes;

  /// Lanes: workers 0..W-1, checker = W, control (checkpoint/rollback) = W+1.
  telemetry::RegionTelemetry Tel;

  std::vector<std::size_t> TasksPerEpoch;
  std::vector<std::uint64_t> Prefix;
  /// Scratch for draining the checkpoint substrate's fault-latency samples
  /// into the telemetry histogram at checkpoint rounds.
  std::vector<std::uint64_t> FaultNsScratch;

  /// Fault injection fires at most once per run().
  bool Injected = false;
};

/// All shared state of one speculative round.
template <typename Sig> struct Round {
  Round(std::uint32_t W, std::uint32_t First, std::uint32_t End,
        std::size_t QueueCapacity)
      : First(First), End(End), Clocks(W), Started(W), Done(W) {
    Logs.resize(W);
    for (std::uint32_t T = 0; T < W; ++T) {
      Logs[T].resize(End - First);
      Queues.push_back(std::make_unique<SPSCQueue<Request>>(QueueCapacity));
    }
  }

  const std::uint32_t First;
  const std::uint32_t End;

  std::vector<PaddedClock> Clocks;
  std::vector<PaddedCounter> Started; // last started global task number + 1
  std::vector<PaddedFlag> Done;
  std::atomic<bool> Abort{false};

  /// Logs[w][e - First]: SoA signature log of worker w's epoch-e tasks,
  /// slot k the k-th local task. Written by w (set), published by w's
  /// subsequent clock/Done store.
  std::vector<std::vector<SignatureLog<Sig>>> Logs;
  std::vector<std::unique_ptr<SPSCQueue<Request>>> Queues;

#if CIP_TELEMETRY
  /// Exact min/max range per task, mirroring Logs, so abort forensics can
  /// recheck a signature overlap exactly and attribute Bloom false
  /// positives. Only maintained in telemetry builds.
  std::vector<std::vector<std::vector<RangeSignature>>> RangeLogs;
#endif
  /// First-abort-wins forensics slot; whoever trips Abort fills AbortInfo.
  std::atomic<bool> AbortRecorded{false};
  telemetry::AbortRecord AbortInfo;
};

template <typename Sig>
bool Engine<Sig>::speculativeRound(std::uint32_t First, std::uint32_t End,
                                   SpecStats &Stats) {
  Round<Sig> R(W, First, End, Config.QueueCapacity);

  // Size each worker's per-epoch signature log up front so workers never
  // allocate while the checker reads.
#if CIP_TELEMETRY
  R.RangeLogs.resize(W);
#endif
  for (std::uint32_t T = 0; T < W; ++T) {
#if CIP_TELEMETRY
    R.RangeLogs[T].resize(End - First);
#endif
    for (std::uint32_t E = First; E < End; ++E) {
      R.Logs[T][E - First].resize(localTaskCount(T, E));
#if CIP_TELEMETRY
      R.RangeLogs[T][E - First].resize(localTaskCount(T, E));
#endif
    }
  }
  for (std::uint32_t T = 0; T < W; ++T)
    R.Started[T].Value.store(Prefix[First], std::memory_order_relaxed);

  const bool WantInjection = !Injected &&
                             Config.InjectMisspecAtEpoch >= First &&
                             Config.InjectMisspecAtEpoch < End;

  std::atomic<std::uint64_t> CheckRequests{0};
  std::atomic<std::uint64_t> Comparisons{0};
  std::atomic<std::uint64_t> BatchChecks{0};
  std::atomic<bool> InjectionFired{false};
  const std::uint64_t TasksBefore = Tel.totals().get(Counter::TasksExecuted);
  const std::uint64_t RoundStartNs = nowNanos();
  const double RoundStart = static_cast<double>(RoundStartNs);

  auto workerBody = [&](std::uint32_t Tid) {
    std::vector<std::uint64_t> Addrs;
    Backoff Throttle, ProduceWait;
    Request Req;
    Req.Tid = Tid;
    // A worker's packed (epoch, task) clock may only move forward; the
    // checker's readiness logic and every snapshot comparison depend on it.
    [[maybe_unused]] std::uint64_t PrevClock = packClock(First, 0);
    for (std::uint32_t E = First; E < End; ++E) {
      // enter_barrier: bump the epoch number; no synchronization.
      CIP_CHECK(packClock(E, 0) >= PrevClock,
                "worker clock must be monotone across epochs");
      CIP_CHAOS_POINT(ClockPublish);
      R.Clocks[Tid].Value.store(packClock(E, 0), std::memory_order_release);
      // Entering epoch E promises that every task this worker will still
      // start is numbered >= Prefix[E]. Publishing that floor matters when
      // the worker owns no task for a stretch of epochs (fewer tasks than
      // workers): leaders would otherwise throttle against its stale
      // watermark from the last epoch it ran in, and a small SpecDistance
      // can then deadlock the whole round.
      if (R.Started[Tid].Value.load(std::memory_order_relaxed) < Prefix[E])
        R.Started[Tid].Value.store(Prefix[E], std::memory_order_release);
      if (R.Abort.load(std::memory_order_acquire))
        break;
      Tel.begin(Tid, EventKind::Epoch, E);
      telemetry::HistScope EpochScope(Tel, Tid, Hist::EpochNs);
      Tel.add(Tid, Counter::EpochsEntered);
      if (Region.EpochPrologue)
        Region.EpochPrologue(E, Tid);
      const std::size_t N = TasksPerEpoch[E];
      std::uint32_t K = 0;
      for (std::size_t T = Tid; T < N; T += W, ++K) {
        const std::uint64_t Global = Prefix[E] + T;
        // Speculative-range throttle (§4.4): never run more than
        // SpecDistance tasks — nor MaxEpochLead epochs — ahead of the
        // slowest unfinished worker.
        auto LeadOk = [&] {
          std::uint64_t MinStarted = std::numeric_limits<std::uint64_t>::max();
          std::uint32_t MinEpoch = std::numeric_limits<std::uint32_t>::max();
          for (std::uint32_t O = 0; O < W; ++O) {
            if (O == Tid || R.Done[O].Value.load(std::memory_order_acquire))
              continue;
            MinStarted = std::min(
                MinStarted, R.Started[O].Value.load(std::memory_order_acquire));
            MinEpoch = std::min(
                MinEpoch,
                clockEpoch(R.Clocks[O].Value.load(std::memory_order_acquire)));
          }
          if (MinStarted == std::numeric_limits<std::uint64_t>::max())
            return true; // every other worker already finished the round
          const bool TaskLeadOk =
              Config.SpecDistance ==
                  std::numeric_limits<std::uint64_t>::max() ||
              Global <= MinStarted + Config.SpecDistance;
          const bool EpochLeadOk =
              E <= static_cast<std::uint64_t>(MinEpoch) + Config.MaxEpochLead;
          return TaskLeadOk && EpochLeadOk;
        };
        if (R.Abort.load(std::memory_order_acquire)) {
          Tel.end(Tid, EventKind::Epoch, E);
          return;
        }
        if (!LeadOk()) {
          telemetry::TimedScope Wait(Tel, Tid, Counter::WorkerWaitNs,
                                     Hist::WorkerWaitNs, EventKind::Throttle,
                                     E, Global);
          do {
            if (R.Abort.load(std::memory_order_acquire)) {
              Tel.end(Tid, EventKind::Epoch, E);
              return;
            }
            Tel.add(Tid, Counter::ThrottleSpins);
            CIP_CHAOS_POINT(ThrottleSpin);
            Throttle.pause();
          } while (!LeadOk());
        }

        // enter_task: publish the clock, then snapshot the other clocks.
        CIP_CHECK(packClock(E, K) >= PrevClock,
                  "worker clock must be monotone across tasks");
        CIP_CHECK(Global + 1 >
                      R.Started[Tid].Value.load(std::memory_order_relaxed),
                  "started-task watermark must advance");
#if CIP_CHECK_ENABLED
        PrevClock = packClock(E, K);
#endif
        CIP_CHAOS_POINT(ClockPublish);
        R.Clocks[Tid].Value.store(packClock(E, K), std::memory_order_release);
        R.Started[Tid].Value.store(Global + 1, std::memory_order_release);
        for (std::uint32_t O = 0; O < W; ++O) {
          if (O == Tid)
            continue;
          Req.Snapshot[O] =
              R.Done[O].Value.load(std::memory_order_acquire)
                  ? SnapshotDone
                  : R.Clocks[O].Value.load(std::memory_order_acquire);
        }

        Tel.begin(Tid, EventKind::Task, E, T);
        Region.RunTask(E, T);
        Tel.end(Tid, EventKind::Task);
        Tel.add(Tid, Counter::TasksExecuted);

        // exit_task: log the signature and ship the checking request. The
        // signature is built locally, then scattered into the SoA log's
        // field planes in one set().
        Addrs.clear();
        Region.TaskAddresses(E, T, Addrs);
        Sig Built;
        for (std::uint64_t A : Addrs)
          Built.add(A);
        R.Logs[Tid][E - First].set(K, Built);
#if CIP_TELEMETRY
        RangeSignature &RangeSlot = R.RangeLogs[Tid][E - First][K];
        RangeSlot.clear();
        for (std::uint64_t A : Addrs)
          RangeSlot.add(A);
#endif
        Req.Epoch = E;
        Req.Task = K;
        // Stretch the signature-logged -> request-shipped window: the
        // checker must only read logs the publishing clock already covers.
        CIP_CHAOS_POINT(SignatureLog);
        ProduceWait.reset();
        if (!R.Queues[Tid]->tryProduce(Req)) {
          telemetry::TimedScope Full(Tel, Tid, Counter::WorkerWaitNs,
                                     Hist::QueueFullNs, EventKind::QueueFull,
                                     E);
          do {
            if (R.Abort.load(std::memory_order_acquire)) {
              Tel.end(Tid, EventKind::Epoch, E);
              return;
            }
            Tel.add(Tid, Counter::QueueFullSpins);
            ProduceWait.pause();
          } while (!R.Queues[Tid]->tryProduce(Req));
        }
      }
      Tel.end(Tid, EventKind::Epoch, E);
    }
    // send_end_token: publishing Done releases all logged signatures.
    R.Done[Tid].Value.store(true, std::memory_order_release);
  };

  auto checkerBody = [&] {
    const unsigned Checker = W;
    Backoff Idle;
    std::vector<VectorFifo<Request>> Pending(W);
    std::uint64_t LocalRequests = 0;
    std::uint64_t LocalComparisons = 0;
    std::uint64_t LocalBatches = 0;

    // One comparison span of a request: worker O's epoch-E signature-log
    // slice [KBegin, KEnd). Spans are enumerated in the exact order the
    // serial scan visits them, so committing per-span results in list
    // order reproduces the serial first-hit decision bit for bit.
    struct Span {
      std::uint32_t O;
      std::uint32_t E;
      std::size_t KBegin;
      std::size_t KEnd;
    };
    std::vector<Span> Spans;
    std::vector<std::size_t> SpanHit;

    // Checker lanes are leased once for the whole round (acquireLanes
    // never blocks); each request fans its spans across them. The lanes'
    // scans are pure reads of logs the ready() gate already ordered before
    // this thread, and the lease hand-off orders them before each lane.
    ThreadPool::Lease Lease;
    if (Lanes > 1)
      Lease = ThreadPool::global().acquireLanes(Lanes);

    auto passedEpoch = [&](std::uint32_t O, std::uint32_t Epoch) {
      if (R.Done[O].Value.load(std::memory_order_acquire))
        return true;
      return clockEpoch(R.Clocks[O].Value.load(std::memory_order_acquire)) >=
             Epoch;
    };

    // A request is checkable once every lagging worker's signatures for
    // all compared epochs are published: epochs before the request's epoch
    // by default, through the request's own epoch in TM-style mode.
    const std::uint32_t CompareThrough =
        Config.TmStyleValidation ? 1u : 0u;
    auto ready = [&](const Request &Q) {
      for (std::uint32_t O = 0; O < W; ++O) {
        if (O == Q.Tid || Q.Snapshot[O] == SnapshotDone)
          continue;
        if (clockEpoch(Q.Snapshot[O]) >= Q.Epoch + CompareThrough)
          continue;
        if (!passedEpoch(O, Q.Epoch + CompareThrough))
          return false;
      }
      return true;
    };

    auto process = [&](const Request &Q) {
      ++LocalRequests;
      CIP_CHECK(Q.Epoch >= First && Q.Epoch < End,
                "checker request epoch outside the round");
      CIP_CHECK(Q.Task < R.Logs[Q.Tid][Q.Epoch - First].size(),
                "checker request task outside the epoch's signature log");
      if (WantInjection && Q.Epoch >= Config.InjectMisspecAtEpoch &&
          !InjectionFired.exchange(true)) {
        if (!R.AbortRecorded.exchange(true, std::memory_order_acq_rel)) {
          R.AbortInfo.Cause = telemetry::AbortCause::Injected;
          R.AbortInfo.LaterEpoch = Q.Epoch;
          R.AbortInfo.LaterTid = Q.Tid;
          R.AbortInfo.LaterTask = Q.Task;
          R.AbortInfo.Scheme = Sig::schemeName();
        }
        Tel.instant(Checker, EventKind::Misspec, Q.Epoch, Q.Tid);
        R.Abort.store(true, std::memory_order_release);
        return;
      }
      // SchedulerBusyNs doubles as "service thread busy" — the checker is
      // SPECCROSS's analogue of DOMORE's scheduler thread.
      telemetry::TimedScope Check(Tel, Checker, Counter::SchedulerBusyNs,
                                  Hist::CheckNs, EventKind::SigCheck, Q.Epoch,
                                  Q.Task);
      const Sig Mine = R.Logs[Q.Tid][Q.Epoch - First].get(Q.Task);

      // Enumerate the request's comparison spans in serial-scan order.
      Spans.clear();
      for (std::uint32_t O = 0; O < W; ++O) {
        if (O == Q.Tid || Q.Snapshot[O] == SnapshotDone)
          continue;
        const std::uint32_t E0 = clockEpoch(Q.Snapshot[O]);
        if (E0 >= Q.Epoch + CompareThrough)
          continue;
        const std::uint32_t T0 = clockTask(Q.Snapshot[O]);
        for (std::uint32_t E = std::max(E0, First);
             E < Q.Epoch + CompareThrough; ++E) {
          const std::size_t KBegin = E == E0 ? T0 : 0;
          const std::size_t KEnd = R.Logs[O][E - First].size();
          if (KBegin >= KEnd)
            continue;
          Spans.push_back(Span{O, E, KBegin, KEnd});
        }
      }

      constexpr std::size_t npos = SignatureLog<Sig>::npos;
      auto scanSpan = [&](const Span &S) {
        const auto &EpochLog = R.Logs[S.O][S.E - First];
        return Batched ? EpochLog.batchFirstOverlap(Mine, S.KBegin, S.KEnd)
                       : EpochLog.firstOverlap(Mine, S.KBegin, S.KEnd);
      };

      const bool Fanned = Lanes > 1 && Spans.size() > 1;
      if (Fanned) {
        const unsigned N =
            static_cast<unsigned>(std::min<std::size_t>(Lanes, Spans.size()));
        SpanHit.assign(Spans.size(), npos);
        Lease.run(N, [&](unsigned L) {
          for (std::size_t I = L; I < Spans.size(); I += N)
            SpanHit[I] = scanSpan(Spans[I]);
        });
        // Stretch the lane-scans-done -> serial-commit window: a protocol
        // bug here would commit results a lane has not written yet.
        CIP_CHAOS_POINT(CheckCommit);
      }

      // Epoch-ordered commit, identical to the serial scan: walk the spans
      // in enumeration order, account each visited span, stop at the first
      // hit. Lanes may have scanned spans past the hit; those results are
      // discarded unread, so the abort decision, the comparison and batch
      // counts, and the forensics record match serial bit for bit. Both
      // scan kernels visit the same signatures a serial loop would have
      // (everything up to and including the first hit), so the comparison
      // count is mode-independent too.
      for (std::size_t I = 0; I < Spans.size(); ++I) {
        const Span &S = Spans[I];
        const auto &EpochLog = R.Logs[S.O][S.E - First];
        const std::size_t HitK = Fanned ? SpanHit[I] : scanSpan(S);
        const std::size_t Width =
            HitK != npos ? HitK - S.KBegin + 1 : S.KEnd - S.KBegin;
        LocalComparisons += Width;
        if (Batched) {
          ++LocalBatches;
          Tel.recordHist(Checker, Hist::BatchWidth, Width);
        }
        if (HitK == npos)
          continue;
        if (!R.AbortRecorded.exchange(true, std::memory_order_acq_rel)) {
          telemetry::AbortRecord &A = R.AbortInfo;
          A.Cause = telemetry::AbortCause::SignatureOverlap;
          A.EarlierEpoch = S.E;
          A.EarlierTid = S.O;
          A.EarlierTask = static_cast<std::uint32_t>(HitK);
          A.LaterEpoch = Q.Epoch;
          A.LaterTid = Q.Tid;
          A.LaterTask = Q.Task;
          A.SignatureBucket = overlapHint(Mine, EpochLog.get(HitK));
          A.Scheme = Sig::schemeName();
#if CIP_TELEMETRY
          // Exact recheck: did the two tasks' true address ranges
          // overlap, or was the signature hit a false positive?
          A.ExactConfirmed =
              R.RangeLogs[Q.Tid][Q.Epoch - First][Q.Task].overlaps(
                  R.RangeLogs[S.O][S.E - First][HitK]);
#endif
        }
        Tel.instant(Checker, EventKind::Misspec, Q.Epoch, Q.Tid);
        R.Abort.store(true, std::memory_order_release);
        return;
      }
    };

    while (true) {
      // Vary checker lag relative to workers: late polls force the
      // ready() gate to cover wider clock-snapshot gaps.
      CIP_CHAOS_POINT(CheckerPoll);
      if (R.Abort.load(std::memory_order_acquire))
        break;
      if (Config.TimeoutSeconds > 0.0 &&
          (static_cast<double>(nowNanos()) - RoundStart) * 1e-9 >
              Config.TimeoutSeconds) {
        if (!R.AbortRecorded.exchange(true, std::memory_order_acq_rel)) {
          R.AbortInfo.Cause = telemetry::AbortCause::Timeout;
          R.AbortInfo.Scheme = Sig::schemeName();
        }
        R.Abort.store(true, std::memory_order_release);
        break;
      }
      bool Progress = false;
      for (std::uint32_t T = 0; T < W; ++T) {
        Request Q;
        while (R.Queues[T]->tryConsume(Q)) {
          Pending[T].push(Q);
          Progress = true;
        }
      }
      for (std::uint32_t T = 0; T < W && !R.Abort; ++T) {
        while (!Pending[T].empty() && ready(Pending[T].front())) {
          process(Pending[T].front());
          Pending[T].pop();
          Progress = true;
          if (R.Abort.load(std::memory_order_acquire))
            break;
        }
      }
      if (R.Abort.load(std::memory_order_acquire))
        break;
      bool AllDone = true;
      for (std::uint32_t T = 0; T < W; ++T)
        if (!R.Done[T].Value.load(std::memory_order_acquire) ||
            !R.Queues[T]->empty() || !Pending[T].empty()) {
          AllDone = false;
          break;
        }
      if (AllDone)
        break;
      if (!Progress) {
        Tel.add(Checker, Counter::QueueEmptySpins);
        Idle.pause();
      } else {
        Idle.reset();
      }
    }
    CheckRequests.fetch_add(LocalRequests, std::memory_order_relaxed);
    Comparisons.fetch_add(LocalComparisons, std::memory_order_relaxed);
    BatchChecks.fetch_add(LocalBatches, std::memory_order_relaxed);
    Tel.add(Checker, Counter::CheckRequests, LocalRequests);
    Tel.add(Checker, Counter::SignatureComparisons, LocalComparisons);
  };

  runThreads(W + 1, [&](unsigned Idx) {
    if (Idx == W)
      checkerBody();
    else
      workerBody(Idx);
  });

  Stats.CheckRequests += CheckRequests.load(std::memory_order_relaxed);
  Stats.SignatureComparisons += Comparisons.load(std::memory_order_relaxed);
  Stats.BatchChecks += BatchChecks.load(std::memory_order_relaxed);
  if (R.Abort.load(std::memory_order_acquire)) {
    if (InjectionFired.load(std::memory_order_relaxed))
      Injected = true;
    // Complete the forensics with the wasted-work accounting only the
    // round's end can know, then file the record.
    telemetry::AbortRecord A = R.AbortInfo;
    A.RoundFirstEpoch = First;
    A.RoundEndEpoch = End;
    A.TasksUnwound = Tel.totals().get(Counter::TasksExecuted) - TasksBefore;
    A.NsSinceCheckpoint = nowNanos() - RoundStartNs;
    Tel.recordAbort(A);
    return false;
  }
  return true;
}

} // namespace

SpecStats speccross::runSpecCross(const SpecRegion &Region,
                                  const SpecConfig &Config, SpecMode Mode) {
  if (Mode == SpecMode::Profiling) {
    const ProfileResult P = profileRegion(Region);
    SpecStats Stats;
    Stats.Epochs = P.Epochs;
    Stats.Tasks = P.Tasks;
    return Stats;
  }
  if (Config.Scheme == SignatureScheme::Bloom) {
    Engine<BloomSignature> E(Region, Config);
    return E.run(Mode);
  }
  if (Config.Scheme == SignatureScheme::SmallSet) {
    Engine<SmallSetSignature> E(Region, Config);
    return E.run(Mode);
  }
  Engine<RangeSignature> E(Region, Config);
  return E.run(Mode);
}

ProfileResult speccross::profileRegion(const SpecRegion &Region,
                                       std::uint32_t NumWorkers) {
  assert(Region.NumTasks && Region.RunTask && Region.TaskAddresses &&
         "incomplete region description");
  ProfileResult Result;
  Result.Epochs = Region.NumEpochs;

  // Last accessor of each abstract address: global task number, epoch, and
  // the worker the static assignment would place the task on.
  struct Access {
    std::uint64_t Global;
    std::uint32_t Epoch;
    std::uint32_t Owner;
  };
  std::unordered_map<std::uint64_t, Access> Last;
  std::vector<std::uint64_t> Addrs;
  std::uint64_t Global = 0;

  for (std::uint32_t E = 0; E < Region.NumEpochs; ++E) {
    if (Region.EpochPrologue)
      Region.EpochPrologue(E, /*Tid=*/0);
    const std::size_t N = Region.NumTasks(E);
    for (std::size_t T = 0; T < N; ++T, ++Global) {
      Region.RunTask(E, T);
      Addrs.clear();
      Region.TaskAddresses(E, T, Addrs);
      const std::uint32_t Owner =
          NumWorkers ? static_cast<std::uint32_t>(T % NumWorkers) : 0;
      for (std::uint64_t A : Addrs) {
        auto [It, Inserted] = Last.try_emplace(A, Access{Global, E, Owner});
        if (!Inserted) {
          // Same-epoch accesses are independent by construction and
          // dependences between tasks of the same worker are respected by
          // program order, so only cross-epoch, cross-worker pairs count.
          if (It->second.Epoch != E &&
              (NumWorkers == 0 || It->second.Owner != Owner)) {
            ++Result.CrossEpochConflicts;
            Result.MinDependenceDistance = std::min(
                Result.MinDependenceDistance, Global - It->second.Global);
          }
          It->second = Access{Global, E, Owner};
        }
      }
    }
  }
  Result.Tasks = Global;
  return Result;
}

//===- policy/Policy.h - Adaptive execution-policy engine ------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime technique decision, made online. The dissertation picks the
/// execution technique for a region *offline* (Table 5.3: profile on the
/// train input, then run DOMORE, duplicated-scheduler DOMORE, SPECCROSS, or
/// the plain barrier on ref) — but the profitable technique is input- and
/// phase-dependent: SPECCROSS only wins while misspeculation is rare, DOMORE
/// only while conflicts actually manifest, and the wrong choice is worse
/// than sequential. This subsystem owns that decision per region and revises
/// it at invocation-epoch boundaries from the signals the telemetry and
/// profiler layers already produce.
///
/// Shape of the loop: the harness executes the region in *windows* of
/// consecutive epochs (harness/Adaptive.h). After each window it distills
/// the engine's statistics into one \c RegionStats snapshot — abort rate and
/// checking latency for SPECCROSS, sync-condition density and scheduler
/// occupancy for DOMORE, wait/dispatch-batch distributions for both — and
/// feeds it to a \c PolicyEngine, which answers with the technique for the
/// next window. Three policies are pluggable:
///
///  * \c Fixed     — always the configured technique (today's behavior);
///  * \c Threshold — the paper-faithful cutoff rules (Table 5.3's decision
///                   procedure run online): abort-rate and conflict-density
///                   cutoffs with hysteresis (a candidate must persist for
///                   \c ConfirmWindows consecutive windows, and no switch
///                   happens within \c MinDwellWindows of the last one, so
///                   the engine never flip-flops inside a window), plus a
///                   measured-cost guard: a cutoff-indicated switch into a
///                   technique that has already run and measured more than
///                   \c SlowerMargin slower per epoch is held off — the
///                   cutoffs encode the paper's machine model, the
///                   measurements the actual machine;
///  * \c Bandit    — epsilon-greedy over the applicable techniques with
///                   measured per-epoch wall time as (negative) reward,
///                   deterministic under \c CIP_POLICY_SEED.
///
/// Environment knobs (strict-parsed; garbage is a config bug and exits 2,
/// like every CIP_* knob):
///   CIP_POLICY        = fixed:<tech> | threshold | bandit
///                       (<tech> = barrier | domore | domore-dup | speccross)
///   CIP_POLICY_WINDOW = epochs per decision window (positive integer)
///   CIP_POLICY_SEED   = bandit RNG seed (decimal)
///
/// Layering: this library sits strictly *above* the engines — src/domore
/// and src/speccross never reference cip::policy (CI checks their objects
/// with `nm`, mirroring the telemetry and chaos zero-cost checks), so the
/// engine hot paths carry no policy code when CIP_POLICY is unset.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_POLICY_POLICY_H
#define CIP_POLICY_POLICY_H

#include "support/Compiler.h"
#include "support/Rng.h"

#include <cstdint>
#include <string_view>

namespace cip {
namespace policy {

/// The techniques the engine chooses among — the four ways the harness can
/// execute a region of consecutive inner-loop invocations.
enum class Technique : unsigned {
  Barrier,   ///< barrier-DOALL baseline (always applicable)
  Domore,    ///< DOMORE scheduler/worker runtime (Ch. 3)
  DomoreDup, ///< duplicated-scheduler DOMORE (§3.4)
  SpecCross, ///< SPECCROSS speculative barriers (Ch. 4)
};

inline constexpr unsigned NumTechniques = 4;

/// Stable machine-readable name ("barrier", "domore", "domore-dup",
/// "speccross") — the JSON export key and the CIP_POLICY=fixed:<tech> token.
const char *techniqueName(Technique T);

/// Parses a techniqueName() token. Returns false on other input.
bool parseTechnique(std::string_view Name, Technique &Out);

/// Applicability bitmask helpers. Barrier is always applicable; the harness
/// derives the rest from the workload (Table 5.1's applicability columns).
inline constexpr std::uint32_t techniqueBit(Technique T) {
  return 1u << static_cast<unsigned>(T);
}

/// One window's signal snapshot: what the engines already measure, distilled
/// to the quantities the paper's decision procedure consults. Plain data —
/// meaningful fields depend on the technique that ran the window; the rest
/// stay zero.
struct RegionStats {
  Technique Tech = Technique::Barrier;
  std::uint32_t Window = 0;     ///< window ordinal within the region
  std::uint32_t FirstEpoch = 0; ///< first epoch of the window
  std::uint32_t NumEpochs = 0;  ///< epochs executed in the window
  double Seconds = 0.0;         ///< measured window wall time
  std::uint64_t Tasks = 0;

  /// SPECCROSS: misspeculated rounds and checking-request pressure.
  std::uint64_t Misspeculations = 0;
  std::uint64_t CheckRequests = 0;
  /// SPECCROSS: p90 checking-request latency, nanoseconds.
  std::uint64_t CheckLatencyP90Ns = 0;

  /// DOMORE: manifested cross-invocation conflicts and iteration volume.
  std::uint64_t SyncConditions = 0;
  std::uint64_t Iterations = 0;
  /// DOMORE: scheduler busy time as a percentage of the window (the §3.4
  /// criterion for duplicating the scheduler).
  double SchedulerRatioPercent = 0.0;

  /// Both engines: p90 of the dominant wait distribution, nanoseconds.
  std::uint64_t WaitP90Ns = 0;
  /// DOMORE: mean realized dispatch-batch size (iterations per WorkRange).
  double MeanDispatchBatch = 0.0;

  /// The bandit's (negative) reward basis.
  double secondsPerEpoch() const {
    return NumEpochs ? Seconds / static_cast<double>(NumEpochs) : 0.0;
  }
  /// Misspeculated rounds per executed epoch (SPECCROSS windows).
  double abortRate() const {
    return NumEpochs ? static_cast<double>(Misspeculations) /
                           static_cast<double>(NumEpochs)
                     : 0.0;
  }
  /// Sync conditions per scheduled iteration (DOMORE windows).
  double conflictDensity() const {
    return Iterations ? static_cast<double>(SyncConditions) /
                            static_cast<double>(Iterations)
                      : 0.0;
  }
};

/// Which decision procedure runs.
enum class PolicyKind : unsigned { Fixed, Threshold, Bandit };

const char *policyKindName(PolicyKind K);

/// Full policy configuration. The cutoffs default to the regimes of
/// Table 5.3: SPECCROSS stops paying its checkpoint/rollback overhead well
/// before one round in ten aborts, and a DOMORE window whose conflicts stop
/// manifesting is exactly the "*" (conflict-free) profile row where
/// speculation wins.
struct PolicyConfig {
  PolicyKind Kind = PolicyKind::Fixed;
  Technique FixedTech = Technique::Domore;

  /// Epochs per decision window (CIP_POLICY_WINDOW).
  std::uint32_t WindowEpochs = 8;

  /// Bandit RNG seed (CIP_POLICY_SEED). Decisions are a pure function of
  /// (seed, stats stream).
  std::uint64_t Seed = 1;
  /// Bandit exploration probability.
  double Epsilon = 0.2;

  /// Threshold: leave SPECCROSS when misspeculated rounds per epoch exceed
  /// this.
  double AbortRateHigh = 0.10;
  /// Threshold: leave DOMORE for SPECCROSS when sync conditions per
  /// iteration fall below this (conflicts no longer manifest).
  double ConflictLow = 0.005;
  /// Threshold: duplicate the scheduler when its busy ratio exceeds this
  /// percentage while conflicts still manifest (§3.4's criterion).
  double SchedulerRatioHigh = 45.0;
  /// Threshold: a cutoff-indicated switch is suppressed while the target
  /// technique's measured mean seconds-per-epoch (cumulative over this
  /// region) exceeds the current technique's by more than this fraction.
  /// The cutoffs encode the paper's *machine model* (speculation wins when
  /// conflict-free); the measurement is the ground truth on the machine at
  /// hand — e.g. on an oversubscribed host SPECCROSS loses even without
  /// aborts, and this guard keeps the engine from bouncing into it.
  double SlowerMargin = 0.10;
  /// Hysteresis: a candidate switch must be indicated for this many
  /// consecutive windows before it is taken. The signals are already
  /// window-averaged, so one window of evidence is decisive by default;
  /// raise this when windows are short enough to be noisy.
  std::uint32_t ConfirmWindows = 1;
  /// ...and after any switch, no further switch for this many windows — the
  /// guarantee that the engine never flip-flops inside a dwell period.
  std::uint32_t MinDwellWindows = 2;
};

/// A profile-guided warm start: the distillation of a plan::RegionPlan into
/// exactly what the engine consumes (kept here, below the plan subsystem,
/// so Policy.h never includes Plan.h — plan::warmStartFrom() builds one).
/// Applied via PolicyEngine::warmStart() before initial():
///
///  * all policies seed their measured-cost record (Pulls/MeanReward) from
///    the calibration sweep's per-technique seconds-per-epoch;
///  * Threshold starts on \c Initial (reason "plan-warm") with the
///    hysteresis dwell pre-armed for \c HoldWindows instead of the blind
///    optimistic start;
///  * Bandit skips round-robin initialization for every seeded arm and goes
///    straight to epsilon-greedy over the calibrated estimates;
///  * Fixed keeps its configured technique — the seeded record still primes
///    the SlowerMargin guard should the config later switch kinds.
struct WarmStart {
  bool HasInitial = false;
  Technique Initial = Technique::Barrier;
  /// Calibrated mean seconds per epoch per technique; a value <= 0 means
  /// unmeasured (that arm still gets a round-robin pull).
  double SecondsPerEpoch[NumTechniques] = {};
  /// Threshold hysteresis prior: windows to dwell on \c Initial before the
  /// cutoffs may switch away (0 = the config's MinDwellWindows).
  std::uint32_t HoldWindows = 0;
};

/// One verdict. \c Reason is a static string ("optimistic-start",
/// "abort-rate-high", "conflict-density-low", "scheduler-saturated",
/// "measured-slower", "explore", "exploit", "fixed", "plan-warm", ...) safe
/// to retain beyond the engine.
struct Decision {
  Technique Tech = Technique::Barrier;
  bool Switched = false; ///< differs from the previous window's technique
  bool Explore = false;  ///< bandit exploration (vs. exploitation) step
  const char *Reason = "initial";
};

/// The per-region decision maker. Construct once per adaptive region run
/// with the applicability mask, call \c initial() for the first window, then
/// \c observe() with each completed window's stats to get the next verdict.
/// Not thread-safe; the harness consults it from the control thread between
/// windows.
class PolicyEngine {
public:
  /// \p ApplicableMask ORs techniqueBit() for every technique the region
  /// supports; Technique::Barrier is forced in (it is always sound).
  PolicyEngine(const PolicyConfig &Config, std::uint32_t ApplicableMask);

  Technique current() const { return Cur; }
  const PolicyConfig &config() const { return Cfg; }

  /// Applies a profile-guided prior (see WarmStart). Must be called before
  /// initial(); an inapplicable Initial is ignored (the policy falls back
  /// to its cold start), seeded costs for inapplicable arms are dropped.
  void warmStart(const WarmStart &WS);
  /// True when warmStart() installed a usable initial technique.
  bool warmStarted() const { return Warm.HasInitial; }

  /// The verdict for the first window (no signals yet): the fixed technique,
  /// the threshold policy's optimistic start (SPECCROSS where applicable),
  /// or the bandit's first arm.
  Decision initial();

  /// Feeds the window that just executed; returns the verdict for the next
  /// one.
  Decision observe(const RegionStats &S);

private:
  bool applicable(Technique T) const { return (Mask & techniqueBit(T)) != 0; }
  Technique fallback() const;
  Decision switchTo(Technique T, const char *Reason, bool Explore = false);
  Decision hold(const char *Reason);
  void creditArm(const RegionStats &S);
  double meanSecondsPerEpoch(Technique T) const;
  Decision thresholdObserve(const RegionStats &S);
  Decision banditObserve(const RegionStats &S);

  PolicyConfig Cfg;
  std::uint32_t Mask;
  Technique Cur = Technique::Barrier;
  bool Started = false;

  // Threshold hysteresis state.
  std::uint32_t DwellLeft = 0;    ///< windows until switching is allowed
  Technique Pending = Technique::Barrier; ///< candidate awaiting confirmation
  const char *PendingReason = "";
  std::uint32_t PendingCount = 0; ///< consecutive windows indicating Pending

  // Per-arm pull counts and mean reward (-seconds/epoch): the bandit's
  // value estimates, doubling as the threshold policy's measured-cost
  // record for the SlowerMargin guard.
  std::uint64_t Pulls[NumTechniques] = {};
  double MeanReward[NumTechniques] = {};
  std::uint32_t InitArm = 0; ///< next unexplored arm during round-robin init
  Xoshiro256StarStar Rng{1};

  /// Profile-guided prior (HasInitial false until warmStart() installs a
  /// usable one; the seeded arm estimates live in Pulls/MeanReward above).
  WarmStart Warm;
};

/// Parses one CIP_POLICY specification into \p Out (Kind and FixedTech
/// only). Returns nullptr on success or a static description of the
/// expected grammar on failure — the caller decides whether failure is
/// fatal (configFromEnv) or a test expectation.
const char *parsePolicySpec(std::string_view Spec, PolicyConfig &Out);

/// Reads CIP_POLICY / CIP_POLICY_WINDOW / CIP_POLICY_SEED into \p Out.
/// Returns false (leaving \p Out untouched) when CIP_POLICY is unset or
/// empty — the caller keeps its compiled-in default. Malformed values are a
/// configuration bug: prints `error: CIP_POLICY...` and exits 2, matching
/// every other CIP_* knob.
bool configFromEnv(PolicyConfig &Out);

} // namespace policy
} // namespace cip

#endif // CIP_POLICY_POLICY_H

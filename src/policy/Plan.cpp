//===- policy/Plan.cpp - Profile-guided region plans ---------------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "policy/Plan.h"

#include "memory/CheckpointSubstrate.h"
#include "telemetry/Json.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/stat.h>

using namespace cip;
using namespace cip::plan;
namespace json = cip::telemetry::json;

//===----------------------------------------------------------------------===//
// Warm-start distillation
//===----------------------------------------------------------------------===//

policy::WarmStart plan::warmStartFrom(const RegionPlan &P) {
  policy::WarmStart WS;
  WS.HasInitial = true;
  WS.Initial = P.Initial;
  WS.HoldWindows = P.HoldWindows;
  for (unsigned T = 0; T < policy::NumTechniques; ++T)
    if (P.Techniques[T].Measured)
      WS.SecondsPerEpoch[T] = P.Techniques[T].SecondsPerEpoch;
  return WS;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string plan::renderPlan(const RegionPlan &P) {
  json::Writer W;
  W.beginObject();
  W.key("plan_version");
  W.value(P.Version);
  W.key("region");
  W.value(P.Region);
  W.key("threads");
  W.value(P.Threads);
  W.key("calibration_epochs");
  W.value(P.CalibrationEpochs);
  W.key("initial");
  W.value(policy::techniqueName(P.Initial));
  W.key("hold_windows");
  W.value(P.HoldWindows);
  W.key("techniques");
  W.beginObject();
  for (unsigned T = 0; T < policy::NumTechniques; ++T) {
    const TechniqueCalibration &C = P.Techniques[T];
    W.key(policy::techniqueName(static_cast<policy::Technique>(T)));
    W.beginObject();
    W.key("measured");
    W.value(C.Measured);
    W.key("sec_per_epoch");
    W.value(C.SecondsPerEpoch);
    W.key("abort_rate");
    W.value(C.AbortRate);
    W.key("conflict_density");
    W.value(C.ConflictDensity);
    W.key("scheduler_ratio");
    W.value(C.SchedulerRatioPercent);
    W.endObject();
  }
  W.endObject();
  W.key("sequential_sec_per_epoch");
  W.value(P.SequentialSecondsPerEpoch);
  W.key("predicted_sec_per_epoch");
  W.value(P.PredictedSecondsPerEpoch);
  W.key("min_dependence_distance");
  W.value(P.MinDependenceDistance);
  W.key("min_epoch_distance");
  W.value(P.MinEpochDistance);
  W.key("conflicting_addresses");
  W.value(P.ConflictingAddresses);
  W.key("spec_distance");
  W.value(P.SpecDistance);
  W.key("max_batch_hint");
  W.value(P.MaxBatchHint);
  W.key("shadow_shards");
  W.value(P.ShadowShards);
  W.key("sched_threads");
  W.value(P.SchedThreads);
  W.key("ckpt_substrate");
  W.value(P.CkptSubstrate);
  W.endObject();
  std::string Out = W.take();
  Out += '\n';
  return Out;
}

//===----------------------------------------------------------------------===//
// Strict parsing
//===----------------------------------------------------------------------===//

namespace {

/// Field extractors: each returns false when the member is absent or has
/// the wrong type/sign, so parsePlan can answer with one static grammar
/// string instead of threading per-field diagnostics.
bool getNumber(const json::Value &Obj, const char *Key, double &Out) {
  const json::Value *V = Obj.find(Key);
  if (!V || !V->isNumber() || V->Number < 0.0)
    return false;
  Out = V->Number;
  return true;
}

bool getU64(const json::Value &Obj, const char *Key, std::uint64_t &Out) {
  double D = 0.0;
  if (!getNumber(Obj, Key, D))
    return false;
  Out = static_cast<std::uint64_t>(D);
  return true;
}

bool getU32(const json::Value &Obj, const char *Key, std::uint32_t &Out) {
  double D = 0.0;
  if (!getNumber(Obj, Key, D) || D > 4294967295.0)
    return false;
  Out = static_cast<std::uint32_t>(D);
  return true;
}

bool getBool(const json::Value &Obj, const char *Key, bool &Out) {
  const json::Value *V = Obj.find(Key);
  if (!V || V->T != json::Value::Type::Bool)
    return false;
  Out = V->Bool;
  return true;
}

bool getString(const json::Value &Obj, const char *Key, std::string &Out) {
  const json::Value *V = Obj.find(Key);
  if (!V || !V->isString())
    return false;
  Out = V->String;
  return true;
}

} // namespace

const char *plan::parsePlan(const std::string &Text, RegionPlan &Out) {
  static const char *const Grammar =
      "a plan_version 4 region plan object (see DESIGN.md section 13)";
  static const char *const VersionErr =
      "plan_version 4 (re-profile with this build's CIP_PROFILE)";

  json::Value Doc;
  if (!json::parse(Text, Doc) || !Doc.isObject())
    return Grammar;

  RegionPlan P;
  std::uint32_t Version = 0;
  if (!getU32(Doc, "plan_version", Version))
    return Grammar;
  if (Version != PlanVersion)
    return VersionErr;
  P.Version = Version;

  std::string Initial;
  std::uint32_t Threads = 0;
  if (!getString(Doc, "region", P.Region) ||
      !getU32(Doc, "threads", Threads) ||
      !getU32(Doc, "calibration_epochs", P.CalibrationEpochs) ||
      !getString(Doc, "initial", Initial) ||
      !getU32(Doc, "hold_windows", P.HoldWindows) ||
      !policy::parseTechnique(Initial, P.Initial))
    return Grammar;
  P.Threads = Threads;

  const json::Value *Techs = Doc.find("techniques");
  if (!Techs || !Techs->isObject())
    return Grammar;
  for (unsigned T = 0; T < policy::NumTechniques; ++T) {
    const json::Value *Row =
        Techs->find(policy::techniqueName(static_cast<policy::Technique>(T)));
    if (!Row || !Row->isObject())
      return Grammar;
    TechniqueCalibration &C = P.Techniques[T];
    if (!getBool(*Row, "measured", C.Measured) ||
        !getNumber(*Row, "sec_per_epoch", C.SecondsPerEpoch) ||
        !getNumber(*Row, "abort_rate", C.AbortRate) ||
        !getNumber(*Row, "conflict_density", C.ConflictDensity) ||
        !getNumber(*Row, "scheduler_ratio", C.SchedulerRatioPercent))
      return Grammar;
  }

  if (!getNumber(Doc, "sequential_sec_per_epoch",
                 P.SequentialSecondsPerEpoch) ||
      !getNumber(Doc, "predicted_sec_per_epoch", P.PredictedSecondsPerEpoch) ||
      !getU64(Doc, "min_dependence_distance", P.MinDependenceDistance) ||
      !getU32(Doc, "min_epoch_distance", P.MinEpochDistance) ||
      !getU64(Doc, "conflicting_addresses", P.ConflictingAddresses) ||
      !getU64(Doc, "spec_distance", P.SpecDistance) ||
      !getU32(Doc, "max_batch_hint", P.MaxBatchHint) ||
      !getU32(Doc, "shadow_shards", P.ShadowShards) ||
      !getU32(Doc, "sched_threads", P.SchedThreads) ||
      !getString(Doc, "ckpt_substrate", P.CkptSubstrate))
    return Grammar;
  if (!P.CkptSubstrate.empty()) {
    // The hint must name a real substrate ("" is the none-sentinel); a typo
    // silently falling back to the default would defeat the warm start.
    memory::SubstrateKind K;
    if (!memory::parseSubstrateName(P.CkptSubstrate.c_str(), K))
      return Grammar;
  }

  Out = P;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Files
//===----------------------------------------------------------------------===//

std::string plan::planPath(const std::string &Dir, const std::string &Region) {
  std::string P = Dir;
  if (!P.empty() && P.back() != '/')
    P += '/';
  P += Region;
  P += ".plan.json";
  return P;
}

bool plan::savePlan(const RegionPlan &P, const std::string &Dir,
                    std::string &PathOut, std::string &Err) {
  const std::string Path = planPath(Dir, P.Region);
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    Err = Path + ": " + std::strerror(errno);
    return false;
  }
  const std::string Doc = renderPlan(P);
  const bool Ok = std::fwrite(Doc.data(), 1, Doc.size(), F) == Doc.size();
  if (std::fclose(F) != 0 || !Ok) {
    Err = Path + ": write failed";
    return false;
  }
  PathOut = Path;
  return true;
}

bool plan::loadPlanFile(const std::string &Path, RegionPlan &Out,
                        std::string &Err) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F) {
    Err = Path + ": " + std::strerror(errno);
    return false;
  }
  std::string Text;
  char Buf[4096];
  std::size_t N = 0;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  if (const char *Expected = parsePlan(Text, Out)) {
    Err = Path + ": expected " + Expected;
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Environment knobs
//===----------------------------------------------------------------------===//

namespace {

[[noreturn]] void planEnvError(const char *Var, const char *Value,
                               const std::string &Expected) {
  std::fprintf(stderr, "error: %s='%s' is invalid: expected %s\n", Var, Value,
               Expected.c_str());
  // _Exit, not exit: matches the CIP_CHAOS/CIP_POLICY convention — a config
  // error wants immediate, clean-status death without running
  // atexit/destructors while runtime threads may be live.
  std::_Exit(2);
}

enum class PathKind { Missing, File, Directory };

PathKind classifyPath(const char *Path) {
  struct stat St;
  if (::stat(Path, &St) != 0)
    return PathKind::Missing;
  return S_ISDIR(St.st_mode) ? PathKind::Directory : PathKind::File;
}

} // namespace

bool plan::profileDirFromEnv(std::string &Dir) {
  const char *S = std::getenv("CIP_PROFILE");
  if (!S || !*S)
    return false;
  if (classifyPath(S) != PathKind::Directory)
    planEnvError("CIP_PROFILE", S,
                 "an existing directory to write <region>.plan.json into");
  Dir = S;
  return true;
}

bool plan::planFromEnv(const std::string &Region, RegionPlan &Out,
                       std::string *PathOut, const char **SourceOut) {
  const char *S = std::getenv("CIP_PLAN");
  if (!S || !*S)
    return false;

  std::string Path = S;
  const char *Source = "file";
  switch (classifyPath(S)) {
  case PathKind::Missing:
    planEnvError("CIP_PLAN", S, "an existing plan file or plan directory");
  case PathKind::Directory:
    // Per-region resolution: a region the directory has no plan for starts
    // cold — a mixed workload set profiles incrementally.
    Path = planPath(S, Region);
    if (classifyPath(Path.c_str()) == PathKind::Missing)
      return false;
    Source = "dir";
    break;
  case PathKind::File:
    break;
  }

  std::string Err;
  RegionPlan P;
  if (!loadPlanFile(Path, P, Err))
    planEnvError("CIP_PLAN", S, Err);
  if (PathOut)
    *PathOut = Path;
  if (SourceOut)
    *SourceOut = Source;
  Out = P;
  return true;
}

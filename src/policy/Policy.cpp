//===- policy/Policy.cpp - Adaptive execution-policy engine --------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "policy/Policy.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace cip;
using namespace cip::policy;

const char *policy::techniqueName(Technique T) {
  switch (T) {
  case Technique::Barrier:
    return "barrier";
  case Technique::Domore:
    return "domore";
  case Technique::DomoreDup:
    return "domore-dup";
  case Technique::SpecCross:
    return "speccross";
  }
  CIP_UNREACHABLE("unknown technique");
}

bool policy::parseTechnique(std::string_view Name, Technique &Out) {
  if (Name == "barrier")
    Out = Technique::Barrier;
  else if (Name == "domore")
    Out = Technique::Domore;
  else if (Name == "domore-dup" || Name == "dup")
    Out = Technique::DomoreDup;
  else if (Name == "speccross")
    Out = Technique::SpecCross;
  else
    return false;
  return true;
}

const char *policy::policyKindName(PolicyKind K) {
  switch (K) {
  case PolicyKind::Fixed:
    return "fixed";
  case PolicyKind::Threshold:
    return "threshold";
  case PolicyKind::Bandit:
    return "bandit";
  }
  CIP_UNREACHABLE("unknown policy kind");
}

//===----------------------------------------------------------------------===//
// PolicyEngine
//===----------------------------------------------------------------------===//

PolicyEngine::PolicyEngine(const PolicyConfig &Config,
                           std::uint32_t ApplicableMask)
    : Cfg(Config), Mask(ApplicableMask | techniqueBit(Technique::Barrier)),
      Rng(Config.Seed) {}

Technique PolicyEngine::fallback() const {
  // The conservative ladder when the desired technique is inapplicable:
  // non-speculative runtime scheduling before speculation, barrier last.
  if (applicable(Technique::Domore))
    return Technique::Domore;
  if (applicable(Technique::DomoreDup))
    return Technique::DomoreDup;
  return Technique::Barrier;
}

Decision PolicyEngine::switchTo(Technique T, const char *Reason,
                                bool Explore) {
  Decision D;
  D.Tech = T;
  D.Switched = Started && T != Cur;
  D.Explore = Explore;
  D.Reason = Reason;
  if (D.Switched) {
    DwellLeft = Cfg.MinDwellWindows;
    PendingCount = 0;
  }
  Cur = T;
  Started = true;
  return D;
}

Decision PolicyEngine::hold(const char *Reason) {
  Decision D;
  D.Tech = Cur;
  D.Reason = Reason;
  return D;
}

void PolicyEngine::warmStart(const WarmStart &WS) {
  assert(!Started && "warmStart() after initial()");
  Warm = WS;
  if (Warm.HasInitial && !applicable(Warm.Initial))
    Warm.HasInitial = false; // the plan was made for a different region shape
  // Seed the arm estimates (the bandit's values, the threshold policy's
  // measured-cost record) from the calibration sweep: one synthetic pull
  // per measured arm, reward = -seconds/epoch.
  for (unsigned T = 0; T < NumTechniques; ++T) {
    const double Sec = WS.SecondsPerEpoch[T];
    if (Sec > 0.0 && applicable(static_cast<Technique>(T))) {
      Pulls[T] = 1;
      MeanReward[T] = -Sec;
    }
  }
}

Decision PolicyEngine::initial() {
  switch (Cfg.Kind) {
  case PolicyKind::Fixed:
    return switchTo(applicable(Cfg.FixedTech) ? Cfg.FixedTech : fallback(),
                    "fixed");
  case PolicyKind::Threshold:
    // Profile-guided warm start: begin on the plan's calibrated technique
    // with the dwell pre-armed (the plan is the confirmation evidence the
    // hysteresis would otherwise have to accumulate online).
    if (Warm.HasInitial) {
      Decision D = switchTo(Warm.Initial, "plan-warm");
      DwellLeft = Warm.HoldWindows ? Warm.HoldWindows : Cfg.MinDwellWindows;
      return D;
    }
    // Optimistic start: speculation is the cheapest technique while it
    // holds (no scheduler thread, no per-iteration shadow probes); the
    // abort-rate cutoff walks it back as soon as the input disagrees.
    if (applicable(Technique::SpecCross))
      return switchTo(Technique::SpecCross, "optimistic-start");
    return switchTo(fallback(), "optimistic-start");
  case PolicyKind::Bandit: {
    // Round-robin initialization: pull every applicable arm that a warm
    // start has not already seeded, once each, in enum order, before
    // epsilon-greedy takes over.
    while (InitArm < NumTechniques &&
           (!applicable(static_cast<Technique>(InitArm)) ||
            Pulls[InitArm] > 0))
      ++InitArm;
    if (InitArm < NumTechniques)
      return switchTo(static_cast<Technique>(InitArm++), "bandit-init");
    // Every applicable arm is seeded (full calibration sweep): exploit the
    // measured best from window zero.
    unsigned Best = NumTechniques;
    for (unsigned T = 0; T < NumTechniques; ++T) {
      if (!applicable(static_cast<Technique>(T)) || Pulls[T] == 0)
        continue;
      if (Best == NumTechniques || MeanReward[T] > MeanReward[Best])
        Best = T;
    }
    return switchTo(Best < NumTechniques ? static_cast<Technique>(Best)
                                         : Technique::Barrier,
                    "plan-warm");
  }
  }
  CIP_UNREACHABLE("unknown policy kind");
}

Decision PolicyEngine::observe(const RegionStats &S) {
  assert(Started && "observe() before initial()");
  switch (Cfg.Kind) {
  case PolicyKind::Fixed:
    return hold("fixed");
  case PolicyKind::Threshold:
    return thresholdObserve(S);
  case PolicyKind::Bandit:
    return banditObserve(S);
  }
  CIP_UNREACHABLE("unknown policy kind");
}

void PolicyEngine::creditArm(const RegionStats &S) {
  const unsigned Arm = static_cast<unsigned>(S.Tech);
  const double Reward = -S.secondsPerEpoch();
  ++Pulls[Arm];
  MeanReward[Arm] +=
      (Reward - MeanReward[Arm]) / static_cast<double>(Pulls[Arm]);
}

double PolicyEngine::meanSecondsPerEpoch(Technique T) const {
  return -MeanReward[static_cast<unsigned>(T)];
}

Decision PolicyEngine::thresholdObserve(const RegionStats &S) {
  // Keep the measured-cost record current: the cutoffs nominate, the
  // measurements veto (see PolicyConfig::SlowerMargin).
  creditArm(S);

  // What would the cutoffs pick, ignoring hysteresis?
  Technique Want = Cur;
  const char *Why = "steady";
  switch (Cur) {
  case Technique::SpecCross:
    if (S.abortRate() > Cfg.AbortRateHigh) {
      Want = fallback();
      Why = "abort-rate-high";
    }
    break;
  case Technique::Domore:
    if (S.conflictDensity() < Cfg.ConflictLow &&
        applicable(Technique::SpecCross)) {
      Want = Technique::SpecCross;
      Why = "conflict-density-low";
    } else if (S.SchedulerRatioPercent > Cfg.SchedulerRatioHigh &&
               applicable(Technique::DomoreDup)) {
      Want = Technique::DomoreDup;
      Why = "scheduler-saturated";
    }
    break;
  case Technique::DomoreDup:
    if (S.conflictDensity() < Cfg.ConflictLow &&
        applicable(Technique::SpecCross)) {
      Want = Technique::SpecCross;
      Why = "conflict-density-low";
    }
    break;
  case Technique::Barrier:
    // Reached only when nothing else is applicable; nothing to revise.
    break;
  }

  if (DwellLeft)
    --DwellLeft;

  if (Want == Cur) {
    PendingCount = 0;
    return hold("steady");
  }
  if (Want != Pending) {
    Pending = Want;
    PendingReason = Why;
    PendingCount = 0;
  }
  ++PendingCount;
  if (PendingCount < Cfg.ConfirmWindows)
    return hold("confirming");
  if (DwellLeft)
    return hold("dwell");
  // Measured-cost guard: don't switch into a technique this region has
  // already measured as more than SlowerMargin slower per epoch than what
  // is running now. An unmeasured target always passes — the cutoffs are
  // the only evidence there is.
  if (Pulls[static_cast<unsigned>(Pending)] > 0) {
    const double WantSec = meanSecondsPerEpoch(Pending);
    const double CurSec = meanSecondsPerEpoch(Cur);
    if (CurSec > 0.0 && WantSec > CurSec * (1.0 + Cfg.SlowerMargin))
      return hold("measured-slower");
  }
  return switchTo(Pending, PendingReason);
}

Decision PolicyEngine::banditObserve(const RegionStats &S) {
  // Credit the arm that just ran.
  creditArm(S);

  // Finish round-robin initialization first — skipping arms a profile
  // warm start already seeded (cold runs never have a pulled arm ahead of
  // InitArm, so the extra condition is behavior-neutral without a plan).
  while (InitArm < NumTechniques &&
         (!applicable(static_cast<Technique>(InitArm)) ||
          Pulls[InitArm] > 0))
    ++InitArm;
  if (InitArm < NumTechniques)
    return switchTo(static_cast<Technique>(InitArm++), "bandit-init");

  if (Rng.nextDouble() < Cfg.Epsilon) {
    // Uniform over applicable arms.
    unsigned Live = 0;
    for (unsigned T = 0; T < NumTechniques; ++T)
      if (applicable(static_cast<Technique>(T)))
        ++Live;
    std::uint64_t Pick = Rng.nextBelow(Live);
    for (unsigned T = 0; T < NumTechniques; ++T) {
      if (!applicable(static_cast<Technique>(T)))
        continue;
      if (Pick == 0)
        return switchTo(static_cast<Technique>(T), "explore",
                        /*Explore=*/true);
      --Pick;
    }
    CIP_UNREACHABLE("applicable arm must exist");
  }

  // Exploit: best mean reward among pulled applicable arms (ties to the
  // lower enum value for determinism).
  unsigned Best = NumTechniques;
  for (unsigned T = 0; T < NumTechniques; ++T) {
    if (!applicable(static_cast<Technique>(T)) || Pulls[T] == 0)
      continue;
    if (Best == NumTechniques || MeanReward[T] > MeanReward[Best])
      Best = T;
  }
  assert(Best < NumTechniques && "no pulled arm after initialization");
  return switchTo(static_cast<Technique>(Best), "exploit");
}

//===----------------------------------------------------------------------===//
// Environment knobs
//===----------------------------------------------------------------------===//

const char *policy::parsePolicySpec(std::string_view Spec,
                                    PolicyConfig &Out) {
  static const char *const Grammar =
      "fixed:<barrier|domore|domore-dup|speccross>, threshold, or bandit";
  if (Spec == "threshold") {
    Out.Kind = PolicyKind::Threshold;
    return nullptr;
  }
  if (Spec == "bandit") {
    Out.Kind = PolicyKind::Bandit;
    return nullptr;
  }
  constexpr std::string_view FixedPrefix = "fixed:";
  if (Spec.rfind(FixedPrefix, 0) == 0) {
    Technique T;
    if (!parseTechnique(Spec.substr(FixedPrefix.size()), T))
      return Grammar;
    Out.Kind = PolicyKind::Fixed;
    Out.FixedTech = T;
    return nullptr;
  }
  return Grammar;
}

namespace {

/// Strict full-token decimal parse (no sign, no trailing junk).
bool parseDecimal(const char *S, std::uint64_t &Out) {
  if (!*S)
    return false;
  char *End = nullptr;
  const unsigned long long V = std::strtoull(S, &End, 10);
  if (!End || *End != '\0' || std::strchr(S, '-'))
    return false;
  Out = static_cast<std::uint64_t>(V);
  return true;
}

[[noreturn]] void policyEnvError(const char *Var, const char *Value,
                                 const char *Expected) {
  std::fprintf(stderr, "error: %s='%s' is invalid: expected %s\n", Var, Value,
               Expected);
  // _Exit, not exit: matches the CIP_CHAOS convention — a config error wants
  // immediate, clean-status death without running atexit/destructors while
  // runtime threads may be live.
  std::_Exit(2);
}

} // namespace

bool policy::configFromEnv(PolicyConfig &Out) {
  const char *Spec = std::getenv("CIP_POLICY");
  if (!Spec || !*Spec)
    return false;
  PolicyConfig Parsed = Out;
  if (const char *Expected = parsePolicySpec(Spec, Parsed))
    policyEnvError("CIP_POLICY", Spec, Expected);
  if (const char *WinStr = std::getenv("CIP_POLICY_WINDOW")) {
    std::uint64_t V = 0;
    if (!parseDecimal(WinStr, V) || V == 0 || V > 0xffffffffULL)
      policyEnvError("CIP_POLICY_WINDOW", WinStr,
                     "a positive epoch count per decision window");
    Parsed.WindowEpochs = static_cast<std::uint32_t>(V);
  }
  if (const char *SeedStr = std::getenv("CIP_POLICY_SEED")) {
    std::uint64_t V = 0;
    if (!parseDecimal(SeedStr, V))
      policyEnvError("CIP_POLICY_SEED", SeedStr, "a decimal seed");
    Parsed.Seed = V;
  }
  Out = Parsed;
  return true;
}

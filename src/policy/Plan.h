//===- policy/Plan.h - Profile-guided region plans -------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-region *plan files*: the profile → plan → parallelize loop
/// (DESIGN.md §13). The dissertation picks each region's technique and
/// SPECCROSS throttle from an offline profiling run (Table 5.3 measures the
/// minimum dependence distance on the train input); this subsystem is that
/// loop made first-class. A profiling run (`CIP_PROFILE=<dir>`) drives the
/// region through a short calibration sweep — one window per applicable
/// technique plus a sequential probe — walks the declared address stream
/// through a minimum-dependence-distance estimator, and emits one versioned
/// JSON plan file per region. A later run (`CIP_PLAN=<path|dir>`) loads the
/// plan and warm-starts every consumer:
///
///  * the adaptive executor starts on the plan's technique,
///  * the threshold policy pre-arms its hysteresis dwell,
///  * the bandit seeds its arm estimates from the measured costs instead of
///    round-robin pulls,
///  * speculative windows apply the plan's throttle distance and DOMORE
///    windows its MaxBatch hint,
///  * the region server's should_invoc gate weighs degradation against the
///    plan's predicted region duration instead of only instantaneous free
///    width.
///
/// File format (strict; see renderPlan/parsePlan):
///   <dir>/<region>.plan.json, one object, plan_version 4:
///   {"plan_version":4, "region":..., "threads":..., "calibration_epochs":...,
///    "initial":"<technique>", "hold_windows":...,
///    "techniques":{"barrier":{"measured":...,"sec_per_epoch":...,
///       "abort_rate":...,"conflict_density":...,"scheduler_ratio":...}, x4},
///    "sequential_sec_per_epoch":..., "predicted_sec_per_epoch":...,
///    "min_dependence_distance":..., "min_epoch_distance":...,
///    "conflicting_addresses":..., "spec_distance":..., "max_batch_hint":...,
///    "shadow_shards":..., "sched_threads":..., "ckpt_substrate":"..."}
/// Sentinel encoding: 0 means "none" for min_dependence_distance
/// (conflict-free / unmeasured), spec_distance (unthrottled),
/// max_batch_hint (engine default), shadow_shards (serial scheduler), and
/// sched_threads (single scheduler thread) — JSON carries no uint64 max.
/// ckpt_substrate's none-sentinel is the empty string; otherwise it names a
/// checkpoint substrate ("eager", "pagedirty", "softdirty").
///
/// Environment knobs (strict; garbage exits 2 like every CIP_* knob):
///   CIP_PROFILE=<dir>       calibrate and emit <dir>/<region>.plan.json
///                           (the directory must already exist)
///   CIP_PLAN=<path|dir>     warm-start from a plan file, or resolve
///                           <dir>/<region>.plan.json per region — a miss
///                           in a directory is a cold start, a named file
///                           that is missing or malformed exits 2
///
/// Layering: cip::plan lives in the policy library, strictly above the
/// engines (the CI `nm` check extends to cip::plan symbols); JSON comes
/// from telemetry/Json.h, which is compiled in every configuration
/// (CIP_TELEMETRY=0 only stubs the probe API, not the JSON support).
///
//===----------------------------------------------------------------------===//

#ifndef CIP_POLICY_PLAN_H
#define CIP_POLICY_PLAN_H

#include "policy/Policy.h"

#include <cstdint>
#include <string>

namespace cip {
namespace plan {

/// Bumped whenever the plan schema changes shape; loaders reject any other
/// version (a stale plan silently steering a new runtime is a config bug).
/// Version 2 added shadow_shards (DESIGN.md §14); version 3 added
/// sched_threads (DESIGN.md §15); version 4 added ckpt_substrate
/// (DESIGN.md §16).
inline constexpr std::uint32_t PlanVersion = 4;

/// One technique's calibration measurements. Unmeasured rows (the sweep was
/// truncated, or the technique is inapplicable to the region) keep
/// Measured = false and zeros.
struct TechniqueCalibration {
  bool Measured = false;
  double SecondsPerEpoch = 0.0;
  double AbortRate = 0.0;        ///< SPECCROSS: misspeculations per epoch
  double ConflictDensity = 0.0;  ///< DOMORE: sync conditions per iteration
  double SchedulerRatioPercent = 0.0; ///< DOMORE: scheduler busy ratio
};

/// Everything a profiling run learned about one region, and every prior a
/// consumer warm-starts from.
struct RegionPlan {
  std::uint32_t Version = PlanVersion;
  std::string Region;                ///< workload name the plan was made for
  unsigned Threads = 0;              ///< thread budget of the calibration run
  std::uint32_t CalibrationEpochs = 0; ///< epochs the sweep consumed
  policy::Technique Initial = policy::Technique::Barrier; ///< cheapest measured
  /// Threshold-policy hysteresis prior: dwell this many windows on Initial.
  std::uint32_t HoldWindows = 2;
  TechniqueCalibration Techniques[policy::NumTechniques];
  /// Sequential probe cost; the duration gate's degradation alternative.
  double SequentialSecondsPerEpoch = 0.0;
  /// Initial's calibrated cost — the plan's prediction for a planned run.
  double PredictedSecondsPerEpoch = 0.0;
  /// Dependence-distance profile (0 = conflict-free / unmeasured).
  std::uint64_t MinDependenceDistance = 0; ///< global task numbers
  std::uint32_t MinEpochDistance = 0;
  std::uint64_t ConflictingAddresses = 0;
  /// SPECCROSS throttle to apply (0 = unthrottled, the SpecConfig default).
  std::uint64_t SpecDistance = 0;
  /// DOMORE MaxBatch to apply (0 = engine default; CIP_MAX_BATCH still
  /// overrides either way).
  std::uint32_t MaxBatchHint = 0;
  /// DOMORE shadow-shard count to apply (0 = serial scheduler, the
  /// DomoreConfig default; CIP_SHADOW_SHARDS still overrides either way).
  /// Profiling recommends sharding for scheduler-bound regions.
  std::uint32_t ShadowShards = 0;
  /// DOMORE scheduler-team size to apply (0 = one scheduler thread, the
  /// DomoreConfig default; CIP_SCHED_THREADS still overrides either way).
  /// Profiling recommends a team alongside sharding for regions whose
  /// scheduler busy ratio dominates the region.
  std::uint32_t SchedThreads = 0;
  /// Checkpoint substrate to apply to speculative windows ("" = registry
  /// default; CIP_CKPT still overrides either way). Profiling measures the
  /// region's dirty ratio under an auto registry and emits what it resolved
  /// to, so warm starts skip the measurement interval (DESIGN.md §16).
  std::string CkptSubstrate;

  /// Predicted wall time of a planned / sequential run of \p Epochs epochs
  /// (0 when the plan lacks the measurement) — what the server's duration
  /// gate weighs holding against degrading.
  double predictedSeconds(std::uint32_t Epochs) const {
    return PredictedSecondsPerEpoch * static_cast<double>(Epochs);
  }
  double predictedSequentialSeconds(std::uint32_t Epochs) const {
    return SequentialSecondsPerEpoch * static_cast<double>(Epochs);
  }
};

/// Distills \p P into the policy engine's warm-start prior (see
/// policy::WarmStart for the per-policy semantics).
policy::WarmStart warmStartFrom(const RegionPlan &P);

/// Renders \p P as its canonical JSON document (newline-terminated).
std::string renderPlan(const RegionPlan &P);

/// Strictly parses one plan document: every field required, correct types,
/// exact version, all four technique rows present, no negative numbers.
/// Returns nullptr on success or a static description of what was expected
/// (same contract as policy::parsePolicySpec).
const char *parsePlan(const std::string &Text, RegionPlan &Out);

/// `<Dir>/<Region>.plan.json`.
std::string planPath(const std::string &Dir, const std::string &Region);

/// Writes \p P to planPath(Dir, P.Region). Returns true and sets \p PathOut
/// on success; false with \p Err describing the failure (unwritable
/// directory, ...).
bool savePlan(const RegionPlan &P, const std::string &Dir,
              std::string &PathOut, std::string &Err);

/// Reads and strictly parses \p Path. Returns true on success; false with
/// \p Err (missing file, parse error, version mismatch).
bool loadPlanFile(const std::string &Path, RegionPlan &Out, std::string &Err);

/// CIP_PROFILE: returns true and sets \p Dir when a profiling run is
/// requested. The value must name an existing directory; anything else
/// prints `error: CIP_PROFILE=...` and exits 2.
bool profileDirFromEnv(std::string &Dir);

/// CIP_PLAN resolution for one region: returns true with \p Out filled when
/// a plan was loaded. A directory without a plan for \p Region returns
/// false (cold start). A named file that is missing, malformed, or the
/// wrong version prints `error: CIP_PLAN=...` and exits 2. \p PathOut /
/// \p SourceOut (when non-null) receive the resolved path and "file" or
/// "dir".
bool planFromEnv(const std::string &Region, RegionPlan &Out,
                 std::string *PathOut = nullptr,
                 const char **SourceOut = nullptr);

} // namespace plan
} // namespace cip

#endif // CIP_POLICY_PLAN_H

//===- transform/SpecCrossPlanner.cpp - Region detection + Alg. 5 --------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "transform/SpecCrossPlanner.h"

#include "ir/Casting.h"

#include <algorithm>

using namespace cip;
using namespace cip::transform;
using namespace cip::analysis;
using namespace cip::ir;

SpecCrossCandidates transform::findSpecCrossRegions(const Function &F,
                                                    const CFG &G,
                                                    const DominatorTree &PDT,
                                                    const LoopInfo &LI) {
  SpecCrossCandidates Out;
  for (const Loop *OL : LI.topLevelLoops()) {
    SpecRegionPlan Plan;
    Plan.OuterLoop = OL;

    // Inner loops in program order.
    std::vector<const Loop *> Inner(OL->subLoops().begin(),
                                    OL->subLoops().end());
    if (Inner.empty()) {
      Out.Rejections.emplace_back(OL->header()->name(),
                                  "no inner loop invocations");
      continue;
    }
    std::sort(Inner.begin(), Inner.end(), [&](const Loop *A, const Loop *B) {
      return G.rpoIndex(A->header()) < G.rpoIndex(B->header());
    });

    // Every inner loop must be independently parallelizable (§4.3).
    bool Ok = true;
    for (const Loop *IL : Inner) {
      const PDG InnerPdg(F, G, PDT, LI, *IL);
      const PlanResult P = planLoop(InnerPdg, G);
      if (P.Plan == LoopPlan::None) {
        Out.Rejections.emplace_back(OL->header()->name(),
                                    "inner loop '" + IL->header()->name() +
                                        "' not parallelizable: " + P.Reason);
        Ok = false;
        break;
      }
      Plan.InnerLoops.push_back(IL);
      Plan.InnerPlans.push_back(P.Plan);
    }
    if (!Ok)
      continue;

    // Sequential glue between invocations must be duplicable: no stores or
    // calls outside the inner loops (§4.3's privatization requirement).
    for (const auto &BB : F.blocks()) {
      if (!OL->contains(BB.get()))
        continue;
      const Loop *Nest = LI.loopFor(BB.get());
      if (Nest != OL)
        continue; // inside some inner loop
      for (const auto &I : BB->instructions())
        if (I->mayWriteMemory() || I->opcode() == Opcode::Call) {
          Out.Rejections.emplace_back(
              OL->header()->name(),
              "outer-loop sequential code not duplicable ('" +
                  std::string(opcodeName(I->opcode())) + "' in block '" +
                  BB->name() + "')");
          Ok = false;
          break;
        }
      if (!Ok)
        break;
    }
    if (!Ok)
      continue;

    // Accesses to instrument: endpoints of cross-invocation memory
    // dependences per the outer-scope PDG.
    const PDG OuterPdg(F, G, PDT, LI, *OL);
    std::unordered_set<const Instruction *> Speculated;
    for (const DepEdge &E : OuterPdg.edges()) {
      if (E.Kind != DepKind::Memory || !E.CrossInvocation)
        continue;
      Speculated.insert(E.Src);
      Speculated.insert(E.Dst);
    }
    for (const Instruction *I : OuterPdg.nodes())
      if (Speculated.count(I))
        Plan.SpeculatedAccesses.push_back(I);

    Out.Regions.push_back(std::move(Plan));
  }
  return Out;
}

namespace {

std::unique_ptr<Instruction> makeCall(const std::string &Callee,
                                      std::vector<Value *> Operands) {
  auto I = std::make_unique<Instruction>(Opcode::Call, "",
                                         std::move(Operands));
  I->setCalleeName(Callee);
  return I;
}

/// Splits the CFG edge Src -> Dst with a fresh block containing a call to
/// \p Callee, preserving phis in Dst.
void splitEdgeWithCall(Module &M, Function &F, BasicBlock *Src,
                       BasicBlock *Dst, const std::string &Callee) {
  BasicBlock *New = F.createBlock(Src->name() + ".split." + Dst->name());
  New->append(makeCall(Callee, {}));
  auto Br = std::make_unique<Instruction>(Opcode::Br, "",
                                          std::vector<Value *>{});
  Br->setSuccessors({Dst});
  New->append(std::move(Br));

  Instruction *Term = Src->terminator();
  for (unsigned S = 0; S < Term->numSuccessors(); ++S)
    if (Term->successor(S) == Dst)
      Term->setSuccessor(S, New);
  for (const auto &I : Dst->instructions()) {
    if (I->opcode() != Opcode::Phi)
      break;
    I->replaceIncomingBlock(Src, New);
  }
}

} // namespace

InsertionStats transform::insertSpecCrossCalls(Module &M,
                                               const SpecRegionPlan &Plan,
                                               const CFG &G) {
  InsertionStats Stats;
  Function &F = const_cast<Function &>(G.function());

  // spec_access first: inserting before memory instructions shifts
  // positions, so do it before structural edits use positions.
  for (const Instruction *AccessC : Plan.SpeculatedAccesses) {
    auto *Access = const_cast<Instruction *>(AccessC);
    BasicBlock *BB = Access->parent();
    const std::size_t Pos = BB->positionOf(Access);
    const auto *Arr = cast<GlobalArray>(Access->operand(0));
    std::int64_t ArrayId = 0;
    for (std::size_t I = 0; I < M.arrays().size(); ++I)
      if (M.arrays()[I].get() == Arr)
        ArrayId = static_cast<std::int64_t>(I);
    BB->insert(Pos, makeCall("cip.spec.access",
                             {M.getConstant(ArrayId), Access->operand(1)}));
    ++Stats.SpecAccess;
  }

  for (const Loop *IL : Plan.InnerLoops) {
    // enter_barrier at the start of the preheader (Alg. 5 lines 12-14).
    BasicBlock *Pre = IL->preheader(G);
    assert(Pre && "SPECCROSS inner loops need preheaders");
    Pre->insert(0, makeCall("cip.spec.enter_barrier", {}));
    ++Stats.EnterBarrier;

    // enter_task at the header, after phis (lines 15-17).
    BasicBlock *Header = IL->header();
    std::size_t AfterPhis = 0;
    while (AfterPhis < Header->size() &&
           Header->instructions()[AfterPhis]->opcode() == Opcode::Phi)
      ++AfterPhis;
    Header->insert(AfterPhis, makeCall("cip.spec.enter_task", {}));
    ++Stats.EnterTask;

    // exit_task per the terminator rules (lines 18-36).
    std::vector<BasicBlock *> LoopBlocks;
    for (const BasicBlock *BB : IL->blocks())
      LoopBlocks.push_back(const_cast<BasicBlock *>(BB));
    for (BasicBlock *BB : LoopBlocks) {
      Instruction *Term = BB->terminator();
      if (!Term || !Term->isBranch())
        continue;
      bool TargetsHeader = false, TargetsOutside = false, TargetsInside =
                                                              false;
      for (unsigned S = 0; S < Term->numSuccessors(); ++S) {
        BasicBlock *T = Term->successor(S);
        if (T == Header)
          TargetsHeader = true;
        else if (IL->contains(T))
          TargetsInside = true;
        else
          TargetsOutside = true;
      }
      if (!TargetsHeader && !TargetsOutside)
        continue;
      if (Term->opcode() == Opcode::Br ||
          (TargetsHeader && TargetsOutside && !TargetsInside)) {
        // Unconditional back edge/exit, or an exit-vs-header conditional:
        // the task ends either way; insert before the terminator.
        BB->insert(BB->size() - 1, makeCall("cip.spec.exit_task", {}));
        ++Stats.ExitTask;
        continue;
      }
      // Mixed conditionals: invoke exit_task only on the leaving edge.
      for (unsigned S = 0; S < Term->numSuccessors(); ++S) {
        BasicBlock *T = Term->successor(S);
        if (T == Header || !IL->contains(T)) {
          splitEdgeWithCall(M, F, BB, T, "cip.spec.exit_task");
          ++Stats.ExitTask;
        }
      }
    }
  }
  return Stats;
}

void transform::registerNoopSpecNatives(InterpOptions &Options) {
  for (const char *Name :
       {"cip.spec.enter_barrier", "cip.spec.enter_task",
        "cip.spec.exit_task", "cip.spec.access", "cip.invocation",
        "cip.iteration"})
    Options.Natives[Name] = [](const std::vector<std::int64_t> &) {
      return 0;
    };
}

//===- transform/MTCG.h - Multi-threaded code generation -------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DOMORE's multi-threaded code generation (§3.3.2, Fig 3.7): materializes
/// a *scheduler* function and a *worker* function from a partitioned
/// two-level loop nest.
///
/// The scheduler function is the original nest with the worker partition
/// deleted; in its place the generator inserts the iteration timestamp,
/// the scheduling decision, the computeAddr-driven conflict detection, and
/// the work-message emission — all as calls into the DOMORE runtime
/// (cip.domore.* natives backed by src/domore's shadow memory and progress
/// array; see transform/DomoreDriver.h). The worker function is the
/// consume-dispatch loop: fetch a message, wait out synchronization
/// conditions, run the cloned inner-loop body against consumed live-ins,
/// publish completion.
///
/// This implements the effect of the paper's five MTCG rules for the
/// canonical nest shape the DOMORE pipeline targets (all worker-partition
/// instructions in one inner-loop block, no worker-side control flow); the
/// generator verifies the preconditions and reports infeasibility
/// otherwise, mirroring the paper's transformation guards.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TRANSFORM_MTCG_H
#define CIP_TRANSFORM_MTCG_H

#include "ir/Cloning.h"
#include "ir/LoopInfo.h"
#include "transform/DomorePartitioner.h"
#include "transform/Slicer.h"

namespace cip {
namespace transform {

/// Output of the DOMORE code generator.
struct MTCGResult {
  bool Feasible = false;
  std::string Reason;
  ir::Function *SchedulerFn = nullptr;
  ir::Function *WorkerFn = nullptr;
  /// Scheduler-side values forwarded to the worker per iteration, in the
  /// order they are produced/consumed (original-function instructions).
  std::vector<const ir::Instruction *> LiveIns;
  /// Tracked accesses whose addresses the scheduler precomputes.
  std::vector<const ir::Instruction *> TrackedAccesses;
};

/// Generates the scheduler/worker pair for \p F's nest (\p Outer, \p Inner)
/// under \p P and \p S. New functions are created inside \p M with names
/// "<F>.scheduler" and "<F>.worker"; the worker takes one extra trailing
/// argument, its thread id.
MTCGResult generateDomorePair(ir::Module &M, const ir::Function &F,
                              const ir::Loop &Outer, const ir::Loop &Inner,
                              const Partition &P, const SliceResult &S);

} // namespace transform
} // namespace cip

#endif // CIP_TRANSFORM_MTCG_H

//===- transform/MTCG.cpp - Multi-threaded code generation ---------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "transform/MTCG.h"

#include "ir/Casting.h"
#include "ir/IRBuilder.h"

#include <algorithm>
#include <unordered_map>

using namespace cip;
using namespace cip::transform;
using namespace cip::ir;

namespace {

/// Builds a Call instruction shell (not yet inserted).
std::unique_ptr<Instruction> makeCall(const std::string &Callee,
                                      std::string Name,
                                      std::vector<Value *> Operands) {
  auto I = std::make_unique<Instruction>(Opcode::Call, std::move(Name),
                                         std::move(Operands));
  I->setCalleeName(Callee);
  return I;
}

/// Index of \p A within the module's array table (the runtime's array id).
std::int64_t arrayIdOf(const Module &M, const GlobalArray *A) {
  const auto &Arrays = M.arrays();
  for (std::size_t I = 0; I < Arrays.size(); ++I)
    if (Arrays[I].get() == A)
      return static_cast<std::int64_t>(I);
  CIP_UNREACHABLE("array not owned by this module");
}

} // namespace

MTCGResult transform::generateDomorePair(Module &M, const Function &F,
                                         const Loop &Outer, const Loop &Inner,
                                         const Partition &P,
                                         const SliceResult &S) {
  MTCGResult R;

  // The communicated worker partition: address computations stay in the
  // scheduler (their results are forwarded, like &C[j] in Fig 3.7).
  std::unordered_set<const Instruction *> WorkerSet;
  for (const Instruction *I : P.Worker)
    if (!S.Slice.count(I))
      WorkerSet.insert(I);
  if (WorkerSet.empty()) {
    R.Reason = "empty worker partition";
    return R;
  }

  // Precondition checks (the canonical-shape guards).
  const BasicBlock *WB = nullptr;
  for (const Instruction *I : WorkerSet) {
    if (!Inner.contains(I->parent())) {
      R.Reason = "worker instruction outside the inner loop";
      return R;
    }
    if (I->isTerminator() || I->isBranch() || I->opcode() == Opcode::Phi) {
      R.Reason = "worker partition contains control flow";
      return R;
    }
    if (!WB)
      WB = I->parent();
    else if (WB != I->parent()) {
      R.Reason = "worker partition spans multiple blocks";
      return R;
    }
  }

  // Program-ordered worker instructions and live-ins.
  std::vector<const Instruction *> WorkerInsts;
  for (const auto &I : WB->instructions())
    if (WorkerSet.count(I.get()))
      WorkerInsts.push_back(I.get());
  std::vector<const Instruction *> LiveIns;
  std::unordered_map<const Instruction *, unsigned> LiveInIndex;
  for (const Instruction *I : WorkerInsts)
    for (const Value *Op : I->operands()) {
      const auto *Def = dyn_cast<Instruction>(Op);
      if (!Def || WorkerSet.count(Def) || LiveInIndex.count(Def))
        continue;
      LiveInIndex[Def] = static_cast<unsigned>(LiveIns.size());
      LiveIns.push_back(Def);
    }
  R.LiveIns = LiveIns;
  R.TrackedAccesses = S.TrackedAccesses;

  //===--------------------------------------------------------------------===
  // Scheduler function: clone, delete the worker partition, insert the
  // runtime calls where the worker body used to be.
  //===--------------------------------------------------------------------===
  CloneMap Map;
  Function *Sched = cloneFunction(M, F, F.name() + ".scheduler", Map);

  BasicBlock *CWB = Map.block(WB);
  // Erase worker clones back-to-front so positions stay valid; remember
  // where the last worker instruction stood.
  std::vector<std::size_t> Positions;
  for (const Instruction *I : WorkerInsts)
    Positions.push_back(WB->positionOf(I));
  std::sort(Positions.begin(), Positions.end());
  const std::size_t InsertPos =
      Positions.back() - (Positions.size() - 1);
  for (auto It = Positions.rbegin(); It != Positions.rend(); ++It)
    CWB->erase(*It);

#ifndef NDEBUG
  // Post-convergence invariant: nothing left in the scheduler uses a
  // deleted worker value.
  for (const auto &BB : Sched->blocks())
    for (const auto &I : BB->instructions())
      for (const Value *Op : I->operands())
        for (const Instruction *W : WorkerInsts)
          assert(Op != Map.Values.at(W) && "scheduler uses a worker value");
#endif

  std::size_t Pos = InsertPos;
  Instruction *Ts = CWB->insert(
      Pos++, makeCall("cip.domore.next_iter", "ts", {}));
  Instruction *Tid =
      CWB->insert(Pos++, makeCall("cip.domore.pick", "tid", {Ts}));
  for (const Instruction *A : S.TrackedAccesses) {
    const auto *Arr = cast<GlobalArray>(A->operand(0));
    Value *Idx = Map.value(A->operand(1));
    CWB->insert(Pos++,
                makeCall("cip.domore.access", "",
                         {Tid, Ts, M.getConstant(arrayIdOf(M, Arr)), Idx}));
  }
  std::vector<Value *> WorkOps = {Tid, Ts};
  for (const Instruction *L : LiveIns)
    WorkOps.push_back(Map.value(L));
  CWB->insert(Pos++, makeCall("cip.domore.emit_work", "", WorkOps));

  // Broadcast END_TOKEN before returning (§3.3.2 rule 5).
  for (const auto &BB : Sched->blocks()) {
    Instruction *Term = BB->terminator();
    if (Term && Term->opcode() == Opcode::Ret)
      BB->insert(BB->size() - 1, makeCall("cip.domore.emit_end", "", {}));
  }
  R.SchedulerFn = Sched;

  //===--------------------------------------------------------------------===
  // Worker function: the consume-dispatch skeleton around the cloned body.
  //===--------------------------------------------------------------------===
  Function *Work = M.createFunction(F.name() + ".worker", F.numArgs() + 1);
  Value *TidArg = Work->arg(F.numArgs());
  Work->arg(F.numArgs())->setName("tid");

  BasicBlock *Entry = Work->createBlock("entry");
  BasicBlock *LoopBB = Work->createBlock("loop");
  BasicBlock *WorkBB = Work->createBlock("work");
  BasicBlock *ExitBB = Work->createBlock("exit");

  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.br(LoopBB);

  B.setInsertPoint(LoopBB);
  // fetch() consumes from this worker's queue; synchronization conditions
  // are honored inside the runtime (wait on latestFinished), so the IR only
  // distinguishes WORK (1) from END (2).
  Instruction *Kind = B.call("cip.domore.fetch", {TidArg}, "kind");
  Instruction *IsEnd = B.cmp(Opcode::CmpEQ, Kind, B.constant(2), "is.end");
  B.condBr(IsEnd, ExitBB, WorkBB);

  B.setInsertPoint(WorkBB);
  Instruction *WTs = B.call("cip.domore.work_iter", {TidArg}, "ts");
  std::unordered_map<const Value *, Value *> WMap;
  for (unsigned I = 0; I < F.numArgs(); ++I)
    WMap[F.arg(I)] = Work->arg(I);
  for (unsigned K = 0; K < LiveIns.size(); ++K)
    WMap[LiveIns[K]] =
        B.call("cip.domore.live_in", {TidArg, B.constant(K)},
               "li" + std::to_string(K));
  for (const Instruction *I : WorkerInsts) {
    std::vector<Value *> Ops;
    for (Value *Op : I->operands()) {
      auto It = WMap.find(Op);
      Ops.push_back(It == WMap.end() ? Op : It->second);
    }
    auto NI = std::make_unique<Instruction>(I->opcode(), I->name(),
                                            std::move(Ops));
    NI->setCalleeName(I->calleeName());
    WMap[I] = WorkBB->append(std::move(NI));
  }
  B.setInsertPoint(WorkBB);
  B.call("cip.domore.finished", {TidArg, WTs}, "");
  B.br(LoopBB);

  B.setInsertPoint(ExitBB);
  B.ret(B.constant(0));

  R.WorkerFn = Work;
  R.Feasible = true;
  R.Reason = "ok";
  return R;
}

//===- transform/DomorePartitioner.h - Scheduler/worker split --*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DOMORE partitioning phase (§3.3.1): splits the instructions of a
/// two-level loop nest into a *scheduler* partition (the outer-loop
/// sequential code plus the inner loop's traversal instructions) and a
/// *worker* partition (the inner-loop body), then repairs the split at
/// DAG-SCC granularity so all dependences flow scheduler -> worker in a
/// pipeline:
///   (1) an SCC containing any scheduler instruction goes entirely to the
///       scheduler;
///   (2) a worker SCC with an edge back into a scheduler SCC moves to the
///       scheduler; repeat (2) until convergence.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TRANSFORM_DOMOREPARTITIONER_H
#define CIP_TRANSFORM_DOMOREPARTITIONER_H

#include "analysis/PDG.h"
#include "analysis/SCC.h"

#include <unordered_set>

namespace cip {
namespace transform {

/// The scheduler/worker split.
struct Partition {
  std::unordered_set<const ir::Instruction *> Scheduler;
  std::unordered_set<const ir::Instruction *> Worker;

  bool inScheduler(const ir::Instruction *I) const {
    return Scheduler.count(I) != 0;
  }
  bool inWorker(const ir::Instruction *I) const {
    return Worker.count(I) != 0;
  }
};

/// Computes the converged partition for the nest (\p Outer, \p Inner) whose
/// outer-scope PDG is \p G with condensation \p Dag. \p Cfg describes the
/// enclosing function.
Partition partitionDomore(const analysis::PDG &G, const analysis::DagScc &Dag,
                          const ir::Loop &Outer, const ir::Loop &Inner,
                          const ir::CFG &Cfg);

} // namespace transform
} // namespace cip

#endif // CIP_TRANSFORM_DOMOREPARTITIONER_H

//===- transform/Slicer.h - computeAddr slice extraction -------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward program slicing for the DOMORE computeAddr function (§3.3.4):
/// starting from the index operands of worker-partition memory accesses
/// that participate in carried/cross-invocation memory dependences, collect
/// the transitive SSA producers. The transformation aborts if the slice has
/// side effects (stores, unknown calls), and a performance guard rejects
/// slices whose weight rivals the worker body's — a scheduler that costs as
/// much as the workers would serialize the pipeline (the paper's guard).
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TRANSFORM_SLICER_H
#define CIP_TRANSFORM_SLICER_H

#include "analysis/PDG.h"
#include "transform/DomorePartitioner.h"

#include <string>
#include <unordered_set>
#include <vector>

namespace cip {
namespace transform {

/// Result of computeAddr slice extraction.
struct SliceResult {
  bool Feasible = false;
  std::string Reason;
  /// The memory accesses whose addresses must be precomputed.
  std::vector<const ir::Instruction *> TrackedAccesses;
  /// Instructions the scheduler must duplicate to compute the addresses.
  std::unordered_set<const ir::Instruction *> Slice;
  /// Slice weight over worker-partition weight (performance guard input).
  double WeightRatio = 0.0;
};

/// Extracts the computeAddr slice for \p P under PDG \p G.
/// \p MaxWeightRatio is the performance-guard threshold.
SliceResult sliceComputeAddr(const analysis::PDG &G, const Partition &P,
                             double MaxWeightRatio = 0.5);

} // namespace transform
} // namespace cip

#endif // CIP_TRANSFORM_SLICER_H

//===- transform/DomoreDriver.cpp - Execute MTCG output ------------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "transform/DomoreDriver.h"

#include "support/Backoff.h"
#include "support/ThreadGroup.h"

#include <mutex>

using namespace cip;
using namespace cip::transform;
using namespace cip::ir;

DomoreIROracle::DomoreIROracle(std::uint32_t NumWorkers,
                               std::size_t QueueCapacity)
    : NumWorkers(NumWorkers), Done(NumWorkers), Current(NumWorkers) {
  assert(NumWorkers > 0 && "need at least one worker");
  for (std::uint32_t W = 0; W < NumWorkers; ++W)
    Queues.push_back(std::make_unique<SPSCQueue<Msg>>(QueueCapacity));
}

DomoreIROracle::~DomoreIROracle() = default;

std::int64_t DomoreIROracle::nextIter() {
  return static_cast<std::int64_t>(NextIter++);
}

std::int64_t DomoreIROracle::pick(std::int64_t Iter) const {
  return Iter % NumWorkers; // round-robin (§3.3.3 default)
}

void DomoreIROracle::access(std::int64_t Tid, std::int64_t Iter,
                            std::int64_t ArrayId, std::int64_t Index) {
  assert(Tid >= 0 && static_cast<std::uint32_t>(Tid) < NumWorkers);
  const std::uint64_t Addr = (static_cast<std::uint64_t>(ArrayId) << 40) |
                             static_cast<std::uint64_t>(Index);
  const domore::ShadowEntry Prev = Shadow.lookup(Addr);
  if (Prev.valid() && Prev.Tid != static_cast<std::uint32_t>(Tid)) {
    Msg M;
    M.Kind = Msg::Sync;
    M.A = (static_cast<std::int64_t>(Prev.Tid) << 32) | (Prev.Iter + 1);
    Queues[static_cast<std::size_t>(Tid)]->produce(M);
    ++SyncConds;
  }
  Shadow.update(Addr, static_cast<std::uint32_t>(Tid), Iter);
}

void DomoreIROracle::emitWork(std::int64_t Tid, std::int64_t Iter,
                              std::vector<std::int64_t> LiveIns) {
  assert(Tid >= 0 && static_cast<std::uint32_t>(Tid) < NumWorkers);
  Msg M;
  M.Kind = Msg::Work;
  M.A = Iter;
  M.LiveIns = std::move(LiveIns);
  Queues[static_cast<std::size_t>(Tid)]->produce(M);
}

void DomoreIROracle::emitEnd() {
  Msg M;
  M.Kind = Msg::End;
  for (auto &Q : Queues)
    Q->produce(M);
}

std::int64_t DomoreIROracle::fetch(std::int64_t Tid) {
  assert(Tid >= 0 && static_cast<std::uint32_t>(Tid) < NumWorkers);
  auto &Q = *Queues[static_cast<std::size_t>(Tid)];
  while (true) {
    Msg M = Q.consume();
    if (M.Kind == Msg::Sync) {
      const std::uint32_t DepTid = static_cast<std::uint32_t>(M.A >> 32);
      const std::int64_t DepIter = (M.A & 0xffffffff) - 1;
      assert(DepTid != static_cast<std::uint32_t>(Tid) &&
             "self-synchronization");
      Backoff B;
      while (Done[DepTid].LatestFinished.load(std::memory_order_acquire) <
             DepIter)
        B.pause();
      continue;
    }
    Current[static_cast<std::size_t>(Tid)] = std::move(M);
    return Current[static_cast<std::size_t>(Tid)].Kind;
  }
}

std::int64_t DomoreIROracle::workIter(std::int64_t Tid) const {
  return Current[static_cast<std::size_t>(Tid)].A;
}

std::int64_t DomoreIROracle::liveIn(std::int64_t Tid, std::int64_t K) const {
  const auto &M = Current[static_cast<std::size_t>(Tid)];
  assert(K >= 0 && static_cast<std::size_t>(K) < M.LiveIns.size() &&
         "live-in index out of range");
  return M.LiveIns[static_cast<std::size_t>(K)];
}

void DomoreIROracle::finished(std::int64_t Tid, std::int64_t Iter) {
  Done[static_cast<std::size_t>(Tid)].LatestFinished.store(
      Iter, std::memory_order_release);
}

void DomoreIROracle::registerNatives(InterpOptions &Options) {
  auto &N = Options.Natives;
  N["cip.domore.next_iter"] = [this](const std::vector<std::int64_t> &) {
    return nextIter();
  };
  N["cip.domore.pick"] = [this](const std::vector<std::int64_t> &A) {
    return pick(A.at(0));
  };
  N["cip.domore.access"] = [this](const std::vector<std::int64_t> &A) {
    access(A.at(0), A.at(1), A.at(2), A.at(3));
    return 0;
  };
  N["cip.domore.emit_work"] = [this](const std::vector<std::int64_t> &A) {
    emitWork(A.at(0), A.at(1),
             std::vector<std::int64_t>(A.begin() + 2, A.end()));
    return 0;
  };
  N["cip.domore.emit_end"] = [this](const std::vector<std::int64_t> &) {
    emitEnd();
    return 0;
  };
  N["cip.domore.fetch"] = [this](const std::vector<std::int64_t> &A) {
    return fetch(A.at(0));
  };
  N["cip.domore.work_iter"] = [this](const std::vector<std::int64_t> &A) {
    return workIter(A.at(0));
  };
  N["cip.domore.live_in"] = [this](const std::vector<std::int64_t> &A) {
    return liveIn(A.at(0), A.at(1));
  };
  N["cip.domore.finished"] = [this](const std::vector<std::int64_t> &A) {
    finished(A.at(0), A.at(1));
    return 0;
  };
}

DomorePairResult transform::runDomorePair(
    const Function &Scheduler, const Function &Worker,
    const std::vector<std::int64_t> &Args, MemoryState &Mem,
    std::uint32_t NumWorkers,
    const std::unordered_map<
        std::string,
        std::function<std::int64_t(const std::vector<std::int64_t> &)>>
        &ExtraNatives) {
  DomoreIROracle Oracle(NumWorkers);
  InterpOptions Options;
  Options.Natives = ExtraNatives;
  Oracle.registerNatives(Options);

  DomorePairResult R;
  std::mutex ErrorLock;
  auto NoteFailure = [&](const InterpResult &IR) {
    std::lock_guard<std::mutex> Guard(ErrorLock);
    if (R.Error.empty())
      R.Error = IR.Error.empty() ? "interpreter did not complete" : IR.Error;
  };

  runThreads(NumWorkers + 1, [&](unsigned Idx) {
    if (Idx == NumWorkers) {
      const InterpResult IR = interpret(Scheduler, Args, Mem, Options);
      if (!IR.Completed)
        NoteFailure(IR);
      return;
    }
    std::vector<std::int64_t> WArgs = Args;
    WArgs.push_back(static_cast<std::int64_t>(Idx));
    const InterpResult IR = interpret(Worker, WArgs, Mem, Options);
    if (!IR.Completed)
      NoteFailure(IR);
  });

  R.Completed = R.Error.empty();
  R.Iterations = Oracle.iterationsScheduled();
  R.SyncConditions = Oracle.syncConditions();
  return R;
}

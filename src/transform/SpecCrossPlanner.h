//===- transform/SpecCrossPlanner.h - Region detection + Alg. 5 -*- C++ -*-=//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SPECCROSS compiler (§4.3): finds candidate regions — an outermost
/// loop whose sub-loops are each independently parallelizable (DOALL or
/// Spec-DOALL per the planner) and whose inter-loop sequential code is
/// duplicable (no stores or unknown calls) — and inserts the runtime
/// interface calls per Algorithm 5:
///
///   * cip.spec.enter_barrier at the start of each inner-loop preheader,
///   * cip.spec.enter_task at the start of each inner-loop header (after
///     phis),
///   * cip.spec.exit_task before every back edge or loop exit, with the
///     conditional-placement rules of Alg. 5 lines 18–36,
///   * cip.spec.access before every memory access participating in a
///     cross-invocation dependence.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TRANSFORM_SPECCROSSPLANNER_H
#define CIP_TRANSFORM_SPECCROSSPLANNER_H

#include "analysis/PDG.h"
#include "ir/Interp.h"
#include "ir/LoopInfo.h"
#include "transform/Parallelizer.h"

#include <string>
#include <vector>

namespace cip {
namespace transform {

/// A detected candidate region.
struct SpecRegionPlan {
  const ir::Loop *OuterLoop = nullptr;
  /// The inner loops, one epoch class each, in program order.
  std::vector<const ir::Loop *> InnerLoops;
  /// Plan for each inner loop (parallel to InnerLoops).
  std::vector<LoopPlan> InnerPlans;
  /// Memory accesses to instrument with cip.spec.access.
  std::vector<const ir::Instruction *> SpeculatedAccesses;
};

/// Result of region detection over a function.
struct SpecCrossCandidates {
  std::vector<SpecRegionPlan> Regions;
  /// Reasons for rejecting non-candidate outer loops, keyed by header name.
  std::vector<std::pair<std::string, std::string>> Rejections;
};

/// Scans \p F for SPECCROSS candidate regions.
SpecCrossCandidates findSpecCrossRegions(const ir::Function &F,
                                         const ir::CFG &G,
                                         const ir::DominatorTree &PDT,
                                         const ir::LoopInfo &LI);

/// Statistics about inserted calls, for verification.
struct InsertionStats {
  unsigned EnterBarrier = 0;
  unsigned EnterTask = 0;
  unsigned ExitTask = 0;
  unsigned SpecAccess = 0;
};

/// Inserts the cip.spec.* interface calls for \p Plan into its function
/// (Algorithm 5). Returns what was inserted. The inserted calls are
/// no-op-able natives, so instrumented code still interprets correctly.
InsertionStats insertSpecCrossCalls(ir::Module &M, const SpecRegionPlan &Plan,
                                    const ir::CFG &G);

/// Registers no-op implementations of the cip.spec.* natives (and the
/// cip.invocation/cip.iteration markers) so instrumented IR can run under
/// the plain interpreter.
void registerNoopSpecNatives(ir::InterpOptions &Options);

} // namespace transform
} // namespace cip

#endif // CIP_TRANSFORM_SPECCROSSPLANNER_H

//===- transform/DomorePartitioner.cpp - Scheduler/worker split ----------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "transform/DomorePartitioner.h"

#include "analysis/IndexExpr.h"
#include "ir/Casting.h"

using namespace cip;
using namespace cip::transform;
using namespace cip::analysis;
using namespace cip::ir;

Partition transform::partitionDomore(const PDG &G, const DagScc &Dag,
                                     const Loop &Outer, const Loop &Inner,
                                     const CFG &Cfg) {
  assert(Outer.contains(&Inner) && "inner loop must nest in outer loop");

  // Initial split: outer-loop code and the inner loop's traversal
  // instructions (induction phi/update and the exit test chain in the
  // header) are scheduler; the rest of the inner-loop body is worker.
  const auto InnerIV = findInductionVar(Inner, Cfg);
  std::unordered_set<const Instruction *> Traversal;
  if (InnerIV) {
    Traversal.insert(InnerIV->Phi);
    // The update instruction: the phi's in-loop incoming value.
    for (unsigned I = 0; I < InnerIV->Phi->numOperands(); ++I)
      if (Inner.contains(InnerIV->Phi->incomingBlock(I)))
        if (const auto *Upd =
                dyn_cast<Instruction>(InnerIV->Phi->operand(I)))
          Traversal.insert(Upd);
  }
  // Branches of the inner loop (header exit test, latch) traverse the loop.
  for (const Instruction *I : G.nodes()) {
    if (!Inner.contains(I->parent()))
      continue;
    if (I->isBranch()) {
      Traversal.insert(I);
      // And the compare feeding a conditional branch.
      if (I->opcode() == Opcode::CondBr)
        if (const auto *Cmp = dyn_cast<Instruction>(I->operand(0)))
          if (Inner.contains(Cmp->parent()))
            Traversal.insert(Cmp);
    }
  }

  // Seed per-SCC assignment: true = scheduler.
  const unsigned N = Dag.numComponents();
  std::vector<bool> SchedulerScc(N, false);
  for (const Instruction *I : G.nodes()) {
    const bool InInnerBody =
        Inner.contains(I->parent()) && !Traversal.count(I);
    if (!InInnerBody)
      SchedulerScc[Dag.componentOf(I)] = true; // rule (1) by construction
  }

  // Rule (2): a worker SCC with an edge into a scheduler SCC must become
  // scheduler, so all cross-partition dependences flow one way. Iterate to
  // convergence.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &[Src, Dst] : Dag.edges()) {
      if (!SchedulerScc[Src] && SchedulerScc[Dst]) {
        SchedulerScc[Src] = true;
        Changed = true;
      }
    }
  }

  Partition P;
  for (const Instruction *I : G.nodes()) {
    if (SchedulerScc[Dag.componentOf(I)])
      P.Scheduler.insert(I);
    else
      P.Worker.insert(I);
  }
  return P;
}

//===- transform/Parallelizer.h - Loop parallelization planning -*- C++ -*-=//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Applicability tests for the intra-invocation parallelization plans of
/// Ch. 2: DOALL (no loop-carried dependences beyond the induction update
/// and exit test), Spec-DOALL (the only carried memory dependences are
/// unprovable may-dependences worth speculating), and None. These drive
/// both the Table 5.1 "parallelization plan" decisions and the SPECCROSS
/// region detector's inner-loop check (§4.3).
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TRANSFORM_PARALLELIZER_H
#define CIP_TRANSFORM_PARALLELIZER_H

#include "analysis/PDG.h"

#include <string>

namespace cip {
namespace transform {

/// Inner-loop plan kinds.
enum class LoopPlan {
  Doall,     // provably independent iterations
  SpecDoall, // only unprovable may-dependences are carried
  None,      // provable carried dependence: needs DOACROSS/DSWP/DOMORE
};

/// A plan decision plus the reason, for diagnostics and tests.
struct PlanResult {
  LoopPlan Plan = LoopPlan::None;
  std::string Reason;
};

/// Classifies the loop underlying \p G (the PDG's scope).
/// Carried register dependences are tolerated only for the canonical
/// induction variable; carried control dependences only for the loop's own
/// exit test.
PlanResult planLoop(const analysis::PDG &G, const ir::CFG &Cfg);

} // namespace transform
} // namespace cip

#endif // CIP_TRANSFORM_PARALLELIZER_H

//===- transform/Parallelizer.cpp - Loop parallelization planning --------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "transform/Parallelizer.h"

#include "analysis/IndexExpr.h"

using namespace cip;
using namespace cip::transform;
using namespace cip::analysis;
using namespace cip::ir;

PlanResult transform::planLoop(const PDG &G, const CFG &Cfg) {
  const Loop &L = G.scope();
  const auto IV = findInductionVar(L, Cfg);

  bool SawMayDep = false;
  for (const DepEdge &E : G.edges()) {
    if (!E.LoopCarried)
      continue;
    switch (E.Kind) {
    case DepKind::Register:
      // The only tolerable carried register dependence is the induction
      // update feeding its own phi.
      if (IV && E.Dst == IV->Phi)
        continue;
      return {LoopPlan::None, "carried register dependence into '" +
                                  E.Dst->name() + "'"};
    case DepKind::Control:
      // The loop's own exit test re-controls the body each iteration.
      if (E.Src->parent() == L.header() || E.Src->isBranch())
        continue;
      return {LoopPlan::None, "carried control dependence"};
    case DepKind::Memory: {
      // Distinguish provable carried dependences from unprovable may-deps:
      // re-run the index test to see which case produced this edge.
      SawMayDep = true;
      const IndexExpr SrcIdx =
          IV ? analyzeIndex(E.Src->operand(1), L, *IV) : IndexExpr::invalid();
      const IndexExpr DstIdx =
          IV ? analyzeIndex(E.Dst->operand(1), L, *IV) : IndexExpr::invalid();
      if (testDependence(SrcIdx, DstIdx) == DepTest::Carried)
        return {LoopPlan::None, "provably carried memory dependence from '" +
                                    E.Src->name() + "' to '" + E.Dst->name() +
                                    "'"};
      continue; // a May dependence: speculation candidate
    }
    }
  }
  if (SawMayDep)
    return {LoopPlan::SpecDoall,
            "carried memory dependences are unprovable may-deps only"};
  return {LoopPlan::Doall, "no carried dependences beyond the induction"};
}

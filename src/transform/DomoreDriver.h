//===- transform/DomoreDriver.h - Execute MTCG output ----------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime backing for the cip.domore.* natives that MTCG-generated code
/// calls, plus a driver that runs a scheduler/worker function pair on real
/// threads via the interpreter. The oracle is the IR-facing face of the
/// DOMORE runtime engine: the same shadow-memory conflict detection,
/// per-worker message queues, and latestFinished progress array as
/// src/domore, addressed through native calls instead of C++ templates.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TRANSFORM_DOMOREDRIVER_H
#define CIP_TRANSFORM_DOMOREDRIVER_H

#include "domore/ShadowMemory.h"
#include "ir/Interp.h"
#include "support/Compiler.h"
#include "support/SPSCQueue.h"

#include <atomic>
#include <memory>

namespace cip {
namespace transform {

/// Shared state behind the cip.domore.* natives. One oracle drives one
/// scheduler plus NumWorkers workers.
class DomoreIROracle {
public:
  explicit DomoreIROracle(std::uint32_t NumWorkers,
                          std::size_t QueueCapacity = 4096);
  ~DomoreIROracle();

  std::uint32_t numWorkers() const { return NumWorkers; }

  /// Installs the natives into \p Options (shared by scheduler and
  /// workers).
  void registerNatives(ir::InterpOptions &Options);

  /// Statistics mirrored from the runtime engine.
  std::uint64_t iterationsScheduled() const { return NextIter; }
  std::uint64_t syncConditions() const { return SyncConds; }

private:
  struct Msg {
    enum KindTy : std::int64_t { Sync = 0, Work = 1, End = 2 };
    std::int64_t Kind = End;
    std::int64_t A = 0; // Sync: packed dep; Work: iteration number
    std::vector<std::int64_t> LiveIns;
  };

  struct alignas(CacheLineBytes) Progress {
    std::atomic<std::int64_t> LatestFinished{-1};
  };

  std::int64_t nextIter();
  std::int64_t pick(std::int64_t Iter) const;
  void access(std::int64_t Tid, std::int64_t Iter, std::int64_t ArrayId,
              std::int64_t Index);
  void emitWork(std::int64_t Tid, std::int64_t Iter,
                std::vector<std::int64_t> LiveIns);
  void emitEnd();
  std::int64_t fetch(std::int64_t Tid);
  std::int64_t workIter(std::int64_t Tid) const;
  std::int64_t liveIn(std::int64_t Tid, std::int64_t K) const;
  void finished(std::int64_t Tid, std::int64_t Iter);

  const std::uint32_t NumWorkers;
  domore::HashShadowMemory Shadow;
  std::vector<std::unique_ptr<SPSCQueue<Msg>>> Queues;
  std::vector<Progress> Done;
  std::vector<Msg> Current; // per-worker active WORK message
  std::uint64_t NextIter = 0;
  std::uint64_t SyncConds = 0;
};

/// Result of a parallel scheduler/worker run.
struct DomorePairResult {
  bool Completed = false;
  std::string Error;
  std::uint64_t Iterations = 0;
  std::uint64_t SyncConditions = 0;
};

/// Interprets \p Scheduler (with \p Args) on one thread and \p NumWorkers
/// instances of \p Worker (with \p Args plus the tid) concurrently against
/// the shared \p Mem. \p ExtraNatives are available to all threads.
DomorePairResult runDomorePair(
    const ir::Function &Scheduler, const ir::Function &Worker,
    const std::vector<std::int64_t> &Args, ir::MemoryState &Mem,
    std::uint32_t NumWorkers,
    const std::unordered_map<
        std::string,
        std::function<std::int64_t(const std::vector<std::int64_t> &)>>
        &ExtraNatives = {});

} // namespace transform
} // namespace cip

#endif // CIP_TRANSFORM_DOMOREDRIVER_H

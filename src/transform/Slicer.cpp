//===- transform/Slicer.cpp - computeAddr slice extraction ---------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "transform/Slicer.h"

#include "ir/Casting.h"

using namespace cip;
using namespace cip::transform;
using namespace cip::analysis;
using namespace cip::ir;

SliceResult transform::sliceComputeAddr(const PDG &G, const Partition &P,
                                        double MaxWeightRatio) {
  SliceResult R;

  // The accesses to track: worker memory instructions on either end of a
  // carried or cross-invocation memory dependence.
  std::unordered_set<const Instruction *> Tracked;
  for (const DepEdge &E : G.edges()) {
    if (E.Kind != DepKind::Memory || !(E.LoopCarried || E.CrossInvocation))
      continue;
    for (const Instruction *End : {E.Src, E.Dst})
      if (P.inWorker(End))
        Tracked.insert(End);
  }
  for (const Instruction *I : G.nodes())
    if (Tracked.count(I))
      R.TrackedAccesses.push_back(I);
  if (R.TrackedAccesses.empty()) {
    R.Feasible = true;
    R.Reason = "no carried memory dependences: empty computeAddr";
    return R;
  }

  // Backward data slice from the index operands.
  std::vector<const Instruction *> Work;
  auto Enqueue = [&](const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    if (I && !R.Slice.count(I) && !P.inScheduler(I)) {
      // Scheduler-partition producers are already computed in the
      // scheduler; only worker-side producers need duplication.
      R.Slice.insert(I);
      Work.push_back(I);
    }
  };
  for (const Instruction *Access : R.TrackedAccesses)
    Enqueue(Access->operand(1)); // the index operand
  while (!Work.empty()) {
    const Instruction *I = Work.back();
    Work.pop_back();
    // Side-effect check: the scheduler redundantly executes the slice, so
    // it must be pure (§3.3.4 — this is what disqualifies Fig 4.1's nest).
    if (I->mayWriteMemory()) {
      R.Reason = "slice contains a store ('" + I->name() + "')";
      return R;
    }
    if (I->opcode() == Opcode::Call) {
      R.Reason = "slice contains a call ('" + I->name() + "')";
      return R;
    }
    for (const Value *Op : I->operands())
      Enqueue(Op);
  }

  // Soundness guard: the full address chain (scheduler- and worker-side
  // producers alike) must not *read* memory the workers write — otherwise
  // the scheduler could not precompute addresses without executing the
  // workers, which is exactly what makes Fig 4.1's nest DOMORE-infeasible.
  std::unordered_set<const GlobalArray *> WorkerWrites;
  for (const Instruction *I : P.Worker)
    if (I->mayWriteMemory())
      WorkerWrites.insert(cast<GlobalArray>(I->operand(0)));
  std::unordered_set<const Instruction *> Chain;
  std::vector<const Instruction *> ChainWork;
  auto EnqueueChain = [&](const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    if (I && Chain.insert(I).second)
      ChainWork.push_back(I);
  };
  for (const Instruction *Access : R.TrackedAccesses)
    EnqueueChain(Access->operand(1));
  while (!ChainWork.empty()) {
    const Instruction *I = ChainWork.back();
    ChainWork.pop_back();
    if (I->mayReadMemory() &&
        WorkerWrites.count(cast<GlobalArray>(I->operand(0)))) {
      R.Reason = "address chain reads array '" + I->operand(0)->name() +
                 "', which workers write";
      return R;
    }
    for (const Value *Op : I->operands())
      EnqueueChain(Op);
  }

  // Performance guard: compare duplicated weight against worker weight.
  const std::size_t WorkerWeight = P.Worker.size();
  R.WeightRatio = WorkerWeight == 0
                      ? 1.0
                      : static_cast<double>(R.Slice.size()) /
                            static_cast<double>(WorkerWeight);
  if (R.WeightRatio > MaxWeightRatio) {
    R.Reason = "computeAddr too heavy relative to worker (ratio " +
               std::to_string(R.WeightRatio) + ")";
    return R;
  }
  R.Feasible = true;
  R.Reason = "ok";
  return R;
}

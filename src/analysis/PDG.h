//===- analysis/PDG.h - Program dependence graph ---------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program dependence graph over the instructions of a loop (Fig 3.1,
/// Fig 3.6(b)): register data dependences from SSA def-use chains (carried
/// when the use is a header phi fed from a latch), memory dependences from
/// pairwise may-alias queries refined by the affine index tests, and
/// control dependences from the post-dominance relation. Each edge records
/// whether it is carried by the analyzed loop and whether it is carried by
/// the analyzed loop's *parent* (a cross-invocation dependence when the
/// scope is the inner loop of a nest) — the distinction at the heart of the
/// dissertation.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_ANALYSIS_PDG_H
#define CIP_ANALYSIS_PDG_H

#include "analysis/IndexExpr.h"
#include "ir/CFG.h"
#include "ir/Dominators.h"
#include "ir/LoopInfo.h"

#include <unordered_map>
#include <vector>

namespace cip {
namespace analysis {

/// Kinds of PDG edges.
enum class DepKind { Register, Memory, Control };

/// One dependence edge.
struct DepEdge {
  const ir::Instruction *Src = nullptr;
  const ir::Instruction *Dst = nullptr;
  DepKind Kind = DepKind::Register;
  /// Carried by the scope loop (cross-iteration).
  bool LoopCarried = false;
  /// May hold across invocations of the scope loop, i.e., is carried by
  /// the scope's parent loop (cross-invocation, §2.3). Only meaningful for
  /// memory edges of a nested scope.
  bool CrossInvocation = false;
};

/// Program dependence graph of the instructions inside one loop.
class PDG {
public:
  /// Builds the PDG of \p Scope inside \p F. \p G, \p PDT (post-dominator
  /// tree), and \p LI must describe \p F.
  PDG(const ir::Function &F, const ir::CFG &G, const ir::DominatorTree &PDT,
      const ir::LoopInfo &LI, const ir::Loop &Scope);

  const std::vector<const ir::Instruction *> &nodes() const { return Nodes; }
  const std::vector<DepEdge> &edges() const { return Edges; }

  /// Edges with \p I as source.
  std::vector<const DepEdge *> edgesFrom(const ir::Instruction *I) const;

  /// True if any memory edge is carried by the scope loop.
  bool hasLoopCarriedMemoryDep() const;

  /// True if any memory edge may hold across invocations of the scope.
  bool hasCrossInvocationMemoryDep() const;

  const ir::Loop &scope() const { return Scope; }

private:
  void addRegisterEdges();
  void addMemoryEdges(const ir::CFG &G, const ir::LoopInfo &LI);
  void addControlEdges(const ir::CFG &G, const ir::DominatorTree &PDT);

  const ir::Function &F;
  const ir::Loop &Scope;
  std::vector<const ir::Instruction *> Nodes;
  std::unordered_map<const ir::Instruction *, unsigned> NodeIndex;
  std::vector<DepEdge> Edges;
};

} // namespace analysis
} // namespace cip

#endif // CIP_ANALYSIS_PDG_H

//===- analysis/IndexExpr.cpp - Affine index analysis --------------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "analysis/IndexExpr.h"

#include "ir/Casting.h"

using namespace cip;
using namespace cip::analysis;
using namespace cip::ir;

std::optional<InductionVar>
analysis::findInductionVar(const Loop &L, const CFG &G) {
  const BasicBlock *Header = L.header();
  for (const auto &Inst : Header->instructions()) {
    if (Inst->opcode() != Opcode::Phi)
      break;
    if (Inst->numOperands() != 2)
      continue;
    // One incoming from outside (init), one from a latch (step).
    for (unsigned InLoop = 0; InLoop < 2; ++InLoop) {
      const BasicBlock *In = Inst->incomingBlock(InLoop);
      if (!L.contains(In))
        continue;
      const auto *StepInst = dyn_cast<Instruction>(Inst->operand(InLoop));
      if (!StepInst || StepInst->opcode() != Opcode::Add)
        continue;
      const Value *A = StepInst->operand(0);
      const Value *B = StepInst->operand(1);
      const Constant *C = nullptr;
      if (A == Inst.get())
        C = dyn_cast<Constant>(B);
      else if (B == Inst.get())
        C = dyn_cast<Constant>(A);
      if (!C)
        continue;
      InductionVar IV;
      IV.Phi = Inst.get();
      IV.Step = C->value();
      IV.Init = Inst->operand(1 - InLoop);
      return IV;
    }
  }
  return std::nullopt;
}

namespace {

/// True if \p V is invariant with respect to \p L (defined outside it).
bool isInvariant(const Value *V, const Loop &L) {
  const auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return true; // constants, arguments, arrays
  return !L.contains(I->parent());
}

IndexExpr combine(const IndexExpr &A, const IndexExpr &B, bool Negate) {
  if (!A.Valid || !B.Valid)
    return IndexExpr::invalid();
  IndexExpr R;
  R.Valid = true;
  R.Offset = A.Offset + (Negate ? -B.Offset : B.Offset);
  // IV terms.
  R.IV = A.IV;
  R.Scale = A.Scale;
  if (B.IV) {
    const std::int64_t BS = Negate ? -B.Scale : B.Scale;
    if (!R.IV) {
      R.IV = B.IV;
      R.Scale = BS;
    } else if (R.IV == B.IV) {
      R.Scale += BS;
      if (R.Scale == 0)
        R.IV = nullptr;
    } else {
      return IndexExpr::invalid(); // two distinct IVs
    }
  }
  // Symbolic terms: at most one, and never negated (we cannot cancel).
  R.Sym = A.Sym;
  if (B.Sym) {
    if (Negate || R.Sym)
      return IndexExpr::invalid();
    R.Sym = B.Sym;
  }
  return R;
}

} // namespace

IndexExpr analysis::analyzeIndex(const Value *Index, const Loop &L,
                                 const InductionVar &IV) {
  if (const auto *C = dyn_cast<Constant>(Index))
    return IndexExpr::constant(C->value());
  if (Index == static_cast<const Value *>(IV.Phi)) {
    IndexExpr E;
    E.Valid = true;
    E.IV = IV.Phi;
    E.Scale = 1;
    return E;
  }
  if (isInvariant(Index, L)) {
    IndexExpr E;
    E.Valid = true;
    E.Sym = Index;
    return E;
  }
  const auto *I = dyn_cast<Instruction>(Index);
  if (!I)
    return IndexExpr::invalid();
  switch (I->opcode()) {
  case Opcode::Add:
    return combine(analyzeIndex(I->operand(0), L, IV),
                   analyzeIndex(I->operand(1), L, IV), /*Negate=*/false);
  case Opcode::Sub:
    return combine(analyzeIndex(I->operand(0), L, IV),
                   analyzeIndex(I->operand(1), L, IV), /*Negate=*/true);
  case Opcode::Mul: {
    const IndexExpr A = analyzeIndex(I->operand(0), L, IV);
    const IndexExpr B = analyzeIndex(I->operand(1), L, IV);
    if (!A.Valid || !B.Valid)
      return IndexExpr::invalid();
    // Only constant * affine (no symbolic products).
    const IndexExpr *K = nullptr, *X = nullptr;
    if (!A.IV && !A.Sym) {
      K = &A;
      X = &B;
    } else if (!B.IV && !B.Sym) {
      K = &B;
      X = &A;
    } else {
      return IndexExpr::invalid();
    }
    if (X->Sym)
      return IndexExpr::invalid();
    IndexExpr R;
    R.Valid = true;
    R.IV = X->IV;
    R.Scale = X->Scale * K->Offset;
    R.Offset = X->Offset * K->Offset;
    if (R.Scale == 0)
      R.IV = nullptr;
    return R;
  }
  default:
    return IndexExpr::invalid();
  }
}

DepTest analysis::testDependence(const IndexExpr &A, const IndexExpr &B) {
  if (!A.Valid || !B.Valid)
    return DepTest::May;
  // Symbolic terms must match to say anything beyond "may".
  if (A.Sym != B.Sym)
    return DepTest::May;
  // ZIV: no induction variable on either side.
  if (!A.IV && !B.IV)
    return A.Offset == B.Offset ? DepTest::Carried : DepTest::NoDep;
  // SIV over a shared IV.
  if (A.IV && B.IV && A.IV == B.IV) {
    if (A.Scale == B.Scale) {
      // Strong SIV: s*i1 + d1 == s*i2 + d2  =>  i2 - i1 = (d1-d2)/s.
      const std::int64_t Delta = A.Offset - B.Offset;
      if (A.Scale == 0)
        return Delta == 0 ? DepTest::Carried : DepTest::NoDep;
      if (Delta % A.Scale != 0)
        return DepTest::NoDep;
      return Delta == 0 ? DepTest::IntraOnly : DepTest::Carried;
    }
    return DepTest::May; // weak SIV: give up
  }
  // One side varies with the IV, the other does not: they coincide for at
  // most one iteration -> loop-carried unless divisibility rules it out.
  const IndexExpr &Var = A.IV ? A : B;
  const IndexExpr &Fix = A.IV ? B : A;
  if (Var.Scale != 0 && (Fix.Offset - Var.Offset) % Var.Scale != 0)
    return DepTest::NoDep;
  return DepTest::Carried;
}

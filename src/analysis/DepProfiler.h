//===- analysis/DepProfiler.h - Runtime dependence profiling ---*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime-information half of the compiler: interprets a loop nest and
/// measures which statically-reported dependences actually manifest. Code
/// under profiling marks structure with two well-known calls the profiler
/// intercepts:
///
///   call @cip.invocation()  — entering the next inner-loop invocation
///   call @cip.iteration()   — starting the next inner-loop iteration
///
/// Every load/store between markers is attributed to the current
/// (invocation, iteration); the profiler reports the cross-invocation
/// manifest rate (Fig 3.1's 72.4% for CG) and the minimum cross-invocation
/// dependence distance in iterations (§4.4, Table 5.3), which feed the
/// DOMORE/SPECCROSS planning decision.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_ANALYSIS_DEPPROFILER_H
#define CIP_ANALYSIS_DEPPROFILER_H

#include "ir/Interp.h"

#include <limits>

namespace cip {
namespace analysis {

/// Profile of one interpreted loop nest.
struct LoopNestProfile {
  std::uint64_t Invocations = 0;
  std::uint64_t Iterations = 0;
  /// Invocations that depended on an earlier invocation through memory.
  std::uint64_t InvocationsWithCrossDep = 0;
  /// Total cross-invocation dependences observed.
  std::uint64_t CrossInvocationDeps = 0;
  /// Closest cross-invocation dependence, in global iteration numbers.
  std::uint64_t MinIterationDistance =
      std::numeric_limits<std::uint64_t>::max();
  /// Underlying interpretation result.
  ir::InterpResult Exec;

  /// Fraction of invocations (beyond the first) that carried a dependence
  /// from an earlier invocation — the paper's "manifest rate".
  double manifestRate() const {
    return Invocations > 1 ? static_cast<double>(InvocationsWithCrossDep) /
                                 static_cast<double>(Invocations - 1)
                           : 0.0;
  }

  bool conflictFree() const {
    return MinIterationDistance == std::numeric_limits<std::uint64_t>::max();
  }
};

/// Interprets \p F (which must call the marker natives) against \p Mem and
/// returns its dependence profile. Additional natives in \p Extra are
/// honored. The run mutates \p Mem exactly like a normal execution.
LoopNestProfile profileLoopNest(
    const ir::Function &F, const std::vector<std::int64_t> &Args,
    ir::MemoryState &Mem,
    const std::unordered_map<
        std::string,
        std::function<std::int64_t(const std::vector<std::int64_t> &)>>
        &Extra = {});

} // namespace analysis
} // namespace cip

#endif // CIP_ANALYSIS_DEPPROFILER_H

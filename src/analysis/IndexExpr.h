//===- analysis/IndexExpr.h - Affine index analysis ------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SCEV-lite affine form for array indices: Scale * IV + Offset [+ Sym],
/// where IV is a recognized loop induction variable and Sym an optional
/// loop-invariant symbolic term. The PDG's memory disambiguation runs a
/// classic ZIV/strong-SIV test on these forms; anything it cannot prove it
/// reports as a may-dependence — the conservatism of static analysis that
/// Ch. 2 of the dissertation identifies as the reason runtime information
/// is needed at all.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_ANALYSIS_INDEXEXPR_H
#define CIP_ANALYSIS_INDEXEXPR_H

#include "ir/IR.h"
#include "ir/LoopInfo.h"

#include <optional>

namespace cip {
namespace analysis {

/// Recognizes the canonical induction variable of \p L: a phi in the header
/// whose in-loop incoming value is phi + constant. Returns the phi and the
/// step, or nullopt.
struct InductionVar {
  const ir::Instruction *Phi = nullptr;
  std::int64_t Step = 0;
  const ir::Value *Init = nullptr;
};

std::optional<InductionVar> findInductionVar(const ir::Loop &L,
                                             const ir::CFG &G);

/// Affine index form. Valid shapes:
///   Offset                                  (IV == null, Sym == null)
///   Scale*IV + Offset                       (Sym == null)
///   Sym + Offset, Scale*IV + Sym + Offset   (Sym loop-invariant value)
struct IndexExpr {
  bool Valid = false;
  const ir::Instruction *IV = nullptr; // the induction phi, or null
  std::int64_t Scale = 0;
  const ir::Value *Sym = nullptr; // loop-invariant symbolic term, or null
  std::int64_t Offset = 0;

  static IndexExpr invalid() { return IndexExpr(); }
  static IndexExpr constant(std::int64_t C) {
    IndexExpr E;
    E.Valid = true;
    E.Offset = C;
    return E;
  }
};

/// Analyzes \p Index as an affine expression around \p L's induction
/// variable \p IV. Values defined outside \p L are treated as symbolic
/// invariants. Returns an invalid expression when the shape is not affine.
IndexExpr analyzeIndex(const ir::Value *Index, const ir::Loop &L,
                       const InductionVar &IV);

/// Dependence classification between two accesses to the same array with
/// affine indices, relative to the analyzed loop.
enum class DepTest {
  NoDep,        // provably never the same address
  IntraOnly,    // same address only within one iteration
  Carried,      // same address across iterations (distance known or not)
  May,          // cannot disprove anything
};

/// Runs the ZIV / strong-SIV test on two index expressions.
DepTest testDependence(const IndexExpr &A, const IndexExpr &B);

} // namespace analysis
} // namespace cip

#endif // CIP_ANALYSIS_INDEXEXPR_H

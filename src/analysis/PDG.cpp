//===- analysis/PDG.cpp - Program dependence graph ------------------------==//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "analysis/PDG.h"

#include "ir/Casting.h"

using namespace cip;
using namespace cip::analysis;
using namespace cip::ir;

PDG::PDG(const Function &F, const CFG &G, const DominatorTree &PDT,
         const LoopInfo &LI, const Loop &Scope)
    : F(F), Scope(Scope) {
  assert(PDT.isPostDominatorTree() && "PDG needs the post-dominator tree");
  for (const auto &BB : F.blocks()) {
    if (!Scope.contains(BB.get()))
      continue;
    for (const auto &Inst : BB->instructions()) {
      NodeIndex[Inst.get()] = static_cast<unsigned>(Nodes.size());
      Nodes.push_back(Inst.get());
    }
  }
  addRegisterEdges();
  addMemoryEdges(G, LI);
  addControlEdges(G, PDT);
}

void PDG::addRegisterEdges() {
  for (const Instruction *Use : Nodes) {
    for (unsigned I = 0; I < Use->numOperands(); ++I) {
      const auto *Def = dyn_cast<Instruction>(Use->operand(I));
      if (!Def || !NodeIndex.count(Def))
        continue;
      DepEdge E;
      E.Src = Def;
      E.Dst = Use;
      E.Kind = DepKind::Register;
      // A header phi consuming an in-scope value through a latch edge is
      // the loop-carried register dependence (e.g., the induction update).
      E.LoopCarried = Use->opcode() == Opcode::Phi &&
                      Use->parent() == Scope.header() &&
                      Scope.contains(Use->incomingBlock(I));
      Edges.push_back(E);
    }
  }
}

void PDG::addMemoryEdges(const CFG &G, const LoopInfo &LI) {
  // Gather memory accesses with their innermost-loop affine index forms.
  struct Access {
    const Instruction *I;
    const GlobalArray *Array;
    IndexExpr Idx;       // relative to the scope loop's IV
    IndexExpr InnerIdx;  // relative to the innermost containing loop's IV
    const Loop *Inner;
  };
  const auto ScopeIV = findInductionVar(Scope, G);

  std::vector<Access> Accesses;
  for (const Instruction *I : Nodes) {
    if (!I->accessesMemory())
      continue;
    Access A;
    A.I = I;
    A.Array = cast<GlobalArray>(I->operand(0));
    const Value *Index = I->operand(1);
    A.Idx = ScopeIV ? analyzeIndex(Index, Scope, *ScopeIV)
                    : IndexExpr::invalid();
    A.Inner = LI.loopFor(I->parent());
    if (A.Inner && A.Inner != &Scope) {
      const auto InnerIV = findInductionVar(*A.Inner, G);
      A.InnerIdx = InnerIV ? analyzeIndex(Index, *A.Inner, *InnerIV)
                           : IndexExpr::invalid();
    } else {
      A.InnerIdx = A.Idx;
    }
    Accesses.push_back(A);
  }

  for (const Access &A : Accesses) {
    for (const Access &B : Accesses) {
      if (A.Array != B.Array)
        continue;
      if (!A.I->mayWriteMemory() && !B.I->mayWriteMemory())
        continue;
      if (A.I == B.I && !A.I->mayWriteMemory())
        continue;

      // Test with respect to the scope loop.
      const DepTest ScopeTest = testDependence(A.Idx, B.Idx);
      if (ScopeTest == DepTest::NoDep)
        continue;
      // Same-instruction pairs only matter when carried.
      if (A.I == B.I && ScopeTest == DepTest::IntraOnly)
        continue;
      // Intra-iteration dependences flow in program order only; carried or
      // unprovable dependences can flow either way across iterations, so
      // both ordered pairs produce an edge — that is what closes the
      // update() cycle of Fig 3.1(c) in the PDG.
      if (ScopeTest == DepTest::IntraOnly &&
          NodeIndex[A.I] > NodeIndex[B.I])
        continue;

      DepEdge E;
      E.Src = A.I;
      E.Dst = B.I;
      E.Kind = DepKind::Memory;
      E.LoopCarried =
          ScopeTest == DepTest::Carried || ScopeTest == DepTest::May;
      // Cross-invocation view. Accesses in *different* inner loops run in
      // different invocations by construction, so any dependence between
      // them crosses an invocation boundary. Within one inner loop, the
      // dependence crosses invocations if it is carried by the outer scope
      // and the inner-loop index analysis cannot localize it.
      if (A.Inner && B.Inner && A.Inner != &Scope && B.Inner != &Scope) {
        if (A.Inner != B.Inner) {
          E.CrossInvocation = true;
        } else {
          const DepTest InnerTest = testDependence(A.InnerIdx, B.InnerIdx);
          E.CrossInvocation = InnerTest != DepTest::NoDep && E.LoopCarried;
        }
      }
      Edges.push_back(E);
    }
  }
}

void PDG::addControlEdges(const CFG &G, const DominatorTree &PDT) {
  // Ferrante-style: for branch A with successor S, every block on the
  // post-dominator path from S up to (exclusive) ipdom(A) is control
  // dependent on A.
  for (const Instruction *Branch : Nodes) {
    if (!Branch->isBranch() || Branch->numSuccessors() < 2)
      continue;
    const BasicBlock *A = Branch->parent();
    const BasicBlock *StopAt = PDT.idom(A);
    for (unsigned SI = 0; SI < Branch->numSuccessors(); ++SI) {
      for (BasicBlock *B = Branch->successor(SI); B && B != StopAt;
           B = PDT.idom(B)) {
        if (!Scope.contains(B))
          break;
        for (const auto &Inst : B->instructions()) {
          if (Inst.get() == Branch)
            continue;
          DepEdge E;
          E.Src = Branch;
          E.Dst = Inst.get();
          E.Kind = DepKind::Control;
          // A branch controlling its own block's re-execution (loop exit
          // condition) is the carried control dependence.
          E.LoopCarried = B == Scope.header() || B == A;
          Edges.push_back(E);
        }
      }
    }
  }
}

std::vector<const DepEdge *>
PDG::edgesFrom(const Instruction *I) const {
  std::vector<const DepEdge *> Out;
  for (const DepEdge &E : Edges)
    if (E.Src == I)
      Out.push_back(&E);
  return Out;
}

bool PDG::hasLoopCarriedMemoryDep() const {
  for (const DepEdge &E : Edges)
    if (E.Kind == DepKind::Memory && E.LoopCarried)
      return true;
  return false;
}

bool PDG::hasCrossInvocationMemoryDep() const {
  for (const DepEdge &E : Edges)
    if (E.Kind == DepKind::Memory && E.CrossInvocation)
      return true;
  return false;
}

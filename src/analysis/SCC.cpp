//===- analysis/SCC.cpp - Strongly connected components of a PDG ---------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "analysis/SCC.h"

#include <algorithm>

using namespace cip;
using namespace cip::analysis;
using namespace cip::ir;

DagScc::DagScc(const PDG &G) {
  const auto &Nodes = G.nodes();
  std::unordered_map<const Instruction *, std::vector<const Instruction *>>
      Adj;
  std::unordered_set<const Instruction *> SelfLoop;
  for (const DepEdge &E : G.edges()) {
    if (E.Src == E.Dst) {
      SelfLoop.insert(E.Src);
      continue;
    }
    Adj[E.Src].push_back(E.Dst);
  }

  // Iterative Tarjan.
  struct NodeState {
    unsigned Index = ~0u;
    unsigned LowLink = 0;
    bool OnStack = false;
  };
  std::unordered_map<const Instruction *, NodeState> State;
  std::vector<const Instruction *> Stack;
  unsigned NextIndex = 0;

  struct WorkItem {
    const Instruction *Node;
    std::size_t ChildPos;
  };

  for (const Instruction *Root : Nodes) {
    if (State[Root].Index != ~0u)
      continue;
    std::vector<WorkItem> Work{{Root, 0}};
    State[Root].Index = State[Root].LowLink = NextIndex++;
    State[Root].OnStack = true;
    Stack.push_back(Root);
    while (!Work.empty()) {
      WorkItem &W = Work.back();
      const auto &Children = Adj[W.Node];
      if (W.ChildPos < Children.size()) {
        const Instruction *Child = Children[W.ChildPos++];
        NodeState &CS = State[Child];
        if (CS.Index == ~0u) {
          CS.Index = CS.LowLink = NextIndex++;
          CS.OnStack = true;
          Stack.push_back(Child);
          Work.push_back({Child, 0});
        } else if (CS.OnStack) {
          State[W.Node].LowLink = std::min(State[W.Node].LowLink, CS.Index);
        }
        continue;
      }
      // All children done: close the component if this is a root.
      const NodeState &NS = State[W.Node];
      if (NS.LowLink == NS.Index) {
        std::vector<const Instruction *> Comp;
        while (true) {
          const Instruction *Top = Stack.back();
          Stack.pop_back();
          State[Top].OnStack = false;
          Comp.push_back(Top);
          CompOf[Top] = static_cast<unsigned>(Components.size());
          if (Top == W.Node)
            break;
        }
        std::reverse(Comp.begin(), Comp.end());
        Cyclic.push_back(Comp.size() > 1 ||
                         SelfLoop.count(Comp.front()) != 0);
        Components.push_back(std::move(Comp));
      }
      const Instruction *Done = W.Node;
      Work.pop_back();
      if (!Work.empty())
        State[Work.back().Node].LowLink =
            std::min(State[Work.back().Node].LowLink, State[Done].LowLink);
    }
  }

  // Condensed edges, deduplicated.
  std::unordered_set<std::uint64_t> Seen;
  for (const DepEdge &E : G.edges()) {
    const unsigned A = CompOf[E.Src];
    const unsigned B = CompOf[E.Dst];
    if (A == B)
      continue;
    const std::uint64_t Key = (static_cast<std::uint64_t>(A) << 32) | B;
    if (Seen.insert(Key).second)
      DagEdges.emplace_back(A, B);
  }
}

std::vector<unsigned> DagScc::successors(unsigned C) const {
  std::vector<unsigned> Out;
  for (const auto &[A, B] : DagEdges)
    if (A == C)
      Out.push_back(B);
  return Out;
}

std::vector<unsigned> DagScc::topoOrder() const {
  const unsigned N = numComponents();
  std::vector<unsigned> InDegree(N, 0);
  for (const auto &[A, B] : DagEdges)
    ++InDegree[B];
  std::vector<unsigned> Ready;
  for (unsigned C = 0; C < N; ++C)
    if (InDegree[C] == 0)
      Ready.push_back(C);
  std::vector<unsigned> Order;
  while (!Ready.empty()) {
    const unsigned C = Ready.back();
    Ready.pop_back();
    Order.push_back(C);
    for (unsigned S : successors(C))
      if (--InDegree[S] == 0)
        Ready.push_back(S);
  }
  assert(Order.size() == N && "condensation is not acyclic");
  return Order;
}

//===- analysis/SCC.h - Strongly connected components of a PDG -*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tarjan's algorithm over PDG nodes plus the condensed DAG-SCC
/// (Fig 3.6(c)). The DOMORE partitioner assigns whole SCCs to the scheduler
/// or worker threads and repairs worker->scheduler backedges at DAG-SCC
/// granularity (§3.3.1); DSWP-style reasoning (Ch. 2) also lives at this
/// granularity.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_ANALYSIS_SCC_H
#define CIP_ANALYSIS_SCC_H

#include "analysis/PDG.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cip {
namespace analysis {

/// The SCC condensation of a PDG.
class DagScc {
public:
  explicit DagScc(const PDG &G);

  unsigned numComponents() const {
    return static_cast<unsigned>(Components.size());
  }

  /// Instructions of component \p C.
  const std::vector<const ir::Instruction *> &component(unsigned C) const {
    assert(C < Components.size() && "component index out of range");
    return Components[C];
  }

  /// Component containing \p I.
  unsigned componentOf(const ir::Instruction *I) const {
    auto It = CompOf.find(I);
    assert(It != CompOf.end() && "instruction not in the PDG");
    return It->second;
  }

  /// Condensed edges (no self-loops, deduplicated).
  const std::vector<std::pair<unsigned, unsigned>> &edges() const {
    return DagEdges;
  }

  /// Successor components of \p C in the DAG.
  std::vector<unsigned> successors(unsigned C) const;

  /// True if component \p C contains a dependence cycle (more than one
  /// instruction, or a self-edge in the PDG).
  bool isCyclic(unsigned C) const { return Cyclic[C]; }

  /// Components in a topological order of the DAG.
  std::vector<unsigned> topoOrder() const;

private:
  std::vector<std::vector<const ir::Instruction *>> Components;
  std::unordered_map<const ir::Instruction *, unsigned> CompOf;
  std::vector<std::pair<unsigned, unsigned>> DagEdges;
  std::vector<bool> Cyclic;
};

} // namespace analysis
} // namespace cip

#endif // CIP_ANALYSIS_SCC_H

//===- analysis/DepProfiler.cpp - Runtime dependence profiling -----------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "analysis/DepProfiler.h"

#include <unordered_map>

using namespace cip;
using namespace cip::analysis;
using namespace cip::ir;

LoopNestProfile analysis::profileLoopNest(
    const Function &F, const std::vector<std::int64_t> &Args,
    MemoryState &Mem,
    const std::unordered_map<
        std::string,
        std::function<std::int64_t(const std::vector<std::int64_t> &)>>
        &Extra) {
  LoopNestProfile P;

  struct LastAccess {
    std::uint64_t Invocation;
    std::uint64_t Iteration; // global
  };
  // Keyed by (array, index) — arrays are disjoint storage.
  std::unordered_map<const GlobalArray *,
                     std::unordered_map<std::int64_t, LastAccess>>
      Last;

  std::uint64_t CurInv = 0;  // 1-based once the first marker fires
  std::uint64_t CurIter = 0; // global, 1-based
  bool CurInvSawCrossDep = false;

  InterpOptions Options;
  Options.Natives = Extra;
  Options.Natives["cip.invocation"] = [&](const std::vector<std::int64_t> &) {
    if (CurInv > 0 && CurInvSawCrossDep)
      ++P.InvocationsWithCrossDep;
    ++CurInv;
    CurInvSawCrossDep = false;
    return 0;
  };
  Options.Natives["cip.iteration"] = [&](const std::vector<std::int64_t> &) {
    ++CurIter;
    return 0;
  };
  Options.AccessTrace = [&](const GlobalArray *A, std::int64_t Index, bool) {
    if (CurInv == 0 || CurIter == 0)
      return; // accesses outside the instrumented nest
    auto &PerArray = Last[A];
    auto [It, Inserted] =
        PerArray.try_emplace(Index, LastAccess{CurInv, CurIter});
    if (!Inserted) {
      if (It->second.Invocation != CurInv) {
        ++P.CrossInvocationDeps;
        CurInvSawCrossDep = true;
        P.MinIterationDistance =
            std::min(P.MinIterationDistance, CurIter - It->second.Iteration);
      }
      It->second = LastAccess{CurInv, CurIter};
    }
  };

  P.Exec = interpret(F, Args, Mem, Options);
  if (CurInv > 0 && CurInvSawCrossDep)
    ++P.InvocationsWithCrossDep;
  P.Invocations = CurInv;
  P.Iterations = CurIter;
  return P;
}

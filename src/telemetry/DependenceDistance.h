//===- telemetry/DependenceDistance.h - Min-dependence profiling -*- C++ -*-==//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A streaming minimum-dependence-distance estimator — the profiling-mode
/// analogue of the dissertation's offline dependence profiler (Table 5.3
/// sets the SPECCROSS throttle from the profiled minimum distance). The
/// plan emitter feeds it every (epoch, global task number, abstract
/// address) access a workload declares through taskAddresses() — the same
/// abstract-address artifact DOMORE's shadow probes and SPECCROSS's range
/// logs consume — and it tracks, per address, the most recent toucher,
/// yielding:
///
///  * the minimum *cross-epoch* dependence distance in global task numbers
///    (the unit speccross::SpecConfig::SpecDistance throttles in), and
///  * the minimum distance in epochs (how close the nearest conflicting
///    invocations are), plus conflict volume for density estimates.
///
/// Same-epoch re-touches are ignored: tasks within one epoch are
/// independent by the DOALL contract, so only cross-invocation pairs
/// constrain speculation.
///
/// Header-only plain code (no telemetry-library linkage) so profiling
/// works identically in CIP_TELEMETRY=0 builds.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TELEMETRY_DEPENDENCEDISTANCE_H
#define CIP_TELEMETRY_DEPENDENCEDISTANCE_H

#include <cstdint>
#include <limits>
#include <unordered_map>

namespace cip {
namespace telemetry {

class DependenceDistanceEstimator {
public:
  /// Feeds one declared access: task number \p GlobalTask (monotonically
  /// increasing across the whole region) of epoch \p Epoch touches abstract
  /// address \p Addr.
  void observe(std::uint32_t Epoch, std::uint64_t GlobalTask,
               std::uint64_t Addr) {
    auto [It, Inserted] = Last.try_emplace(Addr, Obs{Epoch, GlobalTask, false});
    if (Inserted)
      return;
    Obs &O = It->second;
    if (O.Epoch != Epoch) {
      const std::uint64_t TaskDist = GlobalTask - O.Task;
      const std::uint32_t EpochDist = Epoch - O.Epoch;
      if (TaskDist < MinTaskDist)
        MinTaskDist = TaskDist;
      if (EpochDist < MinEpochDist)
        MinEpochDist = EpochDist;
      ++Conflicts;
      if (!O.Conflicted) {
        O.Conflicted = true;
        ++ConflictAddrs;
      }
    }
    O.Epoch = Epoch;
    O.Task = GlobalTask;
  }

  /// True when no address was touched by two different epochs.
  bool conflictFree() const {
    return MinTaskDist == std::numeric_limits<std::uint64_t>::max();
  }

  /// Minimum cross-epoch distance in global task numbers; uint64 max when
  /// conflict-free (mirrors speccross::ProfileResult).
  std::uint64_t minTaskDistance() const { return MinTaskDist; }

  /// Minimum cross-epoch distance in epochs; uint32 max when conflict-free.
  std::uint32_t minEpochDistance() const { return MinEpochDist; }

  /// Total cross-epoch conflicting accesses observed.
  std::uint64_t crossEpochConflicts() const { return Conflicts; }

  /// Distinct addresses that conflicted across epochs at least once.
  std::uint64_t conflictingAddresses() const { return ConflictAddrs; }

  /// The speculative throttle distance to plan from this profile — the
  /// same rule as speccross::ProfileResult::recommendedSpecDistance: two
  /// tasks of slack below the minimum observed distance (the runtime
  /// compares against each worker's last *started* task), floored at one
  /// task of lead per worker so the region never serializes; unthrottled
  /// when conflict-free.
  std::uint64_t recommendedSpecDistance(std::uint32_t NumWorkers) const {
    if (conflictFree())
      return std::numeric_limits<std::uint64_t>::max();
    const std::uint64_t D = MinTaskDist >= 2 ? MinTaskDist - 2 : 0;
    return D < NumWorkers ? NumWorkers : D;
  }

private:
  struct Obs {
    std::uint32_t Epoch = 0;
    std::uint64_t Task = 0;
    bool Conflicted = false; ///< already counted in ConflictAddrs
  };

  std::unordered_map<std::uint64_t, Obs> Last;
  std::uint64_t MinTaskDist = std::numeric_limits<std::uint64_t>::max();
  std::uint32_t MinEpochDist = std::numeric_limits<std::uint32_t>::max();
  std::uint64_t Conflicts = 0;
  std::uint64_t ConflictAddrs = 0;
};

} // namespace telemetry
} // namespace cip

#endif // CIP_TELEMETRY_DEPENDENCEDISTANCE_H

//===- telemetry/ChromeTrace.h - chrome://tracing JSON export --*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a region's lane snapshots into the Chrome Trace Event Format
/// (the JSON-array flavour consumed by chrome://tracing and Perfetto). One
/// trace lane ("tid") per runtime thread — scheduler, workers, checker,
/// control — with epochs/iterations rendered as duration events and
/// forwarded sync conditions as flow arrows between lanes. See DESIGN.md
/// §"Telemetry" for the exact schema.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TELEMETRY_CHROMETRACE_H
#define CIP_TELEMETRY_CHROMETRACE_H

#include "telemetry/TraceRing.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cip {
namespace telemetry {

/// Renders \p Lanes as a Chrome trace JSON document. Timestamps are
/// reported in microseconds relative to \p TimeOriginNs. \p RegionName
/// becomes the process name.
std::string renderChromeTrace(const std::string &RegionName,
                              const std::vector<LaneSnapshot> &Lanes,
                              std::uint64_t TimeOriginNs);

/// Writes \p Content to \p Path. Returns true on success.
bool writeFile(const std::string &Path, const std::string &Content);

} // namespace telemetry
} // namespace cip

#endif // CIP_TELEMETRY_CHROMETRACE_H

//===- telemetry/Telemetry.h - Region telemetry facade ---------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The probe API every runtime layer instruments against. A
/// \c RegionTelemetry is created per parallel region (one DOMORE loop-nest
/// execution, one SPECCROSS region, one barrier run) with one *lane* per
/// runtime thread; probes add to the lane's padded counter row and — only
/// when tracing is enabled for the run — append events to the lane's
/// lock-free ring. At region end, \c finish() exports a Chrome trace when
/// the \c CIP_TRACE environment knob is set, and \c totals() folds the
/// counter table into the region's statistics struct.
///
/// Zero-cost-when-disabled guarantee: compiling with \c -DCIP_TELEMETRY=0
/// replaces the whole class with an empty inline stub, so instrumented
/// translation units make no calls into the telemetry library and hot
/// loops carry no probe code at all (release builds; the CI checks this
/// with `nm -u`).
/// Runtime knobs:
///   CIP_TRACE=<path-prefix>   write <prefix>.<region>.<seq>.trace.json
///   CIP_TRACE_EVENTS=<n>      per-lane ring capacity (default 32768)
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TELEMETRY_TELEMETRY_H
#define CIP_TELEMETRY_TELEMETRY_H

#ifndef CIP_TELEMETRY
#define CIP_TELEMETRY 1
#endif

#include "support/Timer.h"
#include "telemetry/Counters.h"
#include "telemetry/TraceRing.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cip {
namespace telemetry {

/// True when the library was built with telemetry probes compiled in.
bool compiledIn();

#if CIP_TELEMETRY

/// Per-region telemetry context. See file comment. Thread-safety: lanes are
/// owned by single threads (counter rows are relaxed atomics, rings are
/// single-writer); construction, finish(), and totals() belong to the
/// controlling thread after workers have joined.
class RegionTelemetry {
public:
  /// \p NumLanes runtime threads will probe this region. Tracing activates
  /// when \p ForceTracePrefix is non-null (tests) or CIP_TRACE is set.
  RegionTelemetry(const char *RegionName, unsigned NumLanes,
                  const char *ForceTracePrefix = nullptr);
  ~RegionTelemetry();

  RegionTelemetry(const RegionTelemetry &) = delete;
  RegionTelemetry &operator=(const RegionTelemetry &) = delete;

  unsigned numLanes() const { return Counters.numLanes(); }
  const std::string &regionName() const { return Name; }
  std::uint64_t originNanos() const { return OriginNs; }

  /// Names lane \p Lane for the trace viewer ("scheduler", "worker 3", ...).
  void nameLane(unsigned Lane, const std::string &LaneName);

  /// Adds \p Delta to lane \p Lane's \p C counter (relaxed, padded row).
  void add(unsigned Lane, Counter C, std::uint64_t Delta = 1) {
    Counters.add(Lane, C, Delta);
  }

  /// True when this run records trace events (CIP_TRACE set or forced).
  bool tracing() const { return !Rings.empty(); }

  void begin(unsigned Lane, EventKind K, std::uint64_t A0 = 0,
             std::uint64_t A1 = 0) {
    emit(Lane, K, EventPhase::Begin, A0, A1);
  }
  void end(unsigned Lane, EventKind K, std::uint64_t A0 = 0,
           std::uint64_t A1 = 0) {
    emit(Lane, K, EventPhase::End, A0, A1);
  }
  void instant(unsigned Lane, EventKind K, std::uint64_t A0 = 0,
               std::uint64_t A1 = 0) {
    emit(Lane, K, EventPhase::Instant, A0, A1);
  }
  /// Flow arrow source/sink (sync conditions); \p FlowId pairs them up.
  void flowBegin(unsigned Lane, std::uint64_t FlowId) {
    emit(Lane, EventKind::SyncFlow, EventPhase::FlowBegin, FlowId, 0);
  }
  void flowEnd(unsigned Lane, std::uint64_t FlowId) {
    emit(Lane, EventKind::SyncFlow, EventPhase::FlowEnd, FlowId, 0);
  }

  /// Aggregated counters across all lanes.
  CounterTotals totals() const { return Counters.totals(); }
  CounterTotals laneTotals(unsigned Lane) const {
    return Counters.laneTotals(Lane);
  }

  /// Snapshots every lane's ring (call after region threads have joined).
  std::vector<LaneSnapshot> snapshotLanes() const;

  /// Exports the Chrome trace if tracing; idempotent. Returns the path
  /// written, or an empty string when tracing is off or the write failed.
  std::string finish();

private:
  void emit(unsigned Lane, EventKind K, EventPhase P, std::uint64_t A0,
            std::uint64_t A1);

  std::string Name;
  std::uint64_t OriginNs;
  CounterTable Counters;
  std::vector<std::string> LaneNames;
  std::vector<std::unique_ptr<TraceRing>> Rings; // empty => tracing off
  std::string TracePrefix;
  bool Finished = false;
};

/// RAII probe around a (potential) wait or work interval: emits Begin/End
/// trace events and accumulates the elapsed nanoseconds into \p C.
class TimedScope {
public:
  TimedScope(RegionTelemetry &R, unsigned Lane, Counter C, EventKind K,
             std::uint64_t A0 = 0, std::uint64_t A1 = 0)
      : R(R), Lane(Lane), C(C), K(K), T0(nowNanos()) {
    R.begin(Lane, K, A0, A1);
  }
  ~TimedScope() {
    R.end(Lane, K);
    R.add(Lane, C, nowNanos() - T0);
  }

  TimedScope(const TimedScope &) = delete;
  TimedScope &operator=(const TimedScope &) = delete;

private:
  RegionTelemetry &R;
  unsigned Lane;
  Counter C;
  EventKind K;
  std::uint64_t T0;
};

#else // !CIP_TELEMETRY

/// Compiled-out stub: same interface, every member an empty inline that the
/// optimizer deletes, so instrumented objects carry no telemetry code.
class RegionTelemetry {
public:
  RegionTelemetry(const char *, unsigned, const char * = nullptr) {}

  RegionTelemetry(const RegionTelemetry &) = delete;
  RegionTelemetry &operator=(const RegionTelemetry &) = delete;

  unsigned numLanes() const { return 0; }
  std::uint64_t originNanos() const { return 0; }
  void nameLane(unsigned, const std::string &) {}
  void add(unsigned, Counter, std::uint64_t = 1) {}
  bool tracing() const { return false; }
  void begin(unsigned, EventKind, std::uint64_t = 0, std::uint64_t = 0) {}
  void end(unsigned, EventKind, std::uint64_t = 0, std::uint64_t = 0) {}
  void instant(unsigned, EventKind, std::uint64_t = 0, std::uint64_t = 0) {}
  void flowBegin(unsigned, std::uint64_t) {}
  void flowEnd(unsigned, std::uint64_t) {}
  CounterTotals totals() const { return {}; }
  CounterTotals laneTotals(unsigned) const { return {}; }
  std::vector<LaneSnapshot> snapshotLanes() const { return {}; }
  std::string finish() { return {}; }
};

class TimedScope {
public:
  TimedScope(RegionTelemetry &, unsigned, Counter, EventKind,
             std::uint64_t = 0, std::uint64_t = 0) {}

  TimedScope(const TimedScope &) = delete;
  TimedScope &operator=(const TimedScope &) = delete;
};

#endif // CIP_TELEMETRY

} // namespace telemetry
} // namespace cip

#endif // CIP_TELEMETRY_TELEMETRY_H

//===- telemetry/Telemetry.h - Region telemetry facade ---------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The probe API every runtime layer instruments against. A
/// \c RegionTelemetry is created per parallel region (one DOMORE loop-nest
/// execution, one SPECCROSS region, one barrier run) with one *lane* per
/// runtime thread; probes add to the lane's padded counter row, record
/// latency observations into the lane's histogram shard, and — only when
/// tracing is enabled for the run — append events to the lane's lock-free
/// ring. Conflict attribution rides the same object: DOMORE's shadow probe
/// feeds the (depTid -> tid) heatmap and SPECCROSS's checker files abort
/// forensics. At region end, \c finish() exports a Chrome trace when the
/// \c CIP_TRACE environment knob is set and a structured run report when
/// \c CIP_REPORT is set, and \c totals() folds the counter table into the
/// region's statistics struct.
///
/// Zero-cost-when-disabled guarantee: compiling with \c -DCIP_TELEMETRY=0
/// replaces the whole class with an empty inline stub, so instrumented
/// translation units make no calls into the telemetry library and hot
/// loops carry no probe code at all (release builds; the CI checks this
/// with `nm -u`).
/// Runtime knobs:
///   CIP_TRACE=<path-prefix>   write <prefix>.<region>.<seq>.trace.json
///   CIP_TRACE_EVENTS=<n>      per-lane ring capacity (default 32768)
///   CIP_REPORT=<path-prefix>  write <prefix>.<region>.<seq>.report.json
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TELEMETRY_TELEMETRY_H
#define CIP_TELEMETRY_TELEMETRY_H

#ifndef CIP_TELEMETRY
#define CIP_TELEMETRY 1
#endif

#include "support/Timer.h"
#include "telemetry/Counters.h"
#include "telemetry/Histogram.h"
#include "telemetry/RunReport.h"
#include "telemetry/TraceRing.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cip {
namespace telemetry {

/// True when the library was built with telemetry probes compiled in.
bool compiledIn();

#if CIP_TELEMETRY

/// Per-region telemetry context. See file comment. Thread-safety: lanes are
/// owned by single threads (counter rows are relaxed atomics, rings are
/// single-writer, histogram shards are per-lane); the heatmap and abort log
/// accept concurrent records; construction, finish(), and the aggregate
/// accessors belong to the controlling thread after workers have joined.
class RegionTelemetry {
public:
  /// \p NumLanes runtime threads will probe this region. Tracing activates
  /// when \p ForceTracePrefix is non-null (tests) or CIP_TRACE is set;
  /// reporting when \p ForceReportPrefix is non-null or CIP_REPORT is set.
  RegionTelemetry(const char *RegionName, unsigned NumLanes,
                  const char *ForceTracePrefix = nullptr,
                  const char *ForceReportPrefix = nullptr);
  ~RegionTelemetry();

  RegionTelemetry(const RegionTelemetry &) = delete;
  RegionTelemetry &operator=(const RegionTelemetry &) = delete;

  unsigned numLanes() const { return Counters.numLanes(); }
  const std::string &regionName() const { return Name; }
  std::uint64_t originNanos() const { return OriginNs; }

  /// Names lane \p Lane for the trace viewer ("scheduler", "worker 3", ...).
  void nameLane(unsigned Lane, const std::string &LaneName);
  const std::string &laneName(unsigned Lane) const {
    assert(Lane < LaneNames.size() && "lane out of range");
    return LaneNames[Lane];
  }

  /// Adds \p Delta to lane \p Lane's \p C counter (relaxed, padded row).
  void add(unsigned Lane, Counter C, std::uint64_t Delta = 1) {
    Counters.add(Lane, C, Delta);
  }

  /// Records one \p Ns observation into lane \p Lane's \p H histogram.
  void recordHist(unsigned Lane, Hist H, std::uint64_t Ns) {
    Hists.record(Lane, H, Ns);
  }

  /// Records one DOMORE sync condition: \p Tid waits on \p DepTid over
  /// abstract address \p Addr. Feeds the conflict heatmap.
  void recordConflict(std::uint32_t DepTid, std::uint32_t Tid,
                      std::uint64_t Addr) {
    Heat.record(DepTid, Tid, Addr);
  }

  /// Files one SPECCROSS misspeculation's forensics (thread-safe).
  void recordAbort(const AbortRecord &A);

  /// Files one adaptive-policy decision / technique-switch event
  /// (thread-safe; in practice the adaptive harness's control thread is the
  /// only writer). Exported as `policy_decisions` / `switch_events` in the
  /// run report.
  void recordDecision(const PolicyDecisionRecord &D);
  void recordSwitch(const SwitchEventRecord &S);

  /// Files the region's profile-guided plan provenance (at most once per
  /// region; the adaptive harness records it before finish()). Exported as
  /// the `plan` object in the run report.
  void recordPlan(const PlanRecord &P);

  /// True when this run records trace events (CIP_TRACE set or forced).
  bool tracing() const { return !Rings.empty(); }
  /// True when finish() will write a run report (CIP_REPORT set or forced).
  bool reporting() const { return !ReportPrefix.empty(); }

  void begin(unsigned Lane, EventKind K, std::uint64_t A0 = 0,
             std::uint64_t A1 = 0) {
    emit(Lane, K, EventPhase::Begin, A0, A1);
  }
  void end(unsigned Lane, EventKind K, std::uint64_t A0 = 0,
           std::uint64_t A1 = 0) {
    emit(Lane, K, EventPhase::End, A0, A1);
  }
  void instant(unsigned Lane, EventKind K, std::uint64_t A0 = 0,
               std::uint64_t A1 = 0) {
    emit(Lane, K, EventPhase::Instant, A0, A1);
  }
  /// Flow arrow source/sink (sync conditions); \p FlowId pairs them up.
  void flowBegin(unsigned Lane, std::uint64_t FlowId) {
    emit(Lane, EventKind::SyncFlow, EventPhase::FlowBegin, FlowId, 0);
  }
  void flowEnd(unsigned Lane, std::uint64_t FlowId) {
    emit(Lane, EventKind::SyncFlow, EventPhase::FlowEnd, FlowId, 0);
  }

  /// Aggregated counters across all lanes.
  CounterTotals totals() const { return Counters.totals(); }
  CounterTotals laneTotals(unsigned Lane) const {
    return Counters.laneTotals(Lane);
  }

  /// All lanes of \p H merged / one lane's contribution.
  HistogramData histTotals(Hist H) const { return Hists.data(H); }
  HistogramData laneHistTotals(unsigned Lane, Hist H) const {
    return Hists.laneData(Lane, H);
  }

  /// The conflict heatmap (aggregate accessors for reports and stats).
  const ConflictHeatmap &heatmap() const { return Heat; }
  std::vector<HeatmapPair> heatmapPairs() const { return Heat.pairs(); }

  /// Forensics for every misspeculation recorded so far (thread-safe copy).
  std::vector<AbortRecord> aborts() const;

  /// Policy decisions / switch events recorded so far (thread-safe copies).
  std::vector<PolicyDecisionRecord> decisions() const;
  std::vector<SwitchEventRecord> switches() const;

  /// The plan provenance recorded by recordPlan() (defaults — loaded=false,
  /// source="none" — when the region never consulted a plan).
  const PlanRecord &planRecord() const { return PlanInfo; }

  /// Snapshots every lane's ring (call after region threads have joined).
  std::vector<LaneSnapshot> snapshotLanes() const;

  /// Exports the Chrome trace (CIP_TRACE) and/or the run report
  /// (CIP_REPORT); idempotent. Returns the trace path written, or an empty
  /// string when tracing is off or the write failed; the report path is
  /// available via \c reportPath().
  std::string finish();

  /// Path of the run report finish() wrote ("" before finish() or when
  /// reporting is off / the write failed).
  const std::string &reportPath() const { return ReportPathWritten; }

private:
  void emit(unsigned Lane, EventKind K, EventPhase P, std::uint64_t A0,
            std::uint64_t A1);

  std::string Name;
  std::uint64_t OriginNs;
  CounterTable Counters;
  LatencyHistogram Hists;
  ConflictHeatmap Heat;
  std::vector<std::string> LaneNames;
  std::vector<std::unique_ptr<TraceRing>> Rings; // empty => tracing off
  std::string TracePrefix;
  std::string ReportPrefix; // empty => reporting off
  std::string ReportPathWritten;
  mutable std::mutex AbortsMu;
  std::vector<AbortRecord> AbortLog;
  mutable std::mutex PolicyMu;
  std::vector<PolicyDecisionRecord> DecisionLog;
  std::vector<SwitchEventRecord> SwitchLog;
  PlanRecord PlanInfo;
  bool Finished = false;
};

/// RAII probe around a (potential) wait or work interval: emits Begin/End
/// trace events and accumulates the elapsed nanoseconds into \p C — and,
/// with the \c Hist overload, records the interval into that latency
/// histogram as well.
class TimedScope {
public:
  TimedScope(RegionTelemetry &R, unsigned Lane, Counter C, EventKind K,
             std::uint64_t A0 = 0, std::uint64_t A1 = 0)
      : R(R), Lane(Lane), C(C), K(K), T0(nowNanos()) {
    R.begin(Lane, K, A0, A1);
  }
  TimedScope(RegionTelemetry &R, unsigned Lane, Counter C, Hist H,
             EventKind K, std::uint64_t A0 = 0, std::uint64_t A1 = 0)
      : R(R), Lane(Lane), C(C), K(K), H(H), HasHist(true), T0(nowNanos()) {
    R.begin(Lane, K, A0, A1);
  }
  ~TimedScope() {
    R.end(Lane, K);
    const std::uint64_t El = nowNanos() - T0;
    R.add(Lane, C, El);
    if (HasHist)
      R.recordHist(Lane, H, El);
  }

  TimedScope(const TimedScope &) = delete;
  TimedScope &operator=(const TimedScope &) = delete;

private:
  RegionTelemetry &R;
  unsigned Lane;
  Counter C;
  EventKind K;
  Hist H = Hist::WorkerWaitNs;
  bool HasHist = false;
  std::uint64_t T0;
};

/// RAII probe that records only a latency-histogram observation (no counter,
/// no trace events) — for intervals like epoch durations whose counter is a
/// count, not a nanosecond sum.
class HistScope {
public:
  HistScope(RegionTelemetry &R, unsigned Lane, Hist H)
      : R(R), Lane(Lane), H(H), T0(nowNanos()) {}
  ~HistScope() { R.recordHist(Lane, H, nowNanos() - T0); }

  HistScope(const HistScope &) = delete;
  HistScope &operator=(const HistScope &) = delete;

private:
  RegionTelemetry &R;
  unsigned Lane;
  Hist H;
  std::uint64_t T0;
};

#else // !CIP_TELEMETRY

/// Compiled-out stub: same interface, every member an empty inline that the
/// optimizer deletes, so instrumented objects carry no telemetry code.
class RegionTelemetry {
public:
  RegionTelemetry(const char *, unsigned, const char * = nullptr,
                  const char * = nullptr) {}

  RegionTelemetry(const RegionTelemetry &) = delete;
  RegionTelemetry &operator=(const RegionTelemetry &) = delete;

  unsigned numLanes() const { return 0; }
  std::uint64_t originNanos() const { return 0; }
  void nameLane(unsigned, const std::string &) {}
  std::string laneName(unsigned) const { return {}; }
  void add(unsigned, Counter, std::uint64_t = 1) {}
  void recordHist(unsigned, Hist, std::uint64_t) {}
  void recordConflict(std::uint32_t, std::uint32_t, std::uint64_t) {}
  void recordAbort(const AbortRecord &) {}
  void recordDecision(const PolicyDecisionRecord &) {}
  void recordSwitch(const SwitchEventRecord &) {}
  void recordPlan(const PlanRecord &) {}
  bool tracing() const { return false; }
  bool reporting() const { return false; }
  void begin(unsigned, EventKind, std::uint64_t = 0, std::uint64_t = 0) {}
  void end(unsigned, EventKind, std::uint64_t = 0, std::uint64_t = 0) {}
  void instant(unsigned, EventKind, std::uint64_t = 0, std::uint64_t = 0) {}
  void flowBegin(unsigned, std::uint64_t) {}
  void flowEnd(unsigned, std::uint64_t) {}
  CounterTotals totals() const { return {}; }
  CounterTotals laneTotals(unsigned) const { return {}; }
  HistogramData histTotals(Hist) const { return {}; }
  HistogramData laneHistTotals(unsigned, Hist) const { return {}; }
  std::vector<HeatmapPair> heatmapPairs() const { return {}; }
  std::vector<AbortRecord> aborts() const { return {}; }
  std::vector<PolicyDecisionRecord> decisions() const { return {}; }
  std::vector<SwitchEventRecord> switches() const { return {}; }
  PlanRecord planRecord() const { return {}; }
  std::vector<LaneSnapshot> snapshotLanes() const { return {}; }
  std::string finish() { return {}; }
  std::string reportPath() const { return {}; }
};

class TimedScope {
public:
  TimedScope(RegionTelemetry &, unsigned, Counter, EventKind,
             std::uint64_t = 0, std::uint64_t = 0) {}
  TimedScope(RegionTelemetry &, unsigned, Counter, Hist, EventKind,
             std::uint64_t = 0, std::uint64_t = 0) {}

  TimedScope(const TimedScope &) = delete;
  TimedScope &operator=(const TimedScope &) = delete;
};

class HistScope {
public:
  HistScope(RegionTelemetry &, unsigned, Hist) {}

  HistScope(const HistScope &) = delete;
  HistScope &operator=(const HistScope &) = delete;
};

#endif // CIP_TELEMETRY

} // namespace telemetry
} // namespace cip

#endif // CIP_TELEMETRY_TELEMETRY_H

//===- telemetry/Json.cpp - Minimal JSON writer and parser ---------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Json.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace cip;
using namespace cip::telemetry;

std::string json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void json::Writer::value(std::uint64_t V) {
  pre();
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  Out += Buf;
}

void json::Writer::value(std::int64_t V) {
  pre();
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%" PRId64, V);
  Out += Buf;
}

void json::Writer::value(double V) {
  pre();
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  Out += Buf;
}

namespace {

/// Recursive-descent parser over a NUL-free string view.
class Parser {
public:
  Parser(const std::string &Text, std::string *Err)
      : S(Text.c_str()), End(S + Text.size()), Err(Err) {}

  bool run(json::Value &Out) {
    if (!parseValue(Out))
      return false;
    skipWs();
    if (S != End)
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  bool fail(const char *Msg) {
    if (Err)
      *Err = Msg;
    return false;
  }

  void skipWs() {
    while (S != End && (*S == ' ' || *S == '\t' || *S == '\n' || *S == '\r'))
      ++S;
  }

  bool literal(const char *Lit) {
    const char *P = S;
    while (*Lit) {
      if (P == End || *P != *Lit)
        return false;
      ++P;
      ++Lit;
    }
    S = P;
    return true;
  }

  bool parseString(std::string &Out) {
    if (S == End || *S != '"')
      return fail("expected string");
    ++S;
    while (S != End && *S != '"') {
      if (*S == '\\') {
        ++S;
        if (S == End)
          return fail("unterminated escape");
        switch (*S) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          // Decode \uXXXX as a raw code unit; enough for the ASCII-only
          // escapes the telemetry writer produces.
          if (End - S < 5)
            return fail("truncated \\u escape");
          char Hex[5] = {S[1], S[2], S[3], S[4], 0};
          char *HexEnd = nullptr;
          const unsigned long CP = std::strtoul(Hex, &HexEnd, 16);
          if (HexEnd != Hex + 4)
            return fail("bad \\u escape");
          if (CP < 0x80) {
            Out += static_cast<char>(CP);
          } else {
            Out += static_cast<char>(0xC0 | (CP >> 6));
            Out += static_cast<char>(0x80 | (CP & 0x3F));
          }
          S += 4;
          break;
        }
        default:
          return fail("unknown escape");
        }
        ++S;
      } else {
        Out += *S++;
      }
    }
    if (S == End)
      return fail("unterminated string");
    ++S; // closing quote
    return true;
  }

  bool parseValue(json::Value &Out) {
    skipWs();
    if (S == End)
      return fail("unexpected end of input");
    switch (*S) {
    case '{': {
      ++S;
      Out.T = json::Value::Type::Object;
      skipWs();
      if (S != End && *S == '}') {
        ++S;
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (S == End || *S != ':')
          return fail("expected ':' in object");
        ++S;
        json::Value V;
        if (!parseValue(V))
          return false;
        Out.Object.emplace_back(std::move(Key), std::move(V));
        skipWs();
        if (S != End && *S == ',') {
          ++S;
          continue;
        }
        if (S != End && *S == '}') {
          ++S;
          return true;
        }
        return fail("expected ',' or '}' in object");
      }
    }
    case '[': {
      ++S;
      Out.T = json::Value::Type::Array;
      skipWs();
      if (S != End && *S == ']') {
        ++S;
        return true;
      }
      while (true) {
        json::Value V;
        if (!parseValue(V))
          return false;
        Out.Array.push_back(std::move(V));
        skipWs();
        if (S != End && *S == ',') {
          ++S;
          continue;
        }
        if (S != End && *S == ']') {
          ++S;
          return true;
        }
        return fail("expected ',' or ']' in array");
      }
    }
    case '"':
      Out.T = json::Value::Type::String;
      return parseString(Out.String);
    case 't':
      if (!literal("true"))
        return fail("bad literal");
      Out.T = json::Value::Type::Bool;
      Out.Bool = true;
      return true;
    case 'f':
      if (!literal("false"))
        return fail("bad literal");
      Out.T = json::Value::Type::Bool;
      Out.Bool = false;
      return true;
    case 'n':
      if (!literal("null"))
        return fail("bad literal");
      Out.T = json::Value::Type::Null;
      return true;
    default: {
      char *NumEnd = nullptr;
      const double D = std::strtod(S, &NumEnd);
      if (NumEnd == S || NumEnd > End)
        return fail("expected value");
      Out.T = json::Value::Type::Number;
      Out.Number = D;
      S = NumEnd;
      return true;
    }
    }
  }

  const char *S;
  const char *End;
  std::string *Err;
};

} // namespace

bool json::parse(const std::string &Text, Value &Out, std::string *Err) {
  return Parser(Text, Err).run(Out);
}

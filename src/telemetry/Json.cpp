//===- telemetry/Json.cpp - Minimal JSON writer and parser ---------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Json.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace cip;
using namespace cip::telemetry;

std::string json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void json::Writer::value(std::uint64_t V) {
  pre();
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  Out += Buf;
}

void json::Writer::value(std::int64_t V) {
  pre();
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%" PRId64, V);
  Out += Buf;
}

void json::Writer::value(double V) {
  pre();
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  Out += Buf;
}

namespace {

/// Recursive-descent parser over a NUL-free string view.
class Parser {
public:
  Parser(const std::string &Text, std::string *Err)
      : S(Text.c_str()), End(S + Text.size()), Err(Err) {}

  bool run(json::Value &Out) {
    if (!parseValue(Out))
      return false;
    skipWs();
    if (S != End)
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  bool fail(const char *Msg) {
    if (Err)
      *Err = Msg;
    return false;
  }

  void skipWs() {
    while (S != End && (*S == ' ' || *S == '\t' || *S == '\n' || *S == '\r'))
      ++S;
  }

  bool literal(const char *Lit) {
    const char *P = S;
    while (*Lit) {
      if (P == End || *P != *Lit)
        return false;
      ++P;
      ++Lit;
    }
    S = P;
    return true;
  }

  /// Reads exactly four hex digits at \p P (bounds-checked against End)
  /// into \p Out. Unlike strtoul, rejects signs, whitespace, and "0x".
  bool hex4(const char *P, std::uint32_t &Out) const {
    if (End - P < 4)
      return false;
    std::uint32_t V = 0;
    for (int I = 0; I < 4; ++I) {
      const char C = P[I];
      std::uint32_t D = 0;
      if (C >= '0' && C <= '9')
        D = static_cast<std::uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        D = static_cast<std::uint32_t>(C - 'a') + 10;
      else if (C >= 'A' && C <= 'F')
        D = static_cast<std::uint32_t>(C - 'A') + 10;
      else
        return false;
      V = (V << 4) | D;
    }
    Out = V;
    return true;
  }

  static void appendUtf8(std::string &Out, std::uint32_t CP) {
    if (CP < 0x80) {
      Out += static_cast<char>(CP);
    } else if (CP < 0x800) {
      Out += static_cast<char>(0xC0 | (CP >> 6));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    } else if (CP < 0x10000) {
      Out += static_cast<char>(0xE0 | (CP >> 12));
      Out += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (CP >> 18));
      Out += static_cast<char>(0x80 | ((CP >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    }
  }

  bool parseString(std::string &Out) {
    if (S == End || *S != '"')
      return fail("expected string");
    ++S;
    while (S != End && *S != '"') {
      if (*S == '\\') {
        ++S;
        if (S == End)
          return fail("unterminated escape");
        switch (*S) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          // \uXXXX with strict hex validation (strtoul would accept signs
          // and whitespace), surrogate-pair decoding, and full UTF-8
          // output. Lone surrogates are malformed JSON text and rejected.
          std::uint32_t CP = 0;
          if (!hex4(S + 1, CP))
            return fail("bad \\u escape");
          S += 4;
          if (CP >= 0xDC00 && CP <= 0xDFFF)
            return fail("lone low surrogate in \\u escape");
          if (CP >= 0xD800 && CP <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            std::uint32_t Lo = 0;
            if (End - S < 7 || S[1] != '\\' || S[2] != 'u' || !hex4(S + 3, Lo))
              return fail("unpaired high surrogate in \\u escape");
            if (Lo < 0xDC00 || Lo > 0xDFFF)
              return fail("unpaired high surrogate in \\u escape");
            CP = 0x10000 + ((CP - 0xD800) << 10) + (Lo - 0xDC00);
            S += 6;
          }
          appendUtf8(Out, CP);
          break;
        }
        default:
          return fail("unknown escape");
        }
        ++S;
      } else {
        Out += *S++;
      }
    }
    if (S == End)
      return fail("unterminated string");
    ++S; // closing quote
    return true;
  }

  bool parseValue(json::Value &Out) {
    skipWs();
    if (S == End)
      return fail("unexpected end of input");
    switch (*S) {
    case '{': {
      ++S;
      Out.T = json::Value::Type::Object;
      skipWs();
      if (S != End && *S == '}') {
        ++S;
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (S == End || *S != ':')
          return fail("expected ':' in object");
        ++S;
        json::Value V;
        if (!parseValue(V))
          return false;
        Out.Object.emplace_back(std::move(Key), std::move(V));
        skipWs();
        if (S != End && *S == ',') {
          ++S;
          continue;
        }
        if (S != End && *S == '}') {
          ++S;
          return true;
        }
        return fail("expected ',' or '}' in object");
      }
    }
    case '[': {
      ++S;
      Out.T = json::Value::Type::Array;
      skipWs();
      if (S != End && *S == ']') {
        ++S;
        return true;
      }
      while (true) {
        json::Value V;
        if (!parseValue(V))
          return false;
        Out.Array.push_back(std::move(V));
        skipWs();
        if (S != End && *S == ',') {
          ++S;
          continue;
        }
        if (S != End && *S == ']') {
          ++S;
          return true;
        }
        return fail("expected ',' or ']' in array");
      }
    }
    case '"':
      Out.T = json::Value::Type::String;
      return parseString(Out.String);
    case 't':
      if (!literal("true"))
        return fail("bad literal");
      Out.T = json::Value::Type::Bool;
      Out.Bool = true;
      return true;
    case 'f':
      if (!literal("false"))
        return fail("bad literal");
      Out.T = json::Value::Type::Bool;
      Out.Bool = false;
      return true;
    case 'n':
      if (!literal("null"))
        return fail("bad literal");
      Out.T = json::Value::Type::Null;
      return true;
    default: {
      char *NumEnd = nullptr;
      const double D = std::strtod(S, &NumEnd);
      if (NumEnd == S || NumEnd > End)
        return fail("expected value");
      Out.T = json::Value::Type::Number;
      Out.Number = D;
      S = NumEnd;
      return true;
    }
    }
  }

  const char *S;
  const char *End;
  std::string *Err;
};

} // namespace

bool json::parse(const std::string &Text, Value &Out, std::string *Err) {
  return Parser(Text, Err).run(Out);
}

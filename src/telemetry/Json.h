//===- telemetry/Json.h - Minimal JSON writer and parser -------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dependency-free JSON support for the telemetry exporters: a streaming
/// writer (used to emit Chrome traces and bench summary rows) and a small
/// recursive-descent parser (used by tests and validators to check that
/// what we emit actually parses and matches the documented schema). Not a
/// general-purpose JSON library — just enough for the telemetry formats,
/// kept strict on output and tolerant on input.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TELEMETRY_JSON_H
#define CIP_TELEMETRY_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cip {
namespace telemetry {
namespace json {

/// Escapes \p S for inclusion inside a JSON string literal.
std::string escape(const std::string &S);

/// Streaming JSON writer with automatic comma management. Usage:
///   Writer W;
///   W.beginObject(); W.key("x"); W.value(1u); W.endObject();
///   file << W.str();
class Writer {
public:
  void beginObject() {
    pre();
    Out += '{';
    Nested.push_back(false);
  }
  void endObject() {
    Out += '}';
    Nested.pop_back();
  }
  void beginArray() {
    pre();
    Out += '[';
    Nested.push_back(false);
  }
  void endArray() {
    Out += ']';
    Nested.pop_back();
  }
  void key(const std::string &K) {
    pre();
    Out += '"';
    Out += escape(K);
    Out += "\":";
    // The value that follows must not get a comma of its own.
    Nested.back() = false;
  }
  void value(const std::string &S) {
    pre();
    Out += '"';
    Out += escape(S);
    Out += '"';
  }
  void value(const char *S) { value(std::string(S)); }
  void value(std::uint64_t V);
  void value(std::int64_t V);
  void value(unsigned V) { value(static_cast<std::uint64_t>(V)); }
  void value(int V) { value(static_cast<std::int64_t>(V)); }
  void value(double V);
  void value(bool B) {
    pre();
    Out += B ? "true" : "false";
  }

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void pre() {
    if (!Nested.empty()) {
      if (Nested.back())
        Out += ',';
      Nested.back() = true;
    }
  }

  std::string Out;
  std::vector<bool> Nested;
};

/// A parsed JSON value (tree-owning; object keys keep insertion order).
struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type T = Type::Null;
  bool Bool = false;
  double Number = 0.0;
  std::string String;
  std::vector<Value> Array;
  std::vector<std::pair<std::string, Value>> Object;

  bool isObject() const { return T == Type::Object; }
  bool isArray() const { return T == Type::Array; }
  bool isNumber() const { return T == Type::Number; }
  bool isString() const { return T == Type::String; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value *find(const std::string &Key) const {
    if (T != Type::Object)
      return nullptr;
    for (const auto &[K, V] : Object)
      if (K == Key)
        return &V;
    return nullptr;
  }
};

/// Parses \p Text into \p Out. Returns false (and sets \p Err when given)
/// on malformed input or trailing garbage.
bool parse(const std::string &Text, Value &Out, std::string *Err = nullptr);

} // namespace json
} // namespace telemetry
} // namespace cip

#endif // CIP_TELEMETRY_JSON_H

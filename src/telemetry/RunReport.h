//===- telemetry/RunReport.h - Conflict attribution & run reports -*- C++ -*-=//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conflict *attribution* for the two runtime engines, plus the per-region
/// structured run report that merges it with the counters and histograms.
///
///  * \c ConflictHeatmap — DOMORE's shadow-memory probe records each
///    detected conflict as a (depTid -> tid) sync-condition pair and hashes
///    the conflicting abstract address into one of 256 buckets, so a run
///    report can say *which worker pairs* serialize on each other and
///    *which addresses* are hot, not just how many conflicts there were.
///  * \c AbortRecord — SPECCROSS misspeculation forensics: the epoch/task
///    pair whose signatures overlapped, where in the signature they
///    overlapped, whether an exact min/max-range recheck confirms the
///    conflict (a Bloom-filter false positive shows up here as
///    ExactConfirmed == false), and how much speculative work the rollback
///    threw away (Fig 5.3's misspeculation penalty, itemized).
///
/// With the \c CIP_REPORT=<prefix> environment knob set, every region's
/// \c RegionTelemetry::finish() writes <prefix>.<region>.<seq>.report.json
/// merging counters, histograms, heatmap, and forensics;
/// tools/cip_report.py renders it human-readable and
/// tools/validate_bench_json.py --report checks the schema (documented in
/// DESIGN.md §8).
///
/// Everything in this header is plain data or inline code so that the
/// \c CIP_TELEMETRY=0 stub configuration can keep these types in statistics
/// structs without linking the telemetry library.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TELEMETRY_RUNREPORT_H
#define CIP_TELEMETRY_RUNREPORT_H

#ifndef CIP_TELEMETRY
#define CIP_TELEMETRY 1
#endif

#include "support/Compiler.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace cip {
namespace telemetry {

//===----------------------------------------------------------------------===//
// DOMORE conflict heatmap
//===----------------------------------------------------------------------===//

/// One (depTid -> tid) cell of the conflict heatmap: \c Count sync
/// conditions made worker \c Tid wait on worker \c DepTid.
struct HeatmapPair {
  std::uint32_t DepTid = 0;
  std::uint32_t Tid = 0;
  std::uint64_t Count = 0;
};

/// One hashed address bucket of the heatmap, with one representative
/// (most recently conflicting) abstract address.
struct HeatmapAddrBucket {
  std::uint32_t Bucket = 0;
  std::uint64_t Count = 0;
  std::uint64_t ExampleAddr = 0;
};

/// Records (depTid -> tid, addr) conflict triples. Counts are relaxed
/// atomics so the duplicated-scheduler DOMORE variant (where every worker
/// records its own waits) needs no locking; conflicts are orders of
/// magnitude rarer than iterations, so contention is immaterial.
class ConflictHeatmap {
public:
  static constexpr unsigned NumAddrBuckets = 256;

  explicit ConflictHeatmap(unsigned NumTids)
      : N(NumTids), PairCounts(static_cast<std::size_t>(NumTids) * NumTids),
        Addr(NumAddrBuckets) {}

  ConflictHeatmap(const ConflictHeatmap &) = delete;
  ConflictHeatmap &operator=(const ConflictHeatmap &) = delete;

  unsigned numTids() const { return N; }

  /// Records one sync condition: \p Tid will wait on \p DepTid because both
  /// touch abstract address \p A.
  void record(std::uint32_t DepTid, std::uint32_t Tid, std::uint64_t A) {
    assert(DepTid < N && Tid < N && "tid out of range");
    PairCounts[static_cast<std::size_t>(DepTid) * N + Tid].fetch_add(
        1, std::memory_order_relaxed);
    AddrSlot &S = Addr[addrBucketOf(A)];
    S.Count.fetch_add(1, std::memory_order_relaxed);
    S.Last.store(A, std::memory_order_relaxed);
  }

  /// Total recorded conflicts — by construction equal to the region's
  /// sync-condition count (the tests reconcile the two).
  std::uint64_t total() const {
    std::uint64_t T = 0;
    for (const auto &C : PairCounts)
      T += C.load(std::memory_order_relaxed);
    return T;
  }

  /// Nonzero cells, hottest first (ties by (depTid, tid) for determinism).
  std::vector<HeatmapPair> pairs() const {
    std::vector<HeatmapPair> Out;
    for (std::uint32_t D = 0; D < N; ++D)
      for (std::uint32_t T = 0; T < N; ++T) {
        const std::uint64_t C =
            PairCounts[static_cast<std::size_t>(D) * N + T].load(
                std::memory_order_relaxed);
        if (C)
          Out.push_back(HeatmapPair{D, T, C});
      }
    std::sort(Out.begin(), Out.end(),
              [](const HeatmapPair &A, const HeatmapPair &B) {
                if (A.Count != B.Count)
                  return A.Count > B.Count;
                if (A.DepTid != B.DepTid)
                  return A.DepTid < B.DepTid;
                return A.Tid < B.Tid;
              });
    return Out;
  }

  /// The \p K hottest nonzero address buckets, hottest first.
  std::vector<HeatmapAddrBucket> hottestAddrBuckets(unsigned K) const {
    std::vector<HeatmapAddrBucket> Out;
    for (std::uint32_t B = 0; B < NumAddrBuckets; ++B) {
      const std::uint64_t C = Addr[B].Count.load(std::memory_order_relaxed);
      if (C)
        Out.push_back(
            HeatmapAddrBucket{B, C, Addr[B].Last.load(std::memory_order_relaxed)});
    }
    std::sort(Out.begin(), Out.end(),
              [](const HeatmapAddrBucket &A, const HeatmapAddrBucket &B) {
                if (A.Count != B.Count)
                  return A.Count > B.Count;
                return A.Bucket < B.Bucket;
              });
    if (Out.size() > K)
      Out.resize(K);
    return Out;
  }

private:
  struct AddrSlot {
    std::atomic<std::uint64_t> Count{0};
    std::atomic<std::uint64_t> Last{0};
  };

  static unsigned addrBucketOf(std::uint64_t A) {
    // Fibonacci mix, top byte: sequential addresses spread across buckets.
    return static_cast<unsigned>((A * 0x9e3779b97f4a7c15ULL) >> 56);
  }

  unsigned N;
  std::vector<std::atomic<std::uint64_t>> PairCounts;
  std::vector<AddrSlot> Addr;
};

//===----------------------------------------------------------------------===//
// SPECCROSS abort forensics
//===----------------------------------------------------------------------===//

/// Why a speculative round aborted. Keep in sync with \c abortCauseName().
enum class AbortCause : unsigned {
  SignatureOverlap, ///< the checker found two overlapping task signatures
  Injected,         ///< deterministic fault injection (tests, Fig 5.3 runs)
  Timeout,          ///< the round outran SpecConfig::TimeoutSeconds
};

inline const char *abortCauseName(AbortCause C) {
  switch (C) {
  case AbortCause::SignatureOverlap:
    return "signature_overlap";
  case AbortCause::Injected:
    return "injected";
  case AbortCause::Timeout:
    return "timeout";
  }
  CIP_UNREACHABLE("unknown abort cause");
}

/// Everything known about one misspeculation. "Earlier"/"Later" name the
/// conflicting pair in epoch order: the later task speculated past a
/// barrier the earlier task had not finished behind. For injected or
/// timed-out aborts the pair fields name the triggering request.
struct AbortRecord {
  AbortCause Cause = AbortCause::SignatureOverlap;

  std::uint32_t EarlierEpoch = 0;
  std::uint32_t EarlierTid = 0;
  std::uint32_t EarlierTask = 0; ///< local ordinal within (tid, epoch)
  std::uint32_t LaterEpoch = 0;
  std::uint32_t LaterTid = 0;
  std::uint32_t LaterTask = 0;

  /// Which part of the signature overlapped: the first overlapping filter
  /// word for Bloom signatures, the first potentially-shared address for
  /// range/small-set signatures (see \c speccross::overlapHint).
  std::uint64_t SignatureBucket = 0;
  /// Whether an exact min/max address-range recheck of the two tasks also
  /// overlaps. False means the abort was a signature false positive (for
  /// Bloom filters, this measures the false-positive rate of Fig 4.4's
  /// trade-off); always true for range signatures.
  bool ExactConfirmed = false;
  /// Signature scheme in effect ("range", "bloom", "small-set").
  const char *Scheme = "";

  /// Speculative work the rollback discarded: tasks executed since the
  /// round's checkpoint, and wall-clock nanoseconds since it was taken.
  std::uint64_t TasksUnwound = 0;
  std::uint64_t NsSinceCheckpoint = 0;
  /// The damaged epoch range [RoundFirstEpoch, RoundEndEpoch) that was
  /// re-executed non-speculatively.
  std::uint32_t RoundFirstEpoch = 0;
  std::uint32_t RoundEndEpoch = 0;
};

//===----------------------------------------------------------------------===//
// Adaptive policy decisions and switch events
//===----------------------------------------------------------------------===//

/// One adaptive-policy decision: what the engine picked for a window of
/// epochs, why, and the signal snapshot it decided on. Recorded by the
/// adaptive harness once per window; exported in bench JSON rows, run
/// reports (`policy_decisions`), and as PolicyDecision trace instants.
struct PolicyDecisionRecord {
  std::uint32_t Window = 0;     ///< decision ordinal within the region
  std::uint32_t FirstEpoch = 0; ///< first epoch the decision governs
  std::uint32_t NumEpochs = 0;  ///< epochs in the window
  const char *Technique = "";   ///< technique chosen for the window
  const char *Reason = "";      ///< rule or bandit branch that fired
  bool Explore = false;         ///< bandit exploration (vs. exploitation)
  bool Switched = false;        ///< differs from the previous window
  double WindowSeconds = 0.0;   ///< measured wall time of the window
  double AbortRate = 0.0;       ///< misspeculations per epoch in the window
  double ConflictDensity = 0.0; ///< sync conditions per iteration
  std::uint64_t DecisionNs = 0; ///< time spent inside the policy engine
};

/// One technique switch at a window boundary: the teardown/warm-carry edge
/// between two PolicyDecisionRecords. Exported as `switch_events`.
struct SwitchEventRecord {
  std::uint32_t Window = 0;   ///< window whose decision caused the switch
  const char *From = "";      ///< technique being torn down
  const char *To = "";        ///< technique being set up
  const char *Reason = "";    ///< same reason string as the decision
  bool WarmCarry = false;     ///< state legally carried across (see §11)
  std::uint64_t TeardownNs = 0; ///< teardown + setup cost at the boundary
};

//===----------------------------------------------------------------------===//
// Profile-guided plan provenance
//===----------------------------------------------------------------------===//

/// How one region run relates to the profile-guided planning loop
/// (DESIGN.md §13): whether a plan file warm-started it, where the plan
/// came from, whether the run was itself a calibration/profiling run, and
/// the headline plan values the consumers acted on. Recorded once per
/// region by the adaptive harness; exported as the `plan` object in run
/// reports and bench JSON rows, and as a PlanLoad trace instant. Plain
/// data so CIP_TELEMETRY=0 statistics structs can carry it.
struct PlanRecord {
  bool Loaded = false;   ///< a plan warm-started this run
  bool Profiled = false; ///< this run was a calibration/profiling run
  /// Where the plan came from: "file" (CIP_PLAN named it), "dir" (resolved
  /// from a CIP_PLAN directory by region name), "profile" (emitted by this
  /// run), or "none".
  std::string Source = "none";
  std::string Path;             ///< plan file loaded or emitted ("" if none)
  std::string InitialTechnique; ///< technique the run started on
  /// The plan's parallel cost prediction, seconds per epoch (0 = none).
  double PredictedSecondsPerEpoch = 0.0;
  /// The plan's sequential cost prediction (0 = none) — what the server's
  /// duration gate weighs degradation against.
  double SequentialSecondsPerEpoch = 0.0;
  /// SPECCROSS throttle distance the plan applied (0 = unthrottled).
  std::uint64_t SpecDistance = 0;
  /// DOMORE MaxBatch hint the plan applied (0 = engine default).
  std::uint32_t MaxBatchHint = 0;
  /// DOMORE shadow-shard hint the plan applied (0 = serial scheduler).
  std::uint32_t ShadowShards = 0;
  /// DOMORE scheduler-team hint the plan applied (0 = single scheduler).
  std::uint32_t SchedThreads = 0;
  /// Checkpoint-substrate hint the plan applied to speculative windows
  /// ("" = registry default; DESIGN.md §16).
  std::string CkptSubstrate;
  /// Profiled minimum cross-epoch dependence distance in global task
  /// numbers (0 = conflict-free or unmeasured).
  std::uint64_t MinDependenceDistance = 0;
};

//===----------------------------------------------------------------------===//
// Run report rendering
//===----------------------------------------------------------------------===//

#if CIP_TELEMETRY
class RegionTelemetry;

/// Renders \p R's counters, histograms, heatmap, and abort forensics as the
/// run-report JSON document (schema_version 1; see DESIGN.md §8). Call
/// after the region's threads have joined.
std::string renderRunReport(const RegionTelemetry &R, std::uint64_t Seq);
#endif // CIP_TELEMETRY

} // namespace telemetry
} // namespace cip

#endif // CIP_TELEMETRY_RUNREPORT_H

//===- telemetry/RunReport.cpp - Run report JSON rendering ---------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "telemetry/RunReport.h"

#include "telemetry/Json.h"
#include "telemetry/Telemetry.h"

#if CIP_TELEMETRY

using namespace cip;
using namespace cip::telemetry;

namespace {

/// How many hottest address buckets the report keeps (the heatmap tracks
/// 256; reports only need the head of the distribution).
constexpr unsigned TopAddrBuckets = 8;

void writeHistogram(json::Writer &W, const HistogramData &D) {
  W.beginObject();
  W.key("count");
  W.value(D.count());
  W.key("sum_ns");
  W.value(D.SumNs);
  W.key("max_ns");
  W.value(D.MaxNs);
  W.key("p50_ns");
  W.value(D.quantileNs(0.50));
  W.key("p90_ns");
  W.value(D.quantileNs(0.90));
  W.key("p99_ns");
  W.value(D.quantileNs(0.99));
  // Only occupied buckets, ascending by edge; le_ns is the bucket's
  // inclusive upper edge (the last bucket reports the observed max).
  W.key("buckets");
  W.beginArray();
  for (unsigned I = 0; I < HistogramBuckets; ++I) {
    if (!D.Buckets[I])
      continue;
    W.beginObject();
    W.key("le_ns");
    const std::uint64_t Hi = histBucketHiNs(I);
    W.value(Hi < D.MaxNs ? Hi : D.MaxNs);
    W.key("count");
    W.value(D.Buckets[I]);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

} // namespace

std::string cip::telemetry::renderRunReport(const RegionTelemetry &R,
                                            std::uint64_t Seq) {
  json::Writer W;
  W.beginObject();
  W.key("schema_version");
  W.value(1u);
  W.key("region");
  W.value(R.regionName());
  W.key("seq");
  W.value(Seq);
  W.key("lanes");
  W.value(R.numLanes());
  W.key("lane_names");
  W.beginArray();
  for (unsigned L = 0; L < R.numLanes(); ++L)
    W.value(R.laneName(L));
  W.endArray();

  const CounterTotals T = R.totals();
  W.key("counters");
  W.beginObject();
  for (unsigned I = 0; I < NumCounters; ++I) {
    W.key(counterName(static_cast<Counter>(I)));
    W.value(T.Values[I]);
  }
  W.endObject();

  W.key("histograms");
  W.beginObject();
  for (unsigned I = 0; I < NumHistograms; ++I) {
    const Hist H = static_cast<Hist>(I);
    W.key(histName(H));
    writeHistogram(W, R.histTotals(H));
  }
  W.endObject();

  const ConflictHeatmap &Heat = R.heatmap();
  W.key("heatmap");
  W.beginObject();
  W.key("total_conflicts");
  W.value(Heat.total());
  W.key("pairs");
  W.beginArray();
  for (const HeatmapPair &P : Heat.pairs()) {
    W.beginObject();
    W.key("dep_tid");
    W.value(P.DepTid);
    W.key("tid");
    W.value(P.Tid);
    W.key("count");
    W.value(P.Count);
    W.endObject();
  }
  W.endArray();
  W.key("top_addr_buckets");
  W.beginArray();
  for (const HeatmapAddrBucket &B : Heat.hottestAddrBuckets(TopAddrBuckets)) {
    W.beginObject();
    W.key("bucket");
    W.value(B.Bucket);
    W.key("count");
    W.value(B.Count);
    W.key("example_addr");
    W.value(B.ExampleAddr);
    W.endObject();
  }
  W.endArray();
  W.endObject();

  W.key("aborts");
  W.beginArray();
  for (const AbortRecord &A : R.aborts()) {
    W.beginObject();
    W.key("cause");
    W.value(abortCauseName(A.Cause));
    W.key("earlier_epoch");
    W.value(A.EarlierEpoch);
    W.key("earlier_tid");
    W.value(A.EarlierTid);
    W.key("earlier_task");
    W.value(A.EarlierTask);
    W.key("later_epoch");
    W.value(A.LaterEpoch);
    W.key("later_tid");
    W.value(A.LaterTid);
    W.key("later_task");
    W.value(A.LaterTask);
    W.key("signature_bucket");
    W.value(A.SignatureBucket);
    W.key("exact_confirmed");
    W.value(A.ExactConfirmed);
    W.key("scheme");
    W.value(A.Scheme);
    W.key("tasks_unwound");
    W.value(A.TasksUnwound);
    W.key("ns_since_checkpoint");
    W.value(A.NsSinceCheckpoint);
    W.key("round_first_epoch");
    W.value(A.RoundFirstEpoch);
    W.key("round_end_epoch");
    W.value(A.RoundEndEpoch);
    W.endObject();
  }
  W.endArray();

  W.key("policy_decisions");
  W.beginArray();
  for (const PolicyDecisionRecord &D : R.decisions()) {
    W.beginObject();
    W.key("window");
    W.value(D.Window);
    W.key("first_epoch");
    W.value(D.FirstEpoch);
    W.key("num_epochs");
    W.value(D.NumEpochs);
    W.key("technique");
    W.value(D.Technique);
    W.key("reason");
    W.value(D.Reason);
    W.key("explore");
    W.value(D.Explore);
    W.key("switched");
    W.value(D.Switched);
    W.key("window_seconds");
    W.value(D.WindowSeconds);
    W.key("abort_rate");
    W.value(D.AbortRate);
    W.key("conflict_density");
    W.value(D.ConflictDensity);
    W.key("decision_ns");
    W.value(D.DecisionNs);
    W.endObject();
  }
  W.endArray();

  const PlanRecord &P = R.planRecord();
  W.key("plan");
  W.beginObject();
  W.key("loaded");
  W.value(P.Loaded);
  W.key("profiled");
  W.value(P.Profiled);
  W.key("source");
  W.value(P.Source);
  W.key("path");
  W.value(P.Path);
  W.key("initial");
  W.value(P.InitialTechnique);
  W.key("predicted_sec_per_epoch");
  W.value(P.PredictedSecondsPerEpoch);
  W.key("sequential_sec_per_epoch");
  W.value(P.SequentialSecondsPerEpoch);
  W.key("spec_distance");
  W.value(P.SpecDistance);
  W.key("max_batch_hint");
  W.value(P.MaxBatchHint);
  W.key("shadow_shards");
  W.value(P.ShadowShards);
  W.key("sched_threads");
  W.value(P.SchedThreads);
  W.key("ckpt_substrate");
  W.value(P.CkptSubstrate);
  W.key("min_dependence_distance");
  W.value(P.MinDependenceDistance);
  W.endObject();

  W.key("switch_events");
  W.beginArray();
  for (const SwitchEventRecord &S : R.switches()) {
    W.beginObject();
    W.key("window");
    W.value(S.Window);
    W.key("from");
    W.value(S.From);
    W.key("to");
    W.value(S.To);
    W.key("reason");
    W.value(S.Reason);
    W.key("warm_carry");
    W.value(S.WarmCarry);
    W.key("teardown_ns");
    W.value(S.TeardownNs);
    W.endObject();
  }
  W.endArray();

  W.endObject();
  std::string Out = W.take();
  Out += '\n';
  return Out;
}

#endif // CIP_TELEMETRY

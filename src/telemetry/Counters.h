//===- telemetry/Counters.h - Padded per-thread counter table --*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime counter vocabulary shared by DOMORE, SPECCROSS, and the
/// barrier executors, plus the per-thread counter table the telemetry
/// subsystem aggregates at region end. Counters quantify exactly the
/// evaluation columns of the dissertation's Chapter 5 (scheduler/worker
/// busy ratio of Table 5.2, checking and checkpoint costs of Table 5.3 and
/// Fig 5.3, barrier idle time of Fig 4.3) so every `bench/` binary can
/// export them machine-readably.
///
/// \c CounterTotals (a plain aggregate) is always available, even in
/// \c CIP_TELEMETRY=0 builds, so statistics structs keep a stable layout;
/// only the *probes* that feed it compile away.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TELEMETRY_COUNTERS_H
#define CIP_TELEMETRY_COUNTERS_H

#include "support/Compiler.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace cip {
namespace telemetry {

/// Every runtime counter the telemetry subsystem tracks. Keep in sync with
/// \c counterName().
enum class Counter : unsigned {
  /// Nanoseconds the DOMORE scheduler thread spent busy (sequential code,
  /// computeAddr, conflict detection) — numerator of Table 5.2's ratio.
  SchedulerBusyNs,
  /// Nanoseconds the DOMORE scheduler stalled on `latestFinished` before
  /// running sequential outer-loop code (prologue dependences).
  SchedulerStallNs,
  /// Inner-loop iterations the scheduler dispatched (combined numbering).
  IterationsDispatched,
  /// Cross-worker conflicts the shadow memory detected (each one becomes a
  /// point-to-point synchronization condition).
  ShadowConflicts,
  /// Times the scheduler had to wait for in-flight iterations before
  /// running sequential outer-loop code.
  PrologueWaits,
  /// Producer-side spins while a scheduler→worker queue was full
  /// (scheduler run-ahead hit the queue bound).
  QueueFullSpins,
  /// Consumer-side spins while a worker's queue was empty (worker starved
  /// for work).
  QueueEmptySpins,
  /// Nanoseconds workers spent waiting: on sync conditions (DOMORE) or on
  /// the speculative-range throttle (SPECCROSS).
  WorkerWaitNs,
  /// Tasks (inner-loop iterations) executed by worker threads.
  TasksExecuted,
  /// Epochs entered by worker threads (SPECCROSS speculative barriers
  /// crossed; counted once per worker per epoch).
  EpochsEntered,
  /// Spins in the SPECCROSS speculative-range throttle loop.
  ThrottleSpins,
  /// Checking requests the SPECCROSS checker processed.
  CheckRequests,
  /// Pairwise signature comparisons the checker performed.
  SignatureComparisons,
  /// Misspeculations (rollback + re-execution of the damaged epochs).
  Misspeculations,
  /// Epochs re-executed non-speculatively after rollbacks.
  EpochsReexecuted,
  /// Checkpoints taken.
  CheckpointsTaken,
  /// Bytes copied while taking checkpoints.
  CheckpointBytes,
  /// Nanoseconds spent taking checkpoints.
  CheckpointNs,
  /// Nanoseconds spent restoring state after misspeculation.
  RecoveryNs,
  /// Nanoseconds threads idled at non-speculative barriers (Fig 4.3).
  BarrierWaitNs,
  /// Region-server requests admitted and granted parallel workers.
  ServerAdmitted,
  /// Region-server requests rejected (queue full under the Reject policy,
  /// or submitted during/after shutdown).
  ServerRejected,
  /// Admitted requests the should_invoc gate degraded below their
  /// requested technique (narrower barrier or sequential in the caller).
  ServerDegraded,
  /// Total nanoseconds admitted requests spent queued before their grant
  /// (sum over requests; the per-request distribution is ServerQueueNs).
  ServerQueueWaitNs,
  /// Conflicts each DOMORE scheduler-team member's shard probes detected
  /// (per-lane attribution of the team's detect stage; the lane rows are
  /// the per-scheduler-thread view, the total sums to the conflicts the
  /// team probed). Zero on the serial single-scheduler path.
  SchedTeamConflicts,
  /// Nanoseconds scheduler-team members spent idle at the block hand-off
  /// edges: helpers waiting for the lead's next partitioned block, the
  /// lead waiting for helpers' probe completions. Zero on the serial path.
  SchedTeamIdleNs,
  /// Pages the checkpoint substrate copied while taking checkpoints. Eager
  /// copies the full registered page span every time; the page-tracking
  /// substrates (DESIGN.md §16) count only pages written since the previous
  /// snapshot, so DirtyPages / (CheckpointsTaken * tracked pages) is the
  /// measured dirty ratio.
  DirtyPages,
  /// Bytes the checkpoint substrate actually copied while taking
  /// checkpoints. CheckpointBytes keeps its historical meaning (registered
  /// footprint per checkpoint, fork's eager cost model); the gap between
  /// the two is what page-granular versioning saved.
  CkptBytesCopied,
};

inline constexpr unsigned NumCounters = 28;

/// Stable machine-readable name (snake_case; the JSON export key).
inline const char *counterName(Counter C) {
  static const char *const Names[NumCounters] = {
      "scheduler_busy_ns",    "scheduler_stall_ns", "iterations_dispatched",
      "shadow_conflicts",     "prologue_waits",     "queue_full_spins",
      "queue_empty_spins",    "worker_wait_ns",     "tasks_executed",
      "epochs_entered",       "throttle_spins",     "check_requests",
      "signature_comparisons", "misspeculations",   "epochs_reexecuted",
      "checkpoints_taken",    "checkpoint_bytes",   "checkpoint_ns",
      "recovery_ns",          "barrier_wait_ns",    "server_admitted",
      "server_rejected",      "server_degraded",    "server_queue_wait_ns",
      "sched_team_conflicts", "sched_team_idle_ns", "dirty_pages",
      "ckpt_bytes_copied"};
  const unsigned I = static_cast<unsigned>(C);
  assert(I < NumCounters && "counter out of range");
  return Names[I];
}

/// Aggregated counter values. Plain data — always available so statistics
/// structs (\c DomoreStats, \c SpecStats, \c ExecResult) keep one layout in
/// both telemetry configurations.
struct CounterTotals {
  std::uint64_t Values[NumCounters] = {};

  std::uint64_t get(Counter C) const {
    return Values[static_cast<unsigned>(C)];
  }
  void set(Counter C, std::uint64_t V) {
    Values[static_cast<unsigned>(C)] = V;
  }
  void add(Counter C, std::uint64_t Delta) {
    Values[static_cast<unsigned>(C)] += Delta;
  }
  CounterTotals &operator+=(const CounterTotals &O) {
    for (unsigned I = 0; I < NumCounters; ++I)
      Values[I] += O.Values[I];
    return *this;
  }
  bool allZero() const {
    for (unsigned I = 0; I < NumCounters; ++I)
      if (Values[I] != 0)
        return false;
    return true;
  }
};

/// Per-thread counter table. Each lane owns one cache-line-padded row of
/// relaxed atomics, so hot-loop increments touch only a line the thread
/// already owns exclusively; aggregation happens once, at region end.
class CounterTable {
public:
  explicit CounterTable(unsigned NumLanes) : Rows(NumLanes) {}

  CounterTable(const CounterTable &) = delete;
  CounterTable &operator=(const CounterTable &) = delete;

  unsigned numLanes() const { return static_cast<unsigned>(Rows.size()); }

  void add(unsigned Lane, Counter C, std::uint64_t Delta = 1) {
    assert(Lane < Rows.size() && "lane out of range");
    Rows[Lane].V[static_cast<unsigned>(C)].fetch_add(
        Delta, std::memory_order_relaxed);
  }

  CounterTotals laneTotals(unsigned Lane) const {
    assert(Lane < Rows.size() && "lane out of range");
    CounterTotals T;
    for (unsigned I = 0; I < NumCounters; ++I)
      T.Values[I] = Rows[Lane].V[I].load(std::memory_order_relaxed);
    return T;
  }

  CounterTotals totals() const {
    CounterTotals T;
    for (unsigned L = 0; L < Rows.size(); ++L)
      T += laneTotals(L);
    return T;
  }

private:
  /// One lane's counters, padded to whole cache lines so that two lanes
  /// never false-share (same discipline as the DOMORE progress slots).
  struct alignas(CacheLineBytes) Row {
    std::atomic<std::uint64_t> V[NumCounters] = {};
  };

  std::vector<Row> Rows;
};

} // namespace telemetry
} // namespace cip

#endif // CIP_TELEMETRY_COUNTERS_H

//===- telemetry/ChromeTrace.cpp - chrome://tracing JSON export ----------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "telemetry/ChromeTrace.h"

#include "telemetry/Json.h"

#include <cstdio>

using namespace cip;
using namespace cip::telemetry;

namespace {

/// Microseconds (chrome's native unit) relative to the region origin.
double toMicros(std::uint64_t TimeNs, std::uint64_t OriginNs) {
  const std::uint64_t Rel = TimeNs >= OriginNs ? TimeNs - OriginNs : 0;
  return static_cast<double>(Rel) * 1e-3;
}

void emitCommon(json::Writer &W, const char *Ph, const char *Name,
                unsigned Lane, double TsUs) {
  W.key("ph");
  W.value(Ph);
  W.key("name");
  W.value(Name);
  W.key("pid");
  W.value(0u);
  W.key("tid");
  W.value(Lane);
  W.key("ts");
  W.value(TsUs);
}

} // namespace

std::string telemetry::renderChromeTrace(const std::string &RegionName,
                                         const std::vector<LaneSnapshot> &Lanes,
                                         std::uint64_t TimeOriginNs) {
  json::Writer W;
  W.beginObject();
  W.key("displayTimeUnit");
  W.value("ms");
  W.key("traceEvents");
  W.beginArray();

  // Metadata: process = region, one named thread row per lane.
  W.beginObject();
  W.key("ph");
  W.value("M");
  W.key("name");
  W.value("process_name");
  W.key("pid");
  W.value(0u);
  W.key("args");
  W.beginObject();
  W.key("name");
  W.value(RegionName);
  W.endObject();
  W.endObject();
  for (unsigned L = 0; L < Lanes.size(); ++L) {
    W.beginObject();
    W.key("ph");
    W.value("M");
    W.key("name");
    W.value("thread_name");
    W.key("pid");
    W.value(0u);
    W.key("tid");
    W.value(L);
    W.key("args");
    W.beginObject();
    W.key("name");
    W.value(Lanes[L].Name);
    W.endObject();
    W.endObject();
    // Keep lane ordering in the viewer equal to lane numbering.
    W.beginObject();
    W.key("ph");
    W.value("M");
    W.key("name");
    W.value("thread_sort_index");
    W.key("pid");
    W.value(0u);
    W.key("tid");
    W.value(L);
    W.key("args");
    W.beginObject();
    W.key("sort_index");
    W.value(L);
    W.endObject();
    W.endObject();
  }

  for (unsigned L = 0; L < Lanes.size(); ++L) {
    for (const TraceEvent &E : Lanes[L].Events) {
      const double Ts = toMicros(E.TimeNs, TimeOriginNs);
      const char *Name = eventName(E.Kind);
      W.beginObject();
      switch (E.Phase) {
      case EventPhase::Begin:
        emitCommon(W, "B", Name, L, Ts);
        W.key("args");
        W.beginObject();
        W.key("a0");
        W.value(E.Arg0);
        W.key("a1");
        W.value(E.Arg1);
        W.endObject();
        break;
      case EventPhase::End:
        emitCommon(W, "E", Name, L, Ts);
        break;
      case EventPhase::Instant:
        emitCommon(W, "i", Name, L, Ts);
        W.key("s");
        W.value("t");
        W.key("args");
        W.beginObject();
        W.key("a0");
        W.value(E.Arg0);
        W.key("a1");
        W.value(E.Arg1);
        W.endObject();
        break;
      case EventPhase::FlowBegin:
        emitCommon(W, "s", Name, L, Ts);
        W.key("cat");
        W.value("sync");
        W.key("id");
        W.value(E.Arg0);
        break;
      case EventPhase::FlowEnd:
        emitCommon(W, "f", Name, L, Ts);
        W.key("cat");
        W.value("sync");
        W.key("id");
        W.value(E.Arg0);
        W.key("bp");
        W.value("e");
        break;
      }
      W.endObject();
    }
    if (Lanes[L].Dropped > 0) {
      // Make ring wrap-around visible in the viewer rather than silent.
      W.beginObject();
      emitCommon(W, "i", "events_dropped", L, 0.0);
      W.key("s");
      W.value("t");
      W.key("args");
      W.beginObject();
      W.key("dropped");
      W.value(Lanes[L].Dropped);
      W.endObject();
      W.endObject();
    }
  }

  W.endArray();
  W.endObject();
  return W.take();
}

bool telemetry::writeFile(const std::string &Path,
                          const std::string &Content) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  const std::size_t Written = std::fwrite(Content.data(), 1, Content.size(), F);
  const bool Ok = std::fclose(F) == 0 && Written == Content.size();
  return Ok;
}

//===- telemetry/Telemetry.cpp - Region telemetry facade -----------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Telemetry.h"

#include "support/Timer.h"
#include "telemetry/ChromeTrace.h"

#include <atomic>
#include <cstdlib>

using namespace cip;
using namespace cip::telemetry;

bool telemetry::compiledIn() { return CIP_TELEMETRY != 0; }

#if CIP_TELEMETRY

namespace {

std::size_t ringCapacityFromEnv() {
  if (const char *S = std::getenv("CIP_TRACE_EVENTS")) {
    char *End = nullptr;
    const unsigned long N = std::strtoul(S, &End, 10);
    if (End && *End == '\0' && N > 0)
      return static_cast<std::size_t>(N);
  }
  return 1u << 15;
}

/// Process-wide sequence number so every region's trace gets its own file
/// even when one binary runs many regions.
std::uint64_t nextTraceSeq() {
  static std::atomic<std::uint64_t> Seq{0};
  return Seq.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

RegionTelemetry::RegionTelemetry(const char *RegionName, unsigned NumLanes,
                                 const char *ForceTracePrefix,
                                 const char *ForceReportPrefix)
    : Name(RegionName), OriginNs(nowNanos()), Counters(NumLanes),
      Hists(NumLanes), Heat(NumLanes), LaneNames(NumLanes) {
  const char *Prefix =
      ForceTracePrefix ? ForceTracePrefix : std::getenv("CIP_TRACE");
  const char *Report =
      ForceReportPrefix ? ForceReportPrefix : std::getenv("CIP_REPORT");
  for (unsigned L = 0; L < NumLanes; ++L)
    LaneNames[L] = "lane " + std::to_string(L);
  if (Prefix && *Prefix) {
    TracePrefix = Prefix;
    const std::size_t Cap = ringCapacityFromEnv();
    Rings.reserve(NumLanes);
    for (unsigned L = 0; L < NumLanes; ++L)
      Rings.push_back(std::make_unique<TraceRing>(Cap));
  }
  if (Report && *Report)
    ReportPrefix = Report;
}

RegionTelemetry::~RegionTelemetry() { finish(); }

void RegionTelemetry::nameLane(unsigned Lane, const std::string &LaneName) {
  assert(Lane < LaneNames.size() && "lane out of range");
  LaneNames[Lane] = LaneName;
}

void RegionTelemetry::emit(unsigned Lane, EventKind K, EventPhase P,
                           std::uint64_t A0, std::uint64_t A1) {
  if (Rings.empty())
    return;
  assert(Lane < Rings.size() && "lane out of range");
  TraceEvent E;
  E.TimeNs = nowNanos();
  E.Kind = K;
  E.Phase = P;
  E.Arg0 = A0;
  E.Arg1 = A1;
  Rings[Lane]->emit(E);
}

std::vector<LaneSnapshot> RegionTelemetry::snapshotLanes() const {
  std::vector<LaneSnapshot> Out;
  Out.reserve(Rings.size());
  for (unsigned L = 0; L < Rings.size(); ++L) {
    LaneSnapshot S;
    S.Name = LaneNames[L];
    S.Events = Rings[L]->snapshot();
    S.Dropped = Rings[L]->dropped();
    Out.push_back(std::move(S));
  }
  return Out;
}

void RegionTelemetry::recordAbort(const AbortRecord &A) {
  std::lock_guard<std::mutex> G(AbortsMu);
  AbortLog.push_back(A);
}

std::vector<AbortRecord> RegionTelemetry::aborts() const {
  std::lock_guard<std::mutex> G(AbortsMu);
  return AbortLog;
}

void RegionTelemetry::recordDecision(const PolicyDecisionRecord &D) {
  std::lock_guard<std::mutex> G(PolicyMu);
  DecisionLog.push_back(D);
}

void RegionTelemetry::recordSwitch(const SwitchEventRecord &S) {
  std::lock_guard<std::mutex> G(PolicyMu);
  SwitchLog.push_back(S);
}

void RegionTelemetry::recordPlan(const PlanRecord &P) { PlanInfo = P; }

std::vector<PolicyDecisionRecord> RegionTelemetry::decisions() const {
  std::lock_guard<std::mutex> G(PolicyMu);
  return DecisionLog;
}

std::vector<SwitchEventRecord> RegionTelemetry::switches() const {
  std::lock_guard<std::mutex> G(PolicyMu);
  return SwitchLog;
}

std::string RegionTelemetry::finish() {
  if (Finished || (Rings.empty() && ReportPrefix.empty()))
    return {};
  Finished = true;
  // One sequence number per region run, shared by its trace and report
  // files so the two can be correlated.
  const std::uint64_t Seq = nextTraceSeq();
  if (!ReportPrefix.empty()) {
    const std::string RPath = ReportPrefix + "." + Name + "." +
                              std::to_string(Seq) + ".report.json";
    if (writeFile(RPath, renderRunReport(*this, Seq)))
      ReportPathWritten = RPath;
  }
  if (Rings.empty())
    return {};
  const std::string Path =
      TracePrefix + "." + Name + "." + std::to_string(Seq) + ".trace.json";
  const std::string Doc = renderChromeTrace(Name, snapshotLanes(), OriginNs);
  if (!writeFile(Path, Doc))
    return {};
  return Path;
}

#endif // CIP_TELEMETRY

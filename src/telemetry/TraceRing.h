//===- telemetry/TraceRing.h - Lock-free per-thread event ring -*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity, single-writer, lock-free event ring. Each traced
/// runtime thread (scheduler, worker, checker) owns exactly one ring — its
/// *lane* — and appends 32-byte events with one relaxed load, one store of
/// the event, and one release store of the cursor; there is no shared write
/// state between lanes, so tracing never introduces inter-thread
/// communication into the engines being measured. When the ring wraps, the
/// oldest events are overwritten and counted as dropped: a trace always
/// holds the *most recent* window of each thread's activity.
///
/// Readers (the region-end snapshot) see a consistent prefix via the
/// release/acquire cursor; the registry only snapshots after the region's
/// threads have joined, so snapshots are exact in practice.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TELEMETRY_TRACERING_H
#define CIP_TELEMETRY_TRACERING_H

#include "support/Compiler.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace cip {
namespace telemetry {

/// What a trace event describes. Keep in sync with \c eventName().
enum class EventKind : std::uint16_t {
  Region,      ///< whole parallel region (control lane)
  Invocation,  ///< one outer-loop iteration / inner-loop invocation
  Dispatch,    ///< scheduler dispatched one iteration (arg0=inv, arg1=comb)
  SchedStall,  ///< scheduler stalled on latestFinished before a prologue
  SyncWait,    ///< worker waiting on a sync condition (arg0=depTid, arg1=it)
  Task,        ///< one task / inner-loop iteration (arg0=epoch, arg1=task)
  Epoch,       ///< one epoch on a worker lane (arg0=epoch)
  Throttle,    ///< SPECCROSS speculative-range throttle wait
  QueueFull,   ///< producer blocked on a full queue
  SigCheck,    ///< checker processing one checking request (arg0=epoch)
  Misspec,     ///< misspeculation detected (arg0=epoch)
  Checkpoint,  ///< checkpoint being taken (arg0=bytes)
  Rollback,    ///< state restore after misspeculation
  Reexec,      ///< non-speculative re-execution of damaged epochs
  BarrierWait, ///< thread waiting at a non-speculative barrier (arg0=epoch)
  SyncFlow,    ///< flow arrow for a forwarded sync condition (arg0=flow id)
  PolicyDecision, ///< adaptive policy decision (arg0=window, arg1=technique)
  PolicySwitch,   ///< adaptive technique switch (arg0=from, arg1=to)
  ServerAdmit,    ///< server granted a request (arg0=granted, arg1=wait ns)
  ServerDegrade,  ///< should_invoc degraded a request (arg0=free, arg1=min)
  ServerReject,   ///< server rejected a request (arg0=queue depth)
  PlanLoad,       ///< plan warm-start applied (arg0=loaded, arg1=technique)
  ServerHold,     ///< duration gate held a request (arg0=free, arg1=hold ns)
};

inline constexpr unsigned NumEventKinds = 23;

inline const char *eventName(EventKind K) {
  static const char *const Names[NumEventKinds] = {
      "region",   "invocation", "dispatch",   "sched_stall",
      "sync_wait", "task",      "epoch",      "throttle",
      "queue_full", "sig_check", "misspec",   "checkpoint",
      "rollback", "reexec",     "barrier_wait", "sync_flow",
      "policy_decision", "policy_switch", "server_admit",
      "server_degrade", "server_reject", "plan_load", "server_hold"};
  const unsigned I = static_cast<unsigned>(K);
  assert(I < NumEventKinds && "event kind out of range");
  return Names[I];
}

/// How the event maps onto the Chrome trace model.
enum class EventPhase : std::uint16_t {
  Begin,     ///< duration start ("B")
  End,       ///< duration end ("E")
  Instant,   ///< instantaneous ("i")
  FlowBegin, ///< flow-arrow source ("s"); arg0 is the flow id
  FlowEnd,   ///< flow-arrow sink ("f"); arg0 is the flow id
};

/// One 32-byte trace record.
struct TraceEvent {
  std::uint64_t TimeNs = 0;
  EventKind Kind = EventKind::Region;
  EventPhase Phase = EventPhase::Instant;
  std::uint32_t Pad = 0;
  std::uint64_t Arg0 = 0;
  std::uint64_t Arg1 = 0;
};
static_assert(sizeof(TraceEvent) == 32, "trace events should stay compact");

/// Fixed-capacity single-writer ring of TraceEvents. See file comment.
class TraceRing {
public:
  explicit TraceRing(std::size_t Capacity) : Ring(roundUpPow2(Capacity)) {}

  TraceRing(const TraceRing &) = delete;
  TraceRing &operator=(const TraceRing &) = delete;

  std::size_t capacity() const { return Ring.size(); }

  /// Appends one event. Owning thread only.
  void emit(const TraceEvent &E) {
    const std::uint64_t C = Cursor.load(std::memory_order_relaxed);
    Ring[C & (Ring.size() - 1)] = E;
    Cursor.store(C + 1, std::memory_order_release);
  }

  /// Total events ever emitted (monotone; may exceed capacity).
  std::uint64_t written() const {
    return Cursor.load(std::memory_order_acquire);
  }

  /// Events overwritten by ring wrap-around.
  std::uint64_t dropped() const {
    const std::uint64_t W = written();
    return W > Ring.size() ? W - Ring.size() : 0;
  }

  /// Copies the surviving events, oldest first. Exact once the writer has
  /// quiesced (the registry snapshots after region join).
  std::vector<TraceEvent> snapshot() const {
    const std::uint64_t End = written();
    const std::uint64_t Begin = End > Ring.size() ? End - Ring.size() : 0;
    std::vector<TraceEvent> Out;
    Out.reserve(static_cast<std::size_t>(End - Begin));
    for (std::uint64_t C = Begin; C < End; ++C)
      Out.push_back(Ring[C & (Ring.size() - 1)]);
    return Out;
  }

private:
  static std::size_t roundUpPow2(std::size_t N) {
    std::size_t P = 1;
    while (P < N)
      P <<= 1;
    return P;
  }

  std::vector<TraceEvent> Ring;
  alignas(CacheLineBytes) std::atomic<std::uint64_t> Cursor{0};
};

/// One lane's worth of a region snapshot: name, events, drop accounting.
struct LaneSnapshot {
  std::string Name;
  std::vector<TraceEvent> Events;
  std::uint64_t Dropped = 0;
};

} // namespace telemetry
} // namespace cip

#endif // CIP_TELEMETRY_TRACERING_H

//===- telemetry/Histogram.h - Lock-free latency histograms ----*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Log-bucketed latency histograms for wait/stall attribution. A flat
/// counter (PR 1's \c WorkerWaitNs) answers "how much time went to waits";
/// a histogram answers "was that one catastrophic stall or a million tiny
/// ones" — the distinction that separates a DOMORE queue-sizing problem
/// from a genuine dependence chain, and a SPECCROSS checker falling behind
/// from an epoch-length imbalance (the diagnostics behind Tables 5.2/5.3).
///
/// Buckets are powers of two of nanoseconds: bucket 0 holds the value 0 and
/// bucket k >= 1 holds [2^(k-1), 2^k - 1], so one \c std::bit_width computes
/// the index and 64 buckets cover every uint64 duration. Recording is
/// per-lane sharded onto cache-line-padded rows of relaxed atomics — the
/// same discipline as \c CounterTable — so hot-loop records never share a
/// line between threads; shards merge once, at region end.
///
/// \c HistogramData (a plain aggregate) is always available, even in
/// \c CIP_TELEMETRY=0 builds, so statistics structs keep a stable layout;
/// only the probes that feed it compile away.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_TELEMETRY_HISTOGRAM_H
#define CIP_TELEMETRY_HISTOGRAM_H

#include "support/Compiler.h"

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace cip {
namespace telemetry {

/// Every latency distribution the telemetry subsystem tracks. Keep in sync
/// with \c histName().
enum class Hist : unsigned {
  /// DOMORE scheduler stalled on `latestFinished` before sequential
  /// outer-loop code (per-stall latency behind Counter::SchedulerStallNs).
  SchedStallNs,
  /// Worker waits: DOMORE sync-condition waits on `latestFinished`,
  /// SPECCROSS speculative-range throttle waits.
  WorkerWaitNs,
  /// Producer blocked on a full scheduler->worker or checking queue
  /// (backpressure: run-ahead hit the queue bound).
  QueueFullNs,
  /// One epoch's duration on one worker lane (SPECCROSS epoch streaming;
  /// imbalance here is what makes the throttle and checker ranges grow).
  EpochNs,
  /// Checker validation latency per checking request.
  CheckNs,
  /// One wait at a non-speculative barrier.
  BarrierWaitNs,
  /// Size of one coalesced DOMORE dispatch batch, in iterations per
  /// WorkRange message — the distribution behind DomoreConfig::MaxBatch
  /// tuning. The only non-nanosecond distribution: bucket values are
  /// iteration counts.
  DispatchBatch,
  /// One region-server request's wait from submission to grant (or to its
  /// should_invoc degrade decision) — the admission-queue latency the
  /// traffic bench reports percentiles of.
  ServerQueueNs,
  /// Width of one batched SPECCROSS signature-comparison span: pairwise
  /// comparisons one batchFirstOverlap kernel call covered (up to and
  /// including the hit). Like DispatchBatch, not nanoseconds: bucket values
  /// are pair counts.
  BatchWidth,
  /// One write-fault's handling latency in the PageDirty checkpoint
  /// substrate (SIGSEGV entry to page re-enabled): the per-page tax the
  /// fault-driven substrate pays for copying only dirty pages. Empty for
  /// eager/softdirty. Drained from the substrate's lock-free sample ring at
  /// checkpoint rounds, never recorded from the signal handler.
  CkptFaultNs,
};

inline constexpr unsigned NumHistograms = 10;

/// Stable machine-readable name (snake_case; the JSON export key).
inline const char *histName(Hist H) {
  static const char *const Names[NumHistograms] = {
      "sched_stall_ns", "worker_wait_ns",  "queue_full_ns",
      "epoch_ns",       "check_ns",        "barrier_wait_ns",
      "dispatch_batch", "server_queue_ns", "batch_width",
      "ckpt_fault_ns"};
  const unsigned I = static_cast<unsigned>(H);
  assert(I < NumHistograms && "histogram kind out of range");
  return Names[I];
}

inline constexpr unsigned HistogramBuckets = 64;

/// Bucket index for \p ValueNs: 0 for 0, else bit_width (so bucket k holds
/// [2^(k-1), 2^k - 1]); values >= 2^62 saturate into the last bucket.
inline unsigned histBucketOf(std::uint64_t ValueNs) {
  const unsigned W = static_cast<unsigned>(std::bit_width(ValueNs));
  return W < HistogramBuckets ? W : HistogramBuckets - 1;
}

/// Inclusive lower edge of bucket \p I.
inline std::uint64_t histBucketLoNs(unsigned I) {
  assert(I < HistogramBuckets && "bucket out of range");
  return I == 0 ? 0 : std::uint64_t{1} << (I - 1);
}

/// Inclusive upper edge of bucket \p I (the last bucket is open-ended).
inline std::uint64_t histBucketHiNs(unsigned I) {
  assert(I < HistogramBuckets && "bucket out of range");
  if (I == 0)
    return 0;
  if (I == HistogramBuckets - 1)
    return ~std::uint64_t{0};
  return (std::uint64_t{1} << I) - 1;
}

/// Merged histogram contents. Plain data — always available so statistics
/// structs keep one layout in both telemetry configurations.
struct HistogramData {
  std::uint64_t Buckets[HistogramBuckets] = {};
  std::uint64_t SumNs = 0;
  std::uint64_t MaxNs = 0;

  std::uint64_t count() const {
    std::uint64_t N = 0;
    for (unsigned I = 0; I < HistogramBuckets; ++I)
      N += Buckets[I];
    return N;
  }

  bool empty() const { return count() == 0; }

  HistogramData &operator+=(const HistogramData &O) {
    for (unsigned I = 0; I < HistogramBuckets; ++I)
      Buckets[I] += O.Buckets[I];
    SumNs += O.SumNs;
    if (O.MaxNs > MaxNs)
      MaxNs = O.MaxNs;
    return *this;
  }

  /// Conservative quantile estimate: the upper edge of the bucket where the
  /// cumulative count first reaches \p Q of the total (capped at the true
  /// maximum). 0 when empty. \p Q in (0, 1].
  std::uint64_t quantileNs(double Q) const {
    const std::uint64_t N = count();
    if (N == 0)
      return 0;
    const std::uint64_t Rank =
        static_cast<std::uint64_t>(Q * static_cast<double>(N) + 0.5);
    const std::uint64_t Target = Rank ? Rank : 1;
    std::uint64_t Seen = 0;
    for (unsigned I = 0; I < HistogramBuckets; ++I) {
      Seen += Buckets[I];
      if (Seen >= Target) {
        const std::uint64_t Hi = histBucketHiNs(I);
        return Hi < MaxNs ? Hi : MaxNs;
      }
    }
    return MaxNs;
  }

  /// Interpolated percentile estimate: finds the bucket holding the rank-
  /// \p Q observation and places it linearly between the bucket's edges by
  /// the rank's position inside the bucket's count (assuming observations
  /// spread uniformly within a bucket — the standard log-bucket estimate,
  /// and what tools/cip_report.py mirrors over exported bucket tables).
  /// Log-bucket edges double, so the estimate is within 2x of the true
  /// value, and usually much closer; quantileNs is the conservative
  /// upper-edge variant. The top bucket's open upper edge is capped at the
  /// true recorded maximum. Returns 0 when empty. \p Q in (0, 1].
  std::uint64_t percentileNs(double Q) const {
    const std::uint64_t N = count();
    if (N == 0)
      return 0;
    if (Q > 1.0)
      Q = 1.0;
    double Rank = Q * static_cast<double>(N);
    if (Rank < 1.0)
      Rank = 1.0;
    std::uint64_t Seen = 0;
    for (unsigned I = 0; I < HistogramBuckets; ++I) {
      if (Buckets[I] == 0)
        continue;
      const std::uint64_t Lo = histBucketLoNs(I);
      std::uint64_t Hi = histBucketHiNs(I);
      if (Hi > MaxNs)
        Hi = MaxNs; // top bucket is open-ended; the true max bounds it
      if (Hi < Lo)
        Hi = Lo;
      if (static_cast<double>(Seen + Buckets[I]) >= Rank) {
        const double Into =
            (Rank - static_cast<double>(Seen)) /
            static_cast<double>(Buckets[I]); // in (0, 1]
        return Lo + static_cast<std::uint64_t>(
                        Into * static_cast<double>(Hi - Lo) + 0.5);
      }
      Seen += Buckets[I];
    }
    return MaxNs;
  }
};

/// The recording side: one cache-line-padded shard of relaxed atomics per
/// lane, each holding every \c Hist kind, so concurrent records from
/// different lanes never contend. Aggregation (\c data, \c laneData)
/// belongs to the controlling thread after workers have joined, matching
/// \c CounterTable's discipline.
class LatencyHistogram {
public:
  explicit LatencyHistogram(unsigned NumLanes) : Shards(NumLanes) {}

  LatencyHistogram(const LatencyHistogram &) = delete;
  LatencyHistogram &operator=(const LatencyHistogram &) = delete;

  unsigned numLanes() const { return static_cast<unsigned>(Shards.size()); }

  /// Records one \p Ns-long observation of \p H on lane \p Lane. Lock-free;
  /// lanes are single-writer, so Max needs no CAS loop.
  void record(unsigned Lane, Hist H, std::uint64_t Ns) {
    assert(Lane < Shards.size() && "lane out of range");
    Cell &C = Shards[Lane].Kinds[static_cast<unsigned>(H)];
    C.Buckets[histBucketOf(Ns)].fetch_add(1, std::memory_order_relaxed);
    C.SumNs.fetch_add(Ns, std::memory_order_relaxed);
    if (Ns > C.MaxNs.load(std::memory_order_relaxed))
      C.MaxNs.store(Ns, std::memory_order_relaxed);
  }

  HistogramData laneData(unsigned Lane, Hist H) const {
    assert(Lane < Shards.size() && "lane out of range");
    const Cell &C = Shards[Lane].Kinds[static_cast<unsigned>(H)];
    HistogramData D;
    for (unsigned I = 0; I < HistogramBuckets; ++I)
      D.Buckets[I] = C.Buckets[I].load(std::memory_order_relaxed);
    D.SumNs = C.SumNs.load(std::memory_order_relaxed);
    D.MaxNs = C.MaxNs.load(std::memory_order_relaxed);
    return D;
  }

  /// All lanes of \p H merged.
  HistogramData data(Hist H) const {
    HistogramData D;
    for (unsigned L = 0; L < Shards.size(); ++L)
      D += laneData(L, H);
    return D;
  }

private:
  struct Cell {
    std::atomic<std::uint64_t> Buckets[HistogramBuckets] = {};
    std::atomic<std::uint64_t> SumNs{0};
    std::atomic<std::uint64_t> MaxNs{0};
  };

  /// One lane's histograms, padded so two lanes never false-share.
  struct alignas(CacheLineBytes) Shard {
    Cell Kinds[NumHistograms];
  };

  std::vector<Shard> Shards;
};

} // namespace telemetry
} // namespace cip

#endif // CIP_TELEMETRY_HISTOGRAM_H

//===- workloads/PhaseShift.cpp - Phase-shifting conflict workload -------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "workloads/PhaseShift.h"

#include "support/Chaos.h"

using namespace cip;
using namespace cip::workloads;

PhaseShiftParams PhaseShiftParams::forScale(Scale S) {
  PhaseShiftParams P;
  switch (S) {
  case Scale::Test:
    P.Epochs = 32;
    P.PhaseLen = 8;
    P.Rows = 24;
    P.WorkFlops = 40;
    break;
  case Scale::Train:
    // WorkFlops sized so per-window compute dominates per-window runtime
    // overhead: the adaptive bench compares techniques on what they add,
    // and at too-fine grain every technique is pure overhead.
    P.Epochs = 96;
    P.PhaseLen = 16;
    P.Rows = 48;
    P.WorkFlops = 1600;
    break;
  case Scale::Ref:
    P.Epochs = 192;
    P.PhaseLen = 24;
    P.Rows = 64;
    P.WorkFlops = 800;
    break;
  }
  return P;
}

PhaseShiftWorkload::PhaseShiftWorkload(const PhaseShiftParams &P) : Params(P) {
  assert(Params.PhaseLen > 0 && Params.Rows > 0 && "degenerate phase shape");
  assert(Params.Epochs >= 2 * Params.PhaseLen && "need at least two phases");
  Cells.resize(static_cast<std::size_t>(Params.PhaseLen) * Params.Rows);
  reset();
}

void PhaseShiftWorkload::reset() {
  for (std::size_t I = 0; I < Cells.size(); ++I)
    Cells[I] = 1.0 + static_cast<double>(I % 17) / 17.0;
}

std::uint64_t PhaseShiftWorkload::slot(std::uint32_t Epoch,
                                       std::size_t Task) const {
  if (!heavyPhase(Epoch))
    // Conflict-free: each epoch of the phase owns row block Epoch%PhaseLen,
    // so no two epochs of one phase share an address.
    return static_cast<std::uint64_t>(Epoch % Params.PhaseLen) * Params.Rows +
           Task;
  // Conflict-heavy: a bijective rotation of row block 0 — epoch e's task t
  // hits the slot epoch e-1's task t+1 hit, so every task carries a
  // one-epoch-distance dependence.
  return (Task + Epoch) % Params.Rows;
}

CIP_SPECULATIVE_TASK_BODY
void PhaseShiftWorkload::runTask(std::uint32_t Epoch, std::size_t Task) {
  double &C = Cells[slot(Epoch, Task)];
  // Read-modify-write: cross-epoch same-slot order is semantically
  // load-bearing, so the checksum oracle catches any ordering violation.
  C = burnFlops(C + 1.0 / (3.0 + static_cast<double>(Task)), Params.WorkFlops);
}

void PhaseShiftWorkload::taskAddresses(std::uint32_t Epoch, std::size_t Task,
                                       std::vector<std::uint64_t> &Addrs) const {
  Addrs.push_back(slot(Epoch, Task));
}

void PhaseShiftWorkload::registerState(speccross::CheckpointRegistry &Reg) {
  Reg.registerBuffer(Cells);
}

std::uint64_t PhaseShiftWorkload::checksum() const {
  return hashDoubles(Cells);
}

//===- workloads/FluidAnimate.cpp - PARSEC SPH fluid variants ------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "workloads/FluidAnimate.h"

#include "support/Chaos.h"
#include "support/Rng.h"

using namespace cip;
using namespace cip::workloads;

//===----------------------------------------------------------------------===//
// FLUIDANIMATE-1: the ComputeForce loop nest.
//===----------------------------------------------------------------------===//

FluidAnimate1Params FluidAnimate1Params::forScale(Scale S) {
  FluidAnimate1Params P;
  switch (S) {
  case Scale::Test:
    P.NumGroups = 60;
    P.ParticlesPerGroup = 16;
    P.WorkFlops = 4;
    break;
  case Scale::Train:
    P.NumGroups = 600;
    P.ParticlesPerGroup = 64;
    P.WorkFlops = 500;
    break;
  case Scale::Ref:
    P.NumGroups = 1500;
    P.ParticlesPerGroup = 64;
    P.WorkFlops = 500;
    break;
  }
  return P;
}

FluidAnimate1Workload::FluidAnimate1Workload(const FluidAnimate1Params &P)
    : Params(P) {
  assert((Params.ParticlesPerGroup & (Params.ParticlesPerGroup - 1)) == 0 &&
         "group size must be a power of two for neighbor distinctness");
  Stride.resize(Params.NumGroups);
  Xoshiro256StarStar Rng(Params.Seed);
  for (auto &S : Stride)
    S = static_cast<std::uint32_t>(Rng.nextBelow(Params.ParticlesPerGroup)) |
        1u;
  Force.resize(static_cast<std::size_t>(Params.NumGroups + 1) *
               Params.ParticlesPerGroup);
  reset();
}

std::uint64_t FluidAnimate1Workload::neighborOf(std::uint32_t Epoch,
                                                std::size_t Task) const {
  // Odd stride modulo a power of two: distinct neighbors within one group,
  // so iterations of one invocation stay independent (LOCALWRITE plan).
  const std::uint64_t Perm =
      (Task * Stride[Epoch] + Epoch) & (Params.ParticlesPerGroup - 1);
  return static_cast<std::uint64_t>(Epoch + 1) * Params.ParticlesPerGroup +
         Perm;
}

void FluidAnimate1Workload::reset() {
  for (std::size_t I = 0; I < Force.size(); ++I)
    Force[I] = 1e-2 * static_cast<double>(I % 41);
}

CIP_SPECULATIVE_TASK_BODY
void FluidAnimate1Workload::runTask(std::uint32_t Epoch, std::size_t Task) {
  const std::size_t Self =
      static_cast<std::size_t>(Epoch) * Params.ParticlesPerGroup + Task;
  const std::size_t Neigh = neighborOf(Epoch, Task);
  // Symmetric force contribution: scatter into self and the neighbor from
  // the next group — the cross-invocation dependence that manifests on
  // nearly every invocation pair.
  const double F = burnFlops(Force[Self] + Force[Neigh], Params.WorkFlops);
  Force[Self] += F;
  Force[Neigh] -= 0.5 * F;
}

void FluidAnimate1Workload::taskAddresses(
    std::uint32_t Epoch, std::size_t Task,
    std::vector<std::uint64_t> &Addrs) const {
  Addrs.push_back(static_cast<std::uint64_t>(Epoch) *
                      Params.ParticlesPerGroup +
                  Task);
  Addrs.push_back(neighborOf(Epoch, Task));
}

void FluidAnimate1Workload::registerState(speccross::CheckpointRegistry &Reg) {
  Reg.registerBuffer(Force);
}

std::uint64_t FluidAnimate1Workload::checksum() const {
  return hashDoubles(Force);
}

//===----------------------------------------------------------------------===//
// FLUIDANIMATE-2: the whole-frame loop (Fig 5.5).
//===----------------------------------------------------------------------===//

FluidAnimate2Params FluidAnimate2Params::forScale(Scale S) {
  FluidAnimate2Params P;
  switch (S) {
  case Scale::Test:
    P.Frames = 8;
    P.NumBlocks = 14;
    P.BlockSize = 8;
    P.WorkFlops = 2;
    break;
  case Scale::Train:
    // 55 blocks -> min cross-thread dependence distance 54 (Table 5.3).
    P.Frames = 100;
    P.NumBlocks = 55;
    P.BlockSize = 48;
    P.WorkFlops = 48;
    break;
  case Scale::Ref:
    P.Frames = 186; // 1488 epochs, as in Table 5.3
    P.NumBlocks = 55;
    P.BlockSize = 48;
    P.WorkFlops = 48;
    break;
  }
  return P;
}

FluidAnimate2Workload::FluidAnimate2Workload(const FluidAnimate2Params &P)
    : Params(P) {
  const std::size_t N =
      static_cast<std::size_t>(Params.NumBlocks) * Params.BlockSize;
  Pos.resize(N);
  Vel.resize(N);
  Dens.resize(N);
  Force.resize(N);
  Cell.resize(Params.NumBlocks);
  reset();
}

void FluidAnimate2Workload::reset() {
  for (std::size_t I = 0; I < Pos.size(); ++I) {
    Pos[I] = static_cast<double>(I % 37) / 37.0;
    Vel[I] = 1e-3 * static_cast<double>(I % 13);
    Dens[I] = 0.0;
    Force[I] = 0.0;
  }
  for (auto &C : Cell)
    C = 0.0;
}

CIP_SPECULATIVE_TASK_BODY
void FluidAnimate2Workload::runTask(std::uint32_t Epoch, std::size_t Task) {
  const std::size_t B = Task;
  const std::size_t Lo = begin(B), Hi = Lo + Params.BlockSize;
  const std::size_t NB = Params.NumBlocks;
  const std::size_t Left = B > 0 ? B - 1 : B;
  const std::size_t Right = B + 1 < NB ? B + 1 : B;
  switch (static_cast<Phase>(Epoch % 8)) {
  case ClearParticles:
    for (std::size_t I = Lo; I < Hi; ++I)
      Dens[I] = 0.0;
    break;
  case RebuildGrid: {
    double Sum = 0.0;
    for (std::size_t I = Lo; I < Hi; ++I)
      Sum += Pos[I];
    Cell[B] = Sum / static_cast<double>(Params.BlockSize);
    break;
  }
  case InitDensitiesAndForces:
    for (std::size_t I = Lo; I < Hi; ++I) {
      Dens[I] = 1.0;
      Force[I] = 0.0;
    }
    break;
  case ComputeDensities:
    for (std::size_t I = Lo; I < Hi; ++I) {
      const double NeighborPos =
          Pos[begin(Left) + (I - Lo)] + Pos[begin(Right) + (I - Lo)];
      Dens[I] += burnFlops(Pos[I] + 0.5 * NeighborPos, Params.WorkFlops);
    }
    break;
  case ComputeDensities2:
    for (std::size_t I = Lo; I < Hi; ++I)
      Dens[I] *= 1.0 + 1e-3 * Cell[B];
    break;
  case ComputeForces:
    for (std::size_t I = Lo; I < Hi; ++I) {
      const double NeighborDens =
          Dens[begin(Left) + (I - Lo)] + Dens[begin(Right) + (I - Lo)];
      Force[I] = burnFlops(Dens[I] - 0.25 * NeighborDens, Params.WorkFlops);
    }
    break;
  case ProcessCollisions:
    for (std::size_t I = Lo; I < Hi; ++I)
      if (Pos[I] > 1.0 || Pos[I] < 0.0)
        Vel[I] = -0.5 * Vel[I];
    break;
  case AdvanceParticles:
    for (std::size_t I = Lo; I < Hi; ++I) {
      Vel[I] += 1e-3 * Force[I];
      Pos[I] += Vel[I];
    }
    break;
  }
}

void FluidAnimate2Workload::taskAddresses(
    std::uint32_t Epoch, std::size_t Task,
    std::vector<std::uint64_t> &Addrs) const {
  // Block-granular abstract addresses, interleaved (Pos, Vel, Dens, Force,
  // Cell per block) so one task's accesses stay contiguous for range
  // signatures.
  const std::uint64_t NB = Params.NumBlocks;
  const std::uint64_t PosB = 5 * Task, VelB = 5 * Task + 1,
                      DensB = 5 * Task + 2, ForceB = 5 * Task + 3,
                      CellB = 5 * Task + 4;
  const std::uint64_t Left = Task > 0 ? Task - 1 : Task;
  const std::uint64_t Right = Task + 1 < NB ? Task + 1 : Task;
  switch (static_cast<Phase>(Epoch % 8)) {
  case ClearParticles:
    Addrs.push_back(DensB);
    break;
  case RebuildGrid:
    Addrs.push_back(CellB);
    Addrs.push_back(PosB);
    break;
  case InitDensitiesAndForces:
    Addrs.push_back(DensB);
    Addrs.push_back(ForceB);
    break;
  case ComputeDensities:
    Addrs.push_back(DensB);
    Addrs.push_back(PosB);
    Addrs.push_back(5 * Left);
    Addrs.push_back(5 * Right);
    break;
  case ComputeDensities2:
    Addrs.push_back(DensB);
    Addrs.push_back(CellB);
    break;
  case ComputeForces:
    Addrs.push_back(ForceB);
    Addrs.push_back(DensB);
    Addrs.push_back(5 * Left + 2);
    Addrs.push_back(5 * Right + 2);
    break;
  case ProcessCollisions:
    Addrs.push_back(VelB);
    Addrs.push_back(PosB);
    break;
  case AdvanceParticles:
    Addrs.push_back(PosB);
    Addrs.push_back(VelB);
    Addrs.push_back(ForceB);
    break;
  }
}

void FluidAnimate2Workload::registerState(speccross::CheckpointRegistry &Reg) {
  Reg.registerBuffer(Pos);
  Reg.registerBuffer(Vel);
  Reg.registerBuffer(Dens);
  Reg.registerBuffer(Force);
  Reg.registerBuffer(Cell);
}

std::uint64_t FluidAnimate2Workload::checksum() const {
  return hashDoubles(
      Cell, hashDoubles(Force,
                        hashDoubles(Dens, hashDoubles(Vel, hashDoubles(Pos)))));
}

//===- workloads/Jacobi.h - Ping-pong Jacobi 2-D stencil -------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic Jacobi relaxation: each sweep reads one grid and writes the
/// other, alternating per epoch; tasks are interior rows. Reads of rows
/// i-1/i+1 written by the previous epoch produce cross-thread conflicts one
/// task short of a full epoch — min dependence distance N-3 for an N-row
/// grid, matching Table 5.3's 497 (train, N=500) and 997 (ref, N=1000).
///
//===----------------------------------------------------------------------===//

#ifndef CIP_WORKLOADS_JACOBI_H
#define CIP_WORKLOADS_JACOBI_H

#include "workloads/Workload.h"

namespace cip {
namespace workloads {

struct JacobiParams {
  std::uint32_t Sweeps = 20; // epochs
  std::uint32_t Rows = 32;
  std::uint32_t Cols = 32;
  unsigned WorkFlops = 0; // extra per-cell smoothing work
  std::uint64_t Seed = 0x1ac0b1;

  static JacobiParams forScale(Scale S);
};

/// See file comment.
class JacobiWorkload final : public Workload {
public:
  explicit JacobiWorkload(const JacobiParams &P);

  const char *name() const override { return "jacobi"; }
  void reset() override;
  std::uint32_t numEpochs() const override { return Params.Sweeps; }
  std::size_t numTasks(std::uint32_t Epoch) const override {
    return Params.Rows - 2;
  }
  void runTask(std::uint32_t Epoch, std::size_t Task) override;
  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override;
  std::uint64_t addressSpaceSize() const override { return 2 * Params.Rows; }
  void registerState(speccross::CheckpointRegistry &Reg) override;
  std::uint64_t checksum() const override;
  bool domoreApplicable() const override { return false; }

private:
  double &at(std::vector<double> &G, std::size_t I, std::size_t J) {
    return G[I * Params.Cols + J];
  }

  JacobiParams Params;
  std::vector<double> A, B; // ping-pong grids
};

} // namespace workloads
} // namespace cip

#endif // CIP_WORKLOADS_JACOBI_H

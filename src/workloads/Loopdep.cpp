//===- workloads/Loopdep.cpp - OmpSCR-style loop-dependence kernel -------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "workloads/Loopdep.h"

#include "support/Chaos.h"

using namespace cip;
using namespace cip::workloads;

LoopdepParams LoopdepParams::forScale(Scale S) {
  LoopdepParams P;
  switch (S) {
  case Scale::Test:
    P.Epochs = 40;
    P.TasksPerEpoch = 24;
    P.CellsPerTask = 8;
    P.WorkFlops = 2;
    break;
  case Scale::Train:
    // 2*250 - 1 = 499 ~ Table 5.3's 500 on the train input.
    P.Epochs = 500;
    P.TasksPerEpoch = 250;
    P.CellsPerTask = 16;
    P.WorkFlops = 24;
    break;
  case Scale::Ref:
    // 2*400 - 1 = 799 ~ Table 5.3's 800 on the ref input.
    P.Epochs = 1000;
    P.TasksPerEpoch = 400;
    P.CellsPerTask = 16;
    P.WorkFlops = 24;
    break;
  }
  return P;
}

LoopdepWorkload::LoopdepWorkload(const LoopdepParams &P) : Params(P) {
  assert(Params.Epochs >= 4 && "need at least one full buffer rotation");
  Data.resize(4ull * Params.TasksPerEpoch * Params.CellsPerTask);
  reset();
}

void LoopdepWorkload::reset() {
  for (std::size_t I = 0; I < Data.size(); ++I)
    Data[I] = static_cast<double>(I % 23) / 23.0;
}

CIP_SPECULATIVE_TASK_BODY
void LoopdepWorkload::runTask(std::uint32_t Epoch, std::size_t Task) {
  const std::uint32_t Dst = Epoch % 4;
  const std::uint32_t Src = (Epoch + 2) % 4; // == (Epoch - 2) mod 4
  // Reads segment Task and Task+1 of the buffer written two epochs ago.
  const std::size_t Next = (Task + 1) % Params.TasksPerEpoch;
  for (std::size_t C = 0; C < Params.CellsPerTask; ++C) {
    const double In =
        0.5 * (cell(Src, Task, C) +
               cell(Src, Next, Params.CellsPerTask - 1 - C));
    cell(Dst, Task, C) = burnFlops(In, Params.WorkFlops);
  }
}

void LoopdepWorkload::taskAddresses(std::uint32_t Epoch, std::size_t Task,
                                    std::vector<std::uint64_t> &Addrs) const {
  // Segment-granular: buffer b's segment t has abstract address
  // b * TasksPerEpoch + t.
  const std::uint64_t T = Params.TasksPerEpoch;
  const std::uint64_t Dst = Epoch % 4;
  const std::uint64_t Src = (Epoch + 2) % 4;
  Addrs.push_back(Dst * T + Task);
  Addrs.push_back(Src * T + Task);
  Addrs.push_back(Src * T + (Task + 1) % T);
}

void LoopdepWorkload::registerState(speccross::CheckpointRegistry &Reg) {
  Reg.registerBuffer(Data);
}

std::uint64_t LoopdepWorkload::checksum() const { return hashDoubles(Data); }

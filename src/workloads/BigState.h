//===- workloads/BigState.h - Large-state sparse-write workload -*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checkpoint-substrate stress input (DESIGN.md §16): a large registered
/// footprint of which each epoch writes only a small, scattered fraction.
/// Eager checkpointing copies the whole footprint every round regardless of
/// what changed, so its cost scales with state size; the page-dirty
/// substrates copy only the written pages, so their cost scales with the
/// write set. This workload makes the gap as wide as Table 5.1's sparse
/// codes do in practice (bench_ckpt_substrate measures it).
///
/// Structure: the state vector is divided into one contiguous *stripe* per
/// task. Task t of epoch e writes \c WritesPerTask cells inside its own
/// stripe, at offsets (e * W + k) * Step mod StripeLen with Step coprime to
/// StripeLen — a full-period stride generator, so tasks of one epoch write
/// disjoint cells (the DOALL contract) and *consecutive epochs are disjoint
/// too* until the generator wraps (StripeLen >= Epochs * W by
/// construction). Speculation therefore never aborts on its own; every
/// checkpoint round dirties at most Tasks * WritesPerTask scattered pages
/// of a footprint thousands of pages big.
///
/// Each write is a read-modify-write of its cell, so a restore that loses a
/// committed byte — or restores one byte too many — changes the digest.
/// checksum() re-derives the exact write set from the generator and hashes
/// those cells (plus the stripe boundaries), so it stays O(total writes)
/// instead of O(footprint) while still covering every byte a correct run
/// may touch. Registered with the factory as "bigstate" but absent from
/// allWorkloadNames(): it is a checkpoint-bench instrument, not a Table 5.1
/// benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_WORKLOADS_BIGSTATE_H
#define CIP_WORKLOADS_BIGSTATE_H

#include "workloads/Workload.h"

namespace cip {
namespace workloads {

struct BigStateParams {
  std::uint32_t Epochs = 12;
  std::uint32_t Tasks = 8;
  /// Cells (doubles) per task stripe; total footprint = Tasks * StripeLen.
  /// Must exceed Epochs * WritesPerTask so the stride generator never wraps
  /// within a run (keeps all epochs pairwise write-disjoint).
  std::uint32_t StripeLen = 16384;
  /// Scattered cells each task writes per epoch.
  std::uint32_t WritesPerTask = 4;
  /// Per-write compute grain (burnFlops chain length).
  unsigned WorkFlops = 32;

  static BigStateParams forScale(Scale S);
};

/// See file comment.
class BigStateWorkload final : public Workload {
public:
  explicit BigStateWorkload(const BigStateParams &P);

  const char *name() const override { return "bigstate"; }
  void reset() override;
  std::uint32_t numEpochs() const override { return Params.Epochs; }
  std::size_t numTasks(std::uint32_t) const override { return Params.Tasks; }
  void runTask(std::uint32_t Epoch, std::size_t Task) override;
  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override;
  std::uint64_t addressSpaceSize() const override {
    return static_cast<std::uint64_t>(Params.Tasks) * Params.StripeLen;
  }
  void registerState(speccross::CheckpointRegistry &Reg) override;
  std::uint64_t checksum() const override;

  /// Sparse scattered writes dominate; a dense shadow over the full
  /// footprint would make DOMORE's probe stage the benchmark instead of
  /// the checkpoint substrate under test.
  bool domoreApplicable() const override { return false; }

  /// Writes scatter across a whole stripe, so a min/max range signature
  /// would cover the stripe and neighbor-epoch ranges would always overlap.
  speccross::SignatureScheme preferredSignature() const override {
    return speccross::SignatureScheme::Bloom;
  }

  /// Registered bytes (for benches reporting footprint vs copied bytes).
  std::size_t stateBytes() const { return State.size() * sizeof(double); }

private:
  /// Stripe-relative cell index of write \p K of (\p Epoch, \p Task).
  std::size_t cellOf(std::uint32_t Epoch, std::size_t Task,
                     std::uint32_t K) const;

  BigStateParams Params;
  std::size_t Step = 1; // stride, coprime to StripeLen
  std::vector<double> State;
};

} // namespace workloads
} // namespace cip

#endif // CIP_WORKLOADS_BIGSTATE_H

//===- workloads/Fdtd.h - PolyBench 2-D FDTD kernel ------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PolyBench's fdtd-2d: each timestep runs three row-parallel sweeps
/// (update Ey from Hz, update Ex from Hz, update Hz from Ex/Ey). Each sweep
/// is one epoch whose tasks are rows. The Hz→Ey dependence crosses one row,
/// so the closest cross-thread cross-epoch conflict sits one epoch minus one
/// task away — Table 5.3 reports min distances 599 (train) / 799 (ref),
/// which this generator reproduces exactly with 600/800 rows.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_WORKLOADS_FDTD_H
#define CIP_WORKLOADS_FDTD_H

#include "workloads/Workload.h"

namespace cip {
namespace workloads {

struct FdtdParams {
  std::uint32_t TimeSteps = 20; // epochs = 3 * TimeSteps
  std::uint32_t Rows = 64;      // tasks per epoch
  std::uint32_t Cols = 64;
  unsigned WorkFlops = 0;
  std::uint64_t Seed = 0xfd7d;

  static FdtdParams forScale(Scale S);
};

/// See file comment.
class FdtdWorkload final : public Workload {
public:
  explicit FdtdWorkload(const FdtdParams &P);

  const char *name() const override { return "fdtd"; }
  void reset() override;
  std::uint32_t numEpochs() const override { return 3 * Params.TimeSteps; }
  std::size_t numTasks(std::uint32_t Epoch) const override {
    return Params.Rows;
  }
  void runTask(std::uint32_t Epoch, std::size_t Task) override;
  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override;
  std::uint64_t addressSpaceSize() const override { return 3 * Params.Rows; }
  void registerState(speccross::CheckpointRegistry &Reg) override;
  std::uint64_t checksum() const override;
  bool domoreApplicable() const override { return false; }

private:
  double &ey(std::size_t I, std::size_t J) { return Ey[I * Params.Cols + J]; }
  double &ex(std::size_t I, std::size_t J) { return Ex[I * Params.Cols + J]; }
  double &hz(std::size_t I, std::size_t J) { return Hz[I * Params.Cols + J]; }

  FdtdParams Params;
  std::vector<double> Ey, Ex, Hz;
};

} // namespace workloads
} // namespace cip

#endif // CIP_WORKLOADS_FDTD_H

//===- workloads/Equake.cpp - SPEC EQUAKE-like seismic kernel ------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "workloads/Equake.h"

#include "support/Chaos.h"
#include "support/Rng.h"

using namespace cip;
using namespace cip::workloads;

EquakeParams EquakeParams::forScale(Scale S) {
  EquakeParams P;
  switch (S) {
  case Scale::Test:
    P.TimeSteps = 30;
    P.NumBlocks = 8;
    P.BlockSize = 16;
    P.WorkFlops = 2;
    break;
  case Scale::Train:
    P.TimeSteps = 300;
    P.NumBlocks = 22;
    P.BlockSize = 192;
    P.WorkFlops = 12;
    break;
  case Scale::Ref:
    // Table 5.3: 66000 tasks over 3000 epochs (22 tasks each).
    P.TimeSteps = 1000;
    P.NumBlocks = 22;
    P.BlockSize = 192;
    P.WorkFlops = 12;
    break;
  }
  return P;
}

EquakeWorkload::EquakeWorkload(const EquakeParams &P) : Params(P) {
  const std::size_t N = numNodes();
  Col.resize(N * Params.NeighborsPerNode);
  Coef.resize(N * Params.NeighborsPerNode);
  // The mesh is input: neighbors are drawn within the node's own block, the
  // irregularity static analysis cannot see through but the profiler can.
  Xoshiro256StarStar Rng(Params.Seed);
  for (std::size_t I = 0; I < N; ++I) {
    const std::size_t Block = I / Params.BlockSize;
    const std::size_t Base = Block * Params.BlockSize;
    for (std::uint32_t K = 0; K < Params.NeighborsPerNode; ++K) {
      Col[I * Params.NeighborsPerNode + K] = static_cast<std::uint32_t>(
          Base + Rng.nextBelow(Params.BlockSize));
      Coef[I * Params.NeighborsPerNode + K] =
          0.25 + 0.5 * Rng.nextDouble();
    }
  }
  W.resize(N);
  U.resize(N);
  V.resize(N);
  reset();
}

void EquakeWorkload::reset() {
  const std::size_t N = numNodes();
  for (std::size_t I = 0; I < N; ++I) {
    W[I] = 0.0;
    U[I] = 1e-2 * static_cast<double>(I % 31);
    V[I] = 1e-3 * static_cast<double>(I % 17);
  }
}

CIP_SPECULATIVE_TASK_BODY
void EquakeWorkload::runTask(std::uint32_t Epoch, std::size_t Task) {
  const Phase P = static_cast<Phase>(Epoch % 3);
  const std::size_t Begin = Task * Params.BlockSize;
  const std::size_t End = Begin + Params.BlockSize;
  switch (P) {
  case Smvp:
    for (std::size_t I = Begin; I < End; ++I) {
      double Acc = 0.0;
      for (std::uint32_t K = 0; K < Params.NeighborsPerNode; ++K) {
        const std::size_t Slot = I * Params.NeighborsPerNode + K;
        Acc += Coef[Slot] * V[Col[Slot]];
      }
      W[I] = burnFlops(Acc, Params.WorkFlops);
    }
    break;
  case Integrate:
    for (std::size_t I = Begin; I < End; ++I)
      U[I] = burnFlops(U[I] + 1e-3 * W[I], Params.WorkFlops);
    break;
  case Velocity:
    for (std::size_t I = Begin; I < End; ++I)
      V[I] = burnFlops(0.99 * V[I] + 1e-3 * U[I], Params.WorkFlops);
    break;
  }
}

void EquakeWorkload::taskAddresses(std::uint32_t Epoch, std::size_t Task,
                                   std::vector<std::uint64_t> &Addrs) const {
  // Block-granular abstract addresses, interleaved (V, U, W per block) so
  // one task's accesses are contiguous and range signatures stay precise.
  const std::uint64_t VBlock = 3 * Task;
  const std::uint64_t UBlock = 3 * Task + 1;
  const std::uint64_t WBlock = 3 * Task + 2;
  switch (static_cast<Phase>(Epoch % 3)) {
  case Smvp:
    // Reads V through the index array (the speculated accesses) and writes
    // W. Neighbors of this input stay within the block.
    Addrs.push_back(VBlock);
    Addrs.push_back(WBlock);
    break;
  case Integrate:
    Addrs.push_back(WBlock);
    Addrs.push_back(UBlock);
    break;
  case Velocity:
    Addrs.push_back(UBlock);
    Addrs.push_back(VBlock);
    break;
  }
}

void EquakeWorkload::registerState(speccross::CheckpointRegistry &Reg) {
  Reg.registerBuffer(W);
  Reg.registerBuffer(U);
  Reg.registerBuffer(V);
}

std::uint64_t EquakeWorkload::checksum() const {
  return hashDoubles(V, hashDoubles(U, hashDoubles(W)));
}

//===- workloads/LLUBench.h - Linked-list update microbench ----*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM's llubenchmark: pointer-chasing updates over many linked lists.
/// Each epoch processes its own disjoint chunk of lists (tasks = lists);
/// the pointer indirection defeats static analysis, forcing barriers in the
/// baseline, but no address is ever shared across epochs, so profiling
/// reports "*" (Table 5.3) and speculation never fails — the ideal
/// SPECCROSS case.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_WORKLOADS_LLUBENCH_H
#define CIP_WORKLOADS_LLUBENCH_H

#include "workloads/Workload.h"

namespace cip {
namespace workloads {

struct LLUBenchParams {
  std::uint32_t Epochs = 40;
  std::uint32_t ListsPerEpoch = 55; // Table 5.3: 110000 tasks / 2000 epochs
  std::uint32_t NodesPerList = 32;
  std::uint64_t Seed = 0x11ab;

  static LLUBenchParams forScale(Scale S);
};

/// See file comment.
class LLUBenchWorkload final : public Workload {
public:
  explicit LLUBenchWorkload(const LLUBenchParams &P);

  const char *name() const override { return "llubench"; }
  void reset() override;
  std::uint32_t numEpochs() const override { return Params.Epochs; }
  std::size_t numTasks(std::uint32_t Epoch) const override {
    return Params.ListsPerEpoch;
  }
  void runTask(std::uint32_t Epoch, std::size_t Task) override;
  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override;
  std::uint64_t addressSpaceSize() const override {
    return static_cast<std::uint64_t>(Params.Epochs) * Params.ListsPerEpoch;
  }
  void registerState(speccross::CheckpointRegistry &Reg) override;
  std::uint64_t checksum() const override;

private:
  std::size_t headOf(std::uint32_t Epoch, std::size_t Task) const {
    return (static_cast<std::size_t>(Epoch) * Params.ListsPerEpoch + Task) *
           Params.NodesPerList;
  }

  LLUBenchParams Params;
  std::vector<std::uint32_t> Next; // intra-list successor, node-pool indexed
  std::vector<double> Val;         // per-node payload
};

} // namespace workloads
} // namespace cip

#endif // CIP_WORKLOADS_LLUBENCH_H

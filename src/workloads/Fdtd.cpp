//===- workloads/Fdtd.cpp - PolyBench 2-D FDTD kernel --------------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "workloads/Fdtd.h"

#include "support/Chaos.h"

using namespace cip;
using namespace cip::workloads;

FdtdParams FdtdParams::forScale(Scale S) {
  FdtdParams P;
  switch (S) {
  case Scale::Test:
    P.TimeSteps = 12;
    P.Rows = 24;
    P.Cols = 24;
    break;
  case Scale::Train:
    // 600 rows -> min cross-thread dependence distance 599 (Table 5.3).
    P.TimeSteps = 80;
    P.Rows = 600;
    P.Cols = 32;
    P.WorkFlops = 12;
    break;
  case Scale::Ref:
    // 800 rows -> 799; 1200 epochs as in Table 5.3.
    P.TimeSteps = 400;
    P.Rows = 800;
    P.Cols = 32;
    P.WorkFlops = 12;
    break;
  }
  return P;
}

FdtdWorkload::FdtdWorkload(const FdtdParams &P) : Params(P) {
  assert(Params.Rows >= 2 && Params.Cols >= 2 && "grid too small");
  const std::size_t N = static_cast<std::size_t>(Params.Rows) * Params.Cols;
  Ey.resize(N);
  Ex.resize(N);
  Hz.resize(N);
  reset();
}

void FdtdWorkload::reset() {
  for (std::size_t I = 0; I < Params.Rows; ++I)
    for (std::size_t J = 0; J < Params.Cols; ++J) {
      ey(I, J) = static_cast<double>((I + J) % 13) / 13.0;
      ex(I, J) = static_cast<double>((I * 7 + J) % 11) / 11.0;
      hz(I, J) = static_cast<double>((I + 3 * J) % 17) / 17.0;
    }
}

CIP_SPECULATIVE_TASK_BODY
void FdtdWorkload::runTask(std::uint32_t Epoch, std::size_t Task) {
  const std::size_t I = Task;
  const std::size_t Cols = Params.Cols;
  const std::uint32_t T = Epoch / 3;
  switch (Epoch % 3) {
  case 0: // Ey sweep: row 0 is the source boundary; others read Hz[i-1].
    if (I == 0) {
      for (std::size_t J = 0; J < Cols; ++J)
        ey(0, J) = static_cast<double>(T) * 1e-3;
    } else {
      for (std::size_t J = 0; J < Cols; ++J)
        ey(I, J) = burnFlops(ey(I, J) - 0.5 * (hz(I, J) - hz(I - 1, J)),
                             Params.WorkFlops);
    }
    break;
  case 1: // Ex sweep: row-local Hz reads.
    for (std::size_t J = 1; J < Cols; ++J)
      ex(I, J) = burnFlops(ex(I, J) - 0.5 * (hz(I, J) - hz(I, J - 1)),
                           Params.WorkFlops);
    break;
  case 2: // Hz sweep: reads Ey rows i and i+1.
    if (I + 1 < Params.Rows) {
      for (std::size_t J = 0; J + 1 < Cols; ++J)
        hz(I, J) = burnFlops(hz(I, J) - 0.7 * (ex(I, J + 1) - ex(I, J) +
                                               ey(I + 1, J) - ey(I, J)),
                             Params.WorkFlops);
    }
    break;
  }
}

void FdtdWorkload::taskAddresses(std::uint32_t Epoch, std::size_t Task,
                                 std::vector<std::uint64_t> &Addrs) const {
  // Row-granular abstract addresses, interleaved (Ey, Ex, Hz per row) so
  // one task's accesses stay contiguous for range signatures.
  const std::uint64_t R = Params.Rows;
  const std::uint64_t EyRow = 3 * Task;
  const std::uint64_t ExRow = 3 * Task + 1;
  const std::uint64_t HzRow = 3 * Task + 2;
  switch (Epoch % 3) {
  case 0:
    Addrs.push_back(EyRow);
    if (Task > 0) {
      Addrs.push_back(HzRow);
      Addrs.push_back(HzRow - 3);
    }
    break;
  case 1:
    Addrs.push_back(ExRow);
    Addrs.push_back(HzRow);
    break;
  case 2:
    if (Task + 1 < R) {
      Addrs.push_back(HzRow);
      Addrs.push_back(ExRow);
      Addrs.push_back(EyRow);
      Addrs.push_back(EyRow + 3);
    }
    break;
  }
}

void FdtdWorkload::registerState(speccross::CheckpointRegistry &Reg) {
  Reg.registerBuffer(Ey);
  Reg.registerBuffer(Ex);
  Reg.registerBuffer(Hz);
}

std::uint64_t FdtdWorkload::checksum() const {
  return hashDoubles(Hz, hashDoubles(Ex, hashDoubles(Ey)));
}

//===- workloads/CG.cpp - NAS CG-like sparse update kernel ---------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "workloads/CG.h"

#include "support/Chaos.h"
#include "support/Rng.h"

using namespace cip;
using namespace cip::workloads;

CGParams CGParams::forScale(Scale S) {
  CGParams P;
  switch (S) {
  case Scale::Test:
    P.NumRows = 120;
    P.RowLength = 9;
    P.ArraySize = 512;
    P.WorkFlops = 8;
    break;
  case Scale::Train:
    P.NumRows = 2000;
    P.RowLength = 9;
    P.ArraySize = 4096;
    P.WorkFlops = 1500;
    break;
  case Scale::Ref:
    // Matches Table 5.3: 63000 tasks over 7000 epochs (9 tasks each).
    P.NumRows = 7000;
    P.RowLength = 9;
    P.ArraySize = 8192;
    P.WorkFlops = 1500;
    break;
  }
  return P;
}

CGWorkload::CGWorkload(const CGParams &P) : Params(P) {
  assert(Params.RowLength > 0 && Params.RowLength <= Params.ArraySize &&
         "row must fit in the array");
  RowStart.resize(Params.NumRows);
  // The index arrays are part of the *input*, not of mutable state: build
  // them once so the dependence pattern is identical across executors.
  Xoshiro256StarStar Rng(Params.Seed);
  const std::uint32_t MaxBase = Params.ArraySize - Params.RowLength;
  std::uint32_t Prev = 0;
  for (std::uint32_t I = 0; I < Params.NumRows; ++I) {
    std::uint32_t Base;
    if (I > 0 && Rng.nextBool(Params.ManifestRate)) {
      // Overlap the previous row's range by at least one element, which
      // manifests the update() cross-invocation dependence.
      const std::uint32_t Lo =
          Prev >= Params.RowLength - 1 ? Prev - (Params.RowLength - 1) : 0;
      const std::uint32_t Hi = std::min(Prev + Params.RowLength - 1, MaxBase);
      Base = Lo + static_cast<std::uint32_t>(Rng.nextBelow(Hi - Lo + 1));
    } else {
      Base = static_cast<std::uint32_t>(Rng.nextBelow(MaxBase + 1));
    }
    RowStart[I] = Base;
    Prev = Base;
  }
  C.resize(Params.ArraySize);
  reset();
}

void CGWorkload::reset() {
  for (std::uint32_t I = 0; I < Params.ArraySize; ++I)
    C[I] = 1.0 + 1e-3 * static_cast<double>(I % 97);
}

CIP_SPECULATIVE_TASK_BODY
void CGWorkload::runTask(std::uint32_t Epoch, std::size_t Task) {
  const std::uint64_t J = elementOf(Epoch, Task);
  // update(&C[j]): read-modify-write, so the cross-invocation order the
  // runtime enforces is observable in the checksum.
  C[J] += burnFlops(C[J] + static_cast<double>(J), Params.WorkFlops);
}

void CGWorkload::taskAddresses(std::uint32_t Epoch, std::size_t Task,
                               std::vector<std::uint64_t> &Addrs) const {
  Addrs.push_back(elementOf(Epoch, Task));
}

void CGWorkload::registerState(speccross::CheckpointRegistry &Reg) {
  Reg.registerBuffer(C);
}

std::uint64_t CGWorkload::checksum() const { return hashDoubles(C); }

double CGWorkload::measuredManifestRate() const {
  if (Params.NumRows < 2)
    return 0.0;
  std::uint64_t Overlapping = 0;
  for (std::uint32_t I = 1; I < Params.NumRows; ++I) {
    const std::uint32_t A = RowStart[I - 1], B = RowStart[I];
    const std::uint32_t Lo = std::max(A, B), Hi = std::min(A, B);
    if (Lo - Hi < Params.RowLength)
      ++Overlapping;
  }
  return static_cast<double>(Overlapping) /
         static_cast<double>(Params.NumRows - 1);
}

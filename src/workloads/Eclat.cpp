//===- workloads/Eclat.cpp - MineBench ECLAT tid-list builder ------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "workloads/Eclat.h"

#include "support/Chaos.h"
#include "support/Rng.h"

using namespace cip;
using namespace cip::workloads;

EclatParams EclatParams::forScale(Scale S) {
  EclatParams P;
  switch (S) {
  case Scale::Test:
    P.NumNodes = 60;
    P.ItemsPerNode = 16;
    P.NumTxns = 64;
    break;
  case Scale::Train:
    P.NumNodes = 800;
    P.ItemsPerNode = 32;
    P.NumTxns = 128;
    P.WorkFlops = 1500;
    break;
  case Scale::Ref:
    P.NumNodes = 2000;
    P.ItemsPerNode = 32;
    P.NumTxns = 128;
    P.WorkFlops = 1500;
    break;
  }
  return P;
}

EclatWorkload::EclatWorkload(const EclatParams &P) : Params(P) {
  assert((Params.NumTxns & (Params.NumTxns - 1)) == 0 &&
         "NumTxns must be a power of two for within-node distinctness");
  assert(Params.ItemsPerNode <= Params.NumTxns &&
         "a node cannot carry more distinct transactions than exist");
  Stride.resize(Params.NumNodes);
  Xoshiro256StarStar Rng(Params.Seed);
  for (auto &S : Stride)
    S = static_cast<std::uint32_t>(Rng.nextBelow(Params.NumTxns)) | 1u;
  Count.resize(Params.NumTxns);
  // Each node appends at most one item per transaction, so NumNodes slots
  // per transaction always suffice.
  TidData.resize(static_cast<std::size_t>(Params.NumTxns) * Params.NumNodes);
  Scratch.resize(Params.NumTxns);
  reset();
}

std::uint32_t EclatWorkload::txnOf(std::uint32_t Epoch,
                                   std::size_t Task) const {
  // Odd stride modulo a power of two is a bijection, so transactions are
  // distinct within one node; different nodes remap the same small
  // transaction set, which is the cross-invocation dependence.
  return static_cast<std::uint32_t>(
      (Task * Stride[Epoch] + Epoch) & (Params.NumTxns - 1));
}

void EclatWorkload::reset() {
  for (auto &C : Count)
    C = 0;
  for (auto &D : TidData)
    D = 0;
  for (auto &S : Scratch)
    S = 0.5;
}

CIP_SPECULATIVE_TASK_BODY
void EclatWorkload::runTask(std::uint32_t Epoch, std::size_t Task) {
  const std::uint32_t Txn = txnOf(Epoch, Task);
  // Append item (Epoch, Task) to the transaction's tid-list. The runtimes
  // order same-transaction appends, so the list contents are deterministic.
  std::uint32_t &Slot = Count[Txn];
  assert(Slot < Params.NumNodes && "tid-list overflow");
  TidData[static_cast<std::size_t>(Txn) * Params.NumNodes + Slot] =
      Epoch * Params.ItemsPerNode + static_cast<std::uint32_t>(Task);
  ++Slot;
  // Per-item processing (support counting in the real ECLAT); folded into
  // a per-transaction accumulator, ordered by the same dependence.
  Scratch[Txn] = burnFlops(Scratch[Txn] + static_cast<double>(Task),
                           Params.WorkFlops);
}

void EclatWorkload::taskAddresses(std::uint32_t Epoch, std::size_t Task,
                                  std::vector<std::uint64_t> &Addrs) const {
  Addrs.push_back(txnOf(Epoch, Task));
}

void EclatWorkload::registerState(speccross::CheckpointRegistry &Reg) {
  Reg.registerBuffer(Count);
  Reg.registerBuffer(TidData);
  Reg.registerBuffer(Scratch);
}

std::uint64_t EclatWorkload::checksum() const {
  std::uint64_t H = hashBytes(Count.data(),
                              Count.size() * sizeof(std::uint32_t));
  for (std::uint32_t T = 0; T < Params.NumTxns; ++T)
    H = hashBytes(&TidData[static_cast<std::size_t>(T) * Params.NumNodes],
                  Count[T] * sizeof(std::uint32_t), H);
  return hashDoubles(Scratch, H);
}

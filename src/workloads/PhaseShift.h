//===- workloads/PhaseShift.h - Phase-shifting conflict workload -*- C++ -*-=//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A synthetic workload whose profitable execution technique changes
/// mid-run — the stress input for the adaptive policy engine (DESIGN.md
/// §11, bench_policy_adaptive). Epochs alternate between two regimes of
/// \c PhaseLen epochs each:
///
///  * *conflict-free* phases: epoch e writes row block e % PhaseLen, so no
///    two epochs of the phase share an address — speculation never aborts
///    and DOMORE's shadow probes are pure overhead (the Table 5.3 "*"
///    regime, where SPECCROSS wins);
///  * *conflict-heavy* phases: epoch e writes slots (t + e) % Rows — a
///    bijective rotation of one shared row block, so every task conflicts
///    with the previous epoch — SPECCROSS misspeculates every round while
///    DOMORE's point-to-point sync conditions order exactly the touched
///    pairs (the regime where DOMORE wins).
///
/// Each task updates one cell read-modify-write, so cross-epoch order is
/// semantically load-bearing and the bit-identical checksum oracle catches
/// any technique (or switch boundary) that breaks it. Registered with the
/// factory as "phaseshift" but deliberately absent from allWorkloadNames():
/// it is an adaptive-bench instrument, not a Table 5.1 benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_WORKLOADS_PHASESHIFT_H
#define CIP_WORKLOADS_PHASESHIFT_H

#include "workloads/Workload.h"

namespace cip {
namespace workloads {

struct PhaseShiftParams {
  /// Total epochs; a multiple of 2*PhaseLen gives balanced phases.
  std::uint32_t Epochs = 64;
  /// Epochs per phase. Align CIP_POLICY_WINDOW to a divisor of this so
  /// decision windows never straddle a phase edge.
  std::uint32_t PhaseLen = 16;
  /// Tasks per epoch == cells per row block.
  std::uint32_t Rows = 48;
  /// Per-task compute grain.
  unsigned WorkFlops = 120;

  static PhaseShiftParams forScale(Scale S);
};

/// See file comment.
class PhaseShiftWorkload final : public Workload {
public:
  explicit PhaseShiftWorkload(const PhaseShiftParams &P);

  const char *name() const override { return "phaseshift"; }
  void reset() override;
  std::uint32_t numEpochs() const override { return Params.Epochs; }
  std::size_t numTasks(std::uint32_t) const override { return Params.Rows; }
  void runTask(std::uint32_t Epoch, std::size_t Task) override;
  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override;
  std::uint64_t addressSpaceSize() const override {
    return static_cast<std::uint64_t>(Params.PhaseLen) * Params.Rows;
  }
  void registerState(speccross::CheckpointRegistry &Reg) override;
  std::uint64_t checksum() const override;

  /// One address per task: the exact min/max range signature is precise.
  speccross::SignatureScheme preferredSignature() const override {
    return speccross::SignatureScheme::Range;
  }

  /// True when \p Epoch lies in a conflict-heavy phase (for tests/benches).
  bool heavyPhase(std::uint32_t Epoch) const {
    return ((Epoch / Params.PhaseLen) & 1) != 0;
  }

private:
  std::uint64_t slot(std::uint32_t Epoch, std::size_t Task) const;

  PhaseShiftParams Params;
  std::vector<double> Cells; // PhaseLen row blocks of Rows cells
};

} // namespace workloads
} // namespace cip

#endif // CIP_WORKLOADS_PHASESHIFT_H

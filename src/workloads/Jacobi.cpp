//===- workloads/Jacobi.cpp - Ping-pong Jacobi 2-D stencil ---------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "workloads/Jacobi.h"

#include "support/Chaos.h"

using namespace cip;
using namespace cip::workloads;

JacobiParams JacobiParams::forScale(Scale S) {
  JacobiParams P;
  switch (S) {
  case Scale::Test:
    P.Sweeps = 24;
    P.Rows = 26;
    P.Cols = 26;
    break;
  case Scale::Train:
    // 500 rows -> min cross-thread dependence distance 497 (Table 5.3).
    P.Sweeps = 120;
    P.Rows = 500;
    P.Cols = 96;
    P.WorkFlops = 16;
    break;
  case Scale::Ref:
    // 1000 rows -> 997; 1000 epochs as in Table 5.3.
    P.Sweeps = 400;
    P.Rows = 1000;
    P.Cols = 96;
    P.WorkFlops = 16;
    break;
  }
  return P;
}

JacobiWorkload::JacobiWorkload(const JacobiParams &P) : Params(P) {
  assert(Params.Rows >= 3 && Params.Cols >= 3 && "grid too small");
  const std::size_t N = static_cast<std::size_t>(Params.Rows) * Params.Cols;
  A.resize(N);
  B.resize(N);
  reset();
}

void JacobiWorkload::reset() {
  for (std::size_t I = 0; I < Params.Rows; ++I)
    for (std::size_t J = 0; J < Params.Cols; ++J) {
      at(A, I, J) = static_cast<double>((I * 3 + J) % 19) / 19.0;
      at(B, I, J) = at(A, I, J);
    }
}

CIP_SPECULATIVE_TASK_BODY
void JacobiWorkload::runTask(std::uint32_t Epoch, std::size_t Task) {
  std::vector<double> &Src = Epoch % 2 == 0 ? A : B;
  std::vector<double> &Dst = Epoch % 2 == 0 ? B : A;
  const std::size_t I = Task + 1; // interior row
  for (std::size_t J = 1; J + 1 < Params.Cols; ++J) {
    const double Avg = 0.2 * (at(Src, I, J) + at(Src, I - 1, J) +
                              at(Src, I + 1, J) + at(Src, I, J - 1) +
                              at(Src, I, J + 1));
    at(Dst, I, J) =
        Params.WorkFlops ? burnFlops(Avg, Params.WorkFlops) : Avg;
  }
}

void JacobiWorkload::taskAddresses(std::uint32_t Epoch, std::size_t Task,
                                   std::vector<std::uint64_t> &Addrs) const {
  // Row-granular, interleaved (A row i = 2i, B row i = 2i+1) so one task's
  // accesses stay contiguous for range signatures.
  const std::uint64_t Src = Epoch % 2 == 0 ? 0 : 1;
  const std::uint64_t Dst = 1 - Src;
  const std::uint64_t I = Task + 1;
  Addrs.push_back(2 * I + Dst);
  Addrs.push_back(2 * (I - 1) + Src);
  Addrs.push_back(2 * I + Src);
  Addrs.push_back(2 * (I + 1) + Src);
}

void JacobiWorkload::registerState(speccross::CheckpointRegistry &Reg) {
  Reg.registerBuffer(A);
  Reg.registerBuffer(B);
}

std::uint64_t JacobiWorkload::checksum() const {
  return hashDoubles(B, hashDoubles(A));
}

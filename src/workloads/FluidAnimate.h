//===- workloads/FluidAnimate.h - PARSEC SPH fluid variants ----*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PARSEC fluidanimate, the paper's case-study application (§5.4, Fig 5.5,
/// Fig 5.6), in the two shapes the dissertation evaluates:
///
///  * \c FluidAnimate1Workload ("FLUIDANIMATE-1", the ComputeForce loop
///    nest, Table 5.1): every particle also scatters force into a neighbor
///    that lives in the *next* particle group, so nearly every pair of
///    consecutive invocations conflicts. The LOCALWRITE plan applies; only
///    DOMORE can exploit cross-invocation parallelism — speculation would
///    roll back continuously.
///
///  * \c FluidAnimate2Workload ("FLUIDANIMATE-2", the whole-frame loop of
///    Fig 5.5): each frame runs eight phases (ClearParticles, RebuildGrid,
///    InitDensitiesAndForces, ComputeDensities, ComputeDensities2,
///    ComputeForces, ProcessCollisions, AdvanceParticles) over cell blocks.
///    Neighbor-block reads put the closest cross-thread conflict one epoch
///    minus one task away — Table 5.3's min distance 54 with 55 blocks.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_WORKLOADS_FLUIDANIMATE_H
#define CIP_WORKLOADS_FLUIDANIMATE_H

#include "workloads/Workload.h"

namespace cip {
namespace workloads {

struct FluidAnimate1Params {
  std::uint32_t NumGroups = 60;        // epochs
  std::uint32_t ParticlesPerGroup = 32; // tasks per epoch
  unsigned WorkFlops = 12;
  std::uint64_t Seed = 0xf1d1;

  static FluidAnimate1Params forScale(Scale S);
};

/// FLUIDANIMATE-1: the ComputeForce loop nest. See file comment.
class FluidAnimate1Workload final : public Workload {
public:
  explicit FluidAnimate1Workload(const FluidAnimate1Params &P);

  const char *name() const override { return "fluidanimate1"; }
  void reset() override;
  std::uint32_t numEpochs() const override { return Params.NumGroups; }
  std::size_t numTasks(std::uint32_t Epoch) const override {
    return Params.ParticlesPerGroup;
  }
  void runTask(std::uint32_t Epoch, std::size_t Task) override;
  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override;
  std::uint64_t addressSpaceSize() const override {
    return static_cast<std::uint64_t>(Params.NumGroups + 1) *
           Params.ParticlesPerGroup;
  }
  void registerState(speccross::CheckpointRegistry &Reg) override;
  std::uint64_t checksum() const override;
  bool speccrossApplicable() const override { return false; }
  const char *innerLoopPlan() const override { return "LOCALWRITE"; }

  /// The neighbor (in the next group) particle index of (\p Epoch, \p Task).
  std::uint64_t neighborOf(std::uint32_t Epoch, std::size_t Task) const;

private:
  FluidAnimate1Params Params;
  std::vector<std::uint32_t> Stride; // per-group odd stride (input)
  std::vector<double> Force;         // per-particle accumulated force
};

struct FluidAnimate2Params {
  std::uint32_t Frames = 8;    // epochs = 8 * Frames
  std::uint32_t NumBlocks = 55; // tasks per epoch (Table 5.3: distance 54)
  std::uint32_t BlockSize = 16; // particles per block
  unsigned WorkFlops = 6;
  std::uint64_t Seed = 0xf1d2;

  static FluidAnimate2Params forScale(Scale S);
};

/// FLUIDANIMATE-2: the whole-frame loop of Fig 5.5. See file comment.
class FluidAnimate2Workload final : public Workload {
public:
  explicit FluidAnimate2Workload(const FluidAnimate2Params &P);

  const char *name() const override { return "fluidanimate2"; }
  void reset() override;
  std::uint32_t numEpochs() const override { return 8 * Params.Frames; }
  std::size_t numTasks(std::uint32_t Epoch) const override {
    return Params.NumBlocks;
  }
  void runTask(std::uint32_t Epoch, std::size_t Task) override;
  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override;
  std::uint64_t addressSpaceSize() const override {
    return 5ull * Params.NumBlocks; // pos, vel, dens, force, cell per block
  }
  void registerState(speccross::CheckpointRegistry &Reg) override;
  std::uint64_t checksum() const override;
  bool domoreApplicable() const override { return false; }
  const char *innerLoopPlan() const override { return "LOCALWRITE"; }

private:
  enum Phase {
    ClearParticles = 0,
    RebuildGrid,
    InitDensitiesAndForces,
    ComputeDensities,
    ComputeDensities2,
    ComputeForces,
    ProcessCollisions,
    AdvanceParticles
  };

  std::size_t begin(std::size_t Block) const {
    return Block * Params.BlockSize;
  }

  FluidAnimate2Params Params;
  std::vector<double> Pos, Vel, Dens, Force, Cell;
};

} // namespace workloads
} // namespace cip

#endif // CIP_WORKLOADS_FLUIDANIMATE_H

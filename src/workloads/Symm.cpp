//===- workloads/Symm.cpp - PolyBench SYMM-like triangular kernel --------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "workloads/Symm.h"

#include "support/Chaos.h"
#include "support/Rng.h"

using namespace cip;
using namespace cip::workloads;

SymmParams SymmParams::forScale(Scale S) {
  SymmParams P;
  switch (S) {
  case Scale::Test:
    P.N = 40;
    P.WorkFlops = 4;
    break;
  case Scale::Train:
    P.N = 400;
    P.WorkFlops = 600;
    break;
  case Scale::Ref:
    // Triangular over 1000 rows: 500500 tasks, as in Table 5.3.
    P.N = 1000;
    P.WorkFlops = 600;
    break;
  }
  return P;
}

SymmWorkload::SymmWorkload(const SymmParams &P) : Params(P) {
  const std::size_t N2 = static_cast<std::size_t>(Params.N) * Params.N;
  A.resize(N2);
  C.resize(N2);
  Xoshiro256StarStar Rng(Params.Seed);
  for (std::size_t I = 0; I < N2; ++I)
    A[I] = Rng.nextDouble();
  reset();
}

void SymmWorkload::reset() {
  for (std::size_t I = 0; I < C.size(); ++I)
    C[I] = 0.0;
}

CIP_SPECULATIVE_TASK_BODY
void SymmWorkload::runTask(std::uint32_t Epoch, std::size_t Task) {
  // C[e][j] accumulates the symmetric contraction of row e against row j.
  const std::size_t N = Params.N;
  const double *RowE = &A[static_cast<std::size_t>(Epoch) * N];
  const double *RowJ = &A[Task * N];
  double Acc = 0.0;
  // Touch a bounded strip so the task grain is controlled by WorkFlops.
  const std::size_t Strip = std::min<std::size_t>(N, 16);
  for (std::size_t K = 0; K < Strip; ++K)
    Acc += RowE[K] * RowJ[N - 1 - K];
  C[static_cast<std::size_t>(Epoch) * N + Task] =
      burnFlops(Acc, Params.WorkFlops);
}

void SymmWorkload::taskAddresses(std::uint32_t Epoch, std::size_t Task,
                                 std::vector<std::uint64_t> &Addrs) const {
  // Element-granular writes; the A reads are read-only input and thus not
  // instrumented (no dependence can flow through them).
  Addrs.push_back(static_cast<std::uint64_t>(Epoch) * Params.N + Task);
}

void SymmWorkload::registerState(speccross::CheckpointRegistry &Reg) {
  Reg.registerBuffer(C);
}

std::uint64_t SymmWorkload::checksum() const { return hashDoubles(C); }

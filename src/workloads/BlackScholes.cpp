//===- workloads/BlackScholes.cpp - PARSEC option pricing ----------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "workloads/BlackScholes.h"

#include "support/Chaos.h"
#include "support/Rng.h"

#include <cmath>

using namespace cip;
using namespace cip::workloads;

BlackScholesParams BlackScholesParams::forScale(Scale S) {
  BlackScholesParams P;
  switch (S) {
  case Scale::Test:
    P.Epochs = 40;
    P.TasksPerEpoch = 16;
    P.OptionsPerTask = 4;
    break;
  case Scale::Train:
    P.Epochs = 500;
    P.TasksPerEpoch = 64;
    P.OptionsPerTask = 32;
    break;
  case Scale::Ref:
    P.Epochs = 1500;
    P.TasksPerEpoch = 64;
    P.OptionsPerTask = 32;
    break;
  }
  return P;
}

double BlackScholesWorkload::priceCall(double Spot, double Strike,
                                       double Rate, double Vol, double Time) {
  assert(Spot > 0 && Strike > 0 && Vol > 0 && Time > 0 && "invalid option");
  const double SqrtT = std::sqrt(Time);
  const double D1 =
      (std::log(Spot / Strike) + (Rate + 0.5 * Vol * Vol) * Time) /
      (Vol * SqrtT);
  const double D2 = D1 - Vol * SqrtT;
  const auto NormCdf = [](double X) {
    return 0.5 * std::erfc(-X / std::sqrt(2.0));
  };
  return Spot * NormCdf(D1) - Strike * std::exp(-Rate * Time) * NormCdf(D2);
}

BlackScholesWorkload::BlackScholesWorkload(const BlackScholesParams &P)
    : Params(P) {
  const std::size_t NumOptions = static_cast<std::size_t>(Params.Epochs) *
                                 Params.TasksPerEpoch * Params.OptionsPerTask;
  Spot.resize(NumOptions);
  Strike.resize(NumOptions);
  Vol.resize(NumOptions);
  Price.resize(NumOptions);
  Calib.resize(Params.CalibSlots);
  Xoshiro256StarStar Rng(Params.Seed);
  for (std::size_t I = 0; I < NumOptions; ++I) {
    Spot[I] = 50.0 + 100.0 * Rng.nextDouble();
    Strike[I] = 50.0 + 100.0 * Rng.nextDouble();
    Vol[I] = 0.1 + 0.4 * Rng.nextDouble();
  }
  reset();
}

void BlackScholesWorkload::reset() {
  for (auto &X : Price)
    X = 0.0;
  for (std::size_t I = 0; I < Calib.size(); ++I)
    Calib[I] = 1.0 + 1e-3 * static_cast<double>(I);
}

CIP_SPECULATIVE_TASK_BODY
void BlackScholesWorkload::runTask(std::uint32_t Epoch, std::size_t Task) {
  const std::size_t Base = blockOf(Epoch, Task);
  for (std::uint32_t K = 0; K < Params.OptionsPerTask; ++K) {
    const std::size_t I = Base + K;
    Price[I] = priceCall(Spot[I], Strike[I], 0.05, Vol[I], 1.0);
  }
  // The rarely-manifesting dependence: one designated task per epoch
  // refreshes a shared calibration slot; epochs CalibSlots apart reuse the
  // slot, so the dependence spans many invocations and manifests only for
  // that task — exactly the Spec-DOALL profile of the paper's version.
  if (Task == Epoch % Params.TasksPerEpoch) {
    double &Slot = Calib[Epoch % Params.CalibSlots];
    Slot = 0.9 * Slot + 0.1 * Price[Base];
  }
}

void BlackScholesWorkload::taskAddresses(
    std::uint32_t Epoch, std::size_t Task,
    std::vector<std::uint64_t> &Addrs) const {
  // Block-granular price writes, plus the calibration slot when touched.
  Addrs.push_back(static_cast<std::uint64_t>(Epoch) * Params.TasksPerEpoch +
                  Task);
  if (Task == Epoch % Params.TasksPerEpoch)
    Addrs.push_back(static_cast<std::uint64_t>(Params.Epochs) *
                        Params.TasksPerEpoch +
                    Epoch % Params.CalibSlots);
}

void BlackScholesWorkload::registerState(speccross::CheckpointRegistry &Reg) {
  Reg.registerBuffer(Price);
  Reg.registerBuffer(Calib);
}

std::uint64_t BlackScholesWorkload::checksum() const {
  return hashDoubles(Calib, hashDoubles(Price));
}

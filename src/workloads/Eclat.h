//===- workloads/Eclat.h - MineBench ECLAT tid-list builder ----*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MineBench's ECLAT inverted-database phase: the outer loop walks graph
/// nodes, the inner loop appends each node's items to per-transaction lists
/// keyed by a nonlinearly computed transaction number. Items of one node
/// carry distinct transactions (the inner loop is conflict-free on this
/// input, matching the paper's Spec-DOALL plan), but nearly every pair of
/// consecutive nodes shares transactions — the ~99% cross-invocation
/// manifest rate the paper reports — so DOMORE must order the appends while
/// SPECCROSS would roll back constantly and is marked inapplicable.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_WORKLOADS_ECLAT_H
#define CIP_WORKLOADS_ECLAT_H

#include "workloads/Workload.h"

namespace cip {
namespace workloads {

struct EclatParams {
  std::uint32_t NumNodes = 60;     // epochs
  std::uint32_t ItemsPerNode = 24; // tasks per epoch
  std::uint32_t NumTxns = 64;      // shared transaction-list table
  unsigned WorkFlops = 4;          // per-item processing grain
  std::uint64_t Seed = 0xec1a7;

  static EclatParams forScale(Scale S);
};

/// See file comment.
class EclatWorkload final : public Workload {
public:
  explicit EclatWorkload(const EclatParams &P);

  const char *name() const override { return "eclat"; }
  void reset() override;
  std::uint32_t numEpochs() const override { return Params.NumNodes; }
  std::size_t numTasks(std::uint32_t Epoch) const override {
    return Params.ItemsPerNode;
  }
  void runTask(std::uint32_t Epoch, std::size_t Task) override;
  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override;
  std::uint64_t addressSpaceSize() const override { return Params.NumTxns; }
  void registerState(speccross::CheckpointRegistry &Reg) override;
  std::uint64_t checksum() const override;
  bool speccrossApplicable() const override { return false; }
  const char *innerLoopPlan() const override { return "Spec-DOALL"; }

  /// Transaction number of item (\p Epoch, \p Task): distinct within one
  /// node, heavily shared across nodes.
  std::uint32_t txnOf(std::uint32_t Epoch, std::size_t Task) const;

private:
  EclatParams Params;
  std::vector<std::uint32_t> Stride;  // per-node odd stride (input)
  std::vector<std::uint32_t> Count;   // appended items per transaction
  std::vector<std::uint32_t> TidData; // [txn][slot] appended item ids
  std::vector<double> Scratch;        // per-transaction folded work
};

} // namespace workloads
} // namespace cip

#endif // CIP_WORKLOADS_ECLAT_H

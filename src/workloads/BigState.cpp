//===- workloads/BigState.cpp - Large-state sparse-write workload --------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "workloads/BigState.h"

#include "support/Chaos.h"

#include <numeric>

using namespace cip;
using namespace cip::workloads;

BigStateParams BigStateParams::forScale(Scale S) {
  BigStateParams P;
  switch (S) {
  case Scale::Test:
    // 8 * 16384 doubles = 1 MiB (256 pages); <= 32 of them dirty per epoch.
    break;
  case Scale::Train:
    // 64 MiB footprint (16384 pages), <= 512 scattered dirty pages/epoch:
    // the regime where eager copies ~30x more than the write set.
    P.Epochs = 40;
    P.Tasks = 64;
    P.StripeLen = 131072;
    P.WritesPerTask = 8;
    break;
  case Scale::Ref:
    // 128 MiB footprint.
    P.Epochs = 64;
    P.Tasks = 128;
    P.StripeLen = 131072;
    P.WritesPerTask = 8;
    break;
  }
  return P;
}

BigStateWorkload::BigStateWorkload(const BigStateParams &P) : Params(P) {
  assert(static_cast<std::uint64_t>(Params.Epochs) * Params.WritesPerTask <
             Params.StripeLen &&
         "stride generator would wrap: epochs would no longer be disjoint");
  // A stride near 37% of the stripe scatters consecutive writes across
  // pages; bump until coprime so the generator has full period.
  Step = Params.StripeLen / 8 * 3 + 1;
  while (std::gcd(Step, static_cast<std::size_t>(Params.StripeLen)) != 1)
    ++Step;
  State.resize(static_cast<std::size_t>(Params.Tasks) * Params.StripeLen);
  reset();
}

void BigStateWorkload::reset() {
  for (std::size_t I = 0; I < State.size(); ++I)
    State[I] = static_cast<double>(I % 23) / 23.0;
}

std::size_t BigStateWorkload::cellOf(std::uint32_t Epoch, std::size_t Task,
                                     std::uint32_t K) const {
  const std::size_t Seq =
      static_cast<std::size_t>(Epoch) * Params.WritesPerTask + K;
  return Task * Params.StripeLen + (Seq * Step) % Params.StripeLen;
}

CIP_SPECULATIVE_TASK_BODY
void BigStateWorkload::runTask(std::uint32_t Epoch, std::size_t Task) {
  for (std::uint32_t K = 0; K < Params.WritesPerTask; ++K) {
    double &Cell = State[cellOf(Epoch, Task, K)];
    Cell = burnFlops(Cell + static_cast<double>(Epoch + Task + K + 1) * 1e-6,
                     Params.WorkFlops);
  }
}

void BigStateWorkload::taskAddresses(std::uint32_t Epoch, std::size_t Task,
                                     std::vector<std::uint64_t> &Addrs) const {
  // Cell-granular: with the non-wrapping generator no two epochs share an
  // address, so speculation sees a conflict-free stream.
  for (std::uint32_t K = 0; K < Params.WritesPerTask; ++K)
    Addrs.push_back(cellOf(Epoch, Task, K));
}

void BigStateWorkload::registerState(speccross::CheckpointRegistry &Reg) {
  Reg.registerBuffer(State);
}

std::uint64_t BigStateWorkload::checksum() const {
  // Hash exactly the cells the generator can touch, in deterministic order,
  // plus each stripe's first/last cell (catching a restore that bleeds past
  // a region edge) — O(total writes), not O(footprint).
  std::uint64_t H = 0xcbf29ce484222325ULL;
  for (std::uint32_t E = 0; E < Params.Epochs; ++E)
    for (std::size_t T = 0; T < Params.Tasks; ++T)
      for (std::uint32_t K = 0; K < Params.WritesPerTask; ++K)
        H = hashBytes(&State[cellOf(E, T, K)], sizeof(double), H);
  for (std::size_t T = 0; T < Params.Tasks; ++T) {
    H = hashBytes(&State[T * Params.StripeLen], sizeof(double), H);
    H = hashBytes(&State[(T + 1) * Params.StripeLen - 1], sizeof(double), H);
  }
  return H;
}

//===- workloads/Equake.h - SPEC EQUAKE-like seismic kernel ----*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 183.equake-shaped workload: a time-stepping loop whose body is three
/// consecutive parallel phases over an unstructured mesh — a sparse
/// matrix-vector product reading neighbor displacements, a displacement
/// integration, and a velocity update. Tasks are node blocks. The neighbor
/// structure is irregular (index arrays), so static analysis cannot remove
/// the barriers between phases; but neighbors stay within a block on the
/// generated input, so the *speculated* accesses never conflict across
/// threads — reproducing EQUAKE's "*" row of Table 5.3 and its large
/// SPECCROSS win in Fig 5.2(b). DOMORE is inapplicable (Table 5.1): the
/// computeAddr slice would have to traverse the mesh, making the scheduler
/// as expensive as the workers.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_WORKLOADS_EQUAKE_H
#define CIP_WORKLOADS_EQUAKE_H

#include "workloads/Workload.h"

namespace cip {
namespace workloads {

/// Parameters of the synthetic EQUAKE kernel.
struct EquakeParams {
  std::uint32_t TimeSteps = 100;  // epochs = 3 * TimeSteps
  std::uint32_t NumBlocks = 22;   // tasks per epoch (Table 5.3: ~22)
  std::uint32_t BlockSize = 64;   // nodes per block
  std::uint32_t NeighborsPerNode = 4;
  unsigned WorkFlops = 8;
  std::uint64_t Seed = 0xe9a4eULL;

  static EquakeParams forScale(Scale S);
};

/// See file comment.
class EquakeWorkload final : public Workload {
public:
  explicit EquakeWorkload(const EquakeParams &P);

  const char *name() const override { return "equake"; }
  void reset() override;
  std::uint32_t numEpochs() const override { return 3 * Params.TimeSteps; }
  std::size_t numTasks(std::uint32_t Epoch) const override {
    return Params.NumBlocks;
  }
  void runTask(std::uint32_t Epoch, std::size_t Task) override;
  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override;
  std::uint64_t addressSpaceSize() const override {
    return 3 * Params.NumBlocks; // block-granular: w, u, v per block
  }
  void registerState(speccross::CheckpointRegistry &Reg) override;
  std::uint64_t checksum() const override;
  bool domoreApplicable() const override { return false; }
  const char *innerLoopPlan() const override { return "DOALL"; }

private:
  enum Phase { Smvp = 0, Integrate = 1, Velocity = 2 };

  std::size_t numNodes() const {
    return static_cast<std::size_t>(Params.NumBlocks) * Params.BlockSize;
  }

  EquakeParams Params;
  std::vector<std::uint32_t> Col; // neighbor indices, block-local
  std::vector<double> Coef;       // matrix coefficients
  std::vector<double> W, U, V;    // per-node state
};

} // namespace workloads
} // namespace cip

#endif // CIP_WORKLOADS_EQUAKE_H

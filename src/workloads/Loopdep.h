//===- workloads/Loopdep.h - OmpSCR-style loop-dependence kernel -*- C++ -*-=//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OmpSCR "loopdep" pattern: a time-stepped vector update whose reads
/// reach two epochs back. Implemented as a 4-buffer rotation — epoch e
/// writes buffer e%4 and reads buffer (e-2)%4 at a one-element offset — so
/// every cross-thread conflict lies almost exactly two epochs away: the
/// minimum dependence distance is 2*T - 1 for T tasks per epoch, matching
/// Table 5.3's ~500 (train, T=250) and ~800 (ref, T=400).
///
//===----------------------------------------------------------------------===//

#ifndef CIP_WORKLOADS_LOOPDEP_H
#define CIP_WORKLOADS_LOOPDEP_H

#include "workloads/Workload.h"

namespace cip {
namespace workloads {

struct LoopdepParams {
  std::uint32_t Epochs = 40;
  std::uint32_t TasksPerEpoch = 32;
  std::uint32_t CellsPerTask = 16;
  unsigned WorkFlops = 4;

  static LoopdepParams forScale(Scale S);
};

/// See file comment.
class LoopdepWorkload final : public Workload {
public:
  explicit LoopdepWorkload(const LoopdepParams &P);

  const char *name() const override { return "loopdep"; }
  void reset() override;
  std::uint32_t numEpochs() const override { return Params.Epochs; }
  std::size_t numTasks(std::uint32_t Epoch) const override {
    return Params.TasksPerEpoch;
  }
  void runTask(std::uint32_t Epoch, std::size_t Task) override;
  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override;
  std::uint64_t addressSpaceSize() const override {
    return 4ull * Params.TasksPerEpoch;
  }
  void registerState(speccross::CheckpointRegistry &Reg) override;
  std::uint64_t checksum() const override;

  /// The 4-buffer rotation scatters one task's three addresses across
  /// distant buffer bases; the exact small-set scheme avoids both the
  /// range signature's span false positives and the Bloom filter's
  /// intersection false positives.
  speccross::SignatureScheme preferredSignature() const override {
    return speccross::SignatureScheme::SmallSet;
  }

private:
  double &cell(std::uint32_t Buf, std::size_t Task, std::size_t Cell) {
    return Data[(static_cast<std::size_t>(Buf) * Params.TasksPerEpoch + Task) *
                    Params.CellsPerTask +
                Cell];
  }

  LoopdepParams Params;
  std::vector<double> Data; // 4 rotating buffers of TasksPerEpoch segments
};

} // namespace workloads
} // namespace cip

#endif // CIP_WORKLOADS_LOOPDEP_H

//===- workloads/BlackScholes.h - PARSEC option pricing --------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PARSEC blackscholes: batches of European options priced per epoch with
/// the closed-form Black–Scholes formula. The paper parallelizes the inner
/// loop with Spec-DOALL (a rarely-manifesting dependence through a shared
/// calibration table); here one designated task per epoch refreshes a
/// calibration slot that epochs K apart share, giving DOMORE an occasional
/// true cross-invocation dependence to synchronize while the bulk of the
/// work is independent. SPECCROSS is inapplicable (Table 5.1): the inner
/// loop needs speculative parallelization, which SPECCROSS's region
/// detector does not accept (§5.5).
///
//===----------------------------------------------------------------------===//

#ifndef CIP_WORKLOADS_BLACKSCHOLES_H
#define CIP_WORKLOADS_BLACKSCHOLES_H

#include "workloads/Workload.h"

namespace cip {
namespace workloads {

struct BlackScholesParams {
  std::uint32_t Epochs = 40;       // option batches
  std::uint32_t TasksPerEpoch = 64;
  std::uint32_t OptionsPerTask = 8;
  std::uint32_t CalibSlots = 16;   // shared table; epochs K apart conflict
  std::uint64_t Seed = 0xb5c0;

  static BlackScholesParams forScale(Scale S);
};

/// See file comment.
class BlackScholesWorkload final : public Workload {
public:
  explicit BlackScholesWorkload(const BlackScholesParams &P);

  const char *name() const override { return "blackscholes"; }
  void reset() override;
  std::uint32_t numEpochs() const override { return Params.Epochs; }
  std::size_t numTasks(std::uint32_t Epoch) const override {
    return Params.TasksPerEpoch;
  }
  void runTask(std::uint32_t Epoch, std::size_t Task) override;
  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override;
  std::uint64_t addressSpaceSize() const override {
    return static_cast<std::uint64_t>(Params.Epochs) * Params.TasksPerEpoch +
           Params.CalibSlots;
  }
  void registerState(speccross::CheckpointRegistry &Reg) override;
  std::uint64_t checksum() const override;
  bool speccrossApplicable() const override { return false; }
  const char *innerLoopPlan() const override { return "Spec-DOALL"; }
  speccross::SignatureScheme preferredSignature() const override {
    return speccross::SignatureScheme::SmallSet;
  }

  /// Closed-form Black–Scholes call price; public so tests can sanity-check
  /// it against known values.
  static double priceCall(double Spot, double Strike, double Rate,
                          double Vol, double Time);

private:
  /// Task (Epoch, Task) owns one price block.
  std::size_t blockOf(std::uint32_t Epoch, std::size_t Task) const {
    return (static_cast<std::size_t>(Epoch) * Params.TasksPerEpoch + Task) *
           Params.OptionsPerTask;
  }

  BlackScholesParams Params;
  std::vector<double> Spot, Strike, Vol; // read-only inputs
  std::vector<double> Price;             // per-option output
  std::vector<double> Calib;             // shared calibration table
};

} // namespace workloads
} // namespace cip

#endif // CIP_WORKLOADS_BLACKSCHOLES_H

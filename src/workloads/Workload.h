//===- workloads/Workload.h - Common benchmark interface -------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common shape of every benchmark in the dissertation's Table 5.1. A
/// workload is a sequence of *epochs* — inner-loop invocations that the
/// baseline parallelization separates with barriers — each containing
/// independent *tasks* (inner-loop iterations). Each task additionally
/// exposes the abstract addresses it accesses; this is precisely the
/// artifact the paper's compiler produces (DOMORE's computeAddr slice,
/// SPECCROSS's spec_access instrumentation), so one description drives the
/// sequential, barrier, DOMORE, and SPECCROSS executors in src/harness.
///
/// Determinism contract: tasks within an epoch write disjoint locations
/// (the inner loops are DOALL/LOCALWRITE-planned), and any cross-epoch
/// same-address accesses are ordered by the runtimes, so every executor
/// must produce bit-identical \c checksum() results. The tests enforce
/// this.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_WORKLOADS_WORKLOAD_H
#define CIP_WORKLOADS_WORKLOAD_H

#include "speccross/Checkpoint.h"
#include "speccross/Signature.h"
#include "support/Compiler.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cip {
namespace workloads {

/// Problem-size selector, mirroring the paper's train/ref input pairs
/// (Table 5.3 profiles on train and runs on ref).
enum class Scale { Test, Train, Ref };

/// Abstract benchmark. See file comment for the execution model.
class Workload {
public:
  virtual ~Workload();

  virtual const char *name() const = 0;

  /// Restores all mutable state to its deterministic initial value.
  virtual void reset() = 0;

  /// Number of inner-loop invocations (epochs).
  virtual std::uint32_t numEpochs() const = 0;

  /// Number of independent tasks in \p Epoch. Must be pure.
  virtual std::size_t numTasks(std::uint32_t Epoch) const = 0;

  /// Executes one task. Thread-safe against other tasks of the same epoch.
  virtual void runTask(std::uint32_t Epoch, std::size_t Task) = 0;

  /// Appends the abstract addresses task (\p Epoch, \p Task) accesses that
  /// participate in cross-iteration/cross-invocation dependences.
  virtual void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                             std::vector<std::uint64_t> &Addrs) const = 0;

  /// Sequential outer-loop code run before \p Epoch's tasks. Thread \p Tid
  /// executes its (privatized) copy when the executor duplicates prologues.
  virtual void epochPrologue(std::uint32_t Epoch, std::uint32_t Tid) {}

  /// True if epochPrologue does real work.
  virtual bool hasPrologue() const { return false; }

  /// True if the prologue may run concurrently on every worker (writes only
  /// thread-private state) — the SPECCROSS §4.3 / DOMORE §3.4 requirement.
  virtual bool prologueDuplicable() const { return true; }

  /// Appends abstract addresses the prologue of \p Epoch writes, so the
  /// DOMORE scheduler can order the prologue against in-flight iterations.
  virtual void prologueAddresses(std::uint32_t Epoch,
                                 std::vector<std::uint64_t> &Addrs) const {}

  /// Size of the dense abstract address space, or 0 if sparse.
  virtual std::uint64_t addressSpaceSize() const = 0;

  /// Registers every buffer tasks may write, for checkpoint/restore.
  virtual void registerState(speccross::CheckpointRegistry &Reg) = 0;

  /// Deterministic digest of the output state.
  virtual std::uint64_t checksum() const = 0;

  /// Table 5.1 applicability columns.
  virtual bool domoreApplicable() const { return true; }
  virtual bool speccrossApplicable() const { return true; }

  /// Table 5.1 "parallelization plan for inner loop" column.
  virtual const char *innerLoopPlan() const { return "DOALL"; }

  /// Signature scheme suited to this workload's access pattern: range for
  /// clustered accesses (the paper's default), Bloom for scattered ones.
  virtual speccross::SignatureScheme preferredSignature() const {
    return speccross::SignatureScheme::Range;
  }

  /// Total task count across all epochs (convenience).
  std::uint64_t totalTasks() const;
};

/// FNV-1a over a little-endian byte view; the project-wide checksum mixer.
std::uint64_t hashBytes(const void *Data, std::size_t Bytes,
                        std::uint64_t Seed = 0xcbf29ce484222325ULL);

/// Hashes a vector of doubles by bit pattern.
std::uint64_t hashDoubles(const std::vector<double> &Xs,
                          std::uint64_t Seed = 0xcbf29ce484222325ULL);

/// Spins for roughly \p Flops dependent floating-point operations and
/// returns an accumulated value; the standard "do_work" body used to give
/// tasks realistic, tunable grain.
double burnFlops(double Seedling, unsigned Flops);

/// Factory: constructs one of the Table 5.1 workloads by name. Known names:
/// "cg", "equake", "fdtd", "jacobi", "symm", "loopdep", "llubench",
/// "fluidanimate1", "fluidanimate2", "blackscholes", "eclat".
/// Returns nullptr for unknown names.
std::unique_ptr<Workload> makeWorkload(const std::string &Name, Scale S);

/// All factory-known workload names, in Table 5.1 order.
const std::vector<std::string> &allWorkloadNames();

} // namespace workloads
} // namespace cip

#endif // CIP_WORKLOADS_WORKLOAD_H

//===- workloads/CG.h - NAS CG-like sparse update kernel -------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The running example of the dissertation (Fig 3.1): a loop nest from NAS
/// CG whose outer loop computes per-row inner-loop bounds from index arrays
/// and whose inner loop calls update(&C[j]). Iterations of one inner
/// invocation touch distinct elements (DOALL-able); consecutive invocations
/// overlap their element ranges with a configurable manifest rate — the
/// paper measured 72.4% for the outer-loop update dependence, which is what
/// makes speculating the outer loop unprofitable and DOMORE the right tool.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_WORKLOADS_CG_H
#define CIP_WORKLOADS_CG_H

#include "workloads/Workload.h"

namespace cip {
namespace workloads {

/// Parameters of the synthetic CG kernel.
struct CGParams {
  /// Inner-loop invocations (outer-loop iterations).
  std::uint32_t NumRows = 200;
  /// Iterations per inner invocation (the paper's CG has ~9).
  std::uint32_t RowLength = 9;
  /// Size of the updated array C.
  std::uint32_t ArraySize = 4096;
  /// Probability that row i's range overlaps row i-1's range (the paper's
  /// cross-iteration manifest rate: 72.4%).
  double ManifestRate = 0.724;
  /// Flops burned per update() call.
  unsigned WorkFlops = 16;
  std::uint64_t Seed = 0x5eed00c6;

  static CGParams forScale(Scale S);
};

/// See file comment.
class CGWorkload final : public Workload {
public:
  explicit CGWorkload(const CGParams &P);

  const char *name() const override { return "cg"; }
  void reset() override;
  std::uint32_t numEpochs() const override { return Params.NumRows; }
  std::size_t numTasks(std::uint32_t Epoch) const override {
    return Params.RowLength;
  }
  void runTask(std::uint32_t Epoch, std::size_t Task) override;
  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override;
  std::uint64_t addressSpaceSize() const override { return Params.ArraySize; }
  void registerState(speccross::CheckpointRegistry &Reg) override;
  std::uint64_t checksum() const override;
  const char *innerLoopPlan() const override { return "LOCALWRITE"; }

  /// Fraction of invocations whose range overlaps the previous one; used by
  /// tests to validate the generator against the paper's 72.4%.
  double measuredManifestRate() const;

private:
  /// Element index updated by iteration (\p Epoch, \p Task).
  std::uint64_t elementOf(std::uint32_t Epoch, std::size_t Task) const {
    return RowStart[Epoch] + Task;
  }

  CGParams Params;
  std::vector<std::uint32_t> RowStart; // per-invocation base into C
  std::vector<double> C;
};

} // namespace workloads
} // namespace cip

#endif // CIP_WORKLOADS_CG_H

//===- workloads/LLUBench.cpp - Linked-list update microbench ------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "workloads/LLUBench.h"

#include "support/Chaos.h"
#include "support/Rng.h"

#include <numeric>

using namespace cip;
using namespace cip::workloads;

LLUBenchParams LLUBenchParams::forScale(Scale S) {
  LLUBenchParams P;
  switch (S) {
  case Scale::Test:
    P.Epochs = 40;
    P.ListsPerEpoch = 12;
    P.NodesPerList = 16;
    break;
  case Scale::Train:
    P.Epochs = 300;
    P.ListsPerEpoch = 55;
    P.NodesPerList = 768;
    break;
  case Scale::Ref:
    // Table 5.3: 110000 tasks over 2000 epochs (55 lists each).
    P.Epochs = 2000;
    P.ListsPerEpoch = 55;
    P.NodesPerList = 768;
    break;
  }
  return P;
}

LLUBenchWorkload::LLUBenchWorkload(const LLUBenchParams &P) : Params(P) {
  const std::size_t Pool = static_cast<std::size_t>(Params.Epochs) *
                           Params.ListsPerEpoch * Params.NodesPerList;
  Next.resize(Pool);
  Val.resize(Pool);
  // Build each list as a random permutation of its own node segment, linked
  // in permutation order — pointer chasing with data-dependent order that
  // static analysis cannot disambiguate.
  Xoshiro256StarStar Rng(Params.Seed);
  std::vector<std::uint32_t> Perm(Params.NodesPerList);
  const std::size_t NumLists =
      static_cast<std::size_t>(Params.Epochs) * Params.ListsPerEpoch;
  for (std::size_t L = 0; L < NumLists; ++L) {
    std::iota(Perm.begin(), Perm.end(), 0u);
    for (std::size_t I = Perm.size(); I > 1; --I)
      std::swap(Perm[I - 1], Perm[Rng.nextBelow(I)]);
    const std::size_t Base = L * Params.NodesPerList;
    for (std::size_t I = 0; I + 1 < Perm.size(); ++I)
      Next[Base + Perm[I]] = static_cast<std::uint32_t>(Base + Perm[I + 1]);
    Next[Base + Perm.back()] =
        static_cast<std::uint32_t>(Base + Perm.front());
  }
  reset();
}

void LLUBenchWorkload::reset() {
  for (std::size_t I = 0; I < Val.size(); ++I)
    Val[I] = static_cast<double>(I % 29) / 29.0;
}

CIP_SPECULATIVE_TASK_BODY
void LLUBenchWorkload::runTask(std::uint32_t Epoch, std::size_t Task) {
  // Chase the whole cycle once, folding each node's payload forward.
  std::size_t Node = headOf(Epoch, Task);
  double Carry = 1.0;
  for (std::uint32_t Hop = 0; Hop < Params.NodesPerList; ++Hop) {
    Val[Node] = 0.75 * Val[Node] + 0.25 * Carry;
    Carry = Val[Node];
    Node = Next[Node];
  }
}

void LLUBenchWorkload::taskAddresses(std::uint32_t Epoch, std::size_t Task,
                                     std::vector<std::uint64_t> &Addrs) const {
  // One abstract address per list segment; segments are globally disjoint.
  Addrs.push_back(static_cast<std::uint64_t>(Epoch) * Params.ListsPerEpoch +
                  Task);
}

void LLUBenchWorkload::registerState(speccross::CheckpointRegistry &Reg) {
  Reg.registerBuffer(Val);
}

std::uint64_t LLUBenchWorkload::checksum() const { return hashDoubles(Val); }

//===- workloads/Workload.cpp - Common benchmark interface ---------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "workloads/BigState.h"
#include "workloads/BlackScholes.h"
#include "workloads/CG.h"
#include "workloads/Eclat.h"
#include "workloads/Equake.h"
#include "workloads/Fdtd.h"
#include "workloads/FluidAnimate.h"
#include "workloads/Jacobi.h"
#include "workloads/LLUBench.h"
#include "workloads/Loopdep.h"
#include "workloads/PhaseShift.h"
#include "workloads/Symm.h"

#include <cstring>

using namespace cip;
using namespace cip::workloads;

Workload::~Workload() = default;

std::uint64_t Workload::totalTasks() const {
  std::uint64_t Sum = 0;
  for (std::uint32_t E = 0, N = numEpochs(); E < N; ++E)
    Sum += numTasks(E);
  return Sum;
}

std::uint64_t workloads::hashBytes(const void *Data, std::size_t Bytes,
                                   std::uint64_t Seed) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  std::uint64_t H = Seed;
  for (std::size_t I = 0; I < Bytes; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

std::uint64_t workloads::hashDoubles(const std::vector<double> &Xs,
                                     std::uint64_t Seed) {
  return hashBytes(Xs.data(), Xs.size() * sizeof(double), Seed);
}

double workloads::burnFlops(double Seedling, unsigned Flops) {
  // A dependent chain the compiler cannot vectorize away; keeps the value
  // bounded so repeated application stays finite.
  double X = Seedling;
  for (unsigned I = 0; I < Flops; ++I)
    X = 0.5 * X + 0.25 / (1.0 + X * X);
  return X;
}

std::unique_ptr<Workload> workloads::makeWorkload(const std::string &Name,
                                                  Scale S) {
  // Not part of Table 5.1 (and absent from allWorkloadNames()): the
  // adaptive policy engine's phase-shifting stress input.
  if (Name == "phaseshift")
    return std::make_unique<PhaseShiftWorkload>(PhaseShiftParams::forScale(S));
  // Also off-table: the checkpoint-substrate stress input (DESIGN.md §16).
  if (Name == "bigstate")
    return std::make_unique<BigStateWorkload>(BigStateParams::forScale(S));
  if (Name == "cg")
    return std::make_unique<CGWorkload>(CGParams::forScale(S));
  if (Name == "equake")
    return std::make_unique<EquakeWorkload>(EquakeParams::forScale(S));
  if (Name == "fdtd")
    return std::make_unique<FdtdWorkload>(FdtdParams::forScale(S));
  if (Name == "jacobi")
    return std::make_unique<JacobiWorkload>(JacobiParams::forScale(S));
  if (Name == "symm")
    return std::make_unique<SymmWorkload>(SymmParams::forScale(S));
  if (Name == "loopdep")
    return std::make_unique<LoopdepWorkload>(LoopdepParams::forScale(S));
  if (Name == "llubench")
    return std::make_unique<LLUBenchWorkload>(LLUBenchParams::forScale(S));
  if (Name == "fluidanimate1")
    return std::make_unique<FluidAnimate1Workload>(
        FluidAnimate1Params::forScale(S));
  if (Name == "fluidanimate2")
    return std::make_unique<FluidAnimate2Workload>(
        FluidAnimate2Params::forScale(S));
  if (Name == "blackscholes")
    return std::make_unique<BlackScholesWorkload>(
        BlackScholesParams::forScale(S));
  if (Name == "eclat")
    return std::make_unique<EclatWorkload>(EclatParams::forScale(S));
  return nullptr;
}

const std::vector<std::string> &workloads::allWorkloadNames() {
  static const std::vector<std::string> Names = {
      "fdtd",          "jacobi",        "symm",         "loopdep",
      "blackscholes",  "fluidanimate1", "fluidanimate2", "equake",
      "llubench",      "cg",            "eclat"};
  return Names;
}

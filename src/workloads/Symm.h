//===- workloads/Symm.h - PolyBench SYMM-like triangular kernel -*- C++ -*-=//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PolyBench's symm: a triangular update where epoch (outer row) e carries
/// e+1 tasks, each writing one element of row e of C from read-only inputs.
/// No two epochs write the same element and the inputs are read-only, so
/// the profiled min dependence distance is "*" (Table 5.3) — but the
/// strongly varying epoch sizes make barrier execution badly load-imbalanced
/// (threads with no task in small epochs idle at every barrier), which is
/// exactly what cross-invocation execution recovers.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_WORKLOADS_SYMM_H
#define CIP_WORKLOADS_SYMM_H

#include "workloads/Workload.h"

namespace cip {
namespace workloads {

struct SymmParams {
  std::uint32_t N = 48; // epochs; epoch e has e+1 tasks
  unsigned WorkFlops = 8;
  std::uint64_t Seed = 0x5a11;

  static SymmParams forScale(Scale S);
};

/// See file comment.
class SymmWorkload final : public Workload {
public:
  explicit SymmWorkload(const SymmParams &P);

  const char *name() const override { return "symm"; }
  void reset() override;
  std::uint32_t numEpochs() const override { return Params.N; }
  std::size_t numTasks(std::uint32_t Epoch) const override {
    return Epoch + 1;
  }
  void runTask(std::uint32_t Epoch, std::size_t Task) override;
  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override;
  std::uint64_t addressSpaceSize() const override {
    return static_cast<std::uint64_t>(Params.N) * Params.N;
  }
  void registerState(speccross::CheckpointRegistry &Reg) override;
  std::uint64_t checksum() const override;

private:
  SymmParams Params;
  std::vector<double> A; // read-only symmetric input
  std::vector<double> C; // triangular output
};

} // namespace workloads
} // namespace cip

#endif // CIP_WORKLOADS_SYMM_H

//===- domore/ShadowMemory.cpp - Last-accessor shadow memory -------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "domore/ShadowMemory.h"

using namespace cip;
using namespace cip::domore;

HashShadowMemory::HashShadowMemory(std::size_t ExpectedEntries) {
  std::size_t Cap = 16;
  while (Cap < ExpectedEntries * 2)
    Cap <<= 1;
  Slots.resize(Cap);
}

ShadowEntry HashShadowMemory::lookup(std::uint64_t Addr) const {
  assert(Addr != EmptyKey && "address collides with the empty sentinel");
  const std::size_t Mask = Slots.size() - 1;
  std::size_t Idx = hashAddr(Addr) & Mask;
  while (true) {
    const Slot &S = Slots[Idx];
    if (S.Addr == Addr)
      return S.Entry;
    if (S.Addr == EmptyKey)
      return ShadowEntry();
    Idx = (Idx + 1) & Mask;
  }
}

void HashShadowMemory::update(std::uint64_t Addr, std::uint32_t Tid,
                              std::int64_t Iter) {
  assert(Addr != EmptyKey && "address collides with the empty sentinel");
  if (Live * 10 >= Slots.size() * 7)
    grow();
  const std::size_t Mask = Slots.size() - 1;
  std::size_t Idx = hashAddr(Addr) & Mask;
  while (true) {
    Slot &S = Slots[Idx];
    if (S.Addr == Addr) {
      S.Entry = ShadowEntry{Tid, Iter};
      return;
    }
    if (S.Addr == EmptyKey) {
      S.Addr = Addr;
      S.Entry = ShadowEntry{Tid, Iter};
      ++Live;
      return;
    }
    Idx = (Idx + 1) & Mask;
  }
}

void HashShadowMemory::clear() {
  for (auto &S : Slots)
    S = Slot();
  Live = 0;
}

void HashShadowMemory::grow() {
  std::vector<Slot> Old = std::move(Slots);
  Slots.assign(Old.size() * 2, Slot());
  Live = 0;
  for (const Slot &S : Old)
    if (S.Addr != EmptyKey)
      update(S.Addr, S.Entry.Tid, S.Entry.Iter);
}

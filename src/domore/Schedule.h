//===- domore/Schedule.h - Iteration scheduling policies -------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iteration-to-worker scheduling policies for DOMORE (dissertation §3.3.3).
/// DOMORE ships two policies — round-robin and memory-partition-based
/// (LOCALWRITE owner-compute) — and is designed so "smarter" policies can be
/// plugged in; this file keeps that shape with a small policy interface.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_DOMORE_SCHEDULE_H
#define CIP_DOMORE_SCHEDULE_H

#include "support/Compiler.h"

#include <cstdint>
#include <span>

namespace cip {
namespace domore {

/// Abstract scheduling policy: maps a combined iteration number plus the
/// iteration's address set to a worker thread id in [0, NumWorkers).
class SchedulePolicy {
public:
  virtual ~SchedulePolicy() = default;

  /// Picks the worker for combined iteration \p Iter whose computeAddr slice
  /// produced \p Addrs.
  virtual std::uint32_t pick(std::int64_t Iter,
                             std::span<const std::uint64_t> Addrs) = 0;

  virtual const char *name() const = 0;
};

/// Classic round-robin dispatch; ignores the address set.
class RoundRobinPolicy final : public SchedulePolicy {
public:
  explicit RoundRobinPolicy(std::uint32_t NumWorkers)
      : NumWorkers(NumWorkers) {
    assert(NumWorkers > 0 && "need at least one worker");
  }

  std::uint32_t pick(std::int64_t Iter,
                     std::span<const std::uint64_t> Addrs) override {
    return static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(Iter) % NumWorkers);
  }

  const char *name() const override { return "round-robin"; }

private:
  const std::uint32_t NumWorkers;
};

/// LOCALWRITE-style owner-compute: the abstract address space [0, SpaceSize)
/// is block-partitioned across workers, and an iteration is scheduled to the
/// owner of its first (primary) address. Where the classic LOCALWRITE
/// transformation replicates an iteration on every owner, DOMORE only needs
/// the primary owner: accesses to other workers' partitions are caught by
/// the shadow memory and turned into point-to-point synchronization, which
/// preserves soundness while eliminating LOCALWRITE's redundant computation
/// (§3.3.3, §5.1 FLUIDANIMATE discussion).
class OwnerComputePolicy final : public SchedulePolicy {
public:
  OwnerComputePolicy(std::uint32_t NumWorkers, std::uint64_t SpaceSize)
      : NumWorkers(NumWorkers),
        BlockSize((SpaceSize + NumWorkers - 1) / NumWorkers) {
    assert(NumWorkers > 0 && "need at least one worker");
    assert(SpaceSize > 0 && "owner-compute needs a non-empty address space");
  }

  std::uint32_t pick(std::int64_t Iter,
                     std::span<const std::uint64_t> Addrs) override {
    if (Addrs.empty())
      return static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(Iter) % NumWorkers);
    const std::uint32_t Owner =
        static_cast<std::uint32_t>(Addrs.front() / BlockSize);
    return Owner < NumWorkers ? Owner : NumWorkers - 1;
  }

  const char *name() const override { return "owner-compute"; }

private:
  const std::uint32_t NumWorkers;
  const std::uint64_t BlockSize;
};

/// Hash-based owner policy for sparse address spaces: ownership by hashing
/// the primary address. Spreads hot blocks at the cost of locality.
class HashOwnerPolicy final : public SchedulePolicy {
public:
  explicit HashOwnerPolicy(std::uint32_t NumWorkers) : NumWorkers(NumWorkers) {
    assert(NumWorkers > 0 && "need at least one worker");
  }

  std::uint32_t pick(std::int64_t Iter,
                     std::span<const std::uint64_t> Addrs) override {
    if (Addrs.empty())
      return static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(Iter) % NumWorkers);
    std::uint64_t H = Addrs.front();
    H ^= H >> 33;
    H *= 0xff51afd7ed558ccdULL;
    H ^= H >> 33;
    return static_cast<std::uint32_t>(H % NumWorkers);
  }

  const char *name() const override { return "hash-owner"; }

private:
  const std::uint32_t NumWorkers;
};

} // namespace domore
} // namespace cip

#endif // CIP_DOMORE_SCHEDULE_H

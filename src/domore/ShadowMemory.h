//===- domore/ShadowMemory.h - Last-accessor shadow memory -----*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DOMORE scheduler's shadow memory (dissertation §3.2.1). Each entry
/// maps an abstract address to the `(tid, iterNum)` of the most recent
/// iteration scheduled to touch that address. The scheduler thread is the
/// only accessor, so no synchronization is needed; what matters is exact
/// lookup (a lossy map could *miss* a dependence, which would be unsound)
/// and O(1) amortized updates, since every scheduled iteration probes it for
/// every address in its computeAddr set.
///
/// Two implementations are provided behind one interface:
///  * \c DenseShadowMemory — direct-indexed array for workloads whose
///    abstract addresses are array element ids in a known range (every
///    benchmark in Table 5.1 is of this form; this mirrors the paper's
///    "shadow array").
///  * \c HashShadowMemory — open-addressing exact-key hash table for
///    pointer-shaped address spaces.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_DOMORE_SHADOWMEMORY_H
#define CIP_DOMORE_SHADOWMEMORY_H

#include "support/Compiler.h"

#include <cstdint>
#include <vector>

namespace cip {
namespace domore {

/// The value stored per shadowed address: which worker thread was scheduled
/// the most recent iteration touching the address, and that iteration's
/// combined (cross-invocation) iteration number.
struct ShadowEntry {
  static constexpr std::int64_t InvalidIter = -1;

  std::uint32_t Tid = 0;
  std::int64_t Iter = InvalidIter;

  bool valid() const { return Iter != InvalidIter; }
};

/// Direct-indexed shadow memory over abstract addresses [0, Size).
class DenseShadowMemory {
public:
  explicit DenseShadowMemory(std::size_t Size) : Entries(Size) {}

  /// Returns the last-accessor record for \p Addr (invalid if untouched).
  ShadowEntry lookup(std::uint64_t Addr) const {
    assert(Addr < Entries.size() && "shadow address out of range");
    return Entries[Addr];
  }

  /// Records that combined iteration \p Iter, scheduled to \p Tid, accesses
  /// \p Addr.
  void update(std::uint64_t Addr, std::uint32_t Tid, std::int64_t Iter) {
    assert(Addr < Entries.size() && "shadow address out of range");
    Entries[Addr] = ShadowEntry{Tid, Iter};
  }

  /// Forgets all recorded accesses.
  void clear() {
    for (auto &E : Entries)
      E = ShadowEntry();
  }

  std::size_t size() const { return Entries.size(); }

private:
  std::vector<ShadowEntry> Entries;
};

/// Exact-key open-addressing (linear probing) shadow memory for sparse or
/// pointer-shaped address spaces. Grows when 70% full. Never loses entries,
/// so dependence detection stays sound.
class HashShadowMemory {
public:
  explicit HashShadowMemory(std::size_t ExpectedEntries = 1024);

  ShadowEntry lookup(std::uint64_t Addr) const;
  void update(std::uint64_t Addr, std::uint32_t Tid, std::int64_t Iter);
  void clear();

  std::size_t size() const { return Live; }

private:
  struct Slot {
    std::uint64_t Addr = EmptyKey;
    ShadowEntry Entry;
  };

  static constexpr std::uint64_t EmptyKey = ~std::uint64_t{0};

  static std::uint64_t hashAddr(std::uint64_t A) {
    // Fibonacci hashing; addresses are often sequential, so mix well.
    A ^= A >> 33;
    A *= 0xff51afd7ed558ccdULL;
    A ^= A >> 33;
    return A;
  }

  void grow();

  std::vector<Slot> Slots;
  std::size_t Live = 0;
};

} // namespace domore
} // namespace cip

#endif // CIP_DOMORE_SHADOWMEMORY_H

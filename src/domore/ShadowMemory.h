//===- domore/ShadowMemory.h - Last-accessor shadow memory -----*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DOMORE scheduler's shadow memory (dissertation §3.2.1). Each entry
/// maps an abstract address to the `(tid, iterNum)` of the most recent
/// iteration scheduled to touch that address. The scheduler thread is the
/// only accessor, so no synchronization is needed; what matters is exact
/// lookup (a lossy map could *miss* a dependence, which would be unsound)
/// and O(1) amortized updates, since every scheduled iteration probes it for
/// every address in its computeAddr set.
///
/// Implementations behind one interface:
///  * \c DenseShadowMemory — direct-indexed array for workloads whose
///    abstract addresses are array element ids in a known range (every
///    benchmark in Table 5.1 is of this form; this mirrors the paper's
///    "shadow array"). Clearing is O(1) via generation stamping: each
///    update records the current generation, and entries from older
///    generations read as invalid.
///  * \c HashShadowMemory — open-addressing exact-key hash table for
///    pointer-shaped address spaces.
///  * \c ShardedDenseShadowMemory / \c ShardedHashShadowMemory — the same
///    substrates partitioned into N independent shards by address, so the
///    scheduler's detect-and-record stage can be pipelined: a partition
///    stage routes each probe to its shard (issuing prefetches), and a
///    per-shard probe stage walks each shard's probes in iteration order
///    (DESIGN.md §14). Every address maps to exactly one shard, so the
///    per-address last-accessor history — the only state dependence
///    detection reads — is identical to the serial substrate's.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_DOMORE_SHADOWMEMORY_H
#define CIP_DOMORE_SHADOWMEMORY_H

#include "support/Compiler.h"

#include <cstdint>
#include <vector>

namespace cip {
namespace domore {

/// The value stored per shadowed address: which worker thread was scheduled
/// the most recent iteration touching the address, and that iteration's
/// combined (cross-invocation) iteration number.
struct ShadowEntry {
  static constexpr std::int64_t InvalidIter = -1;

  std::uint32_t Tid = 0;
  std::int64_t Iter = InvalidIter;

  bool valid() const { return Iter != InvalidIter; }
};

/// Direct-indexed shadow memory over abstract addresses [0, Size).
class DenseShadowMemory {
public:
  static constexpr bool Sharded = false;

  explicit DenseShadowMemory(std::size_t Size) : Entries(Size) {}

  /// Returns the last-accessor record for \p Addr (invalid if untouched
  /// since the last clear()).
  ShadowEntry lookup(std::uint64_t Addr) const {
    assert(Addr < Entries.size() && "shadow address out of range");
    const Slot &S = Entries[Addr];
    if (S.Gen != CurrentGen)
      return ShadowEntry();
    return ShadowEntry{S.Tid, S.Iter};
  }

  /// Records that combined iteration \p Iter, scheduled to \p Tid, accesses
  /// \p Addr.
  void update(std::uint64_t Addr, std::uint32_t Tid, std::int64_t Iter) {
    assert(Addr < Entries.size() && "shadow address out of range");
    Entries[Addr] = Slot{Tid, CurrentGen, Iter};
  }

  /// Hints the cache that \p Addr is about to be probed.
  void prefetch(std::uint64_t Addr) const {
    assert(Addr < Entries.size() && "shadow address out of range");
    CIP_PREFETCH(&Entries[Addr]);
  }

  /// Forgets all recorded accesses. O(1): bumps the live generation, so
  /// slots stamped with any older generation read as invalid. When the
  /// 32-bit counter wraps (once per 2^32 - 1 clears) a slot written exactly
  /// 2^32 clears ago would alias the new generation, so the wrap pays one
  /// hard O(Size) reset to stay exact.
  void clear() {
    if (CIP_LIKELY(++CurrentGen != 0))
      return;
    for (auto &S : Entries)
      S = Slot();
    CurrentGen = 1;
  }

  std::size_t size() const { return Entries.size(); }

  /// Test hook: jump the generation counter forward (monotone only) so unit
  /// tests can exercise the wrap path without 2^32 - 1 clears.
  void setGenerationForTesting(std::uint32_t Gen) {
    assert(Gen >= CurrentGen && "generation must advance monotonically");
    CurrentGen = Gen;
  }

private:
  struct Slot {
    std::uint32_t Tid = 0;
    std::uint32_t Gen = 0; // 0 is never a live generation
    std::int64_t Iter = ShadowEntry::InvalidIter;
  };

  std::vector<Slot> Entries;
  std::uint32_t CurrentGen = 1;
};

/// Exact-key open-addressing (linear probing) shadow memory for sparse or
/// pointer-shaped address spaces. Grows when 70% full. Never loses entries,
/// so dependence detection stays sound.
class HashShadowMemory {
public:
  static constexpr bool Sharded = false;

  explicit HashShadowMemory(std::size_t ExpectedEntries = 1024);

  ShadowEntry lookup(std::uint64_t Addr) const;
  void update(std::uint64_t Addr, std::uint32_t Tid, std::int64_t Iter);
  void clear();

  /// Hints the cache that \p Addr's home slot is about to be probed. Only a
  /// hint: linear probing may continue past the prefetched line.
  void prefetch(std::uint64_t Addr) const {
    CIP_PREFETCH(&Slots[hashAddr(Addr) & (Slots.size() - 1)]);
  }

  std::size_t size() const { return Live; }

  static std::uint64_t hashAddr(std::uint64_t A) {
    // Fibonacci hashing; addresses are often sequential, so mix well.
    A ^= A >> 33;
    A *= 0xff51afd7ed558ccdULL;
    A ^= A >> 33;
    return A;
  }

private:
  struct Slot {
    std::uint64_t Addr = EmptyKey;
    ShadowEntry Entry;
  };

  static constexpr std::uint64_t EmptyKey = ~std::uint64_t{0};

  void grow();

  std::vector<Slot> Slots;
  std::size_t Live = 0;
};

/// Dense shadow striped across \p NumShards independent shards:
/// shard(Addr) = Addr % NumShards, with Addr / NumShards as the index inside
/// the shard. Striding by shard count keeps each shard's footprint at
/// ceil(Size / NumShards) regardless of address locality.
class ShardedDenseShadowMemory {
public:
  static constexpr bool Sharded = true;

  ShardedDenseShadowMemory(std::size_t Size, std::uint32_t NumShards)
      : Space(Size) {
    assert(NumShards > 0 && "need at least one shard");
    const std::size_t PerShard = (Size + NumShards - 1) / NumShards;
    Shards.reserve(NumShards);
    for (std::uint32_t S = 0; S < NumShards; ++S)
      Shards.emplace_back(PerShard);
  }

  std::uint32_t numShards() const {
    return static_cast<std::uint32_t>(Shards.size());
  }
  std::uint32_t shardOf(std::uint64_t Addr) const {
    return static_cast<std::uint32_t>(Addr % Shards.size());
  }

  ShadowEntry shardLookup(std::uint32_t Shard, std::uint64_t Addr) const {
    return Shards[Shard].lookup(Addr / Shards.size());
  }
  void shardUpdate(std::uint32_t Shard, std::uint64_t Addr, std::uint32_t Tid,
                   std::int64_t Iter) {
    Shards[Shard].update(Addr / Shards.size(), Tid, Iter);
  }
  void prefetch(std::uint32_t Shard, std::uint64_t Addr) const {
    Shards[Shard].prefetch(Addr / Shards.size());
  }

  /// Unsharded probes for serial contexts (invocation prologues).
  ShadowEntry lookup(std::uint64_t Addr) const {
    return shardLookup(shardOf(Addr), Addr);
  }
  void update(std::uint64_t Addr, std::uint32_t Tid, std::int64_t Iter) {
    shardUpdate(shardOf(Addr), Addr, Tid, Iter);
  }

  void clear() {
    for (auto &S : Shards)
      S.clear();
  }

  /// The striped address space size (not per-shard capacity).
  std::size_t size() const { return Space; }

private:
  std::size_t Space;
  std::vector<DenseShadowMemory> Shards;
};

/// Hash shadow partitioned across \p NumShards independent tables. The shard
/// is picked from the *high* bits of the Fibonacci mix, while each table's
/// slot index uses the low bits, so partitioning does not correlate with
/// (and thus cluster) the within-shard probe sequence.
class ShardedHashShadowMemory {
public:
  static constexpr bool Sharded = true;

  explicit ShardedHashShadowMemory(std::uint32_t NumShards,
                                   std::size_t ExpectedEntriesPerShard = 256) {
    assert(NumShards > 0 && "need at least one shard");
    Shards.reserve(NumShards);
    for (std::uint32_t S = 0; S < NumShards; ++S)
      Shards.emplace_back(ExpectedEntriesPerShard);
  }

  std::uint32_t numShards() const {
    return static_cast<std::uint32_t>(Shards.size());
  }
  std::uint32_t shardOf(std::uint64_t Addr) const {
    return static_cast<std::uint32_t>(
        (HashShadowMemory::hashAddr(Addr) >> 32) % Shards.size());
  }

  ShadowEntry shardLookup(std::uint32_t Shard, std::uint64_t Addr) const {
    return Shards[Shard].lookup(Addr);
  }
  void shardUpdate(std::uint32_t Shard, std::uint64_t Addr, std::uint32_t Tid,
                   std::int64_t Iter) {
    Shards[Shard].update(Addr, Tid, Iter);
  }
  void prefetch(std::uint32_t Shard, std::uint64_t Addr) const {
    Shards[Shard].prefetch(Addr);
  }

  /// Unsharded probes for serial contexts (invocation prologues).
  ShadowEntry lookup(std::uint64_t Addr) const {
    return shardLookup(shardOf(Addr), Addr);
  }
  void update(std::uint64_t Addr, std::uint32_t Tid, std::int64_t Iter) {
    shardUpdate(shardOf(Addr), Addr, Tid, Iter);
  }

  void clear() {
    for (auto &S : Shards)
      S.clear();
  }

  /// Total live entries across shards.
  std::size_t size() const {
    std::size_t Total = 0;
    for (const auto &S : Shards)
      Total += S.size();
    return Total;
  }

private:
  std::vector<HashShadowMemory> Shards;
};

} // namespace domore
} // namespace cip

#endif // CIP_DOMORE_SHADOWMEMORY_H

//===- domore/DomoreRuntime.h - DOMORE scheduler/worker engine -*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DOMORE runtime engine (dissertation Ch. 3): a scheduler thread
/// non-speculatively detects cross-iteration/cross-invocation dependences at
/// runtime through shadow memory, dispatches inner-loop iterations to worker
/// threads with a *combined* (cross-invocation) iteration number, and
/// forwards point-to-point synchronization conditions so that only
/// iterations that actually conflict ever wait. Global barriers between
/// inner-loop invocations disappear entirely.
///
/// The engine consumes a \c LoopNest description — exactly the artifacts the
/// DOMORE compiler transformation generates from a loop nest: a sequential
/// outer-loop body (the scheduler partition), a computeAddr slice, and a
/// worker body (see src/transform for the compiler that produces these from
/// mini-IR automatically).
///
//===----------------------------------------------------------------------===//

#ifndef CIP_DOMORE_DOMORERUNTIME_H
#define CIP_DOMORE_DOMORERUNTIME_H

#include "domore/Schedule.h"
#include "domore/ShadowMemory.h"
#include "support/Compiler.h"
#include "support/SPSCQueue.h"
#include "telemetry/Counters.h"
#include "telemetry/Histogram.h"
#include "telemetry/RunReport.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace cip {
namespace domore {

/// Description of a transformed loop nest. Mirrors the code the DOMORE
/// compiler emits (Fig 3.7): the scheduler partition (outer-loop sequential
/// code + computeAddr slice) and the worker partition (inner-loop body).
struct LoopNest {
  /// Number of outer-loop iterations, i.e., inner-loop invocations.
  std::uint32_t NumInvocations = 0;

  /// The scheduler partition of the outer-loop body. Runs sequentially in
  /// the scheduler thread before invocation \p Inv is dispatched; returns
  /// the number of inner-loop iterations of that invocation.
  std::function<std::size_t(std::uint32_t Inv)> BeginInvocation;

  /// The computeAddr slice (§3.3.4): appends to \p Addrs the abstract
  /// addresses iteration (\p Inv, \p Iter) will access. Must be side-effect
  /// free — the compiler's slicer enforces this; the runtime trusts it.
  std::function<void(std::uint32_t Inv, std::size_t Iter,
                     std::vector<std::uint64_t> &Addrs)>
      ComputeAddr;

  /// The worker partition: the inner-loop body for iteration
  /// (\p Inv, \p Iter). Runs on whichever worker the policy picked.
  std::function<void(std::uint32_t Inv, std::size_t Iter)> Work;

  /// Optional: abstract addresses the scheduler partition itself writes
  /// before invocation \p Inv. The scheduler waits for in-flight iterations
  /// that touch them before running BeginInvocation, keeping
  /// scheduler-side sequential code sound without global barriers.
  std::function<void(std::uint32_t Inv, std::vector<std::uint64_t> &Addrs)>
      PrologueAddresses;

  /// Size of the abstract address space if dense shadow memory should be
  /// used; 0 selects the hash-based shadow memory.
  std::uint64_t AddressSpaceSize = 0;
};

/// Execution statistics, including the scheduler/worker busy ratio reported
/// in Table 5.2.
struct DomoreStats {
  std::uint64_t Invocations = 0;
  std::uint64_t Iterations = 0;
  /// Point-to-point synchronization conditions produced (true conflicts
  /// detected by the shadow memory).
  std::uint64_t SyncConditions = 0;
  /// Times the scheduler itself had to wait for in-flight iterations before
  /// running sequential outer-loop code.
  std::uint64_t PrologueWaits = 0;
  /// Wall-clock seconds the scheduler thread spent busy (scheduling,
  /// computeAddr, sequential code) vs. the whole parallel region.
  double SchedulerBusySeconds = 0.0;
  double TotalSeconds = 0.0;

  /// Scheduler busy time as a percentage of the region — the
  /// "% of Scheduler/Worker" column of Table 5.2.
  double schedulerRatioPercent() const {
    return TotalSeconds > 0.0
               ? 100.0 * SchedulerBusySeconds / TotalSeconds
               : 0.0;
  }

  /// Aggregated telemetry counters for the region (stall/wait attribution,
  /// queue pressure, per-lane activity). All-zero when the library was
  /// built with CIP_TELEMETRY=0; otherwise the per-run counters agree with
  /// the legacy aggregate fields above (the tests enforce it).
  telemetry::CounterTotals Telemetry;

  /// Conflict heatmap: every shadow-detected conflict as a
  /// (depTid -> tid) pair with a count, hottest first. The pair counts sum
  /// to \c SyncConditions (test-enforced). Empty with CIP_TELEMETRY=0.
  std::vector<telemetry::HeatmapPair> ConflictPairs;

  /// Distribution of individual worker waits on `latestFinished` — the
  /// per-wait view behind the WorkerWaitNs counter total. Empty with
  /// CIP_TELEMETRY=0.
  telemetry::HistogramData WorkerWait;

  /// Distribution of dispatched batch sizes: iterations per WorkRange
  /// message (values are counts, not nanoseconds; they sum to
  /// \c Iterations). Empty with CIP_TELEMETRY=0 and for the duplicated
  /// variant, which has no scheduler->worker messages.
  telemetry::HistogramData DispatchBatch;

  /// Number of shadow-memory shards the scheduler ran with (1 = the serial
  /// single-probe detect-and-record path).
  std::uint32_t ShadowShards = 1;

  /// Per-shard conflict heatmap: sync conditions attributed to the shard
  /// whose probe detected them. Always sums to \c SyncConditions; a single
  /// entry on the serial path. Unlike \c ConflictPairs this is populated
  /// regardless of CIP_TELEMETRY (the sharded scheduler counts them anyway).
  std::vector<std::uint64_t> ShardConflicts;

  /// Number of scheduler threads the detect stage ran with (1 = one
  /// scheduler thread, today's serial probe loop; N > 1 = the scheduler
  /// team of DESIGN.md §15, each member probing its own shard group).
  std::uint32_t SchedThreads = 1;
};

/// Which scheduling policy the engine should construct.
enum class PolicyKind { RoundRobin, OwnerCompute, HashOwner };

/// Caller-owned shadow-memory storage for warm-carry across consecutive
/// runDomore calls on the *same* region (the adaptive harness keeps one per
/// region and threads it through \c DomoreConfig::Carry). Reuse is legal
/// only because the contents are cleared — never kept — between runs:
/// combined iteration numbers restart at 0 every run, so a stale entry
/// would alias a fresh iteration and fabricate dependences. What carries
/// over is the allocation (and its warm pages), which for dense address
/// spaces dominates runDomore setup cost at small policy windows.
class ShadowCarry {
public:
  /// A cleared dense shadow of exactly \p Size entries. Reallocates only
  /// when the region's address-space size changes.
  DenseShadowMemory &dense(std::size_t Size) {
    if (!Dense || Dense->size() != Size)
      Dense = std::make_unique<DenseShadowMemory>(Size);
    else
      Dense->clear();
    return *Dense;
  }

  /// A cleared hash shadow; the table capacity it grew to persists.
  HashShadowMemory &hash() {
    Hash.clear();
    return Hash;
  }

  /// A cleared sharded dense shadow. Reallocates when either the address
  /// space size or the shard count changes.
  ShardedDenseShadowMemory &shardedDense(std::size_t Size,
                                         std::uint32_t Shards) {
    if (!ShardedDense || ShardedDense->size() != Size ||
        ShardedDense->numShards() != Shards)
      ShardedDense = std::make_unique<ShardedDenseShadowMemory>(Size, Shards);
    else
      ShardedDense->clear();
    return *ShardedDense;
  }

  /// A cleared sharded hash shadow; per-shard table capacities persist.
  ShardedHashShadowMemory &shardedHash(std::uint32_t Shards) {
    if (!ShardedHash || ShardedHash->numShards() != Shards)
      ShardedHash = std::make_unique<ShardedHashShadowMemory>(Shards);
    else
      ShardedHash->clear();
    return *ShardedHash;
  }

private:
  std::unique_ptr<DenseShadowMemory> Dense;
  HashShadowMemory Hash;
  std::unique_ptr<ShardedDenseShadowMemory> ShardedDense;
  std::unique_ptr<ShardedHashShadowMemory> ShardedHash;
};

/// Configuration for one DOMORE execution.
struct DomoreConfig {
  std::uint32_t NumWorkers = 2;
  PolicyKind Policy = PolicyKind::RoundRobin;
  /// Queue capacity per worker, in messages. Bounds scheduler run-ahead the
  /// same way the paper's implementation bounds it by queue size.
  std::size_t QueueCapacity = 4096;
  /// Upper bound on how many conflict-free consecutive iterations bound for
  /// the same worker the scheduler coalesces into one WorkRange message.
  /// 1 disables batching and restores the one-message-per-iteration
  /// protocol. The CIP_MAX_BATCH environment variable (a positive integer),
  /// when set, overrides this for every run — CI uses it to keep the legacy
  /// path covered.
  std::size_t MaxBatch = 16;
  /// Number of shadow-memory shards for the scheduler's detect-and-record
  /// stage. 0 or 1 selects the serial single-probe scheduler; N > 1 runs
  /// the two-stage pipelined scheduler over an N-way sharded shadow
  /// (DESIGN.md §14) — same sync conditions, better memory-level
  /// parallelism. The CIP_SHADOW_SHARDS environment variable (a positive
  /// integer <= 4096), when set, overrides this for every run; a malformed
  /// value exits 2. runDomoreDuplicated ignores sharding: its per-worker
  /// private shadows are already contention-free.
  std::uint32_t ShadowShards = 0;
  /// Number of scheduler threads for the sharded detect stage (DESIGN.md
  /// §15). 0 or 1 keeps one scheduler thread probing every shard; N > 1
  /// runs a scheduler *team* — the lead partitions each block, every member
  /// (lead included) probes its own contiguous shard group, and the lead
  /// merges the findings in the same deterministic iteration order, so the
  /// emitted sync conditions are bit-identical to the serial path for every
  /// team size. Only effective when the sharded scheduler runs (ShadowShards
  /// > 1); members beyond the shard count own empty groups. The
  /// CIP_SCHED_THREADS environment variable (a positive integer <= 64),
  /// when set, overrides this for every run; a malformed value exits 2.
  /// runDomoreDuplicated ignores it, like sharding.
  std::uint32_t SchedThreads = 0;
  /// Optional warm-carry storage owned by the caller. When set, runDomore
  /// draws its (cleared) shadow memory from here instead of constructing a
  /// fresh one. runDomoreDuplicated ignores it: every duplicated worker
  /// needs a private shadow, so there is nothing to share.
  ShadowCarry *Carry = nullptr;
};

/// Runs \p Nest under the DOMORE runtime engine with a dedicated scheduler
/// thread and \c Config.NumWorkers worker threads (Algorithms 1 and 2).
/// Blocks until the whole loop nest has executed. Returns statistics.
DomoreStats runDomore(const LoopNest &Nest, const DomoreConfig &Config);

/// Runs \p Nest under the §3.4 variant: the scheduler code is duplicated
/// onto every worker thread (no separate scheduler thread, no queues; each
/// worker redundantly computes the full schedule against a private shadow
/// memory and executes only its own iterations). Requires the scheduler
/// partition to be duplicable: BeginInvocation must be deterministic and
/// race-free when executed concurrently by all workers.
DomoreStats runDomoreDuplicated(const LoopNest &Nest,
                                const DomoreConfig &Config);

} // namespace domore
} // namespace cip

#endif // CIP_DOMORE_DOMORERUNTIME_H

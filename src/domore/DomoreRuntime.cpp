//===- domore/DomoreRuntime.cpp - DOMORE scheduler/worker engine ---------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "domore/DomoreRuntime.h"

#include "support/Backoff.h"
#include "support/ThreadGroup.h"
#include "support/Timer.h"
#include "telemetry/Telemetry.h"

#include <atomic>
#include <memory>
#include <string>

using namespace cip;
using namespace cip::domore;
using telemetry::Counter;
using telemetry::EventKind;
using telemetry::Hist;

namespace {

/// One slot of the `latestFinished` status array (§3.2.3), padded so that
/// each worker publishes its progress on a private cache line.
struct alignas(CacheLineBytes) ProgressSlot {
  std::atomic<std::int64_t> LatestFinished{-1};
};

/// Message the scheduler forwards to a worker queue. Three kinds, matching
/// the paper's protocol:
///  * Sync: "wait until worker DepTid has finished combined iteration Iter"
///  * Work: "you may now run iteration (Invocation, LocalIter), whose
///    combined number is Iter" — the (NO_SYNC, iterNum) token plus payload
///  * End:  the END_TOKEN broadcast when the outer loop finishes
struct Message {
  enum KindTy : std::uint32_t { Sync, Work, End };

  KindTy Kind = End;
  std::uint32_t DepTid = 0;
  std::int64_t Iter = -1;
  std::uint32_t Invocation = 0;
  std::uint64_t LocalIter = 0;
  /// Trace flow-arrow id pairing this sync condition's scheduler-side
  /// source with the worker-side wait (0 for non-sync messages).
  std::uint64_t Flow = 0;
};

/// Spin-waits until \p Slot reports completion of combined iteration
/// \p Iter or beyond.
void waitForIteration(const ProgressSlot &Slot, std::int64_t Iter) {
  Backoff B;
  while (Slot.LatestFinished.load(std::memory_order_acquire) < Iter)
    B.pause();
}

/// True when combined iteration \p Iter is already finished — the fast path
/// that lets probes time only *actual* waits.
bool iterationDone(const ProgressSlot &Slot, std::int64_t Iter) {
  return Slot.LatestFinished.load(std::memory_order_acquire) >= Iter;
}

/// produce() with queue-pressure accounting: spins are the scheduler
/// run-ahead hitting the queue bound.
void produceCounted(SPSCQueue<Message> &Q, const Message &M,
                    telemetry::RegionTelemetry &Tel, unsigned Lane) {
  if (CIP_LIKELY(Q.tryProduce(M)))
    return;
  telemetry::TimedScope Full(Tel, Lane, Counter::SchedulerStallNs,
                             Hist::QueueFullNs, EventKind::QueueFull);
  Backoff B;
  do {
    B.pause();
    Tel.add(Lane, Counter::QueueFullSpins);
  } while (!Q.tryProduce(M));
}

/// Looks up every address of the current iteration in \p Shadow, emits sync
/// conditions for cross-worker conflicts via
/// \p EmitSync(DepTid, DepIter, Addr), and records the new accessor.
/// Shared by both shadow implementations and both engine variants.
template <typename ShadowT, typename EmitSyncFn>
std::uint64_t detectAndRecord(ShadowT &Shadow,
                              const std::vector<std::uint64_t> &Addrs,
                              std::uint32_t Tid, std::int64_t Iter,
                              EmitSyncFn &&EmitSync) {
  std::uint64_t Conflicts = 0;
  for (std::uint64_t Addr : Addrs) {
    const ShadowEntry Prev = Shadow.lookup(Addr);
    if (Prev.valid() && Prev.Tid != Tid) {
      EmitSync(Prev.Tid, Prev.Iter, Addr);
      ++Conflicts;
    }
    Shadow.update(Addr, Tid, Iter);
  }
  return Conflicts;
}

std::unique_ptr<SchedulePolicy> makePolicy(const LoopNest &Nest,
                                           const DomoreConfig &Config) {
  switch (Config.Policy) {
  case PolicyKind::RoundRobin:
    return std::make_unique<RoundRobinPolicy>(Config.NumWorkers);
  case PolicyKind::OwnerCompute:
    assert(Nest.AddressSpaceSize > 0 &&
           "owner-compute needs a dense address space");
    return std::make_unique<OwnerComputePolicy>(Config.NumWorkers,
                                                Nest.AddressSpaceSize);
  case PolicyKind::HashOwner:
    return std::make_unique<HashOwnerPolicy>(Config.NumWorkers);
  }
  CIP_UNREACHABLE("unknown policy kind");
}

/// The scheduler thread body: Algorithm 1 plus iteration dispatch.
template <typename ShadowT>
void runScheduler(const LoopNest &Nest, const DomoreConfig &Config,
                  ShadowT &Shadow, SchedulePolicy &Policy,
                  std::vector<std::unique_ptr<SPSCQueue<Message>>> &Queues,
                  std::vector<ProgressSlot> &Progress, DomoreStats &Stats,
                  telemetry::RegionTelemetry &Tel) {
  const unsigned Lane = Config.NumWorkers; // scheduler lane
  std::vector<std::uint64_t> Addrs;
  std::int64_t Combined = 0;
  std::uint64_t NextFlow = 1;
  Stopwatch Busy;

  for (std::uint32_t Inv = 0; Inv < Nest.NumInvocations; ++Inv) {
    // Before running the sequential outer-loop code, respect dependences
    // from in-flight iterations onto the scheduler partition's own writes.
    if (Nest.PrologueAddresses) {
      Addrs.clear();
      Nest.PrologueAddresses(Inv, Addrs);
      for (std::uint64_t Addr : Addrs) {
        const ShadowEntry Prev = Shadow.lookup(Addr);
        if (!Prev.valid())
          continue;
        if (!iterationDone(Progress[Prev.Tid], Prev.Iter)) {
          telemetry::TimedScope Stall(Tel, Lane, Counter::SchedulerStallNs,
                                      Hist::SchedStallNs, EventKind::SchedStall,
                                      Prev.Tid,
                                      static_cast<std::uint64_t>(Prev.Iter));
          waitForIteration(Progress[Prev.Tid], Prev.Iter);
        }
        ++Stats.PrologueWaits;
        Tel.add(Lane, Counter::PrologueWaits);
      }
    }

    Tel.begin(Lane, EventKind::Invocation, Inv);
    Busy.start();
    const std::size_t NumIters = Nest.BeginInvocation(Inv);
    Busy.stop();

    for (std::size_t It = 0; It < NumIters; ++It) {
      Busy.start();
      Addrs.clear();
      Nest.ComputeAddr(Inv, It, Addrs);
      const std::uint32_t Tid = Policy.pick(Combined, Addrs);
      SPSCQueue<Message> &Q = *Queues[Tid];
      const std::uint64_t Conflicts = detectAndRecord(
          Shadow, Addrs, Tid, Combined,
          [&](std::uint32_t DepTid, std::int64_t DepIter, std::uint64_t Addr) {
            const std::uint64_t Flow = NextFlow++;
            Tel.recordConflict(DepTid, Tid, Addr);
            Tel.flowBegin(Lane, Flow);
            produceCounted(Q,
                           Message{Message::Sync, DepTid, DepIter, 0, 0, Flow},
                           Tel, Lane);
          });
      Stats.SyncConditions += Conflicts;
      if (Conflicts)
        Tel.add(Lane, Counter::ShadowConflicts, Conflicts);
      Busy.stop();
      produceCounted(
          Q, Message{Message::Work, /*DepTid=*/0, Combined, Inv, It, 0}, Tel,
          Lane);
      Tel.add(Lane, Counter::IterationsDispatched);
      Tel.instant(Lane, EventKind::Dispatch, Inv,
                  static_cast<std::uint64_t>(Combined));
      ++Combined;
    }
    Tel.end(Lane, EventKind::Invocation, Inv);
    ++Stats.Invocations;
  }

  for (auto &Q : Queues)
    Q->produce(Message{Message::End, 0, -1, 0, 0, 0});

  Stats.Iterations = static_cast<std::uint64_t>(Combined);
  Stats.SchedulerBusySeconds = Busy.elapsedSeconds();
  Tel.add(Lane, Counter::SchedulerBusyNs, Busy.elapsedNanos());
}

/// The worker thread body: Algorithm 2.
void runWorker(const LoopNest &Nest, std::uint32_t Tid,
               SPSCQueue<Message> &Queue, std::vector<ProgressSlot> &Progress,
               telemetry::RegionTelemetry &Tel) {
  while (true) {
    Message M;
    if (!Queue.tryConsume(M)) {
      // Starved: the scheduler has not produced for this lane yet.
      Backoff B;
      do {
        B.pause();
        Tel.add(Tid, Counter::QueueEmptySpins);
      } while (!Queue.tryConsume(M));
    }
    switch (M.Kind) {
    case Message::End:
      return;
    case Message::Sync:
      assert(M.DepTid != Tid && "scheduler never syncs a worker on itself");
      if (!iterationDone(Progress[M.DepTid], M.Iter)) {
        telemetry::TimedScope Wait(Tel, Tid, Counter::WorkerWaitNs,
                                   Hist::WorkerWaitNs, EventKind::SyncWait,
                                   M.DepTid,
                                   static_cast<std::uint64_t>(M.Iter));
        waitForIteration(Progress[M.DepTid], M.Iter);
      }
      Tel.flowEnd(Tid, M.Flow);
      break;
    case Message::Work:
      Tel.begin(Tid, EventKind::Task, M.Invocation, M.LocalIter);
      Nest.Work(M.Invocation, M.LocalIter);
      Tel.end(Tid, EventKind::Task);
      Progress[Tid].LatestFinished.store(M.Iter, std::memory_order_release);
      Tel.add(Tid, Counter::TasksExecuted);
      break;
    }
  }
}

template <typename ShadowT>
DomoreStats runWithShadow(const LoopNest &Nest, const DomoreConfig &Config,
                          ShadowT &Shadow) {
  assert(Nest.BeginInvocation && Nest.ComputeAddr && Nest.Work &&
         "incomplete loop nest description");
  assert(Config.NumWorkers > 0 && "need at least one worker");

  DomoreStats Stats;
  std::unique_ptr<SchedulePolicy> Policy = makePolicy(Nest, Config);

  std::vector<std::unique_ptr<SPSCQueue<Message>>> Queues;
  for (std::uint32_t W = 0; W < Config.NumWorkers; ++W)
    Queues.push_back(
        std::make_unique<SPSCQueue<Message>>(Config.QueueCapacity));
  std::vector<ProgressSlot> Progress(Config.NumWorkers);

  telemetry::RegionTelemetry Tel("domore", Config.NumWorkers + 1);
  if (Tel.tracing()) {
    for (std::uint32_t W = 0; W < Config.NumWorkers; ++W)
      Tel.nameLane(W, "worker " + std::to_string(W));
    Tel.nameLane(Config.NumWorkers, "scheduler");
  }

  const double Begin = static_cast<double>(nowNanos());
  runThreads(Config.NumWorkers + 1, [&](unsigned ThreadIdx) {
    if (ThreadIdx == Config.NumWorkers)
      runScheduler(Nest, Config, Shadow, *Policy, Queues, Progress, Stats,
                   Tel);
    else
      runWorker(Nest, ThreadIdx, *Queues[ThreadIdx], Progress, Tel);
  });
  Stats.TotalSeconds = (static_cast<double>(nowNanos()) - Begin) * 1e-9;
  Stats.Telemetry = Tel.totals();
  Stats.ConflictPairs = Tel.heatmapPairs();
  Stats.WorkerWait = Tel.histTotals(Hist::WorkerWaitNs);
  Tel.finish();
  return Stats;
}

} // namespace

DomoreStats domore::runDomore(const LoopNest &Nest,
                              const DomoreConfig &Config) {
  if (Nest.AddressSpaceSize > 0) {
    DenseShadowMemory Shadow(Nest.AddressSpaceSize);
    return runWithShadow(Nest, Config, Shadow);
  }
  HashShadowMemory Shadow;
  return runWithShadow(Nest, Config, Shadow);
}

DomoreStats domore::runDomoreDuplicated(const LoopNest &Nest,
                                        const DomoreConfig &Config) {
  assert(Nest.BeginInvocation && Nest.ComputeAddr && Nest.Work &&
         "incomplete loop nest description");
  assert(Config.NumWorkers > 0 && "need at least one worker");

  DomoreStats Stats;
  std::vector<ProgressSlot> Progress(Config.NumWorkers);
  std::atomic<std::uint64_t> TotalSyncs{0};

  telemetry::RegionTelemetry Tel("domore_dup", Config.NumWorkers);
  if (Tel.tracing())
    for (std::uint32_t W = 0; W < Config.NumWorkers; ++W)
      Tel.nameLane(W, "worker " + std::to_string(W));

  const double Begin = static_cast<double>(nowNanos());
  runThreads(Config.NumWorkers, [&](unsigned Tid) {
    // Every worker redundantly executes the scheduler partition against a
    // private shadow memory (Fig 3.9). Because all workers process the same
    // deterministic iteration stream, their shadows agree, and each worker
    // can locally decide which iterations it owns and which conditions to
    // wait on. No queues are needed.
    std::unique_ptr<SchedulePolicy> Policy = makePolicy(Nest, Config);
    DenseShadowMemory DenseShadow(
        Nest.AddressSpaceSize > 0 ? Nest.AddressSpaceSize : 1);
    HashShadowMemory HashShadow;
    const bool UseDense = Nest.AddressSpaceSize > 0;

    std::vector<std::uint64_t> Addrs;
    std::vector<std::pair<std::uint32_t, std::int64_t>> Waits;
    std::int64_t Combined = 0;
    std::uint64_t MySyncs = 0;

    for (std::uint32_t Inv = 0; Inv < Nest.NumInvocations; ++Inv) {
      Tel.begin(Tid, EventKind::Invocation, Inv);
      const std::size_t NumIters = Nest.BeginInvocation(Inv);
      for (std::size_t It = 0; It < NumIters; ++It) {
        Addrs.clear();
        Nest.ComputeAddr(Inv, It, Addrs);
        const std::uint32_t Owner = Policy->pick(Combined, Addrs);
        const bool Mine = Owner == Tid;
        Waits.clear();
        auto Emit = [&](std::uint32_t DepTid, std::int64_t DepIter,
                        std::uint64_t Addr) {
          // Only the owner records the condition (and its heatmap cell), so
          // the region totals count each conflict once, not W times.
          if (Mine && DepTid != Tid) {
            Waits.emplace_back(DepTid, DepIter);
            Tel.recordConflict(DepTid, Tid, Addr);
          }
        };
        if (UseDense)
          MySyncs +=
              detectAndRecord(DenseShadow, Addrs, Owner, Combined, Emit);
        else
          MySyncs += detectAndRecord(HashShadow, Addrs, Owner, Combined, Emit);
        if (Mine) {
          // Each worker only accounts the conditions it itself waits on, so
          // the telemetry total equals the region's true sync count rather
          // than W redundant copies of it.
          if (!Waits.empty())
            Tel.add(Tid, Counter::ShadowConflicts, Waits.size());
          for (const auto &[DepTid, DepIter] : Waits) {
            if (iterationDone(Progress[DepTid], DepIter))
              continue;
            telemetry::TimedScope Wait(Tel, Tid, Counter::WorkerWaitNs,
                                       Hist::WorkerWaitNs, EventKind::SyncWait,
                                       DepTid,
                                       static_cast<std::uint64_t>(DepIter));
            waitForIteration(Progress[DepTid], DepIter);
          }
          Tel.begin(Tid, EventKind::Task, Inv, It);
          Nest.Work(Inv, It);
          Tel.end(Tid, EventKind::Task);
          Progress[Tid].LatestFinished.store(Combined,
                                             std::memory_order_release);
          Tel.add(Tid, Counter::TasksExecuted);
        }
        ++Combined;
      }
      Tel.end(Tid, EventKind::Invocation, Inv);
    }
    if (Tid == 0) {
      Stats.Invocations = Nest.NumInvocations;
      Stats.Iterations = static_cast<std::uint64_t>(Combined);
    }
    TotalSyncs.fetch_add(MySyncs, std::memory_order_relaxed);
  });
  Stats.TotalSeconds = (static_cast<double>(nowNanos()) - Begin) * 1e-9;
  // Every worker counted the same conflicts; report one worker's view.
  Stats.SyncConditions =
      TotalSyncs.load(std::memory_order_relaxed) / Config.NumWorkers;
  Stats.Telemetry = Tel.totals();
  Stats.ConflictPairs = Tel.heatmapPairs();
  Stats.WorkerWait = Tel.histTotals(Hist::WorkerWaitNs);
  Tel.finish();
  return Stats;
}

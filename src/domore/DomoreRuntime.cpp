//===- domore/DomoreRuntime.cpp - DOMORE scheduler/worker engine ---------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "domore/DomoreRuntime.h"

#include "support/Backoff.h"
#include "support/Chaos.h"
#include "support/ThreadGroup.h"
#include "support/Timer.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

using namespace cip;
using namespace cip::domore;
using telemetry::Counter;
using telemetry::EventKind;
using telemetry::Hist;

namespace {

/// One slot of the `latestFinished` status array (§3.2.3), padded so that
/// each worker publishes its progress on a private cache line.
struct alignas(CacheLineBytes) ProgressSlot {
  std::atomic<std::int64_t> LatestFinished{-1};
};

/// Message the scheduler forwards to a worker queue. Three kinds, matching
/// the paper's protocol with batch-granular work dispatch:
///  * Sync: "wait until worker DepTid has finished combined iteration Iter"
///  * Work: "you may now run the Count consecutive iterations starting at
///    (Invocation, LocalIter), whose combined numbers start at Iter" — a
///    WorkRange coalescing a run of conflict-free consecutive iterations
///    all bound for this worker (Count == 1 is the paper's original
///    (NO_SYNC, iterNum) token plus payload)
///  * End:  the END_TOKEN broadcast when the outer loop finishes
struct Message {
  enum KindTy : std::uint32_t { Sync, Work, End };

  KindTy Kind = End;
  std::uint32_t DepTid = 0;
  std::int64_t Iter = -1;
  std::uint32_t Invocation = 0;
  /// Work: iterations in the range.
  std::uint32_t Count = 0;
  /// Work: first local (within-invocation) iteration of the range.
  std::uint64_t LocalIter = 0;
  /// Trace flow-arrow id pairing this sync condition's scheduler-side
  /// source with the worker-side wait (0 for non-sync messages).
  std::uint64_t Flow = 0;
};

static_assert(std::is_trivially_copyable_v<Message>,
              "messages move through SPSCQueue batch transfers");

/// A worker's not-yet-dispatched run of conflict-free consecutive
/// iterations. The scheduler grows it while assignment stays contiguous
/// and flushes it as one WorkRange message; every flush rule exists to
/// keep one invariant: nothing — no sync condition, no scheduler prologue
/// wait — ever waits on an iteration that is still inside a pending run.
struct PendingRun {
  bool Active = false;
  std::uint32_t Invocation = 0;
  std::uint32_t Count = 0;
  std::uint64_t FirstLocal = 0;
  std::int64_t CombinedBase = -1;
};

/// Effective batching bound: the CIP_MAX_BATCH environment knob (positive
/// integer, parsed once) overrides the config so CI can pin the legacy
/// one-message-per-iteration protocol.
std::size_t effectiveMaxBatch(const DomoreConfig &Config) {
  static const std::size_t EnvOverride = [] {
    if (const char *S = std::getenv("CIP_MAX_BATCH")) {
      char *End = nullptr;
      const unsigned long long N = std::strtoull(S, &End, 10);
      if (End && *End == '\0' && N > 0)
        return static_cast<std::size_t>(N);
    }
    return std::size_t{0};
  }();
  if (EnvOverride > 0)
    return EnvOverride;
  return Config.MaxBatch > 0 ? Config.MaxBatch : 1;
}

/// Effective shadow shard count: the CIP_SHADOW_SHARDS environment knob
/// (strict: a positive integer <= 4096, anything else exits 2) overrides
/// the config; 0/1 means the serial single-probe scheduler.
std::uint32_t effectiveShadowShards(const DomoreConfig &Config) {
  static const std::uint32_t EnvOverride = [] {
    const char *S = std::getenv("CIP_SHADOW_SHARDS");
    if (!S || !*S)
      return std::uint32_t{0};
    char *End = nullptr;
    const unsigned long long N = std::strtoull(S, &End, 10);
    if (!End || *End != '\0' || N == 0 || N > 4096) {
      std::fprintf(stderr,
                   "error: CIP_SHADOW_SHARDS='%s' is invalid: expected a "
                   "positive shard count <= 4096 (1 selects the serial "
                   "scheduler)\n",
                   S);
      std::_Exit(2);
    }
    return static_cast<std::uint32_t>(N);
  }();
  if (EnvOverride > 0)
    return EnvOverride;
  return Config.ShadowShards > 0 ? Config.ShadowShards : 1;
}

/// Effective scheduler-team size: the CIP_SCHED_THREADS environment knob
/// (strict: a positive integer <= 64, anything else exits 2) overrides the
/// config; 0/1 means one scheduler thread probing every shard.
std::uint32_t effectiveSchedThreads(const DomoreConfig &Config) {
  static const std::uint32_t EnvOverride = [] {
    const char *S = std::getenv("CIP_SCHED_THREADS");
    if (!S || !*S)
      return std::uint32_t{0};
    char *End = nullptr;
    const unsigned long long N = std::strtoull(S, &End, 10);
    if (!End || *End != '\0' || N == 0 || N > 64) {
      std::fprintf(stderr,
                   "error: CIP_SCHED_THREADS='%s' is invalid: expected a "
                   "positive scheduler-thread count <= 64 (1 selects the "
                   "single-scheduler path)\n",
                   S);
      std::_Exit(2);
    }
    return static_cast<std::uint32_t>(N);
  }();
  if (EnvOverride > 0)
    return EnvOverride;
  return Config.SchedThreads > 0 ? Config.SchedThreads : 1;
}

/// Spin-waits until \p Slot reports completion of combined iteration
/// \p Iter or beyond.
void waitForIteration(const ProgressSlot &Slot, std::int64_t Iter) {
  CIP_CHAOS_POINT(ProgressWait);
  Backoff B;
  while (Slot.LatestFinished.load(std::memory_order_acquire) < Iter)
    B.pause();
}

/// True when combined iteration \p Iter is already finished — the fast path
/// that lets probes time only *actual* waits.
bool iterationDone(const ProgressSlot &Slot, std::int64_t Iter) {
  return Slot.LatestFinished.load(std::memory_order_acquire) >= Iter;
}

/// produce() with queue-pressure accounting: spins are the scheduler
/// run-ahead hitting the queue bound.
void produceCounted(SPSCQueue<Message> &Q, const Message &M,
                    telemetry::RegionTelemetry &Tel, unsigned Lane) {
  if (CIP_LIKELY(Q.tryProduce(M)))
    return;
  telemetry::TimedScope Full(Tel, Lane, Counter::SchedulerStallNs,
                             Hist::QueueFullNs, EventKind::QueueFull);
  Backoff B;
  do {
    B.pause();
    Tel.add(Lane, Counter::QueueFullSpins);
  } while (!Q.tryProduce(M));
}

/// Batch produce() with the same queue-pressure accounting: one release
/// store when the whole batch fits, partial progress plus backoff when the
/// scheduler's run-ahead hits the queue bound.
void produceBatchCounted(SPSCQueue<Message> &Q, const Message *Items,
                         std::size_t N, telemetry::RegionTelemetry &Tel,
                         unsigned Lane) {
  std::size_t Done = Q.tryProduceBatch(Items, N);
  if (CIP_LIKELY(Done == N))
    return;
  telemetry::TimedScope Full(Tel, Lane, Counter::SchedulerStallNs,
                             Hist::QueueFullNs, EventKind::QueueFull);
  Backoff B;
  while (Done < N) {
    const std::size_t K = Q.tryProduceBatch(Items + Done, N - Done);
    if (K == 0) {
      B.pause();
      Tel.add(Lane, Counter::QueueFullSpins);
    }
    Done += K;
  }
}

/// The dispatch half of the scheduler, shared by the serial and sharded
/// variants so their worker-visible protocol is the *same code*: pending-run
/// coalescing, the flush rules, and sync-condition shipping. The invariant
/// every rule serves: nothing — no sync condition, no scheduler prologue
/// wait — ever waits on an iteration that is still inside a pending run.
class DispatchState {
public:
  DispatchState(const DomoreConfig &Config,
                std::vector<std::unique_ptr<SPSCQueue<Message>>> &Queues,
                telemetry::RegionTelemetry &Tel, unsigned Lane)
      : Queues(Queues), Tel(Tel), Lane(Lane),
        MaxBatch(effectiveMaxBatch(Config)), Pending(Config.NumWorkers) {}

  /// Ships worker \p W's pending run as one WorkRange message. Everything
  /// that might wait on one of its iterations calls this first, so by the
  /// time a wait exists its target range is in the worker's queue.
  void flushRun(std::uint32_t W) {
    PendingRun &R = Pending[W];
    if (!R.Active)
      return;
    CIP_CHECK(R.Count > 0, "active pending run with no iterations");
    // Stretch the flush-decided -> range-enqueued window: any wait that
    // races ahead of this enqueue targets an undispatched iteration.
    CIP_CHAOS_POINT(Dispatch);
    produceCounted(*Queues[W],
                   Message{Message::Work, /*DepTid=*/0, R.CombinedBase,
                           R.Invocation, R.Count, R.FirstLocal, 0},
                   Tel, Lane);
    Tel.recordHist(Lane, Hist::DispatchBatch, R.Count);
    Tel.add(Lane, Counter::IterationsDispatched, R.Count);
    Tel.instant(Lane, EventKind::Dispatch, R.Invocation,
                static_cast<std::uint64_t>(R.CombinedBase));
    R.Active = false;
  }

  /// Flushes \p W's run iff it still holds combined iteration \p Iter — the
  /// rule every wait source applies before waiting.
  void flushIfHolds(std::uint32_t W, std::int64_t Iter) {
    if (Pending[W].Active && Iter >= Pending[W].CombinedBase)
      flushRun(W);
  }

  /// Ships the sync conditions of one iteration bound for \p Tid. A sync
  /// condition never enters a queue while an iteration it depends on — or
  /// an earlier iteration of its own worker — is still in a pending run:
  /// flush the dependence sources (their range tails then cover DepIter)
  /// and the target's own run (queue order keeps earlier work ahead of the
  /// wait), then ship every condition with one cursor update.
  void shipSyncs(std::uint32_t Tid, std::vector<Message> &SyncBuf) {
    flushRun(Tid);
    for (Message &M : SyncBuf) {
      flushIfHolds(M.DepTid, M.Iter);
      M.Flow = NextFlow++;
      Tel.flowBegin(Lane, M.Flow);
    }
    produceBatchCounted(*Queues[Tid], SyncBuf.data(), SyncBuf.size(), Tel,
                        Lane);
  }

  /// Appends combined iteration \p Combined — local iteration \p It of
  /// invocation \p Inv, bound for \p Tid — to \p Tid's pending run, starting
  /// a new run when assignment stops being contiguous and flushing at the
  /// batching bound.
  void extend(std::uint32_t Tid, std::uint32_t Inv, std::uint64_t It,
              std::int64_t Combined) {
    PendingRun &R = Pending[Tid];
    if (R.Active && R.Invocation == Inv &&
        R.CombinedBase + R.Count == Combined && R.FirstLocal + R.Count == It) {
      ++R.Count;
    } else {
      flushRun(Tid);
      R.Active = true;
      R.Invocation = Inv;
      R.Count = 1;
      R.FirstLocal = It;
      R.CombinedBase = Combined;
    }
    if (R.Count >= MaxBatch)
      flushRun(Tid);
  }

  void flushAll() {
    for (std::uint32_t W = 0; W < Pending.size(); ++W)
      flushRun(W);
  }

private:
  std::vector<std::unique_ptr<SPSCQueue<Message>>> &Queues;
  telemetry::RegionTelemetry &Tel;
  const unsigned Lane;
  const std::size_t MaxBatch;
  std::vector<PendingRun> Pending;
  std::uint64_t NextFlow = 1;
};

/// Looks up every address of the current iteration in \p Shadow, emits sync
/// conditions for cross-worker conflicts via
/// \p EmitSync(DepTid, DepIter, Addr), and records the new accessor.
/// Shared by both shadow implementations and both engine variants.
template <typename ShadowT, typename EmitSyncFn>
std::uint64_t detectAndRecord(ShadowT &Shadow,
                              const std::vector<std::uint64_t> &Addrs,
                              std::uint32_t Tid, std::int64_t Iter,
                              EmitSyncFn &&EmitSync) {
  std::uint64_t Conflicts = 0;
  for (std::uint64_t Addr : Addrs) {
    const ShadowEntry Prev = Shadow.lookup(Addr);
    if (Prev.valid() && Prev.Tid != Tid) {
      EmitSync(Prev.Tid, Prev.Iter, Addr);
      ++Conflicts;
    }
    Shadow.update(Addr, Tid, Iter);
  }
  return Conflicts;
}

std::unique_ptr<SchedulePolicy> makePolicy(const LoopNest &Nest,
                                           const DomoreConfig &Config) {
  switch (Config.Policy) {
  case PolicyKind::RoundRobin:
    return std::make_unique<RoundRobinPolicy>(Config.NumWorkers);
  case PolicyKind::OwnerCompute:
    assert(Nest.AddressSpaceSize > 0 &&
           "owner-compute needs a dense address space");
    return std::make_unique<OwnerComputePolicy>(Config.NumWorkers,
                                                Nest.AddressSpaceSize);
  case PolicyKind::HashOwner:
    return std::make_unique<HashOwnerPolicy>(Config.NumWorkers);
  }
  CIP_UNREACHABLE("unknown policy kind");
}

/// The scheduler thread body: Algorithm 1 plus iteration dispatch.
template <typename ShadowT>
void runScheduler(const LoopNest &Nest, const DomoreConfig &Config,
                  ShadowT &Shadow, SchedulePolicy &Policy,
                  std::vector<std::unique_ptr<SPSCQueue<Message>>> &Queues,
                  std::vector<ProgressSlot> &Progress, DomoreStats &Stats,
                  telemetry::RegionTelemetry &Tel) {
  const unsigned Lane = Config.NumWorkers; // scheduler lane
  std::vector<std::uint64_t> Addrs;
  DispatchState Dispatch(Config, Queues, Tel, Lane);
  std::vector<Message> SyncBuf;
  std::int64_t Combined = 0;
  Stopwatch Busy;

  for (std::uint32_t Inv = 0; Inv < Nest.NumInvocations; ++Inv) {
    // Before running the sequential outer-loop code, respect dependences
    // from in-flight iterations onto the scheduler partition's own writes.
    if (Nest.PrologueAddresses) {
      Addrs.clear();
      Nest.PrologueAddresses(Inv, Addrs);
      for (std::uint64_t Addr : Addrs) {
        const ShadowEntry Prev = Shadow.lookup(Addr);
        if (!Prev.valid())
          continue;
        // The scheduler must not wait on an iteration it has not yet
        // dispatched: flush the run that still holds it.
        Dispatch.flushIfHolds(Prev.Tid, Prev.Iter);
        if (!iterationDone(Progress[Prev.Tid], Prev.Iter)) {
          telemetry::TimedScope Stall(Tel, Lane, Counter::SchedulerStallNs,
                                      Hist::SchedStallNs, EventKind::SchedStall,
                                      Prev.Tid,
                                      static_cast<std::uint64_t>(Prev.Iter));
          waitForIteration(Progress[Prev.Tid], Prev.Iter);
        }
        ++Stats.PrologueWaits;
        Tel.add(Lane, Counter::PrologueWaits);
      }
    }

    Tel.begin(Lane, EventKind::Invocation, Inv);
    Busy.start();
    const std::size_t NumIters = Nest.BeginInvocation(Inv);
    Busy.stop();

    for (std::size_t It = 0; It < NumIters; ++It) {
      Busy.start();
      Addrs.clear();
      Nest.ComputeAddr(Inv, It, Addrs);
      const std::uint32_t Tid = Policy.pick(Combined, Addrs);
      SyncBuf.clear();
      const std::uint64_t Conflicts = detectAndRecord(
          Shadow, Addrs, Tid, Combined,
          [&](std::uint32_t DepTid, std::int64_t DepIter, std::uint64_t Addr) {
            Tel.recordConflict(DepTid, Tid, Addr);
            SyncBuf.push_back(
                Message{Message::Sync, DepTid, DepIter, 0, 0, 0, 0});
          });
      Stats.SyncConditions += Conflicts;
      if (Conflicts)
        Tel.add(Lane, Counter::ShadowConflicts, Conflicts);
      Busy.stop();

      if (CIP_UNLIKELY(!SyncBuf.empty()))
        Dispatch.shipSyncs(Tid, SyncBuf);
      Dispatch.extend(Tid, Inv, It, Combined);
      ++Combined;
    }
    Tel.end(Lane, EventKind::Invocation, Inv);
    ++Stats.Invocations;
  }

  Dispatch.flushAll();
  for (auto &Q : Queues)
    Q->produce(Message{Message::End, 0, -1, 0, 0, 0, 0});

  Stats.Iterations = static_cast<std::uint64_t>(Combined);
  Stats.SchedulerBusySeconds = Busy.elapsedSeconds();
  Tel.add(Lane, Counter::SchedulerBusyNs, Busy.elapsedNanos());
}

/// One probe routed to a shard, in iteration-then-address order.
struct ShardProbe {
  std::uint32_t Seq; ///< block-local iteration index
  std::uint64_t Addr;
};
/// One cross-worker conflict a shard probe found.
struct ShardConflict {
  std::uint32_t Seq;
  std::uint32_t DepTid;
  std::int64_t DepIter;
  std::uint64_t Addr;
};

struct alignas(CacheLineBytes) PaddedGen {
  std::atomic<std::uint64_t> Value{0};
};

/// Hand-off state of one scheduler team (DESIGN.md §15). The lead
/// partitions a block, publishes it with one BlockGen release store, probes
/// its own shard group, and waits for every member's DoneGen before
/// merging; members spin on BlockGen, probe their groups, and answer on
/// their DoneGen slot. The two generation edges carry all the
/// happens-before the block protocol needs: BlockGen (release by lead,
/// acquire by members) publishes the buckets, picks, and cleared findings;
/// DoneGen (release by member, acquire by lead) publishes each member's
/// findings and shard updates back before the merge — and before the lead's
/// next-block writes, so consecutive blocks never race either.
struct TeamShared {
  /// Block inputs; pointers are set once by the lead before the first
  /// hand-off, the pointees are rewritten per block under BlockGen.
  const std::vector<std::uint32_t> *Tids = nullptr;
  std::vector<std::vector<ShardProbe>> *Buckets = nullptr;
  std::vector<std::vector<ShardConflict>> *Found = nullptr;
  /// Combined iteration number of the block's first iteration.
  std::int64_t Combined = 0;
  /// Set (before the final BlockGen bump) when the region is over.
  std::atomic<bool> Quit{false};
  /// Lead -> members: a new block's buckets are ready.
  alignas(CacheLineBytes) std::atomic<std::uint64_t> BlockGen{0};
  /// Member m -> lead: member m finished probing this generation.
  std::vector<PaddedGen> DoneGen;

  explicit TeamShared(std::uint32_t Members) : DoneGen(Members) {}

  /// Member m's contiguous shard group is [groupBegin(m), groupBegin(m+1)).
  /// Empty groups are legal (team wider than the shard count).
  static std::uint32_t groupBegin(std::uint32_t Member, std::uint32_t Team,
                                  std::uint32_t NumShards) {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(NumShards) * Member) / Team);
  }
};

/// Probes shards [SBegin, SEnd) of one partitioned block — the
/// detect-and-record stage every team member (lead included) runs over its
/// own group. Returns the number of conflicts appended to \p Found.
template <typename ShardedT>
std::uint64_t probeShardRange(ShardedT &Shadow,
                              const std::vector<std::uint32_t> &Tids,
                              std::vector<std::vector<ShardProbe>> &Buckets,
                              std::vector<std::vector<ShardConflict>> &Found,
                              std::int64_t Combined, std::uint32_t SBegin,
                              std::uint32_t SEnd) {
  std::uint64_t Conflicts = 0;
  for (std::uint32_t S = SBegin; S < SEnd; ++S) {
    for (const ShardProbe &P : Buckets[S]) {
      const ShadowEntry Prev = Shadow.shardLookup(S, P.Addr);
      const std::uint32_t Tid = Tids[P.Seq];
      if (Prev.valid() && Prev.Tid != Tid) {
        Found[S].push_back(ShardConflict{P.Seq, Prev.Tid, Prev.Iter, P.Addr});
        ++Conflicts;
      }
      Shadow.shardUpdate(S, P.Addr, Tid,
                         Combined + static_cast<std::int64_t>(P.Seq));
    }
  }
  return Conflicts;
}

/// A non-lead scheduler-team member: waits for each block hand-off, probes
/// its own shard group, and reports back on its DoneGen slot. Lane =
/// NumWorkers + Member.
template <typename ShardedT>
void runSchedulerMember(ShardedT &Shadow, TeamShared &Shared,
                        std::uint32_t Member, std::uint32_t SBegin,
                        std::uint32_t SEnd, telemetry::RegionTelemetry &Tel,
                        unsigned Lane) {
  std::uint64_t Seen = 0;
  while (true) {
    std::uint64_t Gen = Shared.BlockGen.load(std::memory_order_acquire);
    if (Gen == Seen) {
      const std::uint64_t IdleBegin = nowNanos();
      Backoff B;
      do {
        B.pause();
        Gen = Shared.BlockGen.load(std::memory_order_acquire);
      } while (Gen == Seen);
      Tel.add(Lane, Counter::SchedTeamIdleNs, nowNanos() - IdleBegin);
    }
    if (Shared.Quit.load(std::memory_order_acquire))
      return;
    // Stretch the hand-off-observed -> probe-started window: a protocol bug
    // here would let the lead merge findings this member has not written.
    CIP_CHAOS_POINT(TeamProbe);
    const std::uint64_t C =
        probeShardRange(Shadow, *Shared.Tids, *Shared.Buckets, *Shared.Found,
                        Shared.Combined, SBegin, SEnd);
    if (C)
      Tel.add(Lane, Counter::SchedTeamConflicts, C);
    Shared.DoneGen[Member].Value.store(Gen, std::memory_order_release);
    Seen = Gen;
  }
}

/// The sharded scheduler thread body (DESIGN.md §14): identical
/// worker-visible protocol (DispatchState is shared code), but the
/// detect-and-record stage runs as a two-stage software pipeline over blocks
/// of iterations. Stage 1 (partition) runs computeAddr + the policy pick for
/// the whole block, routes each probe to its address's shard, and issues a
/// prefetch for the exact shadow slot the probe will touch; stage 2 (probe)
/// then walks each shard's bucket — by then the prefetches have landed, so
/// the dependent loads that serialize the serial scheduler overlap across
/// shards here. Stage 3 merges per-shard findings back into iteration order
/// and dispatches.
///
/// Determinism argument: every address maps to exactly one shard and each
/// bucket preserves iteration order, so probe (J, Addr) observes precisely
/// the updates of earlier iterations (and earlier same-iteration
/// occurrences) of Addr — the same last-accessor the serial scheduler sees.
/// The merge walks iterations in order and drains each shard's findings
/// (also iteration-ordered) per iteration, so the dispatched sync-condition
/// multiset per iteration is identical; only the within-iteration emission
/// order changes (shard-grouped instead of address-ordered), and each sync
/// is an independent wait shipped before the iteration's work, so that
/// order is semantically irrelevant. Blocks never span invocation edges, so
/// the shadow is fully up to date when a prologue probes it.
///
/// With \p Team > 1 this thread is the *lead* of a scheduler team
/// (DESIGN.md §15): stage 2 is split by shard group — the lead publishes
/// the partitioned block through \p Shared, probes its own group while the
/// members probe theirs, and waits for every member before stage 3. The
/// merge itself is byte-for-byte the single-scheduler merge, and each shard
/// is still probed by exactly one thread in bucket (iteration) order, so
/// the emitted sync-condition stream is bit-identical for every team size.
template <typename ShardedT>
void runSchedulerSharded(
    const LoopNest &Nest, const DomoreConfig &Config, ShardedT &Shadow,
    SchedulePolicy &Policy,
    std::vector<std::unique_ptr<SPSCQueue<Message>>> &Queues,
    std::vector<ProgressSlot> &Progress, DomoreStats &Stats,
    telemetry::RegionTelemetry &Tel, std::uint32_t Team, TeamShared &Shared) {
  const unsigned Lane = Config.NumWorkers; // scheduler lane
  const std::uint32_t NumShards = Shadow.numShards();
  /// Iterations per pipeline block: enough probes in flight to cover DRAM
  /// latency, small enough that partition-stage state stays cache-resident.
  constexpr std::size_t BlockIters = 128;

  std::vector<std::uint64_t> Addrs;
  std::vector<std::uint32_t> Tids;
  Tids.reserve(BlockIters);
  std::vector<std::vector<ShardProbe>> Buckets(NumShards);
  std::vector<std::vector<ShardConflict>> Found(NumShards);
  std::vector<std::size_t> Cursor(NumShards);
  std::vector<std::uint64_t> PerShardConflicts(NumShards, 0);
  DispatchState Dispatch(Config, Queues, Tel, Lane);
  std::vector<Message> SyncBuf;
  std::int64_t Combined = 0;
  Stopwatch Busy;

  // Team hand-off wiring: pointers set once (before the first hand-off),
  // pointees rewritten per block under the BlockGen edge. The lead's own
  // shard group is [0, LeadEnd).
  Shared.Tids = &Tids;
  Shared.Buckets = &Buckets;
  Shared.Found = &Found;
  const std::uint32_t LeadEnd =
      Team > 1 ? TeamShared::groupBegin(1, Team, NumShards) : NumShards;
  std::uint64_t BlockGen = 0;

  for (std::uint32_t Inv = 0; Inv < Nest.NumInvocations; ++Inv) {
    // Prologue probes read the shadow serially; sound because the block
    // loop below drains the pipeline before the invocation ends.
    if (Nest.PrologueAddresses) {
      Addrs.clear();
      Nest.PrologueAddresses(Inv, Addrs);
      for (std::uint64_t Addr : Addrs) {
        const ShadowEntry Prev = Shadow.lookup(Addr);
        if (!Prev.valid())
          continue;
        Dispatch.flushIfHolds(Prev.Tid, Prev.Iter);
        if (!iterationDone(Progress[Prev.Tid], Prev.Iter)) {
          telemetry::TimedScope Stall(Tel, Lane, Counter::SchedulerStallNs,
                                      Hist::SchedStallNs, EventKind::SchedStall,
                                      Prev.Tid,
                                      static_cast<std::uint64_t>(Prev.Iter));
          waitForIteration(Progress[Prev.Tid], Prev.Iter);
        }
        ++Stats.PrologueWaits;
        Tel.add(Lane, Counter::PrologueWaits);
      }
    }

    Tel.begin(Lane, EventKind::Invocation, Inv);
    Busy.start();
    const std::size_t NumIters = Nest.BeginInvocation(Inv);
    Busy.stop();

    for (std::size_t Block = 0; Block < NumIters;) {
      const std::size_t BlockLen = std::min(BlockIters, NumIters - Block);
      Busy.start();

      // Stage 1: partition. computeAddr may run ahead of shadow updates
      // because it is side-effect free and every policy is stateless.
      Tids.clear();
      for (std::uint32_t S = 0; S < NumShards; ++S) {
        Buckets[S].clear();
        Found[S].clear();
      }
      for (std::size_t J = 0; J < BlockLen; ++J) {
        Addrs.clear();
        Nest.ComputeAddr(Inv, Block + J, Addrs);
        Tids.push_back(
            Policy.pick(Combined + static_cast<std::int64_t>(J), Addrs));
        for (std::uint64_t Addr : Addrs) {
          const std::uint32_t S = Shadow.shardOf(Addr);
          Shadow.prefetch(S, Addr);
          Buckets[S].push_back(ShardProbe{static_cast<std::uint32_t>(J), Addr});
        }
      }

      // Stage 2: probe each shard's bucket in iteration order — every shard
      // by this thread on the serial path, split into contiguous shard
      // groups across the team otherwise. Either way each shard is probed
      // by exactly one thread, so per-shard findings stay iteration-ordered.
      if (Team > 1) {
        Shared.Combined = Combined;
        Shared.BlockGen.store(++BlockGen, std::memory_order_release);
        const std::uint64_t C = probeShardRange(Shadow, Tids, Buckets, Found,
                                                Combined, 0, LeadEnd);
        if (C)
          Tel.add(Lane, Counter::SchedTeamConflicts, C);
        Busy.stop();
        for (std::uint32_t M = 1; M < Team; ++M) {
          if (Shared.DoneGen[M].Value.load(std::memory_order_acquire) ==
              BlockGen)
            continue;
          const std::uint64_t IdleBegin = nowNanos();
          Backoff B;
          while (Shared.DoneGen[M].Value.load(std::memory_order_acquire) !=
                 BlockGen)
            B.pause();
          Tel.add(Lane, Counter::SchedTeamIdleNs, nowNanos() - IdleBegin);
        }
      } else {
        probeShardRange(Shadow, Tids, Buckets, Found, Combined, 0, NumShards);
        Busy.stop();
      }

      // Stage 3: deterministic merge back into iteration order + dispatch.
      // Stretch the probes-done -> merge-dispatched window: a protocol bug
      // here would ship a sync condition against an unflushed range.
      CIP_CHAOS_POINT(ShardMerge);
      std::fill(Cursor.begin(), Cursor.end(), 0);
      for (std::size_t J = 0; J < BlockLen; ++J) {
        const std::uint32_t Tid = Tids[J];
        SyncBuf.clear();
        for (std::uint32_t S = 0; S < NumShards; ++S) {
          const auto &F = Found[S];
          std::size_t &C = Cursor[S];
          while (C < F.size() && F[C].Seq == J) {
            Tel.recordConflict(F[C].DepTid, Tid, F[C].Addr);
            SyncBuf.push_back(
                Message{Message::Sync, F[C].DepTid, F[C].DepIter, 0, 0, 0, 0});
            ++PerShardConflicts[S];
            ++C;
          }
        }
        if (CIP_UNLIKELY(!SyncBuf.empty())) {
          Stats.SyncConditions += SyncBuf.size();
          Tel.add(Lane, Counter::ShadowConflicts, SyncBuf.size());
          Dispatch.shipSyncs(Tid, SyncBuf);
        }
        Dispatch.extend(Tid, Inv, Block + J,
                        Combined + static_cast<std::int64_t>(J));
      }
      Combined += static_cast<std::int64_t>(BlockLen);
      Block += BlockLen;
    }
    Tel.end(Lane, EventKind::Invocation, Inv);
    ++Stats.Invocations;
  }

  // Release the team before the End broadcast: Quit first, then one final
  // BlockGen bump so members parked on the generation edge observe it.
  if (Team > 1) {
    Shared.Quit.store(true, std::memory_order_release);
    Shared.BlockGen.store(BlockGen + 1, std::memory_order_release);
  }

  Dispatch.flushAll();
  for (auto &Q : Queues)
    Q->produce(Message{Message::End, 0, -1, 0, 0, 0, 0});

  Stats.Iterations = static_cast<std::uint64_t>(Combined);
  Stats.SchedulerBusySeconds = Busy.elapsedSeconds();
  Stats.ShadowShards = NumShards;
  Stats.ShardConflicts = std::move(PerShardConflicts);
  Stats.SchedThreads = Team;
  Tel.add(Lane, Counter::SchedulerBusyNs, Busy.elapsedNanos());
}

/// The worker thread body: Algorithm 2, draining whole message runs per
/// cursor update and executing WorkRanges.
void runWorker(const LoopNest &Nest, std::uint32_t Tid,
               SPSCQueue<Message> &Queue, std::vector<ProgressSlot> &Progress,
               telemetry::RegionTelemetry &Tel) {
  constexpr std::size_t DrainMax = 16;
  Message Buf[DrainMax];
  std::size_t Have = 0;
  std::size_t At = 0;
  // Protocol invariants this worker can check locally: work ranges arrive
  // in strictly increasing combined order, and every publication advances
  // latestFinished (a regression would silently release waiting threads
  // early or strand them forever).
  [[maybe_unused]] std::int64_t LastPublished = -1;
  while (true) {
    if (At == Have) {
      At = 0;
      Have = Queue.consumeAvailable(Buf, DrainMax);
      if (Have == 0) {
        // Starved: the scheduler has not produced for this lane yet.
        Backoff B;
        do {
          B.pause();
          Tel.add(Tid, Counter::QueueEmptySpins);
          Have = Queue.consumeAvailable(Buf, DrainMax);
        } while (Have == 0);
      }
    }
    const Message &M = Buf[At++];
    switch (M.Kind) {
    case Message::End:
      return;
    case Message::Sync:
      CIP_CHECK(M.DepTid != Tid, "scheduler never syncs a worker on itself");
      CIP_CHECK(M.DepTid < Progress.size(), "sync condition names no worker");
      if (!iterationDone(Progress[M.DepTid], M.Iter)) {
        telemetry::TimedScope Wait(Tel, Tid, Counter::WorkerWaitNs,
                                   Hist::WorkerWaitNs, EventKind::SyncWait,
                                   M.DepTid,
                                   static_cast<std::uint64_t>(M.Iter));
        waitForIteration(Progress[M.DepTid], M.Iter);
      }
      Tel.flowEnd(Tid, M.Flow);
      break;
    case Message::Work: {
      CIP_CHECK(M.Count > 0, "empty work range");
      CIP_CHECK(M.Iter > LastPublished,
                "work ranges must arrive in increasing combined order");
      Tel.begin(Tid, EventKind::Task, M.Invocation, M.LocalIter);
      for (std::uint32_t J = 0; J < M.Count; ++J)
        Nest.Work(M.Invocation, M.LocalIter + J);
      Tel.end(Tid, EventKind::Task);
      // One publication per range tail. Sound because the scheduler never
      // lets anything wait on an iteration inside a pending run, so every
      // wait targets a flushed range whose tail publication covers it.
      // Stretch the work-done -> progress-published window: a waiter
      // released in here would read state the range has not written yet.
      CIP_CHAOS_POINT(ProgressPublish);
      Progress[Tid].LatestFinished.store(M.Iter + M.Count - 1,
                                         std::memory_order_release);
#if CIP_CHECK_ENABLED
      LastPublished = M.Iter + M.Count - 1;
#endif
      Tel.add(Tid, Counter::TasksExecuted, M.Count);
      break;
    }
    }
  }
}

template <typename ShadowT>
DomoreStats runWithShadow(const LoopNest &Nest, const DomoreConfig &Config,
                          ShadowT &Shadow) {
  assert(Nest.BeginInvocation && Nest.ComputeAddr && Nest.Work &&
         "incomplete loop nest description");
  assert(Config.NumWorkers > 0 && "need at least one worker");

  DomoreStats Stats;
  std::unique_ptr<SchedulePolicy> Policy = makePolicy(Nest, Config);

  // Resolve the team knob unconditionally so a malformed CIP_SCHED_THREADS
  // exits 2 on every DOMORE path; the team itself only forms on the sharded
  // scheduler (the serial scheduler has no probe stage to split).
  const std::uint32_t TeamKnob = effectiveSchedThreads(Config);
  const std::uint32_t Team = ShadowT::Sharded ? TeamKnob : 1;

  std::vector<std::unique_ptr<SPSCQueue<Message>>> Queues;
  for (std::uint32_t W = 0; W < Config.NumWorkers; ++W)
    Queues.push_back(
        std::make_unique<SPSCQueue<Message>>(Config.QueueCapacity));
  std::vector<ProgressSlot> Progress(Config.NumWorkers);
  TeamShared Shared(Team);

  telemetry::RegionTelemetry Tel("domore", Config.NumWorkers + Team);
  if (Tel.tracing()) {
    for (std::uint32_t W = 0; W < Config.NumWorkers; ++W)
      Tel.nameLane(W, "worker " + std::to_string(W));
    Tel.nameLane(Config.NumWorkers, "scheduler");
    for (std::uint32_t M = 1; M < Team; ++M)
      Tel.nameLane(Config.NumWorkers + M, "scheduler " + std::to_string(M));
  }

  const double Begin = static_cast<double>(nowNanos());
  runThreads(Config.NumWorkers + Team, [&](unsigned ThreadIdx) {
    if (ThreadIdx == Config.NumWorkers) {
      if constexpr (ShadowT::Sharded)
        runSchedulerSharded(Nest, Config, Shadow, *Policy, Queues, Progress,
                            Stats, Tel, Team, Shared);
      else
        runScheduler(Nest, Config, Shadow, *Policy, Queues, Progress, Stats,
                     Tel);
    } else if (ThreadIdx > Config.NumWorkers) {
      if constexpr (ShadowT::Sharded) {
        const std::uint32_t M = ThreadIdx - Config.NumWorkers;
        runSchedulerMember(
            Shadow, Shared, M,
            TeamShared::groupBegin(M, Team, Shadow.numShards()),
            TeamShared::groupBegin(M + 1, Team, Shadow.numShards()), Tel,
            ThreadIdx);
      }
    } else {
      runWorker(Nest, ThreadIdx, *Queues[ThreadIdx], Progress, Tel);
    }
  });
  Stats.TotalSeconds = (static_cast<double>(nowNanos()) - Begin) * 1e-9;
  if constexpr (!ShadowT::Sharded) {
    Stats.ShadowShards = 1;
    Stats.ShardConflicts = {Stats.SyncConditions};
  }
  Stats.Telemetry = Tel.totals();
  Stats.ConflictPairs = Tel.heatmapPairs();
  Stats.WorkerWait = Tel.histTotals(Hist::WorkerWaitNs);
  Stats.DispatchBatch = Tel.histTotals(Hist::DispatchBatch);
  Tel.finish();
  return Stats;
}

} // namespace

DomoreStats domore::runDomore(const LoopNest &Nest,
                              const DomoreConfig &Config) {
  const std::uint32_t Shards = effectiveShadowShards(Config);
  if (Nest.AddressSpaceSize > 0) {
    if (Shards > 1) {
      if (Config.Carry)
        return runWithShadow(
            Nest, Config,
            Config.Carry->shardedDense(Nest.AddressSpaceSize, Shards));
      ShardedDenseShadowMemory Shadow(Nest.AddressSpaceSize, Shards);
      return runWithShadow(Nest, Config, Shadow);
    }
    if (Config.Carry)
      return runWithShadow(Nest, Config,
                           Config.Carry->dense(Nest.AddressSpaceSize));
    DenseShadowMemory Shadow(Nest.AddressSpaceSize);
    return runWithShadow(Nest, Config, Shadow);
  }
  if (Shards > 1) {
    if (Config.Carry)
      return runWithShadow(Nest, Config, Config.Carry->shardedHash(Shards));
    ShardedHashShadowMemory Shadow(Shards);
    return runWithShadow(Nest, Config, Shadow);
  }
  if (Config.Carry)
    return runWithShadow(Nest, Config, Config.Carry->hash());
  HashShadowMemory Shadow;
  return runWithShadow(Nest, Config, Shadow);
}

DomoreStats domore::runDomoreDuplicated(const LoopNest &Nest,
                                        const DomoreConfig &Config) {
  assert(Nest.BeginInvocation && Nest.ComputeAddr && Nest.Work &&
         "incomplete loop nest description");
  assert(Config.NumWorkers > 0 && "need at least one worker");

  DomoreStats Stats;
  std::vector<ProgressSlot> Progress(Config.NumWorkers);
  // One slot per worker: every worker redundantly computes the full
  // schedule, so the per-worker conflict counts must agree exactly — a
  // divergence means the duplicated scheduler partitions saw different
  // iteration streams, which breaks the whole §3.4 contract.
  std::vector<std::uint64_t> SyncsPerWorker(Config.NumWorkers, 0);

  telemetry::RegionTelemetry Tel("domore_dup", Config.NumWorkers);
  if (Tel.tracing())
    for (std::uint32_t W = 0; W < Config.NumWorkers; ++W)
      Tel.nameLane(W, "worker " + std::to_string(W));

  const double Begin = static_cast<double>(nowNanos());
  runThreads(Config.NumWorkers, [&](unsigned Tid) {
    // Every worker redundantly executes the scheduler partition against a
    // private shadow memory (Fig 3.9). Because all workers process the same
    // deterministic iteration stream, their shadows agree, and each worker
    // can locally decide which iterations it owns and which conditions to
    // wait on. No queues are needed.
    std::unique_ptr<SchedulePolicy> Policy = makePolicy(Nest, Config);
    DenseShadowMemory DenseShadow(
        Nest.AddressSpaceSize > 0 ? Nest.AddressSpaceSize : 1);
    HashShadowMemory HashShadow;
    const bool UseDense = Nest.AddressSpaceSize > 0;

    std::vector<std::uint64_t> Addrs;
    std::vector<std::pair<std::uint32_t, std::int64_t>> Waits;
    std::int64_t Combined = 0;
    std::uint64_t MySyncs = 0;

    for (std::uint32_t Inv = 0; Inv < Nest.NumInvocations; ++Inv) {
      Tel.begin(Tid, EventKind::Invocation, Inv);
      const std::size_t NumIters = Nest.BeginInvocation(Inv);
      for (std::size_t It = 0; It < NumIters; ++It) {
        Addrs.clear();
        Nest.ComputeAddr(Inv, It, Addrs);
        const std::uint32_t Owner = Policy->pick(Combined, Addrs);
        const bool Mine = Owner == Tid;
        Waits.clear();
        auto Emit = [&](std::uint32_t DepTid, std::int64_t DepIter,
                        std::uint64_t Addr) {
          // Only the owner records the condition (and its heatmap cell), so
          // the region totals count each conflict once, not W times.
          if (Mine && DepTid != Tid) {
            Waits.emplace_back(DepTid, DepIter);
            Tel.recordConflict(DepTid, Tid, Addr);
          }
        };
        if (UseDense)
          MySyncs +=
              detectAndRecord(DenseShadow, Addrs, Owner, Combined, Emit);
        else
          MySyncs += detectAndRecord(HashShadow, Addrs, Owner, Combined, Emit);
        if (Mine) {
          // Each worker only accounts the conditions it itself waits on, so
          // the telemetry total equals the region's true sync count rather
          // than W redundant copies of it.
          if (!Waits.empty())
            Tel.add(Tid, Counter::ShadowConflicts, Waits.size());
          for (const auto &[DepTid, DepIter] : Waits) {
            if (iterationDone(Progress[DepTid], DepIter))
              continue;
            telemetry::TimedScope Wait(Tel, Tid, Counter::WorkerWaitNs,
                                       Hist::WorkerWaitNs, EventKind::SyncWait,
                                       DepTid,
                                       static_cast<std::uint64_t>(DepIter));
            waitForIteration(Progress[DepTid], DepIter);
          }
          Tel.begin(Tid, EventKind::Task, Inv, It);
          Nest.Work(Inv, It);
          Tel.end(Tid, EventKind::Task);
          CIP_CHECK(Progress[Tid].LatestFinished.load(
                        std::memory_order_relaxed) < Combined,
                    "duplicated-scheduler progress must advance");
          CIP_CHAOS_POINT(ProgressPublish);
          Progress[Tid].LatestFinished.store(Combined,
                                             std::memory_order_release);
          Tel.add(Tid, Counter::TasksExecuted);
        }
        ++Combined;
      }
      Tel.end(Tid, EventKind::Invocation, Inv);
    }
    if (Tid == 0) {
      Stats.Invocations = Nest.NumInvocations;
      Stats.Iterations = static_cast<std::uint64_t>(Combined);
    }
    SyncsPerWorker[Tid] = MySyncs;
  });
  Stats.TotalSeconds = (static_cast<double>(nowNanos()) - Begin) * 1e-9;
  // Every redundant scheduler must have counted the same conflicts; report
  // the exact per-worker value rather than a truncating average.
  for (std::uint32_t W = 1; W < Config.NumWorkers; ++W)
    assert(SyncsPerWorker[W] == SyncsPerWorker[0] &&
           "duplicated schedulers disagree on the conflict count");
  Stats.SyncConditions = SyncsPerWorker[0];
  // Sharding never applies here: each duplicated worker already owns a
  // private, contention-free shadow.
  Stats.ShadowShards = 1;
  Stats.ShardConflicts = {Stats.SyncConditions};
  Stats.Telemetry = Tel.totals();
  Stats.ConflictPairs = Tel.heatmapPairs();
  Stats.WorkerWait = Tel.histTotals(Hist::WorkerWaitNs);
  Tel.finish();
  return Stats;
}

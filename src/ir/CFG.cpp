//===- ir/CFG.cpp - Control-flow graph utilities -------------------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"

#include <algorithm>
#include <unordered_set>

using namespace cip;
using namespace cip::ir;

CFG::CFG(const Function &F) : F(F) {
  // Successors come straight off the terminators; predecessors inverted.
  for (const auto &BB : F.blocks()) {
    auto &S = Succs[BB.get()];
    if (const Instruction *Term = BB->terminator())
      for (unsigned I = 0; I < Term->numSuccessors(); ++I)
        S.push_back(Term->successor(I));
    for (BasicBlock *Succ : S)
      Preds[Succ].push_back(BB.get());
    Preds.try_emplace(BB.get()); // ensure every block has an entry
  }

  // Iterative post-order DFS from the entry, then reverse.
  std::unordered_set<const BasicBlock *> Visited;
  std::vector<std::pair<BasicBlock *, unsigned>> Stack;
  std::vector<BasicBlock *> PostOrder;
  BasicBlock *Entry = F.blocks().empty() ? nullptr : F.entry();
  if (Entry) {
    Stack.emplace_back(Entry, 0);
    Visited.insert(Entry);
    while (!Stack.empty()) {
      auto &[BB, NextChild] = Stack.back();
      const auto &S = Succs[BB];
      if (NextChild < S.size()) {
        BasicBlock *Child = S[NextChild++];
        if (Visited.insert(Child).second)
          Stack.emplace_back(Child, 0);
      } else {
        PostOrder.push_back(BB);
        Stack.pop_back();
      }
    }
  }
  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (unsigned I = 0; I < RPO.size(); ++I)
    RPOIndex[RPO[I]] = I;
}

const std::vector<BasicBlock *> &CFG::successors(const BasicBlock *BB) const {
  auto It = Succs.find(BB);
  assert(It != Succs.end() && "block not in this CFG");
  return It->second;
}

const std::vector<BasicBlock *> &
CFG::predecessors(const BasicBlock *BB) const {
  auto It = Preds.find(BB);
  assert(It != Preds.end() && "block not in this CFG");
  return It->second;
}

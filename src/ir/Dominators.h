//===- ir/Dominators.h - Dominator and post-dominator trees ----*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and post-dominator trees via the Cooper–Harvey–Kennedy
/// iterative algorithm over the reverse post-order. The loop analysis uses
/// dominators to find back edges; the PDG builder uses post-dominators for
/// control dependences; MTCG uses post-dominators to retarget branches whose
/// original target is not replicated in a partition (§3.3.2 rule 3).
///
//===----------------------------------------------------------------------===//

#ifndef CIP_IR_DOMINATORS_H
#define CIP_IR_DOMINATORS_H

#include "ir/CFG.h"

#include <unordered_map>

namespace cip {
namespace ir {

/// Dominator tree (\c Post == false) or post-dominator tree (\c Post ==
/// true; requires a unique exit block — the Verifier guarantees exactly one
/// Ret).
class DominatorTree {
public:
  DominatorTree(const CFG &G, bool Post);

  /// Immediate dominator of \p BB; null for the root.
  BasicBlock *idom(const BasicBlock *BB) const {
    auto It = IDom.find(BB);
    return It == IDom.end() ? nullptr : It->second;
  }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  BasicBlock *root() const { return Root; }
  bool isPostDominatorTree() const { return IsPost; }

  /// The nearest block on the \p Post tree path from \p BB to the root that
  /// is contained in \p Keep (per the predicate); null if none.
  template <typename Pred>
  BasicBlock *nearestAncestorSatisfying(const BasicBlock *BB,
                                        Pred &&Keep) const {
    for (BasicBlock *A = idom(BB); A; A = idom(A))
      if (Keep(A))
        return A;
    return nullptr;
  }

private:
  bool IsPost;
  BasicBlock *Root = nullptr;
  std::unordered_map<const BasicBlock *, BasicBlock *> IDom;
};

} // namespace ir
} // namespace cip

#endif // CIP_IR_DOMINATORS_H

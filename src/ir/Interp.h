//===- ir/Interp.h - Mini-IR interpreter -----------------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct interpreter for the mini-IR. Three roles in the project:
///
///  1. Reference executor — tests run original and transformed functions
///     and compare final memory.
///  2. Dependence profiler substrate — the access-trace hook reports every
///     load/store with its array and index, which src/analysis uses to
///     measure manifest rates and dependence distances (the runtime
///     information of the paper's title).
///  3. Parallel execution of MTCG output — Produce/Consume route through a
///     \c QueueBus, so a scheduler function and worker functions can run on
///     real threads against shared \c MemoryState, exactly like the
///     generated code in Fig 3.7.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_IR_INTERP_H
#define CIP_IR_INTERP_H

#include "ir/IR.h"
#include "support/SPSCQueue.h"

#include <functional>
#include <memory>
#include <unordered_map>

namespace cip {
namespace ir {

/// Backing store for every GlobalArray of a module.
class MemoryState {
public:
  explicit MemoryState(const Module &M);

  std::int64_t load(const GlobalArray *A, std::int64_t Index) const;
  void store(const GlobalArray *A, std::int64_t Index, std::int64_t V);

  std::vector<std::int64_t> &arrayData(const GlobalArray *A);
  const std::vector<std::int64_t> &arrayData(const GlobalArray *A) const;

  /// FNV digest over all arrays, for result comparison.
  std::uint64_t digest() const;

private:
  std::unordered_map<const GlobalArray *, std::vector<std::int64_t>> Store;
  std::vector<const GlobalArray *> Order; // deterministic digest order
};

/// Blocking inter-interpreter queues keyed by a small integer id, used by
/// Produce/Consume instructions in MTCG-generated code.
class QueueBus {
public:
  explicit QueueBus(std::uint32_t NumQueues, std::size_t Capacity = 4096);

  void produce(std::uint32_t Queue, std::int64_t V);
  std::int64_t consume(std::uint32_t Queue);

  std::uint32_t numQueues() const {
    return static_cast<std::uint32_t>(Queues.size());
  }

private:
  std::vector<std::unique_ptr<SPSCQueue<std::int64_t>>> Queues;
};

/// Interpreter configuration and hooks.
struct InterpOptions {
  /// Hard cap on executed instructions; exceeded -> execution aborts (the
  /// interpreter equivalent of the paper's runaway-loop timeout).
  std::uint64_t Fuel = 100'000'000;

  /// Called for every Load (IsStore=false) and Store (IsStore=true).
  std::function<void(const GlobalArray *, std::int64_t Index, bool IsStore)>
      AccessTrace;

  /// Native functions callable via Call instructions.
  std::unordered_map<std::string,
                     std::function<std::int64_t(const std::vector<std::int64_t> &)>>
      Natives;

  /// Queue fabric for Produce/Consume; required if the function uses them.
  QueueBus *Bus = nullptr;
};

/// Result of one interpretation.
struct InterpResult {
  bool Completed = false;          // false -> ran out of fuel or trapped
  std::int64_t ReturnValue = 0;    // value of Ret, if any
  std::uint64_t ExecutedInsts = 0; // dynamic instruction count
  std::string Error;               // trap description when !Completed
};

/// Interprets \p F with \p Args against \p Mem.
InterpResult interpret(const Function &F, const std::vector<std::int64_t> &Args,
                       MemoryState &Mem, const InterpOptions &Options = {});

} // namespace ir
} // namespace cip

#endif // CIP_IR_INTERP_H

//===- ir/Verifier.h - IR structural verification --------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and SSA verification of mini-IR functions: every block ends
/// in exactly one terminator, phis lead their block and mirror the
/// predecessor list, every use is dominated by its definition, exactly one
/// Ret exists (required by the post-dominator tree), and branch targets
/// belong to the function. The transformations verify their outputs in
/// tests, mirroring `opt -verify` discipline.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_IR_VERIFIER_H
#define CIP_IR_VERIFIER_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace cip {
namespace ir {

/// Verifies \p F; appends one message per problem to \p Errors. Returns
/// true when the function is well-formed.
bool verifyFunction(const Function &F, std::vector<std::string> *Errors =
                                           nullptr);

} // namespace ir
} // namespace cip

#endif // CIP_IR_VERIFIER_H
